package repro_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/crush"
	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/experiments"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
	"repro/internal/uschunt"
)

// TestEndToEndLandscape runs the complete pipeline — generation, detection,
// pairing, collision analysis — and checks the aggregate invariants the
// paper's evaluation rests on.
func TestEndToEndLandscape(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 99, Contracts: 1500})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)

	if len(res.Reports) == 0 {
		t.Fatal("no contracts analyzed")
	}

	// Detection agrees with ground truth modulo the documented blind spots.
	var missed, spurious int
	for _, rep := range res.Reports {
		l := pop.ByAddr[rep.Address]
		if l == nil {
			continue
		}
		expected := l.IsProxy &&
			l.Kind != dataset.KindDiamond && l.Kind != dataset.KindHostileProxy
		if expected && !rep.IsProxy {
			missed++
		}
		if !l.IsProxy && rep.IsProxy {
			spurious++
		}
	}
	if missed != 0 || spurious != 0 {
		t.Errorf("detector vs ground truth: %d missed, %d spurious", missed, spurious)
	}

	// Every detected pair's logic matches the label's current logic.
	for _, pa := range res.Pairs {
		l := pop.ByAddr[pa.Proxy]
		if l == nil {
			continue
		}
		if l.Logic != pa.Logic {
			t.Errorf("%s: pair logic %s, label logic %s (kind %s)",
				pa.Proxy, pa.Logic, l.Logic, l.Kind)
		}
	}

	// Ground-truth collisions are all found.
	paByProxy := make(map[etypes.Address]proxion.PairAnalysis)
	for _, pa := range res.Pairs {
		paByProxy[pa.Proxy] = pa
	}
	for _, l := range pop.Labels {
		if l.TrueFunctionCollision {
			pa, ok := paByProxy[l.Address]
			if !ok || len(pa.Functions) == 0 {
				t.Errorf("%s (%s): labeled function collision not detected", l.Address, l.Kind)
			}
		}
		if l.TrueStorageCollision {
			pa, ok := paByProxy[l.Address]
			if !ok || !pa.ExploitVerified {
				t.Errorf("%s (%s): labeled storage collision not verified", l.Address, l.Kind)
			}
		}
	}
}

// TestEndToEndToolDisagreements verifies the characteristic tool
// disagreements the paper's comparison hinges on, on one shared landscape.
func TestEndToEndToolDisagreements(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 7, Contracts: 1500})
	det := proxion.NewDetector(pop.Chain)
	hunt := uschunt.New(pop.Registry)
	cr := crush.New(pop.Chain)

	var hiddenFoundByProxion, hiddenFoundByCrush, hiddenFoundByHunt int
	var libraryFPByCrush, libraryFPByProxion int

	for _, l := range pop.Labels {
		switch {
		case l.IsProxy && !l.HasSource && !l.HasTx &&
			l.Kind != dataset.KindDiamond && l.Kind != dataset.KindHostileProxy:
			if det.Check(l.Address).IsProxy {
				hiddenFoundByProxion++
			}
			if cr.IsProxy(l.Address) {
				hiddenFoundByCrush++
			}
			if hunt.DetectProxy(l.Address).Detected {
				hiddenFoundByHunt++
			}
		case l.Kind == dataset.KindLibraryUser:
			if cr.IsProxy(l.Address) {
				libraryFPByCrush++
			}
			if det.Check(l.Address).IsProxy {
				libraryFPByProxion++
			}
		}
	}

	if hiddenFoundByProxion == 0 {
		t.Error("Proxion found no hidden proxies")
	}
	if hiddenFoundByCrush != 0 || hiddenFoundByHunt != 0 {
		t.Errorf("baselines saw hidden proxies: crush=%d hunt=%d",
			hiddenFoundByCrush, hiddenFoundByHunt)
	}
	if libraryFPByCrush == 0 {
		t.Error("CRUSH produced no library false positives — the comparison loses its point")
	}
	if libraryFPByProxion != 0 {
		t.Errorf("Proxion misclassified %d library callers", libraryFPByProxion)
	}
}

// TestEndToEndHoneypotScenario is the Listing 1 walkthrough as a test.
func TestEndToEndHoneypotScenario(t *testing.T) {
	c := chain.New()
	victim := etypes.MustAddress("0x000000000000000000000000000000000000f00d")

	logic := &solc.Contract{
		Name: "Lure",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "free_ether_withdrawal"},
			Body: []solc.Stmt{solc.SendToCaller{Amount: u256.FromUint64(10)}},
		}},
	}
	logicAddr := etypes.MustAddress("0x0000000000000000000000000000000000006001")
	c.InstallContract(logicAddr, solc.MustCompile(logic))

	implSlot := etypes.HashFromWord(u256.One())
	trapMarker := u256.MustHex("0xdead")
	proxy := &solc.Contract{
		Name: "Trap",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "impl_LUsXCWD2AKCc"},
			Body: []solc.Stmt{solc.ReturnConst{Value: trapMarker}},
		}},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	proxyAddr := etypes.MustAddress("0x0000000000000000000000000000000000006002")
	c.InstallContract(proxyAddr, solc.MustCompile(proxy))
	c.SetStorageDirect(proxyAddr, implSlot, etypes.HashFromWord(logicAddr.Word()))

	// The victim's call to the lure lands in the trap.
	rc := c.Execute(victim, proxyAddr, abi.EncodeCall(abi.SelectorOf("free_ether_withdrawal()")), 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("trap call failed: %v", rc.Err)
	}
	if got := u256.FromBytes(rc.Output); !got.Eq(trapMarker) {
		t.Fatalf("victim got %s — the lure executed instead of the trap?!", got)
	}

	// Proxion detects the collision without source or transactions... the
	// single victim tx exists, but the bytecode path alone must suffice.
	det := proxion.NewDetector(c)
	pa := det.AnalyzePair(proxyAddr, logicAddr, nil)
	if len(pa.Functions) != 1 {
		t.Fatalf("function collisions = %d, want 1", len(pa.Functions))
	}
	want := [4]byte{0xdf, 0x4a, 0x31, 0x06}
	if pa.Functions[0].Selector != want {
		t.Errorf("selector = %x, want df4a3106", pa.Functions[0].Selector)
	}
}

// TestEndToEndAccuracyCorpusStable pins the Table 2 confusion matrices at
// the integration level: any analyzer regression that shifts a cell fails
// here with a readable diff.
func TestEndToEndAccuracyCorpusStable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second corpus analysis")
	}
	res := experiments.Table2(dataset.GenerateAccuracyCorpus())
	want := map[string][4]int{
		"storage/USCHunt":  {33, 83, 79, 11},
		"storage/CRUSH":    {26, 76, 86, 18},
		"storage/Proxion":  {27, 28, 134, 17},
		"function/USCHunt": {299, 1, 0, 261},
		"function/Proxion": {557, 0, 1, 3},
	}
	got := map[string]experiments.Confusion{
		"storage/USCHunt":  res.StorageUSCHunt,
		"storage/CRUSH":    res.StorageCRUSH,
		"storage/Proxion":  res.StorageProxion,
		"function/USCHunt": res.FuncUSCHunt,
		"function/Proxion": res.FuncProxion,
	}
	for name, w := range want {
		g := got[name]
		if g.TP != w[0] || g.FP != w[1] || g.TN != w[2] || g.FN != w[3] {
			t.Errorf("%s: got %+v, want TP/FP/TN/FN %v (paper Table 2)", name, g, w)
		}
	}
}
