package chain_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

var (
	alice = etypes.MustAddress("0x00000000000000000000000000000000000a11ce")
	bob   = etypes.MustAddress("0x0000000000000000000000000000000000000b0b")
)

// storeArgContract returns code that stores calldata word 0 into slot 0.
func storeArgContract() []byte {
	var p asm.Program
	p.PushUint(0).Op(evm.CALLDATALOAD).PushUint(0).Op(evm.SSTORE).Op(evm.STOP)
	return p.MustAssemble()
}

func word(v uint64) []byte {
	w := u256.FromUint64(v).Bytes32()
	return w[:]
}

func TestGenesisAndBlockProgression(t *testing.T) {
	c := chain.New()
	if c.CurrentBlock() != 0 {
		t.Fatalf("genesis height = %d", c.CurrentBlock())
	}
	c.AdvanceBlocks(10)
	if c.CurrentBlock() != 10 {
		t.Fatalf("height = %d, want 10", c.CurrentBlock())
	}
	h5, err := c.HeaderByNumber(5)
	if err != nil {
		t.Fatal(err)
	}
	if h5.Number != 5 || h5.Hash == (etypes.Hash{}) {
		t.Errorf("header 5 = %+v", h5)
	}
	if _, err := c.HeaderByNumber(11); err == nil {
		t.Error("future header should error")
	}
	c.AdvanceTo(10) // no-op
	if c.CurrentBlock() != 10 {
		t.Error("AdvanceTo went backwards")
	}
}

func TestExecuteRecordsStorageHistory(t *testing.T) {
	c := chain.New()
	addr := etypes.MustAddress("0x00000000000000000000000000000000000000c1")
	c.InstallContract(addr, storeArgContract())

	rc1 := c.Execute(alice, addr, word(111), 0, u256.Zero())
	if !rc1.Status {
		t.Fatalf("tx1 failed: %v", rc1.Err)
	}
	b1 := rc1.Block
	rc2 := c.Execute(alice, addr, word(222), 0, u256.Zero())
	b2 := rc2.Block
	if b2 <= b1 {
		t.Fatalf("blocks not advancing: %d then %d", b1, b2)
	}

	slot0 := etypes.Hash{}
	if got := c.GetStorageAt(addr, slot0, b1).Word(); got.Uint64() != 111 {
		t.Errorf("storage at b1 = %s, want 111", got)
	}
	if got := c.GetStorageAt(addr, slot0, b2).Word(); got.Uint64() != 222 {
		t.Errorf("storage at b2 = %s, want 222", got)
	}
	if got := c.GetStorageAt(addr, slot0, b1-1).Word(); !got.IsZero() {
		t.Errorf("storage before first write = %s, want 0", got)
	}
	// Current state matches head.
	if got := c.GetState(addr, slot0).Word(); got.Uint64() != 222 {
		t.Errorf("current state = %s", got)
	}
}

func TestAPICallCounter(t *testing.T) {
	c := chain.New()
	addr := etypes.MustAddress("0x00000000000000000000000000000000000000c2")
	c.InstallContract(addr, storeArgContract())
	c.ResetAPICalls()
	for i := 0; i < 7; i++ {
		c.GetStorageAt(addr, etypes.Hash{}, 0)
	}
	if got := c.APICalls(); got != 7 {
		t.Errorf("api calls = %d, want 7", got)
	}
	c.ResetAPICalls()
	if got := c.APICalls(); got != 0 {
		t.Errorf("after reset = %d", got)
	}
}

func TestRevertedTxLeavesNoHistory(t *testing.T) {
	// Contract stores then reverts: neither state nor history may survive.
	var p asm.Program
	p.PushUint(9).PushUint(0).Op(evm.SSTORE).
		PushUint(0).PushUint(0).Op(evm.REVERT)
	c := chain.New()
	addr := etypes.MustAddress("0x00000000000000000000000000000000000000c3")
	c.InstallContract(addr, p.MustAssemble())

	rc := c.Execute(alice, addr, nil, 0, u256.Zero())
	if rc.Status {
		t.Fatal("tx should have reverted")
	}
	if got := c.GetState(addr, etypes.Hash{}); got != (etypes.Hash{}) {
		t.Errorf("state survived revert: %s", got)
	}
	if got := c.GetStorageAt(addr, etypes.Hash{}, c.CurrentBlock()); got != (etypes.Hash{}) {
		t.Errorf("history survived revert: %s", got)
	}
}

func TestTxCountAndDelegateEvents(t *testing.T) {
	// proxy delegatecalls hardcoded logic; executing it must record a
	// DelegateEvent and bump tx counts for both contracts.
	logicAddr := etypes.MustAddress("0x00000000000000000000000000000000000000d2")
	var logic asm.Program
	logic.Op(evm.STOP)

	var proxy asm.Program
	proxy.PushUint(0).PushUint(0).
		Op(evm.CALLDATASIZE).PushUint(0).
		PushBytes(logicAddr[:]).
		Op(evm.GAS).Op(evm.DELEGATECALL).Op(evm.POP).Op(evm.STOP)

	c := chain.New()
	proxyAddr := etypes.MustAddress("0x00000000000000000000000000000000000000d1")
	c.InstallContract(proxyAddr, proxy.MustAssemble())
	c.InstallContract(logicAddr, logic.MustAssemble())

	if got := c.TxCount(proxyAddr); got != 0 {
		t.Fatalf("fresh contract tx count = %d", got)
	}
	rc := c.Execute(alice, proxyAddr, []byte{0xde, 0xad, 0xbe, 0xef}, 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("tx failed: %v", rc.Err)
	}
	if got := c.TxCount(proxyAddr); got != 1 {
		t.Errorf("proxy tx count = %d, want 1", got)
	}
	if got := c.TxCount(logicAddr); got != 1 {
		t.Errorf("logic tx count = %d, want 1", got)
	}
	events := c.DelegateEvents()
	if len(events) != 1 {
		t.Fatalf("delegate events = %d, want 1", len(events))
	}
	if events[0].Proxy != proxyAddr || events[0].Logic != logicAddr {
		t.Errorf("event = %+v", events[0])
	}
}

func TestDeployViaInitCode(t *testing.T) {
	runtime := []byte{byte(evm.PUSH0), byte(evm.STOP)}
	var init asm.Program
	init.PushUint(uint64(len(runtime))).PushLabel("rt").PushUint(0).Op(evm.CODECOPY).
		PushUint(uint64(len(runtime))).PushUint(0).Op(evm.RETURN).
		DataLabel("rt").Raw(runtime)

	c := chain.New()
	rc := c.Deploy(alice, init.MustAssemble(), 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("deploy failed: %v", rc.Err)
	}
	if got := c.Code(rc.ContractAddress); string(got) != string(runtime) {
		t.Errorf("deployed code = %x", got)
	}
	if got := c.CreatedAt(rc.ContractAddress); got != rc.Block {
		t.Errorf("createdAt = %d, want %d", got, rc.Block)
	}
	// Deployed contract appears in the alive set.
	found := false
	for _, a := range c.Contracts() {
		if a == rc.ContractAddress {
			found = true
		}
	}
	if !found {
		t.Error("deployed contract missing from Contracts()")
	}
}

func TestStaticCallDoesNotCommit(t *testing.T) {
	c := chain.New()
	addr := etypes.MustAddress("0x00000000000000000000000000000000000000c4")
	c.InstallContract(addr, storeArgContract())
	before := c.CurrentBlock()
	rc := c.StaticCall(alice, addr, word(5), 0)
	if rc.Status {
		t.Error("static write should fail")
	}
	if c.CurrentBlock() != before {
		t.Error("static call sealed a block")
	}
	if c.TxCount(addr) != 0 {
		t.Error("static call counted as transaction")
	}
}

func TestSelfDestructRemovesFromAliveSet(t *testing.T) {
	var p asm.Program
	p.PushBytes(bob[:]).Op(evm.SELFDESTRUCT)
	c := chain.New()
	addr := etypes.MustAddress("0x00000000000000000000000000000000000000c5")
	c.InstallContract(addr, p.MustAssemble())
	c.Fund(addr, u256.FromUint64(77))

	rc := c.Execute(alice, addr, nil, 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("tx failed: %v", rc.Err)
	}
	if !c.IsDestroyed(addr) {
		t.Error("contract not marked destroyed")
	}
	if c.Code(addr) != nil {
		t.Error("destroyed contract still serves code")
	}
	if got := c.GetBalance(bob); got.Uint64() != 77 {
		t.Errorf("beneficiary balance = %s", got)
	}
	for _, a := range c.Contracts() {
		if a == addr {
			t.Error("destroyed contract still in alive set")
		}
	}
}

func TestGetStorageAtUnknownAccount(t *testing.T) {
	c := chain.New()
	if got := c.GetStorageAt(bob, etypes.Hash{}, 0); got != (etypes.Hash{}) {
		t.Errorf("unknown account storage = %s", got)
	}
}

func TestValueTransferViaExecute(t *testing.T) {
	c := chain.New()
	addr := etypes.MustAddress("0x00000000000000000000000000000000000000c6")
	c.InstallContract(addr, []byte{byte(evm.STOP)})
	c.Fund(alice, u256.FromUint64(1000))
	// Lenient mode skips transfers, so balances stay put but the call works
	// even from unfunded senders — the emulation-friendly behaviour.
	rc := c.Execute(alice, addr, nil, 0, u256.FromUint64(250))
	if !rc.Status {
		t.Fatalf("tx failed: %v", rc.Err)
	}
}

func TestLogsInRange(t *testing.T) {
	// A contract that LOG1s its calldata word as a topic.
	var p asm.Program
	p.PushUint(0).Op(evm.CALLDATALOAD). // topic
						PushUint(0). // size
						PushUint(0). // offset
						Op(evm.LOG0 + 1).Op(evm.STOP)
	c := chain.New()
	addr := etypes.MustAddress("0x00000000000000000000000000000000000000c7")
	other := etypes.MustAddress("0x00000000000000000000000000000000000000c8")
	c.InstallContract(addr, p.MustAssemble())
	c.InstallContract(other, p.MustAssemble())

	b1 := c.Execute(alice, addr, word(1), 0, u256.Zero()).Block
	c.Execute(alice, other, word(2), 0, u256.Zero())
	b3 := c.Execute(alice, addr, word(3), 0, u256.Zero()).Block

	all := c.LogsInRange(0, c.CurrentBlock(), nil)
	if len(all) != 3 {
		t.Fatalf("logs = %d, want 3", len(all))
	}
	mine := c.LogsInRange(0, c.CurrentBlock(), &addr)
	if len(mine) != 2 {
		t.Fatalf("filtered logs = %d, want 2", len(mine))
	}
	early := c.LogsInRange(b1, b1, nil)
	if len(early) != 1 || early[0].Topics[0].Word().Uint64() != 1 {
		t.Errorf("range query wrong: %+v", early)
	}
	if got := c.LogsInRange(b3+1, b3+10, nil); len(got) != 0 {
		t.Errorf("future range returned %d logs", len(got))
	}
}
