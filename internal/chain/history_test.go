package chain_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/u256"
)

// writeSchedule is a random sequence of (blockGap, slot, value) writes used
// to cross-check the archive against a naive reference model.
type writeSchedule struct {
	writes []schedWrite
}

type schedWrite struct {
	gap   uint64 // blocks to advance before the write (0 = same block)
	slot  uint64
	value uint64
}

func genSchedule(r *rand.Rand) writeSchedule {
	n := 1 + r.Intn(40)
	ws := make([]schedWrite, n)
	for i := range ws {
		ws[i] = schedWrite{
			gap:   uint64(r.Intn(5)),
			slot:  uint64(r.Intn(4)),
			value: uint64(1 + r.Intn(1000)),
		}
	}
	return writeSchedule{writes: ws}
}

var schedCfg = &quick.Config{
	MaxCount: 120,
	Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(genSchedule(r))
		}
	},
}

// TestPropertyArchiveMatchesReferenceModel: for any write schedule, the
// archive's GetStorageAt at every height equals a naive replay model.
func TestPropertyArchiveMatchesReferenceModel(t *testing.T) {
	addr := etypes.MustAddress("0x000000000000000000000000000000000000ab01")
	f := func(s writeSchedule) bool {
		c := chain.New()
		c.InstallContract(addr, []byte{0x00})

		// Reference: value of each slot at the end of each block.
		type slotVal map[uint64]uint64
		ref := []slotVal{{}} // block 0 state
		cur := slotVal{}

		for _, w := range s.writes {
			for g := uint64(0); g < w.gap; g++ {
				c.AdvanceBlocks(1)
				snapshot := slotVal{}
				for k, v := range cur {
					snapshot[k] = v
				}
				ref = append(ref, snapshot)
			}
			c.SetStorageDirect(addr,
				etypes.HashFromWord(u256.FromUint64(w.slot)),
				etypes.HashFromWord(u256.FromUint64(w.value)))
			cur[w.slot] = w.value
			// The write lands in the current block: update the last entry.
			snapshot := slotVal{}
			for k, v := range cur {
				snapshot[k] = v
			}
			ref[len(ref)-1] = snapshot
		}

		for h := uint64(0); h < uint64(len(ref)); h++ {
			for slot := uint64(0); slot < 4; slot++ {
				got := c.GetStorageAt(addr, etypes.HashFromWord(u256.FromUint64(slot)), h).Word().Uint64()
				want := ref[h][slot]
				if got != want {
					t.Logf("height %d slot %d: archive %d, reference %d", h, slot, got, want)
					return false
				}
			}
		}
		// Head state matches the final reference entry.
		for slot := uint64(0); slot < 4; slot++ {
			got := c.GetState(addr, etypes.HashFromWord(u256.FromUint64(slot))).Word().Uint64()
			if got != cur[slot] {
				t.Logf("head slot %d: %d vs %d", slot, got, cur[slot])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, schedCfg); err != nil {
		t.Fatal(err)
	}
}

// TestSameBlockOverwriteKeepsLastValue: several writes in one block must
// archive only the final value, per end-of-block semantics.
func TestSameBlockOverwriteKeepsLastValue(t *testing.T) {
	addr := etypes.MustAddress("0x000000000000000000000000000000000000ab02")
	c := chain.New()
	c.InstallContract(addr, []byte{0x00})
	c.AdvanceBlocks(5)
	slot := etypes.Hash{}
	for v := uint64(1); v <= 3; v++ {
		c.SetStorageDirect(addr, slot, etypes.HashFromWord(u256.FromUint64(v)))
	}
	if got := c.GetStorageAt(addr, slot, 5).Word(); got.Uint64() != 3 {
		t.Errorf("end-of-block value = %s, want 3", got)
	}
	if got := c.GetStorageAt(addr, slot, 4); got != (etypes.Hash{}) {
		t.Errorf("previous block = %s, want zero", got)
	}
}

func TestTxSelectorsRecorded(t *testing.T) {
	addr := etypes.MustAddress("0x000000000000000000000000000000000000ab03")
	sender := etypes.MustAddress("0x000000000000000000000000000000000000ab04")
	c := chain.New()
	c.InstallContract(addr, []byte{0x00})

	c.Execute(sender, addr, []byte{1, 2, 3, 4, 9, 9}, 0, u256.Zero())
	c.Execute(sender, addr, []byte{1, 2, 3, 4}, 0, u256.Zero()) // duplicate selector
	c.Execute(sender, addr, []byte{5, 6, 7, 8}, 0, u256.Zero())
	c.Execute(sender, addr, []byte{1, 2}, 0, u256.Zero()) // too short: ignored

	sels := c.TxSelectors(addr)
	if len(sels) != 2 {
		t.Fatalf("selectors = %d, want 2: %x", len(sels), sels)
	}
	if sels[0] != [4]byte{1, 2, 3, 4} || sels[1] != [4]byte{5, 6, 7, 8} {
		t.Errorf("selectors = %x (must be sorted, deduped)", sels)
	}
	if got := c.TxSelectors(sender); len(got) != 0 {
		t.Errorf("sender has selectors: %x", got)
	}
}
