package chain

import (
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// Compile-time checks: both the locked Chain and the unlocked execState
// view are usable EVM state backends. External callers (overlays, tests)
// use Chain directly; transaction execution inside this package uses
// execState while holding the chain's write lock, because Go's RWMutex is
// not reentrant.
var (
	_ evm.StateDB = (*Chain)(nil)
	_ evm.StateDB = execState{}
)

// execState is the unlocked view of a Chain handed to the EVM by
// Execute/Deploy/StaticCall, which hold the write lock for the whole run.
type execState struct{ c *Chain }

// Exists reports whether an account record exists.
func (c *Chain) Exists(addr etypes.Address) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.exists(addr)
}

func (c *Chain) exists(addr etypes.Address) bool {
	_, ok := c.accounts[addr]
	return ok
}

func (s execState) Exists(addr etypes.Address) bool { return s.c.exists(addr) }

// GetCode implements evm.StateDB.
func (c *Chain) GetCode(addr etypes.Address) []byte { return c.Code(addr) }

func (s execState) GetCode(addr etypes.Address) []byte { return s.c.code(addr) }

// GetCodeHash implements evm.StateDB, served from the per-account cache.
func (c *Chain) GetCodeHash(addr etypes.Address) etypes.Hash {
	return c.CodeHash(addr)
}

func (s execState) GetCodeHash(addr etypes.Address) etypes.Hash {
	return s.c.getCodeHash(addr)
}

// GetBalance implements evm.StateDB.
func (c *Chain) GetBalance(addr etypes.Address) u256.Int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.getBalance(addr)
}

func (c *Chain) getBalance(addr etypes.Address) u256.Int {
	if acc, ok := c.accounts[addr]; ok {
		return acc.balance
	}
	return u256.Zero()
}

func (s execState) GetBalance(addr etypes.Address) u256.Int { return s.c.getBalance(addr) }

// Transfer implements evm.StateDB with journaling.
func (c *Chain) Transfer(from, to etypes.Address, value u256.Int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.transfer(from, to, value)
}

func (c *Chain) transfer(from, to etypes.Address, value u256.Int) {
	src := c.getOrCreate(from)
	dst := c.getOrCreate(to)
	ps, pd := src.balance, dst.balance
	c.journal = append(c.journal, func() { src.balance, dst.balance = ps, pd })
	src.balance = ps.Sub(value)
	dst.balance = pd.Add(value)
}

func (s execState) Transfer(from, to etypes.Address, value u256.Int) {
	s.c.transfer(from, to, value)
}

// GetState implements evm.StateDB.
func (c *Chain) GetState(addr etypes.Address, key etypes.Hash) etypes.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.getState(addr, key)
}

func (c *Chain) getState(addr etypes.Address, key etypes.Hash) etypes.Hash {
	if acc, ok := c.accounts[addr]; ok {
		return acc.storage[key]
	}
	return etypes.Hash{}
}

func (s execState) GetState(addr etypes.Address, key etypes.Hash) etypes.Hash {
	return s.c.getState(addr, key)
}

// SetState implements evm.StateDB; writes are journaled and recorded in the
// archive history at the current block.
func (c *Chain) SetState(addr etypes.Address, key, value etypes.Hash) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeStorage(c.getOrCreate(addr), key, value, true)
}

func (s execState) SetState(addr etypes.Address, key, value etypes.Hash) {
	s.c.writeStorage(s.c.getOrCreate(addr), key, value, true)
}

// GetNonce implements evm.StateDB.
func (c *Chain) GetNonce(addr etypes.Address) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.getNonce(addr)
}

func (c *Chain) getNonce(addr etypes.Address) uint64 {
	if acc, ok := c.accounts[addr]; ok {
		return acc.nonce
	}
	return 0
}

func (s execState) GetNonce(addr etypes.Address) uint64 { return s.c.getNonce(addr) }

// SetNonce implements evm.StateDB with journaling.
func (c *Chain) SetNonce(addr etypes.Address, nonce uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setNonce(addr, nonce)
}

func (c *Chain) setNonce(addr etypes.Address, nonce uint64) {
	acc := c.getOrCreate(addr)
	prev := acc.nonce
	c.journal = append(c.journal, func() { acc.nonce = prev })
	acc.nonce = nonce
}

func (s execState) SetNonce(addr etypes.Address, nonce uint64) { s.c.setNonce(addr, nonce) }

// CreateAccount implements evm.StateDB.
func (c *Chain) CreateAccount(addr etypes.Address) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.getOrCreate(addr)
}

func (s execState) CreateAccount(addr etypes.Address) { s.c.getOrCreate(addr) }

// SetCode implements evm.StateDB with journaling.
func (c *Chain) SetCode(addr etypes.Address, code []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setCode(addr, code)
}

func (c *Chain) setCode(addr etypes.Address, code []byte) {
	acc := c.getOrCreate(addr)
	prev := acc.code
	prevHash := acc.codeHash
	prevBlock := acc.createdAt
	c.journal = append(c.journal, func() {
		acc.code, acc.codeHash, acc.createdAt = prev, prevHash, prevBlock
	})
	acc.code = code
	acc.codeHash = etypes.Keccak(code)
	acc.createdAt = c.currentBlock()
}

func (s execState) SetCode(addr etypes.Address, code []byte) { s.c.setCode(addr, code) }

// SelfDestruct implements evm.StateDB.
func (c *Chain) SelfDestruct(addr, beneficiary etypes.Address) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.selfDestruct(addr, beneficiary)
}

func (c *Chain) selfDestruct(addr, beneficiary etypes.Address) {
	acc := c.getOrCreate(addr)
	c.transfer(addr, beneficiary, acc.balance)
	prev := acc.destroyed
	c.journal = append(c.journal, func() { acc.destroyed = prev })
	acc.destroyed = true
}

func (s execState) SelfDestruct(addr, beneficiary etypes.Address) {
	s.c.selfDestruct(addr, beneficiary)
}

// Snapshot implements evm.StateDB.
func (c *Chain) Snapshot() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.journal)
}

func (s execState) Snapshot() int { return len(s.c.journal) }

// RevertToSnapshot implements evm.StateDB.
func (c *Chain) RevertToSnapshot(rev int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.revertToSnapshot(rev)
}

func (c *Chain) revertToSnapshot(rev int) {
	for len(c.journal) > rev {
		c.journal[len(c.journal)-1]()
		c.journal = c.journal[:len(c.journal)-1]
	}
}

func (s execState) RevertToSnapshot(rev int) { s.c.revertToSnapshot(rev) }

// AddLog implements evm.StateDB.
func (c *Chain) AddLog(addr etypes.Address, topics []etypes.Hash, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLog(addr, topics, data)
}

func (c *Chain) addLog(addr etypes.Address, topics []etypes.Hash, data []byte) {
	c.logs = append(c.logs, Log{Address: addr, Topics: topics, Data: data, Block: c.currentBlock()})
}

func (s execState) AddLog(addr etypes.Address, topics []etypes.Hash, data []byte) {
	s.c.addLog(addr, topics, data)
}
