package chain

import (
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// Compile-time check: Chain is a usable EVM state backend.
var _ evm.StateDB = (*Chain)(nil)

// Exists reports whether an account record exists.
func (c *Chain) Exists(addr etypes.Address) bool {
	_, ok := c.accounts[addr]
	return ok
}

// GetCode implements evm.StateDB.
func (c *Chain) GetCode(addr etypes.Address) []byte { return c.Code(addr) }

// GetCodeHash implements evm.StateDB.
func (c *Chain) GetCodeHash(addr etypes.Address) etypes.Hash {
	return etypes.Keccak(c.Code(addr))
}

// GetBalance implements evm.StateDB.
func (c *Chain) GetBalance(addr etypes.Address) u256.Int {
	if acc, ok := c.accounts[addr]; ok {
		return acc.balance
	}
	return u256.Zero()
}

// Transfer implements evm.StateDB with journaling.
func (c *Chain) Transfer(from, to etypes.Address, value u256.Int) {
	src := c.getOrCreate(from)
	dst := c.getOrCreate(to)
	ps, pd := src.balance, dst.balance
	c.journal = append(c.journal, func() { src.balance, dst.balance = ps, pd })
	src.balance = ps.Sub(value)
	dst.balance = pd.Add(value)
}

// GetState implements evm.StateDB.
func (c *Chain) GetState(addr etypes.Address, key etypes.Hash) etypes.Hash {
	if acc, ok := c.accounts[addr]; ok {
		return acc.storage[key]
	}
	return etypes.Hash{}
}

// SetState implements evm.StateDB; writes are journaled and recorded in the
// archive history at the current block.
func (c *Chain) SetState(addr etypes.Address, key, value etypes.Hash) {
	c.writeStorage(c.getOrCreate(addr), key, value, true)
}

// GetNonce implements evm.StateDB.
func (c *Chain) GetNonce(addr etypes.Address) uint64 {
	if acc, ok := c.accounts[addr]; ok {
		return acc.nonce
	}
	return 0
}

// SetNonce implements evm.StateDB with journaling.
func (c *Chain) SetNonce(addr etypes.Address, nonce uint64) {
	acc := c.getOrCreate(addr)
	prev := acc.nonce
	c.journal = append(c.journal, func() { acc.nonce = prev })
	acc.nonce = nonce
}

// CreateAccount implements evm.StateDB.
func (c *Chain) CreateAccount(addr etypes.Address) { c.getOrCreate(addr) }

// SetCode implements evm.StateDB with journaling.
func (c *Chain) SetCode(addr etypes.Address, code []byte) {
	acc := c.getOrCreate(addr)
	prev := acc.code
	prevBlock := acc.createdAt
	c.journal = append(c.journal, func() { acc.code, acc.createdAt = prev, prevBlock })
	acc.code = code
	acc.createdAt = c.CurrentBlock()
}

// SelfDestruct implements evm.StateDB.
func (c *Chain) SelfDestruct(addr, beneficiary etypes.Address) {
	acc := c.getOrCreate(addr)
	c.Transfer(addr, beneficiary, acc.balance)
	prev := acc.destroyed
	c.journal = append(c.journal, func() { acc.destroyed = prev })
	acc.destroyed = true
}

// Snapshot implements evm.StateDB.
func (c *Chain) Snapshot() int { return len(c.journal) }

// RevertToSnapshot implements evm.StateDB.
func (c *Chain) RevertToSnapshot(rev int) {
	for len(c.journal) > rev {
		c.journal[len(c.journal)-1]()
		c.journal = c.journal[:len(c.journal)-1]
	}
}

// AddLog implements evm.StateDB.
func (c *Chain) AddLog(addr etypes.Address, topics []etypes.Hash, data []byte) {
	c.logs = append(c.logs, Log{Address: addr, Topics: topics, Data: data, Block: c.CurrentBlock()})
}
