package chain

import (
	"fmt"

	"repro/internal/etypes"
	"repro/internal/u256"
)

// Reader is the read-only node surface the analyzer consumes — exactly the
// calls Proxion issues against an archive node in a real deployment:
// contract enumeration, bytecode and metadata reads for detection, latest-
// state reads for emulation, and the historical getStorageAt reads
// Algorithm 1 binary-searches over.
//
// *Chain implements Reader directly (the perfect in-memory node). The
// internal/faultchain package layers two more implementations on top: a
// deterministic fault-injecting backend that makes reads fail the way a
// remote RPC does, and a resilient client that retries, times out, breaks
// the circuit and bounds concurrency. The detector and the streaming engine
// are written against Reader only, so any of the three can sit underneath.
//
// Error contract: the interface is deliberately error-free — it mirrors the
// EVM's StateDB surface, whose reads cannot fail — so an implementation
// that *can* fail terminally (a resilient client whose retries are
// exhausted) signals it by panicking with a *ReadError. Every analysis
// entry point recovers that panic and reports the contract as Unresolved;
// nothing else in the repository may panic with a *ReadError.
//
// APICalls contract: the counter reports *logical* archive reads — one per
// GetStorageAt call the analyzer issued — monotonically and race-free.
// Wrappers that retry a failed read against the node MUST still count the
// logical read once, never once per attempt, so the Section 6.1 efficiency
// numbers stay comparable between a perfect node and a faulty one.
type Reader interface {
	// Config identifies the network under analysis.
	Config() Config
	// CurrentBlock returns the node's head height.
	CurrentBlock() uint64
	// LatestHeader returns the head block header.
	LatestHeader() BlockHeader
	// HeaderByNumber returns the header at a height; the error is the
	// domain "no such block" outcome, not a transport failure.
	HeaderByNumber(n uint64) (BlockHeader, error)
	// Contracts enumerates every alive contract in deterministic order.
	Contracts() []etypes.Address

	// Code returns the runtime bytecode at addr (nil when none).
	Code(addr etypes.Address) []byte
	// CodeHash returns Keccak-256 of the runtime bytecode at addr.
	CodeHash(addr etypes.Address) etypes.Hash
	// CreatedAt returns the deployment block of addr.
	CreatedAt(addr etypes.Address) uint64
	// Exists reports whether an account record exists at addr.
	Exists(addr etypes.Address) bool
	// GetState returns the latest value of a storage slot.
	GetState(addr etypes.Address, key etypes.Hash) etypes.Hash
	// GetBalance returns the latest balance of addr.
	GetBalance(addr etypes.Address) u256.Int
	// GetNonce returns the latest nonce of addr.
	GetNonce(addr etypes.Address) uint64
	// TxSelectors returns the selectors observed in past transactions to
	// addr (the diamond-extension data source).
	TxSelectors(addr etypes.Address) [][4]byte

	// GetStorageAt is the archive API: a slot's value as of the end of the
	// given block.
	GetStorageAt(addr etypes.Address, slot etypes.Hash, block uint64) etypes.Hash
	// APICalls returns the monotonic count of logical GetStorageAt reads.
	APICalls() int64
}

// The in-memory chain is the reference Reader implementation.
var _ Reader = (*Chain)(nil)

// ReadError is the terminal failure of one logical read against a fallible
// Reader implementation: the resilient client panics with it after its
// retry budget (or circuit breaker) gives up on a read, and the analysis
// layers recover it to mark the affected contract Unresolved. See the
// Reader error contract.
type ReadError struct {
	// Op names the failed read ("code", "storage-at", ...).
	Op string
	// Addr is the account the read was about (zero for chain-level reads).
	Addr etypes.Address
	// Attempts is how many times the read was tried before giving up.
	Attempts int
	// Err is the last underlying error.
	Err error
}

// Error implements error.
func (e *ReadError) Error() string {
	if e.Addr.IsZero() {
		return fmt.Sprintf("chain: %s read failed after %d attempt(s): %v", e.Op, e.Attempts, e.Err)
	}
	return fmt.Sprintf("chain: %s read for %s failed after %d attempt(s): %v", e.Op, e.Addr.Hex(), e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ReadError) Unwrap() error { return e.Err }

// CaptureReadError runs fn and intercepts the Reader failure contract: a
// panic with a *ReadError is returned as a value, any other panic is
// re-raised untouched. The analysis engine wraps each per-contract unit of
// work with it so one contract's exhausted retries degrade that contract to
// Unresolved instead of crashing the run.
func CaptureReadError(fn func()) (re *ReadError) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*ReadError); ok {
				re = e
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}
