package chain_test

import (
	"sync"
	"testing"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/u256"
)

// TestConcurrentReadsDuringExecution hammers the chain's read API from many
// goroutines while transactions commit concurrently — the exact shape of
// the streaming pipeline probing contracts while a dataset generator or
// replay mutates state. Run with -race; the assertions only sanity-check
// that reads observe consistent values.
func TestConcurrentReadsDuringExecution(t *testing.T) {
	c := chain.New()
	target := etypes.MustAddress("0x00000000000000000000000000000000000000c1")
	c.InstallContract(target, storeArgContract())

	var others []etypes.Address
	for i := byte(1); i <= 8; i++ {
		addr := etypes.BytesToAddress([]byte{0xd0, i})
		c.InstallContract(addr, storeArgContract())
		others = append(others, addr)
	}

	var wg sync.WaitGroup
	const writers, readers, rounds = 2, 8, 50

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				rc := c.Execute(alice, target, word(uint64(w*rounds+i+1)), 0, u256.Zero())
				if rc.Err != nil {
					t.Errorf("execute: %v", rc.Err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for _, addr := range others {
					if len(c.Code(addr)) == 0 {
						t.Error("installed contract lost its code")
						return
					}
					c.GetState(addr, etypes.Hash{})
					c.GetStorageAt(addr, etypes.Hash{}, c.CurrentBlock())
					c.CreatedAt(addr)
					c.IsDestroyed(addr)
				}
				if got := len(c.Contracts()); got < 9 {
					t.Errorf("contracts = %d, want >= 9", got)
					return
				}
				c.DelegateEvents()
				c.Logs()
				c.TxCount(target)
				c.LatestHeader()
			}
		}()
	}
	wg.Wait()

	// All writes committed: slot 0 holds one of the written values and the
	// history depth equals the number of executed transactions.
	if v := c.GetState(target, etypes.Hash{}); v == (etypes.Hash{}) {
		t.Error("target slot 0 still zero after concurrent writes")
	}
	if got := c.TxCount(target); got != writers*rounds {
		t.Errorf("tx count = %d, want %d", got, writers*rounds)
	}
}
