package chain

import (
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// Receipt is the outcome of a transaction.
type Receipt struct {
	Status          bool
	Output          []byte
	GasUsed         uint64
	Err             error
	ContractAddress etypes.Address // set for deployments
	Block           uint64
}

// defaultTxGas is the gas limit used when callers pass zero.
const defaultTxGas = 30_000_000

// txTracer records the internal-call facts trace-based tools mine:
// which addresses a transaction touched and every DELEGATECALL edge.
type txTracer struct {
	chain   *Chain
	touched map[etypes.Address]struct{}
}

var _ evm.Tracer = (*txTracer)(nil)

func (t *txTracer) CaptureStep(*evm.Frame, uint64, evm.Op) {}

// CaptureEnter runs during Execute/Deploy, which hold the chain's write
// lock, so it uses the unlocked internals.
func (t *txTracer) CaptureEnter(kind evm.CallKind, from, to etypes.Address, input []byte, value u256.Int) {
	t.touched[to] = struct{}{}
	if kind == evm.CallKindDelegateCall {
		t.chain.delegateEvents = append(t.chain.delegateEvents, DelegateEvent{
			Proxy: from,
			Logic: to,
			Block: t.chain.currentBlock(),
		})
	}
}

func (t *txTracer) CaptureExit([]byte, error) {}

// blockContext builds the EVM environment for the current block. It (and
// the BlockHash closure it returns, invoked mid-execution) must be called
// with the chain lock held.
func (c *Chain) blockContext() evm.BlockContext {
	head := c.latestHeader()
	return evm.BlockContext{
		Coinbase: etypes.MustAddress("0x95222290dd7278aa3ddd389cc1e1d165cc4bafe5"),
		Number:   head.Number,
		Time:     head.Time,
		GasLimit: 30_000_000,
		ChainID:  u256.FromUint64(c.cfg.ChainID),
		BaseFee:  u256.FromUint64(15_000_000_000),
		BlockHash: func(n uint64) etypes.Hash {
			h, err := c.headerByNumber(n)
			if err != nil {
				return etypes.Hash{}
			}
			return h.Hash
		},
	}
}

// Execute runs an external transaction from an EOA against a contract and
// commits its effects. A new block is sealed before execution, so each
// transaction lands at a distinct height (convenient for storage history).
func (c *Chain) Execute(from, to etypes.Address, input []byte, gas uint64, value u256.Int) Receipt {
	if gas == 0 {
		gas = defaultTxGas
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceBlocks(1)
	c.recordTxSelector(to, input)
	tracer := &txTracer{chain: c, touched: map[etypes.Address]struct{}{to: {}}}
	e := evm.New(execState{c}, evm.Config{
		Block:   c.blockContext(),
		Tx:      evm.TxContext{Origin: from, GasPrice: u256.FromUint64(20_000_000_000)},
		Tracer:  tracer,
		Lenient: true,
	})
	res := e.Call(from, to, input, gas, value)
	for addr := range tracer.touched {
		c.txCount[addr]++
	}
	return Receipt{
		Status:  res.Err == nil,
		Output:  res.Output,
		GasUsed: gas - res.GasLeft,
		Err:     res.Err,
		Block:   c.currentBlock(),
	}
}

// Deploy runs init code as a contract-creation transaction.
func (c *Chain) Deploy(from etypes.Address, initCode []byte, gas uint64, value u256.Int) Receipt {
	if gas == 0 {
		gas = defaultTxGas
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceBlocks(1)
	tracer := &txTracer{chain: c, touched: map[etypes.Address]struct{}{}}
	e := evm.New(execState{c}, evm.Config{
		Block:   c.blockContext(),
		Tx:      evm.TxContext{Origin: from, GasPrice: u256.FromUint64(20_000_000_000)},
		Tracer:  tracer,
		Lenient: true,
	})
	res := e.Create(from, initCode, gas, value)
	for addr := range tracer.touched {
		c.txCount[addr]++
	}
	return Receipt{
		Status:          res.Err == nil,
		Output:          res.Output,
		GasUsed:         gas - res.GasLeft,
		Err:             res.Err,
		ContractAddress: res.Address,
		Block:           c.currentBlock(),
	}
}

// StaticCall executes a read-only call at the chain head without sealing a
// block, recording a transaction, or mutating state. It still takes the
// write lock: a lenient EVM may journal transient effects that are reverted
// before the call returns.
func (c *Chain) StaticCall(from, to etypes.Address, input []byte, gas uint64) Receipt {
	if gas == 0 {
		gas = defaultTxGas
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := evm.New(execState{c}, evm.Config{
		Block:   c.blockContext(),
		Tx:      evm.TxContext{Origin: from},
		Lenient: true,
	})
	res := e.StaticCall(from, to, input, gas)
	return Receipt{
		Status:  res.Err == nil,
		Output:  res.Output,
		GasUsed: gas - res.GasLeft,
		Err:     res.Err,
		Block:   c.currentBlock(),
	}
}
