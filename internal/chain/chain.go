// Package chain implements the simulated Ethereum execution and archive
// node that the reproduction runs against: accounts with code, balances and
// nonces, per-slot storage *history* addressable by block height (the
// getStorageAt archive API Proxion's Algorithm 1 binary-searches over),
// block progression, and transaction execution on the EVM with call tracing
// (the data source for transaction-history-based baselines like CRUSH).
package chain

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/etypes"
	"repro/internal/u256"
)

// BlockHeader is the minimal per-block record the archive keeps.
type BlockHeader struct {
	Number uint64
	Time   uint64
	Hash   etypes.Hash
}

// storageVersion is one historical write to a slot.
type storageVersion struct {
	block uint64
	value etypes.Hash
}

// account is the full record for one address.
type account struct {
	code []byte
	// codeHash caches Keccak(code); code changes only through
	// InstallContract/SetCode, which keep it in sync, so the analysis hot
	// path never re-hashes multi-KB bytecode.
	codeHash etypes.Hash
	balance  u256.Int
	nonce    uint64
	storage  map[etypes.Hash]etypes.Hash
	// history holds every committed write per slot, in block order.
	history map[etypes.Hash][]storageVersion
	// createdAt is the block the account was deployed in.
	createdAt uint64
	destroyed bool
}

// DelegateEvent records one DELEGATECALL observed while executing a
// transaction: the proxy (storage context) and the logic target. This is
// the trace data transaction-history tools mine.
type DelegateEvent struct {
	Proxy etypes.Address
	Logic etypes.Address
	Block uint64
	// InFallback is unknown to trace-based tools; they see only that a
	// delegatecall happened, which is the root of their library-call
	// false positives.
}

// Config identifies the network a Chain simulates. The proxy pattern and
// its EIPs are shared across every EVM chain (Section 8.2 lists Arbitrum,
// Avalanche, BSC, Celo, Fantom, Optimism, Polygon as analysis targets), so
// the only parameters that matter to the analyzer are the chain id exposed
// by the CHAINID opcode and the block cadence.
type Config struct {
	// Name is a human-readable network label, e.g. "ethereum".
	Name string
	// ChainID is the EIP-155 identifier (1 for Ethereum mainnet).
	ChainID uint64
	// BlockInterval is the seconds between blocks (12 for mainnet).
	BlockInterval uint64
	// GenesisTime is the timestamp of block 0.
	GenesisTime uint64
}

// MainnetConfig is the default Ethereum configuration.
func MainnetConfig() Config {
	return Config{
		Name:          "ethereum",
		ChainID:       1,
		BlockInterval: 12,
		GenesisTime:   1_438_269_973,
	}
}

// Chain is the simulated node. All public methods are safe for concurrent
// use: reads (Code, GetState, GetStorageAt, …) take a shared lock, writes
// (Execute, Deploy, InstallContract, …) take it exclusively, and the
// getStorageAt call counter is atomic so counting reads stay contention-free
// on the analysis hot path.
type Chain struct {
	// mu guards every field below except apiCalls. Transaction execution
	// (Execute/Deploy/StaticCall) holds the write lock for the whole EVM run
	// and hands the EVM an unlocked execState view to keep the lock
	// non-reentrant code deadlock-free.
	mu sync.RWMutex

	cfg      Config
	accounts map[etypes.Address]*account
	// head is the latest block height. Headers are pure functions of
	// (config, number) and are computed on demand, so the archive's block
	// index costs no memory however far the chain advances — a prerequisite
	// for streaming million-contract landscapes, where the old header slice
	// alone would hold ~100 MB at two blocks per generated contract.
	head uint64
	// headHeader caches the latest header so the emulation hot path
	// (one LatestHeader per probe) never re-hashes the head block.
	headHeader BlockHeader

	journal []func()

	// txCount tracks external+internal transactions touching an address.
	txCount map[etypes.Address]int
	// txSelectors records the 4-byte selectors ever sent to an address in
	// external transactions — the raw material for the diamond-detection
	// extension (Section 8.2: extract registered functions from past
	// transactions and use them to generate call data).
	txSelectors map[etypes.Address]map[[4]byte]struct{}
	// delegateEvents are all observed DELEGATECALLs across transactions.
	delegateEvents []DelegateEvent

	logs []Log

	apiCalls atomic.Int64
}

// Log is an emitted event record.
type Log struct {
	Address etypes.Address
	Topics  []etypes.Hash
	Data    []byte
	Block   uint64
}

// New creates a mainnet-configured chain with only the genesis block.
func New() *Chain { return NewWithConfig(MainnetConfig()) }

// NewWithConfig creates a chain for an arbitrary EVM network.
func NewWithConfig(cfg Config) *Chain {
	if cfg.BlockInterval == 0 {
		cfg.BlockInterval = 12
	}
	c := &Chain{
		cfg:         cfg,
		accounts:    make(map[etypes.Address]*account),
		txCount:     make(map[etypes.Address]int),
		txSelectors: make(map[etypes.Address]map[[4]byte]struct{}),
	}
	c.headHeader = c.makeHeader(0)
	return c
}

// Config returns the chain's network configuration.
func (c *Chain) Config() Config { return c.cfg }

func (c *Chain) makeHeader(number uint64) BlockHeader {
	var numBuf [8]byte
	for i := 0; i < 8; i++ {
		numBuf[7-i] = byte(number >> (8 * i))
	}
	return BlockHeader{
		Number: number,
		Time:   c.cfg.GenesisTime + number*c.cfg.BlockInterval,
		Hash:   etypes.Keccak(numBuf[:]),
	}
}

// CurrentBlock returns the height of the latest block.
func (c *Chain) CurrentBlock() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.currentBlock()
}

func (c *Chain) currentBlock() uint64 { return c.head }

// LatestHeader returns the latest block header.
func (c *Chain) LatestHeader() BlockHeader {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.latestHeader()
}

func (c *Chain) latestHeader() BlockHeader { return c.headHeader }

// HeaderByNumber returns the header at the given height.
func (c *Chain) HeaderByNumber(n uint64) (BlockHeader, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.headerByNumber(n)
}

func (c *Chain) headerByNumber(n uint64) (BlockHeader, error) {
	if n > c.head {
		return BlockHeader{}, fmt.Errorf("chain: no block %d (head %d)", n, c.currentBlock())
	}
	return c.makeHeader(n), nil
}

// AdvanceBlocks appends n empty blocks.
func (c *Chain) AdvanceBlocks(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceBlocks(n)
}

func (c *Chain) advanceBlocks(n uint64) {
	if n == 0 {
		return
	}
	c.head += n
	c.headHeader = c.makeHeader(c.head)
}

// AdvanceTo fast-forwards the chain to the given height.
func (c *Chain) AdvanceTo(height uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if height > c.currentBlock() {
		c.advanceBlocks(height - c.currentBlock())
	}
}

// getOrCreate must be called with the write lock held.
func (c *Chain) getOrCreate(addr etypes.Address) *account {
	acc, ok := c.accounts[addr]
	if !ok {
		acc = &account{
			storage:   make(map[etypes.Hash]etypes.Hash),
			history:   make(map[etypes.Hash][]storageVersion),
			createdAt: c.currentBlock(),
		}
		c.accounts[addr] = acc
	}
	return acc
}

// InstallContract places runtime bytecode at addr directly, bypassing the
// EVM deployment path. The dataset generator uses this to populate large
// contract populations cheaply; createdAt is the current block.
func (c *Chain) InstallContract(addr etypes.Address, code []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := c.getOrCreate(addr)
	acc.code = code
	acc.codeHash = etypes.Keccak(code)
	acc.createdAt = c.currentBlock()
	acc.nonce = 1
}

// SetStorageDirect writes a slot as if by a committed transaction in the
// current block, recording history.
func (c *Chain) SetStorageDirect(addr etypes.Address, slot, value etypes.Hash) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := c.getOrCreate(addr)
	c.writeStorage(acc, slot, value, false)
}

// writeStorage updates current state and history; when journaled, the
// change is registered for rollback. Must be called with the write lock
// held.
func (c *Chain) writeStorage(acc *account, slot, value etypes.Hash, journaled bool) {
	block := c.currentBlock()
	prev := acc.storage[slot]
	hist := acc.history[slot]
	prevHistLen := len(hist)
	var replacedLast *storageVersion
	if n := len(hist); n > 0 && hist[n-1].block == block {
		// Same-block overwrite: the archive records the end-of-block value.
		last := hist[n-1]
		replacedLast = &last
		hist[n-1].value = value
	} else {
		hist = append(hist, storageVersion{block: block, value: value})
	}
	acc.history[slot] = hist
	acc.storage[slot] = value
	if journaled {
		c.journal = append(c.journal, func() {
			acc.storage[slot] = prev
			if replacedLast != nil {
				acc.history[slot][prevHistLen-1] = *replacedLast
			} else {
				acc.history[slot] = acc.history[slot][:prevHistLen]
			}
		})
	}
}

// Fund credits addr with amount wei.
func (c *Chain) Fund(addr etypes.Address, amount u256.Int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := c.getOrCreate(addr)
	acc.balance = acc.balance.Add(amount)
}

// Code returns the runtime bytecode at addr.
func (c *Chain) Code(addr etypes.Address) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.code(addr)
}

func (c *Chain) code(addr etypes.Address) []byte {
	if acc, ok := c.accounts[addr]; ok && !acc.destroyed {
		return acc.code
	}
	return nil
}

// emptyCodeHash is Keccak of empty input — the hash of a codeless account.
var emptyCodeHash = etypes.Keccak(nil)

// CodeHash returns Keccak-256 of the runtime bytecode at addr, served from
// the per-account cache instead of re-hashing.
func (c *Chain) CodeHash(addr etypes.Address) etypes.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.getCodeHash(addr)
}

func (c *Chain) getCodeHash(addr etypes.Address) etypes.Hash {
	if acc, ok := c.accounts[addr]; ok && !acc.destroyed && len(acc.code) > 0 {
		return acc.codeHash
	}
	return emptyCodeHash
}

// CreatedAt returns the deployment block of addr.
func (c *Chain) CreatedAt(addr etypes.Address) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if acc, ok := c.accounts[addr]; ok {
		return acc.createdAt
	}
	return 0
}

// IsDestroyed reports whether the contract self-destructed.
func (c *Chain) IsDestroyed(addr etypes.Address) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	acc, ok := c.accounts[addr]
	return ok && acc.destroyed
}

// Contracts returns every address holding code (alive contracts), sorted
// for determinism.
func (c *Chain) Contracts() []etypes.Address {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []etypes.Address
	for addr, acc := range c.accounts {
		if len(acc.code) > 0 && !acc.destroyed {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// GetStorageAt is the archive API: the value of a slot as of the end of the
// given block. Every call increments the API-call counter that the
// Algorithm 1 efficiency experiment reports on.
func (c *Chain) GetStorageAt(addr etypes.Address, slot etypes.Hash, block uint64) etypes.Hash {
	c.apiCalls.Add(1)
	c.mu.RLock()
	defer c.mu.RUnlock()
	acc, ok := c.accounts[addr]
	if !ok {
		return etypes.Hash{}
	}
	hist := acc.history[slot]
	// Find the last version with version.block <= block.
	idx := sort.Search(len(hist), func(i int) bool { return hist[i].block > block })
	if idx == 0 {
		return etypes.Hash{}
	}
	return hist[idx-1].value
}

// APICalls returns the number of GetStorageAt calls since the last reset.
func (c *Chain) APICalls() int64 { return c.apiCalls.Load() }

// ResetAPICalls zeroes the GetStorageAt counter.
func (c *Chain) ResetAPICalls() { c.apiCalls.Store(0) }

// TxCount returns how many transactions (external or internal) have touched
// addr — the "has past transactions" signal trace-based tools depend on.
func (c *Chain) TxCount(addr etypes.Address) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.txCount[addr]
}

// TxSelectors returns the distinct 4-byte selectors observed in external
// transactions to addr, in deterministic order.
func (c *Chain) TxSelectors(addr etypes.Address) [][4]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := c.txSelectors[addr]
	out := make([][4]byte, 0, len(set))
	for sel := range set {
		out = append(out, sel)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < 4; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// recordTxSelector notes the selector of an external transaction's input.
// Must be called with the write lock held.
func (c *Chain) recordTxSelector(addr etypes.Address, input []byte) {
	if len(input) < 4 {
		return
	}
	var sel [4]byte
	copy(sel[:], input)
	set := c.txSelectors[addr]
	if set == nil {
		set = make(map[[4]byte]struct{})
		c.txSelectors[addr] = set
	}
	set[sel] = struct{}{}
}

// DelegateEvents returns a copy of every DELEGATECALL observed in executed
// transactions, in order.
func (c *Chain) DelegateEvents() []DelegateEvent {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]DelegateEvent, len(c.delegateEvents))
	copy(out, c.delegateEvents)
	return out
}

// Logs returns a copy of all emitted logs.
func (c *Chain) Logs() []Log {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Log, len(c.logs))
	copy(out, c.logs)
	return out
}

// Forget removes an account and its per-address bookkeeping (storage
// history, transaction counts, observed selectors) from the archive. The
// streaming landscape generator retires fully-analyzed windows through it
// so peak memory tracks the window size instead of the corpus size. A
// later write to a forgotten address transparently recreates an empty
// account; code is gone for good, which is exactly the retirement
// contract — nothing downstream reads a retired contract again.
func (c *Chain) Forget(addr etypes.Address) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.accounts, addr)
	delete(c.txCount, addr)
	delete(c.txSelectors, addr)
}

// TrimEvents drops delegate events and logs emitted before the given
// block, bounding the trace buffers that otherwise grow with every
// generated transaction. Trace-based baselines (CRUSH, Salehi) only read
// events for contracts still under analysis, which retirement keeps above
// the trim point.
func (c *Chain) TrimEvents(before uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delegateEvents = trimByBlock(c.delegateEvents, before, func(e DelegateEvent) uint64 { return e.Block })
	c.logs = trimByBlock(c.logs, before, func(l Log) uint64 { return l.Block })
}

// trimByBlock drops the (chronological) prefix of events older than
// `before`, reallocating so the freed prefix is actually collectable.
func trimByBlock[E any](events []E, before uint64, blockOf func(E) uint64) []E {
	idx := sort.Search(len(events), func(i int) bool { return blockOf(events[i]) >= before })
	if idx == 0 {
		return events
	}
	kept := make([]E, len(events)-idx)
	copy(kept, events[idx:])
	return kept
}

// LogsInRange returns logs emitted in blocks [from, to], optionally
// filtered by emitting address (the eth_getLogs shape).
func (c *Chain) LogsInRange(from, to uint64, addr *etypes.Address) []Log {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Log
	for _, l := range c.logs {
		if l.Block < from || l.Block > to {
			continue
		}
		if addr != nil && l.Address != *addr {
			continue
		}
		out = append(out, l)
	}
	return out
}
