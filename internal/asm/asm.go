// Package asm provides a small EVM assembler used by the contract generator
// and by tests to build bytecode from readable programs. It supports labels
// with two-byte (PUSH2) jump targets, raw byte injection, and automatic
// sizing of PUSH immediates.
package asm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/evm"
	"repro/internal/u256"
)

// Program accumulates instructions and resolves labels at assembly time.
// The zero value is an empty program ready for use.
type Program struct {
	items  []item
	labels map[string]struct{}
}

type itemKind int

const (
	kindOp itemKind = iota + 1
	kindPushImm
	kindPushLabel
	kindLabel
	kindDataLabel
	kindRaw
)

type item struct {
	kind  itemKind
	op    evm.Op
	imm   []byte
	label string
	raw   []byte
}

// Op appends a bare opcode.
func (p *Program) Op(ops ...evm.Op) *Program {
	for _, op := range ops {
		p.items = append(p.items, item{kind: kindOp, op: op})
	}
	return p
}

// Push appends the smallest PUSHn carrying the value (PUSH1 for zero, to
// keep bytecode shapes predictable for the disassembler tests).
func (p *Program) Push(v u256.Int) *Program {
	b := v.Bytes()
	if len(b) == 0 {
		b = []byte{0}
	}
	return p.PushBytes(b)
}

// PushUint is Push for small constants.
func (p *Program) PushUint(v uint64) *Program { return p.Push(u256.FromUint64(v)) }

// PushBytes appends a PUSHn with exactly the given immediate bytes
// (1 to 32 of them). Use this for 4-byte selectors and 20-byte addresses so
// the emitted opcode is PUSH4/PUSH20 as real compilers produce.
func (p *Program) PushBytes(b []byte) *Program {
	if len(b) == 0 || len(b) > 32 {
		panic(fmt.Sprintf("asm: push immediate must be 1..32 bytes, got %d", len(b)))
	}
	imm := make([]byte, len(b))
	copy(imm, b)
	p.items = append(p.items, item{kind: kindPushImm, imm: imm})
	return p
}

// PushLabel appends a PUSH2 whose immediate is the final byte offset of the
// named label.
func (p *Program) PushLabel(name string) *Program {
	p.items = append(p.items, item{kind: kindPushLabel, label: name})
	return p
}

// Label defines a jump target at the current position and emits a JUMPDEST.
func (p *Program) Label(name string) *Program {
	if p.labels == nil {
		p.labels = make(map[string]struct{})
	}
	if _, dup := p.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q", name))
	}
	p.labels[name] = struct{}{}
	p.items = append(p.items, item{kind: kindLabel, label: name})
	return p
}

// DataLabel defines a label at the current position without emitting a
// JUMPDEST. Use it to reference embedded data (CODECOPY sources); it is not
// a valid jump target.
func (p *Program) DataLabel(name string) *Program {
	if p.labels == nil {
		p.labels = make(map[string]struct{})
	}
	if _, dup := p.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q", name))
	}
	p.labels[name] = struct{}{}
	p.items = append(p.items, item{kind: kindDataLabel, label: name})
	return p
}

// Raw appends raw bytes verbatim (e.g. embedded data, metadata trailers).
func (p *Program) Raw(b []byte) *Program {
	raw := make([]byte, len(b))
	copy(raw, b)
	p.items = append(p.items, item{kind: kindRaw, raw: raw})
	return p
}

// Jump emits PUSH2 label; JUMP.
func (p *Program) Jump(label string) *Program {
	return p.PushLabel(label).Op(evm.JUMP)
}

// JumpI emits PUSH2 label; JUMPI (condition must already be below the
// target on the stack per EVM operand order: JUMPI pops dest, then cond).
func (p *Program) JumpI(label string) *Program {
	return p.PushLabel(label).Op(evm.JUMPI)
}

// size returns the encoded size of an item.
func (it item) size() int {
	switch it.kind {
	case kindOp:
		return 1
	case kindPushImm:
		return 1 + len(it.imm)
	case kindPushLabel:
		return 3 // PUSH2 hi lo
	case kindLabel:
		return 1 // JUMPDEST
	case kindDataLabel:
		return 0
	case kindRaw:
		return len(it.raw)
	default:
		panic("asm: unknown item kind")
	}
}

// Assemble resolves labels and returns the final bytecode.
func (p *Program) Assemble() ([]byte, error) {
	offsets := make(map[string]int)
	pos := 0
	for _, it := range p.items {
		if it.kind == kindLabel || it.kind == kindDataLabel {
			offsets[it.label] = pos
		}
		pos += it.size()
	}
	out := make([]byte, 0, pos)
	for _, it := range p.items {
		switch it.kind {
		case kindOp:
			out = append(out, byte(it.op))
		case kindPushImm:
			out = append(out, byte(evm.PUSH1)+byte(len(it.imm)-1))
			out = append(out, it.imm...)
		case kindPushLabel:
			off, ok := offsets[it.label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined label %q", it.label)
			}
			if off > 0xffff {
				return nil, fmt.Errorf("asm: label %q offset %d exceeds PUSH2 range", it.label, off)
			}
			var buf [2]byte
			binary.BigEndian.PutUint16(buf[:], uint16(off))
			out = append(out, byte(evm.PUSH2), buf[0], buf[1])
		case kindLabel:
			out = append(out, byte(evm.JUMPDEST))
		case kindDataLabel:
			// Marker only; no bytes emitted.
		case kindRaw:
			out = append(out, it.raw...)
		}
	}
	return out, nil
}

// MustAssemble is Assemble that panics on error; for tests and generators
// whose programs are built from trusted constants.
func (p *Program) MustAssemble() []byte {
	code, err := p.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}
