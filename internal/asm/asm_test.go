package asm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/evm"
	"repro/internal/u256"
)

func TestPushSizesMinimal(t *testing.T) {
	var p asm.Program
	p.PushUint(0).PushUint(0xff).PushUint(0x1234).Push(u256.One().Shl(248))
	code := p.MustAssemble()
	want := []byte{
		byte(evm.PUSH1), 0x00,
		byte(evm.PUSH1), 0xff,
		byte(evm.PUSH2), 0x12, 0x34,
		byte(evm.PUSH32),
	}
	for i, b := range want {
		if code[i] != b {
			t.Fatalf("byte %d = %02x, want %02x (code %x)", i, code[i], b, code)
		}
	}
	if len(code) != len(want)+32 {
		t.Errorf("length = %d", len(code))
	}
}

func TestPushBytesExactWidth(t *testing.T) {
	var p asm.Program
	p.PushBytes([]byte{0x00, 0x00, 0x00, 0x01}) // must stay PUSH4
	code := p.MustAssemble()
	if code[0] != byte(evm.PUSH4) {
		t.Errorf("opcode = %02x, want PUSH4", code[0])
	}
}

func TestLabelsResolve(t *testing.T) {
	var p asm.Program
	p.Jump("end").Op(evm.INVALID).Label("end").Op(evm.STOP)
	code := p.MustAssemble()
	// Layout: PUSH2 hi lo JUMP INVALID JUMPDEST STOP
	dest := int(code[1])<<8 | int(code[2])
	if evm.Op(code[dest]) != evm.JUMPDEST {
		t.Errorf("jump target %d is %02x, not JUMPDEST", dest, code[dest])
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	var p asm.Program
	p.Jump("nowhere")
	if _, err := p.Assemble(); err == nil {
		t.Error("undefined label should fail")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label should panic")
		}
	}()
	var p asm.Program
	p.Label("x").Label("x")
}

func TestDataLabelEmitsNoBytes(t *testing.T) {
	var p asm.Program
	p.PushLabel("data").Op(evm.POP).DataLabel("data").Raw([]byte{0xaa, 0xbb})
	code := p.MustAssemble()
	// PUSH2 hi lo POP, then data begins immediately (no JUMPDEST).
	dataOff := int(code[1])<<8 | int(code[2])
	if code[dataOff] != 0xaa {
		t.Errorf("data label points at %02x, want 0xaa", code[dataOff])
	}
}

func TestPushBytesBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized push should panic")
		}
	}()
	var p asm.Program
	p.PushBytes(make([]byte, 33))
}
