package serve

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/gen"
	"repro/internal/watch"
)

// gatedReader blocks Code reads for one address while armed, signalling
// entry — how the tests below pin an analysis mid-flight.
type gatedReader struct {
	chain.Reader
	addr    etypes.Address
	armed   atomic.Bool
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedReader) Code(a etypes.Address) []byte {
	if a == g.addr && g.armed.Load() {
		select {
		case g.entered <- struct{}{}:
		default:
		}
		<-g.gate
	}
	return g.Reader.Code(a)
}

// TestInvalidateWaitsOutInFlight pins the upgrade-while-mid-analysis
// ordering: an Invalidate racing an in-flight analysis of the same address
// must wait that analysis out and then remove everything it published, so
// no pre-upgrade verdict survives, and the next lookup re-enters the
// engine.
func TestInvalidateWaitsOutInFlight(t *testing.T) {
	c := testCorpus(t, 31, 16)
	var target *gen.Label
	for _, l := range c.Labels {
		if l.Detectable && l.TargetStorage {
			target = l
			break
		}
	}
	if target == nil {
		t.Fatalf("corpus has no upgradeable proxy")
	}

	g := &gatedReader{
		Reader:  c.Chain,
		addr:    target.Address,
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
	}
	g.armed.Store(true)
	srv, err := New(Config{Reader: g, Sources: c.Registry, Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	lookupDone := make(chan error, 1)
	go func() {
		_, err := srv.Lookup(target.Address)
		lookupDone <- err
	}()
	<-g.entered // the analysis is now pinned inside the engine

	// The upgrade lands while the pair is mid-analysis.
	clone := etypes.Address{0xc1, 0x0e}
	c.Chain.AdvanceBlocks(1)
	c.Chain.InstallContract(clone, c.Chain.Code(target.Logic))
	c.Chain.SetStorageDirect(target.Address, target.ImplSlot, etypes.HashFromWord(clone.Word()))

	invDone := make(chan int, 1)
	g.armed.Store(false) // Invalidate's own Code read must pass
	go func() {
		n, err := srv.Invalidate(target.Address)
		if err != nil {
			t.Errorf("Invalidate: %v", err)
		}
		invDone <- n
	}()
	select {
	case <-invDone:
		t.Fatalf("Invalidate returned while the analysis was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(g.gate) // release the pinned analysis
	if err := <-lookupDone; err != nil {
		t.Fatalf("pinned lookup failed: %v", err)
	}
	n := <-invDone
	if n < 2 {
		t.Fatalf("Invalidate dropped %d tier(s); the in-flight publication plus the verdict cache make at least 2", n)
	}

	before := srv.Counters().Analyses
	it, err := srv.Lookup(target.Address)
	if err != nil {
		t.Fatalf("post-invalidate lookup: %v", err)
	}
	if got := srv.Counters().Analyses; got != before+1 {
		t.Fatalf("post-invalidate lookup was served from a cache (%d -> %d analyses)", before, got)
	}
	if it.Report.Logic != clone {
		t.Fatalf("post-invalidate verdict delegates to %v, upgrade installed %v", it.Report.Logic.Hex(), clone.Hex())
	}
}

// TestServerAsFollowerBackend drives a watch.Follower with the Server as
// its Analyzer — the exact wiring proxiond -follow uses. Every scripted
// upgrade must surface as an event, and afterwards the server must answer
// from caches that reflect the post-upgrade world, including for the
// beacon proxy whose own storage never changed.
func TestServerAsFollowerBackend(t *testing.T) {
	tl := gen.GenerateTimeline(gen.TimelineConfig{Seed: 10})
	srv, err := New(Config{Reader: tl.Chain, Sources: tl.Registry, Shards: 2, WithHistory: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	var events []watch.UpgradeEvent
	f, err := watch.New(watch.Config{
		Reader:    tl.Chain,
		Analyzer:  srv,
		OnUpgrade: func(ev watch.UpgradeEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("watch.New: %v", err)
	}
	if err := f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}

	scripted := 0
	for _, ev := range tl.Events {
		if !ev.Deploy {
			scripted++
		}
	}
	if len(events) != scripted {
		t.Fatalf("%d events for %d scripted upgrades", len(events), scripted)
	}
	for _, tp := range tl.Proxies {
		final := tp.Steps[len(tp.Steps)-1].Logic
		it, err := srv.Lookup(tp.Address)
		if err != nil {
			t.Fatalf("lookup %v: %v", tp.Address.Hex(), err)
		}
		if it.Report.Logic != final {
			t.Fatalf("%v proxy %v served logic %v after following, chain says %v",
				tp.Kind, tp.Address.Hex(), it.Report.Logic.Hex(), final.Hex())
		}
	}
}

// TestWatchStatsEndpoint pins the /v1/watch/stats surface: 404 without a
// follower, the wired snapshot with one.
func TestWatchStatsEndpoint(t *testing.T) {
	c := testCorpus(t, 33, 8)
	srv, ts := newTestServer(t, c, Config{Shards: 2})

	resp, err := http.Get(ts.URL + "/v1/watch/stats")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d without a follower, want 404", resp.StatusCode)
	}

	srv.SetWatchStats(func() any {
		return watch.StatsSnapshot{Cursor: 9, UpgradesDetected: 2}
	})
	var snap watch.StatsSnapshot
	getJSON(t, ts.URL+"/v1/watch/stats", &snap)
	if snap.Cursor != 9 || snap.UpgradesDetected != 2 {
		t.Fatalf("endpoint served %+v", snap)
	}
}
