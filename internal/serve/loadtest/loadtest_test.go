package loadtest_test

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"

	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/serve/loadtest"
)

// envInt reads an integer knob from the environment — how the nightly CI
// job scales the run up without a separate code path.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestLoadAgainstInProcessServer is the CI loadtest: it stands up the
// full service in-process, drives it with the harness, sanity-checks the
// report, and (when LOADTEST_REPORT is set) writes the JSON artifact CI
// archives on every PR. Defaults are sized for the PR gate; the nightly
// job raises LOADTEST_REQUESTS / LOADTEST_CONCURRENCY.
func TestLoadAgainstInProcessServer(t *testing.T) {
	contracts := envInt("LOADTEST_CONTRACTS", 96)
	requests := envInt("LOADTEST_REQUESTS", 768)
	concurrency := envInt("LOADTEST_CONCURRENCY", 12)
	if testing.Short() {
		contracts, requests, concurrency = 32, 128, 4
	}

	c := gen.Generate(gen.Config{Seed: 101, Contracts: contracts})
	srv, err := serve.New(serve.Config{
		Reader:   c.Chain,
		Sources:  c.Registry,
		Shards:   4,
		StoreDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var addrs []string
	for _, a := range c.Chain.Contracts() {
		addrs = append(addrs, a.Hex())
	}
	rep, err := loadtest.Run(loadtest.Config{
		BaseURL:     ts.URL,
		Addresses:   addrs,
		Concurrency: concurrency,
		Requests:    requests,
		HotFraction: 0.8,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("loadtest.Run: %v", err)
	}

	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors of %d requests", rep.Errors, rep.Requests)
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS || rep.MaxMS < rep.P99MS {
		t.Fatalf("nonsensical percentiles: p50=%.3f p99=%.3f max=%.3f", rep.P50MS, rep.P99MS, rep.MaxMS)
	}
	if rep.QPS <= 0 {
		t.Fatalf("QPS not computed: %+v", rep)
	}
	if len(rep.Server) == 0 {
		t.Fatalf("report did not capture server stats")
	}

	// The skewed mix must exercise the cache/coalescing path: far fewer
	// engine analyses than requests.
	ctr := srv.Counters()
	if ctr.Analyses >= ctr.Requests {
		t.Fatalf("no dedup under hot-set load: %d analyses for %d requests", ctr.Analyses, ctr.Requests)
	}
	if ctr.Analyses > int64(len(addrs)) {
		t.Fatalf("more analyses (%d) than distinct addresses (%d)", ctr.Analyses, len(addrs))
	}

	// The server's embedded stats must parse back into the serve shape.
	var stats serve.StatsResponse
	if err := json.Unmarshal(rep.Server, &stats); err != nil {
		t.Fatalf("embedded server stats do not parse: %v", err)
	}
	if stats.Counters.Requests < int64(requests) {
		t.Fatalf("server saw %d requests, harness sent %d", stats.Counters.Requests, requests)
	}

	if path := os.Getenv("LOADTEST_REPORT"); path != "" {
		if err := rep.WriteJSON(path); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		t.Logf("wrote loadtest report to %s", path)
	}
	t.Logf("loadtest: %d req @ %d workers: p50=%.2fms p90=%.2fms p99=%.2fms qps=%.0f analyses=%d",
		rep.Requests, rep.Concurrency, rep.P50MS, rep.P90MS, rep.P99MS, rep.QPS, ctr.Analyses)
}

// TestRunValidatesConfig pins the harness's own error paths.
func TestRunValidatesConfig(t *testing.T) {
	if _, err := loadtest.Run(loadtest.Config{}); err == nil {
		t.Fatalf("empty config accepted")
	}
	if _, err := loadtest.Run(loadtest.Config{BaseURL: "http://localhost:1"}); err == nil {
		t.Fatalf("config without addresses accepted")
	}
}
