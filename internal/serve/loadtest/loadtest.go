// Package loadtest is the service-level performance harness for proxiond:
// a self-contained HTTP load generator that drives the verdict endpoint
// with a configurable concurrency and hot-set skew, and reports latency
// percentiles (p50/p90/p99), throughput, and the server's own counters.
// CI runs it in-process against an httptest server and archives the
// report; `proxiond -loadtest` runs the same harness against a live
// process.
package loadtest

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"time"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server under test (no trailing slash).
	BaseURL string
	// Addresses is the query population (hex-encoded).
	Addresses []string
	// Concurrency is the number of parallel client workers (default 8).
	Concurrency int
	// Requests is the total request count across workers (default 512).
	Requests int
	// HotFraction of requests target the hot set (the first max(1, 1/16th)
	// of Addresses), modeling the duplicate-heavy query mix a real
	// deployment sees. Default 0.8.
	HotFraction float64
	// Seed fixes the address-pick sequence.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Requests <= 0 {
		c.Requests = 512
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.8
	}
	return c
}

// Report is the outcome of one load run.
type Report struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Errors      int     `json:"errors"`
	DurationMS  float64 `json:"duration_ms"`
	QPS         float64 `json:"qps"`

	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`

	// Server is the /v1/stats payload captured after the run — the
	// coalescing/cache counters that explain the latency numbers.
	Server json.RawMessage `json:"server,omitempty"`
}

// Run executes the load run. Worker errors are counted, not fatal; the
// returned error covers only configuration problems.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return Report{}, fmt.Errorf("loadtest: BaseURL required")
	}
	if len(cfg.Addresses) == 0 {
		return Report{}, fmt.Errorf("loadtest: no addresses")
	}

	hot := len(cfg.Addresses) / 16
	if hot < 1 {
		hot = 1
	}

	// Pre-plan every request so workers share no RNG state.
	plan := make([]string, cfg.Requests)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range plan {
		if rng.Float64() < cfg.HotFraction {
			plan[i] = cfg.Addresses[rng.Intn(hot)]
		} else {
			plan[i] = cfg.Addresses[rng.Intn(len(cfg.Addresses))]
		}
	}

	type result struct {
		lat time.Duration
		err error
	}
	results := make([]result, cfg.Requests)
	next := make(chan int)
	done := make(chan struct{})
	client := &http.Client{Timeout: 30 * time.Second}

	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		go func() {
			for i := range next {
				t0 := time.Now()
				resp, err := client.Get(cfg.BaseURL + "/v1/verdict?addr=" + plan[i])
				if err == nil {
					_, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
				results[i] = result{lat: time.Since(t0), err: err}
				done <- struct{}{}
			}
		}()
	}
	go func() {
		for i := 0; i < cfg.Requests; i++ {
			next <- i
		}
		close(next)
	}()
	for i := 0; i < cfg.Requests; i++ {
		<-done
	}
	elapsed := time.Since(start)

	rep := Report{
		Requests:    cfg.Requests,
		Concurrency: cfg.Concurrency,
		DurationMS:  float64(elapsed.Microseconds()) / 1000,
	}
	lats := make([]time.Duration, 0, cfg.Requests)
	for _, r := range results {
		if r.err != nil {
			rep.Errors++
			continue
		}
		lats = append(lats, r.lat)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		rep.P50MS = ms(percentile(lats, 0.50))
		rep.P90MS = ms(percentile(lats, 0.90))
		rep.P99MS = ms(percentile(lats, 0.99))
		rep.MaxMS = ms(lats[len(lats)-1])
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(cfg.Requests-rep.Errors) / secs
	}

	// Attach the server's own view of the run.
	if resp, err := client.Get(cfg.BaseURL + "/v1/stats"); err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && resp.StatusCode == http.StatusOK && json.Valid(body) {
			rep.Server = json.RawMessage(body)
		}
	}
	return rep, nil
}

// percentile returns the p-th latency from a sorted slice (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// WriteIndented renders the report as indented JSON.
func (r Report) WriteIndented() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadtest: %w", err)
	}
	return out, nil
}

// WriteJSON writes the report, indented, to path — the CI artifact hook.
func (r Report) WriteJSON(path string) error {
	out, err := r.WriteIndented()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return fmt.Errorf("loadtest: %w", err)
	}
	return nil
}
