package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/pipeline"
	"repro/internal/proxion"
	"repro/internal/static"
	"repro/internal/store"
)

// The service's JSON surface. Verdicts are flat, hex-encoded renderings
// of proxion.Report — the wire shape is decoupled from the analysis
// structs so the engine can evolve without breaking clients.

// Verdict is the JSON form of one contract's analysis report.
type Verdict struct {
	Address         string `json:"address"`
	IsProxy         bool   `json:"is_proxy"`
	Logic           string `json:"logic,omitempty"`
	Target          string `json:"target,omitempty"`
	ImplSlot        string `json:"impl_slot,omitempty"`
	Standard        string `json:"standard,omitempty"`
	HasDelegateCall bool   `json:"has_delegatecall"`
	EmulationErr    string `json:"emulation_err,omitempty"`
	Unresolved      bool   `json:"unresolved,omitempty"`
	ResolveErr      string `json:"resolve_err,omitempty"`
	Reason          string `json:"reason"`
}

// verdictOf renders a report for the wire.
func verdictOf(rep proxion.Report) Verdict {
	v := Verdict{
		Address:         rep.Address.Hex(),
		IsProxy:         rep.IsProxy,
		HasDelegateCall: rep.HasDelegateCall,
		Unresolved:      rep.Unresolved,
		Reason:          rep.Reason,
	}
	if rep.IsProxy {
		v.Logic = rep.Logic.Hex()
		v.Target = rep.Target.String()
		v.Standard = rep.Standard.String()
		if rep.Target == proxion.TargetStorage {
			v.ImplSlot = rep.ImplSlot.Hex()
		}
	}
	if rep.EmulationErr != nil {
		v.EmulationErr = rep.EmulationErr.Error()
	}
	if rep.ResolveErr != nil {
		v.ResolveErr = rep.ResolveErr.Error()
	}
	return v
}

// FunctionCollisionJSON is one colliding selector on the wire.
type FunctionCollisionJSON struct {
	Selector   string `json:"selector"`
	ProxyProto string `json:"proxy_proto,omitempty"`
	LogicProto string `json:"logic_proto,omitempty"`
}

// StorageCollisionJSON is one colliding storage slot on the wire.
type StorageCollisionJSON struct {
	Slot        string `json:"slot"`
	ProxyOffset int    `json:"proxy_offset"`
	ProxySize   int    `json:"proxy_size"`
	LogicOffset int    `json:"logic_offset"`
	LogicSize   int    `json:"logic_size"`
	Exploitable bool   `json:"exploitable"`
	Verified    bool   `json:"verified"`
}

// CollisionReport is the JSON form of one proxy/logic pair analysis.
type CollisionReport struct {
	Proxy           string                  `json:"proxy"`
	Logic           string                  `json:"logic"`
	IsProxy         bool                    `json:"is_proxy"`
	Functions       []FunctionCollisionJSON `json:"function_collisions"`
	Storage         []StorageCollisionJSON  `json:"storage_collisions"`
	ExploitVerified bool                    `json:"exploit_verified"`
	Reason          string                  `json:"reason,omitempty"`
}

// collisionsOf renders an item's pair analysis for the wire.
func collisionsOf(it proxion.Item) CollisionReport {
	out := CollisionReport{
		Proxy:     it.Report.Address.Hex(),
		IsProxy:   it.Report.IsProxy,
		Functions: []FunctionCollisionJSON{},
		Storage:   []StorageCollisionJSON{},
	}
	if !it.Report.IsProxy {
		out.Reason = it.Report.Reason
		return out
	}
	out.Logic = it.Report.Logic.Hex()
	if it.Pair == nil {
		out.Reason = "no pair analysis (logic address unresolved)"
		return out
	}
	for _, fc := range it.Pair.Functions {
		out.Functions = append(out.Functions, FunctionCollisionJSON{
			Selector:   fmt.Sprintf("0x%x", fc.Selector),
			ProxyProto: fc.ProxyProto,
			LogicProto: fc.LogicProto,
		})
	}
	for _, sc := range it.Pair.Storage {
		out.Storage = append(out.Storage, StorageCollisionJSON{
			Slot:        sc.Slot.Hex(),
			ProxyOffset: sc.ProxyOffset,
			ProxySize:   sc.ProxySize,
			LogicOffset: sc.LogicOffset,
			LogicSize:   sc.LogicSize,
			Exploitable: sc.Exploitable,
			Verified:    sc.Verified,
		})
	}
	out.ExploitVerified = it.Pair.ExploitVerified
	return out
}

// StaticDelegateJSON is one reachable DELEGATECALL site on the wire.
type StaticDelegateJSON struct {
	PC               uint64 `json:"pc"`
	Provenance       string `json:"provenance"`
	Target           string `json:"target,omitempty"`
	Slot             string `json:"slot,omitempty"`
	ForwardsCalldata bool   `json:"forwards_calldata"`
	TargetTainted    bool   `json:"target_tainted,omitempty"`
}

// StaticReport is the /v1/static payload: the emulation-free static
// profile of one contract's runtime bytecode.
type StaticReport struct {
	Address         string               `json:"address"`
	CodeHash        string               `json:"code_hash"`
	Fingerprint     string               `json:"fingerprint"`
	Selectors       []string             `json:"selectors"`
	SlotReads       []string             `json:"slot_reads,omitempty"`
	SlotWrites      []string             `json:"slot_writes,omitempty"`
	KeccakReads     int                  `json:"keccak_reads,omitempty"`
	KeccakWrites    int                  `json:"keccak_writes,omitempty"`
	Delegates       []StaticDelegateJSON `json:"delegates"`
	HasDelegateCall bool                 `json:"has_delegatecall"`
	Blocks          int                  `json:"blocks"`
	ReachableBlocks int                  `json:"reachable_blocks"`
	MaskedImmFlow   bool                 `json:"masked_imm_flow,omitempty"`
	Truncated       bool                 `json:"truncated,omitempty"`
}

// staticReportOf renders a static summary for the wire.
func staticReportOf(addr etypes.Address, sum *static.Summary) StaticReport {
	out := StaticReport{
		Address:         addr.Hex(),
		CodeHash:        sum.CodeHash.Hex(),
		Fingerprint:     sum.Fingerprint.Hex(),
		Selectors:       []string{},
		Delegates:       []StaticDelegateJSON{},
		HasDelegateCall: sum.HasDelegateCall,
		Blocks:          sum.Blocks,
		ReachableBlocks: sum.ReachableBlocks,
		KeccakReads:     sum.KeccakReads,
		KeccakWrites:    sum.KeccakWrites,
		MaskedImmFlow:   sum.MaskedImmFlow,
		Truncated:       sum.Truncated,
	}
	for _, sel := range sum.Selectors {
		out.Selectors = append(out.Selectors, fmt.Sprintf("0x%x", sel))
	}
	for _, s := range sum.SlotReads {
		out.SlotReads = append(out.SlotReads, s.Hex())
	}
	for _, s := range sum.SlotWrites {
		out.SlotWrites = append(out.SlotWrites, s.Hex())
	}
	for _, del := range sum.Delegates {
		j := StaticDelegateJSON{
			PC:               del.PC,
			Provenance:       del.Provenance.String(),
			ForwardsCalldata: del.ForwardsCalldata,
			TargetTainted:    del.TargetTainted,
		}
		switch del.Provenance {
		case static.ProvHardcoded:
			j.Target = del.Target.Hex()
		case static.ProvSlotConst:
			j.Slot = del.Slot.Hex()
		}
		out.Delegates = append(out.Delegates, j)
	}
	return out
}

// ShardStats is one shard's live statistics: the same proxion.Summary
// shape the CLI's -json flag emits, fed from the shard's fold-as-you-go
// builder and live pipeline counters.
type ShardStats struct {
	Shard   int             `json:"shard"`
	Summary proxion.Summary `json:"summary"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Counters Counters `json:"counters"`
	// Total is the shard summaries merged — the whole service's landscape
	// view in the -json summary shape.
	Total  proxion.Summary `json:"total"`
	Shards []ShardStats    `json:"shards"`
	Store  *store.Stats    `json:"store,omitempty"`
}

// liveSnapshot freezes a running shard's atomic counters into the
// pipeline.Snapshot shape without waiting for the engine to finish —
// stage instrumentation and wall-clock fields stay zero, the run counters
// are exact at the instant of the read.
func liveSnapshot(st *pipeline.Stats) *pipeline.Snapshot {
	snap := &pipeline.Snapshot{
		Contracts:          st.Scanned.Load(),
		NoCode:             st.NoCode.Load(),
		FilterRejected:     st.FilterRejected.Load(),
		Emulations:         st.Emulations.Load(),
		CacheHits:          st.CacheHits.Load(),
		StructuralHits:     st.StructuralHits.Load(),
		StaticSummaries:    st.StaticSummaries.Load(),
		StructuralRejects:  st.StructuralRejects.Load(),
		EmulationAborts:    st.EmulationAborts.Load(),
		ProxiesDetected:    st.ProxiesDetected.Load(),
		PairsAnalyzed:      st.PairsAnalyzed.Load(),
		HistoriesRecovered: st.HistoriesRecovered.Load(),
		StorageAPICalls:    st.StorageAPICalls.Load(),
		Unresolved:         st.Unresolved.Load(),
		Retries:            st.Retries.Load(),
		BreakerTrips:       st.BreakerTrips.Load(),
	}
	if lookups := snap.CacheHits + snap.Emulations; lookups > 0 {
		snap.CacheHitRate = float64(snap.CacheHits) / float64(lookups)
	}
	return snap
}

// Stats assembles the service-wide statistics: per-shard summaries in the
// -json shape (with live pipeline counters), their merge, the store's
// counters and the request counters.
func (s *Server) Stats() StatsResponse {
	resp := StatsResponse{Counters: s.Counters()}
	total := proxion.NewSummaryBuilder()
	for _, sh := range s.shards {
		sh.mu.Lock()
		// Clone the builder under the shard lock by merging it into a
		// fresh one; the shard keeps folding undisturbed.
		clone := proxion.NewSummaryBuilder()
		clone.Merge(sh.summary)
		snap := sh.snap
		sh.mu.Unlock()
		if snap == nil {
			snap = liveSnapshot(&sh.stats)
		}
		total.Merge(clone)
		resp.Shards = append(resp.Shards, ShardStats{
			Shard:   sh.id,
			Summary: clone.Summary(snap),
		})
	}
	resp.Total = total.Summary(nil)
	if s.st != nil {
		st := s.st.Stats()
		resp.Store = &st
	}
	return resp
}

// Handler returns the service's HTTP API:
//
//	GET  /healthz                 — liveness
//	GET  /v1/verdict?addr=0x…     — one contract's verdict
//	POST /v1/verdicts             — {"addresses": [...]} → batch verdicts
//	POST /v1/scan                 — {"addresses": [...]} → NDJSON verdict stream
//	GET  /v1/collisions?addr=0x…  — one proxy's collision report
//	GET  /v1/static?addr=0x…      — one contract's static bytecode profile
//	GET  /v1/stats                — per-shard + total summaries, store stats
//	GET  /v1/watch/stats          — chain-follower counters (404 unless -follow)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/verdict", s.handleVerdict)
	mux.HandleFunc("/v1/verdicts", s.handleVerdicts)
	mux.HandleFunc("/v1/scan", s.handleScan)
	mux.HandleFunc("/v1/collisions", s.handleCollisions)
	mux.HandleFunc("/v1/static", s.handleStatic)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/watch/stats", s.handleWatchStats)
	return mux
}

// handleWatchStats serves the wired follower's counter snapshot; without a
// follower the endpoint does not exist.
func (s *Server) handleWatchStats(w http.ResponseWriter, r *http.Request) {
	fn := s.watchStatsFn()
	if fn == nil {
		writeError(w, http.StatusNotFound, "no chain follower attached")
		return
	}
	writeJSON(w, http.StatusOK, fn())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "shards": len(s.shards)})
}

// addrParam parses the addr query parameter.
func addrParam(r *http.Request) (etypes.Address, error) {
	raw := r.URL.Query().Get("addr")
	if raw == "" {
		return etypes.Address{}, fmt.Errorf("missing addr parameter")
	}
	return etypes.HexToAddress(raw)
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	addr, err := addrParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad address: %v", err)
		return
	}
	it, err := s.Lookup(addr)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, verdictOf(it.Report))
}

// batchRequest is the body of /v1/verdicts and /v1/scan.
type batchRequest struct {
	Addresses []string `json:"addresses"`
}

// maxBatch bounds one batch request.
const maxBatch = 65536

// parseBatch decodes and validates a batch body.
func parseBatch(r *http.Request) ([]etypes.Address, error) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, fmt.Errorf("bad body: %w", err)
	}
	if len(req.Addresses) == 0 {
		return nil, fmt.Errorf("empty address list")
	}
	if len(req.Addresses) > maxBatch {
		return nil, fmt.Errorf("batch of %d exceeds the %d-address limit", len(req.Addresses), maxBatch)
	}
	out := make([]etypes.Address, 0, len(req.Addresses))
	for _, raw := range req.Addresses {
		a, err := etypes.HexToAddress(raw)
		if err != nil {
			return nil, fmt.Errorf("bad address %q: %w", raw, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// lookupAll fans a batch across the shards concurrently and returns the
// items in request order (nil error entries where lookups failed).
func (s *Server) lookupAll(addrs []etypes.Address) ([]proxion.Item, []error) {
	items := make([]proxion.Item, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, a := range addrs {
		wg.Add(1)
		go func(i int, a etypes.Address) {
			defer wg.Done()
			items[i], errs[i] = s.Lookup(a)
		}(i, a)
	}
	wg.Wait()
	return items, errs
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	addrs, err := parseBatch(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	items, errs := s.lookupAll(addrs)
	verdicts := make([]Verdict, len(items))
	for i := range items {
		if errs[i] != nil {
			verdicts[i] = Verdict{Address: addrs[i].Hex(), Reason: "error: " + errs[i].Error()}
			continue
		}
		verdicts[i] = verdictOf(items[i].Report)
	}
	writeJSON(w, http.StatusOK, map[string]any{"verdicts": verdicts})
}

// handleScan streams verdicts as NDJSON, one line per address, flushed as
// each analysis lands — the bulk interface for driving large scans
// through the service without buffering the whole response.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	addrs, err := parseBatch(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Dispatch everything up front (the engines coalesce and pipeline),
	// then emit in request order as results land.
	type slot struct {
		it  proxion.Item
		err error
	}
	results := make([]chan slot, len(addrs))
	for i, a := range addrs {
		results[i] = make(chan slot, 1)
		go func(ch chan slot, a etypes.Address) {
			it, err := s.Lookup(a)
			ch <- slot{it: it, err: err}
		}(results[i], a)
	}
	for i := range results {
		res := <-results[i]
		if res.err != nil {
			enc.Encode(map[string]string{"address": addrs[i].Hex(), "error": res.err.Error()})
		} else {
			enc.Encode(verdictOf(res.it.Report))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleCollisions(w http.ResponseWriter, r *http.Request) {
	addr, err := addrParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad address: %v", err)
		return
	}
	it, err := s.Lookup(addr)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, collisionsOf(it))
}

// handleStatic serves the static analysis of one contract's bytecode. It
// never enters the engine: the code is read through the owning shard's
// node surface and analyzed without emulation, so it also works for
// contracts the dynamic probe cannot resolve.
func (s *Server) handleStatic(w http.ResponseWriter, r *http.Request) {
	addr, err := addrParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad address: %v", err)
		return
	}
	sh := s.shardFor(addr)
	var code []byte
	if re := chain.CaptureReadError(func() { code = sh.reader.Code(addr) }); re != nil {
		writeError(w, http.StatusServiceUnavailable, "code read failed: %v", re)
		return
	}
	if len(code) == 0 {
		writeError(w, http.StatusNotFound, "no code at %s", addr.Hex())
		return
	}
	writeJSON(w, http.StatusOK, staticReportOf(addr, static.Analyze(code)))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
