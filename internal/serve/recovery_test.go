package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

// These tests prove the service's persistence contract end to end: a
// server that analyzed a corpus, died (even mid-write), and came back
// answers the same queries with identical verdicts and ZERO re-emulations
// — the verdict store, not the engine, carries the knowledge across the
// restart.

// queryAllVerdicts looks up every corpus address and returns the verdicts
// serialized per address, plus the servers' total emulation count.
func queryAllVerdicts(t *testing.T, srv *Server, c *gen.Corpus) (map[string]string, int64) {
	t.Helper()
	out := make(map[string]string)
	for _, a := range c.Chain.Contracts() {
		it, err := srv.Lookup(a)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", a.Hex(), err)
		}
		b, err := json.Marshal(verdictOf(it.Report))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		out[a.Hex()] = string(b)
	}
	var emulations int64
	for _, sh := range srv.shards {
		emulations += sh.stats.Emulations.Load()
	}
	return out, emulations
}

func TestRestartServesWithoutReanalysis(t *testing.T) {
	c := testCorpus(t, 59, 64)
	dir := t.TempDir()

	// Cold server: analyze everything, persist as we go.
	cold, err := New(Config{Reader: c.Chain, Sources: c.Registry, Shards: 4, StoreDir: dir})
	if err != nil {
		t.Fatalf("New(cold): %v", err)
	}
	coldVerdicts, coldEmulations := queryAllVerdicts(t, cold, c)
	if coldEmulations == 0 {
		t.Fatalf("cold run performed no emulations; the warm assertion would be vacuous")
	}
	coldStore := cold.StoreStats()
	if coldStore.Entries == 0 || coldStore.Appended == 0 {
		t.Fatalf("cold run persisted nothing: %+v", coldStore)
	}
	if err := cold.Close(); err != nil {
		t.Fatalf("Close(cold): %v", err)
	}

	// Warm server over the same directory: every verdict identical, not a
	// single fresh emulation — the acceptance criterion.
	warm, err := New(Config{Reader: c.Chain, Sources: c.Registry, Shards: 4, StoreDir: dir})
	if err != nil {
		t.Fatalf("New(warm): %v", err)
	}
	defer warm.Close()
	warmVerdicts, warmEmulations := queryAllVerdicts(t, warm, c)
	if warmEmulations != 0 {
		t.Fatalf("warm server re-emulated %d times; the store should have answered everything", warmEmulations)
	}
	if len(warmVerdicts) != len(coldVerdicts) {
		t.Fatalf("warm served %d verdicts, cold served %d", len(warmVerdicts), len(coldVerdicts))
	}
	for addr, want := range coldVerdicts {
		if got := warmVerdicts[addr]; got != want {
			t.Fatalf("verdict for %s changed across restart:\n cold: %s\n warm: %s", addr, want, got)
		}
	}
	// Warm-side persistence re-exports byte-identical entries; the store
	// skips every one instead of growing the log.
	warmStore := warm.StoreStats()
	if warmStore.Appended != 0 {
		t.Fatalf("warm run appended %d records; identical entries must be skipped", warmStore.Appended)
	}
	if warmStore.Entries != coldStore.Entries {
		t.Fatalf("entry count changed across restart: %d -> %d", coldStore.Entries, warmStore.Entries)
	}
}

// TestKillMidWriteRestartLosesNothing is the crash variant: the server
// dies mid-append (simulated by torn bytes at the log tail), and the
// restarted server still serves every previously persisted verdict with
// zero re-emulation — the store's checksummed recovery feeding the
// service's warm start.
func TestKillMidWriteRestartLosesNothing(t *testing.T) {
	c := testCorpus(t, 61, 48)
	dir := t.TempDir()

	cold, err := New(Config{Reader: c.Chain, Sources: c.Registry, Shards: 2, StoreDir: dir})
	if err != nil {
		t.Fatalf("New(cold): %v", err)
	}
	coldVerdicts, _ := queryAllVerdicts(t, cold, c)
	coldEntries := cold.StoreStats().Entries
	if err := cold.Close(); err != nil {
		t.Fatalf("Close(cold): %v", err)
	}

	// The kill: a half-written record at the tail of the last segment.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	torn := []byte{0x00, 0x00, 0x00, 0x40, 0xde, 0xad, 0xbe} // claims 64 bytes, delivers 3
	if _, err := f.Write(torn); err != nil {
		t.Fatalf("append torn record: %v", err)
	}
	f.Close()

	warm, err := New(Config{Reader: c.Chain, Sources: c.Registry, Shards: 2, StoreDir: dir})
	if err != nil {
		t.Fatalf("New(warm) after torn write: %v", err)
	}
	defer warm.Close()
	st := warm.StoreStats()
	if st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes=%d, want %d", st.TruncatedBytes, len(torn))
	}
	if st.Entries != coldEntries {
		t.Fatalf("verdicts lost to the torn write: %d -> %d entries", coldEntries, st.Entries)
	}

	warmVerdicts, warmEmulations := queryAllVerdicts(t, warm, c)
	if warmEmulations != 0 {
		t.Fatalf("post-crash warm server re-emulated %d times, want 0", warmEmulations)
	}
	for addr, want := range coldVerdicts {
		if got := warmVerdicts[addr]; got != want {
			t.Fatalf("verdict for %s changed across crash recovery:\n cold: %s\n warm: %s", addr, want, got)
		}
	}
}

// TestPersistenceOffStillServes pins that StoreDir is genuinely optional:
// an ephemeral server works identically, it just starts cold every time.
func TestPersistenceOffStillServes(t *testing.T) {
	c := testCorpus(t, 67, 16)
	srv, err := New(Config{Reader: c.Chain, Sources: c.Registry, Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()
	if _, err := srv.Lookup(c.Chain.Contracts()[0]); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if st := srv.StoreStats(); st.Entries != 0 || st.Appended != 0 {
		t.Fatalf("ephemeral server reported store activity: %+v", st)
	}
}
