package serve

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/etypes"
	"repro/internal/static"
)

// TestStaticEndpointMatchesAnalyzer holds /v1/static to the static
// analyzer's own answers for every corpus contract: the wire report must
// carry the same fingerprint, selector table and delegate sites that a
// direct static.Analyze of the address's code produces.
func TestStaticEndpointMatchesAnalyzer(t *testing.T) {
	c := testCorpus(t, 11, 32)
	_, ts := newTestServer(t, c, Config{Shards: 2})

	for _, addr := range c.Chain.Contracts() {
		sum := static.Analyze(c.Chain.Code(addr))
		var got StaticReport
		getJSON(t, ts.URL+"/v1/static?addr="+addr.Hex(), &got)
		if got.Address != addr.Hex() {
			t.Fatalf("address = %s, want %s", got.Address, addr.Hex())
		}
		if got.CodeHash != sum.CodeHash.Hex() || got.Fingerprint != sum.Fingerprint.Hex() {
			t.Fatalf("%s: hash/fingerprint mismatch: %+v", addr.Hex(), got)
		}
		if len(got.Selectors) != len(sum.Selectors) {
			t.Fatalf("%s: %d selectors on the wire, analyzer found %d",
				addr.Hex(), len(got.Selectors), len(sum.Selectors))
		}
		for i, sel := range sum.Selectors {
			if got.Selectors[i] != fmt.Sprintf("0x%x", sel) {
				t.Fatalf("%s: selector[%d] = %s, want 0x%x", addr.Hex(), i, got.Selectors[i], sel)
			}
		}
		if len(got.Delegates) != len(sum.Delegates) {
			t.Fatalf("%s: %d delegates on the wire, analyzer found %d",
				addr.Hex(), len(got.Delegates), len(sum.Delegates))
		}
		for i, del := range sum.Delegates {
			if got.Delegates[i].Provenance != del.Provenance.String() ||
				got.Delegates[i].ForwardsCalldata != del.ForwardsCalldata {
				t.Fatalf("%s: delegate[%d] = %+v, want %+v", addr.Hex(), i, got.Delegates[i], del)
			}
		}
		if got.Blocks != sum.Blocks || got.ReachableBlocks != sum.ReachableBlocks ||
			got.HasDelegateCall != sum.HasDelegateCall {
			t.Fatalf("%s: CFG fields diverge: %+v vs %+v", addr.Hex(), got, sum)
		}
	}
}

func TestStaticEndpointRejectsBadInput(t *testing.T) {
	c := testCorpus(t, 11, 4)
	_, ts := newTestServer(t, c, Config{Shards: 1})

	resp, err := http.Get(ts.URL + "/v1/static?addr=nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad address: status %d, want 400", resp.StatusCode)
	}

	empty := etypes.MustAddress("0x00000000000000000000000000000000000000fe")
	resp, err = http.Get(ts.URL + "/v1/static?addr=" + empty.Hex())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("codeless address: status %d, want 404", resp.StatusCode)
	}
}
