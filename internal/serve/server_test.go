package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/etypes"
	"repro/internal/gen"
	"repro/internal/proxion"
)

// The endpoint tests hold the service to the engine's own answers: every
// verdict served over HTTP must equal what a direct single-threaded
// AnalyzeStream over the same chain produces for the same address.

// testCorpus generates a small deterministic labeled corpus.
func testCorpus(t *testing.T, seed int64, contracts int) *gen.Corpus {
	t.Helper()
	return gen.Generate(gen.Config{Seed: seed, Contracts: contracts})
}

// referenceItems analyzes every corpus address with a fresh detector in
// one sequential stream, returning items keyed by address.
func referenceItems(t *testing.T, c *gen.Corpus) map[etypes.Address]proxion.Item {
	t.Helper()
	det := proxion.NewDetector(c.Chain)
	out := make(map[etypes.Address]proxion.Item)
	det.AnalyzeStream(proxion.SliceSource(c.Chain.Contracts()), c.Registry,
		proxion.SinkFunc(func(it proxion.Item) { out[it.Report.Address] = it }),
		proxion.AnalyzeOptions{})
	return out
}

// newTestServer builds a server over the corpus and wraps it in an
// httptest server. Both are torn down with the test.
func newTestServer(t *testing.T, c *gen.Corpus, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Reader = c.Chain
	cfg.Sources = c.Registry
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// getJSON fetches url and decodes the response into out, failing on a
// non-200 status.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

// verdictJSON canonicalizes a Verdict for comparison.
func verdictJSON(t *testing.T, v Verdict) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestVerdictEndpointMatchesReference(t *testing.T) {
	c := testCorpus(t, 7, 48)
	ref := referenceItems(t, c)
	_, ts := newTestServer(t, c, Config{Shards: 3})

	for _, addr := range c.Chain.Contracts() {
		var got Verdict
		getJSON(t, ts.URL+"/v1/verdict?addr="+addr.Hex(), &got)
		want := verdictOf(ref[addr].Report)
		if verdictJSON(t, got) != verdictJSON(t, want) {
			t.Fatalf("verdict for %s diverges from the engine:\n got:  %+v\n want: %+v", addr.Hex(), got, want)
		}
	}
}

func TestBatchVerdictsMatchIndividual(t *testing.T) {
	c := testCorpus(t, 11, 32)
	ref := referenceItems(t, c)
	_, ts := newTestServer(t, c, Config{Shards: 4})

	addrs := c.Chain.Contracts()
	var hexes []string
	for _, a := range addrs {
		hexes = append(hexes, a.Hex())
	}
	body, _ := json.Marshal(map[string]any{"addresses": hexes})
	resp, err := http.Post(ts.URL+"/v1/verdicts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/verdicts: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Verdicts []Verdict `json:"verdicts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Verdicts) != len(addrs) {
		t.Fatalf("batch returned %d verdicts for %d addresses", len(out.Verdicts), len(addrs))
	}
	// Responses come back in request order.
	for i, a := range addrs {
		want := verdictOf(ref[a].Report)
		if verdictJSON(t, out.Verdicts[i]) != verdictJSON(t, want) {
			t.Fatalf("batch verdict %d (%s) diverges:\n got:  %+v\n want: %+v", i, a.Hex(), out.Verdicts[i], want)
		}
	}
}

func TestScanStreamsNDJSONInOrder(t *testing.T) {
	c := testCorpus(t, 13, 24)
	ref := referenceItems(t, c)
	_, ts := newTestServer(t, c, Config{Shards: 2})

	addrs := c.Chain.Contracts()
	var hexes []string
	for _, a := range addrs {
		hexes = append(hexes, a.Hex())
	}
	body, _ := json.Marshal(map[string]any{"addresses": hexes})
	resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/scan: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want NDJSON", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	i := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var got Verdict
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d not JSON: %v (%q)", i, err, line)
		}
		if i >= len(addrs) {
			t.Fatalf("more NDJSON lines than addresses")
		}
		want := verdictOf(ref[addrs[i]].Report)
		if verdictJSON(t, got) != verdictJSON(t, want) {
			t.Fatalf("scan line %d diverges:\n got:  %+v\n want: %+v", i, got, want)
		}
		i++
	}
	if i != len(addrs) {
		t.Fatalf("scan emitted %d lines for %d addresses", i, len(addrs))
	}
}

func TestCollisionsEndpointMatchesReference(t *testing.T) {
	c := testCorpus(t, 17, 48)
	ref := referenceItems(t, c)
	_, ts := newTestServer(t, c, Config{Shards: 3})

	checked := 0
	for _, addr := range c.Chain.Contracts() {
		var got CollisionReport
		getJSON(t, ts.URL+"/v1/collisions?addr="+addr.Hex(), &got)
		want := collisionsOf(ref[addr])
		g, _ := json.Marshal(got)
		w, _ := json.Marshal(want)
		if string(g) != string(w) {
			t.Fatalf("collision report for %s diverges:\n got:  %s\n want: %s", addr.Hex(), g, w)
		}
		if len(want.Functions) > 0 || len(want.Storage) > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("corpus produced no colliding pairs; the test is vacuous")
	}
}

func TestStatsEndpointAggregates(t *testing.T) {
	c := testCorpus(t, 19, 40)
	_, ts := newTestServer(t, c, Config{Shards: 4})
	addrs := c.Chain.Contracts()
	for _, a := range addrs {
		var v Verdict
		getJSON(t, ts.URL+"/v1/verdict?addr="+a.Hex(), &v)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Total.Contracts != len(addrs) {
		t.Fatalf("stats total contracts=%d, want %d", stats.Total.Contracts, len(addrs))
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("stats reports %d shards, want 4", len(stats.Shards))
	}
	sum := 0
	for _, sh := range stats.Shards {
		sum += sh.Summary.Contracts
		if sh.Summary.Pipeline == nil {
			t.Fatalf("shard %d summary carries no pipeline snapshot", sh.Shard)
		}
	}
	if sum != len(addrs) {
		t.Fatalf("per-shard contracts sum to %d, want %d", sum, len(addrs))
	}
	if stats.Counters.Requests != int64(len(addrs)) || stats.Counters.Analyses != int64(len(addrs)) {
		t.Fatalf("counters off: %+v", stats.Counters)
	}
	// The corpus-wide proxy count must match the engine's own summary.
	det := proxion.NewDetector(c.Chain)
	b := proxion.NewSummaryBuilder()
	det.AnalyzeStream(proxion.SliceSource(addrs), c.Registry, b, proxion.AnalyzeOptions{})
	want := b.Summary(nil)
	if stats.Total.Proxies != want.Proxies ||
		stats.Total.PairsWithStorageCollisions != want.PairsWithStorageCollisions ||
		stats.Total.PairsWithFunctionCollisions != want.PairsWithFunctionCollisions {
		t.Fatalf("total summary diverges from reference:\n got:  %+v\n want: %+v", stats.Total, want)
	}
}

func TestRepeatQueriesServeFromResultCache(t *testing.T) {
	c := testCorpus(t, 23, 16)
	srv, ts := newTestServer(t, c, Config{Shards: 2})
	addr := c.Chain.Contracts()[0]
	for i := 0; i < 5; i++ {
		var v Verdict
		getJSON(t, ts.URL+"/v1/verdict?addr="+addr.Hex(), &v)
	}
	ctr := srv.Counters()
	if ctr.Analyses != 1 {
		t.Fatalf("5 repeat queries cost %d analyses, want 1", ctr.Analyses)
	}
	if ctr.ResultCacheHits != 4 {
		t.Fatalf("result cache hits=%d, want 4", ctr.ResultCacheHits)
	}
}

func TestBadRequests(t *testing.T) {
	c := testCorpus(t, 29, 8)
	_, ts := newTestServer(t, c, Config{Shards: 1})
	for _, url := range []string{
		ts.URL + "/v1/verdict",
		ts.URL + "/v1/verdict?addr=zzz",
		ts.URL + "/v1/collisions?addr=0x123", // odd-length hex
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", url, resp.StatusCode)
		}
	}
	// Batch bodies: bad JSON, empty list, GET method.
	resp, _ := http.Post(ts.URL+"/v1/verdicts", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/verdicts", "application/json", strings.NewReader(`{"addresses":[]}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/v1/scan")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/scan: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	c := testCorpus(t, 31, 8)
	_, ts := newTestServer(t, c, Config{Shards: 2})
	var out struct {
		OK     bool `json:"ok"`
		Shards int  `json:"shards"`
	}
	getJSON(t, ts.URL+"/healthz", &out)
	if !out.OK || out.Shards != 2 {
		t.Fatalf("healthz: %+v", out)
	}
}

func TestClosedServerFailsFast(t *testing.T) {
	c := testCorpus(t, 37, 8)
	cfg := Config{Reader: c.Chain, Sources: c.Registry, Shards: 2}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := srv.Lookup(c.Chain.Contracts()[0]); err == nil {
		t.Fatalf("Lookup on a closed server succeeded")
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestCloseDrainsEnqueuedWork(t *testing.T) {
	c := testCorpus(t, 41, 24)
	cfg := Config{Reader: c.Chain, Sources: c.Registry, Shards: 2}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addrs := c.Chain.Contracts()
	done := make(chan error, len(addrs))
	for _, a := range addrs {
		go func(a etypes.Address) {
			_, err := srv.Lookup(a)
			done <- err
		}(a)
	}
	for range addrs {
		if err := <-done; err != nil {
			t.Fatalf("Lookup during load: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := srv.Counters().Analyses; got != int64(len(addrs)) {
		t.Fatalf("analyses=%d, want %d", got, len(addrs))
	}
}

// TestShardRoutingIsStable pins that an address always lands on the same
// shard — the property that makes per-shard verdict caches effective.
func TestShardRoutingIsStable(t *testing.T) {
	c := testCorpus(t, 43, 8)
	srv, _ := newTestServer(t, c, Config{Shards: 4})
	for _, a := range c.Chain.Contracts() {
		first := srv.shardFor(a)
		for i := 0; i < 3; i++ {
			if srv.shardFor(a) != first {
				t.Fatalf("routing for %s is unstable", a.Hex())
			}
		}
	}
	// With several shards, a non-trivial corpus should not all land on one.
	seen := make(map[int]bool)
	for _, a := range c.Chain.Contracts() {
		seen[srv.shardFor(a).id] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all addresses routed to a single shard (want spread): %v", seen)
	}
}
