package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestCoalescingKConcurrentOneAnalysis is the acceptance property for the
// single-flight layer: K=64 clients releasing the same verdict query at
// the same instant cost the engine exactly ONE analysis, and all K receive
// byte-identical answers. The result cache plus the in-flight re-check in
// join make this exact, not probabilistic — a request arriving at any
// point before, during, or after the one analysis either joins it or is
// served from the cache it populated.
func TestCoalescingKConcurrentOneAnalysis(t *testing.T) {
	const K = 64
	c := testCorpus(t, 47, 16)
	srv, ts := newTestServer(t, c, Config{Shards: 4})
	addr := c.Chain.Contracts()[0]
	url := ts.URL + "/v1/verdict?addr=" + addr.Hex()

	// Barrier-release K identical requests.
	var start, done sync.WaitGroup
	release := make(chan struct{})
	bodies := make([]string, K)
	errs := make([]error, K)
	start.Add(K)
	done.Add(K)
	for i := 0; i < K; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			<-release
			resp, err := http.Get(url)
			if err != nil {
				errs[i] = err
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i] = string(b)
		}(i)
	}
	start.Wait()
	close(release)
	done.Wait()

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("coalesced answers diverge:\n [0]: %s\n [%d]: %s", bodies[0], i, bodies[i])
		}
	}
	var v Verdict
	if err := json.Unmarshal([]byte(bodies[0]), &v); err != nil {
		t.Fatalf("response not a verdict: %v", err)
	}

	ctr := srv.Counters()
	if ctr.Analyses != 1 {
		t.Fatalf("K=%d concurrent identical queries cost %d engine analyses, want exactly 1", K, ctr.Analyses)
	}
	if ctr.Requests != K {
		t.Fatalf("requests=%d, want %d", ctr.Requests, K)
	}
	// Every non-leader either coalesced onto the in-flight analysis or hit
	// the result cache it filled.
	if ctr.Coalesced+ctr.ResultCacheHits != K-1 {
		t.Fatalf("coalesced=%d + cache_hits=%d, want %d", ctr.Coalesced, ctr.ResultCacheHits, K-1)
	}

	// Engine-level confirmation: exactly one item entered a shard pipeline.
	var scanned int64
	for _, sh := range srv.shards {
		scanned += sh.stats.Scanned.Load()
	}
	if scanned != 1 {
		t.Fatalf("shard pipelines scanned %d items, want 1", scanned)
	}
}

// TestCoalescingManyAddressesUnderConcurrency broadens the property: C
// workers hammering a small address set still cost exactly one analysis
// per distinct address.
func TestCoalescingManyAddressesUnderConcurrency(t *testing.T) {
	c := testCorpus(t, 53, 24)
	srv, _ := newTestServer(t, c, Config{Shards: 3})
	addrs := c.Chain.Contracts()
	const workers = 16
	const rounds = 8

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, a := range addrs {
					if _, err := srv.Lookup(a); err != nil {
						t.Errorf("Lookup: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	ctr := srv.Counters()
	if ctr.Analyses != int64(len(addrs)) {
		t.Fatalf("%d workers × %d rounds over %d addresses cost %d analyses, want %d",
			workers, rounds, len(addrs), ctr.Analyses, len(addrs))
	}
	if want := int64(workers * rounds * len(addrs)); ctr.Requests != want {
		t.Fatalf("requests=%d, want %d", ctr.Requests, want)
	}
}
