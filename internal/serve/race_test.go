package serve

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardConcurrencyMatrix drives every shard count the service ships
// with under mixed concurrent load — lookups, repeat lookups, stats reads
// — and checks the invariants that must hold at any interleaving:
// exactly one analysis per distinct address, every caller gets an answer,
// stats totals reconcile. Run under -race in CI (the `serve` job), where
// the interleavings themselves are the test.
func TestShardConcurrencyMatrix(t *testing.T) {
	contracts := 48
	workers := 12
	rounds := 4
	if testing.Short() {
		contracts, workers, rounds = 24, 6, 2
	}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := testCorpus(t, int64(71+shards), contracts)
			srv, ts := newTestServer(t, c, Config{Shards: shards, StoreDir: t.TempDir()})
			addrs := c.Chain.Contracts()

			var wg sync.WaitGroup
			// Lookup workers: interleaved orders so shards see contention.
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for i := range addrs {
							a := addrs[(i*7+w)%len(addrs)]
							if _, err := srv.Lookup(a); err != nil {
								t.Errorf("Lookup: %v", err)
								return
							}
						}
					}
				}(w)
			}
			// Stats readers race the live pipeline counters.
			stop := make(chan struct{})
			var statsWG sync.WaitGroup
			statsWG.Add(1)
			go func() {
				defer statsWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = srv.Stats()
						var v Verdict
						getJSON(t, ts.URL+"/v1/verdict?addr="+addrs[0].Hex(), &v)
					}
				}
			}()
			wg.Wait()
			close(stop)
			statsWG.Wait()

			if got := srv.Counters().Analyses; got != int64(len(addrs)) {
				t.Fatalf("analyses=%d, want %d (one per distinct address)", got, len(addrs))
			}
			stats := srv.Stats()
			if stats.Total.Contracts != len(addrs) {
				t.Fatalf("stats total=%d, want %d", stats.Total.Contracts, len(addrs))
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestConcurrentLookupAndClose races shutdown against live traffic: every
// lookup must either complete with a verdict or fail fast with the
// shutdown error — never hang, never panic.
func TestConcurrentLookupAndClose(t *testing.T) {
	c := testCorpus(t, 79, 24)
	srv, err := New(Config{Reader: c.Chain, Sources: c.Registry, Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addrs := c.Chain.Contracts()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, a := range addrs {
				_, err := srv.Lookup(a)
				_ = err // a shutdown error is a legal outcome here
				_ = i
			}
		}(w)
	}
	// Close midway through the storm.
	var onceWG sync.WaitGroup
	onceWG.Add(1)
	go func() {
		defer onceWG.Done()
		if _, err := srv.Lookup(addrs[0]); err != nil {
			t.Errorf("first lookup should precede Close: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	wg.Wait()
	onceWG.Wait()
}
