// Package serve turns the streaming analysis engine into a long-running
// query service: proxiond's core. A Server owns N shard pipelines — each
// a persistent AnalyzeStream whose address source is a request channel
// instead of a corpus — routes verdict queries to shards by address,
// coalesces concurrent identical queries into one engine analysis, and
// persists every verdict-cache entry to a disk store so a restarted
// server answers from its accumulated knowledge without re-emulating.
//
// The request path, front to back:
//
//	HTTP handler → result cache (hit: no engine work at all)
//	            → single-flight table (duplicate in flight: wait, don't re-enter)
//	            → shard request channel → AnalyzeStream → sink
//	            → result cache + verdict store + waiter wake-up
//
// Both caches make the coalescing guarantee deterministic: K concurrent
// queries for one address cost exactly one engine analysis, and any later
// query for it costs zero.
package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/pipeline"
	"repro/internal/proxion"
	"repro/internal/static"
	"repro/internal/store"
)

// Config assembles a Server. Reader (or ReaderFor) is required; everything
// else has serviceable defaults.
type Config struct {
	// Reader is the node surface every shard analyzes, shared. Ignored
	// when ReaderFor is set.
	Reader chain.Reader
	// ReaderFor, when set, supplies each shard its own reader — how a
	// deployment gives every shard an independent resilient client so one
	// shard's circuit breaker does not gate the others.
	ReaderFor func(shard int) chain.Reader
	// Sources optionally provides contract source for collision analysis.
	Sources proxion.SourceProvider
	// Shards is the number of parallel analysis pipelines (default 4).
	Shards int
	// StoreDir, when non-empty, persists verdicts to a disk store and
	// re-seeds every shard's verdict cache from it on startup.
	StoreDir string
	// StoreOptions tunes the verdict store.
	StoreOptions store.Options
	// Window and CacheCapacity tune each shard's engine (see
	// proxion.AnalyzeOptions). The window also bounds how many requests a
	// shard holds in flight.
	Window        int
	CacheCapacity int
	// ResultCacheSize bounds the per-server analyzed-item LRU (default
	// 4096 addresses).
	ResultCacheSize int
	// WithHistory enables the logic-history stage in every shard.
	WithHistory bool
	// DisableStructural turns off structural near-clone promotion in every
	// shard's engine (see proxion.AnalyzeOptions.DisableStructural).
	DisableStructural bool
}

// Counters are the server-level request statistics.
type Counters struct {
	// Requests counts verdict lookups (batch entries count individually).
	Requests int64 `json:"requests"`
	// ResultCacheHits counts lookups answered from the analyzed-item LRU.
	ResultCacheHits int64 `json:"result_cache_hits"`
	// Coalesced counts lookups that joined an identical in-flight analysis.
	Coalesced int64 `json:"coalesced"`
	// Analyses counts items actually analyzed by shard engines.
	Analyses int64 `json:"analyses"`
}

// Server is the sharded scan service. Create with New, serve its
// Handler(), Close when done.
type Server struct {
	cfg    Config
	st     *store.Store // nil when persistence is off
	shards []*shard

	// flight is the single-flight table: at most one engine analysis per
	// address is in flight at a time; later arrivals wait on the first.
	flightMu sync.Mutex
	flight   map[etypes.Address]*call

	results *resultCache

	requests  atomic.Int64
	cacheHits atomic.Int64
	coalesced atomic.Int64
	analyses  atomic.Int64

	// watchStats holds the follower stats callback (func() any) served by
	// /v1/watch/stats; nil until SetWatchStats.
	watchStats atomic.Value

	// closeMu orders lookups against Close: lookups hold it shared while
	// enqueueing (never while waiting), Close holds it exclusively while
	// closing the request channels, so no enqueue can race a closed shard.
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
}

// call is one in-flight analysis and everyone waiting on it.
type call struct {
	done chan struct{}
	item proxion.Item
	err  error
}

// shard is one persistent analysis pipeline: a request channel feeding a
// long-lived AnalyzeStream whose sink routes finished items back to their
// calls, folds the shard summary, and persists verdict-cache entries.
type shard struct {
	id       int
	reader   chain.Reader
	detector *proxion.Detector
	reqCh    chan etypes.Address

	// pending maps an enqueued address to its call. Guarded by mu, as is
	// the summary builder (Emit is serial per shard, but /v1/stats reads
	// concurrently).
	mu      sync.Mutex
	pending map[etypes.Address]*call
	summary *proxion.SummaryBuilder

	// stats is the externally-owned engine counter set, readable live.
	stats pipeline.Stats
	// snap is the final engine snapshot, set when the shard drains.
	snap *pipeline.Snapshot
}

// New builds the server, opens (and replays) the verdict store, seeds
// every shard's cache from it, and starts the shard pipelines.
func New(cfg Config) (*Server, error) {
	if cfg.Reader == nil && cfg.ReaderFor == nil {
		return nil, fmt.Errorf("serve: Config.Reader or ReaderFor required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.ResultCacheSize <= 0 {
		cfg.ResultCacheSize = 4096
	}
	s := &Server{
		cfg:     cfg,
		flight:  make(map[etypes.Address]*call),
		results: newResultCache(cfg.ResultCacheSize),
	}

	var seed []proxion.CacheEntry
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, cfg.StoreOptions)
		if err != nil {
			return nil, err
		}
		s.st = st
		if seed, err = st.Entries(); err != nil {
			st.Close()
			return nil, err
		}
	}

	for i := 0; i < cfg.Shards; i++ {
		rd := cfg.Reader
		if cfg.ReaderFor != nil {
			rd = cfg.ReaderFor(i)
		}
		sh := &shard{
			id:       i,
			reader:   rd,
			detector: proxion.NewDetector(rd),
			reqCh:    make(chan etypes.Address, 64),
			pending:  make(map[etypes.Address]*call),
			summary:  proxion.NewSummaryBuilder(),
		}
		// Warm start: every shard re-learns all persisted verdicts, so the
		// first post-restart query for a known bytecode is a cache hit, not
		// an emulation.
		sh.detector.ImportVerdicts(seed)
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.runShard(sh)
	}
	return s, nil
}

// runShard drives one shard's AnalyzeStream for the server's lifetime.
// The stream ends when the request channel closes (Close drains it:
// buffered requests are still analyzed before the feeder sees the close).
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	src := proxion.SourceFunc(func() (etypes.Address, bool) {
		addr, ok := <-sh.reqCh
		return addr, ok
	})
	sink := proxion.SinkFunc(func(it proxion.Item) { s.finish(sh, it) })
	snap := sh.detector.AnalyzeStream(src, s.cfg.Sources, sink, proxion.AnalyzeOptions{
		Window:            s.cfg.Window,
		CacheCapacity:     s.cfg.CacheCapacity,
		WithHistory:       s.cfg.WithHistory,
		DisableStructural: s.cfg.DisableStructural,
		Stats:             &sh.stats,
	})
	sh.mu.Lock()
	sh.snap = snap
	sh.mu.Unlock()
}

// finish lands one analyzed item: persist its verdict-cache entry, fold
// the shard summary, publish to the result cache, wake the waiters.
func (s *Server) finish(sh *shard, it proxion.Item) {
	s.analyses.Add(1)
	s.persist(sh, it.Report.Address)

	sh.mu.Lock()
	sh.summary.Emit(it)
	c := sh.pending[it.Report.Address]
	delete(sh.pending, it.Report.Address)
	sh.mu.Unlock()

	s.results.add(it.Report.Address, it)

	s.flightMu.Lock()
	delete(s.flight, it.Report.Address)
	s.flightMu.Unlock()

	if c != nil {
		c.item = it
		close(c.done)
	}
}

// persist appends the address's (now recorded) verdict-cache entry to the
// store. Emission happens-after recording, so the export here observes the
// complete entry; a store write failure is counted, not fatal — the
// verdict is still served from memory, it just won't survive a restart.
func (s *Server) persist(sh *shard, addr etypes.Address) {
	if s.st == nil {
		return
	}
	var codeHash etypes.Hash
	if re := chain.CaptureReadError(func() { codeHash = sh.reader.CodeHash(addr) }); re != nil {
		return
	}
	ent, ok := sh.detector.ExportVerdict(codeHash)
	if !ok {
		return
	}
	_ = s.st.Put(ent) // byte-identical re-puts are skipped inside the store
}

// shardFor routes an address to its owning shard (stable FNV-1a hash).
func (s *Server) shardFor(addr etypes.Address) *shard {
	h := fnv.New32a()
	h.Write(addr[:])
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Lookup analyzes one address (or serves it from cache / an in-flight
// twin) and returns its finalized item. Safe for arbitrary concurrency.
func (s *Server) Lookup(addr etypes.Address) (proxion.Item, error) {
	s.requests.Add(1)

	if it, ok := s.results.get(addr); ok {
		s.cacheHits.Add(1)
		return it, nil
	}

	c, leader, err := s.join(addr)
	if err != nil {
		return proxion.Item{}, err
	}
	if !leader {
		s.coalesced.Add(1)
	}
	<-c.done
	return c.item, c.err
}

// join returns the in-flight call for addr, creating (and dispatching) it
// if absent. leader reports whether this caller started the analysis.
func (s *Server) join(addr etypes.Address) (c *call, leader bool, err error) {
	s.flightMu.Lock()
	if existing, ok := s.flight[addr]; ok {
		s.flightMu.Unlock()
		return existing, false, nil
	}
	// Re-check the result cache under flightMu: finish publishes to the
	// cache before it clears the flight entry, so a caller that lost a
	// whole analysis between its first cache miss and here finds the
	// result now instead of starting a duplicate analysis — the ordering
	// that makes "K concurrent queries, exactly one analysis" exact.
	if it, ok := s.results.get(addr); ok {
		s.flightMu.Unlock()
		done := &call{done: make(chan struct{}), item: it}
		close(done.done)
		return done, false, nil
	}
	c = &call{done: make(chan struct{})}
	s.flight[addr] = c
	s.flightMu.Unlock()

	// Between the flight insert above and the enqueue below the result
	// cache cannot satisfy addr, so every concurrent caller lands on c.
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.flightMu.Lock()
		delete(s.flight, addr)
		s.flightMu.Unlock()
		c.err = fmt.Errorf("serve: server is shut down")
		close(c.done)
		return c, true, c.err
	}
	sh := s.shardFor(addr)
	sh.mu.Lock()
	sh.pending[addr] = c
	sh.mu.Unlock()
	sh.reqCh <- addr
	s.closeMu.RUnlock()
	return c, true, nil
}

// Analyze runs a batch of addresses through the shard pipelines and
// returns one finalized item per address, in input order. It is Lookup in
// a loop — every entry gets the full result-cache / single-flight /
// persistence treatment — and together with Invalidate it makes the
// server a drop-in analysis backend for a watch.Follower.
func (s *Server) Analyze(addrs []etypes.Address) ([]proxion.Item, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	items := make([]proxion.Item, 0, len(addrs))
	for _, addr := range addrs {
		it, err := s.Lookup(addr)
		if err != nil {
			return items, err
		}
		items = append(items, it)
	}
	return items, nil
}

// Invalidate drops every cached verdict derived from addr's current
// bytecode — the server result-cache entry, the owning shard's exact-hash
// verdict, and its structural family — and returns how many tiers held
// one. An analysis of addr already in flight is waited out first: finish
// publishes to the result cache before clearing the flight table, so the
// removal below also covers that publication and an upgrade racing a
// mid-analysis lookup can never leave a pre-upgrade verdict behind. The
// persistent store is left alone; the re-analysis that follows supersedes
// its entry (append-only, last record wins).
func (s *Server) Invalidate(addr etypes.Address) (int, error) {
	s.flightMu.Lock()
	c := s.flight[addr]
	s.flightMu.Unlock()
	if c != nil {
		<-c.done
	}
	n := 0
	if s.results.remove(addr) {
		n++
	}
	sh := s.shardFor(addr)
	re := chain.CaptureReadError(func() {
		if sh.detector.InvalidateVerdict(sh.reader.CodeHash(addr)) {
			n++
		}
		if code := sh.reader.Code(addr); len(code) > 0 {
			if sh.detector.InvalidateStructural(static.Fingerprint(code)) {
				n++
			}
		}
	})
	if re != nil {
		return n, re
	}
	return n, nil
}

// SetWatchStats wires a follower's stats snapshot into the HTTP surface:
// the /v1/watch/stats endpoint serves whatever the callback returns.
// Keeping this an injected callback (rather than a serve → watch import)
// leaves the layering one-directional.
func (s *Server) SetWatchStats(fn func() any) {
	s.watchStats.Store(fn)
}

// watchStatsFn returns the wired callback, nil when none.
func (s *Server) watchStatsFn() func() any {
	fn, _ := s.watchStats.Load().(func() any)
	return fn
}

// Counters returns the server-level request statistics.
func (s *Server) Counters() Counters {
	return Counters{
		Requests:        s.requests.Load(),
		ResultCacheHits: s.cacheHits.Load(),
		Coalesced:       s.coalesced.Load(),
		Analyses:        s.analyses.Load(),
	}
}

// StoreStats returns the verdict store's statistics (zero when
// persistence is off).
func (s *Server) StoreStats() store.Stats {
	if s.st == nil {
		return store.Stats{}
	}
	return s.st.Stats()
}

// Close drains the shards — requests already enqueued are analyzed and
// persisted — then closes the verdict store. Lookups arriving after Close
// fail fast.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.reqCh)
	}
	s.closeMu.Unlock()

	s.wg.Wait()
	if s.st != nil {
		return s.st.Close()
	}
	return nil
}

// resultCache is a small LRU of finalized items keyed by address — the
// reason a repeat query (or the K-1 losers of a coalesced burst arriving
// late) never re-enters the engine.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	m     map[etypes.Address]*resultNode
	head  *resultNode // most recent
	tail  *resultNode // least recent
	count int
}

type resultNode struct {
	addr       etypes.Address
	item       proxion.Item
	prev, next *resultNode
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, m: make(map[etypes.Address]*resultNode)}
}

func (rc *resultCache) get(addr etypes.Address) (proxion.Item, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n, ok := rc.m[addr]
	if !ok {
		return proxion.Item{}, false
	}
	rc.moveToFront(n)
	return n.item, true
}

func (rc *resultCache) add(addr etypes.Address, it proxion.Item) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if n, ok := rc.m[addr]; ok {
		n.item = it
		rc.moveToFront(n)
		return
	}
	n := &resultNode{addr: addr, item: it}
	rc.m[addr] = n
	rc.pushFront(n)
	rc.count++
	if rc.count > rc.cap {
		evict := rc.tail
		rc.unlink(evict)
		delete(rc.m, evict.addr)
		rc.count--
	}
}

// remove drops addr's cached item, reporting whether one was present —
// the invalidation path for upgrade events.
func (rc *resultCache) remove(addr etypes.Address) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n, ok := rc.m[addr]
	if !ok {
		return false
	}
	rc.unlink(n)
	delete(rc.m, addr)
	rc.count--
	return true
}

func (rc *resultCache) pushFront(n *resultNode) {
	n.next = rc.head
	if rc.head != nil {
		rc.head.prev = n
	}
	rc.head = n
	if rc.tail == nil {
		rc.tail = n
	}
}

func (rc *resultCache) unlink(n *resultNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		rc.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		rc.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (rc *resultCache) moveToFront(n *resultNode) {
	if rc.head == n {
		return
	}
	rc.unlink(n)
	rc.pushFront(n)
}
