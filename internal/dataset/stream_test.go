package dataset

import (
	"reflect"
	"testing"
	"time"
)

// TestStreamMatchesBatchLabels is the streaming generator's parity
// contract: for the same seed and config, the label sequence delivered by
// GenerateStream must be value-identical to Population.Labels from the
// batch Generate — same order, same ground truth (including upgrade
// counts, which finalize only at drain) — and the resulting chains must
// hold the same contracts with the same bytecode.
func TestStreamMatchesBatchLabels(t *testing.T) {
	cfg := Config{Seed: 99, Contracts: 800}
	batch := Generate(cfg)

	s := GenerateStream(StreamConfig{Config: cfg})
	var streamed []*Label
	for l := range s.C {
		streamed = append(streamed, l)
	}

	if len(streamed) != len(batch.Labels) {
		t.Fatalf("streamed %d labels, batch has %d", len(streamed), len(batch.Labels))
	}
	for i := range streamed {
		if !reflect.DeepEqual(*streamed[i], *batch.Labels[i]) {
			t.Fatalf("label %d diverges:\nstream: %+v\nbatch:  %+v", i, *streamed[i], *batch.Labels[i])
		}
	}

	wantContracts := batch.Chain.Contracts()
	gotContracts := s.Chain.Contracts()
	if !reflect.DeepEqual(gotContracts, wantContracts) {
		t.Fatalf("chain contract sets differ: stream %d vs batch %d", len(gotContracts), len(wantContracts))
	}
	for _, addr := range wantContracts {
		if s.Chain.CodeHash(addr) != batch.Chain.CodeHash(addr) {
			t.Fatalf("bytecode at %s differs between streamed and batch chains", addr)
		}
	}
	if s.Registry.Count() != batch.Registry.Count() {
		t.Fatalf("registry sizes differ: stream %d vs batch %d", s.Registry.Count(), batch.Registry.Count())
	}
}

// TestStreamPrefixStableAndClose: a consumer that abandons the stream
// early has still seen, in order, a prefix of exactly the batch corpus
// (on the fields that never mutate after emission), and Close unblocks
// the generator promptly.
func TestStreamPrefixStableAndClose(t *testing.T) {
	cfg := Config{Seed: 4, Contracts: 1000}
	batch := Generate(cfg)

	s := GenerateStream(StreamConfig{Config: cfg})
	const take = 150
	var prefix []*Label
	for l := range s.C {
		prefix = append(prefix, l)
		if len(prefix) == take {
			break
		}
	}
	s.Close()
	for range s.C { // drain whatever was buffered; channel must close
	}

	if len(prefix) != take {
		t.Fatalf("took %d labels, want %d", len(prefix), take)
	}
	for i, l := range prefix {
		b := batch.Labels[i]
		if l.Address != b.Address || l.Kind != b.Kind || l.Year != b.Year || l.TemplateID != b.TemplateID {
			t.Fatalf("prefix label %d diverges from batch: %+v vs %+v", i, *l, *b)
		}
	}
	s.Close() // idempotent
}

// TestStreamRetirement: with Retire on and a consumer advancing as it
// goes, the chain sheds consumed contracts while pinned shared-logic
// targets survive for the proxies that delegate to them. The label
// sequence itself is unaffected by retirement.
func TestStreamRetirement(t *testing.T) {
	cfg := Config{Seed: 99, Contracts: 800}
	batch := Generate(cfg)

	const window = 64
	s := GenerateStream(StreamConfig{Config: cfg, Window: window, Retire: true})
	var streamed []*Label
	i := 0
	for l := range s.C {
		streamed = append(streamed, l)
		i++
		s.Advance(i)
	}
	s.Advance(i) // final advance after drain

	if len(streamed) != len(batch.Labels) {
		t.Fatalf("streamed %d labels, batch has %d", len(streamed), len(batch.Labels))
	}
	for k := range streamed {
		if !reflect.DeepEqual(*streamed[k], *batch.Labels[k]) {
			t.Fatalf("label %d diverges under retirement", k)
		}
	}

	if s.Retired() == 0 {
		t.Fatal("retirement never dropped a contract")
	}
	// Retirement keeps the alive set far below the corpus: the window,
	// the pinned set, and destroyed/no-code labels are all that remain.
	alive := len(s.Chain.Contracts())
	if alive >= len(batch.Chain.Contracts())/2 {
		t.Fatalf("retirement left %d of %d contracts alive", alive, len(batch.Chain.Contracts()))
	}

	// Every shared-logic target a surviving proxy may delegate to is
	// still resolvable.
	pinnedStillAlive := 0
	for addr := range s.keep {
		if len(s.Chain.Code(addr)) > 0 {
			pinnedStillAlive++
		}
	}
	if pinnedStillAlive == 0 {
		t.Fatal("no pinned address survived retirement")
	}

	// The last window of labels is untouched too.
	tail := streamed[len(streamed)-window/2:]
	for _, l := range tail {
		if l.Kind == KindDestroyed {
			continue
		}
		if len(s.Chain.Code(l.Address)) == 0 && l.Kind != KindBroken {
			t.Fatalf("in-window contract %s (%s) was retired early", l.Address, l.Kind)
		}
	}
}

// TestStreamBackpressure: the generator must not run ahead of the
// consumer by more than the channel buffer — a stalled consumer stalls
// generation rather than letting the corpus accumulate.
func TestStreamBackpressure(t *testing.T) {
	// Retire with an unreachable window keeps the pending ledger (our
	// emission counter) without actually retiring anything.
	s := GenerateStream(StreamConfig{Config: Config{Seed: 1, Contracts: 5000}, Window: 1 << 30, Retire: true})
	defer s.Close()

	const take = 10
	for i := 0; i < take; i++ {
		if _, ok := <-s.C; !ok {
			t.Fatal("stream ended after 10 labels")
		}
	}
	// Let the producer run as far ahead as it can get away with.
	time.Sleep(50 * time.Millisecond)
	s.mu.Lock()
	emitted := s.base + len(s.pending)
	s.mu.Unlock()
	// Bound: taken labels + channel buffer + the one label blocked in the
	// producer's select.
	if limit := take + cap(s.ch) + 1; emitted > limit {
		t.Fatalf("generator ran %d labels ahead, bound is %d", emitted, limit)
	}
}
