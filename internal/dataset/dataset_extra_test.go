package dataset_test

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
)

// TestGenerateDeepDeterminism strengthens the sampling-determinism check
// beyond addresses and kinds: the installed bytecode, the per-label ground
// truth, and the source registry must all be identical across runs of the
// same seed.
func TestGenerateDeepDeterminism(t *testing.T) {
	a := dataset.Generate(dataset.Config{Seed: 7, Contracts: 400})
	b := dataset.Generate(dataset.Config{Seed: 7, Contracts: 400})
	if len(a.Labels) != len(b.Labels) {
		t.Fatalf("label counts differ: %d vs %d", len(a.Labels), len(b.Labels))
	}
	if a.Registry.Count() != b.Registry.Count() {
		t.Fatalf("registry sizes differ: %d vs %d", a.Registry.Count(), b.Registry.Count())
	}
	for i := range a.Labels {
		la, lb := a.Labels[i], b.Labels[i]
		if la.Address != lb.Address || la.Kind != lb.Kind || la.Year != lb.Year ||
			la.IsProxy != lb.IsProxy || la.Logic != lb.Logic ||
			la.ImplSlot != lb.ImplSlot || la.HasSource != lb.HasSource ||
			la.HasTx != lb.HasTx || la.CompilerKnown != lb.CompilerKnown {
			t.Fatalf("label %d fields differ:\n%+v\n%+v", i, la, lb)
		}
		if !bytes.Equal(a.Chain.Code(la.Address), b.Chain.Code(lb.Address)) {
			t.Fatalf("label %d (%v): bytecode differs across runs", i, la.Kind)
		}
		if a.Chain.CreatedAt(la.Address) != b.Chain.CreatedAt(lb.Address) {
			t.Fatalf("label %d: creation block differs across runs", i)
		}
		if a.Chain.TxCount(la.Address) != b.Chain.TxCount(lb.Address) {
			t.Fatalf("label %d: transaction count differs across runs", i)
		}
	}
}

// TestPopulationIndexConsistent: ByAddr must be a complete, collision-free
// index of Labels.
func TestPopulationIndexConsistent(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 3, Contracts: 300})
	if len(pop.ByAddr) != len(pop.Labels) {
		t.Fatalf("ByAddr has %d entries for %d labels (duplicate addresses?)", len(pop.ByAddr), len(pop.Labels))
	}
	for _, l := range pop.Labels {
		if pop.ByAddr[l.Address] != l {
			t.Fatalf("ByAddr[%v] does not point back at its label", l.Address)
		}
	}
}

// TestAccuracyCorpusDeterministic: the Table 2 corpus takes no seed, so two
// builds must agree case-by-case and byte-by-byte.
func TestAccuracyCorpusDeterministic(t *testing.T) {
	a := dataset.GenerateAccuracyCorpus()
	b := dataset.GenerateAccuracyCorpus()
	check := func(name string, ca, cb []dataset.PairCase) {
		if len(ca) != len(cb) {
			t.Fatalf("%s: case counts differ: %d vs %d", name, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("%s case %d differs: %+v vs %+v", name, i, ca[i], cb[i])
			}
			if !bytes.Equal(a.Chain.Code(ca[i].Proxy), b.Chain.Code(cb[i].Proxy)) {
				t.Fatalf("%s case %d: proxy bytecode differs", name, i)
			}
			if !bytes.Equal(a.Chain.Code(ca[i].Logic), b.Chain.Code(cb[i].Logic)) {
				t.Fatalf("%s case %d: logic bytecode differs", name, i)
			}
		}
	}
	check("storage", a.StoragePairs, b.StoragePairs)
	check("function", a.FunctionPairs, b.FunctionPairs)
}

// TestYearOfEdges pins the year curve's boundary behaviour: the first block
// lands in 2015, heights beyond the last cohort clamp to 2023, and the
// mapping never decreases with height.
func TestYearOfEdges(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 1, Contracts: 200})
	if got := pop.YearOf(1); got != 2015 {
		t.Errorf("YearOf(1) = %d, want 2015", got)
	}
	if got := pop.YearOf(1 << 40); got != 2023 {
		t.Errorf("YearOf(huge) = %d, want clamp to 2023", got)
	}
	prev := 0
	for block := uint64(1); block < 20_000; block += 97 {
		y := pop.YearOf(block)
		if y < prev {
			t.Fatalf("YearOf not monotonic: block %d maps to %d after %d", block, y, prev)
		}
		if y < 2015 || y > 2023 {
			t.Fatalf("YearOf(%d) = %d out of range", block, y)
		}
		prev = y
	}
}
