package dataset_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

func TestGenerateDeterministic(t *testing.T) {
	a := dataset.Generate(dataset.Config{Seed: 42, Contracts: 300})
	b := dataset.Generate(dataset.Config{Seed: 42, Contracts: 300})
	if len(a.Labels) != len(b.Labels) {
		t.Fatalf("label counts differ: %d vs %d", len(a.Labels), len(b.Labels))
	}
	for i := range a.Labels {
		if a.Labels[i].Address != b.Labels[i].Address || a.Labels[i].Kind != b.Labels[i].Kind {
			t.Fatalf("label %d differs: %+v vs %+v", i, a.Labels[i], b.Labels[i])
		}
	}
	c := dataset.Generate(dataset.Config{Seed: 43, Contracts: 300})
	if len(a.Labels) == len(c.Labels) {
		same := true
		for i := range a.Labels {
			if a.Labels[i].Kind != c.Labels[i].Kind {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical populations")
		}
	}
}

func TestGenerateProportions(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 1, Contracts: 2000})

	var total, proxies, minimal, withSource, withTx int
	for _, l := range pop.Labels {
		if l.Kind == dataset.KindLogic || l.Kind == dataset.KindLibrary {
			continue // supporting contracts, not the sampled population
		}
		total++
		if l.IsProxy {
			proxies++
			if l.Kind == dataset.KindMinimalProxy {
				minimal++
			}
		}
		if l.HasSource {
			withSource++
		}
		if l.HasTx {
			withTx++
		}
	}
	proxyFrac := float64(proxies) / float64(total)
	if proxyFrac < 0.40 || proxyFrac > 0.70 {
		t.Errorf("proxy fraction = %.3f, want ~0.54", proxyFrac)
	}
	minimalFrac := float64(minimal) / float64(proxies)
	if minimalFrac < 0.80 || minimalFrac > 0.95 {
		t.Errorf("minimal-proxy fraction of proxies = %.3f, want ~0.89", minimalFrac)
	}
	sourceFrac := float64(withSource) / float64(total)
	if sourceFrac < 0.08 || sourceFrac > 0.30 {
		t.Errorf("source fraction = %.3f, want ~0.18", sourceFrac)
	}
}

func TestGeneratedChainConsistency(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 7, Contracts: 400})
	for _, l := range pop.Labels {
		code := pop.Chain.Code(l.Address)
		if l.Kind == dataset.KindDestroyed {
			if len(code) != 0 || !pop.Chain.IsDestroyed(l.Address) {
				t.Errorf("destroyed contract %s still alive", l.Address)
			}
			continue
		}
		if len(code) == 0 {
			t.Fatalf("label %s (%s) has no code on chain", l.Address, l.Kind)
		}
		if l.HasSource && pop.Registry.Source(l.Address) == nil {
			t.Errorf("label %s says source published but registry is empty", l.Address)
		}
		if !l.HasSource && pop.Registry.Source(l.Address) != nil {
			t.Errorf("label %s says no source but registry has one", l.Address)
		}
		if l.HasTx && pop.Chain.TxCount(l.Address) == 0 {
			t.Errorf("label %s (%s) says tx history but chain has none", l.Address, l.Kind)
		}
		if l.IsProxy && l.Logic.IsZero() {
			t.Errorf("proxy %s (%s) has no logic address", l.Address, l.Kind)
		}
	}
}

func TestGroundTruthAgainstDetector(t *testing.T) {
	// The detector must agree with the ground-truth labels everywhere
	// except the documented blind spots (diamonds, hostile proxies).
	pop := dataset.Generate(dataset.Config{Seed: 3, Contracts: 600})
	d := proxion.NewDetector(pop.Chain)

	var checked, mismatches int
	for _, l := range pop.Labels {
		rep := d.Check(l.Address)
		checked++
		want := l.IsProxy
		if l.Kind == dataset.KindDiamond || l.Kind == dataset.KindHostileProxy {
			want = false // documented detector misses
		}
		if rep.IsProxy != want {
			mismatches++
			t.Errorf("detector disagrees on %s (%s): got %v, want %v",
				l.Address, l.Kind, rep.IsProxy, want)
			if mismatches > 5 {
				t.Fatal("too many mismatches")
			}
		}
		if rep.IsProxy && l.Kind == dataset.KindMinimalProxy && rep.Standard != proxion.StandardEIP1167 {
			t.Errorf("minimal proxy %s classified as %s", l.Address, rep.Standard)
		}
	}
	if checked == 0 {
		t.Fatal("no contracts checked")
	}
}

func TestUpgradeHistoryRecorded(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 5, Contracts: 1200})
	d := proxion.NewDetector(pop.Chain)
	found := false
	for _, l := range pop.Labels {
		if l.Upgrades == 0 || l.ImplSlot == (etypes.Hash{}) {
			continue
		}
		found = true
		hist := d.LogicHistory(l.Address, l.ImplSlot)
		if len(hist) != l.Upgrades+1 {
			t.Errorf("%s (%s): history has %d logics, label says %d upgrades",
				l.Address, l.Kind, len(hist), l.Upgrades)
		}
	}
	if !found {
		t.Skip("no upgraded proxies in this sample; increase population")
	}
}

func TestAccuracyCorpusShape(t *testing.T) {
	corpus := dataset.GenerateAccuracyCorpus()
	if got := len(corpus.StoragePairs); got != 206 {
		t.Errorf("storage pairs = %d, want 206", got)
	}
	if got := len(corpus.FunctionPairs); got != 561 {
		t.Errorf("function pairs = %d, want 561", got)
	}
	var trueStorage, trueFunc int
	for _, pc := range corpus.StoragePairs {
		if pc.Truth {
			trueStorage++
		}
		if pop := corpus.Chain.Code(pc.Proxy); len(pop) == 0 {
			t.Fatalf("storage pair proxy %s has no code", pc.Proxy)
		}
	}
	for _, pc := range corpus.FunctionPairs {
		if pc.Truth {
			trueFunc++
		}
	}
	if trueStorage != 44 {
		t.Errorf("true storage collisions = %d, want 44", trueStorage)
	}
	if trueFunc != 560 {
		t.Errorf("true function collisions = %d, want 560", trueFunc)
	}
}

func TestAccuracyCorpusTagsAndGates(t *testing.T) {
	corpus := dataset.GenerateAccuracyCorpus()

	// Storage corpus family sizes drive Table 2; pin them.
	tags := map[string]int{}
	for _, pc := range corpus.StoragePairs {
		tags[pc.Tag]++
	}
	want := map[string]int{
		"true-visible": 27, "true-obfuscated": 17, "guarded-benign": 28,
		"padding": 80, "library": 48, "clean": 6,
	}
	for tag, n := range want {
		if tags[tag] != n {
			t.Errorf("storage tag %q = %d, want %d", tag, tags[tag], n)
		}
	}

	// Function corpus: the hostile proxies must actually fail emulation,
	// and exactly one no-tx true pair must exist in the storage corpus.
	fnTags := map[string]int{}
	for _, pc := range corpus.FunctionPairs {
		fnTags[pc.Tag]++
	}
	if fnTags["hostile"] != 3 || fnTags["honeypot"] != 101 {
		t.Errorf("function tags = %v", fnTags)
	}
	det := proxion.NewDetector(corpus.Chain)
	for _, pc := range corpus.FunctionPairs {
		if pc.Tag != "hostile" {
			continue
		}
		rep := det.Check(pc.Proxy)
		if rep.IsProxy || rep.EmulationErr == nil {
			t.Errorf("hostile proxy %s: proxy=%v err=%v", pc.Proxy, rep.IsProxy, rep.EmulationErr)
		}
	}
	noTx := 0
	for _, pc := range corpus.StoragePairs {
		if pc.Tag == "true-visible" && corpus.Chain.TxCount(pc.Proxy) == 0 {
			noTx++
		}
	}
	if noTx != 1 {
		t.Errorf("no-tx true pairs = %d, want exactly 1 (CRUSH's extra FN)", noTx)
	}
}

func TestYearOfMapsDeploymentBlocks(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 13, Contracts: 500})
	for _, l := range pop.Labels {
		switch l.Kind {
		case dataset.KindLogic, dataset.KindLibrary, dataset.KindDestroyed:
			continue
		}
		block := pop.Chain.CreatedAt(l.Address)
		if got := pop.YearOf(block); got != l.Year {
			t.Errorf("%s: YearOf(%d) = %d, label year %d", l.Address, block, got, l.Year)
		}
	}
}
