package dataset

import (
	"encoding/binary"
	"math/rand"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etherscan"
	"repro/internal/etypes"
	"repro/internal/solc"
	"repro/internal/u256"
)

// Kind labels a generated contract's ground-truth category.
type Kind int

// Contract kinds in the generated landscape.
const (
	KindPlain Kind = iota
	KindToken
	KindMinimalProxy
	KindOwnableProxy
	KindEIP1967Proxy
	KindEIP1822Proxy
	KindAdHocProxy
	KindHoneypotProxy
	KindAudiusProxy
	KindDiamond
	KindLibraryUser
	KindLibrary
	KindBroken
	KindHostileProxy
	KindLogic
	KindDestroyed
)

// String names the kind.
func (k Kind) String() string {
	names := map[Kind]string{
		KindPlain: "plain", KindToken: "token", KindMinimalProxy: "minimal-proxy",
		KindOwnableProxy: "ownable-proxy", KindEIP1967Proxy: "eip1967-proxy",
		KindEIP1822Proxy: "eip1822-proxy", KindAdHocProxy: "adhoc-proxy",
		KindHoneypotProxy: "honeypot-proxy", KindAudiusProxy: "audius-proxy",
		KindDiamond: "diamond", KindLibraryUser: "library-user",
		KindLibrary: "library", KindBroken: "broken",
		KindHostileProxy: "hostile-proxy", KindLogic: "logic",
		KindDestroyed: "destroyed",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return "unknown"
}

// Label is the ground truth for one generated contract.
type Label struct {
	Address etypes.Address
	Kind    Kind
	// Year is the deployment year (2015–2023).
	Year int
	// IsProxy is the ground-truth proxy classification under the paper's
	// definition (fallback forwards call data via delegatecall).
	IsProxy bool
	// Logic is the current logic contract for proxies.
	Logic etypes.Address
	// HasSource / CompilerKnown / HasTx drive tool availability gates.
	HasSource     bool
	CompilerKnown bool
	HasTx         bool
	// TemplateID groups bytecode-identical deployments (Figure 5).
	TemplateID int
	// TrueFunctionCollision / TrueStorageCollision are pair-level ground
	// truth against Logic.
	TrueFunctionCollision bool
	TrueStorageCollision  bool
	// Upgrades is the number of logic switches performed after deployment.
	Upgrades int
	// ImplSlot is the storage slot holding the logic address, for
	// storage-based proxies.
	ImplSlot etypes.Hash
}

// Config parameterizes generation. Zero values select the defaults.
type Config struct {
	// Seed drives all randomness; equal seeds give identical populations.
	Seed int64
	// Contracts is the approximate total number of alive contracts
	// (default 4000). The paper's 36M population is scaled down keeping
	// proportions.
	Contracts int
	// Network selects the simulated EVM chain (default: Ethereum mainnet).
	// The proxy pattern is chain-agnostic, so the same generator models
	// the other networks Section 8.2 lists.
	Network chain.Config
}

// Population is a generated landscape.
type Population struct {
	Chain    *chain.Chain
	Registry *etherscan.Registry
	Labels   []*Label
	ByAddr   map[etypes.Address]*Label

	cfg      Config
	nextAddr uint64
}

// YearOf maps a block height back to its deployment year.
func (p *Population) YearOf(block uint64) int {
	span := p.yearSpan()
	y := 2015 + int((block-1)/span)
	if y > 2023 {
		y = 2023
	}
	return y
}

func (p *Population) yearSpan() uint64 {
	return uint64(p.cfg.Contracts) + 400
}

// yearShare is each year's fraction of total deployments, shaped after the
// cumulative curve in Figure 2.
var yearShare = map[int]float64{
	2015: 0.008, 2016: 0.030, 2017: 0.062, 2018: 0.055, 2019: 0.050,
	2020: 0.065, 2021: 0.190, 2022: 0.310, 2023: 0.230,
}

// proxyShare is the fraction of each year's deployments that are proxies,
// shaped so that the aggregate lands near the paper's 54.2% and the
// 2022–2023 cohorts are >93% proxies (Section 7.2).
var proxyShare = map[int]float64{
	2015: 0.05, 2016: 0.08, 2017: 0.15, 2018: 0.10, 2019: 0.12,
	2020: 0.15, 2021: 0.30, 2022: 0.93, 2023: 0.93,
}

// years lists the generation order.
var years = []int{2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022, 2023}

// Generate builds the synthetic landscape.
func Generate(cfg Config) *Population {
	if cfg.Contracts == 0 {
		cfg.Contracts = 4000
	}
	if cfg.Network.ChainID == 0 {
		cfg.Network = chain.MainnetConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Population{
		Chain:    chain.NewWithConfig(cfg.Network),
		Registry: etherscan.NewRegistry(),
		ByAddr:   make(map[etypes.Address]*Label),
		cfg:      cfg,
		nextAddr: 0x100000,
	}
	g := &generator{pop: p, rng: rng, cfg: cfg, retain: true}
	g.run()
	return p
}

// generator holds generation state.
type generator struct {
	pop *Population
	rng *rand.Rand
	cfg Config

	// retain keeps every label in Population.Labels/ByAddr (the batch
	// mode). Streaming generation turns it off so the corpus never
	// accumulates in memory.
	retain bool
	// emit, when set, receives each label the moment its contract is on
	// chain — the streaming tap. It may block; that blocking is the
	// generator's backpressure.
	emit func(*Label)
	// keepAlive, when set, marks addresses that must survive streaming
	// retirement: shared logic targets and proxies with upgrades still
	// scheduled against them.
	keepAlive func(etypes.Address)

	// Shared logic targets for the clone mega-families.
	coinToolLogic etypes.Address
	xenLogic      etypes.Address
	ownableLogic  etypes.Address
	cloneLogics   []etypes.Address
	uupsLogics    []etypes.Address
	adHocLogics   []etypes.Address

	templateSeq int
	// pendingUpgrades schedules logic switches by year.
	pendingUpgrades map[int][]upgrade
}

// upgrade carries the label itself, not just the address, so a scheduled
// logic switch can update its proxy's ground truth without an index over
// the whole population.
type upgrade struct {
	lbl  *Label
	slot etypes.Hash
}

// newAddr mints a fresh deterministic address.
func (p *Population) newAddr() etypes.Address {
	p.nextAddr++
	var buf [20]byte
	binary.BigEndian.PutUint64(buf[12:], p.nextAddr)
	buf[0] = 0xda // visually distinct from hand-written test addresses
	return etypes.Address(buf)
}

// add installs code, records the label, and registers source if published.
// In streaming mode the label is handed to the emit tap instead of (or in
// addition to) the retained slices.
func (g *generator) add(l *Label, code []byte, src *solc.Contract) *Label {
	if l.Address.IsZero() {
		l.Address = g.pop.newAddr()
	}
	g.pop.Chain.InstallContract(l.Address, code)
	if g.retain {
		g.pop.Labels = append(g.pop.Labels, l)
		g.pop.ByAddr[l.Address] = l
	}
	if l.HasSource && src != nil {
		g.pop.Registry.Publish(l.Address, src, l.CompilerKnown)
	}
	if g.emit != nil {
		g.emit(l)
	}
	return l
}

// compileAndAdd compiles src and installs it.
func (g *generator) compileAndAdd(l *Label, src *solc.Contract) *Label {
	return g.add(l, solc.MustCompile(src), src)
}

// sourceDice rolls source/compiler availability with kind-dependent odds:
// ~10% of proxies and ~28% of the rest publish source (aggregating to the
// paper's ~18%), and ~70% of published sources have a known compiler.
func (g *generator) sourceDice(isProxy bool) (hasSource, compilerKnown bool) {
	pSource := 0.28
	if isProxy {
		pSource = 0.10
	}
	hasSource = g.rng.Float64() < pSource
	compilerKnown = hasSource && g.rng.Float64() < 0.70
	return hasSource, compilerKnown
}

// txDice rolls past-transaction availability: ~92% of proxies have
// interacted (leaving the paper's ~8% hidden proxies), ~10% of the rest.
func (g *generator) txDice(isProxy bool) bool {
	if isProxy {
		return g.rng.Float64() < 0.92
	}
	return g.rng.Float64() < 0.10
}

// run generates all years in order.
func (g *generator) run() {
	g.pendingUpgrades = make(map[int][]upgrade)
	g.deploySharedLogics()

	total := g.cfg.Contracts
	for _, year := range years {
		n := int(float64(total) * yearShare[year])
		if n < 4 {
			n = 4
		}
		g.generateYear(year, n)
	}
}

// yearBase maps a year to the first block of its span. Spans are sized so
// every deployment and transaction of a year fits inside it (each contract
// consumes at most two blocks: its deployment gap and one transaction).
func (g *generator) yearBase(year int) uint64 {
	return uint64(year-2015)*g.pop.yearSpan() + 1
}

// deploySharedLogics installs the logic contracts the clone families and
// standard proxies point at.
func (g *generator) deploySharedLogics() {
	c := g.pop.Chain
	c.AdvanceTo(1)

	install := func(src *solc.Contract) etypes.Address {
		l := &Label{Kind: KindLogic, Year: 2015, HasSource: true, CompilerKnown: true}
		g.templateSeq++
		l.TemplateID = g.templateSeq
		g.compileAndAdd(l, src)
		return l.Address
	}
	g.coinToolLogic = install(cloneLogic("CoinTool_App"))
	g.xenLogic = install(cloneLogic("XENTorrent"))

	_, ownableLogicSrc := ownableDelegateProxy()
	g.ownableLogic = install(ownableLogicSrc)

	for i := 0; i < 12; i++ {
		src := cloneLogic("Fam")
		if i%3 == 0 {
			// A third of the clone families point at unverified logic, so
			// the "no source at all" pair series of Figure 4 is non-empty.
			l := &Label{Kind: KindLogic, Year: 2015}
			g.templateSeq++
			l.TemplateID = g.templateSeq
			g.compileAndAdd(l, src)
			g.cloneLogics = append(g.cloneLogics, l.Address)
			continue
		}
		g.cloneLogics = append(g.cloneLogics, install(src))
	}
	for i := 1; i <= 4; i++ {
		g.uupsLogics = append(g.uupsLogics, install(uupsLogic(i)))
	}
	for i := 0; i < 4; i++ {
		g.adHocLogics = append(g.adHocLogics, install(adHocLogic(i)))
	}
	if g.keepAlive != nil {
		// Shared logic targets are delegated to by proxies deployed across
		// all later years — they must never be retired.
		g.keepAlive(g.coinToolLogic)
		g.keepAlive(g.xenLogic)
		g.keepAlive(g.ownableLogic)
		for _, a := range g.cloneLogics {
			g.keepAlive(a)
		}
		for _, a := range g.uupsLogics {
			g.keepAlive(a)
		}
		for _, a := range g.adHocLogics {
			g.keepAlive(a)
		}
	}
	_ = c
}

// generateYear deploys n contracts into the given year.
func (g *generator) generateYear(year, n int) {
	c := g.pop.Chain
	c.AdvanceTo(g.yearBase(year))

	// Apply upgrades scheduled for this year first.
	for _, up := range g.pendingUpgrades[year] {
		g.applyUpgrade(up)
	}

	for i := 0; i < n; i++ {
		c.AdvanceBlocks(1)
		if g.rng.Float64() < proxyShare[year] {
			g.generateProxy(year)
		} else {
			g.generateNonProxy(year)
		}
	}
}

// deployLogicVersion installs a fresh logic-contract version.
func (g *generator) deployLogicVersion() etypes.Address {
	g.templateSeq++
	l := &Label{Kind: KindLogic, HasSource: false, TemplateID: g.templateSeq}
	g.compileAndAdd(l, uupsLogic(g.templateSeq))
	return l.Address
}

// generateProxy picks a proxy template per the Table 4 standard split.
func (g *generator) generateProxy(year int) {
	r := g.rng.Float64()
	switch {
	case r < 0.18: // CoinTool_App clones (post-2020 mega family)
		g.addMinimalClone(year, g.coinToolLogic, 1)
	case r < 0.30: // XENTorrent clones
		g.addMinimalClone(year, g.xenLogic, 2)
	case r < 0.89: // remaining minimal proxies across smaller families
		fam := g.rng.Intn(len(g.cloneLogics))
		g.addMinimalClone(year, g.cloneLogics[fam], 10+fam)
	case r < 0.95: // OwnableDelegateProxy duplicates (function collisions)
		g.addOwnableProxy(year)
	case r < 0.96: // EIP-1967
		g.addStandardProxy(year, KindEIP1967Proxy)
	case r < 0.963: // EIP-1822 (band widened slightly so small scaled
		// populations still contain a few; the paper measures 0.12%)
		g.addStandardProxy(year, KindEIP1822Proxy)
	case r < 0.995: // ad-hoc storage proxies, occasionally vulnerable
		g.addAdHocProxy(year)
	default: // diamonds (missed by emulation) and hostile proxies
		if g.rng.Float64() < 0.7 {
			g.addDiamond(year)
		} else {
			g.addHostileProxy(year)
		}
	}
}

func (g *generator) addMinimalClone(year int, logic etypes.Address, template int) {
	l := &Label{
		Kind: KindMinimalProxy, Year: year, IsProxy: true, Logic: logic,
		TemplateID: template,
	}
	l.HasSource, l.CompilerKnown = g.sourceDice(true)
	l.HasTx = g.txDice(true)
	src := &solc.Contract{
		Name:     "MinimalProxy",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateHardcoded, Target: logic},
	}
	g.add(l, disasm.MinimalProxyRuntime(logic), src)
	g.maybeTransact(l)
}

func (g *generator) addOwnableProxy(year int) {
	proxySrc, _ := ownableDelegateProxy()
	l := &Label{
		Kind: KindOwnableProxy, Year: year, IsProxy: true, Logic: g.ownableLogic,
		TemplateID:            3,
		TrueFunctionCollision: true, // proxyType()/implementation()/upgradeabilityOwner()
		ImplSlot:              implSlot1,
	}
	l.HasSource, l.CompilerKnown = g.sourceDice(true)
	l.HasTx = g.txDice(true)
	g.compileAndAdd(l, proxySrc)
	g.pop.Chain.SetStorageDirect(l.Address, implSlot1, etypes.HashFromWord(g.ownableLogic.Word()))
	g.maybeTransact(l)
}

func (g *generator) addStandardProxy(year int, kind Kind) {
	var slot etypes.Hash
	var src *solc.Contract
	switch kind {
	case KindEIP1967Proxy:
		slot = slotEIP1967
		src = transparentProxy1967(slot)
	case KindEIP1822Proxy:
		slot = slotEIP1822
		src = transparentProxy1967(slot)
		src.Name = "UUPSProxy"
	}
	logic := g.uupsLogics[g.rng.Intn(len(g.uupsLogics))]
	g.templateSeq++
	l := &Label{
		Kind: kind, Year: year, IsProxy: true, Logic: logic,
		TemplateID: g.templateSeq, ImplSlot: slot,
	}
	l.HasSource, l.CompilerKnown = g.sourceDice(true)
	l.HasTx = g.txDice(true)
	g.compileAndAdd(l, src)
	g.pop.Chain.SetStorageDirect(l.Address, slot, etypes.HashFromWord(logic.Word()))
	g.maybeTransact(l)
	g.maybeScheduleUpgrades(l, year, slot)
}

// addAdHocProxy deploys a non-standard storage proxy; a small fraction are
// the vulnerable honeypot / Audius shapes that seed Table 3's collisions.
func (g *generator) addAdHocProxy(year int) {
	r := g.rng.Float64()
	switch {
	case r < 0.10 && year >= 2018:
		g.addHoneypot(year)
	case r < 0.28 && year >= 2018:
		g.addAudius(year)
	default:
		g.templateSeq++
		fam := g.templateSeq % 7 // a few duplicate families
		proxySrc := adHocProxy(fam)
		slot := adHocSlot(fam)
		logic := g.adHocLogics[fam%len(g.adHocLogics)]
		l := &Label{
			Kind: KindAdHocProxy, Year: year, IsProxy: true, Logic: logic,
			TemplateID: 100 + fam, ImplSlot: slot,
		}
		l.HasSource, l.CompilerKnown = g.sourceDice(true)
		l.HasTx = g.txDice(true)
		g.compileAndAdd(l, proxySrc)
		g.pop.Chain.SetStorageDirect(l.Address, slot, etypes.HashFromWord(logic.Word()))
		g.maybeTransact(l)
		g.maybeScheduleUpgrades(l, year, slot)
	}
}

// addHoneypot deploys the Listing 1 function-collision scam as a hidden
// contract: no source, no transactions — invisible to every prior tool.
func (g *generator) addHoneypot(year int) {
	proxySrc, logicSrc := honeypotPair()
	g.templateSeq++
	logicLabel := &Label{Kind: KindLogic, Year: year, TemplateID: g.templateSeq}
	g.compileAndAdd(logicLabel, logicSrc)

	g.templateSeq++
	l := &Label{
		Kind: KindHoneypotProxy, Year: year, IsProxy: true,
		Logic: logicLabel.Address, TemplateID: g.templateSeq,
		TrueFunctionCollision: true, ImplSlot: implSlot1,
	}
	// Hidden: deliberately no source and no transactions.
	g.compileAndAdd(l, proxySrc)
	g.pop.Chain.SetStorageDirect(l.Address, implSlot1, etypes.HashFromWord(logicLabel.Address.Word()))
}

// addAudius deploys the Listing 2 exploitable storage collision.
func (g *generator) addAudius(year int) {
	proxySrc, logicSrc := audiusPair()
	g.templateSeq++
	logicLabel := &Label{Kind: KindLogic, Year: year, TemplateID: g.templateSeq}
	logicLabel.HasSource, logicLabel.CompilerKnown = g.sourceDice(false)
	g.compileAndAdd(logicLabel, logicSrc)

	g.templateSeq++
	l := &Label{
		Kind: KindAudiusProxy, Year: year, IsProxy: true,
		Logic: logicLabel.Address, TemplateID: g.templateSeq,
		TrueStorageCollision: true, ImplSlot: implSlot1,
	}
	l.HasSource, l.CompilerKnown = g.sourceDice(true)
	// A third of the vulnerable pairs never transact: the hidden collisions
	// only Proxion can reach (Section 6.2).
	l.HasTx = g.rng.Float64() < 0.67
	g.compileAndAdd(l, proxySrc)
	g.pop.Chain.SetStorageDirect(l.Address, implSlot1, etypes.HashFromWord(logicLabel.Address.Word()))
	g.maybeTransact(l)
}

func (g *generator) addDiamond(year int) {
	facetLabel := &Label{Kind: KindLogic, Year: year}
	g.templateSeq++
	facetLabel.TemplateID = g.templateSeq
	facetSrc := diamondFacet()
	g.compileAndAdd(facetLabel, facetSrc)

	src := diamondProxy()
	g.templateSeq++
	l := &Label{
		Kind: KindDiamond, Year: year, IsProxy: true, Logic: facetLabel.Address,
		TemplateID: g.templateSeq,
	}
	l.HasSource, l.CompilerKnown = g.sourceDice(true)
	g.compileAndAdd(l, src)
	// Register the facet's selector in the diamond mapping.
	sel := facetSrc.Funcs[0].ABI.Selector()
	selWord := u256.FromBytes(sel[:])
	pre := make([]byte, 64)
	sw := selWord.Bytes32()
	copy(pre[:32], sw[:])
	base := src.Fallback.Slot
	copy(pre[32:], base[:])
	g.pop.Chain.SetStorageDirect(l.Address, etypes.Keccak(pre), etypes.HashFromWord(facetLabel.Address.Word()))

	// Most diamonds have been used: a past transaction carrying a
	// registered facet selector, which the history-assisted detection
	// extension mines (Section 8.2).
	if g.rng.Float64() < 0.8 {
		l.HasTx = true
		sender := etypes.MustAddress("0x00000000000000000000000000000000000edca1")
		g.pop.Chain.Execute(sender, l.Address, abi.EncodeCall(sel), 2_000_000, u256.Zero())
	}
}

func (g *generator) addHostileProxy(year int) {
	logic := g.uupsLogics[g.rng.Intn(len(g.uupsLogics))]
	g.templateSeq++
	l := &Label{
		Kind: KindHostileProxy, Year: year, IsProxy: true, Logic: logic,
		TemplateID: g.templateSeq, ImplSlot: implSlot1,
	}
	l.HasSource, l.CompilerKnown = g.sourceDice(true)
	g.add(l, hostileProxy(), hostileProxySource())
	g.pop.Chain.SetStorageDirect(l.Address, implSlot1, etypes.HashFromWord(logic.Word()))
}

// generateNonProxy deploys plain contracts, tokens, library users, and the
// occasional broken blob.
func (g *generator) generateNonProxy(year int) {
	r := g.rng.Float64()
	switch {
	case r < 0.05:
		// Undecodable/broken blobs: the population behind the paper's 4.9%
		// emulation runtime errors (Section 7.1).
		g.templateSeq++
		l := &Label{Kind: KindBroken, Year: year, TemplateID: g.templateSeq}
		g.add(l, brokenBytecode(g.templateSeq%251), nil)
	case r < 0.13:
		g.addLibraryUser(year)
	case r < 0.155:
		g.addDestroyed(year)
	case r < 0.55:
		g.templateSeq++
		src := plainContract(g.templateSeq % 23)
		l := &Label{Kind: KindPlain, Year: year, TemplateID: 200 + g.templateSeq%23}
		l.HasSource, l.CompilerKnown = g.sourceDice(false)
		l.HasTx = g.txDice(false)
		g.compileAndAdd(l, src)
		g.maybeTransact(l)
	default:
		g.templateSeq++
		src := tokenContract(g.templateSeq % 31)
		l := &Label{Kind: KindToken, Year: year, TemplateID: 300 + g.templateSeq%31}
		l.HasSource, l.CompilerKnown = g.sourceDice(false)
		l.HasTx = g.txDice(false)
		g.compileAndAdd(l, src)
		g.maybeTransact(l)
	}
}

// addDestroyed deploys a short-lived contract and self-destructs it in a
// follow-up transaction. The paper's population counts only *alive*
// contracts (Section 3.1 excludes destroyed ones); these exercise that
// filter.
func (g *generator) addDestroyed(year int) {
	g.templateSeq++
	l := &Label{Kind: KindDestroyed, Year: year, TemplateID: g.templateSeq, HasTx: true}
	g.add(l, suicideBytecode(), nil)
	killer := etypes.MustAddress("0x00000000000000000000000000000000000edca2")
	g.pop.Chain.Execute(killer, l.Address, nil, 2_000_000, u256.Zero())
}

// addLibraryUser deploys a contract delegatecalling a shared library with
// constructed call data — the CRUSH/Etherscan false-positive bait.
func (g *generator) addLibraryUser(year int) {
	userSrc, libSrc := libraryPair(g.templateSeq % 5)
	g.templateSeq++
	libLabel := &Label{Kind: KindLibrary, Year: year, TemplateID: g.templateSeq}
	libLabel.HasSource, libLabel.CompilerKnown = true, true
	g.compileAndAdd(libLabel, libSrc)

	userSrc.Fallback.Target = libLabel.Address
	g.templateSeq++
	l := &Label{
		Kind: KindLibraryUser, Year: year, IsProxy: false, Logic: libLabel.Address,
		TemplateID: g.templateSeq,
	}
	l.HasSource, l.CompilerKnown = g.sourceDice(false)
	l.HasTx = true // library users transact: that is how CRUSH sees them
	g.compileAndAdd(l, userSrc)
	g.maybeTransact(l)
}

// maybeTransact executes one external transaction against the contract so
// trace-based tools can see it, when the label says it has history.
func (g *generator) maybeTransact(l *Label) {
	if !l.HasTx {
		return
	}
	sender := etypes.MustAddress("0x00000000000000000000000000000000000edca1")
	var input []byte
	switch l.Kind {
	case KindLibraryUser:
		// Hit the fallback so the library delegatecall executes.
		input = []byte{0xde, 0xad, 0xbe, 0xef}
	default:
		// A generic call; proxies forward it, others dispatch or revert.
		input = abi.EncodeCall(abi.SelectorOf("count()"))
	}
	g.pop.Chain.Execute(sender, l.Address, input, 2_000_000, u256.Zero())
}

// maybeScheduleUpgrades rarely performs or schedules logic switches
// (Figure 6: only a tiny share of proxies ever upgrade; most switch once or
// twice, a couple of outliers upgrade dozens of times). Upgrades that would
// land past the final year are applied immediately, a few blocks after the
// proxy's deployment.
func (g *generator) maybeScheduleUpgrades(l *Label, year int, slot etypes.Hash) {
	r := g.rng.Float64()
	if r > 0.15 { // upgrades only make sense for the few storage proxies
		return
	}
	count := 1 + g.rng.Intn(2)
	if r < 0.006 {
		count = 20 + g.rng.Intn(60) // the Figure 6 long tail
	}
	if g.keepAlive != nil {
		// The proxy's storage will be rewritten when each scheduled
		// upgrade lands, possibly years after a streaming consumer
		// finished with it — keep it out of retirement's reach.
		g.keepAlive(l.Address)
	}
	for i := 0; i < count; i++ {
		y := year + 1 + g.rng.Intn(3)
		if y > 2023 {
			g.applyUpgrade(upgrade{lbl: l, slot: slot})
			continue
		}
		g.pendingUpgrades[y] = append(g.pendingUpgrades[y], upgrade{lbl: l, slot: slot})
	}
}

// applyUpgrade installs a fresh logic version and points the proxy at it.
// The proxy's label mutates in place: in batch mode every caller still
// holds the pointer; in streaming mode the label may already be emitted,
// so consumers that need post-upgrade ground truth must read labels after
// the stream drains (the documented streaming caveat).
func (g *generator) applyUpgrade(up upgrade) {
	c := g.pop.Chain
	c.AdvanceBlocks(1)
	v := g.deployLogicVersion()
	c.SetStorageDirect(up.lbl.Address, up.slot, etypes.HashFromWord(v.Word()))
	up.lbl.Upgrades++
	up.lbl.Logic = v
}
