package dataset

import (
	"errors"
	"math/rand"
	"sync"

	"repro/internal/chain"
	"repro/internal/etherscan"
	"repro/internal/etypes"
)

// StreamConfig parameterizes streaming generation. The embedded Config is
// interpreted exactly as Generate interprets it — same seed, same corpus.
type StreamConfig struct {
	Config
	// Window is the retirement lag: a contract becomes eligible for
	// retirement only once the consumer has advanced at least Window
	// labels past it, so logic contracts deployed immediately before
	// their proxies stay readable throughout the proxies' analysis.
	// Default 8192.
	Window int
	// Retire enables dropping fully consumed contracts from the chain and
	// source registry as the consumer advances, bounding the generator
	// side's memory the way the analysis window bounds the engine's.
	// Incompatible with history recovery (retirement trims the event
	// traces Algorithm 1 replays).
	Retire bool
}

// errStreamAborted unwinds the generator goroutine when the stream is
// closed before it drains.
var errStreamAborted = errors.New("dataset: label stream closed")

// LabelStream is a landscape being generated on demand. Labels arrive on
// C in exactly the order Generate would have appended them to
// Population.Labels — the parity contract — and each label is emitted the
// moment its contract is live on Chain, so a consumer can analyze it
// immediately. The channel send is the generator's backpressure: a
// consumer that stops reading stops generation, holding the whole
// producer side at a bounded working set.
//
// Caveat: labels are pointers the generator may still mutate — a proxy's
// Upgrades/Logic fields change when a scheduled upgrade lands, possibly
// long after emission. Ground truth is final only once C closes.
type LabelStream struct {
	// C delivers the labels; closed when generation completes.
	C <-chan *Label
	// Chain and Registry are the live chain and source registry the
	// stream deploys into — hand them to the analysis engine.
	Chain    *chain.Chain
	Registry *etherscan.Registry

	cfg      StreamConfig
	ch       chan *Label
	stop     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	pending []etypes.Address // emitted, not yet retired; index-aligned to base
	keep    map[etypes.Address]struct{}
	base    int // emission index of pending[0]
	retired int
}

// GenerateStream starts generating the cfg landscape on a background
// goroutine and returns the live stream. Call Close when abandoning the
// stream early; a fully drained stream needs no Close.
func GenerateStream(cfg StreamConfig) *LabelStream {
	if cfg.Contracts == 0 {
		cfg.Contracts = 4000
	}
	if cfg.Network.ChainID == 0 {
		cfg.Network = chain.MainnetConfig()
	}
	if cfg.Window <= 0 {
		cfg.Window = 8192
	}
	s := &LabelStream{
		cfg:  cfg,
		ch:   make(chan *Label, 256),
		stop: make(chan struct{}),
		keep: make(map[etypes.Address]struct{}),
	}
	s.C = s.ch

	p := &Population{
		Chain:    chain.NewWithConfig(cfg.Network),
		Registry: etherscan.NewRegistry(),
		cfg:      cfg.Config,
		nextAddr: 0x100000,
	}
	s.Chain, s.Registry = p.Chain, p.Registry
	g := &generator{
		pop:       p,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		cfg:       cfg.Config,
		emit:      s.emitLabel,
		keepAlive: s.keepAlive,
	}
	go func() {
		defer close(s.ch)
		defer func() {
			if r := recover(); r != nil && r != errStreamAborted {
				panic(r)
			}
		}()
		g.run()
	}()
	return s
}

// emitLabel is the generator's tap: blocks until the consumer takes the
// label or the stream is closed.
func (s *LabelStream) emitLabel(l *Label) {
	select {
	case s.ch <- l:
	case <-s.stop:
		panic(errStreamAborted)
	}
	if s.cfg.Retire {
		s.mu.Lock()
		s.pending = append(s.pending, l.Address)
		s.mu.Unlock()
	}
}

// keepAlive pins an address against retirement.
func (s *LabelStream) keepAlive(addr etypes.Address) {
	s.mu.Lock()
	s.keep[addr] = struct{}{}
	s.mu.Unlock()
}

// Advance tells the stream the consumer has fully finished the first
// `completed` emitted labels (analysis done, results emitted). With
// Retire on, every contract more than Window labels behind that point —
// except pinned shared-logic targets and upgrade-scheduled proxies — is
// dropped from the chain and the registry, and event traces older than
// the retired horizon are trimmed. Calling Advance with a non-increasing
// value is a no-op; calling it with Retire off is always a no-op.
func (s *LabelStream) Advance(completed int) {
	if !s.cfg.Retire {
		return
	}
	s.mu.Lock()
	horizon := completed - s.cfg.Window
	var toRetire []etypes.Address
	for s.base < horizon && len(s.pending) > 0 {
		addr := s.pending[0]
		s.pending = s.pending[1:]
		s.base++
		if _, pinned := s.keep[addr]; pinned {
			continue
		}
		toRetire = append(toRetire, addr)
	}
	s.retired += len(toRetire)
	s.mu.Unlock()

	// Labels are emitted in non-decreasing creation-block order, so every
	// surviving contract was created at or after the newest retired one —
	// trimming events strictly below that block cannot remove anything a
	// later analysis will read.
	var trimBelow uint64
	for _, addr := range toRetire {
		var created uint64
		chain.CaptureReadError(func() { created = s.Chain.CreatedAt(addr) })
		if created > trimBelow {
			trimBelow = created
		}
		s.Chain.Forget(addr)
		s.Registry.Forget(addr)
	}
	if trimBelow > 0 {
		s.Chain.TrimEvents(trimBelow)
	}
}

// Retired returns how many contracts retirement has dropped so far.
func (s *LabelStream) Retired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired
}

// Close abandons the stream: the generator goroutine stops at its next
// emission and the channel closes. Safe to call multiple times and after
// natural completion.
func (s *LabelStream) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
}
