package dataset

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etherscan"
	"repro/internal/etypes"
	"repro/internal/solc"
	"repro/internal/u256"
)

// PairCase is one labeled proxy/logic pair in an accuracy corpus.
type PairCase struct {
	Proxy etypes.Address
	Logic etypes.Address
	// Truth is the manually-established ground truth: does this pair have
	// a real (exploitable) collision of the corpus's type?
	Truth bool
	// Tag names the case family, for debugging and reporting.
	Tag string
}

// AccuracyCorpus is the labeled dataset behind the Table 2 comparison: a
// Sanctuary-like corpus (every contract has published source) whose case
// families are sized from the paper's measured confusion matrices, so that
// each tool's characteristic errors — USCHunt's padding false positives and
// compile halts, CRUSH's library-pair false positives and no-transaction
// misses, the shared engine blindness to computed storage slots, Proxion's
// emulation-hostile runtime errors — reproduce the published TP/FP/TN/FN
// shape when the tools actually run.
type AccuracyCorpus struct {
	Chain    *chain.Chain
	Registry *etherscan.Registry
	// StoragePairs are the storage-collision candidates (206 in the paper).
	StoragePairs []PairCase
	// FunctionPairs are the function-collision candidates (561 unique).
	FunctionPairs []PairCase
}

// Case-family sizes for the storage corpus, from Section 6.3.
const (
	nStorageTrueVisible   = 27 // engine-detectable exploitable collisions
	nStorageTrueObfuscued = 17 // computed-slot collisions both engines miss
	nStorageGuardedBenign = 28 // auth-dominated: engines' false positives
	nStoragePadding       = 80 // name mismatch, same boundaries: USCHunt FPs
	nStorageLibrary       = 48 // library pairs: CRUSH-only false positives
	nStorageClean         = 6  // identical layouts
)

// Case-family sizes for the function corpus.
const (
	nFuncSameNamePlain   = 296 // same-prototype collisions, everything works
	nFuncHostile         = 3   // real collisions on emulation-hostile proxies
	nFuncHoneypot        = 101 // different-name selector collisions (0xdf4a3106)
	nFuncUnknownCompiler = 160 // real collisions whose sources fail to compile
	nFuncNameOnlyFalse   = 1   // same name, different params: not a collision
)

// corpusBuilder threads shared deployment state.
type corpusBuilder struct {
	chain    *chain.Chain
	registry *etherscan.Registry
	nextAddr uint64
}

func (b *corpusBuilder) newAddr() etypes.Address {
	b.nextAddr++
	var buf [20]byte
	buf[0] = 0xac
	for i := 0; i < 8; i++ {
		buf[19-i] = byte(b.nextAddr >> (8 * i))
	}
	return etypes.Address(buf)
}

// deployPair compiles and installs a proxy/logic pair, wires the proxy's
// implementation slot, publishes sources, and optionally executes one
// transaction so trace-based tools can see the pair.
func (b *corpusBuilder) deployPair(proxySrc, logicSrc *solc.Contract, compilerKnown, withTx bool) (etypes.Address, etypes.Address) {
	logicAddr := b.newAddr()
	b.chain.InstallContract(logicAddr, solc.MustCompile(logicSrc))
	b.registry.Publish(logicAddr, logicSrc, compilerKnown)

	proxyAddr := b.newAddr()
	b.chain.InstallContract(proxyAddr, solc.MustCompile(proxySrc))
	b.registry.Publish(proxyAddr, proxySrc, compilerKnown)
	b.chain.SetStorageDirect(proxyAddr, implSlot1, etypes.HashFromWord(logicAddr.Word()))

	if withTx {
		sender := etypes.MustAddress("0x00000000000000000000000000000000000c0b01")
		b.chain.Execute(sender, proxyAddr, []byte{0x01, 0x02, 0x03, 0x04}, 2_000_000, u256.Zero())
	}
	return proxyAddr, logicAddr
}

// GenerateAccuracyCorpus builds the Table 2 corpus. The layout is fully
// deterministic; there is no randomness to seed.
func GenerateAccuracyCorpus() *AccuracyCorpus {
	b := &corpusBuilder{
		chain:    chain.New(),
		registry: etherscan.NewRegistry(),
		nextAddr: 0x5000_0000,
	}
	b.chain.AdvanceTo(100)
	corpus := &AccuracyCorpus{Chain: b.chain, Registry: b.registry}

	corpus.buildStoragePairs(b)
	corpus.buildFunctionPairs(b)
	return corpus
}

func (c *AccuracyCorpus) buildStoragePairs(b *corpusBuilder) {
	add := func(p, l etypes.Address, truth bool, tag string) {
		c.StoragePairs = append(c.StoragePairs, PairCase{Proxy: p, Logic: l, Truth: truth, Tag: tag})
	}

	// True exploitable, engine-visible. One pair deliberately has no
	// transaction history (Proxion still finds it, CRUSH cannot), and
	// eight publish sources with unknown compiler versions (USCHunt halts;
	// together with three obfuscated ones below, its 11 false negatives).
	for i := 0; i < nStorageTrueVisible; i++ {
		proxySrc, logicSrc := audiusPair()
		proxySrc.Name = fmt.Sprintf("AudiusProxy%d", i)
		withTx := i != 0
		compilerKnown := i == 0 || i > 8
		p, l := b.deployPair(proxySrc, logicSrc, compilerKnown, withTx)
		add(p, l, true, "true-visible")
	}

	// True exploitable behind computed slots: engines cannot slice the
	// accesses, but layout-level (declaration) comparison still can.
	for i := 0; i < nStorageTrueObfuscued; i++ {
		proxySrc, logicSrc := obfuscatedAudiusPair()
		proxySrc.Name = fmt.Sprintf("ObfProxy%d", i)
		compilerKnown := i >= 3
		p, l := b.deployPair(proxySrc, logicSrc, compilerKnown, true)
		add(p, l, true, "true-obfuscated")
	}

	// Benign mismatches behind an ownership check: the engines' false
	// positives. Most of these fail USCHunt's compiler gate, matching its
	// published FP count.
	for i := 0; i < nStorageGuardedBenign; i++ {
		proxySrc, logicSrc := guardedBenignPair()
		proxySrc.Name = fmt.Sprintf("GuardedProxy%d", i)
		compilerKnown := i < 3
		p, l := b.deployPair(proxySrc, logicSrc, compilerKnown, true)
		add(p, l, false, "guarded-benign")
	}

	// Padding/naming mismatches with identical boundaries: harmless, but
	// name-comparing tools flag every one.
	for i := 0; i < nStoragePadding; i++ {
		proxySrc, logicSrc := paddingPair(i)
		p, l := b.deployPair(proxySrc, logicSrc, true, true)
		add(p, l, false, "padding")
	}

	// Library pairs: not proxies at all; only trace mining pairs them.
	for i := 0; i < nStorageLibrary; i++ {
		userSrc, libSrc := libraryPair(i)
		libAddr := b.newAddr()
		b.chain.InstallContract(libAddr, solc.MustCompile(libSrc))
		b.registry.Publish(libAddr, libSrc, true)
		userSrc.Fallback.Target = libAddr
		userAddr := b.newAddr()
		b.chain.InstallContract(userAddr, solc.MustCompile(userSrc))
		b.registry.Publish(userAddr, userSrc, true)
		// Trigger the library call so the trace records the pair.
		sender := etypes.MustAddress("0x00000000000000000000000000000000000c0b02")
		b.chain.Execute(sender, userAddr, []byte{0xff, 0xee, 0xdd, 0xcc}, 2_000_000, u256.Zero())
		add(userAddr, libAddr, false, "library")
	}

	// Clean pairs: identical names and layouts.
	for i := 0; i < nStorageClean; i++ {
		shared := []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		}
		proxySrc := &solc.Contract{
			Name: fmt.Sprintf("CleanProxy%d", i), Vars: shared,
			Funcs: []solc.Func{{ABI: abi.Function{Name: "proxyOwner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}}},
			Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot1},
		}
		logicSrc := &solc.Contract{
			Name: fmt.Sprintf("CleanLogic%d", i), Vars: shared,
			Funcs: []solc.Func{{ABI: abi.Function{Name: "owner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}}},
		}
		p, l := b.deployPair(proxySrc, logicSrc, true, true)
		add(p, l, false, "clean")
	}
}

func (c *AccuracyCorpus) buildFunctionPairs(b *corpusBuilder) {
	add := func(p, l etypes.Address, truth bool, tag string) {
		c.FunctionPairs = append(c.FunctionPairs, PairCase{Proxy: p, Logic: l, Truth: truth, Tag: tag})
	}

	// sameNamePair builds a proxy/logic pair sharing one prototype.
	sameNamePair := func(i int) (*solc.Contract, *solc.Contract) {
		shared := abi.Function{Name: fmt.Sprintf("op%d", i%40)}
		proxySrc := &solc.Contract{
			Name: fmt.Sprintf("FnProxy%d", i),
			Vars: []solc.Var{
				{Name: "owner", Type: solc.TypeAddress},
				{Name: "logic", Type: solc.TypeAddress}, // slot 1, the fallback's source
			},
			Funcs: []solc.Func{{ABI: shared,
				Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(uint64(i))}}}},
			Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot1},
		}
		logicSrc := &solc.Contract{
			Name: fmt.Sprintf("FnLogic%d", i),
			Funcs: []solc.Func{
				{ABI: shared, Body: []solc.Stmt{solc.Stop{}}},
				{ABI: abi.Function{Name: fmt.Sprintf("extra%d", i)}, Body: []solc.Stmt{solc.Stop{}}},
			},
		}
		return proxySrc, logicSrc
	}

	// Plain same-prototype collisions: every tool that runs sees them.
	for i := 0; i < nFuncSameNamePlain; i++ {
		proxySrc, logicSrc := sameNamePair(i)
		p, l := b.deployPair(proxySrc, logicSrc, true, true)
		add(p, l, true, "same-name")
	}

	// Emulation-hostile proxies with a real collision: Proxion's runtime
	// errors, the paper's three function-collision false negatives.
	for i := 0; i < nFuncHostile; i++ {
		_, logicSrc := sameNamePair(1000 + i)
		logicAddr := b.newAddr()
		b.chain.InstallContract(logicAddr, solc.MustCompile(logicSrc))
		b.registry.Publish(logicAddr, logicSrc, true)

		proxyAddr := b.newAddr()
		src := hostileProxySource()
		// Declare the colliding prototype in the source so source-level
		// tools can still see the collision.
		src.Funcs = append(src.Funcs, solc.Func{
			ABI:  abi.Function{Name: fmt.Sprintf("op%d", (1000+i)%40)},
			Body: []solc.Stmt{solc.Stop{}},
		})
		b.chain.InstallContract(proxyAddr, hostileProxy())
		b.registry.Publish(proxyAddr, src, true)
		b.chain.SetStorageDirect(proxyAddr, implSlot1, etypes.HashFromWord(logicAddr.Word()))
		add(proxyAddr, logicAddr, true, "hostile")
	}

	// Honeypot-style collisions: different names, identical selectors
	// (0xdf4a3106). Selector-level tools see them; name-level tools cannot.
	for i := 0; i < nFuncHoneypot; i++ {
		proxySrc, logicSrc := honeypotPair()
		proxySrc.Name = fmt.Sprintf("Honeypot%d", i)
		p, l := b.deployPair(proxySrc, logicSrc, true, true)
		add(p, l, true, "honeypot")
	}

	// Real collisions whose published sources fail to compile (unknown
	// compiler): source-only tools halt.
	for i := 0; i < nFuncUnknownCompiler; i++ {
		proxySrc, logicSrc := sameNamePair(2000 + i)
		p, l := b.deployPair(proxySrc, logicSrc, false, true)
		add(p, l, true, "unknown-compiler")
	}

	// The single non-collision: same function name, different parameter
	// lists, hence different selectors.
	{
		proxySrc := &solc.Contract{
			Name: "FalseFnProxy",
			Vars: []solc.Var{
				{Name: "owner", Type: solc.TypeAddress},
				{Name: "logic", Type: solc.TypeAddress},
			},
			Funcs: []solc.Func{{ABI: abi.Function{Name: "configure"},
				Body: []solc.Stmt{solc.Stop{}}}},
			Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot1},
		}
		logicSrc := &solc.Contract{
			Name: "FalseFnLogic",
			Funcs: []solc.Func{{ABI: abi.Function{Name: "configure", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.Stop{}}}},
		}
		p, l := b.deployPair(proxySrc, logicSrc, true, true)
		add(p, l, false, "name-only")
	}
}
