// Package dataset generates the synthetic Ethereum contract landscape the
// reproduction analyzes in place of the 36 million mainnet contracts: a
// seeded, deterministic population whose proportions mirror the paper's
// measurements — proxy share and standards split (Table 4), bytecode
// duplication skew (Figure 5), source/transaction availability (Figure 2),
// upgrade rarity (Figure 6) — plus the labeled collision corpora behind the
// accuracy comparison (Table 2).
package dataset

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/asm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/keccak"
	"repro/internal/solc"
	"repro/internal/u256"
)

// implSlot1 is the ad-hoc implementation slot (slot 1) used by generated
// non-standard storage proxies, matching the Listing 2 layout.
var implSlot1 = etypes.HashFromWord(u256.One())

// Standard implementation slots (duplicated from the analyzer so the
// dataset does not depend on it).
var (
	slotEIP1967 = etypes.HashFromWord(
		u256.FromBytes32(keccak.Sum256([]byte("eip1967.proxy.implementation"))).Sub(u256.One()))
	slotEIP1822 = etypes.Keccak([]byte("PROXIABLE"))
)

// plainContract is a non-proxy application contract with a few functions.
func plainContract(n int) *solc.Contract {
	return &solc.Contract{
		Name: fmt.Sprintf("App%d", n),
		// A 4-byte protocol magic stored as a constant, not a selector.
		DecoyPush4: []([4]byte){{0xde, 0xc0, 0xde + byte(n%2), byte(n)}},
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "total", Type: solc.TypeUint256},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: fmt.Sprintf("run%d", n)},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "total"}}},
			{ABI: abi.Function{Name: "owner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
			{ABI: abi.Function{Name: "deposit", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "total", Arg: 0}}},
		},
	}
}

// tokenContract is an ERC-20-shaped non-proxy.
func tokenContract(n int) *solc.Contract {
	return &solc.Contract{
		Name: fmt.Sprintf("Token%d", n),
		// ERC-165/721 interface identifiers embedded as constants: 4-byte
		// data after PUSH4 opcodes that are NOT function selectors — the
		// false-positive bait for naive any-PUSH4 signature extraction.
		DecoyPush4: [][4]byte{{0x01, 0xff, 0xc9, 0xa7}, {0x80, 0xac, 0x58, 0xcd}},
		Vars: []solc.Var{
			{Name: "totalSupply", Type: solc.TypeUint256},
			{Name: "paused", Type: solc.TypeBool},
			{Name: "owner", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "totalSupply"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "totalSupply"}}},
			{ABI: abi.Function{Name: "transfer", Params: []string{"address", "uint256"}},
				Body: []solc.Stmt{solc.RequireVarZero{Var: "paused"}, solc.Stop{}}},
			{ABI: abi.Function{Name: "balanceOf", Params: []string{"address"}},
				Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(uint64(n))}}},
		},
	}
}

// cloneLogic is a logic contract for minimal-proxy clone families.
func cloneLogic(family string) *solc.Contract {
	return &solc.Contract{
		Name: family + "Logic",
		Vars: []solc.Var{
			{Name: "count", Type: solc.TypeUint256},
			{Name: "creator", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "mint", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "count", Arg: 0}}},
			{ABI: abi.Function{Name: "count"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "count"}}},
			{ABI: abi.Function{Name: "creator"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "creator"}}},
		},
	}
}

// ownableDelegateProxy reproduces the Wyvern OwnableDelegateProxy shape:
// the proxy and logic both expose proxyType(), implementation() and
// upgradeabilityOwner() (via inheritance in the original), so every
// deployed duplicate carries the same three function collisions — the
// source of 98.7% of the function collisions in Table 3.
func ownableDelegateProxy() (*solc.Contract, *solc.Contract) {
	shared := []solc.Func{
		{ABI: abi.Function{Name: "proxyType"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(2)}}},
		{ABI: abi.Function{Name: "implementation"},
			Body: []solc.Stmt{solc.ReturnSlotField{Slot: implSlot1, Offset: 0, Size: 20}}},
		{ABI: abi.Function{Name: "upgradeabilityOwner"},
			Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
	}
	proxy := &solc.Contract{
		Name: "OwnableDelegateProxy",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "implementation_", Type: solc.TypeAddress},
		},
		Funcs:    shared,
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot1},
	}
	logicFuncs := append([]solc.Func{}, shared...)
	logicFuncs = append(logicFuncs,
		solc.Func{ABI: abi.Function{Name: "atomicMatch", Params: []string{"uint256"}},
			Body: []solc.Stmt{solc.Stop{}}},
	)
	logic := &solc.Contract{
		Name: "AuthenticatedProxyLogic",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "implementation_", Type: solc.TypeAddress},
		},
		Funcs: logicFuncs,
	}
	return proxy, logic
}

// adminSlot1967 is the EIP-1967 admin slot: keccak("eip1967.proxy.admin")-1.
var adminSlot1967 = etypes.HashFromWord(
	u256.FromBytes32(keccak.Sum256([]byte("eip1967.proxy.admin"))).Sub(u256.One()))

// transparentProxy1967 is an EIP-1967 transparent upgradeable proxy with
// admin functions; both the implementation and the admin live in
// hash-derived slots, out of reach of any logic layout — exactly why the
// standard exists.
func transparentProxy1967(slot etypes.Hash) *solc.Contract {
	return &solc.Contract{
		Name: "TransparentUpgradeableProxy",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "admin"},
				Body: []solc.Stmt{solc.ReturnSlotField{Slot: adminSlot1967, Offset: 0, Size: 20}}},
			{ABI: abi.Function{Name: "upgradeTo", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.InlineAsm{Emit: requireCallerIsAt(adminSlot1967)},
					solc.InlineAsm{Emit: func(p *asm.Program, _ func(string) string) {
						// implementation slot = arg 0
						p.PushUint(4).Op(evm.CALLDATALOAD).
							Push(slot.Word()).Op(evm.SSTORE)
					}},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot},
	}
}

// requireCallerIsAt emits require(caller == address(sload(slot))).
func requireCallerIsAt(slot etypes.Hash) func(p *asm.Program, fresh func(string) string) {
	return func(p *asm.Program, fresh func(string) string) {
		ok := fresh("auth")
		p.Push(slot.Word()).Op(evm.SLOAD).
			Push(u256.One().Shl(160).Sub(u256.One())).Op(evm.AND).
			Op(evm.CALLER).Op(evm.EQ).
			PushLabel(ok).Op(evm.JUMPI).
			PushUint(0).PushUint(0).Op(evm.REVERT).
			Label(ok)
	}
}

// uupsLogic is a logic contract for EIP-1822/1967 style proxies.
func uupsLogic(n int) *solc.Contract {
	return &solc.Contract{
		Name: fmt.Sprintf("UUPSLogicV%d", n),
		Vars: []solc.Var{
			{Name: "value", Type: solc.TypeUint256},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "value"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "value"}}},
			{ABI: abi.Function{Name: "setValue", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "value", Arg: 0}}},
			{ABI: abi.Function{Name: "version"},
				Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(uint64(n))}}},
		},
	}
}

// adHocSlot returns the unstructured high implementation slot used by the
// n-th ad-hoc proxy family: not a known EIP slot, but far enough from the
// layout that careful logic contracts do not trample it.
func adHocSlot(n int) etypes.Hash {
	return etypes.HashFromWord(u256.FromUint64(0x40 + uint64(n)))
}

// adHocProxy stores its implementation at an unstructured storage slot
// without following any EIP — the "Others" bucket of Table 4.
func adHocProxy(n int) *solc.Contract {
	return &solc.Contract{
		Name: fmt.Sprintf("CustomProxy%d", n),
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "proxyOwner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
			{ABI: abi.Function{Name: "setLogic", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.RequireCallerIs{Var: "owner"},
					solc.InlineAsm{Emit: func(p *asm.Program, _ func(string) string) {
						p.PushUint(4).Op(evm.CALLDATALOAD).
							Push(adHocSlot(n).Word()).Op(evm.SSTORE)
					}},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: adHocSlot(n)},
	}
}

// adHocLogic matches adHocProxy's declared layout (owner at slot 0), so the
// generic ad-hoc pairs are collision-free.
func adHocLogic(n int) *solc.Contract {
	return &solc.Contract{
		Name: fmt.Sprintf("CustomLogic%d", n),
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "value", Type: solc.TypeUint256},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "value"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "value"}}},
			{ABI: abi.Function{Name: "store", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "value", Arg: 0}}},
			{ABI: abi.Function{Name: "owner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
		},
	}
}

// honeypotPair is the Listing 1 scam: the logic's lure function
// free_ether_withdrawal() shares selector 0xdf4a3106 with the proxy's
// impl_LUsXCWD2AKCc() — a genuine Keccak collision, not a same-name match —
// so callers chasing the lure execute the proxy's draining body instead.
func honeypotPair() (*solc.Contract, *solc.Contract) {
	usdt := etypes.MustAddress("0xdAC17F958D2ee523a2206206994597C13D831ec7")
	proxy := &solc.Contract{
		Name: "HoneypotProxy",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "impl_LUsXCWD2AKCc"},
				Body: []solc.Stmt{
					solc.DelegateCallSig{
						Target: usdt,
						Proto:  "transfer(address,uint256)",
						Args:   []u256.Int{u256.Zero(), u256.FromUint64(1000)},
					},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot1},
	}
	logic := &solc.Contract{
		Name: "HoneypotLure",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "free_ether_withdrawal"},
				Body: []solc.Stmt{
					solc.SendToCaller{Amount: u256.FromUint64(10_000_000_000_000_000_000)}, // 10 ether
				}},
		},
	}
	return proxy, logic
}

// audiusPair is the Listing 2 storage collision: the proxy's owner address
// at slot 0 collides with the logic's packed initializer guard bools, and
// the logic's inherited owner assignment tramples the guard.
func audiusPair() (*solc.Contract, *solc.Contract) {
	proxy := &solc.Contract{
		Name: "AudiusAdminUpgradeabilityProxy",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "proxyOwner"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "owner"}}},
			{ABI: abi.Function{Name: "upgradeTo", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.RequireCallerIs{Var: "owner"},
					solc.AssignArg{Var: "logic", Arg: 0},
				}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot1},
	}
	logic := &solc.Contract{
		Name: "AudiusGovernanceLogic",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},
			{Name: "initializing", Type: solc.TypeBool},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "initialize"},
				Body: []solc.Stmt{
					solc.RequireInitializable{Initialized: "initialized", Initializing: "initializing"},
					solc.AssignConst{Var: "initialized", Value: u256.One()},
					solc.AssignConst{Var: "initializing", Value: u256.Zero()},
					solc.AssignCallerToSlot{Slot: etypes.Hash{}, Offset: 0, Size: 20},
				}},
			{ABI: abi.Function{Name: "owner"},
				Body: []solc.Stmt{solc.ReturnSlotField{Slot: etypes.Hash{}, Offset: 0, Size: 20}}},
		},
	}
	return proxy, logic
}

// guardedBenignPair has the same layout mismatch as the Audius pair but the
// trampling write sits behind an onlyOwner check, so it is not actually
// exploitable. Static slicing cannot see the auth dominance, making this
// the engines' characteristic false positive (Table 2).
func guardedBenignPair() (*solc.Contract, *solc.Contract) {
	proxy, _ := audiusPair()
	proxy = &solc.Contract{
		Name:     "GuardedProxy",
		Vars:     proxy.Vars,
		Funcs:    proxy.Funcs,
		Fallback: proxy.Fallback,
	}
	logic := &solc.Contract{
		Name: "GuardedLogic",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},
			{Name: "initializing", Type: solc.TypeBool},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "initialize"},
				Body: []solc.Stmt{
					// Auth first: only the already-set owner (proxy slot 0,
					// bytes 0..20) may run this, so an attacker cannot
					// trigger the trampling write.
					solc.InlineAsm{Emit: requireCallerIsSlotField},
					solc.RequireInitializable{Initialized: "initialized", Initializing: "initializing"},
					solc.AssignConst{Var: "initialized", Value: u256.One()},
					solc.AssignCallerToSlot{Slot: etypes.Hash{}, Offset: 0, Size: 20},
				}},
		},
	}
	return proxy, logic
}

// requireCallerIsSlotField emits require(caller == slot0[0:20]).
func requireCallerIsSlotField(p *asm.Program, fresh func(string) string) {
	ok := fresh("auth")
	p.PushUint(0).Op(evm.SLOAD).
		Push(u256.One().Shl(160).Sub(u256.One())).Op(evm.AND).
		Op(evm.CALLER).Op(evm.EQ).
		PushLabel(ok).Op(evm.JUMPI).
		PushUint(0).PushUint(0).Op(evm.REVERT).
		Label(ok)
}

// paddingPair has identical field boundaries (full-width words) with
// different variable names: harmless, but name-comparing tools flag it —
// the USCHunt false positive of Table 2.
func paddingPair(n int) (*solc.Contract, *solc.Contract) {
	proxy := &solc.Contract{
		Name: fmt.Sprintf("PaddedProxy%d", n),
		Vars: []solc.Var{
			{Name: "__gap0", Type: solc.TypeUint256},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "gap"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "__gap0"}}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot1},
	}
	logic := &solc.Contract{
		Name: fmt.Sprintf("PaddedLogic%d", n),
		Vars: []solc.Var{
			{Name: "counter", Type: solc.TypeUint256}, // same slot 0, same width
			{Name: "reserved", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "bump"},
				Body: []solc.Stmt{solc.AssignConst{Var: "counter", Value: u256.FromUint64(uint64(n))}}},
			{ABI: abi.Function{Name: "counter"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "counter"}}},
		},
	}
	return proxy, logic
}

// obfuscatedAudiusPair is the Audius collision with every colliding storage
// access going through a computed (non-constant) slot, defeating the
// slicing engines of both Proxion and CRUSH while remaining detectable by
// a purely declaration-level comparison — the engine false negatives of
// Table 2.
func obfuscatedAudiusPair() (*solc.Contract, *solc.Contract) {
	proxy, _ := audiusPair()
	proxy = &solc.Contract{
		Name:     "ObfuscatedProxy",
		Vars:     proxy.Vars,
		Funcs:    proxy.Funcs,
		Fallback: proxy.Fallback,
	}
	logic := &solc.Contract{
		Name: "ObfuscatedLogic",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},
			{Name: "initializing", Type: solc.TypeBool},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "initialize"},
				Body: []solc.Stmt{solc.InlineAsm{Emit: obfuscatedInitialize}}},
			{ABI: abi.Function{Name: "owner"},
				Body: []solc.Stmt{solc.InlineAsm{Emit: func(p *asm.Program, _ func(string) string) {
					pushComputedSlotZero(p)
					p.Op(evm.SLOAD).
						Push(u256.One().Shl(160).Sub(u256.One())).Op(evm.AND).
						PushUint(0).Op(evm.MSTORE).
						PushUint(32).PushUint(0).Op(evm.RETURN)
				}}}},
		},
	}
	return proxy, logic
}

// pushComputedSlotZero pushes slot 0 as a runtime sum, which symbolic
// constant-tracking cannot fold.
func pushComputedSlotZero(p *asm.Program) {
	p.Op(evm.CALLDATASIZE).Op(evm.CALLDATASIZE).Op(evm.SUB) // always 0, not a constant to the slicer
}

// obfuscatedInitialize reimplements the Audius initialize() with computed
// slots: require(initializing || !initialized); set guard; owner = caller.
func obfuscatedInitialize(p *asm.Program, fresh func(string) string) {
	ok := fresh("obf_ok")
	// initializing = byte 1 of slot 0.
	pushComputedSlotZero(p)
	p.Op(evm.SLOAD).PushUint(8).Op(evm.SHR).PushUint(0xff).Op(evm.AND)
	p.PushLabel(ok).Op(evm.JUMPI)
	// !initialized = byte 0 of slot 0 is zero.
	pushComputedSlotZero(p)
	p.Op(evm.SLOAD).PushUint(0xff).Op(evm.AND).Op(evm.ISZERO)
	p.PushLabel(ok).Op(evm.JUMPI)
	p.PushUint(0).PushUint(0).Op(evm.REVERT)
	p.Label(ok)
	// slot0 = (slot0 & ~0xffff) | 0x0001  (initialized=1, initializing=0)
	pushComputedSlotZero(p)
	p.Op(evm.SLOAD).
		Push(u256.FromUint64(0xffff).Not()).Op(evm.AND).
		PushUint(1).Op(evm.OR)
	pushComputedSlotZero(p)
	p.Op(evm.SSTORE)
	// slot0 = (slot0 & ~addrMask) | caller
	addrMask := u256.One().Shl(160).Sub(u256.One())
	pushComputedSlotZero(p)
	p.Op(evm.SLOAD).
		Push(addrMask.Not()).Op(evm.AND).
		Op(evm.CALLER).Op(evm.OR)
	pushComputedSlotZero(p)
	p.Op(evm.SSTORE).
		Op(evm.STOP)
}

// libraryPair is a contract that delegatecalls a shared math library with
// constructed call data. The library touches scratch storage with a layout
// unlike the caller's, so trace-driven tools that misread the delegatecall
// as a proxy relationship report a spurious storage collision.
func libraryPair(n int) (*solc.Contract, *solc.Contract) {
	user := &solc.Contract{
		Name: fmt.Sprintf("LibraryUser%d", n),
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress}, // slot 0: address
			{Name: "result", Type: solc.TypeUint256},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "result"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "result"}}},
			{ABI: abi.Function{Name: "ownerOf"},
				Body: []solc.Stmt{solc.RequireCallerIs{Var: "owner"}, solc.ReturnStorageVar{Var: "owner"}}},
		},
		// Library call in the fallback path: contains DELEGATECALL, but
		// forwards nothing.
		Fallback: solc.Fallback{Kind: solc.FallbackLibraryCall, Proto: "sqrt(uint256)"},
	}
	lib := &solc.Contract{
		Name: fmt.Sprintf("MathLib%d", n),
		Vars: []solc.Var{
			{Name: "scratchLo", Type: solc.TypeUint128}, // slot 0: two halves
			{Name: "scratchHi", Type: solc.TypeUint128},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "sqrt", Params: []string{"uint256"}},
				Body: []solc.Stmt{
					solc.AssignArg{Var: "scratchLo", Arg: 0},
					solc.ReturnStorageVar{Var: "scratchLo"},
				}},
		},
	}
	return user, lib
}

// diamondProxy is an EIP-2535 multi-facet proxy; Proxion documents missing
// these (random call data cannot hit a registered facet selector).
func diamondProxy() *solc.Contract {
	return &solc.Contract{
		Name: "Diamond",
		Fallback: solc.Fallback{
			Kind: solc.FallbackDelegateDiamond,
			Slot: etypes.Keccak([]byte("diamond.standard.diamond.storage")),
		},
	}
}

// diamondFacet is a facet contract for diamonds.
func diamondFacet() *solc.Contract {
	return &solc.Contract{
		Name: "DiamondLoupeFacet",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "facets"},
				Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}}},
		},
	}
}

// hostileProxy genuinely forwards call data via delegatecall in its
// fallback (ground truth: proxy) but hits an INVALID opcode for call data
// that does not carry its magic tag — the emulation runtime errors behind
// Proxion's three function-collision false negatives in Table 2.
func hostileProxy() []byte {
	var p asm.Program
	// if calldataload(4) != MAGIC: INVALID
	p.PushUint(4).Op(evm.CALLDATALOAD).
		Push(u256.FromUint64(0xdeadbeef)).Op(evm.EQ).
		JumpI("fwd").
		Op(evm.INVALID).
		Label("fwd")
	// Forward the call data to the address in slot 1.
	p.Op(evm.CALLDATASIZE).PushUint(0).PushUint(0).Op(evm.CALLDATACOPY).
		PushUint(0).PushUint(0).
		Op(evm.CALLDATASIZE).PushUint(0).
		Push(implSlot1.Word()).Op(evm.SLOAD).
		Op(evm.GAS).Op(evm.DELEGATECALL).
		Op(evm.POP).
		Op(evm.RETURNDATASIZE).PushUint(0).Op(evm.RETURN)
	return p.MustAssemble()
}

// hostileProxySource is the declared source of the hostile proxy (it may be
// published even though emulation fails on it).
func hostileProxySource() *solc.Contract {
	return &solc.Contract{
		Name: "TaggedForwarder",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "proxyType"},
				Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(2)}}},
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot1},
	}
}

// brokenBytecode is undeployable-by-compiler junk that underflows the
// stack immediately — the ~1.2% emulation failures of Section 6.2.
func brokenBytecode(n int) []byte {
	return []byte{byte(evm.ADD), byte(evm.DELEGATECALL), byte(n)}
}

// suicideBytecode self-destructs on any call, sweeping to the caller.
func suicideBytecode() []byte {
	var p asm.Program
	p.Op(evm.CALLER).Op(evm.SELFDESTRUCT)
	return p.MustAssemble()
}
