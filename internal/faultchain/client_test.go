package faultchain_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/faultchain"
	"repro/internal/gen"
	"repro/internal/proxion"
)

// testChain builds a small chain with a handful of storage-bearing accounts
// for direct client exercises.
func testChain(accounts int) (*chain.Chain, []etypes.Address) {
	c := chain.New()
	addrs := make([]etypes.Address, accounts)
	for i := range addrs {
		var a etypes.Address
		a[19] = byte(i + 1)
		a[0] = 0xfc
		addrs[i] = a
		c.InstallContract(a, []byte{0x60, 0x00, 0x60, 0x00, byte(i)})
		var slot, val etypes.Hash
		slot[31] = byte(i)
		val[31] = byte(i + 100)
		c.SetStorageDirect(a, slot, val)
		c.AdvanceBlocks(3)
	}
	return c, addrs
}

// readEverything performs the full read mix against a client, checking the
// values against the fault-free chain.
func readEverything(t *testing.T, cl *faultchain.Client, base *chain.Chain, addrs []etypes.Address) {
	t.Helper()
	head := base.CurrentBlock()
	for i, a := range addrs {
		if got, want := cl.CodeHash(a), base.CodeHash(a); got != want {
			t.Errorf("CodeHash(%v) = %x, want %x", a, got, want)
		}
		var slot etypes.Hash
		slot[31] = byte(i)
		if got, want := cl.GetState(a, slot), base.GetState(a, slot); got != want {
			t.Errorf("GetState(%v) = %x, want %x", a, got, want)
		}
		if got, want := cl.GetStorageAt(a, slot, head), base.GetStorageAt(a, slot, head); got != want {
			t.Errorf("GetStorageAt(%v) = %x, want %x", a, got, want)
		}
	}
}

// TestClientConcurrentRetries hammers a fault-injecting client from many
// goroutines under -race: every read must come back correct despite ~30%
// of them failing twice, and the retry count must equal the deterministic
// sum of scheduled failing attempts regardless of interleaving.
func TestClientConcurrentRetries(t *testing.T) {
	base, addrs := testChain(8)
	sched := faultchain.NewSchedule(faultchain.ErrorBurst(), 11)
	cl, inj := faultchain.NewResilientReader(base, &sched, chaosOpts())

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			readEverything(t, cl, base, addrs)
		}()
	}
	wg.Wait()

	st := inj.Stats()
	if st.Total() == 0 {
		t.Fatalf("schedule injected nothing; test is vacuous")
	}
	m := cl.Metrics()
	// Keyed injection: each faulted read fails exactly Depth attempts
	// globally, and each failing attempt triggers exactly one retry.
	if m.Retries != st.Total() {
		t.Errorf("retries = %d, want the %d scheduled failing attempts", m.Retries, st.Total())
	}
	if m.Unresolved != 0 {
		t.Errorf("%d reads terminally failed below the retry budget", m.Unresolved)
	}
	if cl.BreakerOpen() {
		t.Errorf("breaker open after an all-recoverable run")
	}
}

// flakyBackend fails State reads terminally (non-healing) while its down
// flag is set, for direct breaker control.
type flakyBackend struct {
	*faultchain.NodeBackend
	down atomic.Bool
}

func (f *flakyBackend) State(ctx context.Context, addr etypes.Address, key etypes.Hash) (etypes.Hash, error) {
	if f.down.Load() {
		return etypes.Hash{}, faultchain.ErrTransient
	}
	return f.NodeBackend.State(ctx, addr, key)
}

// TestBreakerOpensAndRecovers drives the breaker through its full cycle:
// consecutive terminal failures open it, an open breaker fails fast without
// touching the node, and once the node heals a half-open probe closes it
// again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	base, addrs := testChain(2)
	fb := &flakyBackend{NodeBackend: faultchain.NewNodeBackend(base)}
	fb.down.Store(true)
	opts := chaosOpts()
	opts.MaxRetries = 1
	opts.BreakerThreshold = 4
	opts.BreakerProbe = 3
	cl := faultchain.NewClient(fb, opts)

	read := func() (failed bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*chain.ReadError); !ok {
					panic(r)
				}
				failed = true
			}
		}()
		cl.GetState(addrs[0], etypes.Hash{})
		return false
	}

	for i := 0; i < opts.BreakerThreshold; i++ {
		if !read() {
			t.Fatalf("read %d succeeded against a down node", i)
		}
	}
	if !cl.BreakerOpen() {
		t.Fatalf("breaker still closed after %d consecutive terminal failures", opts.BreakerThreshold)
	}
	for i := 0; i < 2*opts.BreakerProbe; i++ {
		read()
	}
	if ff := cl.Metrics().FailFast; ff == 0 {
		t.Fatalf("open breaker never failed fast")
	}
	if trips := cl.Metrics().BreakerTrips; trips != 1 {
		t.Fatalf("breaker tripped %d times, want exactly 1", trips)
	}

	// Node heals: within one probe window a read must get through, succeed,
	// and close the breaker for everyone.
	fb.down.Store(false)
	for i := 0; i < opts.BreakerProbe; i++ {
		read()
	}
	if cl.BreakerOpen() {
		t.Fatalf("breaker still open after a successful half-open probe")
	}
	if read() {
		t.Fatalf("read failed after the breaker closed on a healed node")
	}
}

// TestBreakerConcurrent exercises open/probe/close transitions from many
// goroutines under -race; the invariant is purely "no race, no panic other
// than ReadError, breaker closed at the end".
func TestBreakerConcurrent(t *testing.T) {
	base, addrs := testChain(4)
	fb := &flakyBackend{NodeBackend: faultchain.NewNodeBackend(base)}
	fb.down.Store(true)
	opts := chaosOpts()
	opts.MaxRetries = 0
	opts.BreakerThreshold = 4
	opts.BreakerProbe = 2
	cl := faultchain.NewClient(fb, opts)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if i == 25 && g == 0 {
					fb.down.Store(false)
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(*chain.ReadError); !ok {
								panic(r)
							}
						}
					}()
					cl.GetState(addrs[i%len(addrs)], etypes.Hash{})
				}()
			}
		}(g)
	}
	wg.Wait()
	if cl.GetState(addrs[0], etypes.Hash{}) != base.GetState(addrs[0], etypes.Hash{}) {
		t.Fatalf("client returns wrong state after recovery")
	}
	if cl.BreakerOpen() {
		t.Fatalf("breaker open after the node healed and a read succeeded")
	}
}

// TestCancelDuringBackoff pins prompt unwinding: a read stuck in retry
// backoff must observe context cancellation within the backoff tick, not
// sleep out its full schedule.
func TestCancelDuringBackoff(t *testing.T) {
	base, addrs := testChain(1)
	ctx, cancel := context.WithCancel(context.Background())
	sched := faultchain.NewSchedule(faultchain.Outage(), 1)
	opts := faultchain.Options{
		BackoffBase: 30 * time.Second, // would stall the test if cancel is ignored
		BackoffMax:  30 * time.Second,
		Context:     ctx,
	}
	cl, _ := faultchain.NewResilientReader(base, &sched, opts)

	done := make(chan error, 1)
	go func() {
		defer func() {
			r := recover()
			re, ok := r.(*chain.ReadError)
			if !ok {
				done <- fmt.Errorf("expected a ReadError panic, got %v", r)
				return
			}
			if !errors.Is(re, context.Canceled) {
				done <- fmt.Errorf("terminal error %v, want context.Canceled", re)
				return
			}
			done <- nil
		}()
		cl.GetState(addrs[0], etypes.Hash{})
	}()

	time.Sleep(20 * time.Millisecond) // let the read reach its first backoff
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("read did not unwind from backoff after cancellation")
	}
}

// TestPipelineCancelMidStream mirrors the pipeline's stats_edge cancel
// test at the chain boundary: cancelling the client context mid-analysis
// must let the whole streaming engine drain promptly, with every contract
// accounted for — resolved or Unresolved — and no escaping panic.
func TestPipelineCancelMidStream(t *testing.T) {
	c := gen.Generate(gen.Config{Seed: 11})
	ctx, cancel := context.WithCancel(context.Background())
	sched := faultchain.NewSchedule(faultchain.Mixed(), 4)
	opts := faultchain.Options{
		BackoffBase: 20 * time.Millisecond, // long enough that cancel lands mid-backoff
		BackoffMax:  80 * time.Millisecond,
		Context:     ctx,
	}
	cl, _ := faultchain.NewResilientReader(c.Chain, &sched, opts)
	det := proxion.NewDetector(cl)

	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	resCh := make(chan *proxion.Result, 1)
	go func() { resCh <- det.AnalyzeAll(c.Registry) }()
	var res *proxion.Result
	select {
	case res = <-resCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("analysis did not drain after mid-stream cancellation")
	}
	if len(res.Reports) != len(c.Labels) {
		t.Fatalf("cancelled run dropped contracts: %d reports for %d labels", len(res.Reports), len(c.Labels))
	}
	for _, rep := range res.Reports {
		if rep.Address.IsZero() {
			t.Fatalf("cancelled run left an empty report slot")
		}
	}
}

// TestAPICallAccounting is the regression test for retry-safe read
// accounting: the engine measures getStorageAt usage as a before/after
// delta of APICalls (engine.go), which historically assumed exactly-once
// reads. Through the resilient client the count must stay logical — one
// per read, not per attempt — monotonic, and equal to the fault-free
// count, even while the underlying node observes every retried attempt.
func TestAPICallAccounting(t *testing.T) {
	c := gen.Generate(gen.Config{Seed: 2})
	baseline := proxion.NewDetector(c.Chain).AnalyzeAllWithOptions(c.Registry,
		proxion.AnalyzeOptions{WithHistory: true})
	nodeCallsFaultFree := c.Chain.APICalls()

	c2 := gen.Generate(gen.Config{Seed: 2})
	sched := faultchain.NewSchedule(faultchain.ErrorBurst(), 8)
	cl, inj := faultchain.NewResilientReader(c2.Chain, &sched, chaosOpts())
	res := proxion.NewDetector(cl).AnalyzeAllWithOptions(c2.Registry,
		proxion.AnalyzeOptions{WithHistory: true})

	if got, want := res.Stats.StorageAPICalls, baseline.Stats.StorageAPICalls; got != want {
		t.Errorf("faulted run reports %d logical getStorageAt calls, fault-free run %d", got, want)
	}
	if got, want := cl.APICalls(), nodeCallsFaultFree; got != want {
		t.Errorf("client logical count %d, fault-free chain count %d", got, want)
	}
	// The node underneath must have served strictly more physical reads
	// than the logical count whenever storage reads were retried — the
	// exactly-once assumption is really gone from the accounting path.
	storageRetried := false
	st := inj.Stats()
	if st.Total() > 0 && c2.Chain.APICalls() > cl.APICalls() {
		storageRetried = true
	}
	if !storageRetried {
		t.Logf("note: no storage read was retried under this schedule (injected=%d)", st.Total())
	}

	// Monotonicity: a second analysis over the same client only grows the
	// logical counter.
	before := cl.APICalls()
	proxion.NewDetector(cl).AnalyzeAllWithOptions(c2.Registry, proxion.AnalyzeOptions{WithHistory: true})
	if after := cl.APICalls(); after < before {
		t.Errorf("APICalls moved backwards: %d then %d", before, after)
	}
}
