package faultchain

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/u256"
)

// The injectable failure modes, each mirroring a concrete archive-node
// pathology (see DESIGN.md "Fault model").
var (
	// ErrTransient models a 5xx / connection-reset answer: the node hiccuped
	// but an immediate retry can succeed.
	ErrTransient = errors.New("faultchain: transient node error")
	// ErrTimeout models a read whose latency exceeded the per-call deadline.
	// It wraps context.DeadlineExceeded so callers classify it like a real
	// expired deadline.
	ErrTimeout = fmt.Errorf("faultchain: simulated read latency above deadline: %w", context.DeadlineExceeded)
	// ErrRateLimited models a 429 burst from a quota-limited RPC provider.
	ErrRateLimited = errors.New("faultchain: rate limited by node")
	// ErrBehindHead models a stale read served by a lagging replica: the
	// requested block is beyond the replica's head, so the (immutable)
	// history it would answer from does not contain it yet. Retrying
	// re-routes to a caught-up replica.
	ErrBehindHead = errors.New("faultchain: replica is behind requested block")
)

// FaultKind enumerates the injectable failure modes.
type FaultKind uint8

// Fault kinds, in the order profiles allocate probability mass.
const (
	FaultNone FaultKind = iota
	FaultStale
	FaultTransient
	FaultTimeout
	FaultRateLimit
)

func (k FaultKind) err() error {
	switch k {
	case FaultTransient:
		return ErrTransient
	case FaultTimeout:
		return ErrTimeout
	case FaultRateLimit:
		return ErrRateLimited
	case FaultStale:
		return ErrBehindHead
	default:
		return nil
	}
}

// Profile is the statistical shape of a fault schedule. Rates are
// per-logical-read probabilities in [0,1]; a faulted read fails its first
// Depth attempts with the chosen error and then succeeds, so Depth relative
// to the client's retry budget decides whether the profile degrades results
// or merely slows them down.
type Profile struct {
	// Name labels the profile in test tables and CLI flags.
	Name string
	// TransientRate is the fraction of reads that fail with ErrTransient.
	TransientRate float64
	// TimeoutRate is the fraction of reads that fail with ErrTimeout.
	TimeoutRate float64
	// RateLimitRate is the fraction of reads that fail with ErrRateLimited.
	RateLimitRate float64
	// StaleRate is the fraction of *eligible* storage-history reads — those
	// within StaleLag blocks of the head, the only reads a lagging replica
	// can be wrong about — that fail with ErrBehindHead.
	StaleRate float64
	// StaleLag is how many blocks behind head the modeled replica runs.
	StaleLag uint64
	// Depth is how many consecutive attempts of a faulted read fail before
	// the read succeeds. DepthForever never heals.
	Depth int
	// Stall, when nonzero, makes every faulted attempt block for that long
	// (or until the context expires) before returning its error, modeling
	// latency instead of instant failure.
	Stall time.Duration
}

// DepthForever marks a fault that never heals, whatever the retry budget.
const DepthForever = int(^uint(0) >> 1)

// The predefined chaos profiles. Depth 2 keeps them below the default
// client retry budget (MaxRetries 4 ⇒ 5 attempts), so analysis results are
// provably identical to a fault-free run; raise Depth past the budget to
// exercise the Unresolved degradation path instead.

// ErrorBurst returns a profile of frequent transient 5xx failures.
func ErrorBurst() Profile {
	return Profile{Name: "error-burst", TransientRate: 0.30, Depth: 2}
}

// SlowNode returns a profile of reads exceeding the per-call deadline.
func SlowNode() Profile {
	return Profile{Name: "slow-node", TimeoutRate: 0.25, Depth: 2}
}

// RateLimitStorm returns a profile of 429 bursts from a quota-limited
// provider; Depth 3 models a burst outlasting a couple of backoffs.
func RateLimitStorm() Profile {
	return Profile{Name: "rate-limit", RateLimitRate: 0.40, Depth: 3}
}

// StaleReplica returns a profile where half the near-head history reads hit
// a replica lagging 64 blocks behind.
func StaleReplica() Profile {
	return Profile{Name: "stale-replica", StaleRate: 0.50, StaleLag: 64, Depth: 2}
}

// Mixed returns a profile combining every failure mode at lower rates.
func Mixed() Profile {
	return Profile{
		Name:          "mixed",
		TransientRate: 0.10,
		TimeoutRate:   0.08,
		RateLimitRate: 0.10,
		StaleRate:     0.25,
		StaleLag:      32,
		Depth:         2,
	}
}

// Outage returns a profile where every read fails forever — the node is
// down. Only the circuit breaker keeps a run over it bounded.
func Outage() Profile {
	return Profile{Name: "outage", TransientRate: 1.0, Depth: DepthForever}
}

// Profiles returns the named chaos profiles, the chaos matrix rows.
func Profiles() []Profile {
	return []Profile{ErrorBurst(), SlowNode(), RateLimitStorm(), StaleReplica(), Mixed()}
}

// ProfileByName resolves a CLI-friendly profile name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range append(Profiles(), Outage()) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// NoLimit disables Schedule.Limit.
const NoLimit = -1

// Schedule is a fully deterministic fault plan: a profile, a seed, and an
// optional cap on how many distinct reads may fault. Fault decisions are
// keyed by the logical read (operation, address, slot, block) and hashed
// with the seed, so a given read faults — or not — identically on every
// run and under any goroutine interleaving.
type Schedule struct {
	Profile Profile
	Seed    int64
	// Limit caps the number of distinct faulted reads, counted in
	// first-touch order; NoLimit means unbounded. The shrinker binary-
	// searches this field to isolate a failure's minimal fault prefix, so
	// it is only meaningful for sequential (deterministically ordered)
	// replays.
	Limit int
}

// NewSchedule builds an unbounded schedule for a profile and seed.
func NewSchedule(p Profile, seed int64) Schedule {
	return Schedule{Profile: p, Seed: seed, Limit: NoLimit}
}

// WithLimit returns a copy of the schedule capped at n faulted reads.
func (s Schedule) WithLimit(n int) Schedule {
	s.Limit = n
	return s
}

// faultKey identifies one logical read for fault-decision purposes.
type faultKey struct {
	op    string
	addr  etypes.Address
	slot  etypes.Hash
	block uint64
}

// hash mixes the key into a 64-bit value with FNV-1a, then scrambles with a
// splitmix64 finalizer so adjacent keys decorrelate.
func (k faultKey) hash(seed int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ uint64(seed)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for i := 0; i < len(k.op); i++ {
		mix(k.op[i])
	}
	for _, b := range k.addr {
		mix(b)
	}
	for _, b := range k.slot {
		mix(b)
	}
	for i := 0; i < 8; i++ {
		mix(byte(k.block >> (8 * i)))
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// faultPlan tracks how many failing attempts a faulted read has served.
type faultPlan struct {
	kind     FaultKind
	depth    int
	attempts int
	// vetoed records a plan suppressed by Schedule.Limit.
	vetoed bool
}

// InjectorStats counts injected faults by kind.
type InjectorStats struct {
	Transient   int64
	Timeouts    int64
	RateLimited int64
	Stale       int64
	// ActivatedReads is the number of distinct logical reads that faulted.
	ActivatedReads int64
}

// Total returns the total number of injected failing attempts.
func (s InjectorStats) Total() int64 {
	return s.Transient + s.Timeouts + s.RateLimited + s.Stale
}

// Injector wraps a Backend and injects schedule-driven faults into the
// per-account reads. It is safe for concurrent use, and — because decisions
// are keyed, not sequenced — deterministic under any interleaving: a
// logical read fails exactly its first Depth attempts, globally, no matter
// which goroutines issue them.
type Injector struct {
	backend Backend
	sched   Schedule

	headOnce sync.Once
	head     uint64

	mu        sync.Mutex
	plans     map[faultKey]*faultPlan
	activated int

	transient   atomic.Int64
	timeouts    atomic.Int64
	rateLimited atomic.Int64
	stale       atomic.Int64
}

// NewInjector wraps a backend with a fault schedule.
func NewInjector(b Backend, sched Schedule) *Injector {
	return &Injector{backend: b, sched: sched, plans: make(map[faultKey]*faultPlan)}
}

// Stats returns the faults injected so far.
func (i *Injector) Stats() InjectorStats {
	i.mu.Lock()
	activated := int64(i.activated)
	i.mu.Unlock()
	return InjectorStats{
		Transient:      i.transient.Load(),
		Timeouts:       i.timeouts.Load(),
		RateLimited:    i.rateLimited.Load(),
		Stale:          i.stale.Load(),
		ActivatedReads: activated,
	}
}

// decide maps a key onto the profile's fault kinds by carving [0,1) into
// rate-sized bands. Pure function of (seed, key): no state, no lock.
func (i *Injector) decide(k faultKey, staleEligible bool) FaultKind {
	p := i.sched.Profile
	u := float64(k.hash(i.sched.Seed)>>11) / float64(1<<53)
	// The stale band comes first so its mass is stable for eligible reads;
	// ineligible reads let the band fall through to "no fault" rather than
	// re-rolling, keeping every other read's decision independent of
	// eligibility.
	bands := []struct {
		rate float64
		kind FaultKind
	}{
		{p.StaleRate, FaultStale},
		{p.TransientRate, FaultTransient},
		{p.TimeoutRate, FaultTimeout},
		{p.RateLimitRate, FaultRateLimit},
	}
	acc := 0.0
	for _, b := range bands {
		acc += b.rate
		if u < acc {
			if b.kind == FaultStale && !staleEligible {
				return FaultNone
			}
			return b.kind
		}
	}
	return FaultNone
}

// gate runs the fault decision for one attempt of one logical read,
// returning the injected error or nil for pass-through.
func (i *Injector) gate(ctx context.Context, k faultKey, staleEligible bool) error {
	kind := i.decide(k, staleEligible)
	if kind == FaultNone {
		return nil
	}

	i.mu.Lock()
	plan, ok := i.plans[k]
	if !ok {
		plan = &faultPlan{kind: kind, depth: i.sched.Profile.Depth}
		if i.sched.Limit != NoLimit && i.activated >= i.sched.Limit {
			plan.vetoed = true
		} else {
			i.activated++
		}
		i.plans[k] = plan
	}
	fail := !plan.vetoed && plan.attempts < plan.depth
	if fail {
		plan.attempts++
	}
	i.mu.Unlock()

	if !fail {
		return nil
	}
	switch kind {
	case FaultTransient:
		i.transient.Add(1)
	case FaultTimeout:
		i.timeouts.Add(1)
	case FaultRateLimit:
		i.rateLimited.Add(1)
	case FaultStale:
		i.stale.Add(1)
	}
	if s := i.sched.Profile.Stall; s > 0 {
		t := time.NewTimer(s)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return kind.err()
}

// NonBlocking implements NonBlocker: the injector adds no blocking of its
// own unless the profile stalls faulted attempts, and otherwise inherits
// the wrapped backend's guarantee.
func (i *Injector) NonBlocking() bool {
	if i.sched.Profile.Stall > 0 {
		return false
	}
	nb, ok := i.backend.(NonBlocker)
	return ok && nb.NonBlocking()
}

// headBlock lazily captures the head height for stale-eligibility checks;
// chains do not advance during an analysis run.
func (i *Injector) headBlock() uint64 {
	i.headOnce.Do(func() {
		h, err := i.backend.CurrentBlock(context.Background())
		if err == nil {
			i.head = h
		}
	})
	return i.head
}

// Chain-level metadata passes through unfaulted (see Backend).

// Config implements Backend.
func (i *Injector) Config(ctx context.Context) (chain.Config, error) { return i.backend.Config(ctx) }

// CurrentBlock implements Backend.
func (i *Injector) CurrentBlock(ctx context.Context) (uint64, error) {
	return i.backend.CurrentBlock(ctx)
}

// LatestHeader implements Backend.
func (i *Injector) LatestHeader(ctx context.Context) (chain.BlockHeader, error) {
	return i.backend.LatestHeader(ctx)
}

// HeaderByNumber implements Backend.
func (i *Injector) HeaderByNumber(ctx context.Context, n uint64) (chain.BlockHeader, error) {
	return i.backend.HeaderByNumber(ctx, n)
}

// Contracts implements Backend.
func (i *Injector) Contracts(ctx context.Context) ([]etypes.Address, error) {
	return i.backend.Contracts(ctx)
}

// Code implements Backend.
func (i *Injector) Code(ctx context.Context, addr etypes.Address) ([]byte, error) {
	if err := i.gate(ctx, faultKey{op: "code", addr: addr}, false); err != nil {
		return nil, err
	}
	return i.backend.Code(ctx, addr)
}

// CodeHash implements Backend.
func (i *Injector) CodeHash(ctx context.Context, addr etypes.Address) (etypes.Hash, error) {
	if err := i.gate(ctx, faultKey{op: "code-hash", addr: addr}, false); err != nil {
		return etypes.Hash{}, err
	}
	return i.backend.CodeHash(ctx, addr)
}

// CreatedAt implements Backend.
func (i *Injector) CreatedAt(ctx context.Context, addr etypes.Address) (uint64, error) {
	if err := i.gate(ctx, faultKey{op: "created-at", addr: addr}, false); err != nil {
		return 0, err
	}
	return i.backend.CreatedAt(ctx, addr)
}

// Exists implements Backend.
func (i *Injector) Exists(ctx context.Context, addr etypes.Address) (bool, error) {
	if err := i.gate(ctx, faultKey{op: "exists", addr: addr}, false); err != nil {
		return false, err
	}
	return i.backend.Exists(ctx, addr)
}

// State implements Backend.
func (i *Injector) State(ctx context.Context, addr etypes.Address, key etypes.Hash) (etypes.Hash, error) {
	if err := i.gate(ctx, faultKey{op: "state", addr: addr, slot: key}, false); err != nil {
		return etypes.Hash{}, err
	}
	return i.backend.State(ctx, addr, key)
}

// Balance implements Backend.
func (i *Injector) Balance(ctx context.Context, addr etypes.Address) (u256.Int, error) {
	if err := i.gate(ctx, faultKey{op: "balance", addr: addr}, false); err != nil {
		return u256.Int{}, err
	}
	return i.backend.Balance(ctx, addr)
}

// Nonce implements Backend.
func (i *Injector) Nonce(ctx context.Context, addr etypes.Address) (uint64, error) {
	if err := i.gate(ctx, faultKey{op: "nonce", addr: addr}, false); err != nil {
		return 0, err
	}
	return i.backend.Nonce(ctx, addr)
}

// TxSelectors implements Backend.
func (i *Injector) TxSelectors(ctx context.Context, addr etypes.Address) ([][4]byte, error) {
	if err := i.gate(ctx, faultKey{op: "tx-selectors", addr: addr}, false); err != nil {
		return nil, err
	}
	return i.backend.TxSelectors(ctx, addr)
}

// StorageAt implements Backend. History reads within StaleLag of the head
// are additionally eligible for the stale-replica fault: a replica lagging
// k blocks answers any block ≤ head−k identically (history is immutable),
// so only near-head reads can observe its staleness.
func (i *Injector) StorageAt(ctx context.Context, addr etypes.Address, slot etypes.Hash, block uint64) (etypes.Hash, error) {
	staleEligible := false
	if lag := i.sched.Profile.StaleLag; lag > 0 {
		if head := i.headBlock(); block+lag > head {
			staleEligible = true
		}
	}
	if err := i.gate(ctx, faultKey{op: "storage-at", addr: addr, slot: slot, block: block}, staleEligible); err != nil {
		return etypes.Hash{}, err
	}
	return i.backend.StorageAt(ctx, addr, slot, block)
}

var _ Backend = (*Injector)(nil)
