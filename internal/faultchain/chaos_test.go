package faultchain_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultchain"
	"repro/internal/gen"
	"repro/internal/gen/oracle"
	"repro/internal/proxion"
)

// chaosOpts returns client options tuned for test speed: full default retry
// budget, microsecond-scale backoff so hundreds of injected faults do not
// stretch the suite.
func chaosOpts() faultchain.Options {
	return faultchain.Options{
		BackoffBase: 50 * time.Microsecond,
		BackoffMax:  500 * time.Microsecond,
	}
}

// chaosSeeds returns the corpus seeds for the matrix: a pinned set on every
// run, trimmed under -short, extended by CHAOS_SWEEP=<n> for the nightly
// sweep (seeds disjoint from the pinned ones, mirroring ORACLE_SWEEP).
func chaosSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 2, 7, 42, 31337}
	if testing.Short() {
		seeds = seeds[:2]
	}
	if env := os.Getenv("CHAOS_SWEEP"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("bad CHAOS_SWEEP=%q: %v", env, err)
		}
		for i := 0; i < n; i++ {
			seeds = append(seeds, int64(2_000_000+i))
		}
	}
	return seeds
}

// TestChaosMatrix is the headline chaos suite: every fault profile × every
// seed, all profiles below the retry budget, requiring byte-identical
// reports/pairs/histories against the fault-free run — with proof that the
// schedule actually injected faults and the client actually retried, and
// that the breaker never tripped (below the budget there are no terminal
// failures for it to count). The history stage is on so Algorithm 1's
// getStorageAt binary search sits in the blast radius (the stale-replica
// profile only bites near-head history reads).
func TestChaosMatrix(t *testing.T) {
	seeds := chaosSeeds(t)
	for _, p := range faultchain.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				c := gen.Generate(gen.Config{Seed: seed})
				sched := faultchain.NewSchedule(p, seed*31+7)
				fr := oracle.CheckFaultParity(c, sched, chaosOpts(),
					proxion.AnalyzeOptions{WithHistory: true})
				if len(fr.Mismatches) > 0 {
					t.Errorf("profile %s: %s", p.Name, oracle.Format(c, fr.Mismatches))
				}
				if fr.Injected.Total() == 0 {
					t.Errorf("profile %s seed %d: schedule injected no faults — vacuous run", p.Name, seed)
				}
				if fr.Metrics.Retries == 0 {
					t.Errorf("profile %s seed %d: faults fired but the client never retried", p.Name, seed)
				}
				if fr.Metrics.BreakerTrips != 0 {
					t.Errorf("profile %s seed %d: breaker tripped %d times below the retry budget",
						p.Name, seed, fr.Metrics.BreakerTrips)
				}
			}
		})
	}
}

// TestChaosAboveBudget drives fault depth past the retry budget: every
// contract must come back either identical to the fault-free baseline or
// explicitly Unresolved with the error attached, with nonzero retry and
// unresolved counters surfaced through Summarize. The breaker is disabled
// (huge threshold) so the Unresolved set is exactly the deterministically
// scheduled fault keys — run twice to pin that determinism.
func TestChaosAboveBudget(t *testing.T) {
	p := ErrBurstDeep()
	opts := chaosOpts()
	opts.BreakerThreshold = 1 << 30
	var prevUnresolved int64 = -1
	for run := 0; run < 2; run++ {
		c := gen.Generate(gen.Config{Seed: 7})
		fr := oracle.CheckFaultDegradation(c, faultchain.NewSchedule(p, 99), opts,
			proxion.AnalyzeOptions{WithHistory: true})
		if len(fr.Mismatches) > 0 {
			t.Fatalf("%s", oracle.Format(c, fr.Mismatches))
		}
		sum := proxion.Summarize(fr.Result)
		if sum.Unresolved == 0 {
			t.Fatalf("deep faults above the retry budget produced no unresolved contracts")
		}
		if sum.Pipeline.Retries == 0 {
			t.Fatalf("summary surfaces no retries for a faulted run")
		}
		if sum.Pipeline.Unresolved != int64(sum.Unresolved) {
			t.Fatalf("pipeline counter %d disagrees with summary unresolved %d",
				sum.Pipeline.Unresolved, sum.Unresolved)
		}
		if prevUnresolved >= 0 && prevUnresolved != int64(sum.Unresolved) {
			t.Fatalf("unresolved set is nondeterministic: %d then %d", prevUnresolved, sum.Unresolved)
		}
		prevUnresolved = int64(sum.Unresolved)
	}
}

// ErrBurstDeep is the error-burst profile with depth past the default
// budget (5 attempts): every faulted read terminally fails.
func ErrBurstDeep() faultchain.Profile {
	p := faultchain.ErrorBurst()
	p.Depth = 32
	return p
}

// TestChaosOutage runs the everything-fails-forever profile: the breaker
// must trip, fail-fast rejections must keep the run bounded, every contract
// must come back Unresolved, and nothing may crash or be dropped.
func TestChaosOutage(t *testing.T) {
	c := gen.Generate(gen.Config{Seed: 3})
	fr := oracle.CheckFaultDegradation(c, faultchain.NewSchedule(faultchain.Outage(), 5),
		chaosOpts(), proxion.AnalyzeOptions{})
	if len(fr.Mismatches) > 0 {
		t.Fatalf("%s", oracle.Format(c, fr.Mismatches))
	}
	res := fr.Result
	if len(res.Reports) != len(c.Labels) {
		t.Fatalf("outage run reported %d contracts for %d labels", len(res.Reports), len(c.Labels))
	}
	for _, rep := range res.Reports {
		if !rep.Unresolved {
			t.Fatalf("contract %v resolved during a total outage: %q", rep.Address, rep.Reason)
		}
		if rep.ResolveErr == nil {
			t.Fatalf("unresolved contract %v carries no error", rep.Address)
		}
	}
	if fr.Metrics.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped during a total outage")
	}
	if fr.Metrics.FailFast == 0 {
		t.Fatalf("open breaker never rejected a read fail-fast")
	}
	if res.Stats.BreakerTrips == 0 {
		t.Fatalf("pipeline snapshot does not surface the breaker trips")
	}
}
