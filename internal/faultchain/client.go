package faultchain

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/u256"
)

// ErrBreakerOpen is the fail-fast answer while the circuit breaker is open:
// the node has terminally failed enough consecutive reads that hammering it
// with more retries would only add load and latency.
var ErrBreakerOpen = errors.New("faultchain: circuit breaker open")

// Options tunes the resilient client. The zero value selects defaults
// suitable for both tests and the CLI.
type Options struct {
	// MaxRetries is how many times a failed read is re-attempted (total
	// attempts = MaxRetries+1). Default 4.
	MaxRetries int
	// Timeout is the per-attempt deadline; 0 disables per-call deadlines.
	// Default 2s.
	Timeout time.Duration
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts. Defaults 1ms and 16ms — small enough that chaos
	// tests stay fast, overridable for production-like pacing.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives backoff jitter. Jitter only affects timing, never
	// results, so it does not participate in determinism arguments.
	Seed int64
	// BreakerThreshold is how many *consecutive terminal* read failures —
	// reads whose whole retry budget was exhausted, not individual failed
	// attempts — open the breaker. Default 8. A schedule below the retry
	// budget produces zero terminal failures, so the breaker never trips
	// on it.
	BreakerThreshold int
	// BreakerProbe lets every n-th read through an open breaker as a
	// half-open probe; a probe success closes the breaker. Measured in
	// calls, not time, to keep chaos runs deterministic. Default 16.
	BreakerProbe int
	// MaxInFlight bounds concurrent backend reads. Default
	// 8×GOMAXPROCS, minimum 32.
	MaxInFlight int
	// Context, when set, cancels every read issued through the client;
	// cancellation during an attempt or a backoff sleep unwinds promptly
	// with a *chain.ReadError carrying the context error.
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Timeout < 0 {
		o.Timeout = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 16 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 8
	}
	if o.BreakerProbe <= 0 {
		o.BreakerProbe = 16
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 8 * runtime.GOMAXPROCS(0)
		if o.MaxInFlight < 32 {
			o.MaxInFlight = 32
		}
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

// Metrics is a snapshot of the client's resilience counters.
type Metrics struct {
	// Retries counts re-attempts after a failed read.
	Retries int64
	// Timeouts counts attempts that failed with an expired deadline.
	Timeouts int64
	// RateLimited counts attempts rejected with ErrRateLimited.
	RateLimited int64
	// BreakerTrips counts closed→open transitions of the circuit breaker.
	BreakerTrips int64
	// FailFast counts reads rejected without touching the node because the
	// breaker was open.
	FailFast int64
	// Unresolved counts reads that terminally failed (budget exhausted,
	// breaker rejection, or cancellation).
	Unresolved int64
}

// Client is the resilient chain.Reader over a fallible Backend: per-call
// timeouts, capped exponential backoff with seeded jitter, a circuit
// breaker on consecutive terminal failures, and bounded in-flight
// concurrency. A read that cannot be completed panics with a
// *chain.ReadError per the Reader error contract; the analysis engine
// recovers it into an Unresolved report.
//
// APICalls counts logical GetStorageAt reads — one per call, however many
// attempts it took — satisfying the Reader accounting contract, so
// efficiency numbers match a fault-free run byte for byte.
// inflightGate is a counting semaphore whose uncontended path is two
// atomic ops — the read-per-SLOAD hot path cannot afford channel sends.
// Callers fall back to the mutex/cond pair only when the bound is hit.
type inflightGate struct {
	slots   atomic.Int64
	waiters atomic.Int64
	mu      sync.Mutex
	cond    sync.Cond
}

func newInflightGate(n int) *inflightGate {
	g := &inflightGate{}
	g.slots.Store(int64(n))
	g.cond.L = &g.mu
	return g
}

func (g *inflightGate) tryAcquire() bool {
	for {
		n := g.slots.Load()
		if n <= 0 {
			return false
		}
		if g.slots.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (g *inflightGate) acquire() {
	if g.tryAcquire() {
		return
	}
	g.mu.Lock()
	g.waiters.Add(1)
	for !g.tryAcquire() {
		g.cond.Wait()
	}
	g.waiters.Add(-1)
	g.mu.Unlock()
}

// release frees a slot. Registration order makes the waiter check safe: a
// waiter increments waiters before re-testing the slot count, so a release
// that observes waiters==0 is sequenced before that increment — and its
// slot increment before the waiter's re-test, which therefore succeeds.
func (g *inflightGate) release() {
	g.slots.Add(1)
	if g.waiters.Load() > 0 {
		g.mu.Lock()
		g.cond.Signal()
		g.mu.Unlock()
	}
}

type Client struct {
	backend Backend
	opts    Options
	gate    *inflightGate
	// deadlines says per-attempt timeout contexts are in force; false when
	// Timeout is 0 or the backend guarantees non-blocking calls (see
	// NonBlocker) — a deadline on a call that cannot block is unobservable,
	// and building one per read dominates the fault-free hot path.
	deadlines bool

	rngMu sync.Mutex
	rng   *rand.Rand

	storageReads atomic.Int64

	retries      atomic.Int64
	timeouts     atomic.Int64
	rateLimited  atomic.Int64
	breakerTrips atomic.Int64
	failFast     atomic.Int64
	unresolved   atomic.Int64

	// Breaker state. The hot path reads only the open flag; the counters
	// move on success (one load, usually zero) and on the rare terminal
	// failure, so a healthy stack never contends on a lock here.
	breakerOpen   atomic.Bool
	consecutive   atomic.Int64
	callsWhenOpen atomic.Int64
}

// NewClient wraps a backend with the resilience layer.
func NewClient(b Backend, opts Options) *Client {
	o := opts.withDefaults()
	deadlines := o.Timeout > 0
	if nb, ok := b.(NonBlocker); ok && nb.NonBlocking() {
		deadlines = false
	}
	return &Client{
		backend:   b,
		opts:      o,
		gate:      newInflightGate(o.MaxInFlight),
		deadlines: deadlines,
		rng:       rand.New(rand.NewSource(o.Seed)),
	}
}

// NewResilientReader stacks the full tower over a plain reader: node
// backend, optional fault injector, resilient client. A nil schedule (or
// one with an empty profile) skips the injector.
func NewResilientReader(r chain.Reader, sched *Schedule, opts Options) (*Client, *Injector) {
	var backend Backend = NewNodeBackend(r)
	var inj *Injector
	if sched != nil {
		inj = NewInjector(backend, *sched)
		backend = inj
	}
	return NewClient(backend, opts), inj
}

// Metrics returns a snapshot of the resilience counters.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Retries:      c.retries.Load(),
		Timeouts:     c.timeouts.Load(),
		RateLimited:  c.rateLimited.Load(),
		BreakerTrips: c.breakerTrips.Load(),
		FailFast:     c.failFast.Load(),
		Unresolved:   c.unresolved.Load(),
	}
}

// ResilienceCounters exposes the counters the pipeline instrumentation
// folds into its snapshot; the engine discovers it structurally so
// internal/proxion needs no faultchain import.
func (c *Client) ResilienceCounters() (retries, breakerTrips int64) {
	return c.retries.Load(), c.breakerTrips.Load()
}

// BreakerOpen reports whether the circuit breaker is currently open.
func (c *Client) BreakerOpen() bool { return c.breakerOpen.Load() }

// retryable reports whether an attempt error is worth re-trying: injected
// transport faults and expired per-attempt deadlines are; a canceled root
// context is not.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, ErrRateLimited) ||
		errors.Is(err, ErrBehindHead) ||
		errors.Is(err, context.DeadlineExceeded)
}

// breakerAllow gates one read. While open, every BreakerProbe-th read goes
// through as a half-open probe.
func (c *Client) breakerAllow() bool {
	if !c.breakerOpen.Load() {
		return true
	}
	return c.callsWhenOpen.Add(1)%int64(c.opts.BreakerProbe) == 0
}

func (c *Client) breakerSuccess() {
	if c.consecutive.Load() != 0 {
		c.consecutive.Store(0)
	}
	if c.breakerOpen.Load() {
		c.breakerOpen.Store(false)
	}
}

func (c *Client) breakerFailure() {
	n := c.consecutive.Add(1)
	if n >= int64(c.opts.BreakerThreshold) && c.breakerOpen.CompareAndSwap(false, true) {
		c.breakerTrips.Add(1)
		c.callsWhenOpen.Store(0)
	}
}

// backoff sleeps the capped-exponential jittered delay before retry n
// (n ≥ 1), returning false if the root context was canceled meanwhile.
func (c *Client) backoff(n int) bool {
	d := c.opts.BackoffBase << uint(n-1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// Half fixed, half jittered — the standard decorrelation compromise.
	c.rngMu.Lock()
	jit := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	t := time.NewTimer(d/2 + jit)
	defer t.Stop()
	select {
	case <-c.opts.Context.Done():
		return false
	case <-t.C:
		return true
	}
}

// attempt runs one bounded, deadline-scoped backend call.
func (c *Client) attempt(fn func(ctx context.Context) error) error {
	c.gate.acquire()
	defer c.gate.release()
	ctx := c.opts.Context
	if c.deadlines {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
		defer cancel()
	}
	return fn(ctx)
}

// fail records a terminal read failure and panics the Reader error contract.
func (c *Client) fail(op string, addr etypes.Address, attempts int, err error) {
	c.unresolved.Add(1)
	panic(&chain.ReadError{Op: op, Addr: addr, Attempts: attempts, Err: err})
}

// do drives one logical read to completion: breaker gate, retry loop with
// backoff, error classification. Terminal failure panics *chain.ReadError.
func (c *Client) do(op string, addr etypes.Address, fn func(ctx context.Context) error) {
	if err := c.opts.Context.Err(); err != nil {
		c.fail(op, addr, 0, err)
	}
	if !c.breakerAllow() {
		c.failFast.Add(1)
		c.fail(op, addr, 0, ErrBreakerOpen)
	}

	var lastErr error
	attempts := 0
	for n := 0; n <= c.opts.MaxRetries; n++ {
		if n > 0 {
			c.retries.Add(1)
			if !c.backoff(n) {
				lastErr = c.opts.Context.Err()
				break
			}
		}
		attempts++
		err := c.attempt(fn)
		if err == nil {
			c.breakerSuccess()
			return
		}
		lastErr = err
		if errors.Is(err, context.DeadlineExceeded) {
			c.timeouts.Add(1)
		}
		if errors.Is(err, ErrRateLimited) {
			c.rateLimited.Add(1)
		}
		if !retryable(err) {
			break
		}
	}
	c.breakerFailure()
	c.fail(op, addr, attempts, lastErr)
}

// Client implements chain.Reader.

// Config implements chain.Reader.
func (c *Client) Config() chain.Config {
	var out chain.Config
	c.do("config", etypes.Address{}, func(ctx context.Context) error {
		var err error
		out, err = c.backend.Config(ctx)
		return err
	})
	return out
}

// CurrentBlock implements chain.Reader.
func (c *Client) CurrentBlock() uint64 {
	var out uint64
	c.do("current-block", etypes.Address{}, func(ctx context.Context) error {
		var err error
		out, err = c.backend.CurrentBlock(ctx)
		return err
	})
	return out
}

// LatestHeader implements chain.Reader.
func (c *Client) LatestHeader() chain.BlockHeader {
	var out chain.BlockHeader
	c.do("latest-header", etypes.Address{}, func(ctx context.Context) error {
		var err error
		out, err = c.backend.LatestHeader(ctx)
		return err
	})
	return out
}

// HeaderByNumber implements chain.Reader. The "no such block" outcome is a
// domain answer, not a transport failure: it is returned, never retried.
func (c *Client) HeaderByNumber(n uint64) (chain.BlockHeader, error) {
	var out chain.BlockHeader
	var domainErr error
	c.do("header-by-number", etypes.Address{}, func(ctx context.Context) error {
		h, err := c.backend.HeaderByNumber(ctx, n)
		if err != nil && !retryable(err) && !errors.Is(err, context.Canceled) {
			domainErr = err
			return nil
		}
		out = h
		return err
	})
	return out, domainErr
}

// Contracts implements chain.Reader.
func (c *Client) Contracts() []etypes.Address {
	var out []etypes.Address
	c.do("contracts", etypes.Address{}, func(ctx context.Context) error {
		var err error
		out, err = c.backend.Contracts(ctx)
		return err
	})
	return out
}

// Code implements chain.Reader.
func (c *Client) Code(addr etypes.Address) []byte {
	var out []byte
	c.do("code", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.Code(ctx, addr)
		return err
	})
	return out
}

// CodeHash implements chain.Reader.
func (c *Client) CodeHash(addr etypes.Address) etypes.Hash {
	var out etypes.Hash
	c.do("code-hash", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.CodeHash(ctx, addr)
		return err
	})
	return out
}

// CreatedAt implements chain.Reader.
func (c *Client) CreatedAt(addr etypes.Address) uint64 {
	var out uint64
	c.do("created-at", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.CreatedAt(ctx, addr)
		return err
	})
	return out
}

// Exists implements chain.Reader.
func (c *Client) Exists(addr etypes.Address) bool {
	var out bool
	c.do("exists", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.Exists(ctx, addr)
		return err
	})
	return out
}

// GetState implements chain.Reader.
func (c *Client) GetState(addr etypes.Address, key etypes.Hash) etypes.Hash {
	var out etypes.Hash
	c.do("state", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.State(ctx, addr, key)
		return err
	})
	return out
}

// GetBalance implements chain.Reader.
func (c *Client) GetBalance(addr etypes.Address) u256.Int {
	var out u256.Int
	c.do("balance", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.Balance(ctx, addr)
		return err
	})
	return out
}

// GetNonce implements chain.Reader.
func (c *Client) GetNonce(addr etypes.Address) uint64 {
	var out uint64
	c.do("nonce", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.Nonce(ctx, addr)
		return err
	})
	return out
}

// TxSelectors implements chain.Reader.
func (c *Client) TxSelectors(addr etypes.Address) [][4]byte {
	var out [][4]byte
	c.do("tx-selectors", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.TxSelectors(ctx, addr)
		return err
	})
	return out
}

// GetStorageAt implements chain.Reader. The logical read is counted once up
// front, whatever happens to its attempts, so APICalls stays comparable to
// a fault-free run (and monotonic under retries).
func (c *Client) GetStorageAt(addr etypes.Address, slot etypes.Hash, block uint64) etypes.Hash {
	c.storageReads.Add(1)
	var out etypes.Hash
	c.do("storage-at", addr, func(ctx context.Context) error {
		var err error
		out, err = c.backend.StorageAt(ctx, addr, slot, block)
		return err
	})
	return out
}

// APICalls implements chain.Reader: logical GetStorageAt reads, counted
// once per call regardless of retries.
func (c *Client) APICalls() int64 { return c.storageReads.Load() }

var _ chain.Reader = (*Client)(nil)
