package faultchain_test

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/faultchain"
)

// These tests pin the circuit breaker's half-open protocol — the part of
// the client's lifecycle the long-running service leans on hardest, since
// a proxiond shard lives through many node outages, not one:
//
//   - a FAILED half-open probe must leave the breaker open and the
//     fail-fast path active (one bad probe must not let traffic through),
//   - a SUCCESSFUL probe must re-close it for all callers, and
//   - the re-closed breaker must be fully re-armed: a second outage trips
//     it again, counted as a second trip.

// breakerClient builds a client over a controllable down/up backend with
// small, test-friendly breaker windows.
func breakerClient(accounts int) (*faultchain.Client, *flakyBackend, []etypes.Address, faultchain.Options) {
	base, addrs := testChain(accounts)
	fb := &flakyBackend{NodeBackend: faultchain.NewNodeBackend(base)}
	opts := chaosOpts()
	opts.MaxRetries = 1
	opts.BreakerThreshold = 3
	opts.BreakerProbe = 4
	return faultchain.NewClient(fb, opts), fb, addrs, opts
}

// tryRead performs one read, reporting whether it terminally failed.
func tryRead(cl *faultchain.Client, addr etypes.Address) (failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*chain.ReadError); !ok {
				panic(r)
			}
			failed = true
		}
	}()
	cl.GetState(addr, etypes.Hash{})
	return false
}

// tripBreaker drives the client to an open breaker against a down node.
func tripBreaker(t *testing.T, cl *faultchain.Client, addr etypes.Address, threshold int) {
	t.Helper()
	for i := 0; i < threshold; i++ {
		if !tryRead(cl, addr) {
			t.Fatalf("read %d succeeded against a down node", i)
		}
	}
	if !cl.BreakerOpen() {
		t.Fatalf("breaker still closed after %d consecutive terminal failures", threshold)
	}
}

// TestFailedProbeKeepsBreakerOpen: while the node stays down, the
// half-open probes that slip through the open breaker fail — and each
// failure must leave the breaker open, fail-fast still active, and the
// trip count at one (re-opening after a failed probe is not a new trip).
func TestFailedProbeKeepsBreakerOpen(t *testing.T) {
	cl, fb, addrs, opts := breakerClient(2)
	fb.down.Store(true)
	tripBreaker(t, cl, addrs[0], opts.BreakerThreshold)

	// Run through several whole probe windows: every read must fail
	// (probes against the still-down node fail, the rest fail fast).
	ffBefore := cl.Metrics().FailFast
	for i := 0; i < 3*opts.BreakerProbe; i++ {
		if !tryRead(cl, addrs[i%len(addrs)]) {
			t.Fatalf("read %d succeeded through an open breaker against a down node", i)
		}
		if !cl.BreakerOpen() {
			t.Fatalf("a failed half-open probe closed the breaker")
		}
	}
	m := cl.Metrics()
	if m.FailFast <= ffBefore {
		t.Fatalf("open breaker stopped failing fast after failed probes")
	}
	// 3 windows of BreakerProbe calls let exactly 3 probes through; the
	// rest fail fast without touching the node.
	if got, want := m.FailFast-ffBefore, int64(3*opts.BreakerProbe-3); got != want {
		t.Fatalf("fail-fast count %d, want %d (only probes may reach the node)", got, want)
	}
	if m.BreakerTrips != 1 {
		t.Fatalf("failed probes re-counted the trip: %d trips, want 1", m.BreakerTrips)
	}
}

// TestSuccessfulProbeReclosesForAllCallers: the node heals, one probe
// gets through, and from that moment every read — not just the prober's —
// flows normally again.
func TestSuccessfulProbeReclosesForAllCallers(t *testing.T) {
	cl, fb, addrs, opts := breakerClient(2)
	fb.down.Store(true)
	tripBreaker(t, cl, addrs[0], opts.BreakerThreshold)

	fb.down.Store(false)
	// Within one probe window, some read is the probe and closes it.
	closed := false
	for i := 0; i < opts.BreakerProbe; i++ {
		tryRead(cl, addrs[0])
		if !cl.BreakerOpen() {
			closed = true
			break
		}
	}
	if !closed {
		t.Fatalf("breaker still open a full probe window after the node healed")
	}
	// Post-close, reads succeed deterministically — no residual fail-fast.
	ff := cl.Metrics().FailFast
	for i := 0; i < 8; i++ {
		if tryRead(cl, addrs[i%len(addrs)]) {
			t.Fatalf("read %d failed after the breaker re-closed", i)
		}
	}
	if cl.Metrics().FailFast != ff {
		t.Fatalf("closed breaker still failing fast")
	}
}

// TestRecloseRearmsForSecondOutage: after a heal-and-re-close, the breaker
// is fully re-armed — a second outage must trip it again at the same
// threshold, and the trip counter must read two.
func TestRecloseRearmsForSecondOutage(t *testing.T) {
	cl, fb, addrs, opts := breakerClient(2)

	// First outage and recovery.
	fb.down.Store(true)
	tripBreaker(t, cl, addrs[0], opts.BreakerThreshold)
	fb.down.Store(false)
	for i := 0; i < opts.BreakerProbe && cl.BreakerOpen(); i++ {
		tryRead(cl, addrs[0])
	}
	if cl.BreakerOpen() {
		t.Fatalf("breaker did not re-close after the first outage healed")
	}
	if trips := cl.Metrics().BreakerTrips; trips != 1 {
		t.Fatalf("after first cycle: %d trips, want 1", trips)
	}

	// A healthy interval: successes must keep the consecutive-failure
	// counter at zero so the second outage needs the full threshold again.
	for i := 0; i < 5; i++ {
		if tryRead(cl, addrs[i%len(addrs)]) {
			t.Fatalf("healthy-interval read %d failed", i)
		}
	}

	// Second outage: one failure short of the threshold must NOT trip...
	fb.down.Store(true)
	for i := 0; i < opts.BreakerThreshold-1; i++ {
		tryRead(cl, addrs[0])
	}
	if cl.BreakerOpen() {
		t.Fatalf("breaker tripped below threshold on the second outage (stale failure count)")
	}
	// ...and the threshold-th failure must.
	tryRead(cl, addrs[0])
	if !cl.BreakerOpen() {
		t.Fatalf("breaker did not trip at threshold on the second outage")
	}
	if trips := cl.Metrics().BreakerTrips; trips != 2 {
		t.Fatalf("second outage counted %d trips, want 2", trips)
	}

	// And it recovers a second time, too.
	fb.down.Store(false)
	for i := 0; i < opts.BreakerProbe && cl.BreakerOpen(); i++ {
		tryRead(cl, addrs[0])
	}
	if cl.BreakerOpen() {
		t.Fatalf("breaker did not re-close after the second outage healed")
	}
}
