// Replica pool: a chain.Reader fanned out over several replicas of the
// same node, with hedged per-account reads and stale-replica head
// reconciliation.
//
// Every read in this file runs (or is re-run) under chain.CaptureReadError
// inside the hedging machinery, which re-panics the primary's *ReadError
// only after every replica has failed — the per-call contract holds, the
// lint just cannot see through the generic indirection.
// readerpanic:ignore-file
package faultchain

import (
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/u256"
)

// PoolOptions tunes the replica pool.
type PoolOptions struct {
	// HedgeAfter is how long a per-account read may run on the primary
	// replica before a hedge is launched against the next one. Zero
	// means 2ms.
	HedgeAfter time.Duration
}

// Pool is a chain.Reader backed by N replicas of the same logical node.
// Per-account reads are hedged: the primary (round-robin) replica gets
// HedgeAfter to answer before the same read is raced against the next
// replica, and the first success wins. Replicas serve identical committed
// history, so hedging can change latency but never results.
//
// Head reads are reconciled instead of hedged: CurrentBlock returns the
// maximum head over all replicas, folded into a monotonic watermark — a
// lagging replica that answers a later poll can therefore never roll a
// follower's cursor backwards.
type Pool struct {
	replicas []chain.Reader
	opts     PoolOptions

	rr           atomic.Uint64 // round-robin primary selector
	watermark    atomic.Uint64 // monotonic max head ever observed
	maxLag       atomic.Uint64 // widest head spread seen in one reconciliation
	hedges       atomic.Int64  // hedge reads actually launched
	storageReads atomic.Int64  // logical GetStorageAt calls (APICalls contract)
}

// PoolStats is a snapshot of the pool's own counters.
type PoolStats struct {
	// Replicas is the pool size.
	Replicas int
	// Hedges counts hedge reads actually launched (timeout or primary
	// failure), not logical reads.
	Hedges int64
	// MaxLag is the widest head spread (max head - min head) observed in
	// a single reconciliation.
	MaxLag uint64
	// StorageReads is the pool's logical GetStorageAt count.
	StorageReads int64
}

// NewPool builds a pool over the given replicas. At least one is required.
func NewPool(replicas []chain.Reader, opts PoolOptions) *Pool {
	if len(replicas) == 0 {
		panic("faultchain: NewPool needs at least one replica")
	}
	if opts.HedgeAfter <= 0 {
		opts.HedgeAfter = 2 * time.Millisecond
	}
	return &Pool{replicas: append([]chain.Reader(nil), replicas...), opts: opts}
}

var _ chain.Reader = (*Pool)(nil)

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Replicas:     len(p.replicas),
		Hedges:       p.hedges.Load(),
		MaxLag:       p.maxLag.Load(),
		StorageReads: p.storageReads.Load(),
	}
}

// hedgedResult carries one replica attempt's outcome.
type hedgedResult[T any] struct {
	v  T
	re *chain.ReadError
}

// hedged runs read against the round-robin primary, launches one hedge
// against the next replica after HedgeAfter (or immediately on primary
// failure), and returns the first success. If every attempted replica
// fails, the first failure is re-panicked per the Reader error contract.
func hedged[T any](p *Pool, read func(chain.Reader) T) T {
	i := int(p.rr.Add(1)-1) % len(p.replicas)
	if len(p.replicas) == 1 {
		return read(p.replicas[i])
	}
	ch := make(chan hedgedResult[T], 2)
	attempt := func(r chain.Reader) {
		go func() {
			var out hedgedResult[T]
			out.re = chain.CaptureReadError(func() { out.v = read(r) })
			ch <- out
		}()
	}
	attempt(p.replicas[i])
	timer := time.NewTimer(p.opts.HedgeAfter)
	defer timer.Stop()
	launched := false
	pending := 1
	var firstErr *chain.ReadError
	launchHedge := func() {
		launched = true
		pending++
		p.hedges.Add(1)
		attempt(p.replicas[(i+1)%len(p.replicas)])
	}
	for {
		select {
		case out := <-ch:
			pending--
			if out.re == nil {
				return out.v
			}
			if firstErr == nil {
				firstErr = out.re
			}
			if !launched {
				launchHedge()
			} else if pending == 0 {
				panic(firstErr)
			}
		case <-timer.C:
			if !launched {
				launchHedge()
			}
		}
	}
}

// Config identifies the network; replicas agree by construction.
func (p *Pool) Config() chain.Config { return p.replicas[0].Config() }

// CurrentBlock reconciles every replica's head into the monotonic
// watermark and returns it. A replica that cannot answer is skipped; if
// none can, the first failure propagates.
func (p *Pool) CurrentBlock() uint64 {
	var (
		maxHead, minHead uint64
		sawAny           bool
		firstErr         *chain.ReadError
	)
	for _, r := range p.replicas {
		var h uint64
		re := chain.CaptureReadError(func() { h = r.CurrentBlock() })
		if re != nil {
			if firstErr == nil {
				firstErr = re
			}
			continue
		}
		if !sawAny || h > maxHead {
			maxHead = h
		}
		if !sawAny || h < minHead {
			minHead = h
		}
		sawAny = true
	}
	if !sawAny {
		panic(firstErr)
	}
	if lag := maxHead - minHead; lag > p.maxLag.Load() {
		p.maxLag.Store(lag)
	}
	for {
		cur := p.watermark.Load()
		if maxHead <= cur {
			return cur
		}
		if p.watermark.CompareAndSwap(cur, maxHead) {
			return maxHead
		}
	}
}

// LatestHeader returns the header of the replica with the highest head.
func (p *Pool) LatestHeader() chain.BlockHeader {
	var (
		best     chain.BlockHeader
		sawAny   bool
		firstErr *chain.ReadError
	)
	for _, r := range p.replicas {
		var h chain.BlockHeader
		re := chain.CaptureReadError(func() { h = r.LatestHeader() })
		if re != nil {
			if firstErr == nil {
				firstErr = re
			}
			continue
		}
		if !sawAny || h.Number > best.Number {
			best = h
		}
		sawAny = true
	}
	if !sawAny {
		panic(firstErr)
	}
	return best
}

// headerResult pairs HeaderByNumber's domain outcome for hedging.
type headerResult struct {
	h   chain.BlockHeader
	err error
}

// HeaderByNumber hedges; the returned error is the domain "no such block"
// outcome of whichever replica answered first.
func (p *Pool) HeaderByNumber(n uint64) (chain.BlockHeader, error) {
	out := hedged(p, func(r chain.Reader) headerResult {
		h, err := r.HeaderByNumber(n)
		return headerResult{h, err}
	})
	return out.h, out.err
}

// Contracts enumerates via a hedged read.
func (p *Pool) Contracts() []etypes.Address {
	return hedged(p, func(r chain.Reader) []etypes.Address { return r.Contracts() })
}

// Code returns the runtime bytecode via a hedged read.
func (p *Pool) Code(addr etypes.Address) []byte {
	return hedged(p, func(r chain.Reader) []byte { return r.Code(addr) })
}

// CodeHash returns the bytecode hash via a hedged read.
func (p *Pool) CodeHash(addr etypes.Address) etypes.Hash {
	return hedged(p, func(r chain.Reader) etypes.Hash { return r.CodeHash(addr) })
}

// CreatedAt returns the deployment block via a hedged read.
func (p *Pool) CreatedAt(addr etypes.Address) uint64 {
	return hedged(p, func(r chain.Reader) uint64 { return r.CreatedAt(addr) })
}

// Exists reports account existence via a hedged read.
func (p *Pool) Exists(addr etypes.Address) bool {
	return hedged(p, func(r chain.Reader) bool { return r.Exists(addr) })
}

// GetState returns a latest slot value via a hedged read.
func (p *Pool) GetState(addr etypes.Address, key etypes.Hash) etypes.Hash {
	return hedged(p, func(r chain.Reader) etypes.Hash { return r.GetState(addr, key) })
}

// GetBalance returns the latest balance via a hedged read.
func (p *Pool) GetBalance(addr etypes.Address) u256.Int {
	return hedged(p, func(r chain.Reader) u256.Int { return r.GetBalance(addr) })
}

// GetNonce returns the latest nonce via a hedged read.
func (p *Pool) GetNonce(addr etypes.Address) uint64 {
	return hedged(p, func(r chain.Reader) uint64 { return r.GetNonce(addr) })
}

// TxSelectors returns observed selectors via a hedged read.
func (p *Pool) TxSelectors(addr etypes.Address) [][4]byte {
	return hedged(p, func(r chain.Reader) [][4]byte { return r.TxSelectors(addr) })
}

// GetStorageAt is the archive read; the pool counts the logical read once
// regardless of how many replicas raced it.
func (p *Pool) GetStorageAt(addr etypes.Address, slot etypes.Hash, block uint64) etypes.Hash {
	p.storageReads.Add(1)
	return hedged(p, func(r chain.Reader) etypes.Hash { return r.GetStorageAt(addr, slot, block) })
}

// APICalls reports the pool's own logical read count; replica counters
// would double-count hedges.
func (p *Pool) APICalls() int64 { return p.storageReads.Load() }

// cappedView serves the underlying chain as of the height head() returns:
// a behind-head replica. Contracts deployed after that height are absent
// from its enumeration, latest-state reads answer as of that height via
// the archive API, and reads the replica provably has not caught up to —
// archive reads past its head, per-account reads about contracts it has
// not seen deployed — fail with a ReadError instead of serving clamped
// state, the way a real node reports a missing state root. A hedged Pool
// therefore fails over to a fresher replica rather than trusting a stale
// answer.
type cappedView struct {
	// R is the up-to-date replica being capped.
	R    chain.Reader
	head func() uint64
}

// Config passes through.
func (s *cappedView) Config() chain.Config { return s.R.Config() }

// CurrentBlock reports the capped head.
func (s *cappedView) CurrentBlock() uint64 { return s.head() }

// LatestHeader reports the header at the capped head.
func (s *cappedView) LatestHeader() chain.BlockHeader {
	h, err := s.R.HeaderByNumber(s.head())
	if err != nil {
		return s.R.LatestHeader()
	}
	return h
}

// HeaderByNumber refuses heights this replica has not seen.
func (s *cappedView) HeaderByNumber(n uint64) (chain.BlockHeader, error) {
	if n > s.head() {
		return chain.BlockHeader{}, errStaleHeight
	}
	return s.R.HeaderByNumber(n)
}

// Contracts hides contracts deployed after the capped head.
func (s *cappedView) Contracts() []etypes.Address {
	head := s.head()
	all := s.R.Contracts()
	out := make([]etypes.Address, 0, len(all))
	for _, a := range all {
		if s.R.CreatedAt(a) <= head {
			out = append(out, a)
		}
	}
	return out
}

// visible reports whether addr exists as of the capped head. A contract
// the full chain knows but this replica has not seen deployed yet is a
// behind-head condition, not a nonexistent account — the read fails so a
// pool can fail over instead of caching an empty-code answer.
func (s *cappedView) visible(addr etypes.Address) bool {
	if !s.R.Exists(addr) {
		return false
	}
	if s.R.CreatedAt(addr) > s.head() {
		panic(&chain.ReadError{Op: "account", Addr: addr, Attempts: 1, Err: errStaleHeight})
	}
	return true
}

// Code hides bytecode of contracts this replica has not seen deployed.
func (s *cappedView) Code(addr etypes.Address) []byte {
	if !s.visible(addr) {
		return nil
	}
	return s.R.Code(addr)
}

// CodeHash mirrors Code's visibility.
func (s *cappedView) CodeHash(addr etypes.Address) etypes.Hash {
	if !s.visible(addr) {
		return etypes.Hash{}
	}
	return s.R.CodeHash(addr)
}

// CreatedAt passes through for visible contracts, zero otherwise.
func (s *cappedView) CreatedAt(addr etypes.Address) uint64 {
	if !s.visible(addr) {
		return 0
	}
	return s.R.CreatedAt(addr)
}

// Exists mirrors the capped view.
func (s *cappedView) Exists(addr etypes.Address) bool { return s.visible(addr) }

// GetState serves the slot as of the capped head.
func (s *cappedView) GetState(addr etypes.Address, key etypes.Hash) etypes.Hash {
	if !s.visible(addr) {
		return etypes.Hash{}
	}
	return s.R.GetStorageAt(addr, key, s.head())
}

// GetBalance passes through (balances carry no history here).
func (s *cappedView) GetBalance(addr etypes.Address) u256.Int { return s.R.GetBalance(addr) }

// GetNonce passes through.
func (s *cappedView) GetNonce(addr etypes.Address) uint64 { return s.R.GetNonce(addr) }

// TxSelectors passes through.
func (s *cappedView) TxSelectors(addr etypes.Address) [][4]byte { return s.R.TxSelectors(addr) }

// GetStorageAt refuses archive reads beyond the capped head: the replica
// has no state for that block yet, and a clamped answer would hand a
// follower a pre-upgrade value for a post-upgrade block.
func (s *cappedView) GetStorageAt(addr etypes.Address, slot etypes.Hash, block uint64) etypes.Hash {
	if head := s.head(); block > head {
		panic(&chain.ReadError{Op: "storage-at", Addr: addr, Attempts: 1, Err: errStaleHeight})
	}
	return s.R.GetStorageAt(addr, slot, block)
}

// APICalls passes through to the underlying replica.
func (s *cappedView) APICalls() int64 { return s.R.APICalls() }

var errStaleHeight = &staleHeightError{}

type staleHeightError struct{}

func (*staleHeightError) Error() string { return "faultchain: height beyond stale replica head" }

// StaleReader simulates a replica running a fixed number of blocks behind
// the chain's head. Used to exercise stale-replica reconciliation: in a
// Pool next to a fresh replica its older head must never move the pool's
// monotonic watermark backwards.
type StaleReader struct{ cappedView }

var _ chain.Reader = (*StaleReader)(nil)

// NewStaleReader wraps r as a replica lagging the head by lag blocks.
func NewStaleReader(r chain.Reader, lag uint64) *StaleReader {
	s := &StaleReader{}
	s.R = r
	s.head = func() uint64 {
		h := r.CurrentBlock()
		if h <= lag {
			return 0
		}
		return h - lag
	}
	return s
}

// ReplayReader reveals a fully built chain block-by-block: its head is
// pinned to SetHead's value (clamped to the real head). The watch-parity
// harness follows a scripted upgrade timeline through one of these, so
// every analysis the follower runs sees exactly the state that existed
// when the followed block was the head.
type ReplayReader struct {
	cappedView
	h atomic.Uint64
}

var _ chain.Reader = (*ReplayReader)(nil)

// NewReplayReader wraps r with a settable head, initially 0.
func NewReplayReader(r chain.Reader) *ReplayReader {
	p := &ReplayReader{}
	p.R = r
	p.head = func() uint64 {
		full := r.CurrentBlock()
		if h := p.h.Load(); h < full {
			return h
		}
		return full
	}
	return p
}

// SetHead moves the revealed head (values beyond the real head clamp).
func (p *ReplayReader) SetHead(h uint64) { p.h.Store(h) }
