// Package faultchain makes the analyzer's node boundary fallible — and the
// analyzer resilient to it.
//
// The production Proxion deployment reads an Ethereum archive node over
// RPC: bytecode fetches for detection and millions of historical
// getStorageAt reads for Algorithm 1. Real nodes time out, rate-limit,
// return transient 5xx errors, and serve stale answers from lagging
// replicas. The in-memory chain.Chain can do none of those things, so this
// package supplies the missing failure surface in three layers:
//
//	chain.Reader  ──NewNodeBackend──▶  Backend (errorful, ctx-aware)
//	Backend       ──NewInjector─────▶  Backend (deterministic seeded faults)
//	Backend       ──NewClient───────▶  chain.Reader (retries, backoff,
//	                                   breaker, bounded in-flight reads)
//
// The Client closes the loop: the detector and the streaming engine keep
// speaking error-free chain.Reader, while every read underneath can fail
// and be retried. A read that exhausts the retry budget surfaces as a
// *chain.ReadError panic, which the engine converts into an Unresolved
// report (see the chain.Reader error contract).
package faultchain

import (
	"context"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/u256"
)

// Backend is the fallible, context-aware twin of chain.Reader: the shape of
// the node RPC surface before the resilience layer absorbs its failures.
// Method set and semantics mirror chain.Reader one-to-one; every call can
// observe cancellation and return a transport error.
//
// The chain-level enumeration calls (Config, CurrentBlock, LatestHeader,
// HeaderByNumber, Contracts) are cheap, cacheable metadata in a real
// deployment — headers are tiny and contract lists come from an offline
// index, not per-contract RPC — so the injector leaves them fault-free and
// only the per-account reads participate in fault schedules.
type Backend interface {
	Config(ctx context.Context) (chain.Config, error)
	CurrentBlock(ctx context.Context) (uint64, error)
	LatestHeader(ctx context.Context) (chain.BlockHeader, error)
	HeaderByNumber(ctx context.Context, n uint64) (chain.BlockHeader, error)
	Contracts(ctx context.Context) ([]etypes.Address, error)

	Code(ctx context.Context, addr etypes.Address) ([]byte, error)
	CodeHash(ctx context.Context, addr etypes.Address) (etypes.Hash, error)
	CreatedAt(ctx context.Context, addr etypes.Address) (uint64, error)
	Exists(ctx context.Context, addr etypes.Address) (bool, error)
	State(ctx context.Context, addr etypes.Address, key etypes.Hash) (etypes.Hash, error)
	Balance(ctx context.Context, addr etypes.Address) (u256.Int, error)
	Nonce(ctx context.Context, addr etypes.Address) (uint64, error)
	TxSelectors(ctx context.Context, addr etypes.Address) ([][4]byte, error)

	StorageAt(ctx context.Context, addr etypes.Address, slot etypes.Hash, block uint64) (etypes.Hash, error)
}

// NonBlocker is an optional Backend capability: a backend returning true
// guarantees its calls complete without ever blocking on I/O or sleeping
// (beyond checking ctx.Err() at entry). The client uses the guarantee to
// skip per-attempt deadline contexts — a deadline on a call that cannot
// block is unobservable, and context.WithTimeout is the dominant cost on
// the fault-free hot path. Backends that do not implement NonBlocker are
// conservatively assumed to block.
type NonBlocker interface {
	NonBlocking() bool
}

// NodeBackend adapts any chain.Reader into a Backend: the perfect node,
// which honors cancellation but never fails on its own. It is the base of
// every injector/client stack.
type NodeBackend struct {
	r chain.Reader
}

// NewNodeBackend wraps a reader as a fallible backend.
func NewNodeBackend(r chain.Reader) *NodeBackend { return &NodeBackend{r: r} }

// Reader returns the wrapped reader.
func (b *NodeBackend) Reader() chain.Reader { return b.r }

// NonBlocking implements NonBlocker: in-process reads never hang.
func (b *NodeBackend) NonBlocking() bool { return true }

// Config implements Backend.
func (b *NodeBackend) Config(ctx context.Context) (chain.Config, error) {
	if err := ctx.Err(); err != nil {
		return chain.Config{}, err
	}
	return b.r.Config(), nil
}

// CurrentBlock implements Backend.
func (b *NodeBackend) CurrentBlock(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return b.r.CurrentBlock(), nil
}

// LatestHeader implements Backend.
func (b *NodeBackend) LatestHeader(ctx context.Context) (chain.BlockHeader, error) {
	if err := ctx.Err(); err != nil {
		return chain.BlockHeader{}, err
	}
	return b.r.LatestHeader(), nil
}

// HeaderByNumber implements Backend.
func (b *NodeBackend) HeaderByNumber(ctx context.Context, n uint64) (chain.BlockHeader, error) {
	if err := ctx.Err(); err != nil {
		return chain.BlockHeader{}, err
	}
	return b.r.HeaderByNumber(n)
}

// Contracts implements Backend.
func (b *NodeBackend) Contracts(ctx context.Context) ([]etypes.Address, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.r.Contracts(), nil
}

// Code implements Backend.
func (b *NodeBackend) Code(ctx context.Context, addr etypes.Address) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.r.Code(addr), nil
}

// CodeHash implements Backend.
func (b *NodeBackend) CodeHash(ctx context.Context, addr etypes.Address) (etypes.Hash, error) {
	if err := ctx.Err(); err != nil {
		return etypes.Hash{}, err
	}
	return b.r.CodeHash(addr), nil
}

// CreatedAt implements Backend.
func (b *NodeBackend) CreatedAt(ctx context.Context, addr etypes.Address) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return b.r.CreatedAt(addr), nil
}

// Exists implements Backend.
func (b *NodeBackend) Exists(ctx context.Context, addr etypes.Address) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return b.r.Exists(addr), nil
}

// State implements Backend.
func (b *NodeBackend) State(ctx context.Context, addr etypes.Address, key etypes.Hash) (etypes.Hash, error) {
	if err := ctx.Err(); err != nil {
		return etypes.Hash{}, err
	}
	return b.r.GetState(addr, key), nil
}

// Balance implements Backend.
func (b *NodeBackend) Balance(ctx context.Context, addr etypes.Address) (u256.Int, error) {
	if err := ctx.Err(); err != nil {
		return u256.Int{}, err
	}
	return b.r.GetBalance(addr), nil
}

// Nonce implements Backend.
func (b *NodeBackend) Nonce(ctx context.Context, addr etypes.Address) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return b.r.GetNonce(addr), nil
}

// TxSelectors implements Backend.
func (b *NodeBackend) TxSelectors(ctx context.Context, addr etypes.Address) ([][4]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.r.TxSelectors(addr), nil
}

// StorageAt implements Backend.
func (b *NodeBackend) StorageAt(ctx context.Context, addr etypes.Address, slot etypes.Hash, block uint64) (etypes.Hash, error) {
	if err := ctx.Err(); err != nil {
		return etypes.Hash{}, err
	}
	return b.r.GetStorageAt(addr, slot, block), nil
}

var _ Backend = (*NodeBackend)(nil)
