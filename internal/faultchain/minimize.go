package faultchain

// MinimizeSchedule shrinks a failing fault schedule to the smallest
// injected-fault prefix that still reproduces the failure, mirroring
// gen.Minimize for corpora: fails(s) must deterministically rebuild the
// scenario under schedule s and report whether the failure reproduces.
//
// Shrinking binary-searches Schedule.Limit — the cap on distinct faulted
// reads, counted in first-touch order — so it is meaningful for sequential
// replays, where first-touch order is deterministic. The returned schedule
// has the minimal Limit (possibly 0, meaning the failure is fault-
// independent); ok is false when the original schedule doesn't fail at all.
func MinimizeSchedule(sched Schedule, fails func(Schedule) bool) (Schedule, bool) {
	if !fails(sched) {
		return sched, false
	}

	// Find a finite failing upper bound: the unlimited schedule fails, so
	// grow a cap until the failure reproduces under it. maxCap is far above
	// any fault count a test corpus can activate; if even that cap cannot
	// reproduce, return the original schedule unshrunk rather than loop.
	const maxCap = 1 << 21
	hi := 1
	for !fails(sched.WithLimit(hi)) {
		hi *= 2
		if hi > maxCap {
			return sched, true
		}
	}

	// Smallest failing limit in (lo, hi]: fails(hi) holds, fails(lo) fails.
	lo := 0
	if fails(sched.WithLimit(0)) {
		return sched.WithLimit(0), true
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if fails(sched.WithLimit(mid)) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return sched.WithLimit(hi), true
}
