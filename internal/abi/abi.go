// Package abi implements the subset of the Ethereum contract ABI that the
// analyzer and contract generator need: function prototypes, 4-byte
// selectors, and static-argument call-data encoding.
package abi

import (
	"fmt"
	"strings"

	"repro/internal/keccak"
	"repro/internal/u256"
)

// Function describes a contract function's external interface.
type Function struct {
	// Name is the function's identifier, e.g. "transfer".
	Name string
	// Params are the canonical parameter type names, e.g. ["address","uint256"].
	Params []string
}

// Prototype returns the canonical signature string, e.g.
// "transfer(address,uint256)".
func (f Function) Prototype() string {
	return f.Name + "(" + strings.Join(f.Params, ",") + ")"
}

// Selector returns the 4-byte function selector.
func (f Function) Selector() [4]byte {
	return keccak.Selector(f.Prototype())
}

// ParsePrototype parses "name(type1,type2)" into a Function.
func ParsePrototype(proto string) (Function, error) {
	open := strings.IndexByte(proto, '(')
	if open <= 0 || !strings.HasSuffix(proto, ")") {
		return Function{}, fmt.Errorf("abi: malformed prototype %q", proto)
	}
	name := proto[:open]
	inner := proto[open+1 : len(proto)-1]
	var params []string
	if inner != "" {
		params = strings.Split(inner, ",")
		for i, p := range params {
			params[i] = strings.TrimSpace(p)
			if params[i] == "" {
				return Function{}, fmt.Errorf("abi: empty parameter in %q", proto)
			}
		}
	}
	return Function{Name: name, Params: params}, nil
}

// SelectorOf is a convenience wrapper hashing a prototype string directly.
func SelectorOf(proto string) [4]byte { return keccak.Selector(proto) }

// EncodeCall builds call data: the 4-byte selector followed by each
// argument encoded as a 32-byte big-endian word. Only static types are
// supported, which covers everything the generated contracts accept.
func EncodeCall(selector [4]byte, args ...u256.Int) []byte {
	out := make([]byte, 4+32*len(args))
	copy(out, selector[:])
	for i, a := range args {
		w := a.Bytes32()
		copy(out[4+32*i:], w[:])
	}
	return out
}

// DecodeSelector splits call data into its selector and argument words.
// Short call data (under 4 bytes) yields ok == false.
func DecodeSelector(callData []byte) (sel [4]byte, ok bool) {
	if len(callData) < 4 {
		return sel, false
	}
	copy(sel[:], callData)
	return sel, true
}

// Word returns the i-th 32-byte argument word of call data (after the
// selector), zero-padded if out of range.
func Word(callData []byte, i int) u256.Int {
	off := 4 + 32*i
	if off >= len(callData) {
		return u256.Zero()
	}
	end := off + 32
	if end > len(callData) {
		end = len(callData)
	}
	buf := make([]byte, 32)
	copy(buf, callData[off:end])
	return u256.FromBytes(buf)
}
