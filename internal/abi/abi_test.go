package abi_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/u256"
)

func TestPrototypeAndSelector(t *testing.T) {
	f := abi.Function{Name: "transfer", Params: []string{"address", "uint256"}}
	if got := f.Prototype(); got != "transfer(address,uint256)" {
		t.Errorf("prototype = %q", got)
	}
	if got := f.Selector(); got != [4]byte{0xa9, 0x05, 0x9c, 0xbb} {
		t.Errorf("selector = %x", got)
	}
	empty := abi.Function{Name: "init"}
	if got := empty.Prototype(); got != "init()" {
		t.Errorf("no-arg prototype = %q", got)
	}
}

func TestParsePrototype(t *testing.T) {
	f, err := abi.ParsePrototype("transfer(address,uint256)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "transfer" || len(f.Params) != 2 || f.Params[1] != "uint256" {
		t.Errorf("parsed = %+v", f)
	}
	noArgs, err := abi.ParsePrototype("pause()")
	if err != nil {
		t.Fatal(err)
	}
	if noArgs.Name != "pause" || len(noArgs.Params) != 0 {
		t.Errorf("parsed = %+v", noArgs)
	}
	for _, bad := range []string{"", "foo", "foo(", "(uint256)", "foo(,)"} {
		if _, err := abi.ParsePrototype(bad); err == nil {
			t.Errorf("ParsePrototype(%q) should fail", bad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	protos := []string{
		"f()",
		"balanceOf(address)",
		"swap(uint256,uint256,address,bytes32)",
	}
	for _, proto := range protos {
		f, err := abi.ParsePrototype(proto)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if f.Prototype() != proto {
			t.Errorf("round trip %q -> %q", proto, f.Prototype())
		}
		if f.Selector() != abi.SelectorOf(proto) {
			t.Errorf("%s: selector mismatch", proto)
		}
	}
}

func TestEncodeDecodeCall(t *testing.T) {
	sel := abi.SelectorOf("setValue(uint256)")
	data := abi.EncodeCall(sel, u256.FromUint64(0xbeef))
	if len(data) != 36 {
		t.Fatalf("call data length = %d", len(data))
	}
	gotSel, ok := abi.DecodeSelector(data)
	if !ok || gotSel != sel {
		t.Errorf("decoded selector = %x", gotSel)
	}
	if got := abi.Word(data, 0); got.Uint64() != 0xbeef {
		t.Errorf("arg 0 = %s", got)
	}
	if got := abi.Word(data, 1); !got.IsZero() {
		t.Errorf("out-of-range arg = %s, want 0", got)
	}
	if _, ok := abi.DecodeSelector([]byte{1, 2}); ok {
		t.Error("short call data decoded")
	}
}

func TestWordPartial(t *testing.T) {
	// Call data cut mid-word must still decode with zero padding on the
	// right (EVM CALLDATALOAD semantics).
	sel := abi.SelectorOf("f(uint256)")
	full := abi.EncodeCall(sel, u256.MustHex("0xff00000000000000000000000000000000000000000000000000000000000000"))
	cut := full[:4+1] // selector + 1 byte of the arg
	if got := abi.Word(cut, 0); got.Bytes32()[0] != 0xff {
		t.Errorf("partial word = %s", got)
	}
}
