package watch

import (
	"testing"

	"repro/internal/etypes"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/proxion"
)

// TestSurgicalInvalidation proves invalidation granularity at landscape
// scale: on a 10k+ contract corpus with heavy bytecode duplication, one
// upgraded proxy must cost exactly one fresh emulation and one pair
// re-analysis — the upgraded proxy's own — while the byte-identical logic
// clone deployed alongside rides the verdict cache for free. Everything
// else stays served from the dedup tiers.
func TestSurgicalInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("landscape-scale corpus; skipped in -short")
	}
	c := gen.Generate(gen.Config{Seed: 21, Contracts: 5200})
	if len(c.Labels) < 10000 {
		t.Fatalf("corpus holds %d labels, need a 10k landscape", len(c.Labels))
	}

	var ps pipeline.Stats
	det := proxion.NewDetector(c.Chain)
	an := NewDetectorAnalyzer(det, c.Registry, nil)
	an.Options.WithHistory = false // scale test: counters, not timelines
	an.Options.Stats = &ps
	f, err := New(Config{Reader: c.Chain, Analyzer: an})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Poll(); err != nil {
		t.Fatalf("cold follow: %v", err)
	}
	if got, want := f.Stats().DeploymentsSeen, uint64(len(c.Labels)); got != want {
		t.Fatalf("cold follow saw %d deployments of %d", got, want)
	}

	// One upgrade: a byte-identical clone of an existing logic deployed in
	// a fresh block, and one upgradeable proxy re-pointed at it.
	var target *gen.Label
	for _, l := range c.Labels {
		if l.Detectable && l.TargetStorage {
			target = l
			break
		}
	}
	if target == nil {
		t.Fatalf("corpus has no upgradeable proxy")
	}
	clone := etypes.Address{0xfe, 0xed, 0xfa, 0xce}
	c.Chain.AdvanceBlocks(1)
	c.Chain.InstallContract(clone, c.Chain.Code(target.Logic))
	c.Chain.SetStorageDirect(target.Address, target.ImplSlot, etypes.HashFromWord(clone.Word()))

	before := f.Stats()
	em := ps.Emulations.Load()
	pairs := ps.PairsAnalyzed.Load()
	if err := f.Poll(); err != nil {
		t.Fatalf("poll after upgrade: %v", err)
	}
	after := f.Stats()

	if d := ps.Emulations.Load() - em; d != 1 {
		t.Fatalf("upgrade cost %d emulations, want exactly 1 (the upgraded proxy; the clone must ride the cache)", d)
	}
	if d := ps.PairsAnalyzed.Load() - pairs; d != 1 {
		t.Fatalf("upgrade cost %d pair analyses, want exactly 1", d)
	}
	if d := after.DeploymentsSeen - before.DeploymentsSeen; d != 1 {
		t.Fatalf("%d deployments routed, want 1 (the clone)", d)
	}
	if d := after.UpgradesDetected - before.UpgradesDetected; d != 1 {
		t.Fatalf("%d upgrades detected, want 1", d)
	}
	if d := after.Reanalyses - before.Reanalyses; d != 1 {
		t.Fatalf("%d re-analyses, want 1", d)
	}
	if after.Invalidations == before.Invalidations {
		t.Fatalf("upgrade dropped no cache entries")
	}
}
