package watch

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/faultchain"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/proxion"
	"repro/internal/store"
)

// harness bundles a follower over a replayed timeline.
type harness struct {
	tl     *gen.Timeline
	replay *faultchain.ReplayReader
	det    *proxion.Detector
	f      *Follower
	events []UpgradeEvent
}

func newHarness(t *testing.T, cfg gen.TimelineConfig, checkpoint string) *harness {
	t.Helper()
	h := &harness{tl: gen.GenerateTimeline(cfg)}
	h.replay = faultchain.NewReplayReader(h.tl.Chain)
	h.det = proxion.NewDetector(h.replay)
	f, err := New(Config{
		Reader:         h.replay,
		Analyzer:       NewDetectorAnalyzer(h.det, h.tl.Registry, nil),
		CheckpointPath: checkpoint,
		OnUpgrade:      func(ev UpgradeEvent) { h.events = append(h.events, ev) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.f = f
	return h
}

// scriptedUpgrades returns the ground-truth upgrade events of a timeline.
func scriptedUpgrades(tl *gen.Timeline) []gen.TimelineEvent {
	var out []gen.TimelineEvent
	for _, ev := range tl.Events {
		if !ev.Deploy {
			out = append(out, ev)
		}
	}
	return out
}

// TestReorgSafeCursor pins the cursor's monotonicity: a replica serving an
// older head (here: the replay rolled backwards) must be a no-op, never a
// rewind, and following must pick up where it left off once a fresh head
// appears.
func TestReorgSafeCursor(t *testing.T) {
	h := newHarness(t, gen.TimelineConfig{Seed: 5}, "")

	h.replay.SetHead(5)
	if err := h.f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if got := h.f.Cursor(); got != 5 {
		t.Fatalf("cursor %d after following to 5", got)
	}
	seen := len(h.events)
	blocks := h.f.Stats().BlocksFollowed

	// Stale head: nothing may move.
	h.replay.SetHead(3)
	if err := h.f.Poll(); err != nil {
		t.Fatalf("poll on stale head: %v", err)
	}
	if got := h.f.Cursor(); got != 5 {
		t.Fatalf("stale head rolled the cursor to %d", got)
	}
	if len(h.events) != seen || h.f.Stats().BlocksFollowed != blocks {
		t.Fatalf("stale head produced activity: %d events, %d blocks",
			len(h.events)-seen, h.f.Stats().BlocksFollowed-blocks)
	}

	h.replay.SetHead(h.tl.End())
	if err := h.f.Poll(); err != nil {
		t.Fatalf("poll to end: %v", err)
	}
	if got, want := h.f.Cursor(), h.tl.End(); got != want {
		t.Fatalf("cursor %d, want %d", got, want)
	}
	if got, want := len(h.events), len(scriptedUpgrades(h.tl)); got != want {
		t.Fatalf("%d upgrade events for %d scripted upgrades", got, want)
	}
}

// TestSameLogicUpgradeNoop rewrites a watched cell with the value it
// already holds: no invalidation, no re-analysis, no event.
func TestSameLogicUpgradeNoop(t *testing.T) {
	h := newHarness(t, gen.TimelineConfig{Seed: 9}, "")
	h.replay.SetHead(h.tl.End())
	if err := h.f.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	before := h.f.Stats()

	tp := h.tl.Proxies[0] // kind cycle starts with a slot proxy
	cur := h.tl.Chain.GetStorageAt(tp.WatchAddr, tp.WatchSlot, h.tl.End())
	h.tl.Chain.AdvanceBlocks(1)
	h.tl.Chain.SetStorageDirect(tp.WatchAddr, tp.WatchSlot, cur)
	h.replay.SetHead(h.tl.End())
	if err := h.f.Poll(); err != nil {
		t.Fatalf("poll after no-op rewrite: %v", err)
	}

	after := h.f.Stats()
	if after.BlocksFollowed != before.BlocksFollowed+1 {
		t.Fatalf("blocks followed %d -> %d, want +1", before.BlocksFollowed, after.BlocksFollowed)
	}
	if after.UpgradesDetected != before.UpgradesDetected ||
		after.Invalidations != before.Invalidations ||
		after.Reanalyses != before.Reanalyses {
		t.Fatalf("same-logic rewrite was treated as an upgrade: %+v -> %+v", before, after)
	}
}

// TestBeaconIndirectUpgrade pins the beacon path: upgrades rewrite only
// the beacon's storage — the proxy's own slots provably never change — yet
// every upgrade must be detected and the cached verdict refreshed. This is
// the case where explicit invalidation is load-bearing: a beacon proxy's
// guard fingerprint is identical before and after the upgrade, so without
// invalidation the stale cached logic would be served forever.
func TestBeaconIndirectUpgrade(t *testing.T) {
	h := newHarness(t, gen.TimelineConfig{Seed: 4}, "")
	for b := uint64(1); b <= h.tl.End(); b++ {
		h.replay.SetHead(b)
		if err := h.f.Poll(); err != nil {
			t.Fatalf("poll at %d: %v", b, err)
		}
	}

	var bp *gen.TimelineProxy
	for _, tp := range h.tl.Proxies {
		if tp.Kind == gen.TimelineBeacon {
			bp = tp
		}
	}
	if bp == nil {
		t.Fatalf("timeline has no beacon proxy")
	}

	// Ground truth: the proxy's own beacon slot is constant after deploy.
	deployed := bp.Steps[0].Block
	first := h.tl.Chain.GetStorageAt(bp.Address, bp.ImplSlot, deployed)
	for b := deployed; b <= h.tl.End(); b++ {
		if v := h.tl.Chain.GetStorageAt(bp.Address, bp.ImplSlot, b); v != first {
			t.Fatalf("beacon proxy's own storage changed at block %d — bad fixture", b)
		}
	}

	var got []UpgradeEvent
	for _, ev := range h.events {
		if ev.Proxy == bp.Address {
			got = append(got, ev)
		}
	}
	if want := len(bp.Steps) - 1; len(got) != want {
		t.Fatalf("%d events for %d scripted beacon upgrades", len(got), want)
	}
	for i, ev := range got {
		step := bp.Steps[i+1]
		if ev.Block != step.Block || ev.WatchAddr != bp.Beacon {
			t.Fatalf("event %d at block %d watching %v; scripted block %d on beacon %v",
				i, ev.Block, ev.WatchAddr.Hex(), step.Block, bp.Beacon.Hex())
		}
		if ev.Item == nil || ev.Item.Report.Logic != step.Logic {
			t.Fatalf("event %d re-analyzed to wrong logic", i)
		}
	}

	// The detector must now serve the final logic from cache — only the
	// follower's invalidation makes that true for a beacon proxy.
	finalLogic := bp.Steps[len(bp.Steps)-1].Logic
	if rep := h.det.Check(bp.Address); rep.Logic != finalLogic {
		t.Fatalf("cached verdict still points at %v, beacon says %v", rep.Logic.Hex(), finalLogic.Hex())
	}
}

// errKilled simulates a process death injected mid-upgrade.
type errKilled struct{}

// TestKillMidUpgradeRestart kills the follower after upgrade detection but
// before any invalidation, then restarts from the checkpoint with a fresh
// detector warm-imported from the verdict store. The reloaded follower
// must resume exactly at the checkpoint, re-detect the in-flight upgrade,
// and deliver it exactly once overall — no misses, no double-reports.
func TestKillMidUpgradeRestart(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "watch.cursor")
	storeDir := filepath.Join(dir, "verdicts")

	tl := gen.GenerateTimeline(gen.TimelineConfig{Seed: 6})
	upgrades := scriptedUpgrades(tl)
	killAt := upgrades[0].Block

	st, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	replay := faultchain.NewReplayReader(tl.Chain)
	detA := proxion.NewDetector(replay)
	var eventsA []UpgradeEvent
	fA, err := New(Config{
		Reader:         replay,
		Analyzer:       NewDetectorAnalyzer(detA, tl.Registry, st),
		CheckpointPath: ckpt,
		OnUpgrade:      func(ev UpgradeEvent) { eventsA = append(eventsA, ev) },
	})
	if err != nil {
		t.Fatalf("New A: %v", err)
	}
	for h := uint64(1); h < killAt; h++ {
		replay.SetHead(h)
		if err := fA.Poll(); err != nil {
			t.Fatalf("poll A at %d: %v", h, err)
		}
	}
	fA.beforeInvalidate = func(UpgradeEvent) { panic(errKilled{}) }
	replay.SetHead(killAt)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatalf("kill hook did not fire at block %d", killAt)
			} else if _, ok := r.(errKilled); !ok {
				panic(r)
			}
		}()
		_ = fA.Poll()
	}()
	if len(eventsA) != 0 {
		t.Fatalf("killed follower delivered %d event(s) for the in-flight upgrade", len(eventsA))
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// Restart: fresh detector, verdicts warm-imported from disk, cursor
	// from the checkpoint.
	st2, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	entries, err := st2.Entries()
	if err != nil {
		t.Fatalf("store entries: %v", err)
	}
	detB := proxion.NewDetector(replay)
	detB.ImportVerdicts(entries)
	var bootStats pipeline.Stats
	an := NewDetectorAnalyzer(detB, tl.Registry, st2)
	an.Options.Stats = &bootStats
	var eventsB []UpgradeEvent
	fB, err := New(Config{
		Reader:         replay,
		Analyzer:       an,
		CheckpointPath: ckpt,
		OnUpgrade:      func(ev UpgradeEvent) { eventsB = append(eventsB, ev) },
	})
	if err != nil {
		t.Fatalf("New B: %v", err)
	}
	if got, want := fB.Cursor(), killAt-1; got != want {
		t.Fatalf("reloaded cursor %d, checkpoint said %d", got, want)
	}
	if n := bootStats.Emulations.Load(); n != 0 {
		t.Fatalf("warm bootstrap re-emulated %d contract(s); store round-trip incomplete", n)
	}
	for h := killAt; h <= tl.End(); h++ {
		replay.SetHead(h)
		if err := fB.Poll(); err != nil {
			t.Fatalf("poll B at %d: %v", h, err)
		}
	}

	// Exactly-once across the kill: the interrupted upgrade arrives from
	// the restarted follower only, and every scripted upgrade exactly once.
	type key struct {
		b uint64
		p etypes.Address
	}
	counts := make(map[key]int)
	for _, ev := range append(eventsA, eventsB...) {
		counts[key{ev.Block, ev.Proxy}]++
	}
	if counts[key{upgrades[0].Block, upgrades[0].Proxy}] != 1 {
		t.Fatalf("in-flight upgrade delivered %d time(s)", counts[key{upgrades[0].Block, upgrades[0].Proxy}])
	}
	for _, ge := range upgrades {
		if counts[key{ge.Block, ge.Proxy}] != 1 {
			t.Fatalf("upgrade at block %d delivered %d time(s)", ge.Block, counts[key{ge.Block, ge.Proxy}])
		}
	}
	if len(eventsA)+len(eventsB) != len(upgrades) {
		t.Fatalf("%d events for %d scripted upgrades", len(eventsA)+len(eventsB), len(upgrades))
	}
}

// slowAnalyzer delays every analysis so Stop provably lands mid-poll.
type slowAnalyzer struct {
	inner Analyzer
	delay time.Duration
}

func (s *slowAnalyzer) Analyze(addrs []etypes.Address) ([]proxion.Item, error) {
	time.Sleep(s.delay)
	return s.inner.Analyze(addrs)
}

func (s *slowAnalyzer) Invalidate(addr etypes.Address) (int, error) {
	return s.inner.Invalidate(addr)
}

// TestStopDrainsCleanly runs the follower's polling loop, stops it while
// blocks are in flight, and requires a clean drain: Stop returns only
// after the current block completed, the checkpoint matches the cursor,
// every delivered event lies at or below it, and a successor follower
// finishes the timeline without missing or double-reporting an upgrade.
func TestStopDrainsCleanly(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "watch.cursor")
	tl := gen.GenerateTimeline(gen.TimelineConfig{Seed: 12})
	replay := faultchain.NewReplayReader(tl.Chain)
	replay.SetHead(tl.End())

	det := proxion.NewDetector(replay)
	var mu chan struct{} // buffered-1 as mutex for events (OnUpgrade runs in Run's goroutine)
	mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var events []UpgradeEvent
	f, err := New(Config{
		Reader:         replay,
		Analyzer:       &slowAnalyzer{inner: NewDetectorAnalyzer(det, tl.Registry, nil), delay: 2 * time.Millisecond},
		CheckpointPath: ckpt,
		PollInterval:   time.Millisecond,
		OnUpgrade: func(ev UpgradeEvent) {
			<-mu
			events = append(events, ev)
			mu <- struct{}{}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go f.Run()
	for f.Stats().Cursor < 2 {
		time.Sleep(time.Millisecond)
	}
	f.Stop() // must wait out the in-flight block

	cur := f.Stats().Cursor
	loaded, err := loadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if loaded != cur {
		t.Fatalf("checkpoint %d, cursor %d — drain left them torn", loaded, cur)
	}
	for _, ev := range events {
		if ev.Block > cur {
			t.Fatalf("event at block %d delivered beyond the drained cursor %d", ev.Block, cur)
		}
	}

	// A successor picks up from the checkpoint and completes the timeline.
	det2 := proxion.NewDetector(replay)
	f2, err := New(Config{
		Reader:         replay,
		Analyzer:       NewDetectorAnalyzer(det2, tl.Registry, nil),
		CheckpointPath: ckpt,
		OnUpgrade: func(ev UpgradeEvent) {
			events = append(events, ev)
		},
	})
	if err != nil {
		t.Fatalf("New successor: %v", err)
	}
	if f2.Cursor() != cur {
		t.Fatalf("successor resumed at %d, want %d", f2.Cursor(), cur)
	}
	if err := f2.Poll(); err != nil {
		t.Fatalf("successor poll: %v", err)
	}
	upgrades := scriptedUpgrades(tl)
	seen := make(map[uint64]map[etypes.Address]int)
	for _, ev := range events {
		if seen[ev.Block] == nil {
			seen[ev.Block] = make(map[etypes.Address]int)
		}
		seen[ev.Block][ev.Proxy]++
	}
	for _, ge := range upgrades {
		if seen[ge.Block][ge.Proxy] != 1 {
			t.Fatalf("upgrade at block %d seen %d time(s) across stop/restart", ge.Block, seen[ge.Block][ge.Proxy])
		}
	}
	if len(events) != len(upgrades) {
		t.Fatalf("%d events for %d scripted upgrades", len(events), len(upgrades))
	}
}

// TestFollowerThroughStalePool follows through a two-replica pool where
// one replica permanently lags a block behind. The pool's watermark and
// strict beyond-head reads must keep upgrade detection exact: every
// scripted upgrade at its exact block with the exact new value, every
// deployment seen exactly once, and the observed replica lag surfaced in
// the stats.
func TestFollowerThroughStalePool(t *testing.T) {
	tl := gen.GenerateTimeline(gen.TimelineConfig{Seed: 8})
	fresh := faultchain.NewReplayReader(tl.Chain)
	stale := faultchain.NewStaleReader(fresh, 1)
	pool := faultchain.NewPool([]chain.Reader{fresh, stale}, faultchain.PoolOptions{})

	det := proxion.NewDetector(pool)
	var events []UpgradeEvent
	f, err := New(Config{
		Reader:    pool,
		Analyzer:  NewDetectorAnalyzer(det, tl.Registry, nil),
		LagProbe:  func() uint64 { return pool.Stats().MaxLag },
		OnUpgrade: func(ev UpgradeEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for h := uint64(1); h <= tl.End(); h++ {
		fresh.SetHead(h)
		if err := f.Poll(); err != nil {
			t.Fatalf("poll at %d: %v", h, err)
		}
		if c := f.Cursor(); c != h {
			t.Fatalf("cursor %d at height %d", c, h)
		}
	}

	upgrades := scriptedUpgrades(tl)
	if len(events) != len(upgrades) {
		t.Fatalf("%d events for %d scripted upgrades", len(events), len(upgrades))
	}
	byKey := make(map[uint64]map[etypes.Address]UpgradeEvent)
	for _, ev := range events {
		if byKey[ev.Block] == nil {
			byKey[ev.Block] = make(map[etypes.Address]UpgradeEvent)
		}
		byKey[ev.Block][ev.Proxy] = ev
	}
	for _, ge := range upgrades {
		ev, ok := byKey[ge.Block][ge.Proxy]
		if !ok {
			t.Fatalf("upgrade at block %d for %v missed", ge.Block, ge.Proxy.Hex())
		}
		if want := etypes.HashFromWord(ge.Logic.Word()); ev.NewValue != want {
			t.Fatalf("upgrade at block %d read value %x through the pool, scripted %x",
				ge.Block, ev.NewValue, want)
		}
	}
	if got, want := f.Stats().DeploymentsSeen, uint64(len(tl.Chain.Contracts())); got != want {
		t.Fatalf("deployments seen %d, chain holds %d contracts", got, want)
	}
	if lag := f.Stats().ReplicaLag; lag != 1 {
		t.Fatalf("replica lag %d surfaced, pool lags by 1", lag)
	}
	if pool.Stats().Hedges == 0 {
		t.Fatalf("no hedges launched — the stale replica was never exercised")
	}
}
