package watch_test

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"repro/internal/gen"
	"repro/internal/gen/oracle"
	"repro/internal/watch"
)

// sweepSeeds returns the seed matrix: the pinned PR set by default,
// widened by WATCH_SWEEP extra random-ish seeds for the nightly run.
func sweepSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 7, 42}
	env := os.Getenv("WATCH_SWEEP")
	if env == "" {
		return seeds
	}
	n, err := strconv.Atoi(env)
	if err != nil || n < 0 {
		t.Fatalf("bad WATCH_SWEEP=%q: %v", env, err)
	}
	for i := 0; i < n; i++ {
		seeds = append(seeds, int64(1000+i*7919))
	}
	return seeds
}

// sweepEntry is one matrix cell of the watch report artifact.
type sweepEntry struct {
	Seed       int64               `json:"seed"`
	Chaos      bool                `json:"chaos"`
	Mismatches int                 `json:"mismatches"`
	Stats      watch.StatsSnapshot `json:"stats"`
}

// TestWatchSweep runs the follower timeline matrix: every seed replayed
// block-by-block through the watch-parity oracle, fault-free and under
// the below-budget Mixed chaos profile. When WATCH_REPORT names a file,
// the per-cell follower stats are written there as JSON — the artifact
// the CI watch job uploads.
func TestWatchSweep(t *testing.T) {
	var report []sweepEntry
	for _, seed := range sweepSeeds(t) {
		for _, chaos := range []bool{false, true} {
			run := oracle.WatchParity(gen.TimelineConfig{Seed: seed}, chaos)
			report = append(report, sweepEntry{
				Seed: seed, Chaos: chaos,
				Mismatches: len(run.Mismatches), Stats: run.Stats,
			})
			if len(run.Mismatches) > 0 {
				t.Errorf("seed %d chaos=%v: %d mismatch(es):", seed, chaos, len(run.Mismatches))
				for _, m := range run.Mismatches {
					t.Errorf("  %s", m)
				}
			}
		}
	}
	if path := os.Getenv("WATCH_REPORT"); path != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatalf("marshal watch report: %v", err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatalf("write watch report: %v", err)
		}
		t.Logf("watch report: %d matrix cells -> %s", len(report), path)
	}
}
