package watch

import (
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/static"
	"repro/internal/store"
)

// Analyzer is the analysis backend a Follower drives: it analyzes (and
// re-analyzes) contracts and drops cached verdicts ahead of a re-analysis.
// *DetectorAnalyzer implements it for standalone use; serve.Server
// implements it structurally so proxiond's follower feeds the same shards
// the HTTP API reads from.
type Analyzer interface {
	// Analyze runs the full analysis path over the addresses and records
	// the results in whatever caches and stores back the implementation.
	// One item per address, in input order.
	Analyze(addrs []etypes.Address) ([]proxion.Item, error)
	// Invalidate drops every cached verdict derived from addr's current
	// bytecode — the exact-hash entry and the structural family — and
	// returns how many tiers actually held one. The persistent store is
	// not touched here: the re-analysis that follows supersedes its entry
	// (append-only, last record wins), which is what keeps a crash
	// between invalidation and re-analysis recoverable.
	Invalidate(addr etypes.Address) (int, error)
}

// DetectorAnalyzer adapts a bare Detector (plus optional verdict store) to
// the Analyzer interface. Analyses run through the streaming engine so a
// follower's incremental results take exactly the code path batch analysis
// takes — the watch-parity oracle depends on that.
type DetectorAnalyzer struct {
	Detector *proxion.Detector
	Sources  proxion.SourceProvider
	// Store, when set, receives the exported verdict of every analyzed
	// bytecode; byte-identical re-puts are skipped inside the store.
	Store *store.Store
	// Options configures the analysis runs. WithHistory is forced on by
	// NewDetectorAnalyzer so upgrade re-analyses carry the full logic
	// timeline (Algorithm 1).
	Options proxion.AnalyzeOptions
}

// NewDetectorAnalyzer builds the standalone analyzer with history
// recovery enabled.
func NewDetectorAnalyzer(d *proxion.Detector, sources proxion.SourceProvider, st *store.Store) *DetectorAnalyzer {
	return &DetectorAnalyzer{
		Detector: d, Sources: sources, Store: st,
		Options: proxion.AnalyzeOptions{WithHistory: true},
	}
}

// Analyze streams the addresses through the engine and persists each
// verdict.
func (a *DetectorAnalyzer) Analyze(addrs []etypes.Address) ([]proxion.Item, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	items := make([]proxion.Item, 0, len(addrs))
	a.Detector.AnalyzeStream(proxion.SliceSource(addrs), a.Sources,
		proxion.SinkFunc(func(it proxion.Item) { items = append(items, it) }), a.Options)
	if a.Store != nil {
		for _, it := range items {
			a.persist(it.Report.Address)
		}
	}
	return items, nil
}

// persist mirrors the serve layer's store write: export the bytecode's
// verdict entry and append it (byte-identical re-puts are skipped).
func (a *DetectorAnalyzer) persist(addr etypes.Address) {
	var codeHash etypes.Hash
	if re := chain.CaptureReadError(func() { codeHash = a.Detector.Chain().CodeHash(addr) }); re != nil {
		return
	}
	if ent, ok := a.Detector.ExportVerdict(codeHash); ok {
		_ = a.Store.Put(ent)
	}
}

// Invalidate drops the exact-hash verdict and the structural family for
// addr's current bytecode.
func (a *DetectorAnalyzer) Invalidate(addr etypes.Address) (int, error) {
	n := 0
	re := chain.CaptureReadError(func() {
		r := a.Detector.Chain()
		if a.Detector.InvalidateVerdict(r.CodeHash(addr)) {
			n++
		}
		if code := r.Code(addr); len(code) > 0 {
			if a.Detector.InvalidateStructural(static.Fingerprint(code)) {
				n++
			}
		}
	})
	if re != nil {
		return n, re
	}
	return n, nil
}
