// Package watch turns the batch analysis path into a long-running chain
// follower: it tails new blocks from a chain.Reader, routes new
// deployments into the streaming analysis path, and detects upgrade
// events — a followed proxy's implementation cell changing value between
// blocks — invalidating exactly the affected verdicts and re-running the
// collision analysis against the new logic contract.
//
// Cursor model: the follower owns a single monotonic cursor, the last
// fully processed block. A block is processed as one unit (deployments
// analyzed, watched cells compared, upgrades handled) and the cursor is
// checkpointed after the unit completes, so a crash mid-block re-processes
// the whole block on restart. Re-processing is idempotent: analysis is
// deterministic, store writes skip byte-identical entries, and upgrade
// detection compares against the cell value as of the checkpointed cursor
// — the interrupted upgrade is re-detected and delivered exactly once per
// completed run. The head the cursor chases comes from the Reader; a
// faultchain.Pool reconciles replica heads into a monotonic watermark, so
// a stale replica can never roll the cursor backwards — and Poll itself
// refuses heads at or below the cursor.
//
// Invalidation granularity: an upgrade invalidates the proxy's exact
// bytecode-hash verdict and its structural family, nothing else. Slot
// proxies technically survive without invalidation (verdict transfer
// re-anchors by re-reading the implementation slot), but the cached
// verdict still pins the guard fingerprint taken at probe time; beacon
// proxies genuinely require it — their verdict bakes in a logic address
// read through the beacon while their own storage (and thus the guard
// fingerprint) never changes across upgrades.
package watch

import (
	"encoding/json"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/static"
)

// UpgradeEvent is one detected implementation change.
type UpgradeEvent struct {
	// Block is the height at which the watched cell changed.
	Block uint64
	// Proxy is the followed proxy whose delegate moved.
	Proxy etypes.Address
	// WatchAddr/Slot locate the cell that changed: the proxy's own
	// implementation slot, or its beacon's implementation cell.
	WatchAddr etypes.Address
	Slot      etypes.Hash
	// OldValue/NewValue are the cell values before and after.
	OldValue, NewValue etypes.Hash
	// Item is the post-upgrade re-analysis: the fresh verdict, the pair
	// analysis against the new logic, and (when the analyzer recovers
	// history) the full upgrade timeline per Algorithm 1.
	Item *proxion.Item
}

// Config wires a Follower.
type Config struct {
	// Reader is the node surface to follow — typically a faultchain.Pool
	// or a resilient client, but any chain.Reader works.
	Reader chain.Reader
	// Analyzer runs and records the analyses.
	Analyzer Analyzer
	// CheckpointPath, when set, persists the cursor atomically after
	// every processed block and is loaded by New for resumption.
	CheckpointPath string
	// PollInterval paces Run's polling loop (default 250ms).
	PollInterval time.Duration
	// OnDeploy, when set, receives every newly analyzed deployment.
	OnDeploy func(proxion.Item)
	// OnUpgrade, when set, receives every handled upgrade event after
	// invalidation and re-analysis completed.
	OnUpgrade func(UpgradeEvent)
	// OnError, when set, receives Poll errors from Run's loop (the poll
	// is retried at the next tick either way).
	OnError func(error)
	// LagProbe, when set, is sampled once per poll into the replica-lag
	// stat — wire it to a faultchain.Pool's MaxLag.
	LagProbe func() uint64
}

// watchEntry is one watched storage cell and the proxy it belongs to.
type watchEntry struct {
	proxy     etypes.Address
	watchAddr etypes.Address
	slot      etypes.Hash
	// last is the cell value as of the last processed block.
	last etypes.Hash
	dead bool
}

// Follower tails the chain. Poll and Stop are safe for concurrent use;
// Stats never blocks on an in-flight poll.
type Follower struct {
	cfg Config

	mu      sync.Mutex // serializes bootstrap and polls
	watched []*watchEntry
	known   map[etypes.Address]struct{}

	cursor atomic.Uint64
	stats  stats

	running  atomic.Bool
	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	// beforeInvalidate is the crash-injection hook for the
	// kill-mid-upgrade restart test: it runs after detection but before
	// any invalidation, so a panic here models a process death with no
	// half-applied invalidation state.
	beforeInvalidate func(UpgradeEvent)
}

// New builds a follower. If a checkpoint exists at CheckpointPath the
// cursor resumes from it and the watched set is rebuilt as of that height;
// otherwise following starts cold from block zero.
func New(cfg Config) (*Follower, error) {
	if cfg.Reader == nil || cfg.Analyzer == nil {
		return nil, errors.New("watch: Config needs Reader and Analyzer")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	f := &Follower{
		cfg:    cfg,
		known:  make(map[etypes.Address]struct{}),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	if cfg.CheckpointPath != "" {
		cur, err := loadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		f.cursor.Store(cur)
	}
	if f.cursor.Load() > 0 {
		if err := f.bootstrap(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Cursor returns the last fully processed block.
func (f *Follower) Cursor() uint64 { return f.cursor.Load() }

// Stats snapshots the follower's counters.
func (f *Follower) Stats() StatsSnapshot {
	return StatsSnapshot{
		Cursor:           f.cursor.Load(),
		BlocksFollowed:   f.stats.blocksFollowed.Load(),
		DeploymentsSeen:  f.stats.deploymentsSeen.Load(),
		UpgradesDetected: f.stats.upgradesDetected.Load(),
		Invalidations:    f.stats.invalidations.Load(),
		Reanalyses:       f.stats.reanalyses.Load(),
		ReplicaLag:       f.stats.replicaLag.Load(),
		Watched:          f.stats.watched.Load(),
	}
}

// Run polls until Stop. Poll errors are reported to OnError and retried
// at the next tick.
func (f *Follower) Run() {
	if !f.running.CompareAndSwap(false, true) {
		return
	}
	defer close(f.doneCh)
	t := time.NewTicker(f.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stopCh:
			return
		case <-t.C:
			if err := f.Poll(); err != nil && f.cfg.OnError != nil {
				f.cfg.OnError(err)
			}
		}
	}
}

// Stop halts the follower cleanly: the in-flight block (if any) finishes
// and is checkpointed, then Run's loop exits. Safe to call more than once
// and without Run.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	if f.running.Load() {
		<-f.doneCh
	}
}

// bootstrap rebuilds the watched set as of the checkpointed cursor: every
// contract deployed at or before it is (re-)analyzed — warm-started
// detectors re-emulate nothing — and watched cells capture their value at
// the cursor, so upgrades that landed after the checkpoint are detected by
// the next poll. No deploy/upgrade events are emitted for history the
// previous run already reported.
func (f *Follower) bootstrap() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cursor := f.cursor.Load()
	var addrs []etypes.Address
	re := chain.CaptureReadError(func() {
		for _, a := range f.cfg.Reader.Contracts() {
			if f.cfg.Reader.CreatedAt(a) <= cursor {
				addrs = append(addrs, a)
			}
		}
	})
	if re != nil {
		return re
	}
	items, err := f.cfg.Analyzer.Analyze(addrs)
	if err != nil {
		return err
	}
	for _, it := range items {
		f.known[it.Report.Address] = struct{}{}
		f.track(it.Report, cursor)
	}
	return nil
}

// Poll advances the cursor to the reader's current head, processing each
// block in order. A head at or below the cursor (a stale replica) is a
// no-op. Safe for concurrent use; polls serialize.
func (f *Follower) Poll() error {
	f.mu.Lock()
	defer f.mu.Unlock()

	if f.cfg.LagProbe != nil {
		f.stats.replicaLag.Store(f.cfg.LagProbe())
	}
	var head uint64
	if re := chain.CaptureReadError(func() { head = f.cfg.Reader.CurrentBlock() }); re != nil {
		return re
	}
	cur := f.cursor.Load()
	if head <= cur {
		return nil
	}

	// One enumeration per poll: group unseen deployments by block.
	deploys := make(map[uint64][]etypes.Address)
	re := chain.CaptureReadError(func() {
		for _, a := range f.cfg.Reader.Contracts() {
			if _, ok := f.known[a]; ok {
				continue
			}
			at := f.cfg.Reader.CreatedAt(a)
			switch {
			case at > cur && at <= head:
				deploys[at] = append(deploys[at], a)
			case at <= cur:
				// A stale replica hid this deployment from the enumeration
				// when its block was processed. Route it into the next block
				// so it is analyzed now rather than silently dropped; the
				// known set keeps this exactly-once.
				deploys[cur+1] = append(deploys[cur+1], a)
			}
		}
	})
	if re != nil {
		return re
	}

	for b := cur + 1; b <= head; b++ {
		select {
		case <-f.stopCh:
			return nil
		default:
		}
		if err := f.processBlock(b, deploys[b]); err != nil {
			return err
		}
		f.cursor.Store(b)
		f.stats.blocksFollowed.Add(1)
		if err := f.checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// processBlock handles one block as a unit: new deployments first (so
// their watched cells anchor at this block), then the upgrade scan over
// every watched cell.
func (f *Follower) processBlock(b uint64, deployed []etypes.Address) error {
	if len(deployed) > 0 {
		items, err := f.cfg.Analyzer.Analyze(deployed)
		if err != nil {
			return err
		}
		f.stats.deploymentsSeen.Add(uint64(len(items)))
		for _, it := range items {
			f.known[it.Report.Address] = struct{}{}
			f.track(it.Report, b)
			if f.cfg.OnDeploy != nil {
				f.cfg.OnDeploy(it)
			}
		}
	}
	// Snapshot: handling an upgrade may rebuild a proxy's entries.
	entries := append([]*watchEntry(nil), f.watched...)
	for _, e := range entries {
		if e.dead {
			continue
		}
		var v etypes.Hash
		re := chain.CaptureReadError(func() {
			v = f.cfg.Reader.GetStorageAt(e.watchAddr, e.slot, b)
		})
		if re != nil {
			return re
		}
		if v == e.last {
			continue // includes upgrade-to-same-logic: a no-op, no invalidation
		}
		if err := f.handleUpgrade(e, b, v); err != nil {
			return err
		}
	}
	return nil
}

// handleUpgrade invalidates exactly the affected proxy's verdicts,
// re-analyzes it against the new logic, and delivers the event.
func (f *Follower) handleUpgrade(e *watchEntry, b uint64, v etypes.Hash) error {
	ev := UpgradeEvent{
		Block: b, Proxy: e.proxy, WatchAddr: e.watchAddr, Slot: e.slot,
		OldValue: e.last, NewValue: v,
	}
	if f.beforeInvalidate != nil {
		f.beforeInvalidate(ev)
	}
	n, err := f.cfg.Analyzer.Invalidate(e.proxy)
	f.stats.invalidations.Add(uint64(n))
	if err != nil {
		return err
	}
	items, err := f.cfg.Analyzer.Analyze([]etypes.Address{e.proxy})
	if err != nil {
		return err
	}
	f.stats.upgradesDetected.Add(1)
	f.stats.reanalyses.Add(1)
	e.last = v
	if len(items) == 1 {
		ev.Item = &items[0]
		if e.watchAddr == e.proxy && e.slot == proxion.SlotEIP1967Beacon {
			// The beacon pointer itself moved: the watch topology is
			// stale — rebuild this proxy's entries around the new beacon.
			f.removeEntries(e.proxy)
			f.track(items[0].Report, b)
		}
	}
	if f.cfg.OnUpgrade != nil {
		f.cfg.OnUpgrade(ev)
	}
	return nil
}

// track derives the watch plan for a fresh verdict, anchoring cell values
// as of block b:
//
//   - TargetStorage: watch the proxy's own implementation slot.
//   - TargetHardcoded with a nonzero EIP-1967 beacon slot pointing at a
//     contract whose static summary reads exactly one constant slot:
//     watch that beacon cell (the implementation) plus the proxy's beacon
//     pointer (re-pointing to a new beacon rebuilds the plan).
//   - anything else (minimal proxies, plain forwarders, non-proxies): the
//     delegate is immutable — nothing to watch.
func (f *Follower) track(rep proxion.Report, b uint64) {
	if !rep.IsProxy {
		return
	}
	var plan []*watchEntry
	switch rep.Target {
	case proxion.TargetStorage:
		plan = append(plan, &watchEntry{
			proxy: rep.Address, watchAddr: rep.Address, slot: rep.ImplSlot,
		})
	case proxion.TargetHardcoded:
		beacon, slot, ok := f.beaconCell(rep.Address, b)
		if !ok {
			return
		}
		plan = append(plan,
			&watchEntry{proxy: rep.Address, watchAddr: beacon, slot: slot},
			&watchEntry{proxy: rep.Address, watchAddr: rep.Address, slot: proxion.SlotEIP1967Beacon},
		)
	default:
		return
	}
	for _, e := range plan {
		e := e
		re := chain.CaptureReadError(func() {
			e.last = f.cfg.Reader.GetStorageAt(e.watchAddr, e.slot, b)
		})
		if re != nil {
			continue
		}
		f.watched = append(f.watched, e)
		f.stats.watched.Add(1)
	}
}

// beaconCell resolves a hard-coded-target proxy's beacon indirection as of
// block b: the EIP-1967 beacon slot must hold a deployed contract, and
// that contract's static summary must read exactly one constant storage
// slot — the implementation cell. Truncated summaries are refused.
func (f *Follower) beaconCell(proxy etypes.Address, b uint64) (etypes.Address, etypes.Hash, bool) {
	var beacon etypes.Address
	var slot etypes.Hash
	found := false
	re := chain.CaptureReadError(func() {
		v := f.cfg.Reader.GetStorageAt(proxy, proxion.SlotEIP1967Beacon, b)
		if v == (etypes.Hash{}) {
			return
		}
		addr := etypes.BytesToAddress(v[:])
		code := f.cfg.Reader.Code(addr)
		if len(code) == 0 {
			return
		}
		sum := static.Analyze(code)
		if sum.Truncated || len(sum.SlotReads) != 1 {
			return
		}
		beacon, slot, found = addr, sum.SlotReads[0], true
	})
	if re != nil || !found {
		return etypes.Address{}, etypes.Hash{}, false
	}
	return beacon, slot, true
}

// removeEntries kills every watched cell belonging to proxy.
func (f *Follower) removeEntries(proxy etypes.Address) {
	kept := f.watched[:0]
	for _, e := range f.watched {
		if e.proxy == proxy {
			e.dead = true
			f.stats.watched.Add(^uint64(0))
			continue
		}
		kept = append(kept, e)
	}
	f.watched = kept
}

// checkpointState is the cursor file's JSON shape.
type checkpointState struct {
	Cursor uint64 `json:"cursor"`
}

// checkpoint writes the cursor atomically (temp file + rename), so a
// crash leaves either the previous checkpoint or the new one, never a
// torn file.
func (f *Follower) checkpoint() error {
	if f.cfg.CheckpointPath == "" {
		return nil
	}
	data, err := json.Marshal(checkpointState{Cursor: f.cursor.Load()})
	if err != nil {
		return err
	}
	tmp := f.cfg.CheckpointPath + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.cfg.CheckpointPath)
}

// loadCheckpoint reads a cursor file; a missing file means a cold start.
func loadCheckpoint(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var st checkpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return 0, err
	}
	return st.Cursor, nil
}
