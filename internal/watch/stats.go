package watch

import "sync/atomic"

// stats holds the follower's own counters. Deliberately separate from the
// pipeline counter set: the pipeline's deterministic counters are compared
// byte-for-byte by the bench regression gate, while these describe the
// follower's progress and are free to grow with wall-clock polling.
type stats struct {
	blocksFollowed   atomic.Uint64
	deploymentsSeen  atomic.Uint64
	upgradesDetected atomic.Uint64
	invalidations    atomic.Uint64
	reanalyses       atomic.Uint64
	replicaLag       atomic.Uint64
	watched          atomic.Uint64
}

// StatsSnapshot is the JSON shape of the follower's counters — what
// /v1/watch/stats serves and what the CI watch job uploads.
type StatsSnapshot struct {
	// Cursor is the last fully processed block.
	Cursor uint64 `json:"cursor"`
	// BlocksFollowed counts blocks fully processed (upgrade scan +
	// deployment routing + checkpoint).
	BlocksFollowed uint64 `json:"blocks_followed"`
	// DeploymentsSeen counts new contracts routed into analysis.
	DeploymentsSeen uint64 `json:"deployments_seen"`
	// UpgradesDetected counts watched-cell value changes handled.
	UpgradesDetected uint64 `json:"upgrades_detected"`
	// Invalidations counts cache tiers actually dropped (exact-hash,
	// structural family, service result cache) across all upgrades.
	Invalidations uint64 `json:"invalidations"`
	// Reanalyses counts post-upgrade re-analysis runs.
	Reanalyses uint64 `json:"reanalyses"`
	// ReplicaLag is the widest head spread the replica pool has observed
	// (zero without a pool).
	ReplicaLag uint64 `json:"replica_lag"`
	// Watched is the number of live watched cells.
	Watched uint64 `json:"watched"`
}
