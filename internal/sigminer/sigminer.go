// Package sigminer brute-forces 4-byte function-selector collisions. The
// paper uses this to demonstrate how cheaply an attacker crafts a honeypot:
// a function whose selector equals an enticing function's selector (e.g.
// impl_LUsXCWD2AKCc() colliding with free_ether_withdrawal(), found after
// ~600M attempts on a laptop, Section 2.3).
package sigminer

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/keccak"
)

// alphabet is the base-62 suffix alphabet used to enumerate candidates.
const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// CandidateName builds the n-th candidate function name with the given
// prefix, e.g. prefix "impl" and n=0 gives "impl_a".
func CandidateName(prefix string, n uint64) string {
	var suffix []byte
	for {
		suffix = append(suffix, alphabet[n%62])
		n /= 62
		if n == 0 {
			break
		}
	}
	// Reverse for conventional ordering.
	for i, j := 0, len(suffix)-1; i < j; i, j = i+1, j-1 {
		suffix[i], suffix[j] = suffix[j], suffix[i]
	}
	return prefix + "_" + string(suffix)
}

// Result is a successful collision search.
type Result struct {
	// Prototype is the found signature, e.g. "impl_LUsXCWD2AKCc()".
	Prototype string
	// Attempts is how many candidates were hashed.
	Attempts uint64
}

// Mine searches for a function prototype "<prefix>_<suffix>()" whose
// selector's first matchBytes bytes equal target's. matchBytes of 4 is the
// full collision an attacker needs (expected ~2^32/2 attempts); smaller
// values let tests and benchmarks exercise the identical code path in
// bounded time. The search fans out across CPUs and is deterministic: it
// always returns the lowest-index match.
func Mine(target [4]byte, prefix string, matchBytes int, maxAttempts uint64) (Result, bool) {
	if matchBytes < 1 || matchBytes > 4 {
		panic(fmt.Sprintf("sigminer: matchBytes must be 1..4, got %d", matchBytes))
	}
	workers := runtime.GOMAXPROCS(0)
	var (
		wg       sync.WaitGroup
		found    atomic.Uint64 // lowest matching index + 1 (0 = none)
		attempts atomic.Uint64
	)
	const stride = 4096
	var nextBlock atomic.Uint64

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := nextBlock.Add(stride) - stride
				if start >= maxAttempts {
					return
				}
				if f := found.Load(); f != 0 && f-1 < start {
					return // a lower match already won
				}
				end := start + stride
				if end > maxAttempts {
					end = maxAttempts
				}
				for n := start; n < end; n++ {
					proto := CandidateName(prefix, n) + "()"
					sel := keccak.Selector(proto)
					attempts.Add(1)
					if matches(sel, target, matchBytes) {
						// Keep the lowest-index match for determinism.
						for {
							cur := found.Load()
							if cur != 0 && cur-1 <= n {
								break
							}
							if found.CompareAndSwap(cur, n+1) {
								break
							}
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	f := found.Load()
	if f == 0 {
		return Result{Attempts: attempts.Load()}, false
	}
	return Result{
		Prototype: CandidateName(prefix, f-1) + "()",
		Attempts:  attempts.Load(),
	}, true
}

func matches(sel, target [4]byte, n int) bool {
	for i := 0; i < n; i++ {
		if sel[i] != target[i] {
			return false
		}
	}
	return true
}
