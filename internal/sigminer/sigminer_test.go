package sigminer_test

import (
	"testing"

	"repro/internal/keccak"
	"repro/internal/sigminer"
)

func TestCandidateNameOrdering(t *testing.T) {
	if got := sigminer.CandidateName("impl", 0); got != "impl_a" {
		t.Errorf("candidate 0 = %q", got)
	}
	if got := sigminer.CandidateName("impl", 61); got != "impl_9" {
		t.Errorf("candidate 61 = %q", got)
	}
	if got := sigminer.CandidateName("impl", 62); got != "impl_ba" {
		t.Errorf("candidate 62 = %q", got)
	}
	seen := make(map[string]bool)
	for n := uint64(0); n < 5000; n++ {
		name := sigminer.CandidateName("x", n)
		if seen[name] {
			t.Fatalf("duplicate candidate %q at %d", name, n)
		}
		seen[name] = true
	}
}

func TestMineFindsPartialCollision(t *testing.T) {
	// Matching 2 bytes needs ~65k attempts on average: fast and exercises
	// the identical code path as the attacker's full 4-byte search.
	target := keccak.Selector("free_ether_withdrawal()")
	res, ok := sigminer.Mine(target, "impl", 2, 2_000_000)
	if !ok {
		t.Fatalf("no 2-byte collision in 2M attempts (attempts=%d)", res.Attempts)
	}
	sel := keccak.Selector(res.Prototype)
	if sel[0] != target[0] || sel[1] != target[1] {
		t.Errorf("found %q with selector %x, want prefix %x", res.Prototype, sel, target[:2])
	}
}

func TestMineDeterministic(t *testing.T) {
	target := keccak.Selector("withdraw()")
	a, okA := sigminer.Mine(target, "f", 1, 100_000)
	b, okB := sigminer.Mine(target, "f", 1, 100_000)
	if !okA || !okB {
		t.Fatal("1-byte collision must be found quickly")
	}
	if a.Prototype != b.Prototype {
		t.Errorf("non-deterministic result: %q vs %q", a.Prototype, b.Prototype)
	}
}

func TestMineRespectsBudget(t *testing.T) {
	// An impossible 4-byte match within a tiny budget must fail cleanly.
	target := [4]byte{0x00, 0x11, 0x22, 0x33}
	res, ok := sigminer.Mine(target, "z", 4, 1000)
	if ok {
		t.Skipf("astronomically lucky: found %q", res.Prototype)
	}
	if res.Attempts == 0 {
		t.Error("no attempts recorded")
	}
}

func TestPaperCollisionPairHolds(t *testing.T) {
	// The paper's honeypot example is a real Keccak collision; assert it so
	// the fixture can never silently rot.
	lure := keccak.Selector("free_ether_withdrawal()")
	trap := keccak.Selector("impl_LUsXCWD2AKCc()")
	if lure != trap {
		t.Fatalf("paper collision pair broken: %x vs %x", lure, trap)
	}
	if lure != [4]byte{0xdf, 0x4a, 0x31, 0x06} {
		t.Errorf("selector = %x, want df4a3106", lure)
	}
}
