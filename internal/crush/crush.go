// Package crush reimplements the CRUSH baseline (Ruaro et al., NDSS 2024)
// as the paper characterizes it: proxy/logic pairs are mined from
// historical transaction traces (DELEGATECALL instructions observed in past
// executions), and storage collisions are detected with slicing + symbolic
// width inference and validated dynamically. Its two structural limitations
// drive the paper's comparison: contracts without past transactions are
// invisible to it, and every delegatecaller — including library callers —
// counts as a proxy (Sections 3.1 and 6.2).
package crush

import (
	"sort"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// Pair is a proxy/logic relationship mined from transaction history.
type Pair struct {
	Proxy etypes.Address
	Logic etypes.Address
}

// Tool is a CRUSH instance bound to a chain's transaction archive.
type Tool struct {
	chain    *chain.Chain
	detector *proxion.Detector // shared collision engine (the paper reuses it too)
}

// New returns a CRUSH baseline over the chain.
func New(c *chain.Chain) *Tool {
	return &Tool{chain: c, detector: proxion.NewDetector(c)}
}

// IdentifyProxies mines the chain's transaction traces: every contract
// observed initiating a DELEGATECALL is classified as a proxy, paired with
// every logic target it was seen delegating to. Library callers are
// included — CRUSH cannot tell forwarding from constructed call data in a
// trace — and contracts that never transacted are absent.
func (t *Tool) IdentifyProxies() []Pair {
	seen := make(map[Pair]struct{})
	var out []Pair
	for _, ev := range t.chain.DelegateEvents() {
		p := Pair{Proxy: ev.Proxy, Logic: ev.Logic}
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proxy != out[j].Proxy {
			return lessAddr(out[i].Proxy, out[j].Proxy)
		}
		return lessAddr(out[i].Logic, out[j].Logic)
	})
	return out
}

// IsProxy reports whether CRUSH's trace mining would classify addr as a
// proxy: it initiated at least one DELEGATECALL in a recorded transaction.
func (t *Tool) IsProxy(addr etypes.Address) bool {
	for _, ev := range t.chain.DelegateEvents() {
		if ev.Proxy == addr {
			return true
		}
	}
	return false
}

// StorageCollisions runs the slicing + symbolic analysis on one pair and
// dynamically verifies exploitability, exactly the engine Proxion borrows
// (Section 5.2). CRUSH's accuracy gap comes from *which* pairs it feeds in,
// not from the engine.
func (t *Tool) StorageCollisions(proxy, logic etypes.Address) ([]proxion.StorageCollision, bool) {
	proxyAcc := proxion.ExtractStorageAccesses(t.chain.Code(proxy))
	logicAcc := proxion.ExtractStorageAccesses(t.chain.Code(logic))
	cols := proxion.StorageCollisions(proxyAcc, logicAcc)
	verified := false
	if len(cols) > 0 {
		verified = t.detector.VerifyStorageExploit(proxy, logic, cols)
	}
	return cols, verified
}

func lessAddr(a, b etypes.Address) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
