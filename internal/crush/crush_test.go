package crush_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/crush"
	"repro/internal/etypes"
	"repro/internal/solc"
	"repro/internal/u256"
)

var (
	proxyAt = etypes.MustAddress("0x0000000000000000000000000000000000008901")
	logicAt = etypes.MustAddress("0x0000000000000000000000000000000000008902")
	libAt   = etypes.MustAddress("0x0000000000000000000000000000000000008903")
	userAt  = etypes.MustAddress("0x0000000000000000000000000000000000008904")
	sender  = etypes.MustAddress("0x0000000000000000000000000000000000008905")
)

// buildChain deploys a real proxy pair (with a tx) and a library caller
// (with a tx), plus a transaction-less proxy CRUSH cannot see.
func buildChain(t *testing.T) (*chain.Chain, etypes.Address) {
	t.Helper()
	c := chain.New()
	implSlot := etypes.HashFromWord(u256.One())

	logic := &solc.Contract{
		Name: "L",
		Funcs: []solc.Func{{ABI: abi.Function{Name: "ping"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}}}},
	}
	c.InstallContract(logicAt, solc.MustCompile(logic))

	proxy := &solc.Contract{
		Name:     "P",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	c.InstallContract(proxyAt, solc.MustCompile(proxy))
	c.SetStorageDirect(proxyAt, implSlot, etypes.HashFromWord(logicAt.Word()))
	c.Execute(sender, proxyAt, []byte{1, 2, 3, 4}, 0, u256.Zero())

	c.InstallContract(libAt, []byte{0x00})
	user := &solc.Contract{
		Name:     "U",
		Fallback: solc.Fallback{Kind: solc.FallbackLibraryCall, Target: libAt, Proto: "sqrt(uint256)"},
	}
	c.InstallContract(userAt, solc.MustCompile(user))
	c.Execute(sender, userAt, []byte{5, 6, 7, 8}, 0, u256.Zero())

	// A proxy with no transaction history.
	hidden := etypes.MustAddress("0x0000000000000000000000000000000000008906")
	c.InstallContract(hidden, solc.MustCompile(proxy))
	c.SetStorageDirect(hidden, implSlot, etypes.HashFromWord(logicAt.Word()))
	return c, hidden
}

func TestIdentifyProxiesFromTraces(t *testing.T) {
	c, hidden := buildChain(t)
	tool := crush.New(c)

	pairs := tool.IdentifyProxies()
	got := make(map[crush.Pair]bool)
	for _, p := range pairs {
		got[p] = true
	}
	if !got[crush.Pair{Proxy: proxyAt, Logic: logicAt}] {
		t.Error("real proxy pair missed")
	}
	// The library caller is misclassified as a proxy: the documented FP.
	if !got[crush.Pair{Proxy: userAt, Logic: libAt}] {
		t.Error("library pair should be (wrongly) mined from traces")
	}
	// The hidden proxy is invisible: the documented FN.
	if tool.IsProxy(hidden) {
		t.Error("transaction-less proxy visible to trace mining")
	}
	if !tool.IsProxy(proxyAt) || tool.IsProxy(logicAt) {
		t.Error("IsProxy misbehaves on transacted contracts")
	}
}

func TestStorageCollisionEngineSharedWithProxion(t *testing.T) {
	// Identical layouts: clean regardless of pairing.
	c, _ := buildChain(t)
	tool := crush.New(c)
	cols, verified := tool.StorageCollisions(proxyAt, logicAt)
	if len(cols) != 0 || verified {
		t.Errorf("clean pair flagged: %v verified=%v", cols, verified)
	}
}
