package uschunt_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/etherscan"
	"repro/internal/etypes"
	"repro/internal/solc"
	"repro/internal/uschunt"
)

var (
	pAddr = etypes.MustAddress("0x0000000000000000000000000000000000008801")
	lAddr = etypes.MustAddress("0x0000000000000000000000000000000000008802")
)

func delegatingProxySrc() *solc.Contract {
	return &solc.Contract{
		Name: "P",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{{
			ABI: abi.Function{Name: "upgradeTo", Params: []string{"address"}},
			Body: []solc.Stmt{
				solc.RequireCallerIs{Var: "owner"},
				solc.AssignArg{Var: "logic", Arg: 0},
			},
		}},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage},
	}
}

func TestDetectProxyGates(t *testing.T) {
	reg := etherscan.NewRegistry()
	tool := uschunt.New(reg)

	// No source at all: halted.
	if v := tool.DetectProxy(pAddr); !v.Halted || v.Detected {
		t.Errorf("no-source verdict = %+v", v)
	}
	// Source but unknown compiler: halted (the ~30% failure mode).
	reg.Publish(pAddr, delegatingProxySrc(), false)
	if v := tool.DetectProxy(pAddr); !v.Halted || v.Detected {
		t.Errorf("unknown-compiler verdict = %+v", v)
	}
	// Compiled, delegating fallback: detected.
	reg.Publish(pAddr, delegatingProxySrc(), true)
	if v := tool.DetectProxy(pAddr); v.Halted || !v.Detected {
		t.Errorf("good-source verdict = %+v", v)
	}
	// A library caller is not a proxy even from source.
	lib := &solc.Contract{Name: "L", Fallback: solc.Fallback{Kind: solc.FallbackLibraryCall, Proto: "f()"}}
	reg.Publish(lAddr, lib, true)
	if v := tool.DetectProxy(lAddr); v.Detected {
		t.Error("library caller detected as proxy")
	}
}

func TestFunctionCollisionsNameBased(t *testing.T) {
	reg := etherscan.NewRegistry()
	tool := uschunt.New(reg)
	proxy := delegatingProxySrc()
	logic := &solc.Contract{
		Name: "L",
		Funcs: []solc.Func{
			// Same name, different params: NOT a selector collision, but
			// USCHunt's name comparison flags it — its Table 2 FP.
			{ABI: abi.Function{Name: "upgradeTo", Params: []string{"address", "uint256"}},
				Body: []solc.Stmt{solc.Stop{}}},
		},
	}
	reg.Publish(pAddr, proxy, true)
	reg.Publish(lAddr, logic, true)

	cols := tool.FunctionCollisions(pAddr, lAddr)
	if len(cols) != 1 {
		t.Fatalf("collisions = %d, want 1 (name match)", len(cols))
	}
	if cols[0].ProxyProto == cols[0].LogicProto {
		t.Error("prototypes should differ (that is why it is a false positive)")
	}

	// The honeypot shape — different names, same selector — is invisible
	// to the name comparison.
	honeyProxy := &solc.Contract{
		Name: "HP",
		Funcs: []solc.Func{{ABI: abi.Function{Name: "impl_LUsXCWD2AKCc"},
			Body: []solc.Stmt{solc.Stop{}}}},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage},
	}
	honeyLogic := &solc.Contract{
		Name: "HL",
		Funcs: []solc.Func{{ABI: abi.Function{Name: "free_ether_withdrawal"},
			Body: []solc.Stmt{solc.Stop{}}}},
	}
	reg.Publish(pAddr, honeyProxy, true)
	reg.Publish(lAddr, honeyLogic, true)
	if cols := tool.FunctionCollisions(pAddr, lAddr); len(cols) != 0 {
		t.Errorf("honeypot collision visible to name comparison: %+v", cols)
	}
}

func TestStorageCollisionsNameMismatch(t *testing.T) {
	reg := etherscan.NewRegistry()
	tool := uschunt.New(reg)
	proxy := delegatingProxySrc() // slot 0: owner+logic (wait: both addresses -> slot0 owner, slot1 logic)
	logic := &solc.Contract{
		Name: "L",
		Vars: []solc.Var{
			{Name: "counter", Type: solc.TypeAddress}, // slot 0, different name
			{Name: "logic", Type: solc.TypeAddress},   // slot 1, same name
		},
	}
	reg.Publish(pAddr, proxy, true)
	reg.Publish(lAddr, logic, true)

	cols := tool.StorageCollisions(pAddr, lAddr)
	if len(cols) != 1 {
		t.Fatalf("collisions = %d, want 1 (slot 0 name mismatch)", len(cols))
	}
	if cols[0].Slot != 0 {
		t.Errorf("collision slot = %d", cols[0].Slot)
	}
	// Identical names: clean.
	reg.Publish(lAddr, delegatingProxySrc(), true)
	if cols := tool.StorageCollisions(pAddr, lAddr); len(cols) != 0 {
		t.Errorf("identical layouts flagged: %+v", cols)
	}
	// Unknown compiler on either side: nothing reported.
	reg.Publish(lAddr, logic, false)
	if cols := tool.StorageCollisions(pAddr, lAddr); cols != nil {
		t.Errorf("halted analysis still reported: %+v", cols)
	}
}
