// Package uschunt reimplements the USCHunt baseline (Bodell et al., USENIX
// Security 2023) at the fidelity the paper's comparison needs: a purely
// source-level, Slither-based analyzer. Its characteristic blind spots are
// modeled from the paper's evaluation: it can only examine contracts with
// published source (Section 3.1), it halts on ~30% of contracts whose
// compiler version is unknown (Section 6.2), and its storage-collision
// check compares variable names and declaration order, flagging harmless
// padding mismatches as collisions (Section 6.3).
package uschunt

import (
	"repro/internal/etherscan"
	"repro/internal/etypes"
	"repro/internal/solc"
)

// Tool is a USCHunt instance bound to a source registry.
type Tool struct {
	reg *etherscan.Registry
}

// New returns a USCHunt baseline over the registry.
func New(reg *etherscan.Registry) *Tool { return &Tool{reg: reg} }

// ProxyVerdict is the outcome of USCHunt's proxy detection for one address.
type ProxyVerdict struct {
	// Detected is true when USCHunt classifies the contract as a proxy.
	Detected bool
	// Halted is true when analysis aborted (no source, or compilation
	// failed on an unknown compiler version).
	Halted bool
}

// DetectProxy classifies one contract. USCHunt needs source and a known
// compiler; given both, it recognizes the delegating-fallback patterns that
// Slither's static analysis finds in source.
func (t *Tool) DetectProxy(addr etypes.Address) ProxyVerdict {
	entry, ok := t.reg.Entry(addr)
	if !ok {
		return ProxyVerdict{Halted: true}
	}
	if !entry.CompilerKnown {
		// Compilation halt: the ~30% failure mode the paper measures.
		return ProxyVerdict{Halted: true}
	}
	return ProxyVerdict{Detected: isDelegatingFallback(entry.Source)}
}

// isDelegatingFallback is the source-level proxy test: the fallback
// function forwards via delegatecall.
func isDelegatingFallback(src *solc.Contract) bool {
	switch src.Fallback.Kind {
	case solc.FallbackDelegateStorage, solc.FallbackDelegateHardcoded,
		solc.FallbackDelegateDiamond:
		return true
	default:
		return false
	}
}

// FunctionCollision is USCHunt's source-level function finding.
type FunctionCollision struct {
	ProxyProto string
	LogicProto string
}

// FunctionCollisions runs USCHunt's source-level function comparison. It
// reports nothing unless both sources are available, both compile, and the
// proxy was detected as such — the chain of preconditions behind its high
// false-negative rate in Table 2. The comparison matches function *names*
// rather than full 4-byte selectors, which is where its occasional false
// positive comes from: same-named functions with different parameter lists
// do not actually collide.
func (t *Tool) FunctionCollisions(proxy, logic etypes.Address) []FunctionCollision {
	pv := t.DetectProxy(proxy)
	if !pv.Detected {
		return nil
	}
	pe, okP := t.reg.Entry(proxy)
	le, okL := t.reg.Entry(logic)
	if !okP || !okL || !pe.CompilerKnown || !le.CompilerKnown {
		return nil
	}
	logicByName := make(map[string]string)
	for _, f := range le.Source.Funcs {
		logicByName[f.ABI.Name] = f.ABI.Prototype()
	}
	var out []FunctionCollision
	for _, f := range pe.Source.Funcs {
		if lp, ok := logicByName[f.ABI.Name]; ok {
			out = append(out, FunctionCollision{ProxyProto: f.ABI.Prototype(), LogicProto: lp})
		}
	}
	return out
}

// NameCollision is USCHunt's storage finding: a slot where the proxy and
// logic declare differently named variables.
type NameCollision struct {
	Slot      uint64
	ProxyVars []string
	LogicVars []string
}

// StorageCollisions compares declared storage layouts by slot, flagging any
// slot whose variable names differ between the two sources. This is the
// name-and-order comparison that yields false positives on padding
// variables: a slot holding `__gap` on one side and `value` on the other is
// flagged even though both are full-width words with identical boundaries.
func (t *Tool) StorageCollisions(proxy, logic etypes.Address) []NameCollision {
	pe, okP := t.reg.Entry(proxy)
	le, okL := t.reg.Entry(logic)
	if !okP || !okL || !pe.CompilerKnown || !le.CompilerKnown {
		return nil
	}
	proxySlots := namesBySlot(pe.Source)
	logicSlots := namesBySlot(le.Source)

	var out []NameCollision
	for slot, pNames := range proxySlots {
		lNames, shared := logicSlots[slot]
		if !shared {
			continue
		}
		if !sameNames(pNames, lNames) {
			out = append(out, NameCollision{Slot: slot, ProxyVars: pNames, LogicVars: lNames})
		}
	}
	sortBySlot(out)
	return out
}

func namesBySlot(src *solc.Contract) map[uint64][]string {
	out := make(map[uint64][]string)
	for _, sv := range src.Layout() {
		out[sv.Slot] = append(out[sv.Slot], sv.Var.Name)
	}
	return out
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortBySlot(cs []NameCollision) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Slot < cs[j-1].Slot; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
