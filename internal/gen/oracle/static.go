package oracle

import (
	"fmt"

	"repro/internal/etypes"
	"repro/internal/gen"
	"repro/internal/static"
)

// CheckStaticParity is the static↔dynamic cross-check oracle: for every
// labeled contract it runs the emulation-free static analyzer over the
// installed bytecode and requires the summary to tell the same story as
// the generation-time ground truth — the story the dynamic emulation
// pipeline is separately held to. Each taxonomy shape has a precise
// static signature:
//
//   - minimal proxies and hard-coded forwarders: exactly one reachable
//     DELEGATECALL, hardcoded provenance, the labeled logic address,
//     forwarding the full call data;
//   - storage proxies (EIP-1967, EIP-1822, ad-hoc): every reachable
//     delegate loads the labeled implementation slot (slot-const
//     provenance) and forwards;
//   - diamonds: a keccak-derived facet lookup that still forwards — the
//     shape dynamic emulation cannot see (the paper's acknowledged
//     limitation), which is exactly why the static layer reports it;
//   - library callers: delegates exist but none forward the received
//     call data (constructed-argument calls are not proxies);
//   - dead delegates: the opcode is present but no DELEGATECALL is
//     reachable;
//   - dispatcher-only and plain logic: no delegates at all.
//
// For compiled contracts the recovered selector table must equal the
// source-level function list — the abstract dispatcher walk may not
// invent selectors (decoy constants) or lose any.
func CheckStaticParity(c *gen.Corpus) []Mismatch {
	var out []Mismatch
	for _, l := range c.Labels {
		out = append(out, checkStaticLabel(l)...)
	}
	return out
}

func checkStaticLabel(l *gen.Label) []Mismatch {
	var out []Mismatch
	bad := func(format string, args ...any) {
		out = append(out, Mismatch{Addr: l.Address, Layer: "static",
			Detail: fmt.Sprintf("%v: ", l.Shape) + fmt.Sprintf(format, args...)})
	}

	sum := static.Analyze(l.Code)
	if sum.CodeHash != etypes.Keccak(l.Code) {
		bad("summary code hash does not match the installed code")
	}
	if sum.Truncated {
		bad("analysis budget exhausted on generated code")
		return out
	}
	if sum.HasDelegateCall != l.HasDelegateCall {
		bad("HasDelegateCall=%v, label says %v", sum.HasDelegateCall, l.HasDelegateCall)
	}

	// forwarding collects the reachable delegates that forward the full
	// received call data — the static rendering of the paper's proxy
	// definition.
	var forwarding []static.DelegateCall
	for _, del := range sum.Delegates {
		if del.ForwardsCalldata {
			forwarding = append(forwarding, del)
		}
	}

	switch l.Shape {
	case gen.ShapeMinimalProxy, gen.ShapeHardcodedForwarder:
		if len(forwarding) != 1 {
			bad("%d forwarding delegates, want exactly 1", len(forwarding))
			break
		}
		del := forwarding[0]
		if del.Provenance != static.ProvHardcoded || del.Target != l.Logic {
			bad("delegate %s/%s, want hardcoded/%s", del.Provenance, del.Target.Hex(), l.Logic.Hex())
		}
		if del.TargetTainted {
			bad("hardcoded target reported tainted")
		}
	case gen.ShapeEIP1967Proxy, gen.ShapeEIP1822Proxy, gen.ShapeAdHocProxy:
		if len(forwarding) == 0 {
			bad("no forwarding delegate on a storage proxy")
			break
		}
		for _, del := range forwarding {
			if del.Provenance != static.ProvSlotConst || del.Slot != l.ImplSlot {
				bad("delegate %s/slot %x, want slot-const/%x", del.Provenance, del.Slot, l.ImplSlot)
			}
			if del.TargetTainted {
				bad("slot-loaded target reported tainted")
			}
		}
		if !sum.ReadsSlot(l.ImplSlot) {
			bad("implementation slot %x missing from SlotReads", l.ImplSlot)
		}
	case gen.ShapeDiamond:
		if len(forwarding) == 0 {
			bad("no forwarding delegate on a diamond")
			break
		}
		for _, del := range forwarding {
			if del.Provenance != static.ProvSlotKeccak {
				bad("facet delegate provenance %s, want slot-keccak", del.Provenance)
			}
		}
		if sum.KeccakReads == 0 {
			bad("no keccak-derived SLOAD on a facet router")
		}
	case gen.ShapeLibraryCaller:
		if len(sum.Delegates) == 0 {
			bad("library delegatecall not reachable")
		}
		if len(forwarding) != 0 {
			bad("constructed-call delegate reported as forwarding (%+v)", forwarding)
		}
	case gen.ShapeDeadDelegate:
		if len(sum.Delegates) != 0 {
			bad("unreachable DELEGATECALL reported reachable: %+v", sum.Delegates)
		}
	case gen.ShapeDispatcherOnly, gen.ShapeLogic:
		if len(sum.Delegates) != 0 {
			bad("negative shape has reachable delegates: %+v", sum.Delegates)
		}
	}

	// Selector-table parity for every compiled contract: the abstract
	// dispatcher walk must recover exactly the source-level function set —
	// no decoy constants, no lost functions.
	if l.Source != nil {
		got, want := selectorKey(sum.Selectors), selectorKey(l.Source.Selectors())
		if got != want {
			bad("selector table [%s], source declares [%s]", got, want)
		}
	}
	return out
}
