package oracle

import (
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/evm/parity"
	"repro/internal/gen"
	"repro/internal/proxion"
	"repro/internal/u256"
)

// interpSender is the synthetic caller interpreter-parity probes run as,
// mirroring the detector's own probe sender.
var interpSender = etypes.MustAddress("0x00000000000000000000000000000000deca0de0")

// interpStepLimit matches the detector's emulation step budget, so parity
// covers exactly the executions the detector performs in production.
const interpStepLimit = 1 << 18

// CheckInterpParity executes every labeled contract under both the
// reference and the pre-decoded fast interpreter and diffs all
// observables (see evm/parity). Each contract runs twice: once with the
// detector's crafted unknown-selector probe — the exact call the
// emulation layer issues — and once with empty calldata, which takes the
// fallback path through dispatcher shapes. parity.Run snapshots and
// reverts around each execution, so the corpus chain is unchanged.
func CheckInterpParity(c *gen.Corpus) []Mismatch {
	var out []Mismatch
	for _, l := range c.Labels {
		probes := [][]byte{
			proxion.CraftCallData(l.Address, l.Code),
			nil,
		}
		for _, input := range probes {
			spec := parity.Spec{
				Caller:    interpSender,
				To:        l.Address,
				Input:     input,
				Gas:       5_000_000,
				Value:     u256.Zero(),
				Block:     evm.DefaultBlockContext(),
				Tx:        evm.TxContext{Origin: interpSender},
				StepLimit: interpStepLimit,
				Lenient:   true,
			}
			for _, m := range parity.Check(c.Chain, spec) {
				out = append(out, Mismatch{Addr: l.Address, Layer: "interp",
					Detail: l.Shape.String() + " input=" + inputKind(input) + ": " + m.String()})
			}
		}
	}
	return out
}

func inputKind(input []byte) string {
	if len(input) == 0 {
		return "empty"
	}
	return "probe"
}
