package oracle

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/gen"
	"repro/internal/proxion"
)

func streamOpts(workers, depth int) proxion.AnalyzeOptions {
	return proxion.AnalyzeOptions{
		FilterWorkers: workers, ProbeWorkers: workers,
		ClassifyWorkers: workers, PairWorkers: workers,
		ChannelDepth: depth,
	}
}

// fixedSeeds is the corpus set every run (including -short) checks; wide
// randomized sweeps live in TestOracleSweep and the fuzz target.
var fixedSeeds = []int64{0, 1, 2, 3, 7, 42, 31337, 987654321}

// TestOracleFixedSeeds runs every differential layer on the pinned seeds.
func TestOracleFixedSeeds(t *testing.T) {
	for _, seed := range fixedSeeds {
		c := gen.Generate(gen.Config{Seed: seed})
		if ms := Run(c); len(ms) > 0 {
			t.Errorf("%s", Format(c, ms))
		}
	}
}

// TestOracleSweep is the nightly wide sweep: ORACLE_SWEEP chains (default
// 200), fresh seeds disjoint from the fixed set. Skipped under -short.
func TestOracleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("wide sweep skipped in -short mode")
	}
	n := 200
	if env := os.Getenv("ORACLE_SWEEP"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("bad ORACLE_SWEEP=%q: %v", env, err)
		}
		n = v
	}
	for i := 0; i < n; i++ {
		seed := int64(1_000_000 + i)
		c := gen.Generate(gen.Config{Seed: seed})
		if ms := Run(c); len(ms) > 0 {
			t.Errorf("%s", Format(c, ms))
			if len(ms) > 20 {
				t.Fatalf("aborting sweep after a badly failing seed")
			}
		}
	}
}

// TestOracleStreamingConfigs stresses the parity layers under degenerate
// engine configurations: single worker everywhere and depth-1 channels.
func TestOracleStreamingConfigs(t *testing.T) {
	c := gen.Generate(gen.Config{Seed: 5})
	ref := SequentialReference(c)
	for _, opt := range []struct {
		name string
		w, d int
	}{
		{"single-worker", 1, 1},
		{"two-workers", 2, 2},
		{"wide", 8, 64},
	} {
		opts := streamOpts(opt.w, opt.d)
		if ms := CheckStreaming(c, ref, opts); len(ms) > 0 {
			t.Errorf("%s: %s", opt.name, Format(c, ms))
		}
		if ms := CheckCacheParity(c, opts); len(ms) > 0 {
			t.Errorf("%s: %s", opt.name, Format(c, ms))
		}
		if ms := CheckStoreParity(c, opts); len(ms) > 0 {
			t.Errorf("%s: %s", opt.name, Format(c, ms))
		}
	}
}

// TestMetamorphic applies every perturbation to every eligible label of a
// few corpora and requires the invariants to hold — and the preconditions
// to be met often enough that the layer is actually exercising something.
func TestMetamorphic(t *testing.T) {
	kinds := []struct {
		name  string
		apply func(*gen.Corpus, *gen.Label) ([]Mismatch, bool)
	}{
		{"rename", MetamorphicRename},
		{"inject-function", MetamorphicInjectFunction},
		{"inject-storage", MetamorphicInjectStorage},
	}
	applied := make(map[string]int)
	for _, seed := range []int64{1, 2, 3} {
		c := gen.Generate(gen.Config{Seed: seed})
		for _, l := range c.Labels {
			for _, k := range kinds {
				ms, ok := k.apply(c, l)
				if !ok {
					continue
				}
				applied[k.name]++
				if len(ms) > 0 {
					t.Errorf("%s on %v: %s", k.name, l.Shape, Format(c, ms))
				}
			}
			// The corpus must be restored after each perturbation; the
			// fingerprint of chain code is implicitly re-checked by later
			// labels analyzing against the same chain.
		}
	}
	for _, k := range kinds {
		if applied[k.name] < 5 {
			t.Errorf("perturbation %q applied only %d times; preconditions too narrow", k.name, applied[k.name])
		}
	}
}

// TestMetamorphicRestores pins the in-place mutation contract: after a full
// metamorphic pass the corpus must be byte-identical to a fresh generation.
func TestMetamorphicRestores(t *testing.T) {
	cfg := gen.Config{Seed: 9}
	c := gen.Generate(cfg)
	want := c.Fingerprint()
	for _, l := range c.Labels {
		MetamorphicRename(c, l)
		MetamorphicInjectFunction(c, l)
		MetamorphicInjectStorage(c, l)
	}
	if got := c.Fingerprint(); got != want {
		t.Fatalf("metamorphic pass left the corpus mutated: fingerprint %x != %x", got, want)
	}
}

// TestMinimizeDemo demonstrates failing-seed minimization. The predicate
// plays the role of a buggy analyzer: it "fails" whenever the corpus
// contains a diamond (the one proxy shape emulation legitimately misses).
// The generator's coverage prefix puts the first diamond at unit index 5,
// so the minimal failing prefix is exactly 6 units, with the offending
// contract last.
func TestMinimizeDemo(t *testing.T) {
	fails := func(cfg gen.Config) bool {
		c := gen.Generate(cfg)
		ref := SequentialReference(c)
		for i, rep := range ref.Reports {
			if rep.IsProxy != c.Labels[i].IsProxy {
				return true
			}
		}
		return false
	}
	minimized, failed := gen.Minimize(gen.Config{Seed: 4}, fails)
	if !failed {
		t.Fatalf("demo predicate did not fail on the full corpus")
	}
	if minimized.Contracts != 6 {
		t.Fatalf("minimized to %d units, want 6 (diamond is coverage unit 5)", minimized.Contracts)
	}
	c := gen.Generate(minimized)
	last := c.Labels[len(c.Labels)-1]
	if last.Shape != gen.ShapeDiamond {
		t.Fatalf("minimized corpus ends in %v, want the offending diamond", last.Shape)
	}

	// A predicate that never fails must report so.
	if _, failed := gen.Minimize(gen.Config{Seed: 4}, func(gen.Config) bool { return false }); failed {
		t.Fatalf("Minimize invented a failure")
	}
}

// FuzzGeneratorOracle lets the fuzzer drive seed and corpus size through
// the full differential stack.
func FuzzGeneratorOracle(f *testing.F) {
	f.Add(int64(0), uint8(12))
	f.Add(int64(31337), uint8(24))
	f.Add(int64(-1), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, units uint8) {
		cfg := gen.Config{Seed: seed, Contracts: 1 + int(units%32)}
		c := gen.Generate(cfg)
		if ms := Run(c); len(ms) > 0 {
			t.Fatalf("%s", Format(c, ms))
		}
	})
}
