package oracle

import (
	"testing"
	"time"

	"repro/internal/faultchain"
	"repro/internal/gen"
	"repro/internal/proxion"
)

// fastFaultOpts returns client options with microsecond backoff and an
// explicit retry budget, so the parity/degradation split below is pinned in
// the test rather than inherited from a default that might drift.
func fastFaultOpts() faultchain.Options {
	return faultchain.Options{
		MaxRetries:  4,
		BackoffBase: 20 * time.Microsecond,
		BackoffMax:  200 * time.Microsecond,
	}
}

// TestFaultParitySequential pins the sequential replay path the shrinker
// depends on: below the retry budget it must be mismatch-free, like the
// streaming chaos matrix.
func TestFaultParitySequential(t *testing.T) {
	c := gen.Generate(gen.Config{Seed: 6})
	sched := faultchain.NewSchedule(faultchain.ErrorBurst(), 17)
	if ms := CheckFaultParitySequential(c, sched, fastFaultOpts()); len(ms) > 0 {
		t.Fatalf("%s", Format(c, ms))
	}
}

// TestMinimizeFaultSchedule demonstrates fault-schedule shrinking end to
// end: an above-budget schedule breaks the sequential replay, and
// MinimizeSchedule isolates the smallest first-touch fault prefix that
// still reproduces — the single injected read failure to stare at.
func TestMinimizeFaultSchedule(t *testing.T) {
	c := gen.Generate(gen.Config{Seed: 5})
	deep := faultchain.ErrorBurst()
	deep.Depth = 32
	sched := faultchain.NewSchedule(deep, 23)
	fails := func(s faultchain.Schedule) bool {
		return len(CheckFaultParitySequential(c, s, fastFaultOpts())) > 0
	}

	if !fails(sched) {
		t.Fatalf("deep schedule did not break the sequential replay — nothing to shrink")
	}
	min, ok := faultchain.MinimizeSchedule(sched, fails)
	if !ok {
		t.Fatalf("MinimizeSchedule lost a failure it was handed")
	}
	if min.Limit < 1 {
		t.Fatalf("minimized limit %d: the failure needs at least one injected fault", min.Limit)
	}
	if !fails(min) {
		t.Fatalf("minimized schedule (limit %d) no longer reproduces", min.Limit)
	}
	if fails(min.WithLimit(min.Limit - 1)) {
		t.Fatalf("limit %d still fails — %d was not minimal", min.Limit-1, min.Limit)
	}
	t.Logf("shrunk unbounded schedule to %d faulted read(s)", min.Limit)

	// A schedule that doesn't fail must come back ok=false, unshrunk.
	if _, ok := faultchain.MinimizeSchedule(sched.WithLimit(0), fails); ok {
		t.Fatalf("MinimizeSchedule invented a failure from a fault-free schedule")
	}
}

// FuzzFaultSchedule lets the fuzzer drive corpus seed, fault seed, profile
// and fault depth through the resilience stack. Depth at or below the retry
// budget must yield byte-identical results; depth above it must degrade to
// explicit Unresolved reports — and nothing may ever crash.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), int64(7), uint8(0), uint8(2))
	f.Add(int64(2), int64(11), uint8(3), uint8(1))
	f.Add(int64(3), int64(13), uint8(4), uint8(6))
	f.Add(int64(-42), int64(0), uint8(2), uint8(8))
	f.Fuzz(func(t *testing.T, corpusSeed, faultSeed int64, profileIdx, depth uint8) {
		profiles := faultchain.Profiles()
		p := profiles[int(profileIdx)%len(profiles)]
		p.Depth = 1 + int(depth%8)
		copts := fastFaultOpts()

		c := gen.Generate(gen.Config{Seed: corpusSeed, Contracts: 12})
		sched := faultchain.NewSchedule(p, faultSeed)
		opts := proxion.AnalyzeOptions{WithHistory: true}
		var fr FaultRun
		if p.Depth <= copts.MaxRetries {
			fr = CheckFaultParity(c, sched, copts, opts)
		} else {
			fr = CheckFaultDegradation(c, sched, copts, opts)
		}
		if len(fr.Mismatches) > 0 {
			t.Fatalf("profile %s depth %d: %s", p.Name, p.Depth, Format(c, fr.Mismatches))
		}
	})
}
