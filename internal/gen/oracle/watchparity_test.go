package oracle

import (
	"testing"

	"repro/internal/gen"
)

// TestWatchParity pins the follower's differential guarantee on fixed
// seeds, fault-free and under the below-budget Mixed chaos profile:
// block-by-block following must detect every scripted upgrade exactly
// once with historically accurate collision verdicts, and must end
// byte-identical to cold end-state analysis with zero warm emulations.
// (oracle.Run chains CheckWatchParity too, so the randomized sweep and
// the fuzz target also cover it.)
func TestWatchParity(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, chaos := range []bool{false, true} {
			run := WatchParity(gen.TimelineConfig{Seed: seed}, chaos)
			if len(run.Mismatches) > 0 {
				t.Errorf("seed %d chaos=%v: %d mismatch(es):", seed, chaos, len(run.Mismatches))
				for _, m := range run.Mismatches {
					t.Errorf("  %s", m)
				}
				continue
			}
			if run.Stats.UpgradesDetected == 0 || run.Stats.Invalidations == 0 {
				t.Errorf("seed %d chaos=%v: follower detected %d upgrades with %d invalidations — timeline exercised nothing",
					seed, chaos, run.Stats.UpgradesDetected, run.Stats.Invalidations)
			}
		}
	}
}

// TestWatchParityWideTimeline stretches one replay over a larger proxy
// population so several upgrade rounds interleave across kinds in the
// same blocks-in-flight window.
func TestWatchParityWideTimeline(t *testing.T) {
	run := WatchParity(gen.TimelineConfig{Seed: 13, Proxies: 12}, false)
	if len(run.Mismatches) > 0 {
		t.Fatalf("%d mismatch(es), first: %s", len(run.Mismatches), run.Mismatches[0])
	}
	if run.Stats.Watched < 12 {
		t.Fatalf("only %d watched cells for 12 proxies", run.Stats.Watched)
	}
}
