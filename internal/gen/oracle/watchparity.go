package oracle

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/faultchain"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/proxion"
	"repro/internal/watch"
)

// WatchRun is the outcome of one watch-parity replay: the differential
// verdict, the follower's counters (what the CI watch job aggregates into
// its stats artifact), and the upgrade events it delivered.
type WatchRun struct {
	Mismatches []Mismatch
	Stats      watch.StatsSnapshot
	Events     []watch.UpgradeEvent
}

// WatchParity is the follower's differential oracle. It scripts an upgrade
// timeline (gen.GenerateTimeline), replays it block-by-block through a
// Follower — optionally behind a below-budget Mixed chaos client — and
// requires three properties:
//
//  1. Every scripted upgrade is detected exactly once, at its block, and
//     its re-analysis reports the pairing's ground-truth collision state:
//     a window injected mid-timeline is reported while open and reported
//     clear by the fixing upgrade's event.
//  2. For slot-kind proxies, the final upgrade's recovered logic history
//     (Algorithm 1) covers every scripted logic version.
//  3. Block-by-block following ends byte-identical to cold end-state
//     analysis: a fresh detector's full run over the final chain must
//     match the follower's detector re-running warm — and the warm run
//     must emulate nothing, proving the follower's incremental state is
//     complete, not merely close.
func WatchParity(cfg gen.TimelineConfig, chaos bool) WatchRun {
	tl := gen.GenerateTimeline(cfg)
	replay := faultchain.NewReplayReader(tl.Chain)
	var reader chain.Reader = replay
	if chaos {
		sched := faultchain.NewSchedule(faultchain.Mixed(), cfg.Seed^0x5eed)
		client, _ := faultchain.NewResilientReader(replay, &sched, faultchain.Options{
			MaxRetries:  4,
			BackoffBase: 20 * time.Microsecond,
			BackoffMax:  200 * time.Microsecond,
		})
		reader = client
	}

	run := WatchRun{}
	bad := func(addr etypes.Address, format string, args ...any) {
		run.Mismatches = append(run.Mismatches, Mismatch{
			Addr: addr, Layer: "watch", Detail: fmt.Sprintf(format, args...)})
	}

	det := proxion.NewDetector(reader)
	f, err := watch.New(watch.Config{
		Reader:   reader,
		Analyzer: watch.NewDetectorAnalyzer(det, tl.Registry, nil),
		OnUpgrade: func(ev watch.UpgradeEvent) {
			run.Events = append(run.Events, ev)
		},
	})
	if err != nil {
		bad(etypes.Address{}, "follower construction failed: %v", err)
		return run
	}
	for h := uint64(1); h <= tl.End(); h++ {
		replay.SetHead(h)
		if err := f.Poll(); err != nil {
			bad(etypes.Address{}, "poll at height %d failed: %v", h, err)
			run.Stats = f.Stats()
			return run
		}
	}
	run.Stats = f.Stats()

	// 1. Exactly-once upgrade detection with historically accurate verdicts.
	type evKey struct {
		block uint64
		proxy etypes.Address
	}
	observed := make(map[evKey][]watch.UpgradeEvent)
	for _, ev := range run.Events {
		observed[evKey{ev.Block, ev.Proxy}] = append(observed[evKey{ev.Block, ev.Proxy}], ev)
	}
	expected := 0
	for _, ge := range tl.Events {
		if ge.Deploy {
			continue
		}
		expected++
		evs := observed[evKey{ge.Block, ge.Proxy}]
		if len(evs) != 1 {
			bad(ge.Proxy, "scripted upgrade at block %d observed %d time(s), want exactly once", ge.Block, len(evs))
			continue
		}
		ev := evs[0]
		if ev.Item == nil || !ev.Item.Report.IsProxy {
			bad(ge.Proxy, "upgrade at block %d re-analyzed to a non-proxy verdict", ge.Block)
			continue
		}
		if ev.Item.Report.Logic != ge.Logic {
			bad(ge.Proxy, "upgrade at block %d resolved logic %v, scripted %v",
				ge.Block, ev.Item.Report.Logic.Hex(), ge.Logic.Hex())
		}
		if ev.Item.Pair == nil {
			bad(ge.Proxy, "upgrade at block %d carries no pair analysis", ge.Block)
			continue
		}
		if got := pairCollides(*ev.Item.Pair); got != ge.Collides {
			bad(ge.Proxy, "upgrade at block %d reported collision=%v, scripted window says %v",
				ge.Block, got, ge.Collides)
		}
	}
	if len(run.Events) != expected {
		bad(etypes.Address{}, "%d upgrade events delivered for %d scripted upgrades", len(run.Events), expected)
	}

	// 2. Slot-kind proxies: the final upgrade's history must cover every
	// scripted logic version.
	for _, tp := range tl.Proxies {
		if tp.Kind == gen.TimelineBeacon || len(tp.Steps) < 2 {
			continue
		}
		final := tp.Steps[len(tp.Steps)-1]
		evs := observed[evKey{final.Block, tp.Address}]
		if len(evs) != 1 || evs[0].Item == nil {
			continue // already reported above
		}
		hist := evs[0].Item.History
		if hist == nil {
			bad(tp.Address, "final upgrade carries no recovered history")
			continue
		}
		got := make(map[etypes.Address]bool, len(hist.Pairs))
		for _, pa := range hist.Pairs {
			got[pa.Logic] = true
		}
		for i, s := range tp.Steps {
			if !got[s.Logic] {
				bad(tp.Address, "recovered history misses scripted logic #%d (%v)", i, s.Logic.Hex())
			}
		}
	}

	// 3. Final parity: warm follower detector vs cold end-state analysis,
	// with zero warm emulations. The cold baseline reads the chain directly
	// (fault-free even in chaos mode — the follower owes clean results
	// either way below the retry budget).
	var warmStats pipeline.Stats
	warm := det.AnalyzeAllWithOptions(tl.Registry, proxion.AnalyzeOptions{
		WithHistory: true, Stats: &warmStats,
	})
	cold := proxion.NewDetector(tl.Chain).AnalyzeAllWithOptions(tl.Registry, proxion.AnalyzeOptions{
		WithHistory: true,
	})
	run.Mismatches = append(run.Mismatches, diffReports("watch", cold.Reports, warm.Reports)...)
	run.Mismatches = append(run.Mismatches, diffPairs("watch", cold.Pairs, warm.Pairs)...)
	run.Mismatches = append(run.Mismatches, diffHistories("watch", cold.Histories, warm.Histories)...)
	if n := warmStats.Emulations.Load(); n != 0 {
		bad(etypes.Address{}, "warm end-state run re-emulated %d contract(s); the follower's incremental state is incomplete", n)
	}
	return run
}

// pairCollides is the scripted ground truth's notion of a collision: any
// function or storage finding.
func pairCollides(pa proxion.PairAnalysis) bool {
	return len(pa.Functions) > 0 || len(pa.Storage) > 0
}

// CheckWatchParity runs the watch-parity oracle fault-free and under the
// below-budget Mixed chaos profile, seeded from the corpus config.
func CheckWatchParity(c *gen.Corpus) []Mismatch {
	out := WatchParity(gen.TimelineConfig{Seed: c.Config.Seed}, false).Mismatches
	out = append(out, WatchParity(gen.TimelineConfig{Seed: c.Config.Seed}, true).Mismatches...)
	return out
}
