package oracle

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/gen"
)

// TestInterpParityFixedSeeds runs the interpreter lockstep layer alone on
// the pinned seeds (Run also includes it; this gives the layer its own
// failure line and runs the full default taxonomy — diamonds and beacons
// included — even when other layers regress).
func TestInterpParityFixedSeeds(t *testing.T) {
	for _, seed := range fixedSeeds {
		c := gen.Generate(gen.Config{Seed: seed})
		if ms := CheckInterpParity(c); len(ms) > 0 {
			t.Errorf("%s", Format(c, ms))
		}
	}
}

// TestInterpParitySweep is the nightly widening: INTERP_SWEEP fresh seeds
// (default 100), disjoint from both the fixed set and the oracle sweep's
// range. Skipped under -short.
func TestInterpParitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("interp sweep skipped in -short mode")
	}
	n := 100
	if env := os.Getenv("INTERP_SWEEP"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("bad INTERP_SWEEP=%q: %v", env, err)
		}
		n = v
	}
	for i := 0; i < n; i++ {
		seed := int64(2_000_000 + i)
		c := gen.Generate(gen.Config{Seed: seed})
		if ms := CheckInterpParity(c); len(ms) > 0 {
			t.Errorf("%s", Format(c, ms))
			if len(ms) > 20 {
				t.Fatalf("aborting sweep after a badly failing seed")
			}
		}
	}
}
