package oracle

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/etypes"
	"repro/internal/gen"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

// abiClobber is the injected writer's interface; the name is reserved (no
// generated identifier lacks a numeric suffix), so it collides with nothing.
func abiClobber() abi.Function { return abi.Function{Name: "metamorphicClobber"} }

// The metamorphic layer perturbs a generated pair in ways with a known
// effect on the collision verdicts and checks that — and only that —
// effect:
//
//   - renaming a non-colliding logic function must change nothing;
//   - copying a proxy function's prototype into the logic contract must add
//     exactly that selector to the function collisions;
//   - adding a logic write whose field boundaries conflict with a proxy
//     access must flip the storage-collision verdict on.
//
// Each helper mutates the corpus in place (recompile, reinstall,
// republish), compares before/after pair analyses on fresh detectors, and
// restores the original state before returning. The bool result reports
// whether the label met the perturbation's preconditions.

// cloneContract deep-copies the mutable parts of a source contract.
func cloneContract(src *solc.Contract) *solc.Contract {
	cp := *src
	cp.Vars = append([]solc.Var(nil), src.Vars...)
	cp.Funcs = append([]solc.Func(nil), src.Funcs...)
	cp.DecoyPush4 = append([][4]byte(nil), src.DecoyPush4...)
	return &cp
}

// pairOf analyzes the label's pair with a fresh detector (no state shared
// across the mutation boundary).
func pairOf(c *gen.Corpus, l *gen.Label) proxion.PairAnalysis {
	return proxion.NewDetector(c.Chain).AnalyzePair(l.Address, l.Logic, c.Registry)
}

// swapLogic installs a mutated logic source and returns a restore func.
func swapLogic(c *gen.Corpus, logicL *gen.Label, mutated *solc.Contract) func() {
	c.Chain.InstallContract(logicL.Address, solc.MustCompile(mutated))
	if logicL.HasSource {
		c.Registry.Publish(logicL.Address, mutated, true)
	}
	return func() {
		c.Chain.InstallContract(logicL.Address, logicL.Code)
		if logicL.HasSource {
			c.Registry.Publish(logicL.Address, logicL.Source, true)
		}
	}
}

func metaMismatch(addr etypes.Address, format string, args ...any) Mismatch {
	return Mismatch{Addr: addr, Layer: "metamorphic", Detail: fmt.Sprintf(format, args...)}
}

// MetamorphicRename renames one non-colliding logic function and requires
// every collision verdict to stay put.
func MetamorphicRename(c *gen.Corpus, l *gen.Label) ([]Mismatch, bool) {
	logicL := c.ByAddr[l.Logic]
	if !l.Detectable || logicL == nil || logicL.Source == nil {
		return nil, false
	}
	injected := make(map[[4]byte]bool, len(l.FuncCollisions))
	for _, s := range l.FuncCollisions {
		injected[s] = true
	}
	idx := -1
	for i, f := range logicL.Source.Funcs {
		if !injected[f.ABI.Selector()] {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}

	before := pairOf(c, l)
	cp := cloneContract(logicL.Source)
	cp.Funcs[idx].ABI.Name += "_renamed"
	restore := swapLogic(c, logicL, cp)
	defer restore()
	after := pairOf(c, l)

	var out []Mismatch
	if b, a := selectorSet(before.Functions), selectorSet(after.Functions); b != a {
		out = append(out, metaMismatch(l.Address,
			"renaming non-colliding %q changed function collisions [%s] -> [%s]",
			logicL.Source.Funcs[idx].ABI.Prototype(), b, a))
	}
	if b, a := len(before.Storage) > 0, len(after.Storage) > 0; b != a {
		out = append(out, metaMismatch(l.Address,
			"renaming non-colliding function changed storage collision %v -> %v", b, a))
	}
	return out, true
}

// MetamorphicInjectFunction copies one proxy function prototype into the
// logic contract and requires exactly that selector to join the collisions.
func MetamorphicInjectFunction(c *gen.Corpus, l *gen.Label) ([]Mismatch, bool) {
	logicL := c.ByAddr[l.Logic]
	if !l.Detectable || logicL == nil || logicL.Source == nil || l.Source == nil {
		return nil, false
	}
	before := pairOf(c, l)
	existing := make(map[[4]byte]bool, len(before.Functions))
	for _, fc := range before.Functions {
		existing[fc.Selector] = true
	}
	var pick *solc.Func
	for i := range l.Source.Funcs {
		if !existing[l.Source.Funcs[i].ABI.Selector()] {
			pick = &l.Source.Funcs[i]
			break
		}
	}
	if pick == nil {
		return nil, false
	}

	cp := cloneContract(logicL.Source)
	cp.Funcs = append(cp.Funcs, solc.Func{
		ABI:  pick.ABI,
		Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(9)}},
	})
	restore := swapLogic(c, logicL, cp)
	defer restore()
	after := pairOf(c, l)

	want := make([][4]byte, 0, len(before.Functions)+1)
	for _, fc := range before.Functions {
		want = append(want, fc.Selector)
	}
	want = append(want, pick.ABI.Selector())

	var out []Mismatch
	if g, w := selectorSet(after.Functions), selectorKey(want); g != w {
		out = append(out, metaMismatch(l.Address,
			"injecting %q: collisions [%s], want exactly [%s]", pick.ABI.Prototype(), g, w))
	}
	return out, true
}

// MetamorphicInjectStorage adds a logic write whose field boundaries
// conflict with an observed proxy storage access and requires the
// storage-collision verdict to flip on (and the function verdicts to stay).
func MetamorphicInjectStorage(c *gen.Corpus, l *gen.Label) ([]Mismatch, bool) {
	logicL := c.ByAddr[l.Logic]
	if !l.Detectable || l.StorageCollision || logicL == nil || logicL.Source == nil {
		return nil, false
	}
	accs := proxion.ExtractStorageAccesses(l.Code)
	if len(accs) == 0 {
		return nil, false
	}
	before := pairOf(c, l)
	if len(before.Storage) != 0 {
		// Label says clean but the analyzer found a collision: the
		// differential layer owns that disagreement, not this one.
		return nil, false
	}
	// A full-slot write mismatches any field except (0,32); shrink to a
	// 20-byte field in that case. Offset 0 guarantees overlap either way.
	target := accs[0]
	size := 32
	if target.Offset == 0 && target.Size == 32 {
		size = 20
	}

	cp := cloneContract(logicL.Source)
	cp.Funcs = append(cp.Funcs, solc.Func{
		ABI: abiClobber(),
		Body: []solc.Stmt{solc.AssignCallerToSlot{
			Slot: target.Slot, Offset: 0, Size: size,
		}},
	})
	restore := swapLogic(c, logicL, cp)
	defer restore()
	after := pairOf(c, l)

	var out []Mismatch
	if len(after.Storage) == 0 {
		out = append(out, metaMismatch(l.Address,
			"injected %d-byte write over proxy access slot=%x field=%d+%d, but no storage collision detected",
			size, target.Slot, target.Offset, target.Size))
	}
	if b, a := selectorSet(before.Functions), selectorSet(after.Functions); b != a {
		out = append(out, metaMismatch(l.Address,
			"storage injection changed function collisions [%s] -> [%s]", b, a))
	}
	return out, true
}
