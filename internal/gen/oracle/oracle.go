// Package oracle is the differential harness over generated corpora: every
// gen.Corpus carries ground truth by construction, so the package can
// compare (1) detector verdicts against labels, (2) the streaming pipeline
// engine against a sequential reference, (3) dedup-cache-on against
// cache-off runs, and report each disagreement as a Mismatch pinpointing
// the address, the layer, and the difference.
//
// Every mismatch message embeds the corpus' Config.Repro() string, so a
// failing randomized sweep is reproducible (and minimizable with
// gen.Minimize) from the test log alone.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/etypes"
	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/proxion"
)

// Mismatch is one disagreement between a verdict source and its reference.
type Mismatch struct {
	// Addr is the contract the disagreement is about.
	Addr etypes.Address
	// Layer names the comparison that failed: "detector", "pair",
	// "streaming", "cache", "metamorphic".
	Layer string
	// Detail is the human-readable difference.
	Detail string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("[%s] %v: %s", m.Layer, m.Addr.Hex(), m.Detail)
}

// Format renders mismatches for a test failure, prefixed with the corpus'
// reproduction hint.
func Format(c *gen.Corpus, ms []Mismatch) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d mismatch(es) on %s:\n", len(ms), c.Config.Repro())
	for _, m := range ms {
		b.WriteString("  " + m.String() + "\n")
	}
	return b.String()
}

// Reference is the trusted baseline: a fresh detector driven sequentially,
// one Check per contract in deterministic chain order and one AnalyzePair
// per detected proxy. It exercises none of the streaming machinery and
// none of the verdict-dedup cache.
type Reference struct {
	Reports []proxion.Report
	Pairs   []proxion.PairAnalysis
}

// SequentialReference computes the baseline for a corpus.
func SequentialReference(c *gen.Corpus) *Reference {
	d := proxion.NewDetector(c.Chain)
	ref := &Reference{}
	for _, addr := range c.Chain.Contracts() {
		rep := d.Check(addr)
		ref.Reports = append(ref.Reports, rep)
		if rep.IsProxy {
			ref.Pairs = append(ref.Pairs, d.AnalyzePair(addr, rep.Logic, c.Registry))
		}
	}
	return ref
}

// CheckDetector compares detection reports against the corpus labels.
func CheckDetector(c *gen.Corpus, reports []proxion.Report) []Mismatch {
	var out []Mismatch
	if len(reports) != len(c.Labels) {
		out = append(out, Mismatch{Layer: "detector",
			Detail: fmt.Sprintf("%d reports for %d labeled contracts", len(reports), len(c.Labels))})
	}
	for _, rep := range reports {
		l, ok := c.ByAddr[rep.Address]
		if !ok {
			out = append(out, Mismatch{Addr: rep.Address, Layer: "detector", Detail: "report for unlabeled address"})
			continue
		}
		out = append(out, checkReport(l, rep)...)
	}
	return out
}

// checkReport compares one report with its ground-truth label.
func checkReport(l *gen.Label, rep proxion.Report) []Mismatch {
	var out []Mismatch
	bad := func(format string, args ...any) {
		out = append(out, Mismatch{Addr: l.Address, Layer: "detector",
			Detail: fmt.Sprintf("%v: ", l.Shape) + fmt.Sprintf(format, args...)})
	}
	if rep.HasDelegateCall != l.HasDelegateCall {
		bad("HasDelegateCall=%v, label says %v", rep.HasDelegateCall, l.HasDelegateCall)
	}
	if rep.EmulationErr != nil {
		bad("unexpected emulation error: %v", rep.EmulationErr)
	}
	if rep.IsProxy != l.Detectable {
		bad("IsProxy=%v, label Detectable=%v (reason: %s)", rep.IsProxy, l.Detectable, rep.Reason)
		return out
	}
	if !l.Detectable {
		return out
	}
	if rep.Logic != l.Logic {
		bad("logic %v, label %v", rep.Logic.Hex(), l.Logic.Hex())
	}
	wantTarget := proxion.TargetHardcoded
	if l.TargetStorage {
		wantTarget = proxion.TargetStorage
	}
	if rep.Target != wantTarget {
		bad("target source %v, label %v", rep.Target, wantTarget)
	}
	if l.TargetStorage && rep.ImplSlot != l.ImplSlot {
		bad("impl slot %x, label %x", rep.ImplSlot, l.ImplSlot)
	}
	if got := rep.Standard.String(); got != l.Standard {
		bad("standard %q, label %q", got, l.Standard)
	}
	return out
}

// CheckPairs compares pair analyses of detected proxies against the
// injected collision ground truth.
func CheckPairs(c *gen.Corpus, pairs []proxion.PairAnalysis) []Mismatch {
	var out []Mismatch
	analyzed := make(map[etypes.Address]bool)
	for _, pa := range pairs {
		l, ok := c.ByAddr[pa.Proxy]
		if !ok {
			out = append(out, Mismatch{Addr: pa.Proxy, Layer: "pair", Detail: "pair for unlabeled proxy"})
			continue
		}
		analyzed[pa.Proxy] = true
		bad := func(format string, args ...any) {
			out = append(out, Mismatch{Addr: pa.Proxy, Layer: "pair",
				Detail: fmt.Sprintf("%v: ", l.Shape) + fmt.Sprintf(format, args...)})
		}
		if pa.Logic != l.Logic {
			bad("pair logic %v, label %v", pa.Logic.Hex(), l.Logic.Hex())
		}
		if got, want := selectorSet(pa.Functions), selectorKey(l.FuncCollisions); got != want {
			bad("function collisions [%s], injected [%s]", got, want)
		}
		if got := len(pa.Storage) > 0; got != l.StorageCollision {
			bad("storage collision detected=%v, injected=%v (%d slots)", got, l.StorageCollision, len(pa.Storage))
		}
	}
	for _, l := range c.Labels {
		if l.Detectable && !analyzed[l.Address] {
			out = append(out, Mismatch{Addr: l.Address, Layer: "pair",
				Detail: fmt.Sprintf("%v: detectable proxy missing from pair analyses", l.Shape)})
		}
	}
	return out
}

func selectorSet(fcs []proxion.FunctionCollision) string {
	sels := make([][4]byte, len(fcs))
	for i, fc := range fcs {
		sels[i] = fc.Selector
	}
	return selectorKey(sels)
}

func selectorKey(sels [][4]byte) string {
	hex := make([]string, len(sels))
	for i, s := range sels {
		hex[i] = fmt.Sprintf("%x", s)
	}
	sort.Strings(hex)
	return strings.Join(hex, ",")
}

// formatReport renders every observable field of a report, so differential
// comparisons collapse to string equality with readable diffs.
func formatReport(rep proxion.Report) string {
	err := "<nil>"
	if rep.EmulationErr != nil {
		err = rep.EmulationErr.Error()
	}
	resolveErr := "<nil>"
	if rep.ResolveErr != nil {
		resolveErr = rep.ResolveErr.Error()
	}
	return fmt.Sprintf("proxy=%v logic=%v target=%v slot=%x std=%v dc=%v err=%s unresolved=%v rerr=%s reason=%q",
		rep.IsProxy, rep.Logic.Hex(), rep.Target, rep.ImplSlot, rep.Standard,
		rep.HasDelegateCall, err, rep.Unresolved, resolveErr, rep.Reason)
}

// formatPair renders every observable field of a pair analysis.
func formatPair(pa proxion.PairAnalysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "logic=%v psrc=%v lsrc=%v verified=%v", pa.Logic.Hex(),
		pa.ProxyHasSource, pa.LogicHasSource, pa.ExploitVerified)
	for _, fc := range pa.Functions {
		fmt.Fprintf(&b, " fn{%x %q %q}", fc.Selector, fc.ProxyProto, fc.LogicProto)
	}
	for _, sc := range pa.Storage {
		fmt.Fprintf(&b, " slot{%x p=%d+%d l=%d+%d guard=%v expl=%v ver=%v}",
			sc.Slot, sc.ProxyOffset, sc.ProxySize, sc.LogicOffset, sc.LogicSize,
			sc.GuardInvolved, sc.Exploitable, sc.Verified)
	}
	return b.String()
}

// diffReports compares two report sets index-by-index (both are in chain
// order).
func diffReports(layer string, a, b []proxion.Report) []Mismatch {
	var out []Mismatch
	if len(a) != len(b) {
		out = append(out, Mismatch{Layer: layer,
			Detail: fmt.Sprintf("report counts differ: %d vs %d", len(a), len(b))})
		return out
	}
	for i := range a {
		if a[i].Address != b[i].Address {
			out = append(out, Mismatch{Addr: a[i].Address, Layer: layer,
				Detail: fmt.Sprintf("report order diverges at %d: %v vs %v", i, a[i].Address.Hex(), b[i].Address.Hex())})
			continue
		}
		if fa, fb := formatReport(a[i]), formatReport(b[i]); fa != fb {
			out = append(out, Mismatch{Addr: a[i].Address, Layer: layer,
				Detail: fmt.Sprintf("reports differ:\n    a: %s\n    b: %s", fa, fb)})
		}
	}
	return out
}

// diffPairs compares two pair-analysis sets keyed by proxy address (stage
// concurrency may reorder them).
func diffPairs(layer string, a, b []proxion.PairAnalysis) []Mismatch {
	var out []Mismatch
	am := make(map[etypes.Address]proxion.PairAnalysis, len(a))
	for _, pa := range a {
		am[pa.Proxy] = pa
	}
	seen := make(map[etypes.Address]bool, len(b))
	for _, pb := range b {
		seen[pb.Proxy] = true
		pa, ok := am[pb.Proxy]
		if !ok {
			out = append(out, Mismatch{Addr: pb.Proxy, Layer: layer, Detail: "pair only in second run"})
			continue
		}
		if fa, fb := formatPair(pa), formatPair(pb); fa != fb {
			out = append(out, Mismatch{Addr: pb.Proxy, Layer: layer,
				Detail: fmt.Sprintf("pairs differ:\n    a: %s\n    b: %s", fa, fb)})
		}
	}
	for _, pa := range a {
		if !seen[pa.Proxy] {
			out = append(out, Mismatch{Addr: pa.Proxy, Layer: layer, Detail: "pair only in first run"})
		}
	}
	return out
}

// CheckStreaming runs the streaming engine with the given options and
// compares it against the sequential reference.
func CheckStreaming(c *gen.Corpus, ref *Reference, opts proxion.AnalyzeOptions) []Mismatch {
	res := proxion.NewDetector(c.Chain).AnalyzeAllWithOptions(c.Registry, opts)
	out := diffReports("streaming", ref.Reports, res.Reports)
	out = append(out, diffPairs("streaming", ref.Pairs, res.Pairs)...)
	return out
}

// CheckCacheParity runs the streaming engine twice on fresh detectors —
// verdict-dedup cache enabled and disabled — and requires identical output.
func CheckCacheParity(c *gen.Corpus, opts proxion.AnalyzeOptions) []Mismatch {
	on := opts
	on.DisableDedup = false
	off := opts
	off.DisableDedup = true
	ron := proxion.NewDetector(c.Chain).AnalyzeAllWithOptions(c.Registry, on)
	roff := proxion.NewDetector(c.Chain).AnalyzeAllWithOptions(c.Registry, off)
	out := diffReports("cache", ron.Reports, roff.Reports)
	out = append(out, diffPairs("cache", ron.Pairs, roff.Pairs)...)
	return out
}

// CheckStoreParity proves warm-start equivalence — the property the
// proxiond verdict store leans on. It runs the engine cold, exports the
// verdict cache, round-trips every entry through its binary wire encoding
// (the exact bytes the disk store persists), imports the decoded entries
// into a fresh detector, and requires the warm run to produce identical
// reports and pairs with zero additional emulations: every verdict must
// come from the restored cache, never from re-analysis.
func CheckStoreParity(c *gen.Corpus, opts proxion.AnalyzeOptions) []Mismatch {
	var coldStats pipeline.Stats
	cold := opts
	cold.Stats = &coldStats
	dcold := proxion.NewDetector(c.Chain)
	rcold := dcold.AnalyzeAllWithOptions(c.Registry, cold)

	var out []Mismatch
	entries := dcold.ExportVerdicts()
	restored := make([]proxion.CacheEntry, 0, len(entries))
	for _, e := range entries {
		blob, err := e.MarshalBinary()
		if err != nil {
			out = append(out, Mismatch{Layer: "store",
				Detail: fmt.Sprintf("entry %x does not marshal: %v", e.CodeHash[:4], err)})
			continue
		}
		var back proxion.CacheEntry
		if err := back.UnmarshalBinary(blob); err != nil {
			out = append(out, Mismatch{Layer: "store",
				Detail: fmt.Sprintf("entry %x does not round-trip: %v", e.CodeHash[:4], err)})
			continue
		}
		restored = append(restored, back)
	}
	if len(out) > 0 {
		return out
	}

	var warmStats pipeline.Stats
	warm := opts
	warm.Stats = &warmStats
	dwarm := proxion.NewDetector(c.Chain)
	dwarm.ImportVerdicts(restored)
	rwarm := dwarm.AnalyzeAllWithOptions(c.Registry, warm)

	out = diffReports("store", rcold.Reports, rwarm.Reports)
	out = append(out, diffPairs("store", rcold.Pairs, rwarm.Pairs)...)
	if w := warmStats.Emulations.Load(); !opts.DisableDedup && w != 0 {
		out = append(out, Mismatch{Layer: "store",
			Detail: fmt.Sprintf("warm run re-emulated %d contracts (cold ran %d); restored cache did not cover the corpus",
				w, coldStats.Emulations.Load())})
	}
	return out
}

// Run executes every differential layer on one corpus: labels vs the
// sequential reference, streaming vs sequential, cache-on vs cache-off,
// warm-store vs cold analysis, the static analyzer vs the labels,
// block-by-block following vs cold end-state analysis, and the fast
// interpreter vs the reference loop (seeded from the corpus config).
func Run(c *gen.Corpus) []Mismatch {
	ref := SequentialReference(c)
	out := CheckDetector(c, ref.Reports)
	out = append(out, CheckPairs(c, ref.Pairs)...)
	out = append(out, CheckStreaming(c, ref, proxion.AnalyzeOptions{})...)
	out = append(out, CheckCacheParity(c, proxion.AnalyzeOptions{})...)
	out = append(out, CheckStoreParity(c, proxion.AnalyzeOptions{})...)
	out = append(out, CheckStaticParity(c)...)
	out = append(out, CheckWatchParity(c)...)
	out = append(out, CheckInterpParity(c)...)
	return out
}
