package oracle

import (
	"fmt"
	"strings"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/faultchain"
	"repro/internal/gen"
	"repro/internal/proxion"
)

// FaultRun is the outcome of one faulted analysis next to its fault-free
// baseline: the differential verdict plus the resilience activity behind
// it, so chaos tests can assert both "results survived" and "faults
// actually fired".
type FaultRun struct {
	// Mismatches is the differential verdict; empty means the comparison
	// held.
	Mismatches []Mismatch
	// Injected is what the fault injector actually did.
	Injected faultchain.InjectorStats
	// Metrics is the resilient client's counter snapshot.
	Metrics faultchain.Metrics
	// Result is the faulted run's output.
	Result *proxion.Result
}

// analyzeFaulted runs the streaming engine over the corpus through a
// fault-injecting resilient client.
func analyzeFaulted(c *gen.Corpus, sched faultchain.Schedule, copts faultchain.Options, opts proxion.AnalyzeOptions) (*proxion.Result, *faultchain.Client, *faultchain.Injector) {
	client, inj := faultchain.NewResilientReader(c.Chain, &sched, copts)
	res := proxion.NewDetector(client).AnalyzeAllWithOptions(c.Registry, opts)
	return res, client, inj
}

// formatHistory renders a historical analysis for differential comparison.
func formatHistory(h proxion.HistoricalAnalysis) string {
	var b strings.Builder
	for _, pa := range h.Pairs {
		b.WriteString(" [" + formatPair(pa) + "]")
	}
	return b.String()
}

// diffHistories compares two history sets keyed by proxy address.
func diffHistories(layer string, a, b []proxion.HistoricalAnalysis) []Mismatch {
	var out []Mismatch
	am := make(map[etypes.Address]proxion.HistoricalAnalysis, len(a))
	for _, h := range a {
		am[h.Proxy] = h
	}
	seen := make(map[etypes.Address]bool, len(b))
	for _, hb := range b {
		seen[hb.Proxy] = true
		ha, ok := am[hb.Proxy]
		if !ok {
			out = append(out, Mismatch{Addr: hb.Proxy, Layer: layer, Detail: "history only in second run"})
			continue
		}
		if fa, fb := formatHistory(ha), formatHistory(hb); fa != fb {
			out = append(out, Mismatch{Addr: hb.Proxy, Layer: layer,
				Detail: fmt.Sprintf("histories differ:\n    a:%s\n    b:%s", fa, fb)})
		}
	}
	for _, ha := range a {
		if !seen[ha.Proxy] {
			out = append(out, Mismatch{Addr: ha.Proxy, Layer: layer, Detail: "history only in first run"})
		}
	}
	return out
}

// CheckFaultParity is the faults-on/faults-off differential: it runs the
// streaming engine fault-free and again through a fault-injecting resilient
// client, and requires byte-identical reports, pairs and histories plus
// matching logical API-call counts — the guarantee the resilience layer
// owes whenever the schedule's fault depth stays below the client's retry
// budget. Any Unresolved contract in that regime is itself a mismatch.
func CheckFaultParity(c *gen.Corpus, sched faultchain.Schedule, copts faultchain.Options, opts proxion.AnalyzeOptions) FaultRun {
	base := proxion.NewDetector(c.Chain).AnalyzeAllWithOptions(c.Registry, opts)
	res, client, inj := analyzeFaulted(c, sched, copts, opts)

	out := diffReports("faults", base.Reports, res.Reports)
	out = append(out, diffPairs("faults", base.Pairs, res.Pairs)...)
	out = append(out, diffHistories("faults", base.Histories, res.Histories)...)
	if a, b := base.Stats.StorageAPICalls, res.Stats.StorageAPICalls; a != b {
		out = append(out, Mismatch{Layer: "faults",
			Detail: fmt.Sprintf("logical getStorageAt counts diverge under retries: fault-free %d vs faulted %d", a, b)})
	}
	if n := res.Stats.Unresolved; n != 0 {
		out = append(out, Mismatch{Layer: "faults",
			Detail: fmt.Sprintf("%d contract(s) unresolved below the retry budget", n)})
	}
	return FaultRun{Mismatches: out, Injected: inj.Stats(), Metrics: client.Metrics(), Result: res}
}

// CheckFaultDegradation is the above-budget invariant: when fault depth
// exceeds the retry budget, every contract must either match the fault-free
// baseline exactly or be explicitly Unresolved with the error attached —
// never silently wrong, never missing from the totals.
func CheckFaultDegradation(c *gen.Corpus, sched faultchain.Schedule, copts faultchain.Options, opts proxion.AnalyzeOptions) FaultRun {
	base := proxion.NewDetector(c.Chain).AnalyzeAllWithOptions(c.Registry, opts)
	res, client, inj := analyzeFaulted(c, sched, copts, opts)

	var out []Mismatch
	if len(res.Reports) != len(base.Reports) {
		out = append(out, Mismatch{Layer: "faults",
			Detail: fmt.Sprintf("faulted run dropped contracts: %d reports vs %d", len(res.Reports), len(base.Reports))})
		return FaultRun{Mismatches: out, Injected: inj.Stats(), Metrics: client.Metrics(), Result: res}
	}
	unresolved := 0
	for i, rep := range res.Reports {
		if rep.Address != base.Reports[i].Address {
			out = append(out, Mismatch{Addr: rep.Address, Layer: "faults",
				Detail: fmt.Sprintf("report order diverges at %d", i)})
			continue
		}
		if rep.Unresolved {
			unresolved++
			if rep.ResolveErr == nil {
				out = append(out, Mismatch{Addr: rep.Address, Layer: "faults",
					Detail: "unresolved report carries no error"})
			}
			continue
		}
		if fa, fb := formatReport(base.Reports[i]), formatReport(rep); fa != fb {
			out = append(out, Mismatch{Addr: rep.Address, Layer: "faults",
				Detail: fmt.Sprintf("resolved report differs from fault-free baseline:\n    a: %s\n    b: %s", fa, fb)})
		}
	}
	// Pairs the faulted run did complete must match the baseline's.
	basePairs := make(map[string]string)
	for _, pa := range base.Pairs {
		basePairs[pa.Proxy.Hex()] = formatPair(pa)
	}
	for _, pa := range res.Pairs {
		want, ok := basePairs[pa.Proxy.Hex()]
		if !ok {
			out = append(out, Mismatch{Addr: pa.Proxy, Layer: "faults",
				Detail: "faulted run produced a pair absent from the fault-free baseline"})
			continue
		}
		if got := formatPair(pa); got != want {
			out = append(out, Mismatch{Addr: pa.Proxy, Layer: "faults",
				Detail: fmt.Sprintf("completed pair differs from fault-free baseline:\n    a: %s\n    b: %s", want, got)})
		}
	}
	if int64(unresolved) != res.Stats.Unresolved {
		out = append(out, Mismatch{Layer: "faults",
			Detail: fmt.Sprintf("stats count %d unresolved, reports carry %d", res.Stats.Unresolved, unresolved)})
	}
	return FaultRun{Mismatches: out, Injected: inj.Stats(), Metrics: client.Metrics(), Result: res}
}

// CheckFaultParitySequential is CheckFaultParity over the sequential
// detection path (one Check per contract, in chain order) instead of the
// streaming engine. Being single-threaded, the injector's first-touch fault
// order is fully deterministic, which makes this the replay to hand to
// faultchain.MinimizeSchedule: a failing schedule shrinks to the minimal
// Limit that still reproduces.
func CheckFaultParitySequential(c *gen.Corpus, sched faultchain.Schedule, copts faultchain.Options) []Mismatch {
	ref := SequentialReference(c)
	client, _ := faultchain.NewResilientReader(c.Chain, &sched, copts)
	d := proxion.NewDetector(client)
	got := &Reference{}
	for _, addr := range c.Chain.Contracts() {
		rep := d.Check(addr)
		got.Reports = append(got.Reports, rep)
		if rep.IsProxy {
			// Above the budget a pair analysis can terminally fail; it then
			// surfaces as a missing pair in the diff rather than a crash.
			var pa proxion.PairAnalysis
			if re := chain.CaptureReadError(func() { pa = d.AnalyzePair(addr, rep.Logic, c.Registry) }); re == nil {
				got.Pairs = append(got.Pairs, pa)
			}
		}
	}
	out := diffReports("faults-seq", ref.Reports, got.Reports)
	out = append(out, diffPairs("faults-seq", ref.Pairs, got.Pairs)...)
	return out
}
