package oracle

import (
	"testing"

	"repro/internal/gen"
)

// TestStaticParityFullTaxonomy runs the static↔dynamic cross-check on
// corpora large enough that the guaranteed-coverage prefix installs every
// taxonomy shape — positives, negatives, and the shapes emulation alone
// cannot settle (diamonds, dead delegates).
func TestStaticParityFullTaxonomy(t *testing.T) {
	for _, seed := range fixedSeeds {
		c := gen.Generate(gen.Config{Seed: seed, Contracts: 32})
		present := make(map[gen.Shape]bool)
		for _, s := range c.Shapes() {
			present[s] = true
		}
		for _, want := range []gen.Shape{
			gen.ShapeMinimalProxy, gen.ShapeHardcodedForwarder,
			gen.ShapeEIP1967Proxy, gen.ShapeEIP1822Proxy, gen.ShapeAdHocProxy,
			gen.ShapeDiamond, gen.ShapeLibraryCaller,
			gen.ShapeDispatcherOnly, gen.ShapeDeadDelegate,
		} {
			if !present[want] {
				t.Fatalf("seed %d: corpus missing shape %v", seed, want)
			}
		}
		if ms := CheckStaticParity(c); len(ms) > 0 {
			t.Errorf("seed %d:\n%s", seed, Format(c, ms))
		}
	}
}
