package gen

// Minimize shrinks a failing configuration to the shortest generation
// prefix that still fails, by binary search over Contracts.
//
// It relies on the generator's prefix-stability guarantee: the corpus at k
// units is byte-identical to the first k units of the corpus at n > k, so a
// failure caused by unit j reproduces at every prefix length > j and the
// predicate is monotone in Contracts. The returned config pins the failing
// unit as the corpus' last: regenerating it gives the smallest reproducer,
// and its final label(s) are the ones to stare at.
//
// fails must be a pure function of the generated corpus (run the analysis,
// report whether the failure is present). The second return is false when
// cfg does not fail at all.
func Minimize(cfg Config, fails func(Config) bool) (Config, bool) {
	cfg = cfg.withDefaults()
	if !fails(cfg) {
		return cfg, false
	}
	// Invariant: fails at hi; lo is the smallest untested size.
	lo, hi := 1, cfg.Contracts
	for lo < hi {
		mid := lo + (hi-lo)/2
		probe := cfg
		probe.Contracts = mid
		if fails(probe) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	out := cfg
	out.Contracts = hi
	return out, true
}
