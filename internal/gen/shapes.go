package gen

import (
	"repro/internal/abi"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/solc"
	"repro/internal/u256"
)

// slotPlans are the layouts one storage slot can take. Every plan starts
// with a type at least 8 bytes wide and leaves fewer than 8 free bytes, so
// under Solidity packing rules consecutive plans can never bleed into each
// other's slots: each plan owns exactly one slot regardless of what follows.
var slotPlans = [][]solc.VarType{
	{solc.TypeUint256},
	{solc.TypeBytes32},
	{solc.TypeUint128, solc.TypeUint128},
	{solc.TypeAddress, solc.TypeUint64, solc.TypeUint32},
	{solc.TypeAddress, solc.TypeUint64},
	{solc.TypeUint64, solc.TypeUint64, solc.TypeUint64, solc.TypeUint32},
	{solc.TypeUint128, solc.TypeUint64, solc.TypeUint32},
}

// fullSlotTypes always start a fresh slot, so they are safe to append after
// any layout without disturbing earlier slots.
var fullSlotTypes = []solc.VarType{solc.TypeUint256, solc.TypeBytes32}

// randVars lays out nSlots independently planned storage slots.
func (g *generator) randVars(prefix string, nSlots int) []solc.Var {
	var vars []solc.Var
	for i := 0; i < nSlots; i++ {
		for _, t := range slotPlans[g.rng.Intn(len(slotPlans))] {
			vars = append(vars, solc.Var{Name: g.ident(prefix), Type: t})
		}
	}
	return vars
}

// accessors builds a random selection of getters and setters over vars.
// Every function name is freshly minted, so accessors never collide across
// contracts; only deliberately shared prototypes do.
func (g *generator) accessors(prefix string, vars []solc.Var) []solc.Func {
	var funcs []solc.Func
	for _, v := range vars {
		if g.rng.Intn(100) < 70 {
			funcs = append(funcs, solc.Func{
				ABI:  abi.Function{Name: g.ident(prefix + "Get")},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: v.Name}},
			})
		}
		if g.rng.Intn(100) < 50 {
			funcs = append(funcs, solc.Func{
				ABI:  abi.Function{Name: g.ident(prefix + "Set"), Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: v.Name, Arg: 0}},
			})
		}
	}
	return funcs
}

// constFunc is a guaranteed externally callable function, for shapes that
// must expose at least one selector.
func (g *generator) constFunc(prefix string, v uint64) solc.Func {
	return solc.Func{
		ABI:  abi.Function{Name: g.ident(prefix)},
		Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(v)}},
	}
}

// maybeDecoys sprinkles non-selector PUSH4 immediates into the contract,
// the pattern that defeats naive any-PUSH4 signature extraction.
func (g *generator) maybeDecoys(src *solc.Contract) {
	for n := g.rng.Intn(3); n > 0; n-- {
		var d [4]byte
		g.rng.Read(d[:])
		src.DecoyPush4 = append(src.DecoyPush4, d)
	}
}

// sourceDice rolls whether a contract's source is published.
func (g *generator) sourceDice() bool { return g.rng.Intn(100) < 70 }

// pairPlan is the collision ground truth a proxy/logic pair is built to.
type pairPlan struct {
	funcCollide    bool
	storageCollide bool
}

func (g *generator) rollPair() pairPlan {
	return pairPlan{
		funcCollide:    g.rng.Intn(100) < 45,
		storageCollide: g.rng.Intn(100) < 35,
	}
}

// pairShape is the source material of one proxy/logic pair with its
// injected collisions.
type pairShape struct {
	proxyVars  []solc.Var
	proxyFuncs []solc.Func
	logicVars  []solc.Var
	logicFuncs []solc.Func
	// selectors are the injected function collisions, ascending; storage
	// says the layouts were built to conflict. Zero values mean the pair
	// must analyze clean.
	selectors [][4]byte
	storage   bool
}

// buildPair assembles pair sources realizing the plan.
//
// Clean pairs use *identical type sequences* on both sides (different
// names): every field boundary matches, so overlapping accesses are always
// same-field and no storage collision can be detected. Colliding pairs
// re-create the Audius shape: the proxy's owner address occupies slot 0
// while the logic packs initializer bits into the same slot — mismatched
// overlapping boundaries by construction.
func (g *generator) buildPair(plan pairPlan) pairShape {
	var ps pairShape
	if plan.storageCollide {
		owner := g.ident("pOwner")
		ps.proxyVars = []solc.Var{{Name: owner, Type: solc.TypeAddress}}
		ps.proxyFuncs = []solc.Func{
			{
				ABI:  abi.Function{Name: g.ident("pOwnerOf")},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: owner}},
			},
			{
				ABI: abi.Function{Name: g.ident("pClaim")},
				Body: []solc.Stmt{
					solc.RequireCallerIs{Var: owner},
					solc.AssignCaller{Var: owner},
				},
			},
		}
		inited := g.ident("lInitialized")
		initing := g.ident("lInitializing")
		ps.logicVars = []solc.Var{
			{Name: inited, Type: solc.TypeBool},
			{Name: initing, Type: solc.TypeBool},
		}
		ps.logicFuncs = []solc.Func{
			{
				ABI: abi.Function{Name: g.ident("lInitialize")},
				Body: []solc.Stmt{
					solc.RequireVarZero{Var: inited},
					solc.AssignConst{Var: inited, Value: u256.One()},
				},
			},
			{
				ABI:  abi.Function{Name: g.ident("lInitializedRead")},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: inited}},
			},
		}
		ps.storage = true
		// Extra logic-only state past the colliding slot, full-slot only.
		for n := g.rng.Intn(2); n > 0; n-- {
			ps.logicVars = append(ps.logicVars, solc.Var{
				Name: g.ident("lPad"), Type: fullSlotTypes[g.rng.Intn(len(fullSlotTypes))],
			})
		}
	} else {
		nSlots := 1 + g.rng.Intn(3)
		for i := 0; i < nSlots; i++ {
			for _, t := range slotPlans[g.rng.Intn(len(slotPlans))] {
				ps.proxyVars = append(ps.proxyVars, solc.Var{Name: g.ident("p"), Type: t})
				ps.logicVars = append(ps.logicVars, solc.Var{Name: g.ident("l"), Type: t})
			}
		}
		ps.proxyFuncs = g.accessors("p", ps.proxyVars)
		ps.logicFuncs = g.accessors("l", ps.logicVars)
		// Logic-only trailing slots: they start past the shared region, so
		// the proxy never touches them.
		for n := g.rng.Intn(2); n > 0; n-- {
			v := solc.Var{Name: g.ident("lx"), Type: fullSlotTypes[g.rng.Intn(len(fullSlotTypes))]}
			ps.logicVars = append(ps.logicVars, v)
			ps.logicFuncs = append(ps.logicFuncs, solc.Func{
				ABI:  abi.Function{Name: g.ident("lxGet")},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: v.Name}},
			})
		}
	}
	if plan.funcCollide {
		shared := abi.Function{Name: g.ident("shared"), Params: []string{"uint256"}}
		ps.proxyFuncs = append(ps.proxyFuncs, solc.Func{
			ABI: shared, Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(1)}},
		})
		ps.logicFuncs = append(ps.logicFuncs, solc.Func{
			ABI: shared, Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(2)}},
		})
		ps.selectors = append(ps.selectors, shared.Selector())
	}
	return ps
}

// buildLogicAux deploys an auxiliary logic/library/facet contract.
func (g *generator) buildLogicAux(name string, vars []solc.Var, funcs []solc.Func) *Label {
	src := &solc.Contract{
		Name: name, Vars: vars, Funcs: funcs,
		Fallback: solc.Fallback{Kind: solc.FallbackRevert},
	}
	g.maybeDecoys(src)
	l := &Label{Shape: ShapeLogic, HasSource: g.sourceDice()}
	return g.compileInstall(l, src)
}

// buildUnit generates one unit: the primary contract of the given shape
// plus whatever auxiliaries it points at. Each builder draws from the rng
// in a self-contained sequence, which is what keeps corpora prefix-stable.
func (g *generator) buildUnit(s Shape) {
	switch s {
	case ShapeMinimalProxy:
		g.buildMinimalProxy()
	case ShapeHardcodedForwarder:
		g.buildHardcodedForwarder()
	case ShapeEIP1967Proxy, ShapeEIP1822Proxy, ShapeAdHocProxy:
		g.buildSlotProxy(s)
	case ShapeDiamond:
		g.buildDiamond()
	case ShapeLibraryCaller:
		g.buildLibraryCaller()
	case ShapeDispatcherOnly:
		g.buildDispatcherOnly()
	case ShapeDeadDelegate:
		g.buildDeadDelegate()
	default:
		panic("gen: no builder for shape " + s.String())
	}
}

// buildMinimalProxy installs a raw EIP-1167 runtime over a fresh logic
// contract. The canonical runtime has no dispatcher and no storage, so the
// pair is clean by construction.
func (g *generator) buildMinimalProxy() {
	vars := g.randVars("l", 1+g.rng.Intn(2))
	logic := g.buildLogicAux(g.ident("Logic"), vars, g.accessors("l", vars))
	mk := func() *Label {
		return &Label{
			Shape: ShapeMinimalProxy, IsProxy: true, Detectable: true,
			HasDelegateCall: true, Logic: logic.Address, Standard: "EIP-1167",
		}
	}
	g.install(mk(), disasm.MinimalProxyRuntime(logic.Address))
	// Byte-identical clone of the same logic: the duplication the
	// bytecode-dedup cache exists for (same code, same hard-coded target).
	if g.rng.Intn(100) < 40 {
		g.install(mk(), disasm.MinimalProxyRuntime(logic.Address))
	}
}

// buildHardcodedForwarder compiles a contract whose fallback forwards to an
// address fixed in the bytecode — a non-minimal clone proxy.
func (g *generator) buildHardcodedForwarder() {
	ps := g.buildPair(g.rollPair())
	logic := g.buildLogicAux(g.ident("Impl"), ps.logicVars, ps.logicFuncs)
	src := &solc.Contract{
		Name: g.ident("Forwarder"), Vars: ps.proxyVars, Funcs: ps.proxyFuncs,
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateHardcoded, Target: logic.Address},
	}
	g.maybeDecoys(src)
	mk := func() *Label {
		return &Label{
			Shape: ShapeHardcodedForwarder, IsProxy: true, Detectable: true,
			HasDelegateCall: true, Logic: logic.Address, Standard: "Others",
			FuncCollisions: ps.selectors, StorageCollision: ps.storage,
			HasSource: g.sourceDice(),
		}
	}
	g.compileInstall(mk(), src)
	// Identical-bytecode clone forwarding to the same target.
	if g.rng.Intn(100) < 30 {
		g.compileInstall(mk(), src)
	}
}

// buildSlotProxy compiles an upgradeable proxy reading its logic address
// from a storage slot: the EIP-1967 slot, the EIP-1822 slot, or an ad-hoc
// low slot that classifies as "Others".
func (g *generator) buildSlotProxy(shape Shape) {
	ps := g.buildPair(g.rollPair())
	logic := g.buildLogicAux(g.ident("Impl"), ps.logicVars, ps.logicFuncs)

	var slot etypes.Hash
	var std string
	switch shape {
	case ShapeEIP1967Proxy:
		slot, std = slotEIP1967, "EIP-1967"
	case ShapeEIP1822Proxy:
		slot, std = slotEIP1822, "EIP-1822"
	default:
		// Far above any packed variable, below any keccak-derived slot.
		slot = etypes.HashFromWord(u256.FromUint64(uint64(0x40 + g.rng.Intn(64))))
		std = "Others"
	}

	src := &solc.Contract{
		Name: g.ident("Upgradeable"), Vars: ps.proxyVars, Funcs: ps.proxyFuncs,
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot},
	}
	g.maybeDecoys(src)
	mk := func(logicAddr etypes.Address) *Label {
		return &Label{
			Shape: shape, IsProxy: true, Detectable: true,
			HasDelegateCall: true, Logic: logicAddr,
			TargetStorage: true, ImplSlot: slot, Standard: std,
			FuncCollisions: ps.selectors, StorageCollision: ps.storage,
			HasSource: g.sourceDice(),
		}
	}
	l := g.compileInstall(mk(logic.Address), src)
	g.corpus.Chain.SetStorageDirect(l.Address, slot, etypes.HashFromWord(logic.Address.Word()))

	// Byte-identical upgradeable clone pointing at a *different* logic
	// deployment: the cache must re-anchor the logic address from the
	// clone's own implementation slot.
	if g.rng.Intn(100) < 40 {
		logic2 := g.buildLogicAux(g.ident("Impl"), ps.logicVars, ps.logicFuncs)
		l2 := g.compileInstall(mk(logic2.Address), src)
		g.corpus.Chain.SetStorageDirect(l2.Address, slot, etypes.HashFromWord(logic2.Address.Word()))
	}
}

// buildDiamond compiles an EIP-2535 facet router and registers one facet's
// selectors in its mapping. Ground truth proxy, but the crafted-selector
// probe always misses the facet table, so Detectable is false.
func (g *generator) buildDiamond() {
	vars := g.randVars("f", 1)
	funcs := append(g.accessors("f", vars), g.constFunc("fVersion", 2))
	facet := g.buildLogicAux(g.ident("Facet"), vars, funcs)

	base := etypes.Keccak([]byte(g.ident("diamond.storage")))
	src := &solc.Contract{
		Name:     g.ident("Diamond"),
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateDiamond, Slot: base},
	}
	g.maybeDecoys(src)
	l := g.compileInstall(&Label{
		Shape: ShapeDiamond, IsProxy: true, Detectable: false,
		HasDelegateCall: true, Logic: facet.Address,
		HasSource: g.sourceDice(),
	}, src)

	// facetSlot = keccak(selector-as-word ‖ base), matching the compiled
	// fallback's lookup.
	for _, sel := range facet.Source.Selectors() {
		pre := make([]byte, 64)
		selWord := u256.FromBytes(sel[:]).Bytes32()
		copy(pre[:32], selWord[:])
		copy(pre[32:], base[:])
		g.corpus.Chain.SetStorageDirect(l.Address, etypes.Keccak(pre),
			etypes.HashFromWord(facet.Address.Word()))
	}
}

// buildLibraryCaller compiles the library idiom: the fallback delegatecalls
// a fixed library with *constructed* call data. DELEGATECALL present, probe
// data never forwarded — the negative that defeats opcode-only detection.
func (g *generator) buildLibraryCaller() {
	libFn := g.constFunc("libHelper", 7)
	lib := g.buildLogicAux(g.ident("Lib"), nil, []solc.Func{libFn})

	vars := g.randVars("c", 1)
	src := &solc.Contract{
		Name: g.ident("LibUser"), Vars: vars, Funcs: g.accessors("c", vars),
		Fallback: solc.Fallback{
			Kind: solc.FallbackLibraryCall, Target: lib.Address,
			Proto: libFn.ABI.Prototype(),
		},
	}
	g.maybeDecoys(src)
	g.compileInstall(&Label{
		Shape: ShapeLibraryCaller, HasDelegateCall: true, HasSource: g.sourceDice(),
	}, src)
}

// buildDispatcherOnly compiles a plain application contract: dispatcher and
// storage, no DELEGATECALL anywhere.
func (g *generator) buildDispatcherOnly() {
	vars := g.randVars("d", 1+g.rng.Intn(2))
	funcs := append(g.accessors("d", vars), g.constFunc("dPing", 1))
	fb := solc.Fallback{Kind: solc.FallbackRevert}
	if g.rng.Intn(2) == 0 {
		fb.Kind = solc.FallbackStop
	}
	src := &solc.Contract{Name: g.ident("App"), Vars: vars, Funcs: funcs, Fallback: fb}
	g.maybeDecoys(src)
	g.compileInstall(&Label{Shape: ShapeDispatcherOnly, HasSource: g.sourceDice()}, src)
}

// buildDeadDelegate compiles a plain contract and appends an unreachable
// STOP; DELEGATECALL trailer. The disassembly filter sees the opcode and
// passes the contract to emulation, which must still say "not a proxy".
func (g *generator) buildDeadDelegate() {
	vars := g.randVars("z", 1)
	funcs := append(g.accessors("z", vars), g.constFunc("zPing", 3))
	src := &solc.Contract{
		Name: g.ident("Decoy"), Vars: vars, Funcs: funcs,
		Fallback: solc.Fallback{Kind: solc.FallbackRevert},
	}
	g.maybeDecoys(src)
	code := append(solc.MustCompile(src), 0x00, 0xF4)
	l := &Label{Shape: ShapeDeadDelegate, HasDelegateCall: true}
	l.Source = src // bytecode diverges from source; never published
	g.install(l, code)
}
