// Package gen is a seeded, deterministic random contract-corpus generator:
// it emits internal/solc sources (and raw EIP-1167 runtime bytecode) across
// the paper's proxy taxonomy — minimal proxies, EIP-1967/1822 slot proxies,
// hardcoded-address forwarders, ad-hoc slot proxies, diamonds — plus labeled
// *negatives* (library delegatecallers, dispatcher-only contracts,
// dead-DELEGATECALL decoys), each carrying ground-truth labels established
// by construction: is-proxy, the logic address, the implementation slot, the
// expected standard classification, and the function/storage collisions
// deliberately injected into the pair.
//
// The generator is the corpus half of the differential oracle harness (see
// internal/gen/oracle): because every label is true by construction, any
// disagreement between a label and an analysis verdict is a bug in exactly
// one place — the analyzer.
//
// Determinism contract: equal Config values produce byte-identical corpora
// (same addresses, same bytecode, same labels, same chain storage), and the
// corpus for Contracts=k is a strict prefix of the corpus for Contracts=n>k
// with the same seed. The prefix property is what makes failing seeds
// minimizable: a failure triggered by generation unit j reproduces at every
// prefix length > j.
package gen

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/chain"
	"repro/internal/etherscan"
	"repro/internal/etypes"
	"repro/internal/keccak"
	"repro/internal/solc"
	"repro/internal/u256"
)

// Shape is a generated contract's taxonomy bucket.
type Shape int

// Generated contract shapes. The first six are proxies under the paper's
// definition; the last four are the adversarial negatives proxy classifiers
// historically stumble on (library delegatecallers, no-transaction
// dispatcher contracts, dead DELEGATECALLs, plain logic targets).
const (
	// ShapeMinimalProxy is a raw EIP-1167 runtime (not compiler output).
	ShapeMinimalProxy Shape = iota
	// ShapeHardcodedForwarder forwards call data to an address fixed in the
	// bytecode, but is NOT the canonical 1167 runtime.
	ShapeHardcodedForwarder
	// ShapeEIP1967Proxy keeps its logic address in the EIP-1967 slot.
	ShapeEIP1967Proxy
	// ShapeEIP1822Proxy keeps its logic address in keccak("PROXIABLE").
	ShapeEIP1822Proxy
	// ShapeAdHocProxy keeps its logic address in a non-standard slot.
	ShapeAdHocProxy
	// ShapeDiamond is an EIP-2535 facet router: a proxy by ground truth,
	// but invisible to random-call-data emulation (the paper's acknowledged
	// diamond limitation), so its Detectable label is false.
	ShapeDiamond
	// ShapeLibraryCaller delegatecalls a library with *constructed* call
	// data: DELEGATECALL present, not a proxy.
	ShapeLibraryCaller
	// ShapeDispatcherOnly is a plain application contract: dispatcher and
	// storage, no DELEGATECALL anywhere, and no transactions either.
	ShapeDispatcherOnly
	// ShapeDeadDelegate carries a DELEGATECALL opcode in unreachable
	// trailing code: it passes the disassembly filter but never forwards.
	ShapeDeadDelegate
	// ShapeLogic is an auxiliary deployment (logic contract, library,
	// diamond facet) another unit points at; a plain negative.
	ShapeLogic
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeMinimalProxy:
		return "minimal-proxy"
	case ShapeHardcodedForwarder:
		return "hardcoded-forwarder"
	case ShapeEIP1967Proxy:
		return "eip1967-proxy"
	case ShapeEIP1822Proxy:
		return "eip1822-proxy"
	case ShapeAdHocProxy:
		return "adhoc-proxy"
	case ShapeDiamond:
		return "diamond"
	case ShapeLibraryCaller:
		return "library-caller"
	case ShapeDispatcherOnly:
		return "dispatcher-only"
	case ShapeDeadDelegate:
		return "dead-delegatecall"
	case ShapeLogic:
		return "logic"
	default:
		return "unknown"
	}
}

// IsProxy is the shape's ground truth under the paper's definition: does
// the fallback forward received call data through a DELEGATECALL.
func (s Shape) IsProxy() bool {
	switch s {
	case ShapeMinimalProxy, ShapeHardcodedForwarder, ShapeEIP1967Proxy,
		ShapeEIP1822Proxy, ShapeAdHocProxy, ShapeDiamond:
		return true
	}
	return false
}

// EmulationDetectable is the verdict the Section 4 emulation pipeline is
// *expected* to reach: every proxy shape except diamonds, whose facet
// lookup rejects the crafted selector before any DELEGATECALL runs.
func (s Shape) EmulationDetectable() bool {
	return s.IsProxy() && s != ShapeDiamond
}

// Label is the ground truth for one generated contract, fixed by
// construction at generation time.
type Label struct {
	Address etypes.Address
	Shape   Shape
	// Unit is the generation unit (0-based) that produced this contract;
	// auxiliary deployments share their proxy's unit. Prefix minimization
	// keys on it.
	Unit int

	// IsProxy is the paper-definition ground truth.
	IsProxy bool
	// Detectable is the expected emulation verdict (false for diamonds).
	Detectable bool
	// HasDelegateCall is the expected step-1 disassembly filter result.
	HasDelegateCall bool

	// Logic is the contract the proxy points at (zero otherwise).
	Logic etypes.Address
	// TargetStorage says the logic address lives in storage (vs hardcoded).
	TargetStorage bool
	// ImplSlot is the storage slot holding the logic address, when
	// TargetStorage.
	ImplSlot etypes.Hash
	// Standard is the expected Table 4 classification string ("EIP-1167",
	// "EIP-1967", "EIP-1822", "Others"); empty for non-proxies.
	Standard string

	// FuncCollisions are the 4-byte selectors shared with Logic by
	// construction, in ascending order. Nil means the pair must be clean.
	FuncCollisions [][4]byte
	// StorageCollision says the pair's layouts were built to conflict
	// (mismatched overlapping fields on a shared slot).
	StorageCollision bool

	// HasSource says the contract's source was published to the registry.
	HasSource bool
	// Source is the source-level model (always present for compiled
	// contracts, whether or not published; nil for raw bytecode shapes).
	Source *solc.Contract
	// Code is the installed runtime bytecode.
	Code []byte
}

// Config parameterizes one corpus. Equal configs generate byte-identical
// corpora.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Contracts is the number of generation units (default 24). Each unit
	// deploys one primary contract plus any auxiliaries it needs (logic,
	// library, facet), so the corpus holds more labels than units.
	Contracts int
}

func (c Config) withDefaults() Config {
	if c.Contracts == 0 {
		c.Contracts = 24
	}
	return c
}

// Repro renders the config as a reproduction hint for failure reports.
func (c Config) Repro() string {
	c = c.withDefaults()
	return fmt.Sprintf("gen.Generate(gen.Config{Seed: %d, Contracts: %d})", c.Seed, c.Contracts)
}

// Corpus is one generated labeled population.
type Corpus struct {
	Config   Config
	Chain    *chain.Chain
	Registry *etherscan.Registry
	Labels   []*Label
	ByAddr   map[etypes.Address]*Label
}

// Proxies returns the labels whose ground truth is proxy.
func (c *Corpus) Proxies() []*Label {
	var out []*Label
	for _, l := range c.Labels {
		if l.IsProxy {
			out = append(out, l)
		}
	}
	return out
}

// Shapes returns the distinct shapes present, in label order.
func (c *Corpus) Shapes() []Shape {
	seen := make(map[Shape]bool)
	var out []Shape
	for _, l := range c.Labels {
		if !seen[l.Shape] {
			seen[l.Shape] = true
			out = append(out, l.Shape)
		}
	}
	return out
}

// Fingerprint hashes the full corpus — every label field and every byte of
// installed code, in label order — so byte-identity across runs collapses
// to one comparison.
func (c *Corpus) Fingerprint() etypes.Hash {
	h := make([]byte, 0, 4096)
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h = append(h, scratch[:]...)
	}
	for _, l := range c.Labels {
		h = append(h, l.Address[:]...)
		u64(uint64(l.Shape))
		u64(uint64(l.Unit))
		flags := uint64(0)
		for i, b := range []bool{l.IsProxy, l.Detectable, l.HasDelegateCall,
			l.TargetStorage, l.StorageCollision, l.HasSource} {
			if b {
				flags |= 1 << uint(i)
			}
		}
		u64(flags)
		h = append(h, l.Logic[:]...)
		h = append(h, l.ImplSlot[:]...)
		h = append(h, []byte(l.Standard)...)
		for _, sel := range l.FuncCollisions {
			h = append(h, sel[:]...)
		}
		u64(uint64(len(l.Code)))
		h = append(h, l.Code...)
		// Chain-side state the label implies: the implementation slot value.
		if l.TargetStorage {
			v := c.Chain.GetState(l.Address, l.ImplSlot)
			h = append(h, v[:]...)
		}
	}
	return etypes.Keccak(h)
}

// Well-known implementation slots, duplicated from the analyzer so the
// generator shares no code with the system under test.
var (
	slotEIP1967 = etypes.HashFromWord(
		u256.FromBytes32(keccak.Sum256([]byte("eip1967.proxy.implementation"))).Sub(u256.One()))
	slotEIP1822 = etypes.Keccak([]byte("PROXIABLE"))
)

// allShapes is the guaranteed-coverage prefix: the first len(allShapes)
// units cycle through every primary shape, so any corpus with at least that
// many units exercises the full taxonomy; later units draw randomly.
var allShapes = []Shape{
	ShapeMinimalProxy, ShapeHardcodedForwarder, ShapeEIP1967Proxy,
	ShapeEIP1822Proxy, ShapeAdHocProxy, ShapeDiamond,
	ShapeLibraryCaller, ShapeDispatcherOnly, ShapeDeadDelegate,
}

// Generate builds a corpus from the config.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	c := &Corpus{
		Config:   cfg,
		Chain:    chain.New(),
		Registry: etherscan.NewRegistry(),
		ByAddr:   make(map[etypes.Address]*Label),
	}
	g := &generator{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		corpus:   c,
		nextAddr: 0x100,
	}
	c.Chain.AdvanceTo(1)
	for i := 0; i < cfg.Contracts; i++ {
		g.unit = i
		g.buildUnit(g.shapeFor(i))
		c.Chain.AdvanceBlocks(1)
	}
	return c
}

// generator holds per-corpus generation state.
type generator struct {
	rng      *rand.Rand
	corpus   *Corpus
	nextAddr uint64
	unit     int
	seq      int
}

// shapeFor picks the unit's primary shape: fixed coverage prefix first,
// weighted random afterwards. The rng consumption per unit index is
// identical for every corpus size, preserving the prefix property.
func (g *generator) shapeFor(i int) Shape {
	if i < len(allShapes) {
		return allShapes[i]
	}
	r := g.rng.Intn(100)
	switch {
	case r < 14:
		return ShapeMinimalProxy
	case r < 28:
		return ShapeHardcodedForwarder
	case r < 42:
		return ShapeEIP1967Proxy
	case r < 49:
		return ShapeEIP1822Proxy
	case r < 61:
		return ShapeAdHocProxy
	case r < 67:
		return ShapeDiamond
	case r < 78:
		return ShapeLibraryCaller
	case r < 89:
		return ShapeDispatcherOnly
	default:
		return ShapeDeadDelegate
	}
}

// newAddr mints the next deterministic address (0x9e prefix marks
// generator-minted contracts, distinct from the dataset's 0xda).
func (g *generator) newAddr() etypes.Address {
	g.nextAddr++
	var buf [20]byte
	binary.BigEndian.PutUint64(buf[12:], g.nextAddr)
	buf[0] = 0x9e
	return etypes.Address(buf)
}

// ident mints a fresh random identifier. Including a random suffix keeps
// prototypes distinct across contracts so the only shared selectors are the
// deliberately injected ones.
func (g *generator) ident(prefix string) string {
	g.seq++
	return fmt.Sprintf("%s%d_%x", prefix, g.seq, g.rng.Uint32())
}

// install places code on chain and records the label.
func (g *generator) install(l *Label, code []byte) *Label {
	if l.Address.IsZero() {
		l.Address = g.newAddr()
	}
	l.Unit = g.unit
	l.Code = code
	g.corpus.Chain.InstallContract(l.Address, code)
	g.corpus.Labels = append(g.corpus.Labels, l)
	g.corpus.ByAddr[l.Address] = l
	if l.HasSource && l.Source != nil {
		g.corpus.Registry.Publish(l.Address, l.Source, true)
	}
	return l
}

// compileInstall compiles the source model and installs it.
func (g *generator) compileInstall(l *Label, src *solc.Contract) *Label {
	l.Source = src
	return g.install(l, solc.MustCompile(src))
}
