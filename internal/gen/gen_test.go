package gen

import (
	"testing"

	"repro/internal/disasm"
	"repro/internal/evm"
)

// TestDeterminism: equal configs must produce byte-identical corpora.
func TestDeterminism(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 31337} {
		a := Generate(Config{Seed: seed})
		b := Generate(Config{Seed: seed})
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d: corpora differ across runs", seed)
		}
	}
	if Generate(Config{Seed: 1}).Fingerprint() == Generate(Config{Seed: 2}).Fingerprint() {
		t.Fatalf("different seeds produced identical corpora")
	}
}

// TestShapeCoverage: any corpus with at least len(allShapes) units carries
// the full taxonomy — all 9 primary shapes plus auxiliary logic contracts,
// of which at least 3 are non-proxy.
func TestShapeCoverage(t *testing.T) {
	c := Generate(Config{Seed: 7, Contracts: len(allShapes)})
	seen := make(map[Shape]int)
	negatives := 0
	for _, l := range c.Labels {
		seen[l.Shape]++
		if !l.IsProxy {
			negatives++
		}
	}
	for _, s := range allShapes {
		if seen[s] == 0 {
			t.Errorf("shape %v missing from coverage prefix", s)
		}
	}
	if seen[ShapeLogic] == 0 {
		t.Errorf("no auxiliary logic contracts generated")
	}
	if len(seen) < 8 {
		t.Errorf("only %d distinct shapes, want >= 8", len(seen))
	}
	if negatives < 3 {
		t.Errorf("only %d negative labels, want >= 3", negatives)
	}
}

// TestPrefixStability: the corpus at k units must be an exact prefix of the
// corpus at n>k units with the same seed — the property seed minimization
// relies on.
func TestPrefixStability(t *testing.T) {
	small := Generate(Config{Seed: 11, Contracts: 10})
	big := Generate(Config{Seed: 11, Contracts: 30})
	if len(big.Labels) < len(small.Labels) {
		t.Fatalf("bigger corpus has fewer labels")
	}
	for i, l := range small.Labels {
		bl := big.Labels[i]
		if l.Address != bl.Address || l.Shape != bl.Shape || l.Unit != bl.Unit {
			t.Fatalf("label %d diverges: %v/%v vs %v/%v", i, l.Shape, l.Address, bl.Shape, bl.Address)
		}
		if string(l.Code) != string(bl.Code) {
			t.Fatalf("label %d (%v): bytecode diverges between corpus sizes", i, l.Shape)
		}
	}
}

// TestLabelInternalConsistency cross-checks labels against the installed
// artifacts: the delegatecall flag against a real opcode scan, minimal
// proxies against the canonical 1167 decoder, storage proxies against the
// chain's implementation-slot value.
func TestLabelInternalConsistency(t *testing.T) {
	c := Generate(Config{Seed: 3, Contracts: 40})
	for _, l := range c.Labels {
		if got := disasm.ContainsOp(l.Code, evm.DELEGATECALL); got != l.HasDelegateCall {
			t.Errorf("%v %v: HasDelegateCall label %v, opcode scan %v", l.Shape, l.Address, l.HasDelegateCall, got)
		}
		switch l.Shape {
		case ShapeMinimalProxy:
			target, ok := disasm.MinimalProxyTarget(l.Code)
			if !ok || target != l.Logic {
				t.Errorf("minimal proxy %v: decoded target %v ok=%v, label %v", l.Address, target, ok, l.Logic)
			}
		case ShapeEIP1967Proxy, ShapeEIP1822Proxy, ShapeAdHocProxy:
			if !l.TargetStorage {
				t.Errorf("%v %v: storage proxy not labeled TargetStorage", l.Shape, l.Address)
			}
			v := c.Chain.GetState(l.Address, l.ImplSlot)
			var got [20]byte
			copy(got[:], v[12:])
			if got != [20]byte(l.Logic) {
				t.Errorf("%v %v: impl slot holds %x, label logic %v", l.Shape, l.Address, v, l.Logic)
			}
		}
		if l.HasSource && c.Registry.Source(l.Address) == nil {
			t.Errorf("%v %v: labeled HasSource but registry has none", l.Shape, l.Address)
		}
		if !l.HasSource && c.Registry.Source(l.Address) != nil {
			t.Errorf("%v %v: source published but label says none", l.Shape, l.Address)
		}
	}
}

// TestReproString pins the failure-report format.
func TestReproString(t *testing.T) {
	got := Config{Seed: 5}.Repro()
	want := "gen.Generate(gen.Config{Seed: 5, Contracts: 24})"
	if got != want {
		t.Fatalf("Repro() = %q, want %q", got, want)
	}
}
