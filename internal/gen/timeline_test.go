package gen

import (
	"testing"

	"repro/internal/proxion"
)

// The timeline generator's ground truth must match what the analyzer
// actually reports at the end state: proxies detected with the final logic
// resolved (including through the beacon indirection), and the final
// step's collision flag agreeing with the pair analysis.
func TestTimelineEndStateMatchesAnalyzer(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		tl := GenerateTimeline(TimelineConfig{Seed: seed})
		d := proxion.NewDetector(tl.Chain)
		for _, tp := range tl.Proxies {
			rep := d.Check(tp.Address)
			if !rep.IsProxy {
				t.Fatalf("seed %d: %s proxy %s not detected: %+v", seed, tp.Kind, tp.Address.Hex(), rep)
			}
			final := tp.Steps[len(tp.Steps)-1]
			if rep.Logic != final.Logic {
				t.Fatalf("seed %d: %s proxy %s logic = %s, want %s", seed, tp.Kind,
					tp.Address.Hex(), rep.Logic.Hex(), final.Logic.Hex())
			}
			if tp.Kind == TimelineBeacon {
				if rep.Target != proxion.TargetHardcoded {
					t.Fatalf("seed %d: beacon proxy target = %v, want hardcoded", seed, rep.Target)
				}
			} else if rep.Target != proxion.TargetStorage || rep.ImplSlot != tp.ImplSlot {
				t.Fatalf("seed %d: %s proxy target = %v slot %s, want storage slot %s",
					seed, tp.Kind, rep.Target, rep.ImplSlot.Hex(), tp.ImplSlot.Hex())
			}
			pa := d.AnalyzePair(tp.Address, final.Logic, tl.Registry)
			got := len(pa.Functions) > 0 || len(pa.Storage) > 0
			if got != final.Collides {
				t.Fatalf("seed %d: %s proxy %s final collides = %v, ground truth %v (%+v)",
					seed, tp.Kind, tp.Address.Hex(), got, final.Collides, pa)
			}
		}
	}
}

// Every scripted history must contain a mid-timeline collision window that
// a later upgrade closes, and every step's ground truth must agree with
// the pair analysis of that step's pairing.
func TestTimelineWindowsObservable(t *testing.T) {
	tl := GenerateTimeline(TimelineConfig{Seed: 3, Proxies: 8})
	d := proxion.NewDetector(tl.Chain)
	for _, tp := range tl.Proxies {
		closed := false
		for i, s := range tp.Steps {
			pa := d.AnalyzePair(tp.Address, s.Logic, tl.Registry)
			got := len(pa.Functions) > 0 || len(pa.Storage) > 0
			if got != s.Collides {
				t.Fatalf("%s proxy %s step %d collides = %v, ground truth %v",
					tp.Kind, tp.Address.Hex(), i, got, s.Collides)
			}
			if i > 0 && !s.Collides && tp.Steps[i-1].Collides {
				closed = true
			}
		}
		if !closed {
			t.Fatalf("%s proxy %s history has no closed collision window: %+v",
				tp.Kind, tp.Address.Hex(), tp.Steps)
		}
	}
}

// Timelines are deterministic in the seed.
func TestTimelineDeterminism(t *testing.T) {
	a := GenerateTimeline(TimelineConfig{Seed: 11})
	b := GenerateTimeline(TimelineConfig{Seed: 11})
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if a.End() != b.End() {
		t.Fatalf("end heights differ: %d vs %d", a.End(), b.End())
	}
}
