package gen

import (
	"math/rand"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etherscan"
	"repro/internal/etypes"
	"repro/internal/keccak"
	"repro/internal/solc"
	"repro/internal/u256"
)

// The timeline generator scripts upgrade histories instead of snapshots:
// each proxy is deployed against a clean logic, upgraded to a logic whose
// layout collides with the proxy's (the window opens), and upgraded again
// to a fixed logic (the window closes). The ground truth is therefore a
// per-proxy sequence of (block, logic, collides) steps — exactly what a
// live follower must reproduce block-by-block and what the watch-parity
// oracle diffs against cold analysis of the end state.

// slotEIP1967Beacon = keccak256("eip1967.proxy.beacon") - 1, duplicated
// from the analyzer so the generator shares no code with the system under
// test.
var slotEIP1967Beacon = etypes.HashFromWord(
	u256.FromBytes32(keccak.Sum256([]byte("eip1967.proxy.beacon"))).Sub(u256.One()))

// TimelineKind selects how a scripted proxy stores its implementation.
type TimelineKind int

// Timeline proxy kinds. The first three keep the logic address in the
// proxy's own storage (EIP-1967 slot, EIP-1822 slot, ad-hoc low slot); the
// beacon kind keeps only a beacon address there — upgrades rewrite the
// beacon's storage and the proxy's own slots never change.
const (
	TimelineEIP1967 TimelineKind = iota
	TimelineEIP1822
	TimelineAdHoc
	TimelineBeacon
)

// String names the kind.
func (k TimelineKind) String() string {
	switch k {
	case TimelineEIP1967:
		return "eip1967"
	case TimelineEIP1822:
		return "eip1822"
	case TimelineAdHoc:
		return "adhoc"
	case TimelineBeacon:
		return "beacon"
	}
	return "unknown"
}

// timelineKinds is the coverage cycle: every corpus with at least four
// proxies exercises all kinds including the beacon indirection.
var timelineKinds = []TimelineKind{
	TimelineEIP1967, TimelineBeacon, TimelineEIP1822, TimelineAdHoc,
}

// TimelineStep is one point of a proxy's logic history: from Block onwards
// the proxy delegates to Logic, and Collides says whether that pairing was
// built to collide (storage and possibly function collisions).
type TimelineStep struct {
	Block    uint64
	Logic    etypes.Address
	Collides bool
}

// TimelineProxy is one scripted proxy with its ground-truth history.
type TimelineProxy struct {
	// Address is the proxy contract.
	Address etypes.Address
	// Kind is how the implementation is stored.
	Kind TimelineKind
	// WatchAddr/WatchSlot locate the storage cell whose value IS the
	// current logic address: the proxy's own implementation slot for slot
	// kinds, the beacon's slot 0 for the beacon kind.
	WatchAddr etypes.Address
	WatchSlot etypes.Hash
	// ImplSlot is the proxy's own slot holding the logic (slot kinds) or
	// the beacon address (beacon kind).
	ImplSlot etypes.Hash
	// Beacon is the beacon contract; zero unless Kind == TimelineBeacon.
	Beacon etypes.Address
	// Steps is the deploy plus every upgrade, oldest first.
	Steps []TimelineStep
}

// LogicAt returns the logic active as of block b (zero before deploy).
func (p *TimelineProxy) LogicAt(b uint64) etypes.Address {
	var out etypes.Address
	for _, s := range p.Steps {
		if s.Block <= b {
			out = s.Logic
		}
	}
	return out
}

// CollidesAt reports the ground-truth collision state as of block b.
func (p *TimelineProxy) CollidesAt(b uint64) bool {
	out := false
	for _, s := range p.Steps {
		if s.Block <= b {
			out = s.Collides
		}
	}
	return out
}

// TimelineEvent is one block's happening, across all proxies in order.
type TimelineEvent struct {
	Block uint64
	Proxy etypes.Address
	Logic etypes.Address
	// Deploy marks the proxy's deployment; false means an upgrade.
	Deploy bool
	// Collides is the ground truth of the pairing the event activates.
	Collides bool
}

// TimelineConfig seeds a scripted upgrade corpus.
type TimelineConfig struct {
	Seed int64
	// Proxies is the number of scripted proxies (default 4 — one full
	// kind cycle).
	Proxies int
}

// Timeline is a generated upgrade-history corpus.
type Timeline struct {
	Config   TimelineConfig
	Chain    *chain.Chain
	Registry *etherscan.Registry
	Proxies  []*TimelineProxy
	// Events lists every deploy and upgrade in block order.
	Events []TimelineEvent
}

// End returns the final block height of the scripted history.
func (t *Timeline) End() uint64 { return t.Chain.CurrentBlock() }

// GenerateTimeline builds a scripted upgrade corpus. Deterministic in the
// seed; every proxy's history contains at least one collision window that
// opens mid-timeline and is closed by a later fixing upgrade.
func GenerateTimeline(cfg TimelineConfig) *Timeline {
	if cfg.Proxies <= 0 {
		cfg.Proxies = len(timelineKinds)
	}
	c := &Corpus{
		Config:   Config{Seed: cfg.Seed, Contracts: cfg.Proxies},
		Chain:    chain.New(),
		Registry: etherscan.NewRegistry(),
		ByAddr:   make(map[etypes.Address]*Label),
	}
	// A distinct stream from Generate's so a timeline and a snapshot
	// corpus with the same seed do not mirror each other.
	g := &generator{
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x7a11e7b10c4f0110)),
		corpus:   c,
		nextAddr: 0x100,
	}
	t := &Timeline{Config: cfg, Chain: c.Chain, Registry: c.Registry}
	c.Chain.AdvanceTo(1)

	// Collision patterns per proxy: deploy clean, open a window, close it,
	// optionally reopen one that stays open at the end. Every pattern has
	// a closed mid-timeline window, which is what the parity oracle's
	// while-open/cleared-after assertions need.
	type plan struct {
		tp      *TimelineProxy
		pattern []bool // steps after deploy: collides?
		funcs   []solc.Func
		vars    []solc.Var
	}
	plans := make([]*plan, cfg.Proxies)
	for i := range plans {
		g.unit = i
		kind := timelineKinds[i%len(timelineKinds)]
		pattern := []bool{true, false}
		if g.rng.Intn(100) < 35 {
			pattern = append(pattern, true) // window still open at the end
		}
		pl := &plan{pattern: pattern}
		pl.vars, pl.funcs = g.timelineProxySide()
		pl.tp = g.deployTimelineProxy(kind, pl.vars, pl.funcs)
		t.Proxies = append(t.Proxies, pl.tp)
		t.Events = append(t.Events, TimelineEvent{
			Block: pl.tp.Steps[0].Block, Proxy: pl.tp.Address,
			Logic: pl.tp.Steps[0].Logic, Deploy: true,
		})
		plans[i] = pl
		c.Chain.AdvanceBlocks(1)
	}
	// Interleave upgrades across proxies, one event per block: proxy A's
	// first upgrade, proxy B's first, ..., then the second round.
	for step := 0; ; step++ {
		any := false
		for i, pl := range plans {
			if step >= len(pl.pattern) {
				continue
			}
			any = true
			g.unit = i
			ev := g.upgradeTimelineProxy(pl.tp, pl.pattern[step], pl.funcs, pl.vars)
			t.Events = append(t.Events, ev)
			c.Chain.AdvanceBlocks(1)
		}
		if !any {
			break
		}
	}
	return t
}

// timelineProxySide builds the proxy-side storage and functions shared by
// every logic version: the Audius shape's owner address in slot 0 plus its
// accessor pair. Clean logics mirror the type sequence; colliding logics
// pack initializer bits into the same slot.
func (g *generator) timelineProxySide() ([]solc.Var, []solc.Func) {
	owner := g.ident("pOwner")
	vars := []solc.Var{{Name: owner, Type: solc.TypeAddress}}
	funcs := []solc.Func{
		{
			ABI:  abi.Function{Name: g.ident("pOwnerOf")},
			Body: []solc.Stmt{solc.ReturnStorageVar{Var: owner}},
		},
		{
			ABI: abi.Function{Name: g.ident("pClaim")},
			Body: []solc.Stmt{
				solc.RequireCallerIs{Var: owner},
				solc.AssignCaller{Var: owner},
			},
		},
	}
	return vars, funcs
}

// timelineLogic compiles one logic version. A colliding version re-creates
// the Audius layout clash (packed bools under the proxy's owner address)
// and sometimes shadows a proxy selector; a clean version mirrors the
// proxy's type sequence exactly so no boundary mismatch exists. Sources
// are always published — the scripted collision windows must be observable
// to the layout analysis.
func (g *generator) timelineLogic(collides bool, proxyFuncs []solc.Func, proxyVars []solc.Var) *Label {
	var vars []solc.Var
	var funcs []solc.Func
	if collides {
		inited := g.ident("lInitialized")
		initing := g.ident("lInitializing")
		vars = []solc.Var{
			{Name: inited, Type: solc.TypeBool},
			{Name: initing, Type: solc.TypeBool},
		}
		funcs = []solc.Func{
			{
				ABI: abi.Function{Name: g.ident("lInitialize")},
				Body: []solc.Stmt{
					solc.RequireVarZero{Var: inited},
					solc.AssignConst{Var: inited, Value: u256.One()},
				},
			},
			{
				ABI:  abi.Function{Name: g.ident("lInitializedRead")},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: inited}},
			},
		}
		if g.rng.Intn(100) < 50 {
			// Function collision too: same prototype as a proxy function.
			funcs = append(funcs, solc.Func{
				ABI:  proxyFuncs[0].ABI,
				Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(2)}},
			})
		}
	} else {
		for _, pv := range proxyVars {
			vars = append(vars, solc.Var{Name: g.ident("l"), Type: pv.Type})
		}
		funcs = append(funcs, solc.Func{
			ABI:  abi.Function{Name: g.ident("lGet")},
			Body: []solc.Stmt{solc.ReturnStorageVar{Var: vars[0].Name}},
		})
	}
	src := &solc.Contract{
		Name: g.ident("TLogic"), Vars: vars, Funcs: funcs,
		Fallback: solc.Fallback{Kind: solc.FallbackRevert},
	}
	return g.compileInstall(&Label{Shape: ShapeLogic, HasSource: true}, src)
}

// deployTimelineProxy installs the proxy (and its beacon for the beacon
// kind) delegating to a fresh clean logic, in the chain's current block.
func (g *generator) deployTimelineProxy(kind TimelineKind, vars []solc.Var, funcs []solc.Func) *TimelineProxy {
	logic := g.timelineLogic(false, funcs, vars)
	tp := &TimelineProxy{Kind: kind}

	switch kind {
	case TimelineBeacon:
		// The beacon holds the implementation in slot 0 behind an
		// implementation() getter; the proxy stores only the beacon
		// address, in the canonical EIP-1967 beacon slot.
		implVar := g.ident("bImpl")
		beaconSrc := &solc.Contract{
			Name: g.ident("Beacon"),
			Vars: []solc.Var{{Name: implVar, Type: solc.TypeAddress}},
			Funcs: []solc.Func{{
				ABI:  abi.Function{Name: "implementation"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: implVar}},
			}},
			Fallback: solc.Fallback{Kind: solc.FallbackRevert},
		}
		beacon := g.compileInstall(&Label{Shape: ShapeLogic, HasSource: true}, beaconSrc)
		src := &solc.Contract{
			Name: g.ident("BeaconProxy"), Vars: vars, Funcs: funcs,
			Fallback: solc.Fallback{Kind: solc.FallbackDelegateBeacon, Slot: slotEIP1967Beacon},
		}
		// Detection sees the beacon proxy as a hard-coded forwarder: the
		// implementation address never appears in the proxy's own storage
		// reads, only the beacon address does.
		l := g.compileInstall(&Label{
			Shape: ShapeHardcodedForwarder, IsProxy: true, Detectable: true,
			HasDelegateCall: true, Logic: logic.Address, Standard: "Others",
			HasSource: true,
		}, src)
		g.corpus.Chain.SetStorageDirect(l.Address, slotEIP1967Beacon,
			etypes.HashFromWord(beacon.Address.Word()))
		g.corpus.Chain.SetStorageDirect(beacon.Address, etypes.Hash{},
			etypes.HashFromWord(logic.Address.Word()))
		tp.Address = l.Address
		tp.Beacon = beacon.Address
		tp.ImplSlot = slotEIP1967Beacon
		tp.WatchAddr = beacon.Address
		tp.WatchSlot = etypes.Hash{}
	default:
		var slot etypes.Hash
		var std string
		var shape Shape
		switch kind {
		case TimelineEIP1967:
			slot, std, shape = slotEIP1967, "EIP-1967", ShapeEIP1967Proxy
		case TimelineEIP1822:
			slot, std, shape = slotEIP1822, "EIP-1822", ShapeEIP1822Proxy
		default:
			slot = etypes.HashFromWord(u256.FromUint64(uint64(0x40 + g.rng.Intn(64))))
			std, shape = "Others", ShapeAdHocProxy
		}
		src := &solc.Contract{
			Name: g.ident("TProxy"), Vars: vars, Funcs: funcs,
			Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot},
		}
		l := g.compileInstall(&Label{
			Shape: shape, IsProxy: true, Detectable: true,
			HasDelegateCall: true, Logic: logic.Address,
			TargetStorage: true, ImplSlot: slot, Standard: std,
			HasSource: true,
		}, src)
		g.corpus.Chain.SetStorageDirect(l.Address, slot,
			etypes.HashFromWord(logic.Address.Word()))
		tp.Address = l.Address
		tp.ImplSlot = slot
		tp.WatchAddr = l.Address
		tp.WatchSlot = slot
	}
	tp.Steps = []TimelineStep{{
		Block: g.corpus.Chain.CurrentBlock(), Logic: logic.Address,
	}}
	return tp
}

// upgradeTimelineProxy installs a fresh logic version and rewrites the
// watched cell — the proxy's own slot for slot kinds, the beacon's storage
// for the beacon kind (the proxy's storage stays untouched).
func (g *generator) upgradeTimelineProxy(tp *TimelineProxy, collides bool, funcs []solc.Func, vars []solc.Var) TimelineEvent {
	logic := g.timelineLogic(collides, funcs, vars)
	g.corpus.Chain.SetStorageDirect(tp.WatchAddr, tp.WatchSlot,
		etypes.HashFromWord(logic.Address.Word()))
	blk := g.corpus.Chain.CurrentBlock()
	tp.Steps = append(tp.Steps, TimelineStep{Block: blk, Logic: logic.Address, Collides: collides})
	return TimelineEvent{
		Block: blk, Proxy: tp.Address, Logic: logic.Address, Collides: collides,
	}
}
