package evm_test

import (
	"testing"

	"repro/internal/evm"
	"repro/internal/u256"
)

// FuzzExecuteArbitraryBytecode: the interpreter must terminate cleanly (no
// panic, no hang) on arbitrary bytecode — the property the whole analyzer
// rests on, since Proxion emulates unvetted adversarial contracts.
func FuzzExecuteArbitraryBytecode(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x5b, 0x60, 0x00, 0x56})                   // jumpdest push0 jump: loop
	f.Add([]byte{0x60, 0x01, 0x60, 0x00, 0x55})             // sstore
	f.Add([]byte{0x33, 0x33, 0x33, 0xf4})                   // underflow delegatecall
	f.Add([]byte{0x36, 0x60, 0x00, 0x60, 0x00, 0x37, 0xf3}) // calldatacopy return
	f.Add([]byte{0x7f})                                     // truncated push32
	seedFuzzWithGeneratedCode(func(code []byte) { f.Add(code) })

	f.Fuzz(func(t *testing.T, code []byte) {
		st := newMemState()
		st.code[addrA] = code
		e := evm.New(st, evm.Config{
			StepLimit: 50_000,
			Lenient:   true,
		})
		res := e.Call(user, addrA, []byte{0xde, 0xad, 0xbe, 0xef}, 1_000_000, u256.Zero())
		// Any outcome is fine; gas accounting must stay sane.
		if res.GasLeft > 1_000_000 {
			t.Fatalf("gas increased: %d", res.GasLeft)
		}
	})
}

// FuzzProxyProbe feeds arbitrary bytecode and call data through the exact
// code paths detection uses.
func FuzzProxyProbe(f *testing.F) {
	f.Add([]byte{0xf4}, []byte{1, 2, 3, 4})
	f.Add([]byte{0x36, 0x3d, 0x3d, 0x37, 0xf4}, []byte{})
	seedFuzzWithGeneratedProbes(func(code, input []byte) { f.Add(code, input) })

	f.Fuzz(func(t *testing.T, code, input []byte) {
		st := newMemState()
		st.code[addrA] = code
		e := evm.New(st, evm.Config{StepLimit: 20_000, Lenient: true})
		e.Call(user, addrA, input, 500_000, u256.Zero())
	})
}
