package evm_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

func TestRevertCarriesOutput(t *testing.T) {
	// revert with a 4-byte payload: the caller sees the data and the error.
	var p asm.Program
	p.Push(u256.MustHex("0xdeadbeef")).PushUint(0).Op(evm.MSTORE).
		PushUint(4).PushUint(28).Op(evm.REVERT)
	st := newMemState()
	st.code[addrA] = p.MustAssemble()
	res := evm.New(st, evm.Config{Lenient: true}).Call(user, addrA, nil, testGas, u256.Zero())
	if !errors.Is(res.Err, evm.ErrRevert) {
		t.Fatalf("err = %v", res.Err)
	}
	if string(res.Output) != string([]byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("revert output = %x", res.Output)
	}
}

func TestStrictModeBalanceChecks(t *testing.T) {
	// Without Lenient, an unfunded caller cannot transfer value.
	st := newMemState()
	st.code[addrA] = []byte{byte(evm.STOP)}
	e := evm.New(st, evm.Config{})
	res := e.Call(user, addrA, nil, testGas, u256.FromUint64(100))
	if !errors.Is(res.Err, evm.ErrInsufficientFund) {
		t.Errorf("err = %v, want insufficient funds", res.Err)
	}
	// Funded: value moves.
	st.balance[user] = u256.FromUint64(1000)
	res = e.Call(user, addrA, nil, testGas, u256.FromUint64(100))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := st.balance[addrA]; got.Uint64() != 100 {
		t.Errorf("recipient balance = %s", got)
	}
	if got := st.balance[user]; got.Uint64() != 900 {
		t.Errorf("sender balance = %s", got)
	}
}

func TestStrictCreateBalanceCheck(t *testing.T) {
	st := newMemState()
	e := evm.New(st, evm.Config{})
	res := e.Create(user, []byte{byte(evm.STOP)}, testGas, u256.FromUint64(5))
	if !errors.Is(res.Err, evm.ErrInsufficientFund) {
		t.Errorf("create err = %v", res.Err)
	}
}

func TestCreateCodeSizeLimit(t *testing.T) {
	// Init code returning > 24576 bytes must fail with the EIP-170 error.
	var init asm.Program
	init.PushUint(30_000).PushUint(0).Op(evm.RETURN)
	st := newMemState()
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Create(user, init.MustAssemble(), testGas, u256.Zero())
	if !errors.Is(res.Err, evm.ErrCodeSizeLimit) {
		t.Errorf("err = %v, want code size limit", res.Err)
	}
}

func TestStaticBlocksCreateAndLog(t *testing.T) {
	for name, body := range map[string][]byte{
		"create": {byte(evm.PUSH0), byte(evm.PUSH0), byte(evm.PUSH0), byte(evm.CREATE)},
		"log0":   {byte(evm.PUSH0), byte(evm.PUSH0), byte(evm.LOG0)},
		"selfdestruct": {
			byte(evm.PUSH0), byte(evm.SELFDESTRUCT),
		},
	} {
		st := newMemState()
		st.code[addrA] = body
		e := evm.New(st, evm.Config{Lenient: true})
		res := e.StaticCall(user, addrA, nil, testGas)
		if !errors.Is(res.Err, evm.ErrWriteProtection) {
			t.Errorf("%s in static context: err = %v", name, res.Err)
		}
	}
}

func TestDelegateCallPublicEntry(t *testing.T) {
	// The top-level DelegateCall API: B's code runs in A's storage context.
	var logic asm.Program
	logic.PushUint(9).PushUint(0).Op(evm.SSTORE).Op(evm.STOP)
	st := newMemState()
	st.code[addrB] = logic.MustAssemble()
	st.code[addrA] = []byte{byte(evm.STOP)}
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.DelegateCall(user, addrA, addrB, nil, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := st.storage[addrA][etypes.Hash{}].Word(); got.Uint64() != 9 {
		t.Errorf("write landed at %s", got)
	}
}

func TestCopyOpcodesOutOfRangeSources(t *testing.T) {
	// RETURNDATACOPY/CALLDATACOPY with absurd source offsets must
	// zero-fill, and absurd destination offsets must exhaust gas.
	var p asm.Program
	p.PushUint(8).Push(u256.Max()).PushUint(0).Op(evm.CALLDATACOPY). // src = 2^256-1
										PushUint(8).PushUint(0).Op(evm.RETURN)
	out, err := runCode(t, p.MustAssemble(), []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range out {
		if b != 0 {
			t.Fatalf("out-of-range copy not zero-filled: %x", out)
		}
	}

	var q asm.Program
	q.PushUint(8).PushUint(0).Push(u256.Max()).Op(evm.CALLDATACOPY) // dst = 2^256-1
	if _, err := runCode(t, q.MustAssemble(), nil); !errors.Is(err, evm.ErrOutOfGas) {
		t.Errorf("absurd destination: err = %v", err)
	}
}

func TestCalldataloadHugeOffset(t *testing.T) {
	var p asm.Program
	p.Push(u256.Max()).Op(evm.CALLDATALOAD)
	out, err := runCode(t, returnTop(&p), []byte{0xff, 0xff})
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); !got.IsZero() {
		t.Errorf("calldataload(max) = %s, want 0", got)
	}
}

func TestExpGasScalesWithExponentWidth(t *testing.T) {
	run := func(exp u256.Int) uint64 {
		var p asm.Program
		p.Push(exp).PushUint(3).Op(evm.EXP).Op(evm.POP).Op(evm.STOP)
		st := newMemState()
		st.code[addrA] = p.MustAssemble()
		res := evm.New(st, evm.Config{Lenient: true}).Call(user, addrA, nil, testGas, u256.Zero())
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return testGas - res.GasLeft
	}
	small := run(u256.FromUint64(3))
	wide := run(u256.Max())
	if wide <= small {
		t.Errorf("EXP gas: wide exponent %d <= narrow %d", wide, small)
	}
}

func TestCallKindStrings(t *testing.T) {
	want := map[evm.CallKind]string{
		evm.CallKindCall:         "CALL",
		evm.CallKindDelegateCall: "DELEGATECALL",
		evm.CallKindStaticCall:   "STATICCALL",
		evm.CallKindCallCode:     "CALLCODE",
		evm.CallKindCreate:       "CREATE",
		evm.CallKindCreate2:      "CREATE2",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("kind %d = %q", k, k.String())
		}
	}
	if !strings.Contains(evm.CallKind(99).String(), "UNKNOWN") {
		t.Error("unknown kind should say so")
	}
}

func TestBalanceAndSelfBalanceOpcodes(t *testing.T) {
	st := newMemState()
	st.balance[addrA] = u256.FromUint64(777)
	st.balance[addrB] = u256.FromUint64(333)

	var p asm.Program
	p.PushBytes(addrB[:]).Op(evm.BALANCE)
	st.code[addrA] = returnTop(&p)
	res := evm.New(st, evm.Config{Lenient: true}).Call(user, addrA, nil, testGas, u256.Zero())
	if got := u256.FromBytes(res.Output); got.Uint64() != 333 {
		t.Errorf("balance(B) = %s", got)
	}

	var q asm.Program
	q.Op(evm.SELFBALANCE)
	st.code[addrA] = returnTop(&q)
	res = evm.New(st, evm.Config{Lenient: true}).Call(user, addrA, nil, testGas, u256.Zero())
	if got := u256.FromBytes(res.Output); got.Uint64() != 777 {
		t.Errorf("selfbalance = %s", got)
	}
}
