package evm

import (
	"sync"

	"repro/internal/etypes"
	"repro/internal/u256"
)

// Frames are pooled across calls: one probe emulation enters hundreds of
// frames, and each used to allocate a Frame, a growing stack slice, and a
// memory buffer. The fixed-array stack plus the retained memory buffer make
// a recycled Frame allocation-free to reacquire. Release scrubs every field
// the interpreter or a tracer could observe; the Tracer contract already
// forbids retaining a *Frame beyond a callback, so reuse is invisible.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

func acquireFrame() *Frame {
	return framePool.Get().(*Frame)
}

func releaseFrame(f *Frame) {
	f.evm = nil
	f.address = etypes.Address{}
	f.codeAddress = etypes.Address{}
	f.caller = etypes.Address{}
	f.input = nil
	f.value = u256.Zero()
	f.code = nil
	f.static = false
	f.stack.reset()
	f.memory.release()
	f.gas = 0
	f.returnData = nil
	f.jumpdests = nil
	f.prog = nil
	framePool.Put(f)
}
