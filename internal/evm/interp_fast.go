package evm

import (
	"repro/internal/etypes"
	"repro/internal/keccak"
	"repro/internal/u256"
)

// runFast executes the frame's pre-decoded program. It mirrors
// runReference exactly — same error ordering (step limit, step count,
// defined check, stack depth, constant gas, tracer capture, body), same
// gas model, same state effects — but dispatches on the dense pre-decoded
// kind, reads PUSH immediates already materialized as u256.Int, resolves
// jumps through the program's index table, and (untraced) executes fused
// superinstructions. The parity harness in internal/evm/parity holds the
// two loops in lockstep to prove the equivalence rather than assume it.
func (e *EVM) runFast(f *Frame) ([]byte, error) {
	prog := f.prog
	if prog == nil {
		return nil, nil // calls to code-less accounts succeed with no output
	}
	ins := prog.instrs
	tracer := e.cfg.Tracer
	limit := e.cfg.StepLimit
	st := &f.stack

	for ip := 0; ip < len(ins); {
		in := &ins[ip]

		if in.kind >= fusedKindBase {
			nip, err := e.stepFused(f, prog, in, ip)
			if err != nil {
				return nil, err
			}
			ip = nip
			continue
		}

		if e.steps >= limit {
			return nil, ErrStepLimit
		}
		e.steps++
		if in.kind == kindInvalid {
			return nil, ErrInvalidOpcode
		}
		if st.n < int(in.need) {
			return nil, ErrStackUnderflow
		}
		if st.n+int(in.peak) > stackLimit {
			return nil, ErrStackOverflow
		}
		if f.gas < uint64(in.gas) {
			return nil, ErrOutOfGas
		}
		f.gas -= uint64(in.gas)
		if tracer != nil {
			tracer.CaptureStep(f, uint64(in.pc), in.op)
		}

		switch in.kind {
		case kindPush:
			st.Push(in.imm)
		case kindDup:
			st.dup(int(in.n))
		case kindSwap:
			st.swap(int(in.n))
		case kindLog:
			if err := e.opLog(f, int(in.n)); err != nil {
				return nil, err
			}

		case uint16(STOP):
			return nil, nil

		case uint16(ADD):
			a, b := st.Pop(), st.Pop()
			st.Push(a.Add(b))
		case uint16(MUL):
			a, b := st.Pop(), st.Pop()
			st.Push(a.Mul(b))
		case uint16(SUB):
			a, b := st.Pop(), st.Pop()
			st.Push(a.Sub(b))
		case uint16(DIV):
			a, b := st.Pop(), st.Pop()
			st.Push(a.Div(b))
		case uint16(SDIV):
			a, b := st.Pop(), st.Pop()
			st.Push(a.SDiv(b))
		case uint16(MOD):
			a, b := st.Pop(), st.Pop()
			st.Push(a.Mod(b))
		case uint16(SMOD):
			a, b := st.Pop(), st.Pop()
			st.Push(a.SMod(b))
		case uint16(ADDMOD):
			a, b, m := st.Pop(), st.Pop(), st.Pop()
			st.Push(a.AddMod(b, m))
		case uint16(MULMOD):
			a, b, m := st.Pop(), st.Pop(), st.Pop()
			st.Push(a.MulMod(b, m))
		case uint16(EXP):
			base, exp := st.Pop(), st.Pop()
			if err := f.chargeGas(gasExpByte * uint64((exp.BitLen()+7)/8)); err != nil {
				return nil, err
			}
			st.Push(base.Exp(exp))
		case uint16(SIGNEXTEND):
			b, x := st.Pop(), st.Pop()
			st.Push(x.SignExtend(b))

		case uint16(LT):
			a, b := st.Pop(), st.Pop()
			st.Push(boolWord(a.Lt(b)))
		case uint16(GT):
			a, b := st.Pop(), st.Pop()
			st.Push(boolWord(a.Gt(b)))
		case uint16(SLT):
			a, b := st.Pop(), st.Pop()
			st.Push(boolWord(a.Slt(b)))
		case uint16(SGT):
			a, b := st.Pop(), st.Pop()
			st.Push(boolWord(a.Sgt(b)))
		case uint16(EQ):
			a, b := st.Pop(), st.Pop()
			st.Push(boolWord(a.Eq(b)))
		case uint16(ISZERO):
			a := st.Pop()
			st.Push(boolWord(a.IsZero()))
		case uint16(AND):
			a, b := st.Pop(), st.Pop()
			st.Push(a.And(b))
		case uint16(OR):
			a, b := st.Pop(), st.Pop()
			st.Push(a.Or(b))
		case uint16(XOR):
			a, b := st.Pop(), st.Pop()
			st.Push(a.Xor(b))
		case uint16(NOT):
			a := st.Pop()
			st.Push(a.Not())
		case uint16(BYTE):
			i, x := st.Pop(), st.Pop()
			if !i.IsUint64() {
				st.Push(u256.Zero())
			} else {
				st.Push(x.Byte(i.Uint64()))
			}
		case uint16(SHL):
			shift, x := st.Pop(), st.Pop()
			st.Push(shiftAmount(shift, x, u256.Int.Shl))
		case uint16(SHR):
			shift, x := st.Pop(), st.Pop()
			st.Push(shiftAmount(shift, x, u256.Int.Shr))
		case uint16(SAR):
			shift, x := st.Pop(), st.Pop()
			if !shift.IsUint64() || shift.Uint64() >= 256 {
				st.Push(x.Sar(256))
			} else {
				st.Push(x.Sar(uint(shift.Uint64())))
			}

		case uint16(KECCAK256):
			offV, sizeV := st.Pop(), st.Pop()
			off, size, err := toRegion(offV, sizeV)
			if err != nil {
				return nil, err
			}
			if err := f.chargeMemory(off, size); err != nil {
				return nil, err
			}
			if err := f.chargeGas(gasKeccakWord * wordCount(size)); err != nil {
				return nil, err
			}
			sum := keccak.Sum256(f.memory.View(off, size))
			st.Push(u256.FromBytes32(sum))

		case uint16(ADDRESS):
			st.Push(f.address.Word())
		case uint16(BALANCE):
			addr := etypes.AddressFromWord(st.Pop())
			st.Push(e.state.GetBalance(addr))
		case uint16(ORIGIN):
			st.Push(e.cfg.Tx.Origin.Word())
		case uint16(CALLER):
			st.Push(f.caller.Word())
		case uint16(CALLVALUE):
			st.Push(f.value)
		case uint16(CALLDATALOAD):
			offV := st.Pop()
			if !offV.IsUint64() {
				st.Push(u256.Zero())
			} else {
				st.Push(u256.FromBytes(zeroPadded(f.input, offV.Uint64(), 32)))
			}
		case uint16(CALLDATASIZE):
			st.Push(u256.FromUint64(uint64(len(f.input))))
		case uint16(CALLDATACOPY):
			if err := e.opCopy(f, f.input); err != nil {
				return nil, err
			}
		case uint16(CODESIZE):
			st.Push(u256.FromUint64(prog.codeLen))
		case uint16(CODECOPY):
			if err := e.opCopy(f, f.code); err != nil {
				return nil, err
			}
		case uint16(GASPRICE):
			st.Push(e.cfg.Tx.GasPrice)
		case uint16(EXTCODESIZE):
			addr := etypes.AddressFromWord(st.Pop())
			st.Push(u256.FromUint64(uint64(len(e.state.GetCode(addr)))))
		case uint16(EXTCODECOPY):
			addr := etypes.AddressFromWord(st.Pop())
			if err := e.opCopy(f, e.state.GetCode(addr)); err != nil {
				return nil, err
			}
		case uint16(RETURNDATASIZE):
			st.Push(u256.FromUint64(uint64(len(f.returnData))))
		case uint16(RETURNDATACOPY):
			if err := e.opCopy(f, f.returnData); err != nil {
				return nil, err
			}
		case uint16(EXTCODEHASH):
			addr := etypes.AddressFromWord(st.Pop())
			st.Push(e.state.GetCodeHash(addr).Word())

		case uint16(BLOCKHASH):
			numV := st.Pop()
			var h etypes.Hash
			if numV.IsUint64() && e.cfg.Block.BlockHash != nil {
				h = e.cfg.Block.BlockHash(numV.Uint64())
			}
			st.Push(h.Word())
		case uint16(COINBASE):
			st.Push(e.cfg.Block.Coinbase.Word())
		case uint16(TIMESTAMP):
			st.Push(u256.FromUint64(e.cfg.Block.Time))
		case uint16(NUMBER):
			st.Push(u256.FromUint64(e.cfg.Block.Number))
		case uint16(DIFFICULTY):
			st.Push(e.cfg.Block.Difficulty)
		case uint16(GASLIMIT):
			st.Push(u256.FromUint64(e.cfg.Block.GasLimit))
		case uint16(CHAINID):
			st.Push(e.cfg.Block.ChainID)
		case uint16(SELFBALANCE):
			st.Push(e.state.GetBalance(f.address))
		case uint16(BASEFEE):
			st.Push(e.cfg.Block.BaseFee)

		case uint16(POP):
			st.Pop()
		case uint16(MLOAD):
			offV := st.Pop()
			off, err := toOffset(offV)
			if err != nil {
				return nil, err
			}
			if err := f.chargeMemory(off, 32); err != nil {
				return nil, err
			}
			st.Push(f.memory.GetWord(off))
		case uint16(MSTORE):
			offV, val := st.Pop(), st.Pop()
			off, err := toOffset(offV)
			if err != nil {
				return nil, err
			}
			if err := f.chargeMemory(off, 32); err != nil {
				return nil, err
			}
			f.memory.SetWord(off, val)
		case uint16(MSTORE8):
			offV, val := st.Pop(), st.Pop()
			off, err := toOffset(offV)
			if err != nil {
				return nil, err
			}
			if err := f.chargeMemory(off, 1); err != nil {
				return nil, err
			}
			f.memory.SetByte(off, byte(val.Uint64()))
		case uint16(SLOAD):
			key := etypes.HashFromWord(st.Pop())
			st.Push(e.state.GetState(f.address, key).Word())
		case uint16(SSTORE):
			if f.static {
				return nil, ErrWriteProtection
			}
			key := etypes.HashFromWord(st.Pop())
			val := etypes.HashFromWord(st.Pop())
			cost := uint64(gasSstoreReset)
			if e.state.GetState(f.address, key) == (etypes.Hash{}) && val != (etypes.Hash{}) {
				cost = gasSstoreSet
			}
			if err := f.chargeGas(cost); err != nil {
				return nil, err
			}
			e.state.SetState(f.address, key, val)

		case uint16(JUMP):
			dest := st.Pop()
			nip := prog.jumpTo(dest)
			if nip < 0 {
				return nil, ErrInvalidJump
			}
			ip = int(nip)
			continue
		case uint16(JUMPI):
			dest, cond := st.Pop(), st.Pop()
			if !cond.IsZero() {
				nip := prog.jumpTo(dest)
				if nip < 0 {
					return nil, ErrInvalidJump
				}
				ip = int(nip)
				continue
			}
		case uint16(PC):
			st.Push(u256.FromUint64(uint64(in.pc)))
		case uint16(MSIZE):
			st.Push(u256.FromUint64(uint64(f.memory.Len())))
		case uint16(GAS):
			st.Push(u256.FromUint64(f.gas))
		case uint16(JUMPDEST):
			// No effect.

		case uint16(CREATE), uint16(CREATE2):
			if err := e.opCreate(f, in.op); err != nil {
				return nil, err
			}
		case uint16(CALL), uint16(CALLCODE), uint16(DELEGATECALL), uint16(STATICCALL):
			if err := e.opCall(f, in.op); err != nil {
				return nil, err
			}

		case uint16(RETURN):
			offV, sizeV := st.Pop(), st.Pop()
			out, err := e.frameOutput(f, offV, sizeV)
			if err != nil {
				return nil, err
			}
			return out, nil
		case uint16(REVERT):
			offV, sizeV := st.Pop(), st.Pop()
			out, err := e.frameOutput(f, offV, sizeV)
			if err != nil {
				return nil, err
			}
			return out, ErrRevert
		case uint16(SELFDESTRUCT):
			if f.static {
				return nil, ErrWriteProtection
			}
			beneficiary := etypes.AddressFromWord(st.Pop())
			e.state.SelfDestruct(f.address, beneficiary)
			return nil, nil

		default:
			return nil, ErrInvalidOpcode
		}
		ip++
	}
	// Running off the end of code halts like STOP.
	return nil, nil
}

// stepFused executes one fused superinstruction and returns the next
// instruction index. The fast precondition checks the folded step, stack,
// and gas requirements in one shot; exactness of need/peak (see fuseInstr)
// means the precondition fails only when some component would fail its
// reference-loop check — in which case fusedSlow replays the components
// one by one, reproducing the exact error at the exact step with the exact
// partial charges applied.
func (e *EVM) stepFused(f *Frame, prog *program, in *instr, ip int) (int, error) {
	st := &f.stack
	k := uint64(in.steps)
	if e.steps+k > e.cfg.StepLimit || st.n < int(in.need) ||
		st.n+int(in.peak) > stackLimit || f.gas < uint64(in.gas) {
		return e.fusedSlow(f, prog, in, ip)
	}
	e.steps += k
	f.gas -= uint64(in.gas)

	switch in.kind {
	case kindPushJump:
		if in.dest < 0 {
			return 0, ErrInvalidJump
		}
		return int(in.dest), nil

	case kindPushJumpI:
		cond := st.Pop()
		if cond.IsZero() {
			return ip + 1, nil
		}
		if in.dest < 0 {
			return 0, ErrInvalidJump
		}
		return int(in.dest), nil

	case kindDispatch:
		x := st.Pop()
		if !x.Eq(in.imm) {
			return ip + 1, nil
		}
		if in.dest < 0 {
			return 0, ErrInvalidJump
		}
		return int(in.dest), nil

	case kindDupPushJumpI:
		// DUPn; PUSH dest; JUMPI nets to zero: the duplicated condition
		// and the pushed dest are both consumed by JUMPI.
		cond := st.Peek(int(in.n) - 1)
		if cond.IsZero() {
			return ip + 1, nil
		}
		if in.dest < 0 {
			return 0, ErrInvalidJump
		}
		return int(in.dest), nil

	case kindSwapPop:
		// SWAPn; POP: the word n below the top is replaced by the old top.
		top := st.n - 1
		st.data[top-int(in.n)] = st.data[top]
		st.n--
		return ip + 1, nil
	}
	return 0, ErrInvalidOpcode // unreachable: all fused kinds handled
}

// fusedSlow replays a fused superinstruction component by component with
// the reference loop's full per-op discipline. It runs only when the fast
// precondition fails, so some component is about to fail — but which one,
// and with how much state consumed first, must match the reference loop
// exactly; executing the components for real (not just re-checking) keeps
// this correct even for sequences that partially succeed.
func (e *EVM) fusedSlow(f *Frame, prog *program, in *instr, ip int) (int, error) {
	var ops [4]Op
	var imms [4]u256.Int
	n := fusedComponents(in, &ops, &imms)

	st := &f.stack
	for i := 0; i < n; i++ {
		op := ops[i]
		if e.steps >= e.cfg.StepLimit {
			return 0, ErrStepLimit
		}
		e.steps++
		pops, pushes := stackReq(op)
		if st.n < pops {
			return 0, ErrStackUnderflow
		}
		if st.n-pops+pushes > stackLimit {
			return 0, ErrStackOverflow
		}
		if err := f.chargeGas(constGas(op)); err != nil {
			return 0, err
		}
		switch {
		case isPushLike(op):
			st.Push(imms[i])
		case op.IsDup():
			st.dup(int(op-DUP1) + 1)
		case op.IsSwap():
			st.swap(int(op-SWAP1) + 1)
		case op == POP:
			st.Pop()
		case op == EQ:
			a, b := st.Pop(), st.Pop()
			st.Push(boolWord(a.Eq(b)))
		case op == JUMP:
			dest := st.Pop()
			nip := prog.jumpTo(dest)
			if nip < 0 {
				return 0, ErrInvalidJump
			}
			return int(nip), nil
		case op == JUMPI:
			dest, cond := st.Pop(), st.Pop()
			if !cond.IsZero() {
				nip := prog.jumpTo(dest)
				if nip < 0 {
					return 0, ErrInvalidJump
				}
				return int(nip), nil
			}
		}
	}
	return ip + 1, nil
}

// fusedComponents expands a fused instr back into its source opcodes and
// push immediates for exact replay.
func fusedComponents(in *instr, ops *[4]Op, imms *[4]u256.Int) int {
	switch in.kind {
	case kindPushJump:
		ops[0], imms[0] = in.op, in.imm
		ops[1] = JUMP
		return 2
	case kindPushJumpI:
		ops[0], imms[0] = in.op, in.imm
		ops[1] = JUMPI
		return 2
	case kindDispatch:
		ops[0], imms[0] = in.op, in.imm
		ops[1] = EQ
		ops[2], imms[2] = in.destOp, u256.FromUint64(in.destPc)
		ops[3] = JUMPI
		return 4
	case kindDupPushJumpI:
		ops[0] = in.op
		ops[1], imms[1] = in.destOp, u256.FromUint64(in.destPc)
		ops[2] = JUMPI
		return 3
	case kindSwapPop:
		ops[0] = in.op
		ops[1] = POP
		return 2
	}
	return 0
}
