package evm

import "fmt"

// Op is a single EVM opcode byte.
type Op byte

// Opcode values through the Shanghai fork.
const (
	STOP       Op = 0x00
	ADD        Op = 0x01
	MUL        Op = 0x02
	SUB        Op = 0x03
	DIV        Op = 0x04
	SDIV       Op = 0x05
	MOD        Op = 0x06
	SMOD       Op = 0x07
	ADDMOD     Op = 0x08
	MULMOD     Op = 0x09
	EXP        Op = 0x0a
	SIGNEXTEND Op = 0x0b

	LT     Op = 0x10
	GT     Op = 0x11
	SLT    Op = 0x12
	SGT    Op = 0x13
	EQ     Op = 0x14
	ISZERO Op = 0x15
	AND    Op = 0x16
	OR     Op = 0x17
	XOR    Op = 0x18
	NOT    Op = 0x19
	BYTE   Op = 0x1a
	SHL    Op = 0x1b
	SHR    Op = 0x1c
	SAR    Op = 0x1d

	KECCAK256 Op = 0x20

	ADDRESS        Op = 0x30
	BALANCE        Op = 0x31
	ORIGIN         Op = 0x32
	CALLER         Op = 0x33
	CALLVALUE      Op = 0x34
	CALLDATALOAD   Op = 0x35
	CALLDATASIZE   Op = 0x36
	CALLDATACOPY   Op = 0x37
	CODESIZE       Op = 0x38
	CODECOPY       Op = 0x39
	GASPRICE       Op = 0x3a
	EXTCODESIZE    Op = 0x3b
	EXTCODECOPY    Op = 0x3c
	RETURNDATASIZE Op = 0x3d
	RETURNDATACOPY Op = 0x3e
	EXTCODEHASH    Op = 0x3f

	BLOCKHASH   Op = 0x40
	COINBASE    Op = 0x41
	TIMESTAMP   Op = 0x42
	NUMBER      Op = 0x43
	DIFFICULTY  Op = 0x44 // PREVRANDAO post-merge; the byte is the same
	GASLIMIT    Op = 0x45
	CHAINID     Op = 0x46
	SELFBALANCE Op = 0x47
	BASEFEE     Op = 0x48

	POP      Op = 0x50
	MLOAD    Op = 0x51
	MSTORE   Op = 0x52
	MSTORE8  Op = 0x53
	SLOAD    Op = 0x54
	SSTORE   Op = 0x55
	JUMP     Op = 0x56
	JUMPI    Op = 0x57
	PC       Op = 0x58
	MSIZE    Op = 0x59
	GAS      Op = 0x5a
	JUMPDEST Op = 0x5b
	PUSH0    Op = 0x5f

	PUSH1  Op = 0x60
	PUSH2  Op = 0x61
	PUSH3  Op = 0x62
	PUSH4  Op = 0x63
	PUSH5  Op = 0x64
	PUSH20 Op = 0x73
	PUSH32 Op = 0x7f

	DUP1  Op = 0x80
	DUP16 Op = 0x8f

	SWAP1  Op = 0x90
	SWAP16 Op = 0x9f

	LOG0 Op = 0xa0
	LOG4 Op = 0xa4

	CREATE       Op = 0xf0
	CALL         Op = 0xf1
	CALLCODE     Op = 0xf2
	RETURN       Op = 0xf3
	DELEGATECALL Op = 0xf4
	CREATE2      Op = 0xf5
	STATICCALL   Op = 0xfa
	REVERT       Op = 0xfd
	INVALID      Op = 0xfe
	SELFDESTRUCT Op = 0xff
)

// IsPush reports whether op is PUSH1..PUSH32 (PUSH0 carries no immediate).
func (op Op) IsPush() bool { return op >= PUSH1 && op <= PUSH32 }

// PushSize returns the number of immediate bytes following a PUSH opcode
// (zero for non-push opcodes and PUSH0).
func (op Op) PushSize() int {
	if op.IsPush() {
		return int(op-PUSH1) + 1
	}
	return 0
}

// IsDup reports whether op is DUP1..DUP16.
func (op Op) IsDup() bool { return op >= DUP1 && op <= DUP16 }

// IsSwap reports whether op is SWAP1..SWAP16.
func (op Op) IsSwap() bool { return op >= SWAP1 && op <= SWAP16 }

// IsLog reports whether op is LOG0..LOG4.
func (op Op) IsLog() bool { return op >= LOG0 && op <= LOG4 }

// opNames maps defined opcodes to their mnemonics.
var opNames = map[Op]string{
	STOP: "STOP", ADD: "ADD", MUL: "MUL", SUB: "SUB", DIV: "DIV",
	SDIV: "SDIV", MOD: "MOD", SMOD: "SMOD", ADDMOD: "ADDMOD",
	MULMOD: "MULMOD", EXP: "EXP", SIGNEXTEND: "SIGNEXTEND",
	LT: "LT", GT: "GT", SLT: "SLT", SGT: "SGT", EQ: "EQ", ISZERO: "ISZERO",
	AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT", BYTE: "BYTE",
	SHL: "SHL", SHR: "SHR", SAR: "SAR",
	KECCAK256: "KECCAK256",
	ADDRESS:   "ADDRESS", BALANCE: "BALANCE", ORIGIN: "ORIGIN",
	CALLER: "CALLER", CALLVALUE: "CALLVALUE", CALLDATALOAD: "CALLDATALOAD",
	CALLDATASIZE: "CALLDATASIZE", CALLDATACOPY: "CALLDATACOPY",
	CODESIZE: "CODESIZE", CODECOPY: "CODECOPY", GASPRICE: "GASPRICE",
	EXTCODESIZE: "EXTCODESIZE", EXTCODECOPY: "EXTCODECOPY",
	RETURNDATASIZE: "RETURNDATASIZE", RETURNDATACOPY: "RETURNDATACOPY",
	EXTCODEHASH: "EXTCODEHASH",
	BLOCKHASH:   "BLOCKHASH", COINBASE: "COINBASE", TIMESTAMP: "TIMESTAMP",
	NUMBER: "NUMBER", DIFFICULTY: "DIFFICULTY", GASLIMIT: "GASLIMIT",
	CHAINID: "CHAINID", SELFBALANCE: "SELFBALANCE", BASEFEE: "BASEFEE",
	POP: "POP", MLOAD: "MLOAD", MSTORE: "MSTORE", MSTORE8: "MSTORE8",
	SLOAD: "SLOAD", SSTORE: "SSTORE", JUMP: "JUMP", JUMPI: "JUMPI",
	PC: "PC", MSIZE: "MSIZE", GAS: "GAS", JUMPDEST: "JUMPDEST", PUSH0: "PUSH0",
	CREATE: "CREATE", CALL: "CALL", CALLCODE: "CALLCODE", RETURN: "RETURN",
	DELEGATECALL: "DELEGATECALL", CREATE2: "CREATE2", STATICCALL: "STATICCALL",
	REVERT: "REVERT", INVALID: "INVALID", SELFDESTRUCT: "SELFDESTRUCT",
}

// String returns the mnemonic for op, e.g. "PUSH4" or "DUP2".
func (op Op) String() string {
	switch {
	case op.IsPush():
		return fmt.Sprintf("PUSH%d", op.PushSize())
	case op.IsDup():
		return fmt.Sprintf("DUP%d", int(op-DUP1)+1)
	case op.IsSwap():
		return fmt.Sprintf("SWAP%d", int(op-SWAP1)+1)
	case op.IsLog():
		return fmt.Sprintf("LOG%d", int(op-LOG0))
	}
	if name, ok := opNames[op]; ok {
		return name
	}
	return fmt.Sprintf("UNDEFINED(0x%02x)", byte(op))
}

// Defined reports whether op is a defined opcode in this EVM revision.
func (op Op) Defined() bool {
	if op.IsPush() || op.IsDup() || op.IsSwap() || op.IsLog() {
		return true
	}
	_, ok := opNames[op]
	return ok
}

// OpByName resolves a mnemonic (e.g. "PUSH4", "DELEGATECALL") to its opcode.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return op, true
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "PUSH%d", &n); err == nil && n >= 0 && n <= 32 {
		if n == 0 {
			return PUSH0, true
		}
		return PUSH1 + Op(n-1), true
	}
	if _, err := fmt.Sscanf(name, "DUP%d", &n); err == nil && n >= 1 && n <= 16 {
		return DUP1 + Op(n-1), true
	}
	if _, err := fmt.Sscanf(name, "SWAP%d", &n); err == nil && n >= 1 && n <= 16 {
		return SWAP1 + Op(n-1), true
	}
	if _, err := fmt.Sscanf(name, "LOG%d", &n); err == nil && n >= 0 && n <= 4 {
		return LOG0 + Op(n), true
	}
	return 0, false
}
