package evm

import "repro/internal/u256"

// Memory is the transient byte-addressed memory of a call frame. It grows in
// 32-byte words and is zero-initialized, matching EVM semantics. Pooled
// frames keep the backing array between runs; expand re-zeroes any capacity
// it re-exposes, so reuse is invisible to the executing code.
type Memory struct {
	data []byte
}

// memoryRetainCap bounds how large a backing array a pooled frame keeps.
// Frames that ballooned past it drop the buffer on release rather than
// pinning multi-megabyte arrays in the pool.
const memoryRetainCap = 64 * 1024

// Len returns the current memory size in bytes (always a multiple of 32).
func (m *Memory) Len() int { return len(m.data) }

// expand grows memory so that [offset, offset+size) is addressable, rounding
// the new size up to a 32-byte word boundary.
func (m *Memory) expand(offset, size uint64) {
	if size == 0 {
		return
	}
	end := offset + size
	if end <= uint64(len(m.data)) {
		return
	}
	newLen := (end + 31) / 32 * 32
	if newLen <= uint64(cap(m.data)) {
		// Reuse retained capacity from a pooled frame's previous run; the
		// re-exposed region must read as zero.
		old := len(m.data)
		m.data = m.data[:newLen]
		clear(m.data[old:])
		return
	}
	grown := make([]byte, newLen)
	copy(grown, m.data)
	m.data = grown
}

// release resets memory for pooled reuse, retaining modest backing arrays.
func (m *Memory) release() {
	if cap(m.data) > memoryRetainCap {
		m.data = nil
		return
	}
	m.data = m.data[:0]
}

// SetByte writes a single byte at offset, expanding as needed.
func (m *Memory) SetByte(offset uint64, b byte) {
	m.expand(offset, 1)
	m.data[offset] = b
}

// SetWord writes a 32-byte big-endian word at offset.
func (m *Memory) SetWord(offset uint64, v u256.Int) {
	m.expand(offset, 32)
	buf := v.Bytes32()
	copy(m.data[offset:offset+32], buf[:])
}

// GetWord reads a 32-byte big-endian word at offset, expanding as needed
// (MLOAD expands memory even when reading).
func (m *Memory) GetWord(offset uint64) u256.Int {
	m.expand(offset, 32)
	return u256.FromBytes(m.data[offset : offset+32])
}

// Set copies data into memory at offset, expanding as needed.
func (m *Memory) Set(offset uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	m.expand(offset, uint64(len(data)))
	copy(m.data[offset:], data)
}

// Get returns a copy of size bytes at offset, expanding as needed.
func (m *Memory) Get(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	m.expand(offset, size)
	out := make([]byte, size)
	copy(out, m.data[offset:offset+size])
	return out
}

// View returns the memory region without copying; callers must not retain it
// across further writes. Used on hot paths (hashing, call argument slicing).
func (m *Memory) View(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	m.expand(offset, size)
	return m.data[offset : offset+size]
}

// copyWithin implements MCOPY-style copying semantics used by *COPY opcodes:
// writes data (which may be a zero-padded external source) at dst.
func (m *Memory) copyWithin(dst uint64, src []byte) { m.Set(dst, src) }
