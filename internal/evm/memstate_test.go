package evm_test

import (
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// memState is a minimal journaling StateDB for interpreter tests.
type memState struct {
	code     map[etypes.Address][]byte
	storage  map[etypes.Address]map[etypes.Hash]etypes.Hash
	balance  map[etypes.Address]u256.Int
	nonce    map[etypes.Address]uint64
	logs     []memLog
	journal  []func()
	revision int
}

type memLog struct {
	addr   etypes.Address
	topics []etypes.Hash
	data   []byte
}

func newMemState() *memState {
	return &memState{
		code:    make(map[etypes.Address][]byte),
		storage: make(map[etypes.Address]map[etypes.Hash]etypes.Hash),
		balance: make(map[etypes.Address]u256.Int),
		nonce:   make(map[etypes.Address]uint64),
	}
}

var _ evm.StateDB = (*memState)(nil)

func (s *memState) Exists(a etypes.Address) bool {
	_, ok := s.code[a]
	if !ok {
		_, ok = s.nonce[a]
	}
	return ok
}

func (s *memState) GetCode(a etypes.Address) []byte { return s.code[a] }

func (s *memState) GetCodeHash(a etypes.Address) etypes.Hash {
	return etypes.Keccak(s.code[a])
}

func (s *memState) GetBalance(a etypes.Address) u256.Int { return s.balance[a] }

func (s *memState) Transfer(from, to etypes.Address, v u256.Int) {
	pf, pt := s.balance[from], s.balance[to]
	s.journal = append(s.journal, func() { s.balance[from], s.balance[to] = pf, pt })
	s.balance[from] = pf.Sub(v)
	s.balance[to] = pt.Add(v)
}

func (s *memState) GetState(a etypes.Address, k etypes.Hash) etypes.Hash {
	return s.storage[a][k]
}

func (s *memState) SetState(a etypes.Address, k, v etypes.Hash) {
	m := s.storage[a]
	if m == nil {
		m = make(map[etypes.Hash]etypes.Hash)
		s.storage[a] = m
	}
	prev := m[k]
	s.journal = append(s.journal, func() { m[k] = prev })
	m[k] = v
}

func (s *memState) GetNonce(a etypes.Address) uint64 { return s.nonce[a] }

func (s *memState) SetNonce(a etypes.Address, n uint64) {
	prev := s.nonce[a]
	s.journal = append(s.journal, func() { s.nonce[a] = prev })
	s.nonce[a] = n
}

func (s *memState) CreateAccount(a etypes.Address) {
	if _, ok := s.nonce[a]; !ok {
		s.journal = append(s.journal, func() { delete(s.nonce, a) })
		s.nonce[a] = 0
	}
}

func (s *memState) SetCode(a etypes.Address, code []byte) {
	prev, had := s.code[a]
	s.journal = append(s.journal, func() {
		if had {
			s.code[a] = prev
		} else {
			delete(s.code, a)
		}
	})
	s.code[a] = code
}

func (s *memState) SelfDestruct(a, beneficiary etypes.Address) {
	s.Transfer(a, beneficiary, s.balance[a])
	s.SetCode(a, nil)
}

func (s *memState) Snapshot() int { return len(s.journal) }

func (s *memState) RevertToSnapshot(rev int) {
	for len(s.journal) > rev {
		s.journal[len(s.journal)-1]()
		s.journal = s.journal[:len(s.journal)-1]
	}
}

func (s *memState) AddLog(a etypes.Address, topics []etypes.Hash, data []byte) {
	s.logs = append(s.logs, memLog{addr: a, topics: topics, data: data})
}
