package evm_test

import (
	"crypto/sha256"
	"testing"

	"repro/internal/asm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// callPrecompile builds a caller that sends its call data to the given
// precompile and returns the precompile's output.
func callPrecompile(target etypes.Address) []byte {
	var p asm.Program
	p.Op(evm.CALLDATASIZE).PushUint(0).PushUint(0).Op(evm.CALLDATACOPY).
		PushUint(64).PushUint(0). // ret region
		Op(evm.CALLDATASIZE).PushUint(0).
		PushUint(0). // value
		PushBytes(target[:]).
		PushUint(1_000_000).
		Op(evm.CALL).Op(evm.POP).
		Op(evm.RETURNDATASIZE).PushUint(0).PushUint(0).Op(evm.RETURNDATACOPY).
		Op(evm.RETURNDATASIZE).PushUint(0).Op(evm.RETURN)
	return p.MustAssemble()
}

func TestSHA256Precompile(t *testing.T) {
	sha := etypes.MustAddress("0x0000000000000000000000000000000000000002")
	st := newMemState()
	st.code[addrA] = callPrecompile(sha)
	input := []byte("proxy pattern")
	res := evm.New(st, evm.Config{Lenient: true}).Call(user, addrA, input, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := sha256.Sum256(input)
	if string(res.Output) != string(want[:]) {
		t.Errorf("sha256 precompile = %x, want %x", res.Output, want)
	}
}

func TestIdentityPrecompile(t *testing.T) {
	id := etypes.MustAddress("0x0000000000000000000000000000000000000004")
	st := newMemState()
	st.code[addrA] = callPrecompile(id)
	input := []byte{9, 8, 7, 6, 5}
	res := evm.New(st, evm.Config{Lenient: true}).Call(user, addrA, input, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if string(res.Output) != string(input) {
		t.Errorf("identity precompile = %x, want %x", res.Output, input)
	}
}

func TestPrecompileOutOfGas(t *testing.T) {
	// Direct outer call with too little gas.
	sha := etypes.MustAddress("0x0000000000000000000000000000000000000002")
	st := newMemState()
	res := evm.New(st, evm.Config{Lenient: true}).Call(user, sha, make([]byte, 1024), 10, u256.Zero())
	if res.Err == nil {
		t.Error("precompile with starvation gas should fail")
	}
}

func TestUnimplementedPrecompileActsEmpty(t *testing.T) {
	// 0x03 (RIPEMD-160) is not implemented: calls succeed with no output,
	// like any code-less account.
	ripemd := etypes.MustAddress("0x0000000000000000000000000000000000000003")
	st := newMemState()
	res := evm.New(st, evm.Config{Lenient: true}).Call(user, ripemd, []byte{1}, testGas, u256.Zero())
	if res.Err != nil || len(res.Output) != 0 {
		t.Errorf("unimplemented precompile: out=%x err=%v", res.Output, res.Err)
	}
}
