package evm

import (
	"testing"

	"repro/internal/u256"
)

// fill pushes n distinct words (value i+1 at push index i) onto a fresh stack.
func fill(n int) *Stack {
	s := &Stack{}
	for i := 0; i < n; i++ {
		s.Push(u256.FromUint64(uint64(i + 1)))
	}
	return s
}

// TestStackCapacityBoundary pins the exact limit: 1024 pushes fit, and the
// interpreter's overflow precondition (Len+1 > stackLimit) trips at exactly
// 1024, never earlier.
func TestStackCapacityBoundary(t *testing.T) {
	s := &Stack{}
	for i := 0; i < stackLimit; i++ {
		if s.Len()+1 > stackLimit {
			t.Fatalf("overflow precondition tripped at depth %d, want %d", s.Len(), stackLimit)
		}
		s.Push(u256.FromUint64(uint64(i)))
	}
	if s.Len() != stackLimit {
		t.Fatalf("Len=%d after %d pushes", s.Len(), stackLimit)
	}
	if s.Len()+1 <= stackLimit {
		t.Fatalf("overflow precondition did not trip at full depth")
	}
	// A full stack must still be readable end to end.
	if got := s.Peek(stackLimit - 1); !got.Eq(u256.FromUint64(0)) {
		t.Fatalf("bottom of full stack = %s, want 0", got.Hex())
	}
	if got := s.Pop(); !got.Eq(u256.FromUint64(stackLimit - 1)) {
		t.Fatalf("top of full stack = %s, want %d", got.Hex(), stackLimit-1)
	}
}

// TestStackDupBoundaries drives dup at both reach extremes (DUP1 and DUP16)
// and at the capacity edge where the duplicate lands in the last free slot.
func TestStackDupBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		depth int // starting depth
		n     int // dup argument (1-based)
		want  uint64
	}{
		{"dup1-min-depth", 1, 1, 1},
		{"dup16-min-depth", 16, 16, 1},    // reaches the bottom element
		{"dup16-deep", 100, 16, 100 - 15}, // 16th from top of [1..100]
		{"dup1-into-last-slot", stackLimit - 1, 1, stackLimit - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := fill(tc.depth)
			s.dup(tc.n)
			if s.Len() != tc.depth+1 {
				t.Fatalf("Len=%d after dup, want %d", s.Len(), tc.depth+1)
			}
			if got := s.Peek(0); !got.Eq(u256.FromUint64(tc.want)) {
				t.Fatalf("dup(%d) pushed %s, want %d", tc.n, got.Hex(), tc.want)
			}
			// The source slot must be untouched.
			if got := s.Peek(tc.n); !got.Eq(u256.FromUint64(tc.want)) {
				t.Fatalf("dup(%d) disturbed its source: %s", tc.n, got.Hex())
			}
		})
	}
}

// TestStackSwapBoundaries drives swap at SWAP1/SWAP16 reach and at full
// capacity (swap needs no free slot, so it must work on a full stack).
func TestStackSwapBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		depth int
		n     int
	}{
		{"swap1-min-depth", 2, 1},
		{"swap16-min-depth", 17, 16},
		{"swap16-deep", 200, 16},
		{"swap1-full-stack", stackLimit, 1},
		{"swap16-full-stack", stackLimit, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := fill(tc.depth)
			top := s.Peek(0)
			below := s.Peek(tc.n)
			s.swap(tc.n)
			if s.Len() != tc.depth {
				t.Fatalf("swap changed depth: %d -> %d", tc.depth, s.Len())
			}
			if got := s.Peek(0); !got.Eq(below) {
				t.Fatalf("top after swap(%d) = %s, want %s", tc.n, got.Hex(), below.Hex())
			}
			if got := s.Peek(tc.n); !got.Eq(top) {
				t.Fatalf("slot %d after swap = %s, want %s", tc.n, got.Hex(), top.Hex())
			}
			// Everything between top and the swapped slot is untouched.
			for i := 1; i < tc.n; i++ {
				if got := s.Peek(i); !got.Eq(u256.FromUint64(uint64(tc.depth - i))) {
					t.Fatalf("swap(%d) disturbed slot %d: %s", tc.n, i, got.Hex())
				}
			}
		})
	}
}

// TestStackPeekBeyondDepth pins Peek's tracer-safety contract: out-of-range
// indices (including negative) return zero rather than reading stale array
// slots — critical with the fixed backing array, where old words survive
// above the live depth.
func TestStackPeekBeyondDepth(t *testing.T) {
	s := fill(3)
	// Leave stale non-zero data above the live region, as pooled reuse does.
	s.Push(u256.FromUint64(0xdead))
	s.Pop()

	for _, n := range []int{3, 4, 100, stackLimit, -1} {
		if got := s.Peek(n); !got.Eq(u256.Zero()) {
			t.Errorf("Peek(%d) on depth-3 stack = %s, want zero", n, got.Hex())
		}
	}
	if got := s.Peek(2); !got.Eq(u256.FromUint64(1)) {
		t.Errorf("Peek(2) = %s, want 1", got.Hex())
	}
}

// TestStackSnapshotIsolation pins that Snapshot copies: mutating the stack
// afterwards (as pooled reuse by a later frame does) must not alter a
// snapshot a tracer captured earlier.
func TestStackSnapshotIsolation(t *testing.T) {
	s := fill(4)
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d, want 4", len(snap))
	}

	// Simulate pooled reuse: reset and repopulate the same backing array.
	s.reset()
	if s.Len() != 0 {
		t.Fatalf("Len=%d after reset", s.Len())
	}
	for i := 0; i < 8; i++ {
		s.Push(u256.FromUint64(0xffff))
	}

	for i, v := range snap {
		if want := u256.FromUint64(uint64(i + 1)); !v.Eq(want) {
			t.Fatalf("snapshot[%d] mutated to %s after stack reuse, want %s", i, v.Hex(), want.Hex())
		}
	}

	// An empty stack snapshots to an empty slice.
	s.reset()
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Fatalf("empty stack snapshot has %d entries", len(snap))
	}
}

// TestStackResetReuse pins the pooled-reuse contract stated on reset: stale
// words above the new depth are never observable through the public API.
func TestStackResetReuse(t *testing.T) {
	s := fill(100)
	s.reset()
	s.Push(u256.FromUint64(7))
	if got := s.Peek(0); !got.Eq(u256.FromUint64(7)) {
		t.Fatalf("top after reuse = %s, want 7", got.Hex())
	}
	if got := s.Peek(1); !got.Eq(u256.Zero()) {
		t.Fatalf("Peek(1) after reuse leaked stale word %s", got.Hex())
	}
	if snap := s.Snapshot(); len(snap) != 1 {
		t.Fatalf("snapshot after reuse has %d entries, want 1", len(snap))
	}
}
