package evm

import (
	"repro/internal/etypes"
	"repro/internal/keccak"
	"repro/internal/u256"
)

// toOffset converts a stack word to a memory offset/size, failing with
// out-of-gas when the value is absurdly large (a real EVM would run out of
// gas expanding memory to reach it).
func toOffset(v u256.Int) (uint64, error) {
	if !v.IsUint64() || v.Uint64() > memoryCap {
		return 0, ErrOutOfGas
	}
	return v.Uint64(), nil
}

// toRegion converts an (offset, size) stack pair to a memory region,
// validating the sum jointly: offset and size may each sit at memoryCap,
// but a non-empty region must end at or below the cap too. Checking only
// the parts individually would defer the offset+size overflow to the
// memory-charge path; validating here keeps every region that reaches
// chargeMemory/expand arithmetically safe. A zero-size region is valid at
// any in-range offset (it touches no memory), matching chargeMemory's
// size==0 fast path.
func toRegion(offV, sizeV u256.Int) (off, size uint64, err error) {
	off, err = toOffset(offV)
	if err != nil {
		return 0, 0, err
	}
	size, err = toOffset(sizeV)
	if err != nil {
		return 0, 0, err
	}
	if size > 0 && off+size > memoryCap {
		return 0, 0, ErrOutOfGas
	}
	return off, size, nil
}

// zeroPadded returns size bytes of src starting at offset, zero-padding past
// the end, per *COPY opcode semantics.
func zeroPadded(src []byte, offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	out := make([]byte, size)
	if offset < uint64(len(src)) {
		copy(out, src[offset:])
	}
	return out
}

// runReference executes the frame's code to completion and returns its
// output, decoding one opcode at a time. It is the retained reference
// interpreter: runFast (interp_fast.go) is the production path, and the
// lockstep harness in internal/evm/parity executes both over identical
// frames to prove they agree on every observable — step traces, outputs,
// gas, errors, and state writes. Keep the two loops in sync; behavioral
// changes must land in both or the parity suite fails.
func (e *EVM) runReference(f *Frame) ([]byte, error) {
	if len(f.code) == 0 {
		return nil, nil // calls to code-less accounts succeed with no output
	}
	var pc uint64
	codeLen := uint64(len(f.code))

	for pc < codeLen {
		if e.steps >= e.cfg.StepLimit {
			return nil, ErrStepLimit
		}
		e.steps++

		op := Op(f.code[pc])
		if !op.Defined() || op == INVALID {
			return nil, ErrInvalidOpcode
		}
		pops, pushes := stackReq(op)
		if f.stack.Len() < pops {
			return nil, ErrStackUnderflow
		}
		if f.stack.Len()-pops+pushes > stackLimit {
			return nil, ErrStackOverflow
		}
		if err := f.chargeGas(constGas(op)); err != nil {
			return nil, err
		}
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.CaptureStep(f, pc, op)
		}

		switch {
		case op.IsPush():
			n := uint64(op.PushSize())
			end := pc + 1 + n
			if end > codeLen {
				end = codeLen
			}
			imm := make([]byte, n)
			copy(imm, f.code[pc+1:end])
			f.stack.Push(u256.FromBytes(imm))
			pc += 1 + n
			continue
		case op.IsDup():
			f.stack.dup(int(op-DUP1) + 1)
			pc++
			continue
		case op.IsSwap():
			f.stack.swap(int(op-SWAP1) + 1)
			pc++
			continue
		case op.IsLog():
			if err := e.opLog(f, int(op-LOG0)); err != nil {
				return nil, err
			}
			pc++
			continue
		}

		switch op {
		case STOP:
			return nil, nil

		case ADD:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.Add(b))
		case MUL:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.Mul(b))
		case SUB:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.Sub(b))
		case DIV:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.Div(b))
		case SDIV:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.SDiv(b))
		case MOD:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.Mod(b))
		case SMOD:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.SMod(b))
		case ADDMOD:
			a, b, m := f.stack.Pop(), f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.AddMod(b, m))
		case MULMOD:
			a, b, m := f.stack.Pop(), f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.MulMod(b, m))
		case EXP:
			base, exp := f.stack.Pop(), f.stack.Pop()
			if err := f.chargeGas(gasExpByte * uint64((exp.BitLen()+7)/8)); err != nil {
				return nil, err
			}
			f.stack.Push(base.Exp(exp))
		case SIGNEXTEND:
			b, x := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(x.SignExtend(b))

		case LT:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(boolWord(a.Lt(b)))
		case GT:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(boolWord(a.Gt(b)))
		case SLT:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(boolWord(a.Slt(b)))
		case SGT:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(boolWord(a.Sgt(b)))
		case EQ:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(boolWord(a.Eq(b)))
		case ISZERO:
			a := f.stack.Pop()
			f.stack.Push(boolWord(a.IsZero()))
		case AND:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.And(b))
		case OR:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.Or(b))
		case XOR:
			a, b := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(a.Xor(b))
		case NOT:
			a := f.stack.Pop()
			f.stack.Push(a.Not())
		case BYTE:
			i, x := f.stack.Pop(), f.stack.Pop()
			if !i.IsUint64() {
				f.stack.Push(u256.Zero())
			} else {
				f.stack.Push(x.Byte(i.Uint64()))
			}
		case SHL:
			shift, x := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(shiftAmount(shift, x, u256.Int.Shl))
		case SHR:
			shift, x := f.stack.Pop(), f.stack.Pop()
			f.stack.Push(shiftAmount(shift, x, u256.Int.Shr))
		case SAR:
			shift, x := f.stack.Pop(), f.stack.Pop()
			if !shift.IsUint64() || shift.Uint64() >= 256 {
				f.stack.Push(x.Sar(256))
			} else {
				f.stack.Push(x.Sar(uint(shift.Uint64())))
			}

		case KECCAK256:
			offV, sizeV := f.stack.Pop(), f.stack.Pop()
			off, size, err := toRegion(offV, sizeV)
			if err != nil {
				return nil, err
			}
			if err := f.chargeMemory(off, size); err != nil {
				return nil, err
			}
			if err := f.chargeGas(gasKeccakWord * wordCount(size)); err != nil {
				return nil, err
			}
			sum := keccak.Sum256(f.memory.View(off, size))
			f.stack.Push(u256.FromBytes32(sum))

		case ADDRESS:
			f.stack.Push(f.address.Word())
		case BALANCE:
			addr := etypes.AddressFromWord(f.stack.Pop())
			f.stack.Push(e.state.GetBalance(addr))
		case ORIGIN:
			f.stack.Push(e.cfg.Tx.Origin.Word())
		case CALLER:
			f.stack.Push(f.caller.Word())
		case CALLVALUE:
			f.stack.Push(f.value)
		case CALLDATALOAD:
			offV := f.stack.Pop()
			if !offV.IsUint64() {
				f.stack.Push(u256.Zero())
			} else {
				f.stack.Push(u256.FromBytes(zeroPadded(f.input, offV.Uint64(), 32)))
			}
		case CALLDATASIZE:
			f.stack.Push(u256.FromUint64(uint64(len(f.input))))
		case CALLDATACOPY:
			if err := e.opCopy(f, f.input); err != nil {
				return nil, err
			}
		case CODESIZE:
			f.stack.Push(u256.FromUint64(codeLen))
		case CODECOPY:
			if err := e.opCopy(f, f.code); err != nil {
				return nil, err
			}
		case GASPRICE:
			f.stack.Push(e.cfg.Tx.GasPrice)
		case EXTCODESIZE:
			addr := etypes.AddressFromWord(f.stack.Pop())
			f.stack.Push(u256.FromUint64(uint64(len(e.state.GetCode(addr)))))
		case EXTCODECOPY:
			addr := etypes.AddressFromWord(f.stack.Pop())
			if err := e.opCopy(f, e.state.GetCode(addr)); err != nil {
				return nil, err
			}
		case RETURNDATASIZE:
			f.stack.Push(u256.FromUint64(uint64(len(f.returnData))))
		case RETURNDATACOPY:
			if err := e.opCopy(f, f.returnData); err != nil {
				return nil, err
			}
		case EXTCODEHASH:
			addr := etypes.AddressFromWord(f.stack.Pop())
			f.stack.Push(e.state.GetCodeHash(addr).Word())

		case BLOCKHASH:
			numV := f.stack.Pop()
			var h etypes.Hash
			if numV.IsUint64() && e.cfg.Block.BlockHash != nil {
				h = e.cfg.Block.BlockHash(numV.Uint64())
			}
			f.stack.Push(h.Word())
		case COINBASE:
			f.stack.Push(e.cfg.Block.Coinbase.Word())
		case TIMESTAMP:
			f.stack.Push(u256.FromUint64(e.cfg.Block.Time))
		case NUMBER:
			f.stack.Push(u256.FromUint64(e.cfg.Block.Number))
		case DIFFICULTY:
			f.stack.Push(e.cfg.Block.Difficulty)
		case GASLIMIT:
			f.stack.Push(u256.FromUint64(e.cfg.Block.GasLimit))
		case CHAINID:
			f.stack.Push(e.cfg.Block.ChainID)
		case SELFBALANCE:
			f.stack.Push(e.state.GetBalance(f.address))
		case BASEFEE:
			f.stack.Push(e.cfg.Block.BaseFee)

		case POP:
			f.stack.Pop()
		case MLOAD:
			offV := f.stack.Pop()
			off, err := toOffset(offV)
			if err != nil {
				return nil, err
			}
			if err := f.chargeMemory(off, 32); err != nil {
				return nil, err
			}
			f.stack.Push(f.memory.GetWord(off))
		case MSTORE:
			offV, val := f.stack.Pop(), f.stack.Pop()
			off, err := toOffset(offV)
			if err != nil {
				return nil, err
			}
			if err := f.chargeMemory(off, 32); err != nil {
				return nil, err
			}
			f.memory.SetWord(off, val)
		case MSTORE8:
			offV, val := f.stack.Pop(), f.stack.Pop()
			off, err := toOffset(offV)
			if err != nil {
				return nil, err
			}
			if err := f.chargeMemory(off, 1); err != nil {
				return nil, err
			}
			f.memory.SetByte(off, byte(val.Uint64()))
		case SLOAD:
			key := etypes.HashFromWord(f.stack.Pop())
			f.stack.Push(e.state.GetState(f.address, key).Word())
		case SSTORE:
			if f.static {
				return nil, ErrWriteProtection
			}
			key := etypes.HashFromWord(f.stack.Pop())
			val := etypes.HashFromWord(f.stack.Pop())
			cost := uint64(gasSstoreReset)
			if e.state.GetState(f.address, key) == (etypes.Hash{}) && val != (etypes.Hash{}) {
				cost = gasSstoreSet
			}
			if err := f.chargeGas(cost); err != nil {
				return nil, err
			}
			e.state.SetState(f.address, key, val)
		case JUMP:
			dest := f.stack.Pop()
			if !f.validJumpdest(dest) {
				return nil, ErrInvalidJump
			}
			pc = dest.Uint64()
			continue
		case JUMPI:
			dest, cond := f.stack.Pop(), f.stack.Pop()
			if !cond.IsZero() {
				if !f.validJumpdest(dest) {
					return nil, ErrInvalidJump
				}
				pc = dest.Uint64()
				continue
			}
		case PC:
			f.stack.Push(u256.FromUint64(pc))
		case MSIZE:
			f.stack.Push(u256.FromUint64(uint64(f.memory.Len())))
		case GAS:
			f.stack.Push(u256.FromUint64(f.gas))
		case JUMPDEST:
			// No effect.
		case PUSH0:
			f.stack.Push(u256.Zero())

		case CREATE, CREATE2:
			if err := e.opCreate(f, op); err != nil {
				return nil, err
			}
		case CALL, CALLCODE, DELEGATECALL, STATICCALL:
			if err := e.opCall(f, op); err != nil {
				return nil, err
			}

		case RETURN:
			offV, sizeV := f.stack.Pop(), f.stack.Pop()
			out, err := e.frameOutput(f, offV, sizeV)
			if err != nil {
				return nil, err
			}
			return out, nil
		case REVERT:
			offV, sizeV := f.stack.Pop(), f.stack.Pop()
			out, err := e.frameOutput(f, offV, sizeV)
			if err != nil {
				return nil, err
			}
			return out, ErrRevert
		case SELFDESTRUCT:
			if f.static {
				return nil, ErrWriteProtection
			}
			beneficiary := etypes.AddressFromWord(f.stack.Pop())
			e.state.SelfDestruct(f.address, beneficiary)
			return nil, nil

		default:
			return nil, ErrInvalidOpcode
		}
		pc++
	}
	// Running off the end of code halts like STOP.
	return nil, nil
}

// frameOutput reads the RETURN/REVERT output region.
func (e *EVM) frameOutput(f *Frame, offV, sizeV u256.Int) ([]byte, error) {
	off, size, err := toRegion(offV, sizeV)
	if err != nil {
		return nil, err
	}
	if err := f.chargeMemory(off, size); err != nil {
		return nil, err
	}
	return f.memory.Get(off, size), nil
}

// boolWord converts a bool to the EVM's 0/1 word.
func boolWord(b bool) u256.Int {
	if b {
		return u256.One()
	}
	return u256.Zero()
}

// shiftAmount applies an Shl/Shr-style shift with 256-capped amounts.
func shiftAmount(shift, x u256.Int, op func(u256.Int, uint) u256.Int) u256.Int {
	if !shift.IsUint64() || shift.Uint64() >= 256 {
		return u256.Zero()
	}
	return op(x, uint(shift.Uint64()))
}

// opCopy implements the shared CALLDATACOPY/CODECOPY/RETURNDATACOPY/
// EXTCODECOPY semantics: pop destOffset, srcOffset, size and copy with
// zero padding.
func (e *EVM) opCopy(f *Frame, src []byte) error {
	dstV, srcV, sizeV := f.stack.Pop(), f.stack.Pop(), f.stack.Pop()
	dst, size, err := toRegion(dstV, sizeV)
	if err != nil {
		return err
	}
	if err := f.chargeMemory(dst, size); err != nil {
		return err
	}
	if err := f.chargeGas(gasCopyWord * wordCount(size)); err != nil {
		return err
	}
	var srcOff uint64
	if srcV.IsUint64() {
		srcOff = srcV.Uint64()
	} else {
		srcOff = uint64(len(src)) // fully out of range: copy zeros
	}
	f.memory.copyWithin(dst, zeroPadded(src, srcOff, size))
	return nil
}

// opLog implements LOG0..LOG4.
func (e *EVM) opLog(f *Frame, topicCount int) error {
	if f.static {
		return ErrWriteProtection
	}
	offV, sizeV := f.stack.Pop(), f.stack.Pop()
	off, size, err := toRegion(offV, sizeV)
	if err != nil {
		return err
	}
	if err := f.chargeMemory(off, size); err != nil {
		return err
	}
	if err := f.chargeGas(gasLogByte * size); err != nil {
		return err
	}
	topics := make([]etypes.Hash, topicCount)
	for i := 0; i < topicCount; i++ {
		topics[i] = etypes.HashFromWord(f.stack.Pop())
	}
	e.state.AddLog(f.address, topics, f.memory.Get(off, size))
	return nil
}

// opCreate implements CREATE and CREATE2 from within a frame.
func (e *EVM) opCreate(f *Frame, op Op) error {
	if f.static {
		return ErrWriteProtection
	}
	value := f.stack.Pop()
	offV, sizeV := f.stack.Pop(), f.stack.Pop()
	var salt etypes.Hash
	if op == CREATE2 {
		salt = etypes.HashFromWord(f.stack.Pop())
	}
	off, size, err := toRegion(offV, sizeV)
	if err != nil {
		return err
	}
	if err := f.chargeMemory(off, size); err != nil {
		return err
	}
	initCode := f.memory.Get(off, size)

	// Forward all but 1/64 of remaining gas (EIP-150).
	childGas := f.gas - f.gas/64
	f.gas -= childGas

	var res CreateResult
	if op == CREATE2 {
		res = e.Create2(f.address, initCode, salt, childGas, value)
	} else {
		res = e.Create(f.address, initCode, childGas, value)
	}
	f.gas += res.GasLeft
	f.returnData = nil
	if res.Err != nil {
		if res.Err == ErrRevert {
			f.returnData = res.Output
		}
		f.stack.Push(u256.Zero())
		return nil
	}
	f.stack.Push(res.Address.Word())
	return nil
}

// opCall implements the CALL/CALLCODE/DELEGATECALL/STATICCALL family.
func (e *EVM) opCall(f *Frame, op Op) error {
	gasV := f.stack.Pop()
	addr := etypes.AddressFromWord(f.stack.Pop())
	var value u256.Int
	if op == CALL || op == CALLCODE {
		value = f.stack.Pop()
	}
	inOffV, inSizeV := f.stack.Pop(), f.stack.Pop()
	outOffV, outSizeV := f.stack.Pop(), f.stack.Pop()

	if op == CALL && f.static && !value.IsZero() {
		return ErrWriteProtection
	}

	inOff, inSize, err := toRegion(inOffV, inSizeV)
	if err != nil {
		return err
	}
	outOff, outSize, err := toRegion(outOffV, outSizeV)
	if err != nil {
		return err
	}
	if err := f.chargeMemory(inOff, inSize); err != nil {
		return err
	}
	if err := f.chargeMemory(outOff, outSize); err != nil {
		return err
	}
	if !value.IsZero() {
		if err := f.chargeGas(gasCallValue); err != nil {
			return err
		}
	}

	input := f.memory.Get(inOff, inSize)

	// EIP-150 gas forwarding: at most all-but-1/64 of what remains.
	available := f.gas - f.gas/64
	childGas := available
	if gasV.IsUint64() && gasV.Uint64() < available {
		childGas = gasV.Uint64()
	}
	f.gas -= childGas
	if !value.IsZero() {
		childGas += gasCallStipend
	}

	var res CallResult
	switch op {
	case CALL:
		res = e.call(CallKindCall, f.address, f.address, addr, addr, input, childGas, value, f.static)
	case CALLCODE:
		// Execute addr's code with our own storage; caller is self.
		res = e.call(CallKindCallCode, f.address, f.address, f.address, addr, input, childGas, value, f.static)
	case DELEGATECALL:
		// Preserve caller and value; our storage, their code.
		res = e.call(CallKindDelegateCall, f.address, f.caller, f.address, addr, input, childGas, f.value, f.static)
	case STATICCALL:
		res = e.call(CallKindStaticCall, f.address, f.address, addr, addr, input, childGas, u256.Zero(), true)
	}
	f.gas += res.GasLeft
	f.returnData = res.Output

	if outSize > 0 && len(res.Output) > 0 {
		n := uint64(len(res.Output))
		if n > outSize {
			n = outSize
		}
		f.memory.Set(outOff, res.Output[:n])
	}
	f.stack.Push(boolWord(res.Err == nil))
	return nil
}
