package evm_test

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

var (
	addrA = etypes.MustAddress("0x000000000000000000000000000000000000aaaa")
	addrB = etypes.MustAddress("0x000000000000000000000000000000000000bbbb")
	user  = etypes.MustAddress("0x0000000000000000000000000000000000001234")
)

const testGas = 10_000_000

// runCode deploys code at addrA and calls it with input, returning output.
func runCode(t *testing.T, code, input []byte) ([]byte, error) {
	t.Helper()
	st := newMemState()
	st.code[addrA] = code
	e := evm.New(st, evm.Config{Block: evm.DefaultBlockContext(), Lenient: true})
	res := e.Call(user, addrA, input, testGas, u256.Zero())
	return res.Output, res.Err
}

// returnTop is a program suffix that returns the top-of-stack word.
func returnTop(p *asm.Program) []byte {
	p.PushUint(0).Op(evm.MSTORE). // mem[0] = top
					PushUint(32).PushUint(0).Op(evm.RETURN)
	return p.MustAssemble()
}

func TestArithmeticPrograms(t *testing.T) {
	cases := []struct {
		name  string
		build func(p *asm.Program)
		want  uint64
	}{
		{"add", func(p *asm.Program) { p.PushUint(2).PushUint(3).Op(evm.ADD) }, 5},
		{"mul", func(p *asm.Program) { p.PushUint(6).PushUint(7).Op(evm.MUL) }, 42},
		// SUB pops a then b and computes a-b with a = top.
		{"sub", func(p *asm.Program) { p.PushUint(3).PushUint(10).Op(evm.SUB) }, 7},
		{"div", func(p *asm.Program) { p.PushUint(3).PushUint(10).Op(evm.DIV) }, 3},
		{"div by zero", func(p *asm.Program) { p.PushUint(0).PushUint(10).Op(evm.DIV) }, 0},
		{"mod", func(p *asm.Program) { p.PushUint(3).PushUint(10).Op(evm.MOD) }, 1},
		{"exp", func(p *asm.Program) { p.PushUint(8).PushUint(2).Op(evm.EXP) }, 256},
		{"lt", func(p *asm.Program) { p.PushUint(5).PushUint(3).Op(evm.LT) }, 1},
		{"gt", func(p *asm.Program) { p.PushUint(5).PushUint(3).Op(evm.GT) }, 0},
		{"eq", func(p *asm.Program) { p.PushUint(9).PushUint(9).Op(evm.EQ) }, 1},
		{"iszero", func(p *asm.Program) { p.PushUint(0).Op(evm.ISZERO) }, 1},
		{"and", func(p *asm.Program) { p.PushUint(0xf0).PushUint(0xff).Op(evm.AND) }, 0xf0},
		{"or", func(p *asm.Program) { p.PushUint(0xf0).PushUint(0x0f).Op(evm.OR) }, 0xff},
		{"xor", func(p *asm.Program) { p.PushUint(0xff).PushUint(0x0f).Op(evm.XOR) }, 0xf0},
		{"shl", func(p *asm.Program) { p.PushUint(1).PushUint(4).Op(evm.SHL) }, 16},
		{"shr", func(p *asm.Program) { p.PushUint(16).PushUint(4).Op(evm.SHR) }, 1},
		{"byte", func(p *asm.Program) { p.PushUint(0xff).PushUint(31).Op(evm.BYTE) }, 0xff},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var p asm.Program
			c.build(&p)
			out, err := runCode(t, returnTop(&p), nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := u256.FromBytes(out); got.Uint64() != c.want {
				t.Errorf("got %s, want %d", got, c.want)
			}
		})
	}
}

func TestStackOps(t *testing.T) {
	var p asm.Program
	p.PushUint(1).PushUint(2).PushUint(3). // stack: 1 2 3
						Op(evm.DUP1+2, evm.SWAP1, evm.POP) // DUP3, SWAP1, POP
	// After DUP3: 1 2 3 1; SWAP1: 1 2 1 3; POP: 1 2 1; top is 1.
	out, err := runCode(t, returnTop(&p), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); got.Uint64() != 1 {
		t.Errorf("stack shuffle result = %s, want 1", got)
	}
}

func TestJumpAndConditional(t *testing.T) {
	// if (calldata word 0 != 0) return 111 else return 222
	var p asm.Program
	p.PushUint(0).Op(evm.CALLDATALOAD).
		JumpI("nonzero").
		PushUint(222).Jump("out").
		Label("nonzero").
		PushUint(111).
		Label("out")
	code := returnTop(&p)

	out, err := runCode(t, code, make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); got.Uint64() != 222 {
		t.Errorf("zero branch = %s, want 222", got)
	}
	arg := make([]byte, 32)
	arg[31] = 1
	out, err = runCode(t, code, arg)
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); got.Uint64() != 111 {
		t.Errorf("nonzero branch = %s, want 111", got)
	}
}

func TestInvalidJumpIntoPushData(t *testing.T) {
	// PUSH2 0x005b encodes a 0x5b byte inside push data at offset 2;
	// jumping there must fail.
	code := []byte{
		byte(evm.PUSH2), 0x00, 0x5b, // 0: push 0x005b (byte 0x5b at pc=2)
		byte(evm.PUSH1), 0x02, // 3: push 2
		byte(evm.JUMP), // 5: jump to 2 -> invalid
	}
	_, err := runCode(t, code, nil)
	if !errors.Is(err, evm.ErrInvalidJump) {
		t.Errorf("err = %v, want ErrInvalidJump", err)
	}
}

func TestStackUnderflowAndOverflow(t *testing.T) {
	if _, err := runCode(t, []byte{byte(evm.ADD)}, nil); !errors.Is(err, evm.ErrStackUnderflow) {
		t.Errorf("underflow err = %v", err)
	}
	// Infinite push loop overflows the 1024-slot stack.
	var p asm.Program
	p.Label("loop").PushUint(1).Jump("loop")
	if _, err := runCode(t, p.MustAssemble(), nil); !errors.Is(err, evm.ErrStackOverflow) {
		t.Errorf("overflow err = %v", err)
	}
}

func TestStepLimitStopsInfiniteLoop(t *testing.T) {
	var p asm.Program
	p.Label("spin").Jump("spin")
	st := newMemState()
	st.code[addrA] = p.MustAssemble()
	e := evm.New(st, evm.Config{StepLimit: 1000, Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if !errors.Is(res.Err, evm.ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", res.Err)
	}
}

func TestOutOfGas(t *testing.T) {
	var p asm.Program
	p.PushUint(1).PushUint(0).Op(evm.SSTORE)
	st := newMemState()
	st.code[addrA] = p.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, 100, u256.Zero()) // far below SSTORE cost
	if !errors.Is(res.Err, evm.ErrOutOfGas) {
		t.Errorf("err = %v, want ErrOutOfGas", res.Err)
	}
	if res.GasLeft != 0 {
		t.Errorf("failed frame must consume all gas, left %d", res.GasLeft)
	}
}

func TestStorageReadWrite(t *testing.T) {
	// sstore(5, 0xbeef); return sload(5)
	var p asm.Program
	p.PushUint(0xbeef).PushUint(5).Op(evm.SSTORE).
		PushUint(5).Op(evm.SLOAD)
	out, err := runCode(t, returnTop(&p), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); got.Uint64() != 0xbeef {
		t.Errorf("sload = %s, want 0xbeef", got)
	}
}

func TestKeccakOpcode(t *testing.T) {
	// keccak256 of empty region must equal the canonical empty hash.
	var p asm.Program
	p.PushUint(0).PushUint(0).Op(evm.KECCAK256)
	out, err := runCode(t, returnTop(&p), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := etypes.Keccak(nil)
	if etypes.HashFromWord(u256.FromBytes(out)) != want {
		t.Errorf("keccak(empty) mismatch: %x", out)
	}
}

func TestCalldataOpcodes(t *testing.T) {
	// return calldatasize
	var p asm.Program
	p.Op(evm.CALLDATASIZE)
	out, err := runCode(t, returnTop(&p), []byte{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); got.Uint64() != 5 {
		t.Errorf("calldatasize = %s, want 5", got)
	}

	// calldatacopy whole input to memory and return it
	var q asm.Program
	q.Op(evm.CALLDATASIZE).PushUint(0).PushUint(0).Op(evm.CALLDATACOPY).
		Op(evm.CALLDATASIZE).PushUint(0).Op(evm.RETURN)
	input := []byte{0xde, 0xad, 0xbe, 0xef}
	out, err = runCode(t, q.MustAssemble(), input)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(input) {
		t.Errorf("calldatacopy round trip = %x", out)
	}
}

func TestEnvironmentOpcodes(t *testing.T) {
	blk := evm.DefaultBlockContext()
	cases := []struct {
		name string
		op   evm.Op
		want u256.Int
	}{
		{"chainid", evm.CHAINID, blk.ChainID},
		{"number", evm.NUMBER, u256.FromUint64(blk.Number)},
		{"timestamp", evm.TIMESTAMP, u256.FromUint64(blk.Time)},
		{"gaslimit", evm.GASLIMIT, u256.FromUint64(blk.GasLimit)},
		{"basefee", evm.BASEFEE, blk.BaseFee},
		{"coinbase", evm.COINBASE, blk.Coinbase.Word()},
		{"caller", evm.CALLER, user.Word()},
		{"address", evm.ADDRESS, addrA.Word()},
		{"origin", evm.ORIGIN, user.Word()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var p asm.Program
			p.Op(c.op)
			st := newMemState()
			st.code[addrA] = returnTop(&p)
			e := evm.New(st, evm.Config{Block: blk, Tx: evm.TxContext{Origin: user}, Lenient: true})
			res := e.Call(user, addrA, nil, testGas, u256.Zero())
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if got := u256.FromBytes(res.Output); !got.Eq(c.want) {
				t.Errorf("%s = %s, want %s", c.name, got, c.want)
			}
		})
	}
}

func TestRevertRollsBackState(t *testing.T) {
	// sstore(0,1) then revert: the write must not persist.
	var p asm.Program
	p.PushUint(1).PushUint(0).Op(evm.SSTORE).
		PushUint(0).PushUint(0).Op(evm.REVERT)
	st := newMemState()
	st.code[addrA] = p.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if !errors.Is(res.Err, evm.ErrRevert) {
		t.Fatalf("err = %v, want ErrRevert", res.Err)
	}
	if got := st.storage[addrA][etypes.Hash{}]; got != (etypes.Hash{}) {
		t.Errorf("storage not rolled back: %s", got)
	}
	if res.GasLeft == 0 {
		t.Error("revert must refund remaining gas")
	}
}

func TestCallTransfersAndReturns(t *testing.T) {
	// Callee returns 0x2a; caller calls it and returns the child's output.
	var callee asm.Program
	callee.PushUint(42)
	calleeCode := returnTop(&callee)

	var caller asm.Program
	caller.PushUint(32).PushUint(0). // ret region
						PushUint(0).PushUint(0). // args
						PushUint(0).             // value
						PushBytes(addrB[:]).     // to
						PushUint(1_000_000).     // gas
						Op(evm.CALL).
						Op(evm.POP).
						PushUint(32).PushUint(0).Op(evm.RETURN)

	st := newMemState()
	st.code[addrA] = caller.MustAssemble()
	st.code[addrB] = calleeCode
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := u256.FromBytes(res.Output); got.Uint64() != 42 {
		t.Errorf("call output = %s, want 42", got)
	}
}

func TestDelegateCallUsesCallerStorageAndIdentity(t *testing.T) {
	// Logic at addrB: sstore(0, caller); proxy at addrA delegatecalls B.
	// The write must land in A's storage, and CALLER inside B must be the
	// original user, not A.
	var logic asm.Program
	logic.Op(evm.CALLER).PushUint(0).Op(evm.SSTORE).Op(evm.STOP)

	var proxy asm.Program
	proxy.PushUint(0).PushUint(0). // ret
					PushUint(0).PushUint(0). // args
					PushBytes(addrB[:]).
					PushUint(1_000_000).
					Op(evm.DELEGATECALL).
					Op(evm.POP).Op(evm.STOP)

	st := newMemState()
	st.code[addrA] = proxy.MustAssemble()
	st.code[addrB] = logic.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := st.storage[addrA][etypes.Hash{}]; etypes.BytesToAddress(got[:]) != user {
		t.Errorf("delegatecall stored %s in proxy, want original caller %s",
			etypes.BytesToAddress(got[:]), user)
	}
	if len(st.storage[addrB]) != 0 {
		t.Error("delegatecall must not touch logic contract storage")
	}
}

func TestStaticCallBlocksWrites(t *testing.T) {
	// Callee tries SSTORE; STATICCALL must report failure (push 0).
	var callee asm.Program
	callee.PushUint(1).PushUint(0).Op(evm.SSTORE)

	var caller asm.Program
	caller.PushUint(0).PushUint(0).
		PushUint(0).PushUint(0).
		PushBytes(addrB[:]).
		PushUint(1_000_000).
		Op(evm.STATICCALL)
	code := returnTop(&caller)

	st := newMemState()
	st.code[addrA] = code
	st.code[addrB] = callee.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := u256.FromBytes(res.Output); !got.IsZero() {
		t.Errorf("staticcall success flag = %s, want 0", got)
	}
	if len(st.storage[addrB]) != 0 {
		t.Error("static write persisted")
	}
}

func TestReturndataOpcodes(t *testing.T) {
	// Callee returns 8 bytes; caller checks RETURNDATASIZE and copies it.
	var callee asm.Program
	callee.Push(u256.MustHex("0x1122334455667788")).PushUint(0).Op(evm.MSTORE).
		PushUint(8).PushUint(24).Op(evm.RETURN) // return last 8 bytes of the word

	var caller asm.Program
	caller.PushUint(0).PushUint(0).
		PushUint(0).PushUint(0).
		PushUint(0). // value
		PushBytes(addrB[:]).PushUint(1_000_000).
		Op(evm.CALL).Op(evm.POP).
		Op(evm.RETURNDATASIZE).PushUint(0).PushUint(0).Op(evm.RETURNDATACOPY).
		Op(evm.RETURNDATASIZE).PushUint(0).Op(evm.RETURN)

	st := newMemState()
	st.code[addrA] = caller.MustAssemble()
	st.code[addrB] = callee.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}
	if string(res.Output) != string(want) {
		t.Errorf("returndata = %x, want %x", res.Output, want)
	}
}

func TestCreateDeploysCode(t *testing.T) {
	// Init code returns the 2-byte runtime {PUSH0, STOP} — stored as code.
	runtime := []byte{byte(evm.PUSH0), byte(evm.STOP)}
	var init asm.Program
	init.PushBytes(runtime).PushUint(0).Op(evm.MSTORE). // left-padded at 30..31
								PushUint(2).PushUint(30).Op(evm.RETURN)
	initCode := init.MustAssemble()

	var creator asm.Program
	// Store init code into memory via CODECOPY of the trailing Raw data.
	creator.PushUint(uint64(len(initCode))).PushLabel("data").PushUint(0).Op(evm.CODECOPY).
		PushUint(uint64(len(initCode))).PushUint(0).PushUint(0).Op(evm.CREATE)
	creator.PushUint(0).Op(evm.MSTORE).
		PushUint(32).PushUint(0).Op(evm.RETURN).
		DataLabel("data").Raw(initCode)

	st := newMemState()
	st.code[addrA] = creator.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	created := etypes.AddressFromWord(u256.FromBytes(res.Output))
	if created.IsZero() {
		t.Fatal("CREATE returned zero address")
	}
	if got := st.code[created]; string(got) != string(runtime) {
		t.Errorf("deployed code = %x, want %x", got, runtime)
	}
	// Address must match the CREATE derivation from addrA's pre-call nonce.
	if want := etypes.CreateAddress(addrA, 0); created != want {
		t.Errorf("created at %s, want %s", created, want)
	}
}

func TestCallDepthLimit(t *testing.T) {
	// A contract that calls itself forever; must stop at the depth limit
	// without an outer error (inner call failures push 0).
	var p asm.Program
	p.PushUint(0).PushUint(0).
		PushUint(0).PushUint(0).
		PushUint(0).
		PushBytes(addrA[:]).
		Op(evm.GAS).
		Op(evm.CALL)
	code := returnTop(&p)
	st := newMemState()
	st.code[addrA] = code
	e := evm.New(st, evm.Config{StepLimit: 1 << 24, Lenient: true})
	res := e.Call(user, addrA, nil, 1<<40, u256.Zero())
	if res.Err != nil {
		t.Fatalf("outer err = %v", res.Err)
	}
}

func TestLogEmission(t *testing.T) {
	// LOG1 pops offset, size, then the topic, so the topic is pushed first.
	var good asm.Program
	good.PushUint(0xabcd). // pushed first => popped last => topic
				PushUint(0). // size
				PushUint(0). // offset (top)
				Op(evm.LOG0 + 1).Op(evm.STOP)
	st := newMemState()
	st.code[addrA] = good.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	if res := e.Call(user, addrA, nil, testGas, u256.Zero()); res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(st.logs) != 1 {
		t.Fatalf("logs = %d, want 1", len(st.logs))
	}
	if got := st.logs[0].topics[0].Word(); got.Uint64() != 0xabcd {
		t.Errorf("topic = %s", got)
	}
}

func TestSelfDestruct(t *testing.T) {
	var p asm.Program
	p.PushBytes(addrB[:]).Op(evm.SELFDESTRUCT)
	st := newMemState()
	st.code[addrA] = p.MustAssemble()
	st.balance[addrA] = u256.FromUint64(1000)
	e := evm.New(st, evm.Config{Lenient: true})
	if res := e.Call(user, addrA, nil, testGas, u256.Zero()); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := st.balance[addrB]; got.Uint64() != 1000 {
		t.Errorf("beneficiary balance = %s, want 1000", got)
	}
	if len(st.code[addrA]) != 0 {
		t.Error("destroyed contract still has code")
	}
}

func TestPushTruncatedAtEndOfCode(t *testing.T) {
	// PUSH32 with only 1 immediate byte available: zero-pads, then halts.
	code := []byte{byte(evm.PUSH32), 0xff}
	if _, err := runCode(t, code, nil); err != nil {
		t.Fatalf("truncated push should halt cleanly, got %v", err)
	}
}

func TestInvalidOpcode(t *testing.T) {
	if _, err := runCode(t, []byte{0xef}, nil); !errors.Is(err, evm.ErrInvalidOpcode) {
		t.Errorf("0xef err = %v", err)
	}
	if _, err := runCode(t, []byte{byte(evm.INVALID)}, nil); !errors.Is(err, evm.ErrInvalidOpcode) {
		t.Errorf("INVALID err = %v", err)
	}
}
