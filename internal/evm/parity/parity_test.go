package parity

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

var (
	testCaller = etypes.MustAddress("0x00000000000000000000000000000000000caffe")
	testTarget = etypes.MustAddress("0x0000000000000000000000000000000000001234")
)

// checkCode installs code on a fresh chain and runs the full parity check.
func checkCode(t *testing.T, code, input []byte, gas uint64) {
	t.Helper()
	st := chain.New()
	st.AdvanceTo(1)
	st.InstallContract(testTarget, code)
	spec := Spec{
		Caller:  testCaller,
		To:      testTarget,
		Input:   input,
		Gas:     gas,
		Block:   evm.DefaultBlockContext(),
		Lenient: true,
	}
	if ms := Check(st, spec); len(ms) > 0 {
		for _, m := range ms {
			t.Errorf("%s", m)
		}
		t.Fatalf("parity broken for code %x input %x gas %d", code, input, gas)
	}
}

// dispatcherCode assembles a Solidity-style selector dispatcher: N
// PUSH4/EQ/JUMPI arms, each arm returning its index. This is exactly the
// idiom the kindDispatch superinstruction fuses.
func dispatcherCode(arms int) []byte {
	p := (&asm.Program{})
	p.PushUint(0).Op(evm.CALLDATALOAD).PushUint(224).Op(evm.SHR)
	for i := 0; i < arms; i++ {
		p.Op(evm.DUP1).PushUint(uint64(0xa0000000 + i)).Op(evm.EQ)
		p.JumpI(armLabel(i))
	}
	p.PushUint(0).PushUint(0).Op(evm.REVERT)
	for i := 0; i < arms; i++ {
		p.Label(armLabel(i))
		p.PushUint(uint64(i)).PushUint(0).Op(evm.MSTORE)
		p.PushUint(32).PushUint(0).Op(evm.RETURN)
	}
	return p.MustAssemble()
}

func armLabel(i int) string { return "arm" + string(rune('a'+i)) }

func selector(i int) []byte {
	v := uint64(0xa0000000 + i)
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func TestParityDispatcher(t *testing.T) {
	code := dispatcherCode(8)
	for i := 0; i < 8; i++ {
		checkCode(t, code, selector(i), 1_000_000)
	}
	checkCode(t, code, selector(99), 1_000_000)       // falls through to REVERT
	checkCode(t, code, []byte{0x01, 0x02}, 1_000_000) // short calldata
	checkCode(t, code, nil, 1_000_000)                // empty calldata
}

// TestParityFusedIdioms covers each superinstruction shape individually.
func TestParityFusedIdioms(t *testing.T) {
	cases := map[string][]byte{
		// PUSH dest; JUMP
		"push-jump": (&asm.Program{}).
			Jump("end").Op(evm.INVALID).
			Label("end").PushUint(7).PushUint(0).Op(evm.MSTORE).
			PushUint(32).PushUint(0).Op(evm.RETURN).
			MustAssemble(),
		// PUSH dest; JUMPI, both taken and not
		"push-jumpi-taken": (&asm.Program{}).
			PushUint(1).JumpI("end").Op(evm.INVALID).
			Label("end").Op(evm.STOP).
			MustAssemble(),
		"push-jumpi-not-taken": (&asm.Program{}).
			PushUint(0).JumpI("end").PushUint(5).Op(evm.POP).Op(evm.STOP).
			Label("end").Op(evm.INVALID).
			MustAssemble(),
		// DUPn; PUSH dest; JUMPI
		"dup-push-jumpi": (&asm.Program{}).
			PushUint(1).Op(evm.DUP1).JumpI("yes").Op(evm.INVALID).
			Label("yes").Op(evm.POP).Op(evm.STOP).
			MustAssemble(),
		"dup2-push-jumpi": (&asm.Program{}).
			PushUint(0).PushUint(3).Op(evm.DUP1 + 1).JumpI("t").
			Op(evm.POP).Op(evm.POP).Op(evm.STOP).
			Label("t").Op(evm.INVALID).
			MustAssemble(),
		// SWAPn; POP
		"swap-pop": (&asm.Program{}).
			PushUint(10).PushUint(20).Op(evm.SWAP1, evm.POP).
			PushUint(0).Op(evm.MSTORE).PushUint(32).PushUint(0).Op(evm.RETURN).
			MustAssemble(),
		// Jump to a non-JUMPDEST: fused PUSH/JUMP with invalid dest
		"push-jump-invalid": (&asm.Program{}).
			PushUint(1).Op(evm.JUMP).Op(evm.STOP).
			MustAssemble(),
		"push-jumpi-invalid-taken": (&asm.Program{}).
			PushUint(1).PushUint(3).Op(evm.SWAP1).Op(evm.JUMPI).Op(evm.STOP).
			MustAssemble(),
		// PUSH immediate truncated by end of code
		"truncated-push": {byte(evm.PUSH4), 0xAA, 0xBB},
		// Undefined opcode after some work
		"invalid-opcode": {byte(evm.PUSH1), 0x01, 0x0c, byte(evm.STOP)},
		// INVALID opcode
		"designated-invalid": {byte(evm.INVALID)},
		// Raw empty code
		"empty": {},
		// Jump into push data (invalid even though the byte is 0x5b)
		"jump-into-pushdata": {
			byte(evm.PUSH1), 0x04, byte(evm.JUMP),
			byte(evm.PUSH1), byte(evm.JUMPDEST), byte(evm.STOP),
		},
	}
	for name, code := range cases {
		t.Run(name, func(t *testing.T) {
			checkCode(t, code, nil, 500_000)
		})
	}
}

// TestParityFusedFallback forces the fused fast-precondition to fail so
// fusedSlow replays components: exhausted gas mid-sequence, the step limit
// landing inside a fused pair, and stack underflow at the JUMPI component.
func TestParityFusedFallback(t *testing.T) {
	// Gas runs out inside the dispatcher sequence for low budgets; sweep
	// budgets so every component boundary is hit.
	code := dispatcherCode(4)
	for gas := uint64(0); gas < 120; gas++ {
		checkCode(t, code, selector(2), gas)
	}

	// JUMPI underflows: PUSH dest; JUMPI with an empty stack beneath.
	underflow := (&asm.Program{}).
		JumpI("end").Label("end").Op(evm.STOP).
		MustAssemble()
	checkCode(t, underflow, nil, 100_000)

	// Step limits landing on every component of a fused loop body.
	loop := (&asm.Program{}).
		Label("top").PushUint(1).Op(evm.POP).Jump("top").
		MustAssemble()
	st := chain.New()
	st.AdvanceTo(1)
	st.InstallContract(testTarget, loop)
	for limit := uint64(1); limit <= 16; limit++ {
		spec := Spec{
			Caller: testCaller, To: testTarget, Gas: 1_000_000,
			Block: evm.DefaultBlockContext(), Lenient: true,
			StepLimit: limit,
		}
		if ms := Check(st, spec); len(ms) > 0 {
			t.Fatalf("step limit %d: %v", limit, ms)
		}
	}
}

// TestParityStackDepthBoundary drives the stack to exactly the 1024 limit
// so the folded overflow checks are exercised at the boundary.
func TestParityStackDepthBoundary(t *testing.T) {
	deep := (&asm.Program{})
	for i := 0; i < 1023; i++ {
		deep.PushUint(uint64(i))
	}
	// One DUP1 reaches exactly 1024; the next overflows.
	deep.Op(evm.DUP1, evm.DUP1)
	checkCode(t, deep.MustAssemble(), nil, 10_000_000)
}

// TestParityMemoryAndState covers memory expansion, storage writes, logs,
// hashing, and the environment opcodes.
func TestParityMemoryAndState(t *testing.T) {
	p := (&asm.Program{}).
		PushUint(0xdeadbeef).PushUint(64).Op(evm.MSTORE).
		PushUint(32).PushUint(64).Op(evm.KECCAK256).
		PushUint(3).Op(evm.SSTORE).
		PushUint(3).Op(evm.SLOAD).PushUint(0).Op(evm.MSTORE).
		Op(evm.CALLER, evm.ADDRESS, evm.ORIGIN, evm.TIMESTAMP, evm.NUMBER,
				evm.CHAINID, evm.GAS, evm.MSIZE, evm.PC, evm.CALLVALUE).
		Op(evm.LOG0). // consumes msize, pc... (off,size from stack)
		PushUint(32).PushUint(0).Op(evm.RETURN)
	checkCode(t, p.MustAssemble(), nil, 5_000_000)
}

// TestParityNestedCalls exercises the call family and CREATE through a
// proxy-style delegatecall chain, the shape the Proxion probe hits.
func TestParityNestedCalls(t *testing.T) {
	logicAddr := etypes.MustAddress("0x00000000000000000000000000000000000f00d0")
	logic := (&asm.Program{}).
		PushUint(0x42).PushUint(0).Op(evm.SSTORE).
		PushUint(0x99).PushUint(0).Op(evm.MSTORE).
		PushUint(32).PushUint(0).Op(evm.RETURN).
		MustAssemble()
	proxy := (&asm.Program{}).
		PushUint(0).Op(evm.CALLDATASIZE).PushUint(0).PushUint(0).Op(evm.CALLDATACOPY).
		PushUint(0).PushUint(0).Op(evm.CALLDATASIZE).PushUint(0).
		PushBytes(logicAddr[:]).Op(evm.GAS, evm.DELEGATECALL).
		PushUint(0).Op(evm.RETURNDATASIZE).PushUint(0).PushUint(0).Op(evm.RETURNDATACOPY).
		Op(evm.RETURNDATASIZE).PushUint(0).Op(evm.RETURN).
		MustAssemble()

	st := chain.New()
	st.AdvanceTo(1)
	st.InstallContract(logicAddr, logic)
	st.InstallContract(testTarget, proxy)
	spec := Spec{
		Caller: testCaller, To: testTarget, Input: []byte{0xab, 0xcd, 0xef, 0x01},
		Gas: 5_000_000, Block: evm.DefaultBlockContext(), Lenient: true,
	}
	if ms := Check(st, spec); len(ms) > 0 {
		t.Fatalf("delegatecall parity: %v", ms)
	}

	// CREATE from inside a frame: the init code (PUSH1 2; PUSH1 0;
	// MSTORE8; PUSH1 1; PUSH1 0; RETURN) deploys a 1-byte runtime.
	initCode := []byte{0x60, 0x02, 0x60, 0x00, 0x53, 0x60, 0x01, 0x60, 0x00, 0xf3}
	creator := (&asm.Program{}).
		PushBytes(initCode).PushUint(0).Op(evm.MSTORE).
		PushUint(uint64(len(initCode))).PushUint(uint64(32 - len(initCode))).
		PushUint(0).Op(evm.CREATE).
		PushUint(0).Op(evm.MSTORE).
		PushUint(32).PushUint(0).Op(evm.RETURN).
		MustAssemble()
	checkCode(t, creator, nil, 5_000_000)
}

// TestParityRunRevertsState proves Run leaves the shared state untouched,
// which is what lets Check execute three runs against one chain.
func TestParityRunRevertsState(t *testing.T) {
	code := (&asm.Program{}).
		PushUint(7).PushUint(1).Op(evm.SSTORE).Op(evm.STOP).
		MustAssemble()
	st := chain.New()
	st.AdvanceTo(1)
	st.InstallContract(testTarget, code)
	spec := Spec{
		Caller: testCaller, To: testTarget, Gas: 1_000_000,
		Block: evm.DefaultBlockContext(), Lenient: true,
	}
	out := Run(st, spec, evm.InterpFast, false)
	if out.Err != nil {
		t.Fatalf("run failed: %v", out.Err)
	}
	if len(out.Events) == 0 {
		t.Fatal("expected recorded state events")
	}
	slot := etypes.HashFromWord(u256.FromUint64(1))
	if got := st.GetState(testTarget, slot); got != (etypes.Hash{}) {
		t.Fatalf("state leaked through Run: slot=%x", got)
	}
}

// TestParityDiffDetectsDivergence sanity-checks the comparators themselves:
// hand-built diverging outcomes must be flagged.
func TestParityDiffDetectsDivergence(t *testing.T) {
	base := Outcome{Output: []byte{1}, GasLeft: 100, Events: []string{"a"}}
	cases := map[string]Outcome{
		"output": {Output: []byte{2}, GasLeft: 100, Events: []string{"a"}},
		"gas":    {Output: []byte{1}, GasLeft: 99, Events: []string{"a"}},
		"error":  {Output: []byte{1}, GasLeft: 100, Events: []string{"a"}, Err: evm.ErrRevert},
		"events": {Output: []byte{1}, GasLeft: 100, Events: []string{"b"}},
	}
	for name, got := range cases {
		if ms := DiffOutcome("x", base, got); len(ms) == 0 {
			t.Errorf("%s divergence not detected", name)
		}
	}
	if ms := DiffOutcome("x", base, base); len(ms) != 0 {
		t.Errorf("identical outcomes flagged: %v", ms)
	}

	withSteps := Outcome{Steps: []evm.StructLog{{PC: 1, Op: evm.ADD}}}
	diverged := Outcome{Steps: []evm.StructLog{{PC: 2, Op: evm.ADD}}}
	if ms := DiffLockstep("x", withSteps, diverged); len(ms) == 0 {
		t.Error("step divergence not detected")
	}
}
