// Package parity is the lockstep differential harness between the two EVM
// interpreters: the retained byte-at-a-time reference loop and the
// pre-decoded fast path (internal/evm's InterpReference and InterpFast).
// It executes the same call against the same state under each interpreter
// and compares every observable — per-step structlog traces, the call
// tree, outputs, errors, remaining gas, and the exact sequence of state
// mutations. A third run exercises the fused (untraced) fast path, whose
// superinstructions are invisible to tracers by design, against the
// reference outcome. The oracle layer (gen/oracle.CheckInterpParity) and
// FuzzInterpParity drive this over the generator taxonomy and arbitrary
// bytecode respectively.
package parity

import (
	"fmt"

	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// Spec describes one call to execute under both interpreters.
type Spec struct {
	Caller etypes.Address
	To     etypes.Address
	Input  []byte
	Gas    uint64
	Value  u256.Int

	Block evm.BlockContext
	Tx    evm.TxContext
	// StepLimit caps each run (0 = 1<<16, small enough for sweeps).
	StepLimit uint64
	Lenient   bool
}

// Outcome is everything observable about one run.
type Outcome struct {
	Output  []byte
	Err     error
	GasLeft uint64
	Steps   []evm.StructLog  // populated on traced runs
	Calls   []evm.CallRecord // populated on traced runs
	Events  []string         // state mutations, in order
}

// Mismatch is one observable difference between two runs.
type Mismatch struct {
	Layer  string // which comparison caught it
	Where  string // "output", "gas", "step 42", "event 3", ...
	Detail string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("[%s] %s: %s", m.Layer, m.Where, m.Detail)
}

const defaultStepLimit = 1 << 16

// Run executes spec once under the given interpreter mode, recording every
// state mutation. The state is snapshotted before and reverted after, so
// consecutive runs see identical starting conditions.
func Run(state evm.StateDB, spec Spec, mode evm.InterpMode, traced bool) Outcome {
	snap := state.Snapshot()
	defer state.RevertToSnapshot(snap)

	rec := &recState{inner: state}
	stepLimit := spec.StepLimit
	if stepLimit == 0 {
		stepLimit = defaultStepLimit
	}
	cfg := evm.Config{
		Block:     spec.Block,
		Tx:        spec.Tx,
		StepLimit: stepLimit,
		Lenient:   spec.Lenient,
		Interp:    mode,
	}
	var logger *evm.StructLogger
	if traced {
		logger = &evm.StructLogger{MaxEntries: int(stepLimit) + 64}
		cfg.Tracer = logger
	}
	e := evm.New(rec, cfg)
	res := e.Call(spec.Caller, spec.To, spec.Input, spec.Gas, spec.Value)

	out := Outcome{
		Output:  res.Output,
		Err:     res.Err,
		GasLeft: res.GasLeft,
		Events:  rec.events,
	}
	if logger != nil {
		out.Steps = logger.Logs()
		out.Calls = logger.Calls()
	}
	return out
}

// Check runs spec under both interpreters and returns every divergence.
// Three runs: reference traced, fast traced (compared step-by-step against
// the reference trace), and fast untraced — the production configuration,
// where fusion is active — compared on outcome and state mutations.
func Check(state evm.StateDB, spec Spec) []Mismatch {
	ref := Run(state, spec, evm.InterpReference, true)
	fast := Run(state, spec, evm.InterpFast, true)
	ms := DiffLockstep("fast-traced", ref, fast)

	fused := Run(state, spec, evm.InterpFast, false)
	ms = append(ms, DiffOutcome("fast-fused", ref, fused)...)
	return ms
}

// DiffOutcome compares the frame-external observables of two runs: output
// bytes, terminal error, remaining gas, and the state-mutation sequence.
func DiffOutcome(layer string, ref, got Outcome) []Mismatch {
	var ms []Mismatch
	if !bytesEqual(ref.Output, got.Output) {
		ms = append(ms, Mismatch{layer, "output",
			fmt.Sprintf("reference %x, got %x", ref.Output, got.Output)})
	}
	if !errEqual(ref.Err, got.Err) {
		ms = append(ms, Mismatch{layer, "error",
			fmt.Sprintf("reference %v, got %v", ref.Err, got.Err)})
	}
	if ref.GasLeft != got.GasLeft {
		ms = append(ms, Mismatch{layer, "gas",
			fmt.Sprintf("reference %d left, got %d", ref.GasLeft, got.GasLeft)})
	}
	ms = append(ms, diffEvents(layer, ref.Events, got.Events)...)
	return ms
}

// DiffLockstep compares two traced runs step by step on top of the
// outcome comparison: every structlog entry (pc, op, gas, depth, context,
// stack top) and every call-tree record must match exactly.
func DiffLockstep(layer string, ref, got Outcome) []Mismatch {
	ms := DiffOutcome(layer, ref, got)
	n := min(len(ref.Steps), len(got.Steps))
	for i := 0; i < n; i++ {
		if !stepEqual(ref.Steps[i], got.Steps[i]) {
			ms = append(ms, Mismatch{layer, fmt.Sprintf("step %d", i),
				fmt.Sprintf("reference %v, got %v", ref.Steps[i], got.Steps[i])})
			// One diverged step usually cascades; report the first only.
			break
		}
	}
	if len(ref.Steps) != len(got.Steps) {
		ms = append(ms, Mismatch{layer, "steps",
			fmt.Sprintf("reference executed %d, got %d", len(ref.Steps), len(got.Steps))})
	}
	if len(ref.Calls) != len(got.Calls) {
		ms = append(ms, Mismatch{layer, "calls",
			fmt.Sprintf("reference made %d, got %d", len(ref.Calls), len(got.Calls))})
	} else {
		for i := range ref.Calls {
			if !callEqual(ref.Calls[i], got.Calls[i]) {
				ms = append(ms, Mismatch{layer, fmt.Sprintf("call %d", i),
					fmt.Sprintf("reference %+v, got %+v", ref.Calls[i], got.Calls[i])})
			}
		}
	}
	return ms
}

func diffEvents(layer string, ref, got []string) []Mismatch {
	var ms []Mismatch
	n := min(len(ref), len(got))
	for i := 0; i < n; i++ {
		if ref[i] != got[i] {
			ms = append(ms, Mismatch{layer, fmt.Sprintf("event %d", i),
				fmt.Sprintf("reference %q, got %q", ref[i], got[i])})
			break
		}
	}
	if len(ref) != len(got) {
		ms = append(ms, Mismatch{layer, "events",
			fmt.Sprintf("reference recorded %d, got %d", len(ref), len(got))})
	}
	return ms
}

func stepEqual(a, b evm.StructLog) bool {
	if a.PC != b.PC || a.Op != b.Op || a.Gas != b.Gas ||
		a.Depth != b.Depth || a.Context != b.Context ||
		len(a.StackTop) != len(b.StackTop) {
		return false
	}
	for i := range a.StackTop {
		if !a.StackTop[i].Eq(b.StackTop[i]) {
			return false
		}
	}
	return true
}

func callEqual(a, b evm.CallRecord) bool {
	return a.Kind == b.Kind && a.From == b.From && a.To == b.To &&
		a.Depth == b.Depth && errEqual(a.Err, b.Err) &&
		bytesEqual(a.Input, b.Input)
}

// errEqual compares terminal errors. Both interpreters return the shared
// sentinel values, so identity plus message equality suffices.
func errEqual(a, b error) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a == b || a.Error() == b.Error()
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
