package parity

import (
	"fmt"

	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// recState wraps a StateDB and records every mutation as a formatted event
// string, in call order. Two interpreter runs over identical starting
// state must produce identical event sequences; comparing the rendered
// strings keeps the diff readable when they don't.
type recState struct {
	inner  evm.StateDB
	events []string
}

var _ evm.StateDB = (*recState)(nil)

func (r *recState) record(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *recState) Exists(addr etypes.Address) bool    { return r.inner.Exists(addr) }
func (r *recState) GetCode(addr etypes.Address) []byte { return r.inner.GetCode(addr) }
func (r *recState) GetCodeHash(addr etypes.Address) etypes.Hash {
	return r.inner.GetCodeHash(addr)
}
func (r *recState) GetBalance(addr etypes.Address) u256.Int { return r.inner.GetBalance(addr) }
func (r *recState) GetState(addr etypes.Address, key etypes.Hash) etypes.Hash {
	return r.inner.GetState(addr, key)
}
func (r *recState) GetNonce(addr etypes.Address) uint64 { return r.inner.GetNonce(addr) }

func (r *recState) Transfer(from, to etypes.Address, value u256.Int) {
	r.record("transfer %x->%x %s", from, to, value.Hex())
	r.inner.Transfer(from, to, value)
}

func (r *recState) SetState(addr etypes.Address, key, value etypes.Hash) {
	r.record("sstore %x %x=%x", addr, key, value)
	r.inner.SetState(addr, key, value)
}

func (r *recState) SetNonce(addr etypes.Address, nonce uint64) {
	r.record("setnonce %x %d", addr, nonce)
	r.inner.SetNonce(addr, nonce)
}

func (r *recState) CreateAccount(addr etypes.Address) {
	r.record("create %x", addr)
	r.inner.CreateAccount(addr)
}

func (r *recState) SetCode(addr etypes.Address, code []byte) {
	r.record("setcode %x len=%d", addr, len(code))
	r.inner.SetCode(addr, code)
}

func (r *recState) SelfDestruct(addr, beneficiary etypes.Address) {
	r.record("selfdestruct %x->%x", addr, beneficiary)
	r.inner.SelfDestruct(addr, beneficiary)
}

func (r *recState) AddLog(addr etypes.Address, topics []etypes.Hash, data []byte) {
	r.record("log %x topics=%d data=%x", addr, len(topics), data)
	r.inner.AddLog(addr, topics, data)
}

func (r *recState) Snapshot() int {
	r.record("snapshot")
	return r.inner.Snapshot()
}

func (r *recState) RevertToSnapshot(rev int) {
	r.record("revert")
	r.inner.RevertToSnapshot(rev)
}
