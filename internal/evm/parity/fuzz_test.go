package parity

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/evm"
	"repro/internal/gen"
	"repro/internal/proxion"
	"repro/internal/u256"
)

// FuzzInterpParity is the differential fuzz target: arbitrary bytecode and
// call data executed under both interpreters with the structlog traces,
// outcomes, and state-mutation sequences held in lockstep. Seeded from the
// generator corpus (real proxy shapes plus the detector's crafted probes)
// and a handful of hand-written edge programs. Registered in `make fuzz`.
func FuzzInterpParity(f *testing.F) {
	f.Add([]byte{0x00}, []byte{}, uint64(100_000))
	f.Add([]byte{0x5b, 0x60, 0x00, 0x56}, []byte{}, uint64(50_000)) // jumpdest push0 jump loop
	// Selector dispatcher: PUSH4 sel; EQ; PUSH1 dest; JUMPI.
	f.Add([]byte{
		0x60, 0x00, 0x35, 0x60, 0xe0, 0x1c,
		0x63, 0xaa, 0xbb, 0xcc, 0xdd, 0x14, 0x60, 0x11, 0x57,
		0x60, 0x00, 0x5b, 0x00,
	}, []byte{0xaa, 0xbb, 0xcc, 0xdd}, uint64(200_000))
	f.Add([]byte{0x36, 0x3d, 0x3d, 0x37, 0xf4}, []byte{1, 2, 3, 4}, uint64(300_000)) // probe shape
	f.Add([]byte{0x7f, 0x01}, []byte{}, uint64(10_000))                              // truncated push32
	f.Add([]byte{0x90, 0x50}, []byte{}, uint64(10_000))                              // swap1 pop underflow
	f.Add([]byte{0x60, 0x01, 0x80, 0x60, 0x08, 0x57, 0xfe, 0x00, 0x5b, 0x00},
		[]byte{}, uint64(10_000)) // dup1 push jumpi

	c := gen.Generate(gen.Config{Seed: 1, Contracts: 12})
	for _, l := range c.Labels {
		f.Add(l.Code, proxion.CraftCallData(l.Address, l.Code), uint64(500_000))
	}

	f.Fuzz(func(t *testing.T, code, input []byte, gas uint64) {
		if len(code) > 24576 {
			code = code[:24576]
		}
		st := chain.New()
		st.AdvanceTo(1)
		st.InstallContract(testTarget, code)
		spec := Spec{
			Caller:    testCaller,
			To:        testTarget,
			Input:     input,
			Gas:       gas % 2_000_000,
			Value:     u256.Zero(),
			Block:     evm.DefaultBlockContext(),
			StepLimit: 8_192, // keeps pathological loops cheap per execution
			Lenient:   true,
		}
		if ms := Check(st, spec); len(ms) > 0 {
			for _, m := range ms {
				t.Errorf("%s", m)
			}
			t.Fatalf("interpreter divergence on code %x input %x gas %d",
				code, input, gas%2_000_000)
		}
	})
}
