package evm

import "repro/internal/u256"

// stackLimit is the maximum EVM stack depth.
const stackLimit = 1024

// Stack is the EVM operand stack of 256-bit words. The zero value is an
// empty, ready-to-use stack.
type Stack struct {
	data []u256.Int
}

// Len returns the number of elements on the stack.
func (s *Stack) Len() int { return len(s.data) }

// Push appends v to the top of the stack. The interpreter checks for
// overflow before invoking operations; Push itself does not.
func (s *Stack) Push(v u256.Int) { s.data = append(s.data, v) }

// Pop removes and returns the top element. The interpreter guarantees
// sufficient depth before calling.
func (s *Stack) Pop() u256.Int {
	v := s.data[len(s.data)-1]
	s.data = s.data[:len(s.data)-1]
	return v
}

// Peek returns the n-th element from the top without removing it
// (Peek(0) is the top). It returns zero if the stack is too shallow,
// making it safe for tracers.
func (s *Stack) Peek(n int) u256.Int {
	if n < 0 || n >= len(s.data) {
		return u256.Zero()
	}
	return s.data[len(s.data)-1-n]
}

// dup duplicates the n-th element from the top (1-based, per DUPn).
func (s *Stack) dup(n int) {
	s.data = append(s.data, s.data[len(s.data)-n])
}

// swap exchanges the top element with the n-th below it (1-based, per SWAPn).
func (s *Stack) swap(n int) {
	top := len(s.data) - 1
	s.data[top], s.data[top-n] = s.data[top-n], s.data[top]
}

// Snapshot returns a copy of the stack contents, top last. Used by tracers
// that need to record the full operand stack.
func (s *Stack) Snapshot() []u256.Int {
	out := make([]u256.Int, len(s.data))
	copy(out, s.data)
	return out
}
