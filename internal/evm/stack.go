package evm

import "repro/internal/u256"

// stackLimit is the maximum EVM stack depth.
const stackLimit = 1024

// Stack is the EVM operand stack of 256-bit words, held in a fixed array so
// pushes never allocate and pooled frames reuse the same backing storage.
// The zero value is an empty, ready-to-use stack.
type Stack struct {
	data [stackLimit]u256.Int
	n    int
}

// Len returns the number of elements on the stack.
func (s *Stack) Len() int { return s.n }

// Push places v on top of the stack. The interpreter checks for overflow
// before invoking operations; Push itself does not, and pushing past
// stackLimit panics on the array bound.
func (s *Stack) Push(v u256.Int) {
	s.data[s.n] = v
	s.n++
}

// Pop removes and returns the top element. The interpreter guarantees
// sufficient depth before calling.
func (s *Stack) Pop() u256.Int {
	s.n--
	return s.data[s.n]
}

// Peek returns the n-th element from the top without removing it
// (Peek(0) is the top). It returns zero if the stack is too shallow,
// making it safe for tracers.
func (s *Stack) Peek(n int) u256.Int {
	if n < 0 || n >= s.n {
		return u256.Zero()
	}
	return s.data[s.n-1-n]
}

// dup duplicates the n-th element from the top (1-based, per DUPn).
func (s *Stack) dup(n int) {
	s.data[s.n] = s.data[s.n-n]
	s.n++
}

// swap exchanges the top element with the n-th below it (1-based, per SWAPn).
func (s *Stack) swap(n int) {
	top := s.n - 1
	s.data[top], s.data[top-n] = s.data[top-n], s.data[top]
}

// Snapshot returns a copy of the stack contents, top last. Used by tracers
// that need to record the full operand stack.
func (s *Stack) Snapshot() []u256.Int {
	out := make([]u256.Int, s.n)
	copy(out, s.data[:s.n])
	return out
}

// reset empties the stack for pooled reuse. Words above the new depth are
// left in place: every push overwrites its slot before it becomes readable
// again, so no stale data is observable.
func (s *Stack) reset() { s.n = 0 }
