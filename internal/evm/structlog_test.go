package evm_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/evm"
	"repro/internal/u256"
)

func TestStructLoggerRecordsStepsAndCalls(t *testing.T) {
	// Proxy at A delegatecalls B, which reverts.
	var logic asm.Program
	logic.PushUint(0).PushUint(0).Op(evm.REVERT)

	var proxy asm.Program
	proxy.PushUint(0).PushUint(0).
		Op(evm.CALLDATASIZE).PushUint(0).
		PushBytes(addrB[:]).
		Op(evm.GAS).Op(evm.DELEGATECALL).Op(evm.POP).Op(evm.STOP)

	st := newMemState()
	st.code[addrA] = proxy.MustAssemble()
	st.code[addrB] = logic.MustAssemble()

	logger := &evm.StructLogger{}
	e := evm.New(st, evm.Config{Tracer: logger, Lenient: true})
	if res := e.Call(user, addrA, []byte{1, 2, 3, 4}, testGas, u256.Zero()); res.Err != nil {
		t.Fatal(res.Err)
	}

	logs := logger.Logs()
	if len(logs) == 0 {
		t.Fatal("no steps recorded")
	}
	var sawDelegate, sawDepth2 bool
	for _, l := range logs {
		if l.Op == evm.DELEGATECALL {
			sawDelegate = true
			if l.Depth != 1 {
				t.Errorf("delegatecall at depth %d", l.Depth)
			}
		}
		if l.Depth == 2 {
			sawDepth2 = true
			if l.Context != addrA {
				t.Errorf("delegated frame context = %s, want proxy %s", l.Context, addrA)
			}
		}
	}
	if !sawDelegate || !sawDepth2 {
		t.Errorf("trace incomplete: delegate=%v depth2=%v", sawDelegate, sawDepth2)
	}

	calls := logger.Calls()
	if len(calls) != 2 {
		t.Fatalf("calls = %d, want outer + delegate", len(calls))
	}
	if calls[0].Err != nil {
		t.Errorf("outer call err = %v", calls[0].Err)
	}
	if calls[1].Kind != evm.CallKindDelegateCall || !errors.Is(calls[1].Err, evm.ErrRevert) {
		t.Errorf("inner call = %+v", calls[1])
	}

	text := logger.Format()
	if !strings.Contains(text, "DELEGATECALL") {
		t.Error("formatted trace missing DELEGATECALL")
	}
}

func TestStructLoggerBounded(t *testing.T) {
	var spin asm.Program
	spin.Label("x").Jump("x")
	st := newMemState()
	st.code[addrA] = spin.MustAssemble()
	logger := &evm.StructLogger{MaxEntries: 10}
	e := evm.New(st, evm.Config{Tracer: logger, StepLimit: 100_000, Lenient: true})
	e.Call(user, addrA, nil, testGas, u256.Zero())
	if got := len(logger.Logs()); got != 10 {
		t.Errorf("bounded logger kept %d entries", got)
	}
}
