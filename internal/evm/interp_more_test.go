package evm_test

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

func TestCreate2DeterministicAddress(t *testing.T) {
	runtime := []byte{byte(evm.STOP)}
	var init asm.Program
	init.PushUint(uint64(len(runtime))).PushLabel("rt").PushUint(0).Op(evm.CODECOPY).
		PushUint(uint64(len(runtime))).PushUint(0).Op(evm.RETURN).
		DataLabel("rt").Raw(runtime)
	initCode := init.MustAssemble()

	salt := etypes.HashFromWord(u256.FromUint64(0x5a17))
	var creator asm.Program
	creator.PushUint(uint64(len(initCode))).PushLabel("data").PushUint(0).Op(evm.CODECOPY).
		Push(salt.Word()).
		PushUint(uint64(len(initCode))).PushUint(0).PushUint(0).
		Op(evm.CREATE2)
	creator.PushUint(0).Op(evm.MSTORE).
		PushUint(32).PushUint(0).Op(evm.RETURN).
		DataLabel("data").Raw(initCode)

	st := newMemState()
	st.code[addrA] = creator.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	created := etypes.AddressFromWord(u256.FromBytes(res.Output))
	want := etypes.CreateAddress2(addrA, salt, initCode)
	if created != want {
		t.Errorf("CREATE2 address = %s, want %s", created, want)
	}
	if string(st.code[created]) != string(runtime) {
		t.Errorf("deployed code = %x", st.code[created])
	}
}

func TestCallCodeUsesOwnStorage(t *testing.T) {
	// Callee stores 7 at slot 0; via CALLCODE the write must land in the
	// CALLER's storage (like delegatecall but with self as msg.sender).
	var callee asm.Program
	callee.PushUint(7).PushUint(0).Op(evm.SSTORE).Op(evm.STOP)

	var caller asm.Program
	caller.PushUint(0).PushUint(0).
		PushUint(0).PushUint(0).
		PushUint(0). // value
		PushBytes(addrB[:]).
		PushUint(1_000_000).
		Op(evm.CALLCODE).Op(evm.POP).Op(evm.STOP)

	st := newMemState()
	st.code[addrA] = caller.MustAssemble()
	st.code[addrB] = callee.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	if res := e.Call(user, addrA, nil, testGas, u256.Zero()); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := st.storage[addrA][etypes.Hash{}].Word(); got.Uint64() != 7 {
		t.Errorf("callcode write landed wrong: caller slot0 = %s", got)
	}
	if len(st.storage[addrB]) != 0 {
		t.Error("callcode polluted callee storage")
	}
}

func TestExtCodeOpcodes(t *testing.T) {
	// EXTCODESIZE / EXTCODEHASH / EXTCODECOPY of addrB.
	target := []byte{byte(evm.PUSH1), 0x2a, byte(evm.STOP)}

	var p asm.Program
	p.PushBytes(addrB[:]).Op(evm.EXTCODESIZE)
	st := newMemState()
	st.code[addrA] = returnTop(&p)
	st.code[addrB] = target
	e := evm.New(st, evm.Config{Lenient: true})
	res := e.Call(user, addrA, nil, testGas, u256.Zero())
	if got := u256.FromBytes(res.Output); got.Uint64() != uint64(len(target)) {
		t.Errorf("extcodesize = %s, want %d", got, len(target))
	}

	var q asm.Program
	q.PushBytes(addrB[:]).Op(evm.EXTCODEHASH)
	st2 := newMemState()
	st2.code[addrA] = returnTop(&q)
	st2.code[addrB] = target
	res = evm.New(st2, evm.Config{Lenient: true}).Call(user, addrA, nil, testGas, u256.Zero())
	if got := etypes.HashFromWord(u256.FromBytes(res.Output)); got != etypes.Keccak(target) {
		t.Errorf("extcodehash mismatch")
	}

	// EXTCODECOPY the whole code to memory 0 and return it.
	var r asm.Program
	r.PushUint(uint64(len(target))).PushUint(0).PushUint(0).PushBytes(addrB[:]).
		Op(evm.EXTCODECOPY).
		PushUint(uint64(len(target))).PushUint(0).Op(evm.RETURN)
	st3 := newMemState()
	st3.code[addrA] = r.MustAssemble()
	st3.code[addrB] = target
	res = evm.New(st3, evm.Config{Lenient: true}).Call(user, addrA, nil, testGas, u256.Zero())
	if string(res.Output) != string(target) {
		t.Errorf("extcodecopy = %x, want %x", res.Output, target)
	}
}

func TestBlockhashOpcode(t *testing.T) {
	known := etypes.Keccak([]byte("block-42"))
	blk := evm.DefaultBlockContext()
	blk.BlockHash = func(n uint64) etypes.Hash {
		if n == 42 {
			return known
		}
		return etypes.Hash{}
	}
	var p asm.Program
	p.PushUint(42).Op(evm.BLOCKHASH)
	st := newMemState()
	st.code[addrA] = returnTop(&p)
	res := evm.New(st, evm.Config{Block: blk, Lenient: true}).Call(user, addrA, nil, testGas, u256.Zero())
	if got := etypes.HashFromWord(u256.FromBytes(res.Output)); got != known {
		t.Errorf("blockhash(42) = %s", got)
	}
}

func TestSignExtendAndSarPrograms(t *testing.T) {
	// signextend(0, 0xff) == -1; then sar(4, -1) == -1 still.
	var p asm.Program
	p.PushUint(0xff).PushUint(0).Op(evm.SIGNEXTEND).
		PushUint(4).Op(evm.SAR)
	out, err := runCode(t, returnTop(&p), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); !got.Eq(u256.Max()) {
		t.Errorf("signextend+sar = %s, want -1", got)
	}
}

func TestMsizeTracksExpansion(t *testing.T) {
	var p asm.Program
	p.PushUint(1).PushUint(100).Op(evm.MSTORE). // touch offset 100..131
							Op(evm.MSIZE)
	out, err := runCode(t, returnTop(&p), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 132 rounded up to a word boundary = 160.
	if got := u256.FromBytes(out); got.Uint64() != 160 {
		t.Errorf("msize = %s, want 160", got)
	}
}

func TestMemoryExpansionCostsGas(t *testing.T) {
	// Writing at a huge offset must exhaust gas, not OOM.
	var p asm.Program
	p.PushUint(1).Push(u256.FromUint64(1 << 30)).Op(evm.MSTORE)
	st := newMemState()
	st.code[addrA] = p.MustAssemble()
	res := evm.New(st, evm.Config{Lenient: true}).Call(user, addrA, nil, 100_000, u256.Zero())
	if !errors.Is(res.Err, evm.ErrOutOfGas) {
		t.Errorf("err = %v, want out of gas", res.Err)
	}
}

func TestAbsurdOffsetIsOutOfGas(t *testing.T) {
	var p asm.Program
	p.PushUint(1).Push(u256.Max()).Op(evm.MSTORE)
	st := newMemState()
	st.code[addrA] = p.MustAssemble()
	res := evm.New(st, evm.Config{Lenient: true}).Call(user, addrA, nil, testGas, u256.Zero())
	if !errors.Is(res.Err, evm.ErrOutOfGas) {
		t.Errorf("err = %v, want out of gas", res.Err)
	}
}

func TestGasForwardingKeepsSixtyFourth(t *testing.T) {
	// Child burns everything it gets; the parent must retain ~1/64 and
	// finish successfully.
	var burner asm.Program
	burner.Label("spin").Jump("spin")

	var caller asm.Program
	caller.PushUint(0).PushUint(0).
		PushUint(0).PushUint(0).
		PushUint(0).
		PushBytes(addrB[:]).
		Op(evm.GAS). // request everything
		Op(evm.CALL)
	code := returnTop(&caller)

	st := newMemState()
	st.code[addrA] = code
	st.code[addrB] = burner.MustAssemble()
	e := evm.New(st, evm.Config{StepLimit: 1 << 22, Lenient: true})
	res := e.Call(user, addrA, nil, 2_000_000, u256.Zero())
	if res.Err != nil {
		t.Fatalf("parent must survive child exhaustion: %v", res.Err)
	}
	if got := u256.FromBytes(res.Output); !got.IsZero() {
		t.Errorf("child success flag = %s, want 0", got)
	}
}

func TestNestedRevertRestoresOnlyChildWrites(t *testing.T) {
	// Parent writes slot 0 = 1, then calls child which writes slot 1 = 2
	// and reverts. Slot 0 must survive; slot 1 must not.
	var child asm.Program
	child.PushUint(2).PushUint(1).Op(evm.SSTORE).
		PushUint(0).PushUint(0).Op(evm.REVERT)

	var parent asm.Program
	parent.PushUint(1).PushUint(0).Op(evm.SSTORE).
		PushUint(0).PushUint(0).
		PushUint(0).PushUint(0).
		PushUint(0).
		PushBytes(addrB[:]).
		PushUint(500_000).
		Op(evm.CALL).Op(evm.POP).Op(evm.STOP)

	st := newMemState()
	st.code[addrA] = parent.MustAssemble()
	st.code[addrB] = child.MustAssemble()
	e := evm.New(st, evm.Config{Lenient: true})
	if res := e.Call(user, addrA, nil, testGas, u256.Zero()); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := st.storage[addrA][etypes.Hash{}].Word(); got.Uint64() != 1 {
		t.Errorf("parent write lost: %s", got)
	}
	if got := st.storage[addrB][etypes.HashFromWord(u256.One())]; got != (etypes.Hash{}) {
		t.Errorf("child write survived revert: %s", got)
	}
}

func TestCallToEmptyAccountSucceeds(t *testing.T) {
	var p asm.Program
	p.PushUint(0).PushUint(0).
		PushUint(0).PushUint(0).
		PushUint(0).
		PushBytes(addrB[:]). // no code there
		PushUint(100_000).
		Op(evm.CALL)
	out, err := runCode(t, returnTop(&p), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := u256.FromBytes(out); got.Uint64() != 1 {
		t.Errorf("call to empty account = %s, want success", got)
	}
}

func TestOpcodeStringAndParsing(t *testing.T) {
	cases := []struct {
		op   evm.Op
		name string
	}{
		{evm.DELEGATECALL, "DELEGATECALL"},
		{evm.PUSH4, "PUSH4"},
		{evm.PUSH0, "PUSH0"},
		{evm.DUP1 + 6, "DUP7"},
		{evm.SWAP1 + 15, "SWAP16"},
		{evm.LOG0 + 2, "LOG2"},
		{evm.KECCAK256, "KECCAK256"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.name {
			t.Errorf("String(%02x) = %q, want %q", byte(c.op), got, c.name)
		}
		back, ok := evm.OpByName(c.name)
		if !ok || back != c.op {
			t.Errorf("OpByName(%q) = %v %v", c.name, back, ok)
		}
	}
	if evm.Op(0xef).Defined() {
		t.Error("0xef should be undefined")
	}
	if got := evm.Op(0xef).String(); got != "UNDEFINED(0xef)" {
		t.Errorf("undefined opcode string = %q", got)
	}
	if _, ok := evm.OpByName("NOPE"); ok {
		t.Error("bogus mnemonic resolved")
	}
}

func TestStackSnapshotAndPeek(t *testing.T) {
	var s evm.Stack
	s.Push(u256.FromUint64(1))
	s.Push(u256.FromUint64(2))
	if got := s.Peek(0); got.Uint64() != 2 {
		t.Errorf("peek(0) = %s", got)
	}
	if got := s.Peek(1); got.Uint64() != 1 {
		t.Errorf("peek(1) = %s", got)
	}
	if got := s.Peek(5); !got.IsZero() {
		t.Errorf("deep peek = %s, want 0", got)
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[1].Uint64() != 2 {
		t.Errorf("snapshot = %v", snap)
	}
}
