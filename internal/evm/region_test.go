package evm

import (
	"bytes"
	"testing"

	"repro/internal/u256"
)

// above64 is a value that does not fit in a uint64 (2^64).
var above64 = u256.FromBytes([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0})

// TestToOffsetBoundaries pins the scalar conversion: anything up to
// memoryCap converts, anything beyond (or beyond uint64) is out-of-gas.
func TestToOffsetBoundaries(t *testing.T) {
	cases := []struct {
		name string
		v    u256.Int
		want uint64
		ok   bool
	}{
		{"zero", u256.Zero(), 0, true},
		{"one", u256.FromUint64(1), 1, true},
		{"cap", u256.FromUint64(memoryCap), memoryCap, true},
		{"cap+1", u256.FromUint64(memoryCap + 1), 0, false},
		{"max-uint64", u256.FromUint64(^uint64(0)), 0, false},
		{"2^64", above64, 0, false},
	}
	for _, tc := range cases {
		got, err := toOffset(tc.v)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
			continue
		}
		if err != nil && err != ErrOutOfGas {
			t.Errorf("%s: err=%v, want ErrOutOfGas", tc.name, err)
		}
		if tc.ok && got != tc.want {
			t.Errorf("%s: offset=%d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestToRegionBoundaries pins the joint offset+size validation around
// memoryCap — the edge the old split checks deferred to the charge path.
// Each part may individually sit at the cap, but a non-empty region whose
// sum crosses it must fail here, and the uint64 sum can never overflow
// because both parts are already ≤ 2^32.
func TestToRegionBoundaries(t *testing.T) {
	u := u256.FromUint64
	cases := []struct {
		name      string
		off, size u256.Int
		wantOff   uint64
		wantSize  uint64
		ok        bool
	}{
		{"zero-zero", u(0), u(0), 0, 0, true},
		{"zero-size-at-cap-offset", u(memoryCap), u(0), memoryCap, 0, true},
		{"sum-exactly-cap", u(memoryCap - 32), u(32), memoryCap - 32, 32, true},
		{"sum-cap-plus-one", u(memoryCap - 31), u(32), 0, 0, false},
		{"offset-at-cap-nonzero-size", u(memoryCap), u(1), 0, 0, false},
		{"size-at-cap-nonzero-offset", u(1), u(memoryCap), 0, 0, false},
		{"both-at-cap", u(memoryCap), u(memoryCap), 0, 0, false},
		{"offset-past-cap", u(memoryCap + 1), u(0), 0, 0, false},
		{"size-past-cap", u(0), u(memoryCap + 1), 0, 0, false},
		{"offset-not-uint64", above64, u(0), 0, 0, false},
		{"size-not-uint64", u(0), above64, 0, 0, false},
		{"full-cap-from-zero", u(0), u(memoryCap), 0, memoryCap, true},
	}
	for _, tc := range cases {
		off, size, err := toRegion(tc.off, tc.size)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
			continue
		}
		if err != nil && err != ErrOutOfGas {
			t.Errorf("%s: err=%v, want ErrOutOfGas", tc.name, err)
		}
		if tc.ok && (off != tc.wantOff || size != tc.wantSize) {
			t.Errorf("%s: region=(%d,%d), want (%d,%d)", tc.name, off, size, tc.wantOff, tc.wantSize)
		}
	}
}

// TestZeroPadded pins *COPY source semantics: reads past the end of the
// source zero-fill, including offsets past the end entirely and offsets
// that only a malicious size pushes out of range.
func TestZeroPadded(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	cases := []struct {
		name         string
		offset, size uint64
		want         []byte
	}{
		{"zero-size", 2, 0, nil},
		{"exact", 0, 4, []byte{1, 2, 3, 4}},
		{"interior", 1, 2, []byte{2, 3}},
		{"pad-tail", 2, 4, []byte{3, 4, 0, 0}},
		{"offset-at-end", 4, 3, []byte{0, 0, 0}},
		{"offset-past-end", 100, 2, []byte{0, 0}},
		{"huge-offset", ^uint64(0), 2, []byte{0, 0}},
		{"empty-src", 0, 3, []byte{0, 0, 0}},
	}
	for _, tc := range cases {
		s := src
		if tc.name == "empty-src" {
			s = nil
		}
		if got := zeroPadded(s, tc.offset, tc.size); !bytes.Equal(got, tc.want) {
			t.Errorf("%s: zeroPadded=%x, want %x", tc.name, got, tc.want)
		}
	}
}

// TestMemoryExpandReuse pins the pooled-memory contract: capacity retained
// across release is re-exposed zeroed, and oversized buffers are dropped.
func TestMemoryExpandReuse(t *testing.T) {
	var m Memory
	m.SetByte(100, 0xab)
	if m.Len() != 128 {
		t.Fatalf("Len=%d after SetByte(100), want word-rounded 128", m.Len())
	}

	m.release()
	if m.Len() != 0 {
		t.Fatalf("Len=%d after release", m.Len())
	}
	// Re-expanding into the retained capacity must read as zero.
	if got := m.GetWord(96); !got.Eq(u256.Zero()) {
		t.Fatalf("retained capacity leaked stale byte: %s", got.Hex())
	}

	// A buffer past the retain cap is dropped on release.
	m.expand(0, memoryRetainCap+32)
	m.release()
	if m.data != nil {
		t.Fatalf("release retained a %d-byte buffer past memoryRetainCap", cap(m.data))
	}
}
