package evm

import (
	"sync"

	"repro/internal/etypes"
	"repro/internal/u256"
)

// This file implements the pre-decoded instruction stream the fast
// interpreter executes. One decode pass per bytecode produces a []instr
// with PUSH immediates materialized as u256.Int, per-op stack requirements
// and constant gas folded into each instr, a pc → instruction-index jump
// table replacing the lazy JUMPDEST map, and — for untraced runs — fused
// superinstructions for the Solidity dispatcher idiom. Programs are cached
// per code hash so landscape-scale probing decodes each distinct bytecode
// once.

// Instruction kinds. Plain opcodes use uint16(op) directly (0x00–0xff);
// pre-decoded and fused forms live above the opcode space so the run loop
// switches on one dense integer.
const (
	kindInvalid      uint16 = 0x100 + iota // undefined opcode or INVALID
	kindPush                               // PUSH0..PUSH32, immediate materialized
	kindDup                                // DUP1..DUP16
	kindSwap                               // SWAP1..SWAP16
	kindLog                                // LOG0..LOG4
	kindPushJump                           // PUSHn dest; JUMP
	kindPushJumpI                          // PUSHn dest; JUMPI
	kindDispatch                           // PUSH4 sel; EQ; PUSHn dest; JUMPI
	kindDupPushJumpI                       // DUPn; PUSHn dest; JUMPI
	kindSwapPop                            // SWAPn; POP
)

// fusedKindBase is the first fused-superinstruction kind; every kind at or
// above it folds multiple source instructions into one dispatch.
const fusedKindBase = kindPushJump

// instr is one pre-decoded instruction. For fused kinds the stack and gas
// fields hold the folded requirements of the whole component sequence:
// need is the minimum entry depth at which no component underflows, and
// peak is the worst-case depth delta such that entry depth + peak never
// exceeds stackLimit mid-sequence. Both are exact (derived per component
// against the running net stack delta), so the fast preconditions accept
// iff every component would pass the reference loop's per-op checks.
type instr struct {
	imm    u256.Int // PUSH immediate, or the PUSH4 selector for kindDispatch
	destPc uint64   // jump-target pc pushed by the dest PUSH of a fused seq
	dest   int32    // resolved jump-target instruction index; -1 = invalid
	pc     uint32   // source pc of the first component opcode
	kind   uint16
	gas    uint16 // folded constant gas (dynamic parts charged in the body)
	need   uint16 // minimum stack depth required on entry
	peak   int16  // overflow check: fail if depth+peak > stackLimit
	op     Op     // first component opcode (tracing, fallback replay)
	destOp Op     // dest PUSH opcode of a fused sequence (fallback replay)
	n      uint8  // dup/swap distance, log topic count, or push width
	steps  uint8  // source instructions folded into this instr
}

// program is a decoded bytecode ready for the fast loop.
type program struct {
	instrs  []instr
	jumpIdx []int32 // pc → instruction index of a JUMPDEST there, else -1
	codeLen uint64
	fused   bool
}

// jumpTo resolves a dynamic jump destination to an instruction index,
// returning -1 for anything the reference loop's validJumpdest rejects.
func (p *program) jumpTo(dest u256.Int) int32 {
	if !dest.IsUint64() {
		return -1
	}
	pc := dest.Uint64()
	if pc >= uint64(len(p.jumpIdx)) {
		return -1
	}
	return p.jumpIdx[pc]
}

// rawInstr is the first-pass decoding of one source instruction.
type rawInstr struct {
	op  Op
	pc  uint32
	imm u256.Int
	n   uint8 // push width
}

// isPushLike reports ops that push a known immediate (PUSH0..PUSH32).
func isPushLike(op Op) bool { return op == PUSH0 || op.IsPush() }

// decode pre-decodes code into a program. When fuse is set, the
// superinstruction pass runs; traced executions use unfused programs so
// tracers observe every source instruction at its original pc.
func decode(code []byte, fuse bool) *program {
	p := &program{
		jumpIdx: make([]int32, len(code)),
		codeLen: uint64(len(code)),
		fused:   fuse,
	}
	for i := range p.jumpIdx {
		p.jumpIdx[i] = -1
	}

	// Pass 1: linear scan into raw instructions, materializing immediates.
	// A PUSH truncated by end-of-code pads with trailing zero bytes, same
	// as the reference loop's copy-into-fresh-buffer semantics.
	raws := make([]rawInstr, 0, len(code))
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		r := rawInstr{op: op, pc: uint32(pc)}
		if op.IsPush() {
			n := op.PushSize()
			var buf [32]byte
			copy(buf[:n], code[min(pc+1, len(code)):min(pc+1+n, len(code))])
			r.imm = u256.FromBytes(buf[:n])
			r.n = uint8(n)
			pc += 1 + n
		} else {
			pc++
		}
		raws = append(raws, r)
	}

	// Pass 2: emit instrs, fusing where enabled. Fused components other
	// than the first are never JUMPDESTs (JUMPDEST is never a component),
	// so no jump can land mid-sequence.
	p.instrs = make([]instr, 0, len(raws))
	for i := 0; i < len(raws); {
		if fuse {
			if in, consumed := tryFuse(raws, i); consumed > 0 {
				p.instrs = append(p.instrs, in)
				i += consumed
				continue
			}
		}
		r := raws[i]
		if r.op == JUMPDEST {
			p.jumpIdx[r.pc] = int32(len(p.instrs))
		}
		p.instrs = append(p.instrs, plainInstr(r))
		i++
	}

	// Pass 3: resolve constant jump targets of fused instructions now that
	// the JUMPDEST index is complete.
	for idx := range p.instrs {
		in := &p.instrs[idx]
		switch in.kind {
		case kindPushJump, kindPushJumpI:
			in.dest = p.jumpTo(in.imm)
		case kindDispatch, kindDupPushJumpI:
			in.dest = p.jumpTo(u256.FromUint64(in.destPc))
		}
	}
	return p
}

// plainInstr folds one source instruction's static checks into an instr.
func plainInstr(r rawInstr) instr {
	in := instr{pc: r.pc, op: r.op, steps: 1, dest: -1}
	op := r.op
	switch {
	case !op.Defined() || op == INVALID:
		in.kind = kindInvalid
		return in
	case isPushLike(op):
		in.kind = kindPush
		in.imm = r.imm
		in.n = r.n
	case op.IsDup():
		in.kind = kindDup
		in.n = uint8(op-DUP1) + 1
	case op.IsSwap():
		in.kind = kindSwap
		in.n = uint8(op-SWAP1) + 1
	case op.IsLog():
		in.kind = kindLog
		in.n = uint8(op - LOG0)
	default:
		in.kind = uint16(op)
	}
	pops, pushes := stackReq(op)
	in.need = uint16(pops)
	in.peak = int16(pushes - pops)
	in.gas = uint16(constGas(op))
	return in
}

// tryFuse attempts to fuse a superinstruction starting at raws[i],
// returning the fused instr and the number of source instructions it
// consumed (0 = no fusion). Longer patterns are matched first. The dest
// PUSH of dispatch/dup patterns must fit uint64 so the fallback replay can
// re-push it; wider immediates (never valid jump targets anyway) simply
// decline fusion.
func tryFuse(raws []rawInstr, i int) (instr, int) {
	r0 := raws[i]
	rest := len(raws) - i

	// PUSH4 sel; EQ; PUSHn dest; JUMPI — the Solidity selector dispatcher.
	if r0.op == PUSH4 && rest >= 4 &&
		raws[i+1].op == EQ && isPushLike(raws[i+2].op) && raws[i+3].op == JUMPI &&
		raws[i+2].imm.IsUint64() {
		return fuseInstr(kindDispatch, raws[i:i+4], 2), 4
	}
	// DUPn; PUSHn dest; JUMPI — the duplicated-condition branch.
	if r0.op.IsDup() && rest >= 3 &&
		isPushLike(raws[i+1].op) && raws[i+2].op == JUMPI &&
		raws[i+1].imm.IsUint64() {
		in := fuseInstr(kindDupPushJumpI, raws[i:i+3], 1)
		in.n = uint8(r0.op-DUP1) + 1
		return in, 3
	}
	// PUSHn dest; JUMP / JUMPI — the static branch.
	if isPushLike(r0.op) && rest >= 2 {
		switch raws[i+1].op {
		case JUMP:
			return fuseInstr(kindPushJump, raws[i:i+2], -1), 2
		case JUMPI:
			return fuseInstr(kindPushJumpI, raws[i:i+2], -1), 2
		}
	}
	// SWAPn; POP — the discard-below-top idiom stack schedulers emit.
	if r0.op.IsSwap() && rest >= 2 && raws[i+1].op == POP {
		in := fuseInstr(kindSwapPop, raws[i:i+2], -1)
		in.n = uint8(r0.op-SWAP1) + 1
		return in, 2
	}
	return instr{}, 0
}

// fuseInstr folds the component sequence comps into one instr of the given
// kind. destIdx names the component whose immediate is the jump target pc
// (-1 when the first component's immediate already is, or no dest applies).
// need/peak are computed exactly: tracking the net stack delta before each
// component, need = max(pops_i - net_i) and peak = max(net_i + pushes_i -
// pops_i), which reproduces the reference loop's underflow and overflow
// checks at every component for every entry depth.
func fuseInstr(kind uint16, comps []rawInstr, destIdx int) instr {
	in := instr{
		kind:  kind,
		pc:    comps[0].pc,
		op:    comps[0].op,
		imm:   comps[0].imm,
		steps: uint8(len(comps)),
		dest:  -1,
	}
	if destIdx >= 0 {
		in.destOp = comps[destIdx].op
		in.destPc = comps[destIdx].imm.Uint64()
	}
	var gas uint64
	net, need, peak := 0, 0, -len(comps)
	for _, c := range comps {
		pops, pushes := stackReq(c.op)
		if d := pops - net; d > need {
			need = d
		}
		if d := net + pushes - pops; d > peak {
			peak = d
		}
		net += pushes - pops
		gas += constGas(c.op)
	}
	in.need = uint16(need)
	in.peak = int16(peak)
	in.gas = uint16(gas)
	return in
}

// progKey identifies a cached program: the code hash plus whether the
// fusion pass ran (traced executions need unfused programs).
type progKey struct {
	hash  etypes.Hash
	fused bool
}

// progCacheCap bounds the global decode cache. At ~2k distinct bytecodes
// per generated landscape shard this comfortably holds a working set; on
// overflow an arbitrary eighth is evicted (the cache is a pure
// memoization, so eviction only costs a re-decode).
const progCacheCap = 4096

var progCache = struct {
	mu           sync.Mutex
	m            map[progKey]*program
	hits, misses uint64
}{m: make(map[progKey]*program)}

// programFor returns the decoded program for code, cached per code hash.
// A zero hash (a StateDB that does not track code hashes, or init code
// that has no account yet) skips the cache entirely.
func programFor(hash etypes.Hash, code []byte, fused bool) *program {
	if len(code) == 0 {
		return nil
	}
	if hash == (etypes.Hash{}) {
		return decode(code, fused)
	}
	key := progKey{hash: hash, fused: fused}
	progCache.mu.Lock()
	if p, ok := progCache.m[key]; ok && p.codeLen == uint64(len(code)) {
		progCache.hits++
		progCache.mu.Unlock()
		return p
	}
	progCache.misses++
	progCache.mu.Unlock()

	p := decode(code, fused)

	progCache.mu.Lock()
	if len(progCache.m) >= progCacheCap {
		drop := progCacheCap / 8
		for k := range progCache.m {
			delete(progCache.m, k)
			if drop--; drop == 0 {
				break
			}
		}
	}
	progCache.m[key] = p
	progCache.mu.Unlock()
	return p
}

// DecodeCacheStats reports hit/miss counters of the global program cache.
func DecodeCacheStats() (hits, misses uint64, entries int) {
	progCache.mu.Lock()
	defer progCache.mu.Unlock()
	return progCache.hits, progCache.misses, len(progCache.m)
}

// ResetDecodeCache empties the global program cache (tests, ablations).
func ResetDecodeCache() {
	progCache.mu.Lock()
	defer progCache.mu.Unlock()
	progCache.m = make(map[progKey]*program)
	progCache.hits, progCache.misses = 0, 0
}
