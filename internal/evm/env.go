package evm

import (
	"repro/internal/etypes"
	"repro/internal/u256"
)

// StateDB is the world-state interface the interpreter executes against.
// The chain package provides the production implementation with journaling
// and history; tests use lightweight in-memory fakes.
type StateDB interface {
	// Exists reports whether an account (contract or EOA) exists.
	Exists(addr etypes.Address) bool
	// GetCode returns the runtime bytecode at addr (nil for EOAs).
	GetCode(addr etypes.Address) []byte
	// GetCodeHash returns the Keccak-256 of the code at addr.
	GetCodeHash(addr etypes.Address) etypes.Hash
	// GetBalance returns the Wei balance of addr.
	GetBalance(addr etypes.Address) u256.Int
	// Transfer moves value from one account to another; it must fail with
	// ErrInsufficientFund semantics handled by the caller (CanTransfer).
	Transfer(from, to etypes.Address, value u256.Int)
	// GetState reads a storage word.
	GetState(addr etypes.Address, key etypes.Hash) etypes.Hash
	// SetState writes a storage word.
	SetState(addr etypes.Address, key, value etypes.Hash)
	// GetNonce and SetNonce manage account nonces (CREATE derivation).
	GetNonce(addr etypes.Address) uint64
	SetNonce(addr etypes.Address, nonce uint64)
	// CreateAccount ensures an account record exists for addr.
	CreateAccount(addr etypes.Address)
	// SetCode installs runtime bytecode at addr.
	SetCode(addr etypes.Address, code []byte)
	// SelfDestruct marks the account destroyed and sweeps its balance.
	SelfDestruct(addr, beneficiary etypes.Address)
	// Snapshot returns a revision id; RevertToSnapshot undoes all state
	// changes made after the given revision was taken.
	Snapshot() int
	RevertToSnapshot(rev int)
	// AddLog records a LOG0..LOG4 event.
	AddLog(addr etypes.Address, topics []etypes.Hash, data []byte)
}

// BlockContext supplies the block-level environment opcodes. Proxion's
// emulator fills this from the latest block (or fixed, most-probable values
// such as chain id 1), per Section 4.2 of the paper.
type BlockContext struct {
	Coinbase   etypes.Address
	Number     uint64
	Time       uint64
	Difficulty u256.Int
	GasLimit   uint64
	ChainID    u256.Int
	BaseFee    u256.Int
	// BlockHash returns the hash of a recent block by number. A nil
	// function yields zero hashes.
	BlockHash func(number uint64) etypes.Hash
}

// DefaultBlockContext returns the fixed mainnet-like environment the Proxion
// emulator uses: chain id 1 and plausible recent-block values.
func DefaultBlockContext() BlockContext {
	return BlockContext{
		Coinbase:   etypes.MustAddress("0x95222290dd7278aa3ddd389cc1e1d165cc4bafe5"),
		Number:     18_473_542, // final block of October 2023, per the paper
		Time:       1_698_796_799,
		Difficulty: u256.FromUint64(0),
		GasLimit:   30_000_000,
		ChainID:    u256.One(),
		BaseFee:    u256.FromUint64(15_000_000_000),
	}
}

// TxContext supplies the transaction-level environment opcodes.
type TxContext struct {
	Origin   etypes.Address
	GasPrice u256.Int
}

// CallKind distinguishes the frame-creating instructions for tracers.
type CallKind int

// Call kinds, one per frame-creating construct.
const (
	CallKindCall CallKind = iota + 1
	CallKindDelegateCall
	CallKindStaticCall
	CallKindCallCode
	CallKindCreate
	CallKindCreate2
)

// String returns the mnemonic of the frame-creating instruction.
func (k CallKind) String() string {
	switch k {
	case CallKindCall:
		return "CALL"
	case CallKindDelegateCall:
		return "DELEGATECALL"
	case CallKindStaticCall:
		return "STATICCALL"
	case CallKindCallCode:
		return "CALLCODE"
	case CallKindCreate:
		return "CREATE"
	case CallKindCreate2:
		return "CREATE2"
	default:
		return "UNKNOWN"
	}
}

// Tracer observes interpreter execution. All methods are called
// synchronously from the interpreter loop; implementations must not retain
// the frame beyond the callback.
type Tracer interface {
	// CaptureStep fires before each opcode executes. The frame exposes the
	// operand stack and memory for inspection.
	CaptureStep(frame *Frame, pc uint64, op Op)
	// CaptureEnter fires when a new frame begins (outer call and nested
	// CALL/DELEGATECALL/STATICCALL/CALLCODE/CREATE/CREATE2).
	CaptureEnter(kind CallKind, from, to etypes.Address, input []byte, value u256.Int)
	// CaptureExit fires when the frame ends, with its output and error.
	CaptureExit(output []byte, err error)
}
