package evm

// Gas cost tiers, following the Yellow Paper's fee schedule shape. The model
// is intentionally simplified relative to post-Berlin access lists (no
// warm/cold distinction, no refunds): analysis workloads need execution to
// terminate and costs to be monotone, not consensus-exact accounting.
const (
	gasZero    = 0
	gasBase    = 2
	gasVeryLow = 3
	gasLow     = 5
	gasMid     = 8
	gasHigh    = 10

	gasExt          = 100
	gasSload        = 100
	gasSstoreSet    = 20000
	gasSstoreReset  = 5000
	gasJumpdest     = 1
	gasKeccakBase   = 30
	gasKeccakWord   = 6
	gasCopyWord     = 3
	gasLogBase      = 375
	gasLogTopic     = 375
	gasLogByte      = 8
	gasCreate       = 32000
	gasCallBase     = 100
	gasCallValue    = 9000
	gasCallStipend  = 2300
	gasSelfdestruct = 5000
	gasExpBase      = 10
	gasExpByte      = 50
	gasMemoryWord   = 3
	gasQuadDivisor  = 512
)

// constGas returns the static gas charge for op. Dynamic components (memory
// expansion, per-word copy costs, call forwarding) are charged by the
// interpreter at the call sites.
func constGas(op Op) uint64 {
	switch {
	case op.IsPush() || op.IsDup() || op.IsSwap():
		return gasVeryLow
	case op.IsLog():
		return gasLogBase + uint64(op-LOG0)*gasLogTopic
	}
	switch op {
	case STOP, RETURN, REVERT:
		return gasZero
	case ADDRESS, ORIGIN, CALLER, CALLVALUE, CALLDATASIZE, CODESIZE,
		GASPRICE, COINBASE, TIMESTAMP, NUMBER, DIFFICULTY, GASLIMIT,
		RETURNDATASIZE, POP, PC, MSIZE, GAS, CHAINID, BASEFEE, PUSH0:
		return gasBase
	case ADD, SUB, LT, GT, SLT, SGT, EQ, ISZERO, AND, OR, XOR, NOT, BYTE,
		SHL, SHR, SAR, CALLDATALOAD, MLOAD, MSTORE, MSTORE8,
		CALLDATACOPY, CODECOPY, RETURNDATACOPY:
		return gasVeryLow
	case MUL, DIV, SDIV, MOD, SMOD, SIGNEXTEND, SELFBALANCE:
		return gasLow
	case ADDMOD, MULMOD, JUMP:
		return gasMid
	case JUMPI, EXP:
		return gasHigh
	case BLOCKHASH:
		return 20
	case BALANCE, EXTCODESIZE, EXTCODECOPY, EXTCODEHASH:
		return gasExt
	case SLOAD:
		return gasSload
	case JUMPDEST:
		return gasJumpdest
	case KECCAK256:
		return gasKeccakBase
	case CREATE, CREATE2:
		return gasCreate
	case CALL, CALLCODE, DELEGATECALL, STATICCALL:
		return gasCallBase
	case SELFDESTRUCT:
		return gasSelfdestruct
	default:
		return gasBase
	}
}

// StackArity returns how many stack operands op pops and how many results
// it pushes. It is the interpreter's own arity table, exported so static
// analyses can mirror the stack discipline without executing code.
func StackArity(op Op) (pops, pushes int) { return stackReq(op) }

// stackReq returns how many operands op pops and pushes.
func stackReq(op Op) (pops, pushes int) {
	switch {
	case op.IsPush():
		return 0, 1
	case op.IsDup():
		return int(op-DUP1) + 1, int(op-DUP1) + 2
	case op.IsSwap():
		return int(op-SWAP1) + 2, int(op-SWAP1) + 2
	case op.IsLog():
		return int(op-LOG0) + 2, 0
	}
	switch op {
	case STOP, JUMPDEST, INVALID:
		return 0, 0
	case ADD, MUL, SUB, DIV, SDIV, MOD, SMOD, SIGNEXTEND, LT, GT, SLT, SGT,
		EQ, AND, OR, XOR, BYTE, SHL, SHR, SAR, KECCAK256:
		return 2, 1
	case ADDMOD, MULMOD:
		return 3, 1
	case EXP:
		return 2, 1
	case ISZERO, NOT, BALANCE, CALLDATALOAD, EXTCODESIZE, EXTCODEHASH,
		BLOCKHASH, MLOAD, SLOAD:
		return 1, 1
	case ADDRESS, ORIGIN, CALLER, CALLVALUE, CALLDATASIZE, CODESIZE,
		GASPRICE, RETURNDATASIZE, COINBASE, TIMESTAMP, NUMBER, DIFFICULTY,
		GASLIMIT, CHAINID, SELFBALANCE, BASEFEE, PC, MSIZE, GAS, PUSH0:
		return 0, 1
	case POP, JUMP, SELFDESTRUCT:
		return 1, 0
	case MSTORE, MSTORE8, SSTORE, JUMPI:
		return 2, 0
	case CALLDATACOPY, CODECOPY, RETURNDATACOPY:
		return 3, 0
	case EXTCODECOPY:
		return 4, 0
	case CREATE:
		return 3, 1
	case CREATE2:
		return 4, 1
	case CALL, CALLCODE:
		return 7, 1
	case DELEGATECALL, STATICCALL:
		return 6, 1
	case RETURN, REVERT:
		return 2, 0
	default:
		return 0, 0
	}
}

// memoryGas returns the total fee for a memory of the given word count,
// per the Yellow Paper quadratic model.
func memoryGas(words uint64) uint64 {
	return gasMemoryWord*words + words*words/gasQuadDivisor
}

// chargeMemory charges the expansion delta for making [offset, offset+size)
// addressable and reports whether gas sufficed.
func (f *Frame) chargeMemory(offset, size uint64) error {
	if size == 0 {
		return nil
	}
	end := offset + size
	if end < offset || end > memoryCap {
		return ErrOutOfGas
	}
	oldWords := uint64(f.memory.Len()) / 32
	newWords := (end + 31) / 32
	if newWords <= oldWords {
		return nil
	}
	return f.chargeGas(memoryGas(newWords) - memoryGas(oldWords))
}

// chargeGas deducts amount from the frame's remaining gas.
func (f *Frame) chargeGas(amount uint64) error {
	if f.gas < amount {
		return ErrOutOfGas
	}
	f.gas -= amount
	return nil
}

// wordCount rounds a byte size up to 32-byte words.
func wordCount(size uint64) uint64 { return (size + 31) / 32 }
