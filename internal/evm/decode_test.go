package evm

import (
	"testing"

	"repro/internal/etypes"
	"repro/internal/keccak"
	"repro/internal/u256"
)

// TestDecodeFusionPatterns pins which source sequences fuse, into which
// kind, and with which folded requirements.
func TestDecodeFusionPatterns(t *testing.T) {
	cases := []struct {
		name  string
		code  []byte
		kind  uint16
		steps uint8
		need  uint16
		peak  int16
		gas   uint16
	}{
		// PUSH4 sel; EQ; PUSH1 dest; JUMPI: entry needs the duplicated
		// selector on the stack; mid-sequence depth peaks one above entry.
		{"dispatch", []byte{0x63, 0xaa, 0xbb, 0xcc, 0xdd, 0x14, 0x60, 0x08, 0x57, 0x5b},
			kindDispatch, 4, 1, 1, 19},
		{"push-jump", []byte{0x60, 0x03, 0x56, 0x5b}, kindPushJump, 2, 0, 1, 11},
		{"push-jumpi", []byte{0x60, 0x04, 0x57, 0x00, 0x5b}, kindPushJumpI, 2, 1, 1, 13},
		{"dup1-push-jumpi", []byte{0x80, 0x60, 0x05, 0x57, 0x00, 0x5b}, kindDupPushJumpI, 3, 1, 2, 16},
		{"swap1-pop", []byte{0x90, 0x50}, kindSwapPop, 2, 2, 0, 5},
		{"swap16-pop", []byte{0x9f, 0x50}, kindSwapPop, 2, 17, 0, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := decode(tc.code, true)
			in := p.instrs[0]
			if in.kind != tc.kind {
				t.Fatalf("kind=%#x, want %#x", in.kind, tc.kind)
			}
			if in.steps != tc.steps {
				t.Errorf("steps=%d, want %d", in.steps, tc.steps)
			}
			if in.need != tc.need {
				t.Errorf("need=%d, want %d", in.need, tc.need)
			}
			if in.peak != tc.peak {
				t.Errorf("peak=%d, want %d", in.peak, tc.peak)
			}
			if in.gas != tc.gas {
				t.Errorf("gas=%d, want %d", in.gas, tc.gas)
			}

			// The same code decoded unfused must contain only plain kinds.
			for i, in := range decode(tc.code, false).instrs {
				if in.kind >= fusedKindBase {
					t.Errorf("unfused decode produced fused kind %#x at %d", in.kind, i)
				}
			}
		})
	}
}

// TestDecodeFusionDeclined pins sequences that look fusable but must not
// fuse into the named kind (inner sub-patterns may still fuse on their own:
// a declined dispatcher's PUSH32; JUMPI tail fuses as kindPushJumpI, which
// needs no uint64 dest because the replay re-pushes imm directly).
func TestDecodeFusionDeclined(t *testing.T) {
	cases := []struct {
		name   string
		code   []byte
		forbid []uint16
	}{
		// Dest immediate wider than uint64: never a valid jump target, and
		// the dispatch fallback could not re-push it from destPc.
		{"dispatch-wide-dest", append(append([]byte{0x63, 1, 2, 3, 4, 0x14, 0x7f, 0xff},
			make([]byte, 31)...), 0x57),
			[]uint16{kindDispatch}},
		{"dup-wide-dest", append(append([]byte{0x80, 0x7f, 0xff},
			make([]byte, 31)...), 0x57),
			[]uint16{kindDupPushJumpI}},
		// Truncated trailing PUSH: PUSHn is the last instruction, nothing to
		// fuse with.
		{"trailing-push", []byte{0x60},
			[]uint16{kindPushJump, kindPushJumpI, kindDispatch, kindDupPushJumpI, kindSwapPop}},
		// SWAP followed by something other than POP.
		{"swap-no-pop", []byte{0x90, 0x01},
			[]uint16{kindPushJump, kindPushJumpI, kindDispatch, kindDupPushJumpI, kindSwapPop}},
		// JUMPDEST between components breaks the pattern window.
		{"jumpdest-mid", []byte{0x60, 0x03, 0x5b, 0x56},
			[]uint16{kindPushJump, kindPushJumpI, kindDispatch, kindDupPushJumpI, kindSwapPop}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, in := range decode(tc.code, true).instrs {
				for _, k := range tc.forbid {
					if in.kind == k {
						t.Fatalf("fused kind %#x emitted for %x", in.kind, tc.code)
					}
				}
			}
		})
	}
}

// TestDecodeJumpIndex pins jumpIdx: JUMPDEST pcs map to their instruction
// index, everything else (including a 0x5b byte inside push data) is -1.
func TestDecodeJumpIndex(t *testing.T) {
	// PUSH2 0x5b5b (push data mimics JUMPDEST); JUMPDEST; STOP
	code := []byte{0x61, 0x5b, 0x5b, 0x5b, 0x00}
	p := decode(code, false)
	if got := p.jumpTo(u256.FromUint64(3)); got < 0 || p.instrs[got].op != JUMPDEST {
		t.Fatalf("jumpTo(3)=%d, want index of the real JUMPDEST", got)
	}
	for _, pc := range []uint64{0, 1, 2, 4, 5, 100} {
		if got := p.jumpTo(u256.FromUint64(pc)); got != -1 {
			t.Errorf("jumpTo(%d)=%d, want -1", pc, got)
		}
	}
	if got := p.jumpTo(u256.FromBytes([]byte{1, 0, 0, 0, 0, 0, 0, 0, 3})); got != -1 {
		t.Errorf("jumpTo(2^64+3)=%d, want -1", got)
	}

	// Fused decode resolves the constant dest at decode time.
	fused := decode([]byte{0x60, 0x03, 0x56, 0x5b}, true)
	if in := fused.instrs[0]; in.kind != kindPushJump || in.dest < 0 ||
		fused.instrs[in.dest].op != JUMPDEST {
		t.Fatalf("fused push-jump dest not resolved: %+v", fused.instrs[0])
	}
	bad := decode([]byte{0x60, 0x00, 0x56, 0x5b}, true)
	if in := bad.instrs[0]; in.dest != -1 {
		t.Fatalf("jump to non-JUMPDEST resolved to %d, want -1", in.dest)
	}
}

// TestDecodeTruncatedPush pins the pad-with-trailing-zeros immediate of a
// PUSH cut off by end of code, matching the reference loop's semantics.
func TestDecodeTruncatedPush(t *testing.T) {
	// PUSH32 with only one data byte: value is 0x01 followed by 31 zeros.
	p := decode([]byte{0x7f, 0x01}, false)
	if len(p.instrs) != 1 || p.instrs[0].kind != kindPush {
		t.Fatalf("decoded %d instrs, want one push", len(p.instrs))
	}
	var want [32]byte
	want[0] = 0x01
	if got := p.instrs[0].imm; !got.Eq(u256.FromBytes32(want)) {
		t.Fatalf("truncated push32 imm=%s, want 0x01 zero-padded", got.Hex())
	}

	// PUSH1 with no data at all: immediate is zero.
	p = decode([]byte{0x60}, false)
	if got := p.instrs[0].imm; !got.Eq(u256.Zero()) {
		t.Fatalf("dataless push1 imm=%s, want 0", got.Hex())
	}
}

// TestProgramCache pins the cache contract: per-(hash, fused) memoization,
// zero hashes bypass it, and the stats counters track hits and misses.
func TestProgramCache(t *testing.T) {
	ResetDecodeCache()
	defer ResetDecodeCache()

	code := []byte{0x60, 0x01, 0x60, 0x02, 0x01, 0x00}
	hash := keccak.Sum256(code)

	p1 := programFor(hash, code, true)
	p2 := programFor(hash, code, true)
	if p1 != p2 {
		t.Fatalf("same (hash, fused) key returned distinct programs")
	}
	if pu := programFor(hash, code, false); pu == p1 || !p1.fused || pu.fused {
		t.Fatalf("fused and unfused programs must be cached separately")
	}
	if hits, misses, entries := DecodeCacheStats(); hits != 1 || misses != 2 || entries != 2 {
		t.Fatalf("stats hits=%d misses=%d entries=%d, want 1/2/2", hits, misses, entries)
	}

	// Zero hash bypasses the cache: fresh program, no counter movement.
	z1 := programFor(etypes.Hash{}, code, true)
	z2 := programFor(etypes.Hash{}, code, true)
	if z1 == z2 {
		t.Fatalf("zero-hash decodes must not be cached")
	}
	if hits, misses, _ := DecodeCacheStats(); hits != 1 || misses != 2 {
		t.Fatalf("zero-hash decode moved cache counters: hits=%d misses=%d", hits, misses)
	}

	// Empty code has no program at all.
	if p := programFor(hash, nil, true); p != nil {
		t.Fatalf("empty code produced a program")
	}
}

// TestProgramCacheEviction fills the cache past capacity and checks it both
// bounds its size and keeps serving correct programs afterwards.
func TestProgramCacheEviction(t *testing.T) {
	ResetDecodeCache()
	defer ResetDecodeCache()

	code := make([]byte, 4)
	for i := 0; i < progCacheCap+64; i++ {
		code[0], code[1] = 0x60, byte(i) // PUSH1 i; pad
		code[2], code[3] = byte(i>>8), 0x00
		programFor(keccak.Sum256(code), code, true)
	}
	if _, _, entries := DecodeCacheStats(); entries > progCacheCap {
		t.Fatalf("cache grew to %d entries, cap is %d", entries, progCacheCap)
	}
	// A re-request after eviction still returns a working program.
	code[0], code[1], code[2], code[3] = 0x60, 0x00, 0x00, 0x00
	p := programFor(keccak.Sum256(code), code, true)
	if p == nil || len(p.instrs) == 0 {
		t.Fatalf("post-eviction decode failed")
	}
}
