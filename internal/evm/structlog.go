package evm

import (
	"fmt"
	"strings"

	"repro/internal/etypes"
	"repro/internal/u256"
)

// StructLog is one executed instruction's snapshot, in the style of geth's
// struct logger: enough to reconstruct what a contract did step by step.
type StructLog struct {
	PC    uint64
	Op    Op
	Gas   uint64
	Depth int
	// StackTop holds up to the four topmost stack words (top first).
	StackTop []u256.Int
	// Context is the storage/self address of the executing frame.
	Context etypes.Address
}

// String formats the entry like "0007 DELEGATECALL gas=4996 depth=2 [0x5a, 0x...]".
func (l StructLog) String() string {
	parts := make([]string, len(l.StackTop))
	for i, w := range l.StackTop {
		parts[i] = w.Hex()
	}
	return fmt.Sprintf("%04X %-14s gas=%-8d depth=%d [%s]",
		l.PC, l.Op, l.Gas, l.Depth, strings.Join(parts, ", "))
}

// StructLogger records every executed instruction plus the call tree. Use
// it to debug emulations; the detector uses the lighter special-purpose
// tracers instead.
type StructLogger struct {
	// MaxEntries bounds memory use; zero means 100k entries.
	MaxEntries int

	logs  []StructLog
	calls []CallRecord
	depth int
}

// CallRecord is one frame-creating event in the call tree.
type CallRecord struct {
	Kind  CallKind
	From  etypes.Address
	To    etypes.Address
	Input []byte
	Depth int
	// Err is the frame's terminal error (nil on success); filled at exit.
	Err error
}

var _ Tracer = (*StructLogger)(nil)

// CaptureStep implements Tracer.
func (sl *StructLogger) CaptureStep(f *Frame, pc uint64, op Op) {
	limit := sl.MaxEntries
	if limit == 0 {
		limit = 100_000
	}
	if len(sl.logs) >= limit {
		return
	}
	top := make([]u256.Int, 0, 4)
	for i := 0; i < 4 && i < f.Stack().Len(); i++ {
		top = append(top, f.Stack().Peek(i))
	}
	sl.logs = append(sl.logs, StructLog{
		PC:       pc,
		Op:       op,
		Gas:      f.Gas(),
		Depth:    sl.depth,
		StackTop: top,
		Context:  f.Address(),
	})
}

// CaptureEnter implements Tracer.
func (sl *StructLogger) CaptureEnter(kind CallKind, from, to etypes.Address, input []byte, _ u256.Int) {
	sl.depth++
	in := make([]byte, len(input))
	copy(in, input)
	sl.calls = append(sl.calls, CallRecord{
		Kind: kind, From: from, To: to, Input: in, Depth: sl.depth,
	})
}

// CaptureExit implements Tracer.
func (sl *StructLogger) CaptureExit(_ []byte, err error) {
	// Attach the error to the most recent unclosed call at this depth.
	for i := len(sl.calls) - 1; i >= 0; i-- {
		if sl.calls[i].Depth == sl.depth {
			if sl.calls[i].Err == nil {
				sl.calls[i].Err = err
			}
			break
		}
	}
	sl.depth--
}

// Logs returns the recorded per-instruction entries.
func (sl *StructLogger) Logs() []StructLog { return sl.logs }

// Calls returns the recorded call tree in entry order.
func (sl *StructLogger) Calls() []CallRecord { return sl.calls }

// Format renders the whole trace as text.
func (sl *StructLogger) Format() string {
	var b strings.Builder
	for _, l := range sl.logs {
		b.WriteString(strings.Repeat("  ", l.Depth-1))
		b.WriteString(l.String())
		b.WriteByte('\n')
	}
	return b.String()
}
