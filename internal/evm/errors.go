package evm

import "errors"

// Execution errors. ErrRevert carries normal REVERT semantics (state rolled
// back, return data preserved); all others consume remaining gas in the
// failing frame.
var (
	ErrStackUnderflow   = errors.New("evm: stack underflow")
	ErrStackOverflow    = errors.New("evm: stack overflow")
	ErrInvalidJump      = errors.New("evm: invalid jump destination")
	ErrInvalidOpcode    = errors.New("evm: invalid opcode")
	ErrOutOfGas         = errors.New("evm: out of gas")
	ErrRevert           = errors.New("evm: execution reverted")
	ErrWriteProtection  = errors.New("evm: write protection (static call)")
	ErrCallDepth        = errors.New("evm: max call depth exceeded")
	ErrInsufficientFund = errors.New("evm: insufficient balance for transfer")
	ErrCodeSizeLimit    = errors.New("evm: created code exceeds size limit")
	ErrStepLimit        = errors.New("evm: step limit exceeded")
)
