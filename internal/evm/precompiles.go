package evm

import (
	"crypto/sha256"

	"repro/internal/etypes"
)

// Precompiled contracts at the conventional low addresses. Only the two
// whose primitives the standard library provides are implemented — SHA-256
// (0x02) and the identity copy (0x04); they are the ones generated
// contracts plausibly call. The remaining addresses behave like empty
// accounts, which is also how an un-upgraded node treats unknown
// precompiles.
var (
	precompileSHA256   = etypes.MustAddress("0x0000000000000000000000000000000000000002")
	precompileIdentity = etypes.MustAddress("0x0000000000000000000000000000000000000004")
)

// precompile returns the implementation for addr, if any.
func precompile(addr etypes.Address) (func(input []byte) []byte, uint64, bool) {
	switch addr {
	case precompileSHA256:
		return func(input []byte) []byte {
			sum := sha256.Sum256(input)
			return sum[:]
		}, 60, true
	case precompileIdentity:
		return func(input []byte) []byte {
			out := make([]byte, len(input))
			copy(out, input)
			return out
		}, 15, true
	default:
		return nil, 0, false
	}
}

// runPrecompile executes a precompile call frame: fixed base cost plus a
// per-word component, no code, no storage.
func runPrecompile(fn func([]byte) []byte, base uint64, input []byte, gas uint64) CallResult {
	cost := base + 12*wordCount(uint64(len(input)))
	if gas < cost {
		return CallResult{Err: ErrOutOfGas}
	}
	return CallResult{Output: fn(input), GasLeft: gas - cost}
}
