// Package evm implements an Ethereum Virtual Machine interpreter covering
// all opcodes through the Shanghai revision, including the full call family
// (CALL, CALLCODE, DELEGATECALL, STATICCALL) and contract creation (CREATE,
// CREATE2). It exposes tracing hooks that let callers observe every executed
// instruction, which is what the Proxion detector uses to watch call data
// flow through DELEGATECALL in a candidate proxy's fallback function.
package evm

import (
	"repro/internal/etypes"
	"repro/internal/u256"
)

const (
	// maxCallDepth is the EVM call-stack depth limit.
	maxCallDepth = 1024
	// maxCodeSize is the EIP-170 deployed-code size limit.
	maxCodeSize = 24576
	// defaultStepLimit bounds emulation of unknown bytecode so that
	// adversarial or buggy contracts cannot spin the analyzer forever.
	defaultStepLimit = 1 << 20
	// memoryCap bounds addressable memory offsets; anything beyond is
	// treated as out-of-gas, which is how a real EVM would fail too.
	memoryCap = 1 << 32
)

// InterpMode selects which interpreter loop executes frames.
type InterpMode uint8

const (
	// InterpFast is the default: pre-decoded instruction streams cached
	// per code hash, fused superinstructions on untraced runs, and pooled
	// frames (see decode.go / interp_fast.go).
	InterpFast InterpMode = iota
	// InterpReference selects the original byte-at-a-time loop — the
	// ablation baseline the parity harness (internal/evm/parity) holds
	// the fast path against.
	InterpReference
)

// Config carries the execution environment and analyzer knobs.
type Config struct {
	Block  BlockContext
	Tx     TxContext
	Tracer Tracer
	// StepLimit caps the number of executed instructions per outer call
	// (0 means the default limit). Proxion relies on this to terminate
	// emulation of adversarial bytecode.
	StepLimit uint64
	// Lenient disables balance checks on value transfers. The Proxion
	// emulator runs contracts without funding synthetic senders.
	Lenient bool
	// Interp selects the interpreter loop (default InterpFast). The
	// reference loop remains selectable for ablations and differential
	// testing.
	Interp InterpMode
}

// EVM executes bytecode against a StateDB. An EVM value is single-use per
// goroutine; create one per transaction or emulation.
type EVM struct {
	state StateDB
	cfg   Config
	depth int
	steps uint64
}

// New returns an EVM executing against state with the given configuration.
func New(state StateDB, cfg Config) *EVM {
	if cfg.StepLimit == 0 {
		cfg.StepLimit = defaultStepLimit
	}
	return &EVM{state: state, cfg: cfg}
}

// StateDB returns the underlying state, for tracers that need extra context.
func (e *EVM) StateDB() StateDB { return e.state }

// Frame is a single execution context: one call or creation. Exported
// accessors allow tracers to observe — but not mutate — interpreter state.
type Frame struct {
	evm         *EVM
	address     etypes.Address // storage and self context
	codeAddress etypes.Address // account the code was loaded from
	caller      etypes.Address
	input       []byte
	value       u256.Int
	code        []byte
	static      bool

	stack      Stack
	memory     Memory
	gas        uint64
	returnData []byte
	jumpdests  map[uint64]struct{} // reference loop's lazy JUMPDEST set
	prog       *program            // fast loop's pre-decoded program
}

// Address returns the frame's storage/self address.
func (f *Frame) Address() etypes.Address { return f.address }

// CodeAddress returns the account whose code is executing (differs from
// Address under DELEGATECALL and CALLCODE).
func (f *Frame) CodeAddress() etypes.Address { return f.codeAddress }

// Caller returns msg.sender for this frame.
func (f *Frame) Caller() etypes.Address { return f.caller }

// Input returns the frame's call data.
func (f *Frame) Input() []byte { return f.input }

// Value returns msg.value for this frame.
func (f *Frame) Value() u256.Int { return f.value }

// Code returns the executing bytecode.
func (f *Frame) Code() []byte { return f.code }

// Stack exposes the operand stack for tracer inspection.
func (f *Frame) Stack() *Stack { return &f.stack }

// Memory exposes frame memory for tracer inspection.
func (f *Frame) Memory() *Memory { return &f.memory }

// Gas returns the remaining gas.
func (f *Frame) Gas() uint64 { return f.gas }

// Static reports whether the frame runs under STATICCALL restrictions.
func (f *Frame) Static() bool { return f.static }

// validJumpdest reports whether dest is a JUMPDEST not inside push data.
// The set is computed lazily on first jump.
func (f *Frame) validJumpdest(dest u256.Int) bool {
	if !dest.IsUint64() || dest.Uint64() >= uint64(len(f.code)) {
		return false
	}
	if f.jumpdests == nil {
		f.jumpdests = make(map[uint64]struct{})
		for pc := 0; pc < len(f.code); {
			op := Op(f.code[pc])
			if op == JUMPDEST {
				f.jumpdests[uint64(pc)] = struct{}{}
			}
			pc += 1 + op.PushSize()
		}
	}
	_, ok := f.jumpdests[dest.Uint64()]
	return ok
}

// CallResult carries the outcome of an outer call.
type CallResult struct {
	Output  []byte
	GasLeft uint64
	Err     error
}

// Call executes the code at 'to' with the given input, transferring value.
func (e *EVM) Call(caller, to etypes.Address, input []byte, gas uint64, value u256.Int) CallResult {
	return e.call(CallKindCall, caller, caller, to, to, input, gas, value, false)
}

// StaticCall executes the code at 'to' with state-modification disabled.
func (e *EVM) StaticCall(caller, to etypes.Address, input []byte, gas uint64) CallResult {
	return e.call(CallKindStaticCall, caller, caller, to, to, input, gas, u256.Zero(), true)
}

// DelegateCall executes the code at codeAddr in the storage context of
// 'self', preserving the original caller and value — the proxy-pattern
// primitive. The initiator reported to tracers is 'self'.
func (e *EVM) DelegateCall(caller, self, codeAddr etypes.Address, input []byte, gas uint64, value u256.Int) CallResult {
	return e.call(CallKindDelegateCall, self, caller, self, codeAddr, input, gas, value, false)
}

// call is the shared frame driver for all call kinds. initiator is the
// account that executed the call instruction — it is what tracers see as
// "from". For DELEGATECALL it differs from caller, which is the preserved
// msg.sender of the parent frame.
func (e *EVM) call(kind CallKind, initiator, caller, self, codeAddr etypes.Address, input []byte, gas uint64, value u256.Int, static bool) CallResult {
	if e.depth >= maxCallDepth {
		return CallResult{GasLeft: gas, Err: ErrCallDepth}
	}
	transfersValue := kind == CallKindCall && !value.IsZero()
	if transfersValue && !e.cfg.Lenient && e.state.GetBalance(caller).Lt(value) {
		return CallResult{GasLeft: gas, Err: ErrInsufficientFund}
	}

	if e.cfg.Tracer != nil {
		e.cfg.Tracer.CaptureEnter(kind, initiator, codeAddr, input, value)
	}

	// Precompiled contracts execute natively: no frame, no storage.
	if fn, base, ok := precompile(codeAddr); ok {
		res := runPrecompile(fn, base, input, gas)
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.CaptureExit(res.Output, res.Err)
		}
		return res
	}

	snapshot := e.state.Snapshot()
	if transfersValue && !e.cfg.Lenient {
		e.state.Transfer(caller, self, value)
	}

	frame := acquireFrame()
	frame.evm = e
	frame.address = self
	frame.codeAddress = codeAddr
	frame.caller = caller
	frame.input = input
	frame.value = value
	frame.code = e.state.GetCode(codeAddr)
	frame.static = static
	frame.gas = gas

	e.depth++
	output, err := e.runFrame(frame, codeAddr)
	e.depth--

	if err != nil {
		e.state.RevertToSnapshot(snapshot)
		if err != ErrRevert {
			// Non-revert failures consume all gas in the frame.
			frame.gas = 0
		}
	}
	gasLeft := frame.gas
	releaseFrame(frame)
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.CaptureExit(output, err)
	}
	return CallResult{Output: output, GasLeft: gasLeft, Err: err}
}

// runFrame dispatches a frame to the configured interpreter. The fast loop
// executes a pre-decoded program, fetched from the per-code-hash cache for
// deployed code (codeAddr set) and decoded fresh for init code; traced runs
// use unfused programs so tracers observe every source instruction at its
// original pc.
func (e *EVM) runFrame(f *Frame, codeAddr etypes.Address) ([]byte, error) {
	if e.cfg.Interp == InterpReference {
		return e.runReference(f)
	}
	if len(f.code) > 0 {
		var hash etypes.Hash
		if codeAddr != (etypes.Address{}) {
			hash = e.state.GetCodeHash(codeAddr)
		}
		f.prog = programFor(hash, f.code, e.cfg.Tracer == nil)
	}
	return e.runFast(f)
}

// CreateResult carries the outcome of contract creation.
type CreateResult struct {
	Address etypes.Address
	Output  []byte
	GasLeft uint64
	Err     error
}

// Create deploys a contract: runs initCode and installs its return value as
// the account code at the CREATE-derived address.
func (e *EVM) Create(caller etypes.Address, initCode []byte, gas uint64, value u256.Int) CreateResult {
	nonce := e.state.GetNonce(caller)
	addr := etypes.CreateAddress(caller, nonce)
	return e.create(CallKindCreate, caller, addr, initCode, gas, value)
}

// Create2 deploys a contract at the CREATE2-derived address.
func (e *EVM) Create2(caller etypes.Address, initCode []byte, salt etypes.Hash, gas uint64, value u256.Int) CreateResult {
	addr := etypes.CreateAddress2(caller, salt, initCode)
	return e.create(CallKindCreate2, caller, addr, initCode, gas, value)
}

func (e *EVM) create(kind CallKind, caller, addr etypes.Address, initCode []byte, gas uint64, value u256.Int) CreateResult {
	if e.depth >= maxCallDepth {
		return CreateResult{GasLeft: gas, Err: ErrCallDepth}
	}
	if !value.IsZero() && !e.cfg.Lenient && e.state.GetBalance(caller).Lt(value) {
		return CreateResult{GasLeft: gas, Err: ErrInsufficientFund}
	}
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.CaptureEnter(kind, caller, addr, initCode, value)
	}
	snapshot := e.state.Snapshot()
	e.state.SetNonce(caller, e.state.GetNonce(caller)+1)
	e.state.CreateAccount(addr)
	e.state.SetNonce(addr, 1)
	if !value.IsZero() && !e.cfg.Lenient {
		e.state.Transfer(caller, addr, value)
	}

	frame := acquireFrame()
	frame.evm = e
	frame.address = addr
	frame.codeAddress = addr
	frame.caller = caller
	frame.value = value
	frame.code = initCode
	frame.gas = gas

	// Init code has no deployed account to hash, so runFrame's zero
	// codeAddr decodes it fresh instead of touching the program cache.
	e.depth++
	output, err := e.runFrame(frame, etypes.Address{})
	e.depth--

	if err == nil && len(output) > maxCodeSize {
		err = ErrCodeSizeLimit
	}
	if err == nil {
		e.state.SetCode(addr, output)
	} else {
		e.state.RevertToSnapshot(snapshot)
		if err != ErrRevert {
			frame.gas = 0
		}
	}
	gasLeft := frame.gas
	releaseFrame(frame)
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.CaptureExit(output, err)
	}
	return CreateResult{Address: addr, Output: output, GasLeft: gasLeft, Err: err}
}
