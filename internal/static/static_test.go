package static

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/abi"
	"repro/internal/asm"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/solc"
	"repro/internal/u256"
)

var (
	addrA = etypes.MustAddress("0x00000000000000000000000000000000000000aa")
	addrB = etypes.MustAddress("0x00000000000000000000000000000000000000bb")

	slot1967 = etypes.Keccak([]byte("eip1967.proxy.implementation"))
)

func fn(proto string) abi.Function {
	f, err := abi.ParsePrototype(proto)
	if err != nil {
		panic(err)
	}
	return f
}

// storageProxy builds a solc-compiled upgradeable proxy forwarding to the
// address stored at slot.
func storageProxy(t *testing.T, slot etypes.Hash, funcs ...solc.Func) []byte {
	t.Helper()
	code, err := solc.Compile(&solc.Contract{
		Name:     "Proxy",
		Funcs:    funcs,
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot},
	})
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestAnalyzeMinimalProxy(t *testing.T) {
	code := disasm.MinimalProxyRuntime(addrA)
	sum := Analyze(code)

	if !sum.HasDelegateCall {
		t.Fatal("HasDelegateCall = false")
	}
	if sum.Truncated || sum.MaskedImmFlow {
		t.Fatalf("Truncated=%v MaskedImmFlow=%v, want false/false", sum.Truncated, sum.MaskedImmFlow)
	}
	if len(sum.Delegates) != 1 {
		t.Fatalf("Delegates = %+v, want exactly one", sum.Delegates)
	}
	dc := sum.Delegates[0]
	if dc.Provenance != ProvHardcoded || dc.Target != addrA {
		t.Fatalf("delegate = %+v, want hardcoded %s", dc, addrA)
	}
	if !dc.ForwardsCalldata || dc.TargetTainted {
		t.Fatalf("delegate = %+v, want forwarding and untainted", dc)
	}
	if len(sum.Selectors) != 0 || len(sum.SlotReads) != 0 {
		t.Fatalf("unexpected selectors %v / slot reads %v", sum.Selectors, sum.SlotReads)
	}
}

func TestFingerprintMasksEmbeddedAddresses(t *testing.T) {
	a := disasm.MinimalProxyRuntime(addrA)
	b := disasm.MinimalProxyRuntime(addrB)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("EIP-1167 stamps with different targets should share a fingerprint")
	}
	if etypes.Keccak(a) == etypes.Keccak(b) {
		t.Fatal("test is vacuous: code hashes collide")
	}
	// Small immediates (jump offsets, selectors) must stay distinguishing.
	c := append([]byte(nil), a...)
	for i, op := range c {
		if evm.Op(op) == evm.PUSH1 {
			c[i+1] ^= 0x01
			break
		}
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("changing a PUSH1 immediate should change the fingerprint")
	}
}

func TestAnalyzeStorageProxy(t *testing.T) {
	f1 := solc.Func{ABI: fn("owner()"), Body: []solc.Stmt{solc.ReturnCaller{}}}
	f2 := solc.Func{ABI: fn("upgradeTo(address)"), Body: []solc.Stmt{solc.Stop{}}}
	code := storageProxy(t, slot1967, f1, f2)
	sum := Analyze(code)

	if sum.Truncated || sum.MaskedImmFlow {
		t.Fatalf("Truncated=%v MaskedImmFlow=%v, want false/false", sum.Truncated, sum.MaskedImmFlow)
	}
	want := map[[4]byte]bool{f1.ABI.Selector(): true, f2.ABI.Selector(): true}
	if len(sum.Selectors) != len(want) {
		t.Fatalf("Selectors = %x, want %d entries", sum.Selectors, len(want))
	}
	for _, sel := range sum.Selectors {
		if !want[sel] {
			t.Fatalf("unexpected selector %x", sel)
		}
	}
	if !sum.ReadsSlot(slot1967) {
		t.Fatalf("SlotReads = %v, missing impl slot %s", sum.SlotReads, slot1967)
	}
	if len(sum.Delegates) != 1 {
		t.Fatalf("Delegates = %+v, want exactly one", sum.Delegates)
	}
	dc := sum.Delegates[0]
	if dc.Provenance != ProvSlotConst || dc.Slot != slot1967 {
		t.Fatalf("delegate = %+v, want slot-const %s", dc, slot1967)
	}
	if !dc.ForwardsCalldata || dc.TargetTainted {
		t.Fatalf("delegate = %+v, want forwarding and untainted", dc)
	}
}

func TestStorageProxyTwinsShareFingerprint(t *testing.T) {
	// Two 32-byte implementation slots: the wide PUSH32 immediates are
	// masked, so the twins normalize identically; the promotion protocol
	// must re-anchor the slot per contract.
	slotA := etypes.Keccak([]byte("slot.a"))
	slotB := etypes.Keccak([]byte("slot.b"))
	a := storageProxy(t, slotA)
	b := storageProxy(t, slotB)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("storage twins with different 32-byte slots should share a fingerprint")
	}
	if Analyze(a).Delegates[0].Slot != slotA || Analyze(b).Delegates[0].Slot != slotB {
		t.Fatal("each twin must report its own slot")
	}
	// Ad-hoc one-byte slots are emitted as PUSH1: structurally distinguishing.
	var s0, s1 etypes.Hash
	s1[31] = 1
	if Fingerprint(storageProxy(t, s0)) == Fingerprint(storageProxy(t, s1)) {
		t.Fatal("small-immediate slots must stay distinguishing")
	}
}

func TestAnalyzeHardcodedForwarder(t *testing.T) {
	code, err := solc.Compile(&solc.Contract{
		Name:     "Forwarder",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateHardcoded, Target: addrB},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := Analyze(code)
	if len(sum.Delegates) != 1 {
		t.Fatalf("Delegates = %+v, want exactly one", sum.Delegates)
	}
	dc := sum.Delegates[0]
	if dc.Provenance != ProvHardcoded || dc.Target != addrB || !dc.ForwardsCalldata {
		t.Fatalf("delegate = %+v, want forwarding hardcoded %s", dc, addrB)
	}
}

func TestAnalyzeDiamond(t *testing.T) {
	base := etypes.Keccak([]byte("diamond.storage"))
	code, err := solc.Compile(&solc.Contract{
		Name:     "Diamond",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateDiamond, Slot: base},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := Analyze(code)
	if sum.KeccakReads == 0 {
		t.Fatal("diamond facet lookup should count as a keccak-derived read")
	}
	if len(sum.Delegates) != 1 {
		t.Fatalf("Delegates = %+v, want exactly one", sum.Delegates)
	}
	dc := sum.Delegates[0]
	if dc.Provenance != ProvSlotKeccak || !dc.ForwardsCalldata {
		t.Fatalf("delegate = %+v, want forwarding slot-keccak", dc)
	}
}

func TestAnalyzeLibraryCaller(t *testing.T) {
	code, err := solc.Compile(&solc.Contract{
		Name: "UsesLib",
		Fallback: solc.Fallback{
			Kind: solc.FallbackLibraryCall, Target: addrB, Proto: "helper()",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := Analyze(code)
	if len(sum.Delegates) != 1 {
		t.Fatalf("Delegates = %+v, want exactly one", sum.Delegates)
	}
	dc := sum.Delegates[0]
	if dc.ForwardsCalldata {
		t.Fatalf("delegate = %+v: constructed call data must not count as forwarding", dc)
	}
	if dc.Provenance != ProvHardcoded || dc.Target != addrB {
		t.Fatalf("delegate = %+v, want hardcoded %s", dc, addrB)
	}
}

func TestAnalyzeDispatcherExcludesDecoys(t *testing.T) {
	f := solc.Func{ABI: fn("ping()"), Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}}}
	decoy := [4]byte{0xde, 0xad, 0xbe, 0xef}
	code, err := solc.Compile(&solc.Contract{
		Name:       "Plain",
		Funcs:      []solc.Func{f},
		Fallback:   solc.Fallback{Kind: solc.FallbackRevert},
		DecoyPush4: [][4]byte{decoy},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := Analyze(code)
	if sum.HasDelegateCall || len(sum.Delegates) != 0 {
		t.Fatalf("non-proxy reported delegates: %+v", sum.Delegates)
	}
	if !sum.HasSelector(f.ABI.Selector()) {
		t.Fatalf("Selectors = %x, missing %x", sum.Selectors, f.ABI.Selector())
	}
	if sum.HasSelector(decoy) {
		t.Fatalf("Selectors = %x, decoy %x must be excluded", sum.Selectors, decoy)
	}
}

func TestCalldataTargetProvenance(t *testing.T) {
	// delegatecall(gas, calldataload(4), 0, calldatasize, 0, 0)
	code := (&asm.Program{}).
		PushUint(0).PushUint(0).Op(evm.CALLDATASIZE).PushUint(0).
		PushUint(4).Op(evm.CALLDATALOAD).
		Op(evm.GAS).Op(evm.DELEGATECALL).
		Op(evm.STOP).MustAssemble()
	sum := Analyze(code)
	if len(sum.Delegates) != 1 || sum.Delegates[0].Provenance != ProvCalldata {
		t.Fatalf("Delegates = %+v, want one calldata-provenance site", sum.Delegates)
	}
}

func TestMaskedImmFlowOnWideJumpTarget(t *testing.T) {
	// PUSH32 <jumpdest> JUMP: a masked immediate decides control flow, so
	// two codes sharing this fingerprint can diverge — the summary must
	// refuse promotion via MaskedImmFlow.
	var imm [32]byte
	imm[31] = 34 // the JUMPDEST below: 1 + 32 (PUSH32) + 1 (JUMP)
	code := (&asm.Program{}).
		PushBytes(imm[:]).Op(evm.JUMP).
		Op(evm.JUMPDEST).Op(evm.STOP).MustAssemble()
	sum := Analyze(code)
	if !sum.MaskedImmFlow {
		t.Fatal("PUSH32 jump target must set MaskedImmFlow")
	}
	if sum.ReachableBlocks != 2 {
		t.Fatalf("ReachableBlocks = %d, want 2 (the jump still resolves)", sum.ReachableBlocks)
	}

	// The same shape with a narrow PUSH1 target is clean.
	clean := (&asm.Program{}).
		PushUint(3).Op(evm.JUMP).
		Op(evm.JUMPDEST).Op(evm.STOP).MustAssemble()
	if got := Analyze(clean); got.MaskedImmFlow {
		t.Fatal("PUSH1 jump target must not set MaskedImmFlow")
	}
}

func TestMaskedImmFlowOnComparedImmediate(t *testing.T) {
	// Branching on calldata == <32-byte constant>: the comparison outcome
	// depends on a masked immediate.
	salt := etypes.Keccak([]byte("salt"))
	code := (&asm.Program{}).
		PushUint(0).Op(evm.CALLDATALOAD).
		Push(salt.Word()).Op(evm.EQ).
		JumpI("yes").
		Op(evm.STOP).
		Label("yes").Op(evm.STOP).MustAssemble()
	sum := Analyze(code)
	if !sum.MaskedImmFlow {
		t.Fatal("branch on masked-constant comparison must set MaskedImmFlow")
	}
}

func TestCFGResolvesDispatcherEdges(t *testing.T) {
	f := solc.Func{ABI: fn("ping()"), Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}}}
	code := storageProxy(t, slot1967, f)
	sum, cfg := AnalyzeWithCFG(code)
	if len(cfg.Blocks) != sum.Blocks {
		t.Fatalf("CFG blocks %d != summary blocks %d", len(cfg.Blocks), sum.Blocks)
	}
	if sum.ReachableBlocks < 3 {
		t.Fatalf("ReachableBlocks = %d, want the dispatcher, fallback and body reached", sum.ReachableBlocks)
	}
	edges := 0
	for i, succs := range cfg.Succs {
		for _, j := range succs {
			if j < 0 || j >= len(cfg.Blocks) {
				t.Fatalf("edge %d->%d out of range", i, j)
			}
			edges++
		}
	}
	if edges == 0 {
		t.Fatal("CFG has no edges")
	}
}

func TestAnalyzeLoopStabilizes(t *testing.T) {
	// JUMPDEST PUSH1 1 PUSH2 0 JUMP: the stack grows every iteration, but
	// the top-aligned join folds the growth away, so the dataflow
	// stabilizes without tripping any budget.
	code := (&asm.Program{}).
		Label("l").PushUint(1).Jump("l").MustAssemble()
	sum := Analyze(code)
	if sum.Truncated {
		t.Fatal("converging loop must not mark the summary Truncated")
	}
	if sum.ReachableBlocks != 1 {
		t.Fatalf("ReachableBlocks = %d, want 1", sum.ReachableBlocks)
	}
}

func TestAnalyzeBudgetExhaustionMarksTruncated(t *testing.T) {
	// White-box: a summary produced under an exhausted step budget must
	// be flagged Truncated so the promotion protocol refuses it.
	code := storageProxy(t, slot1967,
		solc.Func{ABI: fn("owner()"), Body: []solc.Stmt{solc.ReturnCaller{}}})
	a := newAnalysis(code)
	a.steps = 5
	a.run()
	if !a.summary().Truncated {
		t.Fatal("step-budget exhaustion must mark the summary Truncated")
	}
}

func TestAnalyzeTotalOnGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x60},                          // truncated PUSH1
		{0x7f, 0x01, 0x02},              // truncated PUSH32
		{0x56},                          // JUMP on empty stack
		{0xfe, 0x5b, 0x00},              // INVALID then unreachable block
		bytes.Repeat([]byte{0x5b}, 300), // jumpdest spam
		bytes.Repeat([]byte{0x80}, 300), // DUP1 on empty stack, repeatedly
	}
	for _, code := range cases {
		sum, cfg := AnalyzeWithCFG(code)
		if sum == nil || cfg == nil {
			t.Fatalf("nil result for %x", code)
		}
		if sum.ReachableBlocks > sum.Blocks {
			t.Fatalf("reachable %d > blocks %d for %x", sum.ReachableBlocks, sum.Blocks, code)
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	code := storageProxy(t, slot1967,
		solc.Func{ABI: fn("owner()"), Body: []solc.Stmt{solc.ReturnCaller{}}})
	a, b := Analyze(code), Analyze(code)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Analyze is not deterministic:\n%+v\n%+v", a, b)
	}
}
