package static

import (
	"reflect"
	"testing"

	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/gen"
)

// FuzzStaticAnalyze asserts the static layer is total and deterministic on
// arbitrary bytecode: the CFG builder and abstract interpreter must
// terminate without panicking on truncated PUSH data, undefined opcodes,
// unreachable or missing JUMPDESTs, and adversarial loop shapes — and two
// analyses of the same bytes must agree exactly, since verdict promotion
// keys on the summary.
func FuzzStaticAnalyze(f *testing.F) {
	// Seed with the generator's full taxonomy (proxies, negatives,
	// collision pairs) so mutation starts from realistic compiler output.
	corpus := gen.Generate(gen.Config{Seed: 7, Contracts: 16})
	seen := make(map[etypes.Hash]bool)
	for _, l := range corpus.Labels {
		h := etypes.Keccak(l.Code)
		if !seen[h] {
			seen[h] = true
			f.Add(l.Code)
		}
	}
	f.Add(disasm.MinimalProxyRuntime(etypes.MustAddress("0x00000000000000000000000000000000000000aa")))
	f.Add([]byte{})
	f.Add([]byte{0x7f, 0x01})             // truncated PUSH32
	f.Add([]byte{0x5b, 0x60, 0x00, 0x56}) // tight jump loop

	f.Fuzz(func(t *testing.T, code []byte) {
		sum, cfg := AnalyzeWithCFG(code)
		if sum == nil || cfg == nil {
			t.Fatal("nil analysis result")
		}
		if sum.Blocks != len(cfg.Blocks) {
			t.Fatalf("summary blocks %d != cfg blocks %d", sum.Blocks, len(cfg.Blocks))
		}
		if sum.ReachableBlocks > sum.Blocks {
			t.Fatalf("reachable %d > blocks %d", sum.ReachableBlocks, sum.Blocks)
		}
		for i, succs := range cfg.Succs {
			for _, j := range succs {
				if j < 0 || j >= len(cfg.Blocks) {
					t.Fatalf("edge %d->%d out of range", i, j)
				}
			}
		}
		for i := 1; i < len(sum.Delegates); i++ {
			if sum.Delegates[i-1].PC >= sum.Delegates[i].PC {
				t.Fatalf("delegates not strictly PC-ordered: %+v", sum.Delegates)
			}
		}
		if sum.Fingerprint != Fingerprint(code) {
			t.Fatal("summary fingerprint disagrees with Fingerprint()")
		}
		again := Analyze(code)
		if !reflect.DeepEqual(sum, again) {
			t.Fatalf("nondeterministic analysis:\n%+v\n%+v", sum, again)
		}
	})
}
