package static

import (
	"sort"

	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// Analysis budgets. The dataflow must fully stabilize within these bounds
// for a summary to be promotion-grade; exceeding any of them sets
// Summary.Truncated. Real proxy shapes (stamps, dispatchers, storage
// forwarders, diamonds) stabilize in one or two visits per block.
const (
	maxBlockVisits = 8       // re-analyses of one block before giving up
	maxSteps       = 1 << 19 // total abstract instructions interpreted
	maxStackDepth  = 128     // modeled stack slots; deeper values fold into deepTaint
)

// valueKind is the abstract domain's value classification.
type valueKind uint8

const (
	kindUnknown  valueKind = iota
	kindConst              // a compile-time constant (val holds it)
	kindCalldata           // derived from CALLDATALOAD/CALLDATASIZE
	kindSload              // loaded from storage (slot/slotKnown/slotKeccak)
	kindKeccak             // a KECCAK256 result
	kindCmp                // a comparison result (EQ/LT/GT/...)
)

// absValue is one abstract stack slot. Every field is comparable, so ==
// is exact structural equality and joins can test it directly.
type absValue struct {
	kind valueKind
	val  u256.Int // kindConst only
	// width is the PUSH immediate width that produced a constant
	// (0 for computed constants).
	width uint8
	// masked marks a constant produced by a PUSH of maskWidth+ bytes —
	// an immediate the structural fingerprint erases.
	masked bool
	// tainted marks a value derived from a masked immediate through any
	// chain of operations (arithmetic, memory, return data). Tainted
	// values reaching control flow set Summary.MaskedImmFlow.
	tainted bool
	// slot metadata for kindSload values.
	slot       etypes.Hash
	slotKnown  bool
	slotKeccak bool
	// sel is the 4-byte selector when a kindCmp value came from an
	// EQ(PUSH4-const, calldata) dispatcher comparison.
	sel   [4]byte
	selOK bool
}

func unknownVal(tainted bool) absValue {
	return absValue{kind: kindUnknown, tainted: tainted}
}

func constVal(v u256.Int, width int) absValue {
	av := absValue{kind: kindConst, val: v}
	if width > 0 && width <= 32 {
		av.width = uint8(width)
	}
	if width >= maskWidth {
		av.masked = true
		av.tainted = true
	}
	return av
}

// joinValue merges two abstract values flowing into the same stack slot.
func joinValue(a, b absValue) absValue {
	if a == b {
		return a
	}
	ta, tb := a, b
	ta.tainted, tb.tainted = false, false
	if ta == tb { // identical up to taint
		a.tainted = a.tainted || b.tainted
		return a
	}
	return unknownVal(a.tainted || b.tainted)
}

// absState is the abstract machine state at a program point: the modeled
// operand stack plus three coarse taint bits for the unmodeled parts of
// the state (memory, return data, and stack slots dropped by depth caps
// or join truncation).
type absState struct {
	stack      []absValue // bottom .. top
	memTainted bool
	retTainted bool
	deepTaint  bool
}

func (st *absState) clone() absState {
	cp := *st
	cp.stack = append([]absValue(nil), st.stack...)
	return cp
}

func (st *absState) push(v absValue) {
	if len(st.stack) >= maxStackDepth {
		if st.stack[0].tainted {
			st.deepTaint = true
		}
		copy(st.stack, st.stack[1:])
		st.stack = st.stack[:len(st.stack)-1]
	}
	st.stack = append(st.stack, v)
}

func (st *absState) pop() absValue {
	if len(st.stack) == 0 {
		return unknownVal(st.deepTaint)
	}
	v := st.stack[len(st.stack)-1]
	st.stack = st.stack[:len(st.stack)-1]
	return v
}

// peek returns the i-th slot from the top (0 = top) without popping.
func (st *absState) peek(i int) absValue {
	if i >= len(st.stack) {
		return unknownVal(st.deepTaint)
	}
	return st.stack[len(st.stack)-1-i]
}

// joinState merges incoming state b into a, aligning stacks at the top and
// folding dropped slots into deepTaint. It reports whether a changed.
func joinState(a, b *absState) bool {
	changed := false
	n := len(a.stack)
	if len(b.stack) < n {
		n = len(b.stack)
	}
	for _, dropped := range a.stack[:len(a.stack)-n] {
		if dropped.tainted && !a.deepTaint {
			a.deepTaint = true
			changed = true
		}
	}
	for _, dropped := range b.stack[:len(b.stack)-n] {
		if dropped.tainted && !a.deepTaint {
			a.deepTaint = true
			changed = true
		}
	}
	if len(a.stack) != n {
		a.stack = append(a.stack[:0], a.stack[len(a.stack)-n:]...)
		changed = true
	}
	off := len(b.stack) - n
	for i := 0; i < n; i++ {
		j := joinValue(a.stack[i], b.stack[off+i])
		if j != a.stack[i] {
			a.stack[i] = j
			changed = true
		}
	}
	if b.memTainted && !a.memTainted {
		a.memTainted = true
		changed = true
	}
	if b.retTainted && !a.retTainted {
		a.retTainted = true
		changed = true
	}
	if b.deepTaint && !a.deepTaint {
		a.deepTaint = true
		changed = true
	}
	return changed
}

// succ is a control-flow edge out of a block: the successor's start PC and
// the state flowing along the edge.
type succ struct {
	pc    uint64
	state absState
}

// analysis carries all working state for one Analyze run.
type analysis struct {
	code    []byte
	blocks  []disasm.BasicBlock
	byStart map[uint64]int

	entry     []absState
	hasEntry  []bool
	visits    []int
	reachable []bool
	edges     []map[int]struct{}
	steps     int

	selectors     map[[4]byte]struct{}
	slotReads     map[etypes.Hash]struct{}
	slotWrites    map[etypes.Hash]struct{}
	keccakReadPC  map[uint64]struct{}
	keccakWritePC map[uint64]struct{}
	delegates     map[uint64]DelegateCall

	maskedFlow bool
	truncated  bool
}

func newAnalysis(code []byte) *analysis {
	blocks := disasm.BasicBlocks(code)
	a := &analysis{
		code:          code,
		blocks:        blocks,
		byStart:       make(map[uint64]int, len(blocks)),
		entry:         make([]absState, len(blocks)),
		hasEntry:      make([]bool, len(blocks)),
		visits:        make([]int, len(blocks)),
		reachable:     make([]bool, len(blocks)),
		edges:         make([]map[int]struct{}, len(blocks)),
		steps:         maxSteps,
		selectors:     make(map[[4]byte]struct{}),
		slotReads:     make(map[etypes.Hash]struct{}),
		slotWrites:    make(map[etypes.Hash]struct{}),
		keccakReadPC:  make(map[uint64]struct{}),
		keccakWritePC: make(map[uint64]struct{}),
		delegates:     make(map[uint64]DelegateCall),
	}
	for i, b := range blocks {
		a.byStart[b.Start] = i
	}
	return a
}

// jumpTarget resolves a constant jump destination to a block index; a valid
// target must start a block whose first instruction is JUMPDEST.
func (a *analysis) jumpTarget(v absValue) (int, bool) {
	if v.kind != kindConst || !v.val.IsUint64() {
		return 0, false
	}
	idx, ok := a.byStart[v.val.Uint64()]
	if !ok {
		return 0, false
	}
	b := a.blocks[idx]
	if len(b.Instrs) == 0 || b.Instrs[0].Op != evm.JUMPDEST {
		return 0, false
	}
	return idx, true
}

func (a *analysis) run() {
	if len(a.blocks) == 0 {
		return
	}
	work := []int{0}
	a.hasEntry[0] = true
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		if a.visits[idx] >= maxBlockVisits {
			// The entry state changed but the revisit budget is gone:
			// the dataflow did not stabilize, so the summary must not
			// be trusted for verdict promotion.
			a.truncated = true
			continue
		}
		a.visits[idx]++
		a.reachable[idx] = true
		st := a.entry[idx].clone()
		for _, s := range a.runBlock(idx, &st) {
			j, ok := a.byStart[s.pc]
			if !ok {
				continue // fell off the end of the code
			}
			if a.edges[idx] == nil {
				a.edges[idx] = make(map[int]struct{})
			}
			a.edges[idx][j] = struct{}{}
			if !a.hasEntry[j] {
				a.entry[j] = s.state.clone()
				a.hasEntry[j] = true
				work = append(work, j)
			} else if joinState(&a.entry[j], &s.state) {
				work = append(work, j)
			}
		}
	}
}

// runBlock interprets one basic block from state st and returns the
// outgoing edges. st is mutated in place.
func (a *analysis) runBlock(idx int, st *absState) []succ {
	b := a.blocks[idx]
	for _, ins := range b.Instrs {
		if a.steps <= 0 {
			a.truncated = true
			return nil
		}
		a.steps--
		op := ins.Op
		switch {
		case op.IsPush():
			st.push(constVal(u256.FromBytes(ins.Imm), len(ins.Imm)))
			continue
		case op == evm.PUSH0:
			st.push(constVal(u256.Zero(), 0))
			continue
		case op.IsDup():
			st.push(st.peek(int(op - evm.DUP1)))
			continue
		case op.IsSwap():
			n := int(op-evm.SWAP1) + 1
			if n < len(st.stack) {
				top := len(st.stack) - 1
				st.stack[top], st.stack[top-n] = st.stack[top-n], st.stack[top]
			} else {
				// Swapping with a slot below the modeled stack: both
				// positions become unknown.
				for i := range st.stack {
					if st.stack[i].tainted {
						st.deepTaint = true
					}
					st.stack[i] = unknownVal(st.deepTaint)
				}
			}
			continue
		}

		switch op {
		case evm.JUMPDEST, evm.POP:
			if op == evm.POP {
				st.pop()
			}
		case evm.CALLDATALOAD:
			off := st.pop()
			st.push(absValue{kind: kindCalldata, tainted: off.tainted})
		case evm.CALLDATASIZE:
			st.push(absValue{kind: kindCalldata})
		case evm.ADD, evm.SUB, evm.MUL, evm.OR, evm.XOR:
			a.binop(st, op)
		case evm.AND:
			a.andOp(st)
		case evm.DIV, evm.SHR, evm.SHL:
			a.shiftOp(st, op)
		case evm.NOT, evm.ISZERO:
			v := st.pop()
			out := unknownVal(v.tainted)
			if v.kind == kindConst {
				out = constVal(applyUnary(op, v.val), 0)
				out.tainted = v.tainted
			} else if op == evm.ISZERO && v.kind == kindCmp {
				// Negated dispatcher comparisons stay comparisons so a
				// later JUMPI still sees masked-comparison taint.
				out = absValue{kind: kindCmp, tainted: v.tainted}
			}
			st.push(out)
		case evm.EQ, evm.LT, evm.GT, evm.SLT, evm.SGT:
			a.cmpOp(st, op)
		case evm.KECCAK256:
			off, length := st.pop(), st.pop()
			st.push(absValue{
				kind:    kindKeccak,
				tainted: st.memTainted || off.tainted || length.tainted,
			})
		case evm.MLOAD:
			off := st.pop()
			st.push(unknownVal(st.memTainted || off.tainted))
		case evm.MSTORE, evm.MSTORE8:
			off, val := st.pop(), st.pop()
			if val.tainted || off.tainted {
				st.memTainted = true
			}
		case evm.SLOAD:
			a.sloadOp(st, ins.PC)
		case evm.SSTORE:
			slot, val := st.pop(), st.pop()
			a.recordSlot(slot, ins.PC, a.slotWrites, a.keccakWritePC)
			_ = val
		case evm.CALLDATACOPY, evm.CODECOPY:
			o1, o2, o3 := st.pop(), st.pop(), st.pop()
			if op == evm.CODECOPY || o1.tainted || o2.tainted || o3.tainted {
				// Own code contains masked immediates, so copying it
				// into memory launders them past the fingerprint.
				st.memTainted = true
			}
		case evm.RETURNDATACOPY:
			o1, o2, o3 := st.pop(), st.pop(), st.pop()
			if st.retTainted || o1.tainted || o2.tainted || o3.tainted {
				st.memTainted = true
			}
		case evm.RETURNDATASIZE:
			st.push(unknownVal(st.retTainted))
		case evm.EXTCODECOPY:
			addr := st.pop()
			st.pop()
			st.pop()
			st.pop()
			if addr.tainted {
				st.memTainted = true
			}
		case evm.DELEGATECALL:
			a.delegateOp(st, ins.PC)
		case evm.CALL, evm.CALLCODE, evm.STATICCALL:
			st.pop() // gas
			target := st.pop()
			rest := 5 // value, argsOff, argsLen, retOff, retLen
			if op == evm.STATICCALL {
				rest = 4 // no value operand
			}
			for i := 0; i < rest; i++ {
				st.pop()
			}
			// Return data (and the memory region it is written to)
			// depends on the callee and the arguments; if either is
			// derived from a masked immediate, so is everything read
			// back from this call.
			if target.tainted || st.memTainted {
				st.retTainted = true
				st.memTainted = true
			}
			st.push(unknownVal(target.tainted))
		case evm.JUMP:
			target := st.pop()
			if target.tainted {
				a.maskedFlow = true
			}
			if j, ok := a.jumpTarget(target); ok {
				return []succ{{pc: a.blocks[j].Start, state: *st}}
			}
			return nil
		case evm.JUMPI:
			target := st.pop()
			cond := st.pop()
			if target.tainted || cond.tainted {
				a.maskedFlow = true
			}
			out := []succ{{pc: b.End(), state: st.clone()}}
			if j, ok := a.jumpTarget(target); ok {
				out = append(out, succ{pc: a.blocks[j].Start, state: *st})
			}
			return out
		case evm.STOP, evm.RETURN, evm.REVERT, evm.INVALID, evm.SELFDESTRUCT:
			if op == evm.SELFDESTRUCT {
				st.pop()
			}
			return nil
		default:
			pops, pushes := evm.StackArity(op)
			taint := false
			for i := 0; i < pops; i++ {
				if st.pop().tainted {
					taint = true
				}
			}
			for i := 0; i < pushes; i++ {
				st.push(unknownVal(taint))
			}
		}
	}
	return []succ{{pc: b.End(), state: *st}}
}

// binop handles commutative-ish arithmetic: constants fold, anything else
// degrades to unknown with taint propagated.
func (a *analysis) binop(st *absState, op evm.Op) {
	x, y := st.pop(), st.pop()
	taint := x.tainted || y.tainted
	if x.kind == kindConst && y.kind == kindConst {
		out := constVal(applyBinary(op, x.val, y.val), 0)
		out.tainted = taint
		st.push(out)
		return
	}
	st.push(unknownVal(taint))
}

// addressMask is 2^160-1, the canonical PUSH20 0xff..ff address mask solc
// emits after loading an implementation address from a packed slot. ANDing
// with it preserves the other operand's identity, so it does not taint —
// a clone family differing only in this constant would differ in behaviour
// and is caught by the general masked-const taint below.
var addressMask = func() u256.Int {
	var b [20]byte
	for i := range b {
		b[i] = 0xff
	}
	return u256.FromBytes(b[:])
}()

func (a *analysis) andOp(st *absState) {
	x, y := st.pop(), st.pop()
	if x.kind == kindConst && y.kind == kindConst {
		out := constVal(x.val.And(y.val), 0)
		out.tainted = x.tainted || y.tainted
		st.push(out)
		return
	}
	// Canonical address mask: transparent to the other operand.
	if x.kind == kindConst && x.val.Eq(addressMask) {
		st.push(y)
		return
	}
	if y.kind == kindConst && y.val.Eq(addressMask) {
		st.push(x)
		return
	}
	taint := x.tainted || y.tainted
	// Selector masking (AND with a small constant) keeps calldata-ness.
	if x.kind == kindCalldata || y.kind == kindCalldata {
		st.push(absValue{kind: kindCalldata, tainted: taint})
		return
	}
	st.push(unknownVal(taint))
}

// shiftOp handles SHR/SHL/DIV: constant folding plus the dispatcher idiom
// `CALLDATALOAD ... SHR` (and the legacy `DIV 2^224` form) which keeps the
// calldata classification so selector comparisons are recognized.
func (a *analysis) shiftOp(st *absState, op evm.Op) {
	x, y := st.pop(), st.pop()
	taint := x.tainted || y.tainted
	if x.kind == kindConst && y.kind == kindConst {
		out := constVal(applyBinary(op, x.val, y.val), 0)
		out.tainted = taint
		st.push(out)
		return
	}
	// SHR/SHL pop (shift, value); DIV pops (value, divisor).
	var value absValue
	if op == evm.DIV {
		value = x
	} else {
		value = y
	}
	if value.kind == kindCalldata {
		st.push(absValue{kind: kindCalldata, tainted: taint})
		return
	}
	st.push(unknownVal(taint))
}

func (a *analysis) cmpOp(st *absState, op evm.Op) {
	x, y := st.pop(), st.pop()
	taint := x.tainted || y.tainted
	if x.kind == kindConst && y.kind == kindConst {
		out := constVal(applyBinary(op, x.val, y.val), 0)
		out.tainted = taint
		st.push(out)
		return
	}
	out := absValue{kind: kindCmp, tainted: taint}
	if op == evm.EQ {
		// The dispatcher idiom: a 4-byte immediate compared against a
		// calldata-derived value is a function-selector table entry.
		if sel, ok := selectorOperand(x, y); ok {
			out.sel = sel
			out.selOK = true
			a.selectors[sel] = struct{}{}
		}
	}
	st.push(out)
}

func selectorOperand(x, y absValue) ([4]byte, bool) {
	c, d := x, y
	if d.kind == kindConst {
		c, d = d, c
	}
	if c.kind != kindConst || c.width != 4 || d.kind != kindCalldata {
		return [4]byte{}, false
	}
	b := c.val.Bytes32()
	return [4]byte{b[28], b[29], b[30], b[31]}, true
}

func (a *analysis) sloadOp(st *absState, pc uint64) {
	slot := st.pop()
	out := absValue{kind: kindSload}
	switch {
	case slot.kind == kindConst:
		out.slot = etypes.HashFromWord(slot.val)
		out.slotKnown = true
		a.slotReads[out.slot] = struct{}{}
		// The slot identity is pinned in the provenance, so a masked
		// slot constant does not taint the loaded value.
	case slot.kind == kindKeccak:
		out.slotKeccak = true
		out.tainted = slot.tainted
		a.keccakReadPC[pc] = struct{}{}
	default:
		out.tainted = slot.tainted
	}
	st.push(out)
}

func (a *analysis) recordSlot(slot absValue, pc uint64, consts map[etypes.Hash]struct{}, keccaks map[uint64]struct{}) {
	switch slot.kind {
	case kindConst:
		consts[etypes.HashFromWord(slot.val)] = struct{}{}
	case kindKeccak:
		keccaks[pc] = struct{}{}
	}
}

// delegateOp models DELEGATECALL: records the call site's target provenance
// and pushes the abstract success flag.
// Stack (top down): gas, target, argsOffset, argsLength, retOffset, retLength.
func (a *analysis) delegateOp(st *absState, pc uint64) {
	st.pop() // gas
	target := st.pop()
	argsOff := st.pop()
	argsLen := st.pop()
	st.pop() // retOffset
	st.pop() // retLength

	dc := DelegateCall{PC: pc}
	dc.ForwardsCalldata = argsLen.kind == kindCalldata && !argsLen.tainted &&
		!argsOff.tainted
	switch {
	case target.kind == kindConst && target.masked:
		dc.Provenance = ProvHardcoded
		dc.Target = etypes.AddressFromWord(target.val)
	case target.kind == kindSload && target.slotKnown:
		dc.Provenance = ProvSlotConst
		dc.Slot = target.slot
		dc.TargetTainted = target.tainted
	case target.kind == kindSload && target.slotKeccak:
		dc.Provenance = ProvSlotKeccak
		dc.TargetTainted = target.tainted
	case target.kind == kindCalldata:
		dc.Provenance = ProvCalldata
		dc.TargetTainted = target.tainted
	default:
		dc.Provenance = ProvUnknown
		dc.TargetTainted = target.tainted
	}
	a.mergeDelegate(dc)

	if dc.ForwardsCalldata {
		// A transparent forward: the probe's verdict is decided at the
		// moment of the call, so the success flag and return data do
		// not depend on which masked target was called.
		st.push(unknownVal(false))
	} else {
		t := target.tainted
		if t {
			st.retTainted = true
			st.memTainted = true
		}
		st.push(unknownVal(t))
	}
}

// mergeDelegate folds a call-site observation into the per-PC record; two
// visits disagreeing on provenance degrade the site to unknown+tainted.
func (a *analysis) mergeDelegate(dc DelegateCall) {
	prev, ok := a.delegates[dc.PC]
	if !ok {
		a.delegates[dc.PC] = dc
		return
	}
	if prev == dc {
		return
	}
	merged := DelegateCall{
		PC:               dc.PC,
		Provenance:       ProvUnknown,
		ForwardsCalldata: prev.ForwardsCalldata && dc.ForwardsCalldata,
		TargetTainted:    true,
	}
	if prev.Provenance == dc.Provenance && prev.Target == dc.Target && prev.Slot == dc.Slot {
		merged.Provenance = prev.Provenance
		merged.Target = prev.Target
		merged.Slot = prev.Slot
		merged.TargetTainted = prev.TargetTainted || dc.TargetTainted
	}
	a.delegates[dc.PC] = merged
}

func applyUnary(op evm.Op, x u256.Int) u256.Int {
	switch op {
	case evm.NOT:
		return x.Not()
	case evm.ISZERO:
		if x.IsZero() {
			return u256.One()
		}
		return u256.Zero()
	}
	return u256.Zero()
}

func applyBinary(op evm.Op, x, y u256.Int) u256.Int {
	switch op {
	case evm.ADD:
		return x.Add(y)
	case evm.SUB:
		return x.Sub(y)
	case evm.MUL:
		return x.Mul(y)
	case evm.AND:
		return x.And(y)
	case evm.OR:
		return x.Or(y)
	case evm.XOR:
		return x.Xor(y)
	case evm.SHR:
		if !x.IsUint64() || x.Uint64() > 255 {
			return u256.Zero()
		}
		return y.Shr(uint(x.Uint64()))
	case evm.SHL:
		if !x.IsUint64() || x.Uint64() > 255 {
			return u256.Zero()
		}
		return y.Shl(uint(x.Uint64()))
	case evm.DIV:
		if y.IsZero() {
			return u256.Zero()
		}
		return udiv(x, y)
	case evm.EQ:
		return boolWord(x.Eq(y))
	case evm.LT:
		return boolWord(x.Lt(y))
	case evm.GT:
		return boolWord(x.Gt(y))
	case evm.SLT:
		return boolWord(x.Slt(y))
	case evm.SGT:
		return boolWord(x.Sgt(y))
	}
	return u256.Zero()
}

func boolWord(b bool) u256.Int {
	if b {
		return u256.One()
	}
	return u256.Zero()
}

// udiv computes x/y for the power-of-two divisors the legacy dispatcher
// idiom uses; other divisors fold to zero-knowledge (unknown would be more
// precise but no summary fact depends on general division).
func udiv(x, y u256.Int) u256.Int {
	if bits := y.BitLen(); bits > 0 && y.Eq(u256.One().Shl(uint(bits-1))) {
		return x.Shr(uint(bits - 1))
	}
	return u256.Zero()
}

// summary assembles the final Summary from the run's accumulators.
func (a *analysis) summary() *Summary {
	s := &Summary{
		CodeHash:        etypes.Keccak(a.code),
		Fingerprint:     Fingerprint(a.code),
		SlotReads:       sortHashes(a.slotReads),
		SlotWrites:      sortHashes(a.slotWrites),
		KeccakReads:     len(a.keccakReadPC),
		KeccakWrites:    len(a.keccakWritePC),
		HasDelegateCall: disasm.ContainsOp(a.code, evm.DELEGATECALL),
		Blocks:          len(a.blocks),
		MaskedImmFlow:   a.maskedFlow,
		Truncated:       a.truncated,
	}
	for _, r := range a.reachable {
		if r {
			s.ReachableBlocks++
		}
	}
	if len(a.selectors) > 0 {
		s.Selectors = make([][4]byte, 0, len(a.selectors))
		for sel := range a.selectors {
			s.Selectors = append(s.Selectors, sel)
		}
		sort.Slice(s.Selectors, func(i, j int) bool {
			return compareBytes(s.Selectors[i][:], s.Selectors[j][:]) < 0
		})
	}
	if len(a.delegates) > 0 {
		s.Delegates = make([]DelegateCall, 0, len(a.delegates))
		for _, dc := range a.delegates {
			s.Delegates = append(s.Delegates, dc)
		}
		sort.Slice(s.Delegates, func(i, j int) bool {
			return s.Delegates[i].PC < s.Delegates[j].PC
		})
	}
	return s
}

// cfg assembles the CFG view of the run.
func (a *analysis) cfg() *CFG {
	g := &CFG{
		Blocks:    a.blocks,
		Succs:     make([][]int, len(a.blocks)),
		Reachable: a.reachable,
	}
	for i, es := range a.edges {
		if len(es) == 0 {
			continue
		}
		out := make([]int, 0, len(es))
		for j := range es {
			out = append(out, j)
		}
		sort.Ints(out)
		g.Succs[i] = out
	}
	return g
}
