// Package static implements a purely static analysis layer over EVM runtime
// bytecode: a control-flow graph recovered from `internal/disasm` basic
// blocks, a bounded abstract-stack dataflow that extracts the function
// selector table, the storage slots read and written (constant-slot and
// keccak-derived classes), and the provenance of every DELEGATECALL target
// (slot-loaded vs hardcoded vs calldata-derived), and a structural
// fingerprint that masks wide PUSH immediates (embedded addresses, salts,
// code hashes) so that near-clones — EIP-1167 stamps differing only in the
// implementation address, or compiler twins differing only in an embedded
// constant — normalize to the same key.
//
// The analysis never executes code and never reads chain state; it is the
// emulation-free fast path that the dynamic engine (internal/proxion)
// cross-checks against and uses to promote verdicts across near-clones.
// Everything here is deterministic: the same bytecode always yields the
// same Summary, byte for byte.
package static

import (
	"sort"

	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
)

// maskWidth is the minimum PUSH immediate width (in bytes) treated as an
// embedded environment-specific constant. 20 bytes is an address; salts and
// code hashes are 32. Immediates this wide are excluded from the structural
// fingerprint and taint every value derived from them, so two contracts
// may only share a fingerprint if no such constant can influence control
// flow in a way the promotion protocol cannot re-anchor per contract.
const maskWidth = 20

// Provenance classifies where a DELEGATECALL target address comes from.
type Provenance uint8

const (
	// ProvUnknown means the analysis could not pin the target's origin.
	ProvUnknown Provenance = iota
	// ProvHardcoded means the target is a constant embedded in the code
	// (the EIP-1167 shape); DelegateCall.Target holds it.
	ProvHardcoded
	// ProvSlotConst means the target is loaded from a constant storage
	// slot (EIP-1967/1822 and ad-hoc storage proxies); DelegateCall.Slot
	// holds the slot.
	ProvSlotConst
	// ProvSlotKeccak means the target is loaded from a keccak-derived
	// slot (diamond facet mappings, mapping-based registries).
	ProvSlotKeccak
	// ProvCalldata means the target is taken from call data.
	ProvCalldata
)

// String returns a stable lower-case name for the provenance class.
func (p Provenance) String() string {
	switch p {
	case ProvHardcoded:
		return "hardcoded"
	case ProvSlotConst:
		return "slot-const"
	case ProvSlotKeccak:
		return "slot-keccak"
	case ProvCalldata:
		return "calldata"
	default:
		return "unknown"
	}
}

// DelegateCall summarizes one reachable DELEGATECALL site.
type DelegateCall struct {
	// PC is the program counter of the DELEGATECALL instruction.
	PC uint64
	// Provenance classifies where the target address comes from.
	Provenance Provenance
	// Target is the embedded address when Provenance is ProvHardcoded.
	Target etypes.Address
	// Slot is the storage slot when Provenance is ProvSlotConst.
	Slot etypes.Hash
	// ForwardsCalldata reports whether the call forwards the caller's
	// full call data (the argument length is CALLDATASIZE-derived) —
	// the defining trait of a transparent forwarding proxy.
	ForwardsCalldata bool
	// TargetTainted reports that the target value depends on a masked
	// immediate in a way the provenance fields do not capture (for
	// example an address computed from a salt, or a slot load combined
	// with a non-canonical mask). Verdicts must not be shared across a
	// structural clone family when this is set.
	TargetTainted bool
}

// Summary is the full static profile of one runtime bytecode.
type Summary struct {
	// CodeHash is keccak256 of the exact bytecode.
	CodeHash etypes.Hash
	// Fingerprint is the structural fingerprint (see Fingerprint).
	Fingerprint etypes.Hash
	// Selectors is the sorted set of 4-byte function selectors the
	// dispatcher compares call data against. Unlike a raw PUSH4 scan
	// this excludes decoy constants that are never compared.
	Selectors [][4]byte
	// SlotReads / SlotWrites are the sorted sets of constant storage
	// slots the code loads from / stores to on some reachable path.
	SlotReads  []etypes.Hash
	SlotWrites []etypes.Hash
	// KeccakReads / KeccakWrites count the distinct SLOAD / SSTORE sites
	// whose slot operand is keccak-derived (mappings, diamond facets).
	KeccakReads  int
	KeccakWrites int
	// Delegates lists every reachable DELEGATECALL site, ordered by PC.
	Delegates []DelegateCall
	// HasDelegateCall reports whether DELEGATECALL appears anywhere in
	// the decoded instruction stream, reachable or not (the Section 4.1
	// pre-filter).
	HasDelegateCall bool
	// Blocks and ReachableBlocks count basic blocks total and reached
	// by the abstract interpretation from the entry point.
	Blocks          int
	ReachableBlocks int
	// MaskedImmFlow reports that a masked immediate (or a value derived
	// from one) influences control flow: it feeds a JUMP/JUMPI target or
	// a comparison whose result feeds a branch condition. Two contracts
	// sharing a fingerprint but differing in such an immediate can take
	// different paths, so verdict promotion must refuse the family.
	MaskedImmFlow bool
	// Truncated reports that an analysis budget (block revisits or total
	// abstract steps) was exhausted before the dataflow stabilized. The
	// summary is still a sound partial profile for reporting, but must
	// not be used to promote verdicts.
	Truncated bool
}

// HasSelector reports whether sel is in the summary's selector table.
func (s *Summary) HasSelector(sel [4]byte) bool {
	for _, have := range s.Selectors {
		if have == sel {
			return true
		}
	}
	return false
}

// ReadsSlot reports whether the constant slot appears in SlotReads.
func (s *Summary) ReadsSlot(slot etypes.Hash) bool {
	for _, have := range s.SlotReads {
		if have == slot {
			return true
		}
	}
	return false
}

// CFG is the recovered control-flow graph.
type CFG struct {
	// Blocks are the underlying basic blocks, in code order.
	Blocks []disasm.BasicBlock
	// Succs[i] lists the successor block indices of block i, sorted.
	// Unresolvable computed jumps contribute no edge.
	Succs [][]int
	// Reachable[i] reports whether block i was reached from the entry.
	Reachable []bool
}

// Analyze runs the full static analysis over runtime bytecode. It is total:
// any byte string (truncated PUSH data, undefined opcodes, unreachable or
// missing JUMPDESTs) yields a Summary without panicking.
func Analyze(code []byte) *Summary {
	sum, _ := AnalyzeWithCFG(code)
	return sum
}

// AnalyzeWithCFG is Analyze, additionally returning the recovered CFG.
func AnalyzeWithCFG(code []byte) (*Summary, *CFG) {
	a := newAnalysis(code)
	a.run()
	return a.summary(), a.cfg()
}

// Fingerprint computes the structural fingerprint of runtime bytecode:
// keccak256 over the opcode stream with PUSH immediates narrower than 20
// bytes included verbatim and immediates of 20+ bytes omitted (the PUSH
// opcode byte itself still encodes the width). Embedded addresses, salts
// and code hashes therefore do not distinguish two codes, while small
// immediates — jump targets, selectors, ad-hoc slot numbers, offsets — do.
func Fingerprint(code []byte) etypes.Hash {
	buf := make([]byte, 0, len(code))
	for pc := 0; pc < len(code); {
		op := evm.Op(code[pc])
		buf = append(buf, code[pc])
		pc++
		w := op.PushSize()
		if w == 0 {
			continue
		}
		end := pc + w
		if end > len(code) {
			end = len(code)
		}
		if w < maskWidth {
			buf = append(buf, code[pc:end]...)
		}
		pc = end
	}
	return etypes.Keccak(buf)
}

// sortHashes returns the set's elements in ascending byte order.
func sortHashes(set map[etypes.Hash]struct{}) []etypes.Hash {
	if len(set) == 0 {
		return nil
	}
	out := make([]etypes.Hash, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		return compareBytes(out[i][:], out[j][:]) < 0
	})
	return out
}

func compareBytes(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
