package disasm_test

import (
	"testing"

	"repro/internal/disasm"
	"repro/internal/evm"
)

// FuzzDisassemble: arbitrary byte blobs must disassemble without panicking,
// and the instruction stream must cover the input exactly.
func FuzzDisassemble(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x60})             // truncated PUSH1
	f.Add([]byte{0x7f, 0x01})       // truncated PUSH32
	f.Add([]byte{0xfe, 0xef, 0x5b}) // invalid + undefined + jumpdest
	f.Add([]byte{0x63, 0xde, 0xad, 0xbe, 0xef, 0x14, 0x61, 0x00, 0x10, 0x57})

	f.Fuzz(func(t *testing.T, code []byte) {
		instrs := disasm.Disassemble(code)
		pos := uint64(0)
		for _, ins := range instrs {
			if ins.PC != pos {
				t.Fatalf("instruction at PC %d, expected %d", ins.PC, pos)
			}
			pos += 1 + uint64(ins.Op.PushSize())
		}
		// The final instruction may carry a truncated (zero-padded)
		// immediate, so pos can exceed len(code), but never by more than
		// the max push width.
		if pos < uint64(len(code)) || pos > uint64(len(code))+32 {
			t.Fatalf("stream covers %d bytes of %d", pos, len(code))
		}

		// The derived analyses must not panic either.
		disasm.Push4Candidates(code)
		disasm.DispatcherSelectors(code)
		disasm.DispatcherTargets(code)
		disasm.BasicBlocks(code)
		disasm.MinimalProxyTarget(code)
		disasm.HardcodedAddresses(code)
		disasm.ContainsOp(code, evm.DELEGATECALL)
	})
}
