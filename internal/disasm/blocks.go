package disasm

import "repro/internal/evm"

// BasicBlock is a maximal straight-line instruction sequence: control enters
// only at the first instruction and leaves only at the last.
type BasicBlock struct {
	// Start is the PC of the first instruction.
	Start uint64
	// Instrs are the block's instructions in order.
	Instrs []Instruction
}

// End returns the PC just past the last instruction.
func (b BasicBlock) End() uint64 {
	if len(b.Instrs) == 0 {
		return b.Start
	}
	last := b.Instrs[len(b.Instrs)-1]
	return last.PC + 1 + uint64(last.Op.PushSize())
}

// terminatesBlock reports whether op ends a basic block.
func terminatesBlock(op evm.Op) bool {
	switch op {
	case evm.JUMP, evm.JUMPI, evm.STOP, evm.RETURN, evm.REVERT,
		evm.INVALID, evm.SELFDESTRUCT:
		return true
	}
	return false
}

// BasicBlocks partitions code into basic blocks. Blocks begin at code start,
// at every JUMPDEST, and after every terminator.
func BasicBlocks(code []byte) []BasicBlock {
	instrs := Disassemble(code)
	var blocks []BasicBlock
	var cur BasicBlock
	flush := func(nextStart uint64) {
		if len(cur.Instrs) > 0 {
			blocks = append(blocks, cur)
		}
		cur = BasicBlock{Start: nextStart}
	}
	for _, ins := range instrs {
		if ins.Op == evm.JUMPDEST && len(cur.Instrs) > 0 {
			flush(ins.PC)
		}
		cur.Instrs = append(cur.Instrs, ins)
		if terminatesBlock(ins.Op) {
			flush(ins.PC + 1)
		}
	}
	flush(0)
	return blocks
}
