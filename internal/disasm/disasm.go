// Package disasm disassembles EVM bytecode into instructions and basic
// blocks, and implements the static pattern analyses Proxion builds on:
// DELEGATECALL presence filtering (Section 4.1), PUSH4 selector-candidate
// scanning used to craft non-colliding call data (Section 4.2), dispatcher
// pattern matching for bytecode-level function-signature extraction
// (Section 5.1), and the EIP-1167 minimal-proxy matcher (Section 4.3).
package disasm

import (
	"fmt"
	"strings"

	"repro/internal/etypes"
	"repro/internal/evm"
)

// Instruction is one decoded opcode with its immediate (for PUSHn).
type Instruction struct {
	PC  uint64
	Op  evm.Op
	Imm []byte // nil unless Op is PUSH1..PUSH32
}

// String formats the instruction like "001F PUSH4 0xdf4a3106".
func (ins Instruction) String() string {
	if len(ins.Imm) > 0 {
		return fmt.Sprintf("%04X %s 0x%x", ins.PC, ins.Op, ins.Imm)
	}
	return fmt.Sprintf("%04X %s", ins.PC, ins.Op)
}

// Disassemble decodes code into a linear instruction stream. Truncated
// trailing PUSH immediates are zero-padded, matching interpreter behaviour.
// Undefined opcode bytes decode as single-byte instructions so that data
// trailers (e.g. Solidity metadata) do not derail the stream.
func Disassemble(code []byte) []Instruction {
	instrs := make([]Instruction, 0, len(code)/2)
	for pc := 0; pc < len(code); {
		op := evm.Op(code[pc])
		ins := Instruction{PC: uint64(pc), Op: op}
		size := op.PushSize()
		if size > 0 {
			imm := make([]byte, size)
			end := pc + 1 + size
			if end > len(code) {
				end = len(code)
			}
			copy(imm, code[pc+1:end])
			ins.Imm = imm
		}
		instrs = append(instrs, ins)
		pc += 1 + size
	}
	return instrs
}

// Format renders a human-readable listing of the disassembly.
func Format(code []byte) string {
	var b strings.Builder
	for _, ins := range Disassemble(code) {
		b.WriteString(ins.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ContainsOp reports whether the decoded instruction stream contains op.
// This respects PUSH immediates: an 0xF4 byte inside push data does not
// count as DELEGATECALL, unlike a raw byte scan.
func ContainsOp(code []byte, op evm.Op) bool {
	for pc := 0; pc < len(code); {
		cur := evm.Op(code[pc])
		if cur == op {
			return true
		}
		pc += 1 + cur.PushSize()
	}
	return false
}

// Push4Candidates returns every distinct 4-byte immediate following a PUSH4
// opcode. Not all of these are function selectors (arbitrary constants also
// use PUSH4) — Proxion uses this over-approximation to pick call data that
// avoids every candidate (Section 4.2).
func Push4Candidates(code []byte) [][4]byte {
	seen := make(map[[4]byte]struct{})
	var out [][4]byte
	for _, ins := range Disassemble(code) {
		if ins.Op == evm.PUSH4 && len(ins.Imm) == 4 {
			var sel [4]byte
			copy(sel[:], ins.Imm)
			if _, dup := seen[sel]; !dup {
				seen[sel] = struct{}{}
				out = append(out, sel)
			}
		}
	}
	return out
}

// DispatcherSelectors extracts the 4-byte function signatures that the
// contract's selector dispatcher compares against. It matches the code
// shape emitted by Solidity and Vyper:
//
//	DUP1; PUSH4 <sig>; EQ; PUSH2 <dest>; JUMPI
//
// tolerating the common variations (operands swapped, GT/LT split search
// trees omitted, an extra DUP/SWAP between EQ and the jump push). A PUSH4
// whose value never feeds an EQ+JUMPI comparison is treated as data, which
// is what lets this analysis avoid the false positives of the naive
// any-PUSH4 approach (Section 3.1).
func DispatcherSelectors(code []byte) [][4]byte {
	instrs := Disassemble(code)
	seen := make(map[[4]byte]struct{})
	var out [][4]byte
	for i, ins := range instrs {
		if ins.Op != evm.PUSH4 || len(ins.Imm) != 4 {
			continue
		}
		if !comparisonFeedsJump(instrs, i) {
			continue
		}
		var sel [4]byte
		copy(sel[:], ins.Imm)
		if _, dup := seen[sel]; !dup {
			seen[sel] = struct{}{}
			out = append(out, sel)
		}
	}
	return out
}

// DispatcherTargets maps each dispatcher-compared selector to the code
// offset its JUMPI branches to — the entry point of the function's body.
// This is how per-function analyses (e.g. attributing storage accesses to
// the function that performs them) segment bytecode without source.
func DispatcherTargets(code []byte) map[[4]byte]uint64 {
	instrs := Disassemble(code)
	out := make(map[[4]byte]uint64)
	for i, ins := range instrs {
		if ins.Op != evm.PUSH4 || len(ins.Imm) != 4 {
			continue
		}
		if !comparisonFeedsJump(instrs, i) {
			continue
		}
		// The jump-target push is the last PUSH before the JUMPI.
		var target uint64
		found := false
		for j := i + 1; j < len(instrs) && j <= i+6; j++ {
			op := instrs[j].Op
			if op.IsPush() {
				target = 0
				for _, b := range instrs[j].Imm {
					target = target<<8 | uint64(b)
				}
				found = true
			}
			if op == evm.JUMPI {
				break
			}
		}
		if !found {
			continue
		}
		var sel [4]byte
		copy(sel[:], ins.Imm)
		if _, dup := out[sel]; !dup {
			out[sel] = target
		}
	}
	return out
}

// comparisonFeedsJump reports whether the PUSH4 at index i is followed,
// within a small window, by an EQ (or SUB used as inequality test) whose
// result reaches a JUMPI. Stack-neutral shuffles (DUPn, SWAPn) are allowed
// inside the window.
func comparisonFeedsJump(instrs []Instruction, i int) bool {
	const window = 6
	sawCompare := false
	for j := i + 1; j < len(instrs) && j <= i+window; j++ {
		op := instrs[j].Op
		switch {
		case op == evm.EQ || op == evm.SUB:
			sawCompare = true
		case op == evm.JUMPI:
			return sawCompare
		case op.IsDup() || op.IsSwap() || op == evm.ISZERO:
			// Stack shuffles and polarity flips are fine.
		case op.IsPush():
			// The jump-target push.
		default:
			return false
		}
	}
	return false
}

// minimalProxyPrefix and minimalProxySuffix frame the EIP-1167 runtime:
// 363d3d373d3d3d363d73 <address> 5af43d82803e903d91602b57fd5bf3.
var (
	minimalProxyPrefix = []byte{
		0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x73,
	}
	minimalProxySuffix = []byte{
		0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d, 0x91, 0x60,
		0x2b, 0x57, 0xfd, 0x5b, 0xf3,
	}
)

// MinimalProxyRuntime builds the canonical EIP-1167 runtime bytecode
// delegating to target.
func MinimalProxyRuntime(target etypes.Address) []byte {
	out := make([]byte, 0, len(minimalProxyPrefix)+20+len(minimalProxySuffix))
	out = append(out, minimalProxyPrefix...)
	out = append(out, target[:]...)
	out = append(out, minimalProxySuffix...)
	return out
}

// MinimalProxyTarget reports whether code is an EIP-1167 minimal proxy and,
// if so, the hard-coded logic contract address.
func MinimalProxyTarget(code []byte) (etypes.Address, bool) {
	want := len(minimalProxyPrefix) + 20 + len(minimalProxySuffix)
	if len(code) != want {
		return etypes.Address{}, false
	}
	for i, b := range minimalProxyPrefix {
		if code[i] != b {
			return etypes.Address{}, false
		}
	}
	for i, b := range minimalProxySuffix {
		if code[len(minimalProxyPrefix)+20+i] != b {
			return etypes.Address{}, false
		}
	}
	return etypes.BytesToAddress(code[len(minimalProxyPrefix) : len(minimalProxyPrefix)+20]), true
}

// HardcodedAddresses returns all 20-byte PUSH20 immediates in the code:
// candidate hard-coded contract addresses (used to decide whether a
// DELEGATECALL target came from code or from storage).
func HardcodedAddresses(code []byte) []etypes.Address {
	var out []etypes.Address
	for _, ins := range Disassemble(code) {
		if ins.Op == evm.PUSH20 && len(ins.Imm) == 20 {
			out = append(out, etypes.BytesToAddress(ins.Imm))
		}
	}
	return out
}
