package disasm_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/asm"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/solc"
	"repro/internal/u256"
)

func TestDisassembleBasic(t *testing.T) {
	var p asm.Program
	p.PushUint(0x80).PushUint(0x40).Op(evm.MSTORE).Op(evm.STOP)
	code := p.MustAssemble()
	instrs := disasm.Disassemble(code)
	if len(instrs) != 4 {
		t.Fatalf("instrs = %d, want 4", len(instrs))
	}
	if instrs[0].Op != evm.PUSH1 || instrs[0].Imm[0] != 0x80 {
		t.Errorf("first = %s", instrs[0])
	}
	if instrs[2].Op != evm.MSTORE || instrs[2].PC != 4 {
		t.Errorf("third = %s", instrs[2])
	}
}

func TestDisassembleTruncatedPush(t *testing.T) {
	code := []byte{byte(evm.PUSH32), 0xaa}
	instrs := disasm.Disassemble(code)
	if len(instrs) != 1 {
		t.Fatalf("instrs = %d", len(instrs))
	}
	if len(instrs[0].Imm) != 32 || instrs[0].Imm[0] != 0xaa || instrs[0].Imm[1] != 0 {
		t.Errorf("truncated push imm = %x", instrs[0].Imm)
	}
}

func TestContainsOpRespectsPushData(t *testing.T) {
	// 0xF4 inside push data must not count as DELEGATECALL.
	code := []byte{byte(evm.PUSH2), 0xf4, 0xf4, byte(evm.STOP)}
	if disasm.ContainsOp(code, evm.DELEGATECALL) {
		t.Error("push data misread as DELEGATECALL")
	}
	code = append(code, byte(evm.DELEGATECALL))
	if !disasm.ContainsOp(code, evm.DELEGATECALL) {
		t.Error("real DELEGATECALL missed")
	}
}

func TestPush4CandidatesDedup(t *testing.T) {
	var p asm.Program
	sel := []byte{0xde, 0xad, 0xbe, 0xef}
	p.PushBytes(sel).Op(evm.POP).PushBytes(sel).Op(evm.POP).
		PushBytes([]byte{1, 2, 3, 4}).Op(evm.POP)
	got := disasm.Push4Candidates(p.MustAssemble())
	if len(got) != 2 {
		t.Fatalf("candidates = %d, want 2 (deduped)", len(got))
	}
}

func TestDispatcherSelectorsOnCompiledContract(t *testing.T) {
	c := &solc.Contract{
		Name: "Dispatch",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "alpha"}, Body: []solc.Stmt{solc.Stop{}}},
			{ABI: abi.Function{Name: "beta", Params: []string{"uint256", "address"}}, Body: []solc.Stmt{solc.Stop{}}},
		},
		DecoyPush4: [][4]byte{{9, 9, 9, 9}},
	}
	code := solc.MustCompile(c)
	got := disasm.DispatcherSelectors(code)
	if len(got) != 2 {
		t.Fatalf("selectors = %x, want the 2 real ones", got)
	}
	want := map[[4]byte]bool{
		c.Funcs[0].ABI.Selector(): true,
		c.Funcs[1].ABI.Selector(): true,
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected selector %x", s)
		}
	}
}

func TestDispatcherTargetsPointAtBodies(t *testing.T) {
	c := &solc.Contract{
		Name: "Targets",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "one"}, Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}}},
			{ABI: abi.Function{Name: "two"}, Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(2)}}},
		},
	}
	code := solc.MustCompile(c)
	targets := disasm.DispatcherTargets(code)
	if len(targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(targets))
	}
	for sel, pc := range targets {
		if pc == 0 || pc >= uint64(len(code)) {
			t.Errorf("selector %x target %d out of range", sel, pc)
		}
		// Each target must be a JUMPDEST.
		if evm.Op(code[pc]) != evm.JUMPDEST {
			t.Errorf("selector %x target %d is %s, not JUMPDEST", sel, pc, evm.Op(code[pc]))
		}
	}
}

func TestMinimalProxyRoundTrip(t *testing.T) {
	target := etypes.MustAddress("0x00000000000000000000000000000000000055aa")
	code := disasm.MinimalProxyRuntime(target)
	if len(code) != 45 {
		t.Errorf("EIP-1167 runtime length = %d, want 45", len(code))
	}
	got, ok := disasm.MinimalProxyTarget(code)
	if !ok || got != target {
		t.Fatalf("target = %s ok=%v", got, ok)
	}
	// Wrong length or corrupted prefix must not match.
	if _, ok := disasm.MinimalProxyTarget(code[:44]); ok {
		t.Error("short code matched")
	}
	bad := append([]byte{}, code...)
	bad[0] = 0x00
	if _, ok := disasm.MinimalProxyTarget(bad); ok {
		t.Error("corrupt prefix matched")
	}
}

func TestHardcodedAddresses(t *testing.T) {
	a := etypes.MustAddress("0x1111111111111111111111111111111111111111")
	var p asm.Program
	p.PushBytes(a[:]).Op(evm.POP).Op(evm.STOP)
	got := disasm.HardcodedAddresses(p.MustAssemble())
	if len(got) != 1 || got[0] != a {
		t.Errorf("hardcoded = %v", got)
	}
}

func TestBasicBlocks(t *testing.T) {
	var p asm.Program
	p.PushUint(1).JumpI("a"). // block 0: ends at JUMPI
					PushUint(2).Op(evm.POP). // block 1
					Label("a").              // block 2 starts at JUMPDEST
					Op(evm.STOP)
	code := p.MustAssemble()
	blocks := disasm.BasicBlocks(code)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	if blocks[0].Start != 0 {
		t.Errorf("block 0 start = %d", blocks[0].Start)
	}
	last := blocks[0].Instrs[len(blocks[0].Instrs)-1]
	if last.Op != evm.JUMPI {
		t.Errorf("block 0 terminator = %s", last.Op)
	}
	if blocks[2].Instrs[0].Op != evm.JUMPDEST {
		t.Errorf("block 2 leader = %s", blocks[2].Instrs[0].Op)
	}
	if blocks[1].End() != blocks[2].Start {
		t.Errorf("block 1 end %d != block 2 start %d", blocks[1].End(), blocks[2].Start)
	}
}

func TestFormatListing(t *testing.T) {
	var p asm.Program
	p.PushBytes([]byte{0xdf, 0x4a, 0x31, 0x06}).Op(evm.EQ)
	listing := disasm.Format(p.MustAssemble())
	if !strings.Contains(listing, "PUSH4 0xdf4a3106") {
		t.Errorf("listing missing PUSH4:\n%s", listing)
	}
	if !strings.Contains(listing, "EQ") {
		t.Errorf("listing missing EQ:\n%s", listing)
	}
}
