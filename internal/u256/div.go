package u256

import (
	"math/big"
	"math/bits"
)

// two256 is 2^256, the modulus of the EVM word ring.
var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

// ToBig returns x as a math/big integer.
func (x Int) ToBig() *big.Int {
	return new(big.Int).SetBytes(x.Bytes())
}

// FromBig converts a non-negative big integer, truncating to 256 bits.
func FromBig(v *big.Int) Int {
	if v.Sign() < 0 {
		m := new(big.Int).Mod(v, two256)
		return FromBytes(m.Bytes())
	}
	return FromBytes(v.Bytes())
}

// toSignedBig interprets x as a two's-complement signed 256-bit value.
func (x Int) toSignedBig() *big.Int {
	v := x.ToBig()
	if x.limbs[3]>>63 == 1 {
		v.Sub(v, two256)
	}
	return v
}

// Div returns x / y (unsigned); division by zero yields zero, per EVM DIV.
func (x Int) Div(y Int) Int {
	q, _ := x.DivMod(y)
	return q
}

// Mod returns x % y (unsigned); modulo by zero yields zero, per EVM MOD.
func (x Int) Mod(y Int) Int {
	_, r := x.DivMod(y)
	return r
}

// DivMod returns the quotient and remainder of x / y. Division by zero
// yields (0, 0), matching EVM semantics. The implementation is native:
// single-limb divisors use limb-wise long division on bits.Div64; wide
// divisors use restoring shift-subtract division over the bit-length gap.
func (x Int) DivMod(y Int) (q, r Int) {
	if y.IsZero() {
		return Int{}, Int{}
	}
	switch x.Cmp(y) {
	case -1:
		return Int{}, x
	case 0:
		return One(), Int{}
	}
	// Single-limb divisor: classic schoolbook long division, most
	// significant limb first, chaining remainders through bits.Div64.
	if y.IsUint64() {
		d := y.Uint64()
		var rem uint64
		for i := 3; i >= 0; i-- {
			q.limbs[i], rem = bits.Div64(rem, x.limbs[i], d)
		}
		return q, FromUint64(rem)
	}
	// Wide divisor: restoring division. Align y's highest bit with x's,
	// then walk down subtracting where it fits. The loop runs at most
	// 192 iterations (both operands have their top bit within 256, and a
	// wide divisor has BitLen > 64).
	shift := uint(x.BitLen() - y.BitLen())
	d := y.Shl(shift)
	r = x
	for {
		if d.Cmp(r) <= 0 {
			r = r.Sub(d)
			q = q.Or(One().Shl(shift))
		}
		if shift == 0 {
			break
		}
		shift--
		d = d.Shr(1)
	}
	return q, r
}

// SDiv returns x / y under signed interpretation with truncation toward
// zero; division by zero yields zero, per EVM SDIV. Implemented by sign
// adjustment around the unsigned division; the MIN_INT256 / -1 overflow
// falls out naturally from two's-complement negation (MIN negates to MIN).
func (x Int) SDiv(y Int) Int {
	if y.IsZero() {
		return Int{}
	}
	xneg, yneg := x.Sign() < 0, y.Sign() < 0
	ax, ay := x, y
	if xneg {
		ax = x.Neg()
	}
	if yneg {
		ay = y.Neg()
	}
	q, _ := ax.DivMod(ay)
	if xneg != yneg {
		q = q.Neg()
	}
	return q
}

// SMod returns x % y under signed interpretation where the result takes the
// sign of the dividend; modulo by zero yields zero, per EVM SMOD.
func (x Int) SMod(y Int) Int {
	if y.IsZero() {
		return Int{}
	}
	xneg := x.Sign() < 0
	ax, ay := x, y
	if xneg {
		ax = x.Neg()
	}
	if y.Sign() < 0 {
		ay = y.Neg()
	}
	_, r := ax.DivMod(ay)
	if xneg {
		r = r.Neg()
	}
	return r
}

// AddMod returns (x + y) % m computed without intermediate overflow; m == 0
// yields zero, per EVM ADDMOD. Since both reduced operands are below m, a
// single conditional subtraction corrects both the >= m case and the
// mod-2^256 wraparound.
func (x Int) AddMod(y, m Int) Int {
	if m.IsZero() {
		return Int{}
	}
	xm := x.Mod(m)
	ym := y.Mod(m)
	sum := xm.Add(ym)
	if sum.Lt(xm) || !sum.Lt(m) { // wrapped past 2^256, or simply >= m
		sum = sum.Sub(m)
	}
	return sum
}

// MulMod returns (x * y) % m computed without intermediate overflow; m == 0
// yields zero, per EVM MULMOD.
func (x Int) MulMod(y, m Int) Int {
	if m.IsZero() {
		return Int{}
	}
	p := new(big.Int).Mul(x.ToBig(), y.ToBig())
	return FromBig(p.Mod(p, m.ToBig()))
}

// Exp returns x ** y mod 2^256 by square-and-multiply, per EVM EXP.
func (x Int) Exp(y Int) Int {
	result := One()
	base := x
	for i := 0; i < y.BitLen(); i++ {
		if y.Bit(uint(i)) == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
	}
	return result
}
