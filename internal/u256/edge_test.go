package u256

import (
	"math/big"
	"testing"
)

// minInt256 is -2^255, the one signed value whose negation overflows.
func minInt256() Int { return One().Shl(255) }

func TestSignedDivModEdges(t *testing.T) {
	min := minInt256()
	negOne := Max() // -1 in two's complement

	// MIN_INT256 / -1 overflows and wraps back to MIN_INT256 (EVM SDIV).
	if got := min.SDiv(negOne); !got.Eq(min) {
		t.Errorf("MIN/-1 = %v, want MIN (overflow wrap)", got)
	}
	// MIN % -1 = 0.
	if got := min.SMod(negOne); !got.IsZero() {
		t.Errorf("MIN %% -1 = %v, want 0", got)
	}
	// Division and modulo by zero yield zero in all four flavours.
	seven := FromUint64(7)
	for name, got := range map[string]Int{
		"Div":  seven.Div(Zero()),
		"Mod":  seven.Mod(Zero()),
		"SDiv": seven.Neg().SDiv(Zero()),
		"SMod": seven.Neg().SMod(Zero()),
	} {
		if !got.IsZero() {
			t.Errorf("%s by zero = %v, want 0", name, got)
		}
	}
	// SMod takes the dividend's sign: -7 % 3 = -1, 7 % -3 = 1.
	if got := seven.Neg().SMod(FromUint64(3)); !got.Eq(One().Neg()) {
		t.Errorf("-7 smod 3 = %v, want -1", got)
	}
	if got := seven.SMod(FromUint64(3).Neg()); !got.Eq(One()) {
		t.Errorf("7 smod -3 = %v, want 1", got)
	}
	// SDiv truncates toward zero: -7 / 2 = -3.
	if got := seven.Neg().SDiv(FromUint64(2)); !got.Eq(FromUint64(3).Neg()) {
		t.Errorf("-7 sdiv 2 = %v, want -3", got)
	}
}

func TestAddModMulModOverflow(t *testing.T) {
	max := Max()

	// (MAX + MAX) mod MAX = 0: the sum wraps 2^256 and must still reduce.
	if got := max.AddMod(max, max); !got.IsZero() {
		t.Errorf("(MAX+MAX) mod MAX = %v, want 0", got)
	}
	// (MAX + 1) mod MAX = 1.
	if got := max.AddMod(One(), max); !got.Eq(One()) {
		t.Errorf("(MAX+1) mod MAX = %v, want 1", got)
	}
	// MAX*MAX mod MAX = 0; MAX*MAX mod (MAX-1): MAX ≡ 1, so product ≡ 1.
	if got := max.MulMod(max, max); !got.IsZero() {
		t.Errorf("MAX*MAX mod MAX = %v, want 0", got)
	}
	maxLess1 := max.Sub(One())
	if got := max.MulMod(max, maxLess1); !got.Eq(One()) {
		t.Errorf("MAX*MAX mod (MAX-1) = %v, want 1", got)
	}
	// Modulus zero yields zero even when the sum/product would not.
	if got := max.AddMod(max, Zero()); !got.IsZero() {
		t.Errorf("addmod m=0 = %v, want 0", got)
	}
	if got := max.MulMod(max, Zero()); !got.IsZero() {
		t.Errorf("mulmod m=0 = %v, want 0", got)
	}
	// Modulus one always yields zero.
	if got := max.AddMod(max, One()); !got.IsZero() {
		t.Errorf("addmod m=1 = %v, want 0", got)
	}
}

func TestShiftsBeyond256(t *testing.T) {
	v := MustHex("0x8000000000000000000000000000000000000000000000000000000000000001")
	for _, n := range []uint{256, 257, 300, 1 << 20} {
		if got := v.Shl(n); !got.IsZero() {
			t.Errorf("Shl(%d) = %v, want 0", n, got)
		}
		if got := v.Shr(n); !got.IsZero() {
			t.Errorf("Shr(%d) = %v, want 0", n, got)
		}
		// Sar saturates to the sign fill: all ones for negative values,
		// zero for non-negative.
		if got := v.Sar(n); !got.Eq(Max()) {
			t.Errorf("negative Sar(%d) = %v, want MAX (all sign bits)", n, got)
		}
		if got := v.Shr(1).Sar(n); !got.IsZero() {
			t.Errorf("non-negative Sar(%d) = %v, want 0", n, got)
		}
	}
	// Boundary just below: shift by 255 keeps exactly one bit.
	if got := One().Shl(255).Shr(255); !got.Eq(One()) {
		t.Errorf("Shl(255).Shr(255) = %v, want 1", got)
	}
}

func TestByteAndSignExtendOutOfRange(t *testing.T) {
	v := MustHex("0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
	// Byte index >= 32 yields zero (EVM BYTE).
	for _, i := range []uint64{32, 33, 1000} {
		if got := v.Byte(i); !got.IsZero() {
			t.Errorf("Byte(%d) = %v, want 0", i, got)
		}
	}
	// SignExtend with byte position >= 31 leaves the value unchanged.
	for _, b := range []uint64{31, 32, 1000} {
		if got := v.SignExtend(FromUint64(b)); !got.Eq(v) {
			t.Errorf("SignExtend(%d) = %v, want unchanged", b, got)
		}
	}
}

// --- differential fuzzing against math/big ---

var twoTo256 = new(big.Int).Lsh(big.NewInt(1), 256)

// wrap reduces a big.Int into [0, 2^256).
func wrap(v *big.Int) *big.Int { return v.Mod(v, twoTo256) }

// signedBig interprets v (in [0,2^256)) as two's complement.
func signedBig(v *big.Int) *big.Int {
	if v.Bit(255) == 1 {
		return new(big.Int).Sub(v, twoTo256)
	}
	return new(big.Int).Set(v)
}

// fromSignedBig maps a signed big.Int back into the unsigned word domain.
func fromSignedBig(v *big.Int) *big.Int {
	if v.Sign() < 0 {
		return wrap(new(big.Int).Add(v, twoTo256))
	}
	return v
}

// FuzzU256VsBigInt cross-checks every arithmetic, signed, modular, and
// shift operation against a math/big reference model of EVM semantics.
func FuzzU256VsBigInt(f *testing.F) {
	f.Add([]byte{1}, []byte{2}, []byte{3})
	f.Add(
		Max().Bytes(),
		minInt256().Bytes(),
		[]byte{},
	)
	f.Add([]byte{0xff, 0xff}, []byte{0}, []byte{1})
	f.Fuzz(func(t *testing.T, xb, yb, mb []byte) {
		if len(xb) > 32 || len(yb) > 32 || len(mb) > 32 {
			t.Skip()
		}
		x, y, m := FromBytes(xb), FromBytes(yb), FromBytes(mb)
		bx, by, bm := x.ToBig(), y.ToBig(), m.ToBig()

		check := func(op string, got Int, want *big.Int) {
			t.Helper()
			if got.ToBig().Cmp(want) != 0 {
				t.Errorf("%s(%v, %v) = %v, big.Int says %x", op, x, y, got, want)
			}
		}

		check("Add", x.Add(y), wrap(new(big.Int).Add(bx, by)))
		check("Sub", x.Sub(y), wrap(new(big.Int).Sub(bx, by)))
		check("Mul", x.Mul(y), wrap(new(big.Int).Mul(bx, by)))

		if y.IsZero() {
			check("Div", x.Div(y), big.NewInt(0))
			check("Mod", x.Mod(y), big.NewInt(0))
			check("SDiv", x.SDiv(y), big.NewInt(0))
			check("SMod", x.SMod(y), big.NewInt(0))
		} else {
			check("Div", x.Div(y), new(big.Int).Div(bx, by))
			check("Mod", x.Mod(y), new(big.Int).Mod(bx, by))
			sx, sy := signedBig(bx), signedBig(by)
			check("SDiv", x.SDiv(y), wrap(fromSignedBig(new(big.Int).Quo(sx, sy))))
			check("SMod", x.SMod(y), wrap(fromSignedBig(new(big.Int).Rem(sx, sy))))
		}

		if m.IsZero() {
			check("AddMod", x.AddMod(y, m), big.NewInt(0))
			check("MulMod", x.MulMod(y, m), big.NewInt(0))
		} else {
			sum := new(big.Int).Add(bx, by)
			check("AddMod", x.AddMod(y, m), sum.Mod(sum, bm))
			prod := new(big.Int).Mul(bx, by)
			check("MulMod", x.MulMod(y, m), prod.Mod(prod, bm))
		}

		check("Exp", x.Exp(y), new(big.Int).Exp(bx, by, twoTo256))

		// Shifts: the amount is the full word; >= 256 must saturate.
		n := uint(y.Uint64())
		if !y.IsUint64() || n > 1<<20 {
			n = 1 << 20
		}
		check("Shl", x.Shl(n), wrap(new(big.Int).Lsh(bx, n)))
		check("Shr", x.Shr(n), new(big.Int).Rsh(bx, n))
		sar := new(big.Int).Rsh(signedBig(bx), n)
		check("Sar", x.Sar(n), wrap(fromSignedBig(sar)))
	})
}
