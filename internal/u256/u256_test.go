package u256

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randInt produces a quick-checkable random word biased toward interesting
// boundary shapes (small values, all-ones limbs, high-bit-set).
func randInt(r *rand.Rand) Int {
	var x Int
	switch r.Intn(5) {
	case 0:
		x.limbs[0] = r.Uint64() % 1024
	case 1:
		x = Max()
		x.limbs[r.Intn(4)] = r.Uint64()
	case 2:
		x.limbs[3] = 1 << 63
		x.limbs[0] = r.Uint64()
	default:
		for i := range x.limbs {
			x.limbs[i] = r.Uint64()
		}
	}
	return x
}

var quickCfg = &quick.Config{
	MaxCount: 2000,
	Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(pair{randInt(r), randInt(r)})
		}
	},
}

type pair struct{ a, b Int }

func mod256(v *big.Int) *big.Int { return new(big.Int).Mod(v, two256) }

func TestRoundTripBytes(t *testing.T) {
	f := func(p pair) bool {
		return FromBytes32(p.a.Bytes32()).Eq(p.a) && FromBytes(p.a.Bytes()).Eq(p.a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(p pair) bool {
		want := mod256(new(big.Int).Add(p.a.ToBig(), p.b.ToBig()))
		return p.a.Add(p.b).ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(p pair) bool {
		want := mod256(new(big.Int).Sub(p.a.ToBig(), p.b.ToBig()))
		return p.a.Sub(p.b).ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(p pair) bool {
		want := mod256(new(big.Int).Mul(p.a.ToBig(), p.b.ToBig()))
		return p.a.Mul(p.b).ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestDivModMatchBig(t *testing.T) {
	f := func(p pair) bool {
		if p.b.IsZero() {
			return p.a.Div(p.b).IsZero() && p.a.Mod(p.b).IsZero()
		}
		wantQ := new(big.Int).Div(p.a.ToBig(), p.b.ToBig())
		wantR := new(big.Int).Mod(p.a.ToBig(), p.b.ToBig())
		return p.a.Div(p.b).ToBig().Cmp(wantQ) == 0 && p.a.Mod(p.b).ToBig().Cmp(wantR) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestShiftsMatchBig(t *testing.T) {
	f := func(p pair) bool {
		n := uint(p.b.Uint64() % 300)
		wantL := mod256(new(big.Int).Lsh(p.a.ToBig(), n))
		wantR := new(big.Int).Rsh(p.a.ToBig(), n)
		return p.a.Shl(n).ToBig().Cmp(wantL) == 0 && p.a.Shr(n).ToBig().Cmp(wantR) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestSarSignFill(t *testing.T) {
	neg := MustHex("0x8000000000000000000000000000000000000000000000000000000000000000")
	if got := neg.Sar(255); !got.Eq(Max()) {
		t.Errorf("Sar(255) of min-negative = %s, want all-ones", got)
	}
	if got := neg.Sar(256); !got.Eq(Max()) {
		t.Errorf("Sar(256) of negative = %s, want all-ones", got)
	}
	pos := FromUint64(0x80)
	if got := pos.Sar(4); got.Uint64() != 8 {
		t.Errorf("Sar(4) of 0x80 = %s, want 8", got)
	}
	if got := pos.Sar(300); !got.IsZero() {
		t.Errorf("Sar(300) of positive = %s, want 0", got)
	}
}

func TestSignedComparisons(t *testing.T) {
	minusOne := Max()
	one := One()
	if !minusOne.Slt(one) {
		t.Error("-1 should be Slt 1")
	}
	if !one.Sgt(minusOne) {
		t.Error("1 should be Sgt -1")
	}
	if minusOne.Slt(minusOne) {
		t.Error("x Slt x must be false")
	}
	if !FromUint64(2).Lt(FromUint64(3)) || FromUint64(3).Lt(FromUint64(2)) {
		t.Error("unsigned Lt broken on small values")
	}
}

func TestSDivSModTruncateTowardZero(t *testing.T) {
	// -7 / 2 == -3 (truncation), -7 % 2 == -1 (sign of dividend).
	minus7 := FromUint64(7).Neg()
	two := FromUint64(2)
	if got, want := minus7.SDiv(two), FromUint64(3).Neg(); !got.Eq(want) {
		t.Errorf("-7 SDIV 2 = %s, want %s", got, want)
	}
	if got, want := minus7.SMod(two), One().Neg(); !got.Eq(want) {
		t.Errorf("-7 SMOD 2 = %s, want %s", got, want)
	}
	// EVM edge case: MIN_INT256 / -1 overflows back to MIN_INT256.
	minInt := MustHex("0x8000000000000000000000000000000000000000000000000000000000000000")
	if got := minInt.SDiv(Max()); !got.Eq(minInt) {
		t.Errorf("MIN SDIV -1 = %s, want MIN", got)
	}
}

func TestSignExtend(t *testing.T) {
	// Extending byte 0 of 0xFF yields -1.
	if got := FromUint64(0xFF).SignExtend(Zero()); !got.Eq(Max()) {
		t.Errorf("signextend(0, 0xFF) = %s, want all-ones", got)
	}
	// 0x7F stays positive.
	if got := FromUint64(0x7F).SignExtend(Zero()); got.Uint64() != 0x7F {
		t.Errorf("signextend(0, 0x7F) = %s, want 0x7f", got)
	}
	// Index >= 31 is identity.
	x := MustHex("0xdeadbeef")
	if got := x.SignExtend(FromUint64(31)); !got.Eq(x) {
		t.Errorf("signextend(31, x) must be identity, got %s", got)
	}
}

func TestByte(t *testing.T) {
	x := MustHex("0x0102030405060708091011121314151617181920212223242526272829303132")
	if got := x.Byte(0); got.Uint64() != 0x01 {
		t.Errorf("byte 0 = %s", got)
	}
	if got := x.Byte(31); got.Uint64() != 0x32 {
		t.Errorf("byte 31 = %s", got)
	}
	if got := x.Byte(32); !got.IsZero() {
		t.Errorf("byte 32 = %s, want 0", got)
	}
}

func TestAddModMulModExp(t *testing.T) {
	a, b, m := FromUint64(10), Max(), FromUint64(7)
	wantAdd := new(big.Int).Add(a.ToBig(), b.ToBig())
	wantAdd.Mod(wantAdd, m.ToBig())
	if got := a.AddMod(b, m); got.ToBig().Cmp(wantAdd) != 0 {
		t.Errorf("AddMod = %s, want %s", got, wantAdd)
	}
	wantMul := new(big.Int).Mul(a.ToBig(), b.ToBig())
	wantMul.Mod(wantMul, m.ToBig())
	if got := a.MulMod(b, m); got.ToBig().Cmp(wantMul) != 0 {
		t.Errorf("MulMod = %s, want %s", got, wantMul)
	}
	if got := a.AddMod(b, Zero()); !got.IsZero() {
		t.Errorf("AddMod by zero = %s, want 0", got)
	}
	if got := FromUint64(2).Exp(FromUint64(10)); got.Uint64() != 1024 {
		t.Errorf("2**10 = %s", got)
	}
	if got := FromUint64(3).Exp(Zero()); got.Uint64() != 1 {
		t.Errorf("3**0 = %s", got)
	}
	// 2**256 wraps to zero.
	if got := FromUint64(2).Exp(FromUint64(256)); !got.IsZero() {
		t.Errorf("2**256 = %s, want 0", got)
	}
}

func TestExpMatchesBig(t *testing.T) {
	f := func(p pair) bool {
		e := FromUint64(p.b.Uint64() % 40)
		want := new(big.Int).Exp(p.a.ToBig(), e.ToBig(), two256)
		return p.a.Exp(e).ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestHexParsing(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"0x0", 0},
		{"0xff", 255},
		{"FF", 255},
		{"0xDeadBeef", 0xdeadbeef},
	}
	for _, c := range cases {
		got, err := FromHex(c.in)
		if err != nil {
			t.Fatalf("FromHex(%q): %v", c.in, err)
		}
		if got.Uint64() != c.want {
			t.Errorf("FromHex(%q) = %s, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "0x", "0xg1", "0x" + string(make([]byte, 65))} {
		if _, err := FromHex(bad); err == nil {
			t.Errorf("FromHex(%q) should fail", bad)
		}
	}
}

func TestHexRoundTrip(t *testing.T) {
	f := func(p pair) bool {
		back, err := FromHex(p.a.Hex())
		return err == nil && back.Eq(p.a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestBitAndBitLen(t *testing.T) {
	if Zero().BitLen() != 0 {
		t.Error("BitLen(0) != 0")
	}
	if One().BitLen() != 1 {
		t.Error("BitLen(1) != 1")
	}
	if Max().BitLen() != 256 {
		t.Error("BitLen(max) != 256")
	}
	x := One().Shl(200)
	if x.Bit(200) != 1 || x.Bit(199) != 0 || x.BitLen() != 201 {
		t.Errorf("Shl(200) bit bookkeeping wrong: %s", x)
	}
}

func TestFromBigNegative(t *testing.T) {
	// FromBig of -1 must produce all-ones (two's complement mod 2^256).
	if got := FromBig(big.NewInt(-1)); !got.Eq(Max()) {
		t.Errorf("FromBig(-1) = %s, want all-ones", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := Max(), FromUint64(12345)
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := MustHex("0xfedcba9876543210fedcba9876543210"), FromUint64(99991)
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
}

func TestSignExtendMatchesBig(t *testing.T) {
	f := func(p pair) bool {
		b := p.b.Uint64() % 33 // 0..32, includes the identity range >= 31
		got := p.a.SignExtend(FromUint64(b))
		// Reference: interpret the low (b+1)*8 bits as signed, mod 2^256.
		if b >= 31 {
			return got.Eq(p.a)
		}
		bits := uint((b + 1) * 8)
		low := new(big.Int).Mod(p.a.ToBig(), new(big.Int).Lsh(big.NewInt(1), bits))
		half := new(big.Int).Lsh(big.NewInt(1), bits-1)
		if low.Cmp(half) >= 0 {
			low.Sub(low, new(big.Int).Lsh(big.NewInt(1), bits))
		}
		want := mod256(low)
		return got.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestSarMatchesBig(t *testing.T) {
	f := func(p pair) bool {
		n := uint(p.b.Uint64() % 300)
		got := p.a.Sar(n)
		// Reference: arithmetic shift of the signed interpretation.
		signed := p.a.ToBig()
		if p.a.Bit(255) == 1 {
			signed.Sub(signed, two256)
		}
		want := mod256(new(big.Int).Rsh(signed, n))
		return got.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestByteMatchesBig(t *testing.T) {
	f := func(p pair) bool {
		i := p.b.Uint64() % 40
		got := p.a.Byte(i)
		if i >= 32 {
			return got.IsZero()
		}
		buf := p.a.Bytes32()
		return got.Uint64() == uint64(buf[i])
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestDivModConsistency(t *testing.T) {
	// q*y + r == x and r < y, for all non-zero divisors.
	f := func(p pair) bool {
		if p.b.IsZero() {
			q, r := p.a.DivMod(p.b)
			return q.IsZero() && r.IsZero()
		}
		q, r := p.a.DivMod(p.b)
		if !r.Lt(p.b) {
			return false
		}
		return q.Mul(p.b).Add(r).Eq(p.a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestSDivSModMatchBig(t *testing.T) {
	f := func(p pair) bool {
		if p.b.IsZero() {
			return p.a.SDiv(p.b).IsZero() && p.a.SMod(p.b).IsZero()
		}
		wantQ := mod256(new(big.Int).Quo(p.a.toSignedBig(), p.b.toSignedBig()))
		wantR := mod256(new(big.Int).Rem(p.a.toSignedBig(), p.b.toSignedBig()))
		return p.a.SDiv(p.b).ToBig().Cmp(wantQ) == 0 &&
			p.a.SMod(p.b).ToBig().Cmp(wantR) == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestAddModMatchesBig(t *testing.T) {
	f := func(p pair) bool {
		for _, m := range []Int{p.b, FromUint64(7), Max(), Zero()} {
			got := p.a.AddMod(p.b, m)
			if m.IsZero() {
				if !got.IsZero() {
					return false
				}
				continue
			}
			s := new(big.Int).Add(p.a.ToBig(), p.b.ToBig())
			want := s.Mod(s, m.ToBig())
			if got.ToBig().Cmp(want) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
