// Package u256 implements fixed-size 256-bit unsigned integer arithmetic as
// used by the Ethereum Virtual Machine. Values are immutable-by-convention:
// all operations return new values and never mutate their receivers, which
// keeps EVM stack semantics (pop operands, push result) easy to reason about.
//
// Representation is four little-endian uint64 limbs: limb 0 holds bits 0..63.
// Hot-path operations (add, sub, mul, comparisons, bit ops, shifts) are
// implemented natively; division-family operations delegate to math/big for
// correctness, which the property tests cross-check against the native paths.
package u256

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Int is a 256-bit unsigned integer. The zero value is the number zero and is
// ready to use.
type Int struct {
	limbs [4]uint64 // little-endian: limbs[0] = bits 0..63
}

// Zero returns the zero value.
func Zero() Int { return Int{} }

// One returns the value 1.
func One() Int { return Int{limbs: [4]uint64{1, 0, 0, 0}} }

// Max returns 2^256 - 1.
func Max() Int {
	return Int{limbs: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}}
}

// FromUint64 returns v as a 256-bit integer.
func FromUint64(v uint64) Int { return Int{limbs: [4]uint64{v, 0, 0, 0}} }

// FromBytes interprets b as a big-endian unsigned integer. Inputs longer than
// 32 bytes keep only the trailing 32 bytes, matching EVM truncation rules.
func FromBytes(b []byte) Int {
	if len(b) > 32 {
		b = b[len(b)-32:]
	}
	var buf [32]byte
	copy(buf[32-len(b):], b)
	return FromBytes32(buf)
}

// FromBytes32 interprets buf as a big-endian unsigned integer.
func FromBytes32(buf [32]byte) Int {
	var x Int
	x.limbs[3] = binary.BigEndian.Uint64(buf[0:8])
	x.limbs[2] = binary.BigEndian.Uint64(buf[8:16])
	x.limbs[1] = binary.BigEndian.Uint64(buf[16:24])
	x.limbs[0] = binary.BigEndian.Uint64(buf[24:32])
	return x
}

// FromHex parses a 0x-prefixed or bare hexadecimal string.
func FromHex(s string) (Int, error) {
	if len(s) >= 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	if len(s) == 0 || len(s) > 64 {
		return Int{}, fmt.Errorf("u256: invalid hex length %d", len(s))
	}
	var x Int
	for _, c := range []byte(s) {
		var nib uint64
		switch {
		case '0' <= c && c <= '9':
			nib = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			nib = uint64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			nib = uint64(c-'A') + 10
		default:
			return Int{}, fmt.Errorf("u256: invalid hex digit %q", c)
		}
		x = x.Shl(4)
		x.limbs[0] |= nib
	}
	return x, nil
}

// MustHex is FromHex that panics on malformed input. Intended for constants.
func MustHex(s string) Int {
	x, err := FromHex(s)
	if err != nil {
		panic(err)
	}
	return x
}

// Bytes32 returns the big-endian 32-byte representation.
func (x Int) Bytes32() [32]byte {
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:8], x.limbs[3])
	binary.BigEndian.PutUint64(buf[8:16], x.limbs[2])
	binary.BigEndian.PutUint64(buf[16:24], x.limbs[1])
	binary.BigEndian.PutUint64(buf[24:32], x.limbs[0])
	return buf
}

// Bytes returns the minimal big-endian representation (no leading zeros,
// empty slice for zero).
func (x Int) Bytes() []byte {
	full := x.Bytes32()
	i := 0
	for i < 32 && full[i] == 0 {
		i++
	}
	out := make([]byte, 32-i)
	copy(out, full[i:])
	return out
}

// Uint64 returns the low 64 bits.
func (x Int) Uint64() uint64 { return x.limbs[0] }

// IsUint64 reports whether x fits in a uint64.
func (x Int) IsUint64() bool { return x.limbs[1]|x.limbs[2]|x.limbs[3] == 0 }

// IsZero reports whether x == 0.
func (x Int) IsZero() bool { return x.limbs[0]|x.limbs[1]|x.limbs[2]|x.limbs[3] == 0 }

// Eq reports whether x == y.
func (x Int) Eq(y Int) bool { return x.limbs == y.limbs }

// Cmp returns -1, 0, or +1 for x < y, x == y, x > y (unsigned).
func (x Int) Cmp(y Int) int {
	for i := 3; i >= 0; i-- {
		switch {
		case x.limbs[i] < y.limbs[i]:
			return -1
		case x.limbs[i] > y.limbs[i]:
			return 1
		}
	}
	return 0
}

// Lt reports x < y (unsigned).
func (x Int) Lt(y Int) bool { return x.Cmp(y) < 0 }

// Gt reports x > y (unsigned).
func (x Int) Gt(y Int) bool { return x.Cmp(y) > 0 }

// Sign returns -1 if x is negative under two's-complement interpretation,
// 0 if zero, and +1 otherwise.
func (x Int) Sign() int {
	if x.IsZero() {
		return 0
	}
	if x.limbs[3]>>63 == 1 {
		return -1
	}
	return 1
}

// Slt reports x < y under signed (two's-complement) interpretation.
func (x Int) Slt(y Int) bool {
	xs, ys := x.limbs[3]>>63, y.limbs[3]>>63
	if xs != ys {
		return xs == 1 // negative < non-negative
	}
	return x.Cmp(y) < 0
}

// Sgt reports x > y under signed interpretation.
func (x Int) Sgt(y Int) bool { return y.Slt(x) }

// Add returns x + y mod 2^256.
func (x Int) Add(y Int) Int {
	var z Int
	var c uint64
	z.limbs[0], c = bits.Add64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], c = bits.Add64(x.limbs[1], y.limbs[1], c)
	z.limbs[2], c = bits.Add64(x.limbs[2], y.limbs[2], c)
	z.limbs[3], _ = bits.Add64(x.limbs[3], y.limbs[3], c)
	return z
}

// Sub returns x - y mod 2^256.
func (x Int) Sub(y Int) Int {
	var z Int
	var b uint64
	z.limbs[0], b = bits.Sub64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], b = bits.Sub64(x.limbs[1], y.limbs[1], b)
	z.limbs[2], b = bits.Sub64(x.limbs[2], y.limbs[2], b)
	z.limbs[3], _ = bits.Sub64(x.limbs[3], y.limbs[3], b)
	return z
}

// Neg returns -x mod 2^256.
func (x Int) Neg() Int { return Zero().Sub(x) }

// Mul returns x * y mod 2^256 using schoolbook multiplication truncated to
// four limbs.
func (x Int) Mul(y Int) Int {
	var z [4]uint64
	for i := 0; i < 4; i++ {
		var carry uint64
		for j := 0; i+j < 4; j++ {
			hi, lo := bits.Mul64(x.limbs[i], y.limbs[j])
			var c1, c2 uint64
			z[i+j], c1 = bits.Add64(z[i+j], lo, 0)
			z[i+j], c2 = bits.Add64(z[i+j], carry, 0)
			carry = hi + c1 + c2
		}
	}
	return Int{limbs: z}
}

// And returns x & y.
func (x Int) And(y Int) Int {
	var z Int
	for i := range z.limbs {
		z.limbs[i] = x.limbs[i] & y.limbs[i]
	}
	return z
}

// Or returns x | y.
func (x Int) Or(y Int) Int {
	var z Int
	for i := range z.limbs {
		z.limbs[i] = x.limbs[i] | y.limbs[i]
	}
	return z
}

// Xor returns x ^ y.
func (x Int) Xor(y Int) Int {
	var z Int
	for i := range z.limbs {
		z.limbs[i] = x.limbs[i] ^ y.limbs[i]
	}
	return z
}

// Not returns ^x.
func (x Int) Not() Int {
	var z Int
	for i := range z.limbs {
		z.limbs[i] = ^x.limbs[i]
	}
	return z
}

// Shl returns x << n (zero for n >= 256).
func (x Int) Shl(n uint) Int {
	if n >= 256 {
		return Int{}
	}
	word := n / 64
	sh := n % 64
	var z Int
	for i := 3; i >= int(word); i-- {
		z.limbs[i] = x.limbs[i-int(word)] << sh
		if sh > 0 && i-int(word)-1 >= 0 {
			z.limbs[i] |= x.limbs[i-int(word)-1] >> (64 - sh)
		}
	}
	return z
}

// Shr returns x >> n logically (zero for n >= 256).
func (x Int) Shr(n uint) Int {
	if n >= 256 {
		return Int{}
	}
	word := n / 64
	sh := n % 64
	var z Int
	for i := 0; i <= 3-int(word); i++ {
		z.limbs[i] = x.limbs[i+int(word)] >> sh
		if sh > 0 && i+int(word)+1 <= 3 {
			z.limbs[i] |= x.limbs[i+int(word)+1] << (64 - sh)
		}
	}
	return z
}

// Sar returns x >> n arithmetically (sign-filling). For n >= 256 the result
// is all-ones when x is negative and zero otherwise, per EVM SAR semantics.
func (x Int) Sar(n uint) Int {
	neg := x.limbs[3]>>63 == 1
	if n >= 256 {
		if neg {
			return Max()
		}
		return Int{}
	}
	z := x.Shr(n)
	if neg && n > 0 {
		// Fill the vacated high bits with ones.
		fill := Max().Shl(256 - n)
		z = z.Or(fill)
	}
	return z
}

// Byte returns the i-th byte of x counted from the most significant end
// (EVM BYTE semantics); i >= 32 yields zero.
func (x Int) Byte(i uint64) Int {
	if i >= 32 {
		return Int{}
	}
	buf := x.Bytes32()
	return FromUint64(uint64(buf[i]))
}

// SignExtend extends the sign bit of the byte at index b (counting from the
// least significant byte) through the high bits, per EVM SIGNEXTEND.
func (x Int) SignExtend(b Int) Int {
	if !b.IsUint64() || b.Uint64() >= 31 {
		return x
	}
	bitIndex := uint(b.Uint64()*8 + 7)
	mask := One().Shl(bitIndex + 1).Sub(One()) // low bitIndex+1 bits
	if x.Bit(bitIndex) == 1 {
		return x.Or(mask.Not())
	}
	return x.And(mask)
}

// Bit returns bit i of x (0 or 1); i >= 256 yields 0.
func (x Int) Bit(i uint) uint64 {
	if i >= 256 {
		return 0
	}
	return (x.limbs[i/64] >> (i % 64)) & 1
}

// BitLen returns the length of x in bits (0 for zero).
func (x Int) BitLen() int {
	for i := 3; i >= 0; i-- {
		if x.limbs[i] != 0 {
			return i*64 + bits.Len64(x.limbs[i])
		}
	}
	return 0
}

// Hex returns the canonical 0x-prefixed minimal hexadecimal representation.
func (x Int) Hex() string {
	if x.IsZero() {
		return "0x0"
	}
	const digits = "0123456789abcdef"
	buf := x.Bytes()
	out := make([]byte, 0, 2+2*len(buf))
	out = append(out, '0', 'x')
	first := true
	for _, b := range buf {
		hi, lo := b>>4, b&0xf
		if !(first && hi == 0) {
			out = append(out, digits[hi])
			first = false
		}
		out = append(out, digits[lo])
		first = false
	}
	return string(out)
}

// String implements fmt.Stringer using the hexadecimal form.
func (x Int) String() string { return x.Hex() }
