// Package store is the disk-backed, content-addressed verdict store
// behind the proxiond analysis service: an append-only segment log of
// serialized verdict-cache entries (proxion.CacheEntry) with an in-memory
// index keyed by runtime-bytecode hash.
//
// Design invariants:
//
//   - Append-only: a Put never rewrites existing bytes; updated entries
//     are appended and the replay's last-record-wins rule supersedes the
//     old one. Crash safety therefore reduces to handling a single torn
//     record at the log tail.
//   - Checksummed: every record carries a CRC32 of its payload, and every
//     payload self-validates through CacheEntry's versioned decoder. A
//     flipped bit anywhere is detected, never silently served.
//   - Torn tails heal, interior corruption does not: a partial or
//     CRC-failing record at the tail of the *last* segment is the
//     signature of a crash mid-write — Open truncates it and continues
//     with every verdict that was durable before the crash. The same
//     damage anywhere else means the disk lied, and Open refuses the
//     store rather than guess.
//   - Load is a sequential scan: reopening a store replays the segments
//     front to back into the index, so restart cost is one linear read of
//     the log — no per-entry seeks.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/etypes"
	"repro/internal/proxion"
)

// segment header: magic + format version. Fixed 8 bytes.
var segmentMagic = [8]byte{'P', 'X', 'S', 'T', 'L', 'O', 'G', '1'}

// recordHeaderSize is the per-record framing: u32 payload length + u32
// CRC32(payload).
const recordHeaderSize = 8

// maxRecordBytes rejects absurd lengths during replay before allocating.
const maxRecordBytes = 16 << 20

// Options tunes a store. The zero value is production-safe.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size. Default 4 MiB.
	SegmentBytes int64
	// NoSync skips the per-append fsync. Appends then survive process
	// death (the OS flushes eventually) but not host death; tests and
	// throughput-bound loaders may opt in.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Entries is the number of distinct code hashes indexed.
	Entries int `json:"entries"`
	// Segments is the number of log segments on disk.
	Segments int `json:"segments"`
	// Bytes is the total size of all segments.
	Bytes int64 `json:"bytes"`
	// Appended counts records written by this process.
	Appended int64 `json:"appended"`
	// SkippedPuts counts Puts dropped because the entry was byte-identical
	// to the indexed one (the common case for hot bytecodes).
	SkippedPuts int64 `json:"skipped_puts"`
	// TruncatedBytes is how many torn-tail bytes Open discarded while
	// recovering this store.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// LoadMS is how long the opening replay took.
	LoadMS float64 `json:"load_ms"`
}

// Store is a disk-backed verdict store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	index    map[etypes.Hash][]byte // code hash → latest serialized entry
	active   *os.File
	activeID int
	size     int64 // active segment size
	total    int64 // all segments

	segments  int
	appended  int64
	skipped   int64
	truncated int64
	loadDur   time.Duration
	closed    bool
}

// CorruptionError reports unrecoverable log damage: a record that fails
// its checksum (or framing) somewhere other than the tail of the last
// segment.
type CorruptionError struct {
	Segment string
	Offset  int64
	Reason  string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("store: %s corrupt at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// Open loads (or creates) the store in dir, replaying the segment log
// into the in-memory index. A torn record at the log tail — the crash-
// mid-write signature — is truncated away; corruption anywhere else
// returns a *CorruptionError.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[etypes.Hash][]byte),
	}
	start := time.Now()
	if err := s.replay(); err != nil {
		return nil, err
	}
	s.loadDur = time.Since(start)
	return s, nil
}

// segmentName renders the n-th segment's file name.
func segmentName(n int) string { return fmt.Sprintf("seg-%06d.log", n) }

// segmentFiles lists the store's segments in log order.
func (s *Store) segmentFiles() ([]string, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// replay scans every segment into the index and positions the active
// segment for appends.
func (s *Store) replay() error {
	files, err := s.segmentFiles()
	if err != nil {
		return err
	}
	s.segments = len(files)
	for i, path := range files {
		last := i == len(files)-1
		n, err := s.replaySegment(path, last)
		if err != nil {
			return err
		}
		s.total += n
		if last {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			s.active = f
			s.size = n
			// Segment ids are their index in sorted order by construction.
			s.activeID = i
		}
	}
	if s.active == nil {
		return s.rotateLocked()
	}
	return nil
}

// replaySegment reads one segment into the index, returning the number of
// valid bytes. In the last segment, a torn tail is truncated in place;
// anywhere else it is corruption.
func (s *Store) replaySegment(path string, last bool) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	name := filepath.Base(path)
	corrupt := func(off int64, reason string) (int64, error) {
		return 0, &CorruptionError{Segment: name, Offset: off, Reason: reason}
	}
	truncateAt := func(off int64, fileSize int64) (int64, error) {
		if !last {
			return corrupt(off, "torn record in a non-final segment")
		}
		if err := os.Truncate(path, off); err != nil {
			return 0, fmt.Errorf("store: truncating torn tail: %w", err)
		}
		s.truncated += fileSize - off
		return off, nil
	}

	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	fileSize := st.Size()

	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// A header shorter than 8 bytes can only be a crash during segment
		// creation; heal it to an empty, re-headered segment.
		if !last {
			return corrupt(0, "short segment header")
		}
		if err := os.Truncate(path, 0); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		if err := writeSegmentHeader(path); err != nil {
			return 0, err
		}
		s.truncated += fileSize
		return int64(len(segmentMagic)), nil
	}
	if hdr != segmentMagic {
		return corrupt(0, fmt.Sprintf("bad segment magic %q", hdr[:]))
	}

	off := int64(len(segmentMagic))
	for {
		var rh [recordHeaderSize]byte
		_, err := io.ReadFull(f, rh[:])
		if err == io.EOF {
			return off, nil
		}
		if err == io.ErrUnexpectedEOF {
			return truncateAt(off, fileSize)
		}
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		plen := binary.BigEndian.Uint32(rh[0:4])
		sum := binary.BigEndian.Uint32(rh[4:8])
		if plen == 0 || plen > maxRecordBytes || off+recordHeaderSize+int64(plen) > fileSize {
			// A length that cannot fit in the file (or is garbage) means
			// the framing is gone from here on — the torn-write signature.
			// truncateAt refuses it outside the final segment.
			return truncateAt(off, fileSize)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return truncateAt(off, fileSize)
			}
			return 0, fmt.Errorf("store: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if off+recordHeaderSize+int64(plen) == fileSize {
				return truncateAt(off, fileSize)
			}
			return corrupt(off, "payload checksum mismatch")
		}
		var ent proxion.CacheEntry
		if err := ent.UnmarshalBinary(payload); err != nil {
			if off+recordHeaderSize+int64(plen) == fileSize {
				return truncateAt(off, fileSize)
			}
			return corrupt(off, err.Error())
		}
		s.index[ent.CodeHash] = payload
		off += recordHeaderSize + int64(plen)
	}
}

// writeSegmentHeader creates/overwrites path with a bare segment header.
func writeSegmentHeader(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(segmentMagic[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return f.Sync()
}

// rotateLocked opens the next segment as active. Callers hold s.mu (or
// run before the store is shared).
func (s *Store) rotateLocked() error {
	next := 0
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		next = s.activeID + 1
	}
	path := filepath.Join(s.dir, segmentName(next))
	if err := writeSegmentHeader(path); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.active = f
	s.activeID = next
	s.size = int64(len(segmentMagic))
	s.total += int64(len(segmentMagic))
	s.segments++
	return nil
}

// Put appends one entry to the log and indexes it. A Put whose serialized
// bytes equal the indexed entry for the same code hash is skipped — the
// entry is already durable — which keeps hot-bytecode traffic from
// growing the log.
func (s *Store) Put(e proxion.CacheEntry) error {
	payload, err := e.MarshalBinary()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if prev, ok := s.index[e.CodeHash]; ok && bytes.Equal(prev, payload) {
		s.skipped++
		return nil
	}
	var rh [recordHeaderSize]byte
	binary.BigEndian.PutUint32(rh[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rh[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.active.Write(rh[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.active.Write(payload); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	n := int64(recordHeaderSize + len(payload))
	s.size += n
	s.total += n
	s.appended++
	s.index[e.CodeHash] = payload
	if s.size >= s.opts.SegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

// Get returns the indexed entry for one code hash.
func (s *Store) Get(codeHash etypes.Hash) (proxion.CacheEntry, bool, error) {
	s.mu.Lock()
	payload, ok := s.index[codeHash]
	s.mu.Unlock()
	if !ok {
		return proxion.CacheEntry{}, false, nil
	}
	var e proxion.CacheEntry
	if err := e.UnmarshalBinary(payload); err != nil {
		return proxion.CacheEntry{}, false, err
	}
	return e, true, nil
}

// Entries decodes every indexed entry, sorted by code hash — the restart
// path that re-seeds detector caches.
func (s *Store) Entries() ([]proxion.CacheEntry, error) {
	s.mu.Lock()
	payloads := make([][]byte, 0, len(s.index))
	for _, p := range s.index {
		payloads = append(payloads, p)
	}
	s.mu.Unlock()
	out := make([]proxion.CacheEntry, 0, len(payloads))
	for _, p := range payloads {
		var e proxion.CacheEntry
		if err := e.UnmarshalBinary(p); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].CodeHash[:], out[j].CodeHash[:]) < 0
	})
	return out, nil
}

// Len returns the number of distinct code hashes indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:        len(s.index),
		Segments:       s.segments,
		Bytes:          s.total,
		Appended:       s.appended,
		SkippedPuts:    s.skipped,
		TruncatedBytes: s.truncated,
		LoadMS:         float64(s.loadDur.Microseconds()) / 1000,
	}
}

// Sync flushes the active segment to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close syncs and closes the store. Further Puts fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.active.Sync(); err != nil {
		s.active.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// VerifyChecksums rescans every segment on disk, validating framing and
// checksums end to end — the store's fsck. It does not modify the log.
func (s *Store) VerifyChecksums() error {
	s.mu.Lock()
	if !s.closed && s.active != nil {
		if err := s.active.Sync(); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("store: %w", err)
		}
	}
	files, err := s.segmentFiles()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	for _, path := range files {
		if err := verifySegment(path); err != nil {
			return err
		}
	}
	return nil
}

// verifySegment checks one segment's header, framing, payload checksums
// and payload decodability.
func verifySegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	name := filepath.Base(path)
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || hdr != segmentMagic {
		return &CorruptionError{Segment: name, Offset: 0, Reason: "bad segment header"}
	}
	off := int64(len(segmentMagic))
	for {
		var rh [recordHeaderSize]byte
		if _, err := io.ReadFull(f, rh[:]); err == io.EOF {
			return nil
		} else if err != nil {
			return &CorruptionError{Segment: name, Offset: off, Reason: "torn record header"}
		}
		plen := binary.BigEndian.Uint32(rh[0:4])
		if plen == 0 || plen > maxRecordBytes {
			return &CorruptionError{Segment: name, Offset: off, Reason: "bad record length"}
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			return &CorruptionError{Segment: name, Offset: off, Reason: "torn record payload"}
		}
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rh[4:8]) {
			return &CorruptionError{Segment: name, Offset: off, Reason: "payload checksum mismatch"}
		}
		var ent proxion.CacheEntry
		if err := ent.UnmarshalBinary(payload); err != nil {
			return &CorruptionError{Segment: name, Offset: off, Reason: err.Error()}
		}
		off += recordHeaderSize + int64(plen)
	}
}
