package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/etypes"
	"repro/internal/proxion"
)

// testEntry builds a distinct, fully-populated cache entry from a seed.
func testEntry(seed byte) proxion.CacheEntry {
	h := func(b byte) (out etypes.Hash) { out[0] = seed; out[31] = b; return }
	a := func(b byte) (out etypes.Address) { out[0] = seed; out[19] = b; return }
	return proxion.CacheEntry{
		CodeHash:   h(0x01),
		FirstAddr:  a(0x02),
		GuardSlots: []etypes.Hash{h(0x03)},
		Verdicts: []proxion.CachedVerdict{
			{
				Fingerprint: h(0x04),
				Forwarded:   true,
				Target:      proxion.TargetStorage,
				ImplSlot:    h(0x05),
				Logic:       a(0x06),
				Reason:      fmt.Sprintf("verdict for seed %d", seed),
			},
		},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	want := make([]proxion.CacheEntry, 0, 8)
	for i := byte(0); i < 8; i++ {
		e := testEntry(i + 1)
		want = append(want, e)
		if err := s.Put(e); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for _, e := range want {
		got, ok, err := s.Get(e.CodeHash)
		if err != nil || !ok {
			t.Fatalf("Get(%v): ok=%v err=%v", e.CodeHash, ok, err)
		}
		if got.FirstAddr != e.FirstAddr || got.Verdicts[0].Reason != e.Verdicts[0].Reason {
			t.Fatalf("entry mutated through the store: %+v", got)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: everything durable, nothing re-appended.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("reopened store has %d entries, want %d", s2.Len(), len(want))
	}
	for _, e := range want {
		got, ok, err := s2.Get(e.CodeHash)
		if err != nil || !ok {
			t.Fatalf("reopened Get(%v): ok=%v err=%v", e.CodeHash, ok, err)
		}
		if got.Verdicts[0].Reason != e.Verdicts[0].Reason {
			t.Fatalf("entry did not survive reopen: %+v", got)
		}
	}
	st := s2.Stats()
	if st.Appended != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("clean reopen reported appends/truncation: %+v", st)
	}
	if err := s2.VerifyChecksums(); err != nil {
		t.Fatalf("VerifyChecksums: %v", err)
	}
}

// TestPutSkipsIdenticalPayloads pins the dedup that keeps hot bytecodes
// from growing the log: a byte-identical re-Put writes nothing.
func TestPutSkipsIdenticalPayloads(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	e := testEntry(1)
	for i := 0; i < 5; i++ {
		if err := s.Put(e); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st := s.Stats()
	if st.Appended != 1 || st.SkippedPuts != 4 {
		t.Fatalf("appended=%d skipped=%d, want 1/4", st.Appended, st.SkippedPuts)
	}

	// A changed entry for the same code hash is appended and last-wins.
	e.Verdicts[0].Reason = "updated"
	if err := s.Put(e); err != nil {
		t.Fatalf("Put updated: %v", err)
	}
	got, ok, err := s.Get(e.CodeHash)
	if err != nil || !ok || got.Verdicts[0].Reason != "updated" {
		t.Fatalf("updated entry not served: ok=%v err=%v got=%+v", ok, err, got)
	}
	if st := s.Stats(); st.Appended != 2 || st.Entries != 1 {
		t.Fatalf("after update: %+v", st)
	}
}

// TestLastRecordWinsAcrossReopen pins that replay applies updates in log
// order: the superseding record, not the original, is served after reopen.
func TestLastRecordWinsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	e := testEntry(1)
	if err := s.Put(e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	e.Verdicts[0].Reason = "second write wins"
	if err := s.Put(e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	got, ok, _ := s2.Get(e.CodeHash)
	if !ok || got.Verdicts[0].Reason != "second write wins" {
		t.Fatalf("replay did not apply last-record-wins: %+v", got)
	}
	if s2.Len() != 1 {
		t.Fatalf("superseded record double-counted: len=%d", s2.Len())
	}
}

// TestSegmentRotation forces tiny segments and checks the log rotates,
// survives reopen, and reads back every entry.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256, NoSync: true})
	const n = 32
	for i := 0; i < n; i++ {
		if err := s.Put(testEntry(byte(i + 1))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation with 256-byte segments, got %d segments", st.Segments)
	}
	s.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(files) != st.Segments {
		t.Fatalf("%d segment files on disk, stats say %d", len(files), st.Segments)
	}

	s2 := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("rotated store reopened with %d entries, want %d", s2.Len(), n)
	}
	entries, err := s2.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(entries) != n {
		t.Fatalf("Entries returned %d, want %d", len(entries), n)
	}
	for i := 1; i < len(entries); i++ {
		if !(entries[i-1].CodeHash.Hex() < entries[i].CodeHash.Hex()) {
			t.Fatalf("Entries not sorted by code hash at %d", i)
		}
	}
	if err := s2.VerifyChecksums(); err != nil {
		t.Fatalf("VerifyChecksums after rotation: %v", err)
	}
}

func TestClosedStoreRefusesPuts(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Put(testEntry(1)); err == nil {
		t.Fatalf("Put on a closed store succeeded")
	}
	// Double close and post-close sync are harmless no-ops.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after Close: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if _, ok, err := s.Get(etypes.Hash{0xde, 0xad}); ok || err != nil {
		t.Fatalf("missing hash: ok=%v err=%v", ok, err)
	}
}

// lastSegment returns the path of the store directory's final segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return files[len(files)-1]
}

// appendBytes appends raw bytes to a file, simulating a torn write.
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatalf("append: %v", err)
	}
	f.Close()
}
