package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// These tests pin the store's crash-recovery contract: a torn record at
// the tail of the final segment (the only damage a crash mid-append can
// produce in an append-only log) is healed with zero loss of previously
// durable verdicts, while damage anywhere else — which only a lying disk
// can produce — refuses to open.

// tornTailCases enumerates the shapes a crash can leave at the log tail.
func tornTailCases() map[string][]byte {
	validPayload := []byte{0x01, 0x02, 0x03, 0x04}
	rec := make([]byte, 8+len(validPayload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(validPayload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(validPayload))
	copy(rec[8:], validPayload)
	return map[string][]byte{
		"partial_header":  {0x00, 0x00, 0x01},
		"header_only":     rec[:8],
		"partial_payload": rec[:10],
		// Framing intact, payload checksummed, but the payload is not a
		// decodable CacheEntry — a write torn inside a buffered batch.
		"undecodable_payload": rec,
		// Length field promises more bytes than the file holds.
		"overlong_length": {0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00, 0x00},
	}
}

// TestKillMidWriteRecovery is the acceptance property: fill a store,
// simulate a crash mid-append by appending each torn-tail shape, and
// require reopen to serve every previously durable verdict with the torn
// bytes truncated away.
func TestKillMidWriteRecovery(t *testing.T) {
	for name, torn := range tornTailCases() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			const n = 6
			for i := byte(0); i < n; i++ {
				if err := s.Put(testEntry(i + 1)); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			s.Close()

			seg := lastSegment(t, dir)
			before, _ := os.Stat(seg)
			appendBytes(t, seg, torn)

			s2 := mustOpen(t, dir, Options{})
			defer s2.Close()
			if s2.Len() != n {
				t.Fatalf("recovered %d entries, want %d (zero verdict loss)", s2.Len(), n)
			}
			for i := byte(0); i < n; i++ {
				want := testEntry(i + 1)
				got, ok, err := s2.Get(want.CodeHash)
				if err != nil || !ok || got.Verdicts[0].Reason != want.Verdicts[0].Reason {
					t.Fatalf("verdict %d lost in recovery: ok=%v err=%v", i, ok, err)
				}
			}
			st := s2.Stats()
			if st.TruncatedBytes != int64(len(torn)) {
				t.Fatalf("TruncatedBytes=%d, want %d", st.TruncatedBytes, len(torn))
			}
			after, _ := os.Stat(seg)
			if after.Size() != before.Size() {
				t.Fatalf("segment not truncated back: %d -> %d bytes, want %d",
					before.Size(), after.Size(), before.Size())
			}
			// The healed log is fully valid again.
			if err := s2.VerifyChecksums(); err != nil {
				t.Fatalf("VerifyChecksums after recovery: %v", err)
			}
			// And writable: the interrupted Put can simply be retried.
			if err := s2.Put(testEntry(0x77)); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
		})
	}
}

// TestTornHeaderHealing covers the narrower crash window during segment
// creation: a header shorter than the magic is reset to an empty segment.
func TestTornHeaderHealing(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(testEntry(1)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.Close()

	// A crash between "create next segment" and "write its header".
	short, err := os.Create(lastSegment(t, dir) + ".tmp")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	short.Write(segmentMagic[:3])
	short.Close()
	os.Rename(short.Name(), lastSegment(t, dir)[:len(lastSegment(t, dir))-len(".log")]+"z.log")

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("recovered %d entries, want 1", s2.Len())
	}
	if st := s2.Stats(); st.TruncatedBytes != 3 {
		t.Fatalf("TruncatedBytes=%d, want 3", st.TruncatedBytes)
	}
	if err := s2.Put(testEntry(2)); err != nil {
		t.Fatalf("Put into healed segment: %v", err)
	}
}

// corruptAt flips one byte of a file in place.
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("read: %v", err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatalf("write: %v", err)
	}
}

// TestInteriorCorruptionRefusesOpen: a checksum failure that is NOT at the
// log tail cannot be a torn write — the store refuses to open rather than
// silently dropping verdicts that were durable.
func TestInteriorCorruptionRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := byte(0); i < 4; i++ {
		if err := s.Put(testEntry(i + 1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	s.Close()

	// Flip a payload byte of the FIRST record (offset: 8 magic + 8 header).
	corruptAt(t, lastSegment(t, dir), 8+8+2)

	_, err := Open(dir, Options{})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("interior corruption opened anyway: err=%v", err)
	}
	if ce.Reason == "" || ce.Segment == "" {
		t.Fatalf("CorruptionError missing context: %+v", ce)
	}
}

// TestNonFinalSegmentTornTailRefusesOpen: a truncated record in a sealed
// (non-final) segment is not a crash signature — appends only ever touch
// the last segment — so it must refuse, not heal.
func TestNonFinalSegmentTornTailRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256, NoSync: true})
	for i := byte(0); i < 16; i++ {
		if err := s.Put(testEntry(i + 1)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if s.Stats().Segments < 2 {
		t.Fatalf("need ≥2 segments for this test")
	}
	s.Close()

	// Truncate the FIRST segment mid-record.
	first := filepath.Join(dir, segmentName(0))
	st, _ := os.Stat(first)
	if err := os.Truncate(first, st.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	_, err := Open(dir, Options{})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("torn non-final segment opened anyway: err=%v", err)
	}
}

// TestBadMagicRefusesOpen: a segment whose header is not the store's magic
// is not this store's file — refuse rather than misparse.
func TestBadMagicRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put(testEntry(1))
	s.Close()

	corruptAt(t, lastSegment(t, dir), 0)
	_, err := Open(dir, Options{})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("bad magic opened anyway: err=%v", err)
	}
}

// TestVerifyChecksumsDetectsBitRot: VerifyChecksums is the fsck — it must
// catch damage even where Open's tail-healing would have truncated it.
func TestVerifyChecksumsDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := byte(0); i < 3; i++ {
		s.Put(testEntry(i + 1))
	}
	if err := s.VerifyChecksums(); err != nil {
		t.Fatalf("clean store failed fsck: %v", err)
	}
	seg := lastSegment(t, dir)
	s.Close()

	st, _ := os.Stat(seg)
	corruptAt(t, seg, st.Size()-1) // last byte: Open would heal, fsck must flag
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("tail corruption should have healed on open: %v", err)
	}
	defer s2.Close()
	if s2.Stats().TruncatedBytes == 0 {
		t.Fatalf("expected tail truncation")
	}
	if err := s2.VerifyChecksums(); err != nil {
		t.Fatalf("healed store failed fsck: %v", err)
	}
}
