// Package etypes holds the small Ethereum domain types shared across the
// repository: 20-byte account addresses and 32-byte hashes/words, plus the
// address-derivation rules for contract creation.
package etypes

import (
	"encoding/hex"
	"fmt"

	"repro/internal/keccak"
	"repro/internal/u256"
)

// Address is a 20-byte Ethereum account address.
type Address [20]byte

// Hash is a 32-byte value: a Keccak-256 digest or a raw storage word.
type Hash [32]byte

// ZeroAddress is the all-zero address.
var ZeroAddress Address

// HexToAddress parses a 0x-prefixed or bare 40-digit hex address.
func HexToAddress(s string) (Address, error) {
	if len(s) >= 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	var a Address
	if len(s) != 40 {
		return a, fmt.Errorf("etypes: address hex must be 40 digits, got %d", len(s))
	}
	if _, err := hex.Decode(a[:], []byte(s)); err != nil {
		return a, fmt.Errorf("etypes: bad address %q: %w", s, err)
	}
	return a, nil
}

// MustAddress is HexToAddress that panics on malformed input.
func MustAddress(s string) Address {
	a, err := HexToAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

// BytesToAddress truncates/left-pads b into an address, keeping the trailing
// 20 bytes (EVM address coercion).
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > 20 {
		b = b[len(b)-20:]
	}
	copy(a[20-len(b):], b)
	return a
}

// Hex returns the 0x-prefixed lowercase hex form.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String implements fmt.Stringer.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool { return a == Address{} }

// Word returns the address left-padded to a 32-byte word.
func (a Address) Word() u256.Int { return u256.FromBytes(a[:]) }

// AddressFromWord extracts the low 20 bytes of a word as an address.
func AddressFromWord(w u256.Int) Address {
	buf := w.Bytes32()
	return BytesToAddress(buf[12:])
}

// Hex returns the 0x-prefixed lowercase hex form.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer.
func (h Hash) String() string { return h.Hex() }

// Word returns the hash as a 256-bit word.
func (h Hash) Word() u256.Int { return u256.FromBytes32(h) }

// SelectorBytes returns the first four bytes of the hash — the function
// selector when the hash is a Keccak of a function prototype.
func (h Hash) SelectorBytes() [4]byte { return [4]byte{h[0], h[1], h[2], h[3]} }

// HashFromWord converts a word to a Hash.
func HashFromWord(w u256.Int) Hash { return Hash(w.Bytes32()) }

// Keccak returns the Keccak-256 hash of data as a Hash.
func Keccak(data []byte) Hash { return Hash(keccak.Sum256(data)) }

// CreateAddress derives the address of a contract created by sender with the
// given account nonce: keccak(rlp([sender, nonce]))[12:].
func CreateAddress(sender Address, nonce uint64) Address {
	enc := rlpList(rlpBytes(sender[:]), rlpUint(nonce))
	h := keccak.Sum256(enc)
	return BytesToAddress(h[12:])
}

// CreateAddress2 derives the CREATE2 address:
// keccak(0xff ++ sender ++ salt ++ keccak(initCode))[12:].
func CreateAddress2(sender Address, salt Hash, initCode []byte) Address {
	codeHash := keccak.Sum256(initCode)
	buf := make([]byte, 0, 1+20+32+32)
	buf = append(buf, 0xff)
	buf = append(buf, sender[:]...)
	buf = append(buf, salt[:]...)
	buf = append(buf, codeHash[:]...)
	h := keccak.Sum256(buf)
	return BytesToAddress(h[12:])
}

// rlpBytes encodes a byte string per RLP. Only the short forms needed for
// address derivation are implemented.
func rlpBytes(b []byte) []byte {
	if len(b) == 1 && b[0] < 0x80 {
		return []byte{b[0]}
	}
	if len(b) <= 55 {
		return append([]byte{0x80 + byte(len(b))}, b...)
	}
	panic("etypes: rlpBytes only supports short strings")
}

// rlpUint encodes an unsigned integer per RLP (minimal big-endian bytes;
// zero encodes as the empty string).
func rlpUint(v uint64) []byte {
	if v == 0 {
		return []byte{0x80}
	}
	var tmp [8]byte
	n := 0
	for i := 7; i >= 0; i-- {
		tmp[i] = byte(v)
		v >>= 8
		n++
		if v == 0 {
			break
		}
	}
	return rlpBytes(tmp[8-n:])
}

// rlpList encodes a list of already-encoded items.
func rlpList(items ...[]byte) []byte {
	var payload []byte
	for _, it := range items {
		payload = append(payload, it...)
	}
	if len(payload) > 55 {
		panic("etypes: rlpList only supports short lists")
	}
	return append([]byte{0xc0 + byte(len(payload))}, payload...)
}
