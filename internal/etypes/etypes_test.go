package etypes

import (
	"testing"

	"repro/internal/u256"
)

func TestHexToAddress(t *testing.T) {
	a, err := HexToAddress("0xdAC17F958D2ee523a2206206994597C13D831ec7")
	if err != nil {
		t.Fatal(err)
	}
	if a.Hex() != "0xdac17f958d2ee523a2206206994597c13d831ec7" {
		t.Errorf("round trip: %s", a.Hex())
	}
	if _, err := HexToAddress("0x1234"); err == nil {
		t.Error("short address should fail")
	}
	if _, err := HexToAddress("zz" + a.Hex()[4:]); err == nil {
		t.Error("bad digits should fail")
	}
}

func TestAddressWordRoundTrip(t *testing.T) {
	a := MustAddress("0x00000000000000000000000000000000deadbeef")
	w := a.Word()
	if got := AddressFromWord(w); got != a {
		t.Errorf("word round trip: %s", got)
	}
	if w.Uint64() != 0xdeadbeef {
		t.Errorf("low bits: %s", w)
	}
}

func TestBytesToAddressTruncation(t *testing.T) {
	long := make([]byte, 32)
	long[31] = 0x7f
	long[0] = 0xff // must be discarded
	a := BytesToAddress(long)
	if a[19] != 0x7f || a[0] != 0 {
		t.Errorf("truncation wrong: %s", a)
	}
	short := []byte{0xab}
	b := BytesToAddress(short)
	if b[19] != 0xab || b[0] != 0 {
		t.Errorf("padding wrong: %s", b)
	}
}

func TestCreateAddressKnownVector(t *testing.T) {
	// Known mainnet derivation: sender 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0
	// with nonce 0 creates 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d
	// (the CryptoKitties deployment, a classic fixture).
	sender := MustAddress("0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0")
	got := CreateAddress(sender, 0)
	want := MustAddress("0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d")
	if got != want {
		t.Errorf("CreateAddress nonce 0 = %s, want %s", got, want)
	}
}

func TestCreateAddressNonceChanges(t *testing.T) {
	sender := MustAddress("0x1111111111111111111111111111111111111111")
	seen := map[Address]bool{}
	for n := uint64(0); n < 300; n++ {
		a := CreateAddress(sender, n)
		if seen[a] {
			t.Fatalf("duplicate address at nonce %d", n)
		}
		seen[a] = true
	}
}

func TestCreateAddress2KnownVector(t *testing.T) {
	// EIP-1014 example 0: address 0x0, salt 0x0, init_code 0x00
	// => 0x4D1A2e2bB4F88F0250f26Ffff098B0b30B26BF38.
	got := CreateAddress2(ZeroAddress, Hash{}, []byte{0x00})
	want := MustAddress("0x4D1A2e2bB4F88F0250f26Ffff098B0b30B26BF38")
	if got != want {
		t.Errorf("CreateAddress2 = %s, want %s", got, want)
	}
}

func TestHashWordRoundTrip(t *testing.T) {
	w := u256.MustHex("0x360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc")
	h := HashFromWord(w)
	if !h.Word().Eq(w) {
		t.Error("hash/word round trip failed")
	}
}
