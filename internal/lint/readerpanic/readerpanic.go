// Package readerpanic is a custom vet pass enforcing the chain.Reader
// failure contract: a fallible Reader implementation (the resilient
// client) reports a terminal read failure by panicking with a
// *chain.ReadError, and every code path that performs Reader reads must
// therefore run under chain.CaptureReadError — otherwise one contract's
// exhausted retries crash the whole process instead of degrading that
// contract to Unresolved.
//
// The pass is intraprocedural-plus-closure, built on the standard
// library's go/ast alone (the go/analysis framework lives in
// golang.org/x/tools, which this zero-dependency module does not pull
// in). Per package it:
//
//  1. collects the names declared with type chain.Reader (struct
//     fields, parameters, variables, method receivers) — the "reader
//     names";
//  2. treats a call reader.M(...) or x.reader.M(...) for a Reader
//     interface method M as a read site;
//  3. marks a read site guarded when it sits lexically inside the
//     function literal passed to chain.CaptureReadError — a literal
//     launched with `go` resets the guard, because a panic in a fresh
//     goroutine escapes any recover on the spawning stack;
//  4. seeds a "capture-dominated" set with the same-package functions
//     called inside capture literals and closes it over the
//     same-package call graph: everything a dominated function calls
//     also runs under the capture.
//
// A read site that is neither lexically guarded nor inside a
// capture-dominated function is a finding. The package defining the
// contract (chain) and the package implementing the panicking client
// (faultchain) are exempt, as are _test.go files — tests exercise the
// contract deliberately. A `readerpanic:ignore` comment on the line of
// the call (or the line above) suppresses a finding for code whose
// guard lives across a package boundary the pass cannot see.
package readerpanic

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// readerMethods are the chain.Reader interface methods that hit the node
// and may therefore panic on a fallible implementation. APICalls is
// deliberately absent: the contract defines it as a local race-free
// counter, never a node round-trip.
var readerMethods = map[string]bool{
	"Config": true, "CurrentBlock": true, "LatestHeader": true,
	"HeaderByNumber": true, "Contracts": true, "Code": true,
	"CodeHash": true, "CreatedAt": true, "Exists": true,
	"GetState": true, "GetBalance": true, "GetNonce": true,
	"TxSelectors": true, "GetStorageAt": true,
}

// exemptPackages either define the contract or implement the panicking
// side of it.
var exemptPackages = map[string]bool{"chain": true, "faultchain": true}

// Finding is one unguarded Reader read.
type Finding struct {
	Pos  token.Position
	Func string // enclosing function ("" at package scope)
	Call string // rendered call target, e.g. "d.chain.GetState"
}

func (f Finding) String() string {
	where := f.Func
	if where == "" {
		where = "package scope"
	}
	return fmt.Sprintf("%s: %s called in %s outside chain.CaptureReadError",
		f.Pos, f.Call, where)
}

// CheckPackage analyzes one package's parsed files (tests excluded by the
// caller) and returns the unguarded read sites.
func CheckPackage(fset *token.FileSet, pkgName string, files []*ast.File) []Finding {
	if exemptPackages[pkgName] {
		return nil
	}
	p := &pass{fset: fset, readers: map[string]bool{}, fileIgnores: map[string]map[int]bool{}}
	for _, f := range files {
		p.collectReaderNames(f)
		p.collectIgnores(f)
	}
	for _, f := range files {
		p.collectSites(f)
	}
	p.closeDominated()
	var out []Finding
	for _, s := range p.sites {
		if s.guarded || p.dominated[s.fn] || p.ignored(s.pos) {
			continue
		}
		out = append(out, Finding{Pos: p.fset.Position(s.pos), Func: s.fn, Call: s.call})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

type site struct {
	pos     token.Pos
	fn      string // enclosing function name ("" at package scope)
	call    string
	guarded bool
}

type pass struct {
	fset         *token.FileSet
	readers      map[string]bool         // names declared with type chain.Reader
	fileIgnores  map[string]map[int]bool // file -> lines a readerpanic:ignore covers
	ignoredFiles []string                // files carrying readerpanic:ignore-file
	sites        []site
	// seeds are same-package functions invoked inside capture literals;
	// calls maps each function to every same-package-looking callee name.
	seeds     map[string]bool
	calls     map[string]map[string]bool
	funcs     map[string]bool // declared function/method names in the package
	dominated map[string]bool
}

// isReaderType reports whether an ast type expression is chain.Reader.
func isReaderType(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reader" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "chain"
}

// collectReaderNames gathers every identifier declared with the
// chain.Reader type: struct fields, function parameters and results,
// and var declarations.
func (p *pass) collectReaderNames(f *ast.File) {
	addNames := func(names []*ast.Ident, t ast.Expr) {
		if !isReaderType(t) {
			return
		}
		for _, n := range names {
			p.readers[n.Name] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field:
			addNames(n.Names, n.Type)
		case *ast.ValueSpec:
			if n.Type != nil {
				addNames(n.Names, n.Type)
			}
		}
		return true
	})
}

// collectIgnores records which lines a readerpanic:ignore comment
// covers: the comment's own line (trailing form) and the line below
// (preceding form). A readerpanic:ignore-file comment suppresses the
// whole file — for code whose capture guard is installed by a caller in
// another package (e.g. interface callbacks the emulator invokes only
// under the probe's capture).
func (p *pass) collectIgnores(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, "readerpanic:ignore") {
				continue
			}
			pos := p.fset.Position(c.Pos())
			if strings.Contains(c.Text, "readerpanic:ignore-file") {
				p.ignoredFiles = append(p.ignoredFiles, pos.Filename)
				continue
			}
			m := p.fileIgnores[pos.Filename]
			if m == nil {
				m = map[int]bool{}
				p.fileIgnores[pos.Filename] = m
			}
			m[pos.Line] = true
			m[pos.Line+1] = true
		}
	}
}

func (p *pass) ignored(pos token.Pos) bool {
	pp := p.fset.Position(pos)
	for _, f := range p.ignoredFiles {
		if f == pp.Filename {
			return true
		}
	}
	return p.fileIgnores[pp.Filename][pp.Line]
}

// isCaptureCall reports whether a call expression is
// chain.CaptureReadError(...) (or a dot-imported CaptureReadError).
func isCaptureCall(c *ast.CallExpr) bool {
	switch fn := c.Fun.(type) {
	case *ast.SelectorExpr:
		id, ok := fn.X.(*ast.Ident)
		return ok && id.Name == "chain" && fn.Sel.Name == "CaptureReadError"
	case *ast.Ident:
		return fn.Name == "CaptureReadError"
	}
	return false
}

// readerCall returns the rendered target if c is a Reader read on a
// reader-typed name ("reader.Code", "d.chain.GetState").
func (p *pass) readerCall(c *ast.CallExpr) (string, bool) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok || !readerMethods[sel.Sel.Name] {
		return "", false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		if p.readers[x.Name] {
			return x.Name + "." + sel.Sel.Name, true
		}
	case *ast.SelectorExpr:
		if p.readers[x.Sel.Name] {
			base := "?"
			if id, ok := x.X.(*ast.Ident); ok {
				base = id.Name
			}
			return base + "." + x.Sel.Name + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

// calleeName returns the bare name of a same-package-looking callee:
// foo(...) or recv.foo(...) where recv is not a package qualifier we can
// rule out. Conservative over-approximation — resolving method sets
// needs type information.
func calleeName(c *ast.CallExpr) (string, bool) {
	switch fn := c.Fun.(type) {
	case *ast.Ident:
		return fn.Name, true
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	}
	return "", false
}

// collectSites walks one file recording read sites, capture seeds, the
// package call graph, and declared function names.
func (p *pass) collectSites(f *ast.File) {
	if p.seeds == nil {
		p.seeds = map[string]bool{}
		p.calls = map[string]map[string]bool{}
		p.funcs = map[string]bool{}
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			if gd, ok := decl.(*ast.GenDecl); ok {
				p.walkBody(gd, "", false)
			}
			continue
		}
		p.funcs[fd.Name.Name] = true
		if fd.Body != nil {
			p.walkBody(fd.Body, fd.Name.Name, false)
		}
	}
}

// walkBody records sites under node, attributed to function fn, with the
// given lexical guard state. It recurses manually so the guard can flip
// on capture literals and reset on `go` literals.
func (p *pass) walkBody(node ast.Node, fn string, guarded bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned function runs on a fresh stack: any recover
			// installed here does not cover it.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				for _, arg := range n.Call.Args {
					p.walkBody(arg, fn, guarded)
				}
				p.walkBody(lit.Body, fn, false)
				return false
			}
			return true
		case *ast.CallExpr:
			if isCaptureCall(n) {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						p.seedCaptured(lit.Body)
						p.walkBody(lit.Body, fn, true)
					} else {
						p.walkBody(arg, fn, guarded)
					}
				}
				return false
			}
			if call, ok := p.readerCall(n); ok {
				p.sites = append(p.sites, site{pos: n.Pos(), fn: fn, call: call, guarded: guarded})
			}
			if callee, ok := calleeName(n); ok && fn != "" {
				m := p.calls[fn]
				if m == nil {
					m = map[string]bool{}
					p.calls[fn] = m
				}
				m[callee] = true
			}
			return true
		}
		return true
	})
}

// seedCaptured marks every callee inside a capture literal as a
// dominated-set seed.
func (p *pass) seedCaptured(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if name, ok := calleeName(c); ok {
				p.seeds[name] = true
			}
		}
		return true
	})
}

// closeDominated computes the transitive closure: a function called
// inside a capture literal is dominated, and so is everything a
// dominated function calls.
func (p *pass) closeDominated() {
	p.dominated = map[string]bool{}
	var queue []string
	for name := range p.seeds {
		if p.funcs[name] && !p.dominated[name] {
			p.dominated[name] = true
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for callee := range p.calls[fn] {
			if p.funcs[callee] && !p.dominated[callee] {
				p.dominated[callee] = true
				queue = append(queue, callee)
			}
		}
	}
}

// CheckDir parses the non-test Go files of one directory as a package
// and checks them. A directory with no Go files yields no findings.
func CheckDir(fset *token.FileSet, dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		pkgName = f.Name.Name
	}
	if len(files) == 0 {
		return nil, nil
	}
	return CheckPackage(fset, pkgName, files), nil
}

// CheckTree walks root for Go packages (skipping hidden directories and
// testdata) and checks each one.
func CheckTree(root string) ([]Finding, error) {
	fset := token.NewFileSet()
	var out []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return fs.SkipDir
		}
		found, err := CheckDir(fset, path)
		if err != nil {
			return err
		}
		out = append(out, found...)
		return nil
	})
	return out, err
}
