package readerpanic

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"
)

// check parses one in-memory source file and runs the pass on it.
func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	return CheckPackage(fset, f.Name.Name, []*ast.File{f})
}

const header = `package fixture

import "repro/internal/chain"

type thing struct{ reader chain.Reader }
`

func TestFlagsUnguardedRead(t *testing.T) {
	fs := check(t, header+`
func (th *thing) bad(a Addr) []byte {
	return th.reader.Code(a)
}
`)
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly the raw Code read", fs)
	}
	if fs[0].Func != "bad" || fs[0].Call != "th.reader.Code" {
		t.Fatalf("finding = %+v", fs[0])
	}
}

func TestAcceptsLexicalGuard(t *testing.T) {
	fs := check(t, header+`
func (th *thing) ok(a Addr) (code []byte) {
	chain.CaptureReadError(func() { code = th.reader.Code(a) })
	return code
}
`)
	if len(fs) != 0 {
		t.Fatalf("guarded read flagged: %v", fs)
	}
}

func TestAcceptsCaptureDominatedCallee(t *testing.T) {
	fs := check(t, header+`
func (th *thing) entry(a Addr) (code []byte) {
	chain.CaptureReadError(func() { code = th.inner(a) })
	return code
}

func (th *thing) inner(a Addr) []byte { return th.deeper(a) }

func (th *thing) deeper(a Addr) []byte { return th.reader.Code(a) }
`)
	if len(fs) != 0 {
		t.Fatalf("capture-dominated read flagged: %v", fs)
	}
}

func TestFlagsUndominatedSibling(t *testing.T) {
	fs := check(t, header+`
func (th *thing) entry(a Addr) (code []byte) {
	chain.CaptureReadError(func() { code = th.inner(a) })
	return code
}

func (th *thing) inner(a Addr) []byte { return th.reader.Code(a) }

func (th *thing) stray(a Addr) []byte { return th.reader.Code(a) }
`)
	if len(fs) != 1 || fs[0].Func != "stray" {
		t.Fatalf("findings = %v, want exactly the read in stray", fs)
	}
}

// TestGoroutineEscapesGuard pins the subtle case: a panic inside a
// spawned goroutine is NOT covered by a recover on the spawning stack,
// so a `go` literal inside the capture must reset the guard.
func TestGoroutineEscapesGuard(t *testing.T) {
	fs := check(t, header+`
func (th *thing) leaky(a Addr) {
	chain.CaptureReadError(func() {
		go func() { _ = th.reader.Code(a) }()
	})
}
`)
	if len(fs) != 1 || fs[0].Func != "leaky" {
		t.Fatalf("findings = %v, want the goroutine-escaped read", fs)
	}
}

func TestParameterTypedReader(t *testing.T) {
	fs := check(t, `package fixture

import "repro/internal/chain"

func head(r chain.Reader) uint64 { return r.CurrentBlock() }
`)
	if len(fs) != 1 || fs[0].Call != "r.CurrentBlock" {
		t.Fatalf("findings = %v, want the parameter read", fs)
	}
}

func TestIgnoreComment(t *testing.T) {
	fs := check(t, header+`
func (th *thing) blessed(a Addr) []byte {
	return th.reader.Code(a) // readerpanic:ignore
}

func (th *thing) blessedAbove(a Addr) bool {
	// readerpanic:ignore
	return th.reader.Exists(a)
}
`)
	if len(fs) != 0 {
		t.Fatalf("ignored reads flagged: %v", fs)
	}
}

func TestIgnoreFileComment(t *testing.T) {
	fs := check(t, `package fixture

// readerpanic:ignore-file — fixture-wide escape.

import "repro/internal/chain"

type thing struct{ reader chain.Reader }

func (th *thing) anything(a Addr) []byte { return th.reader.Code(a) }
`)
	if len(fs) != 0 {
		t.Fatalf("ignore-file read flagged: %v", fs)
	}
}

func TestExemptPackagesAndLocalCounter(t *testing.T) {
	// Package faultchain implements the panicking side of the contract.
	fs := check(t, `package faultchain

import "repro/internal/chain"

type c struct{ inner chain.Reader }

func (x *c) raw(a Addr) []byte { return x.inner.Code(a) }
`)
	if len(fs) != 0 {
		t.Fatalf("exempt package flagged: %v", fs)
	}
	// APICalls is a local counter by contract, never a node read.
	fs = check(t, header+`
func (th *thing) count() int64 { return th.reader.APICalls() }
`)
	if len(fs) != 0 {
		t.Fatalf("APICalls flagged: %v", fs)
	}
}

// TestRepoIsClean is the self-test: the repository itself must satisfy
// the Reader contract the lint enforces.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
