package pipeline

import "sync/atomic"

// Counter is an atomic int64 with a JSON-friendly name. It is safe to
// update from any number of stage workers.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Stats holds the run-wide counters of one analysis pipeline execution.
// Stage-local counts (items processed, busy time) live on the stages;
// these are the cross-cutting totals the paper's Section 6.1 reports on.
// All fields are safe for concurrent update while the pipeline runs.
type Stats struct {
	// Scanned counts items fed into the pipeline.
	Scanned Counter
	// NoCode counts addresses rejected for holding no bytecode.
	NoCode Counter
	// FilterRejected counts contracts rejected by the disassembly filter
	// (no DELEGATECALL opcode) without an emulation.
	FilterRejected Counter
	// Emulations counts full EVM emulation probes actually executed.
	Emulations Counter
	// CacheHits counts detection verdicts served from the bytecode-dedup
	// cache instead of a fresh emulation — exact bytecode-hash hits plus
	// structural near-clone promotions.
	CacheHits Counter
	// StructuralHits counts the subset of CacheHits served by structural
	// fingerprint promotion: a distinct bytecode whose verdict was
	// re-anchored from its near-clone family exemplar without emulating.
	StructuralHits Counter
	// StaticSummaries counts static bytecode analyses performed by the
	// structural layer (family exemplar cross-checks and follower
	// promotion attempts).
	StaticSummaries Counter
	// StructuralRejects counts contracts the structural layer examined and
	// refused — an exemplar whose static summary disagreed with its
	// dynamic verdict, or a follower whose summary did not fit its family
	// — falling back to a fresh emulation.
	StructuralRejects Counter
	// EmulationAborts counts probes that ended in a terminal EVM error.
	EmulationAborts Counter
	// ProxiesDetected counts positive verdicts.
	ProxiesDetected Counter
	// PairsAnalyzed counts proxy/logic pairs through collision analysis.
	PairsAnalyzed Counter
	// HistoriesRecovered counts proxies whose full logic history was
	// recovered (only when the history stage is enabled).
	HistoriesRecovered Counter
	// StorageAPICalls is the number of archive getStorageAt calls the run
	// issued; set once at the end from the chain's counter delta.
	StorageAPICalls Counter
	// Unresolved counts contracts whose chain reads terminally failed and
	// that were degraded to an explicit Unresolved report instead of being
	// dropped; always zero over a fault-free node.
	Unresolved Counter
	// Retries counts read re-attempts by the resilient chain client; set
	// once at the end from the client's counter delta. Deterministic for a
	// fixed fault schedule below the retry budget: every faulted read fails
	// exactly its scheduled number of attempts, whatever the interleaving.
	Retries Counter
	// BreakerTrips counts closed→open circuit breaker transitions during
	// the run; like Retries, a client counter delta.
	BreakerTrips Counter
}

// StageSnapshot is the frozen instrumentation of one stage.
type StageSnapshot struct {
	Name      string  `json:"name"`
	Workers   int     `json:"workers"`
	Processed int64   `json:"processed"`
	BusyMS    float64 `json:"busy_ms"`
}

// Snapshot is the JSON-serializable summary of one pipeline run: the
// run-wide counters plus per-stage instrumentation. It is immutable once
// taken.
type Snapshot struct {
	Contracts       int64   `json:"contracts"`
	WallMS          float64 `json:"wall_ms"`
	ContractsPerSec float64 `json:"contracts_per_sec"`

	NoCode         int64 `json:"no_code"`
	FilterRejected int64 `json:"filter_rejected"`

	Emulations        int64   `json:"emulations"`
	CacheHits         int64   `json:"cache_hits"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	StructuralHits    int64   `json:"structural_hits"`
	StaticSummaries   int64   `json:"static_summaries"`
	StructuralRejects int64   `json:"structural_rejects"`
	EmulationAborts   int64   `json:"emulation_aborts"`

	ProxiesDetected    int64 `json:"proxies_detected"`
	PairsAnalyzed      int64 `json:"pairs_analyzed"`
	HistoriesRecovered int64 `json:"histories_recovered,omitempty"`
	StorageAPICalls    int64 `json:"get_storage_at_calls"`

	Unresolved   int64 `json:"unresolved"`
	Retries      int64 `json:"read_retries"`
	BreakerTrips int64 `json:"breaker_trips"`

	Stages []StageSnapshot `json:"stages"`
}

// Counters exports the snapshot's deterministic run counters keyed by
// their JSON field names. "Deterministic" means: for a fixed input chain
// the values depend only on the analyzed contracts, never on scheduling,
// worker counts, or wall-clock — so two runs over the same seeded corpus
// must produce byte-identical maps. Wall-clock-derived fields (wall_ms,
// contracts_per_sec, cache_hit_rate, per-stage busy time) are deliberately
// excluded. Per-stage item counts are exported as stage_<name>_processed.
//
// This is the export hook the benchmark subsystem (internal/bench) records
// into BENCH_*.json reports and its regression gate compares across runs.
func (s *Snapshot) Counters() map[string]int64 {
	m := map[string]int64{
		"contracts":            s.Contracts,
		"no_code":              s.NoCode,
		"filter_rejected":      s.FilterRejected,
		"emulations":           s.Emulations,
		"cache_hits":           s.CacheHits,
		"structural_hits":      s.StructuralHits,
		"static_summaries":     s.StaticSummaries,
		"structural_rejects":   s.StructuralRejects,
		"emulation_aborts":     s.EmulationAborts,
		"proxies_detected":     s.ProxiesDetected,
		"pairs_analyzed":       s.PairsAnalyzed,
		"histories_recovered":  s.HistoriesRecovered,
		"get_storage_at_calls": s.StorageAPICalls,
		"unresolved":           s.Unresolved,
		"read_retries":         s.Retries,
		"breaker_trips":        s.BreakerTrips,
	}
	for _, st := range s.Stages {
		m["stage_"+st.Name+"_processed"] = st.Processed
	}
	return m
}

// Snapshot freezes the engine's stage instrumentation together with the
// run-wide stats into a serializable record. Call it after Wait.
func (e *Engine) Snapshot(st *Stats) *Snapshot {
	wall := e.Wall()
	snap := &Snapshot{
		Contracts:          st.Scanned.Load(),
		WallMS:             float64(wall.Microseconds()) / 1000,
		NoCode:             st.NoCode.Load(),
		FilterRejected:     st.FilterRejected.Load(),
		Emulations:         st.Emulations.Load(),
		CacheHits:          st.CacheHits.Load(),
		StructuralHits:     st.StructuralHits.Load(),
		StaticSummaries:    st.StaticSummaries.Load(),
		StructuralRejects:  st.StructuralRejects.Load(),
		EmulationAborts:    st.EmulationAborts.Load(),
		ProxiesDetected:    st.ProxiesDetected.Load(),
		PairsAnalyzed:      st.PairsAnalyzed.Load(),
		HistoriesRecovered: st.HistoriesRecovered.Load(),
		StorageAPICalls:    st.StorageAPICalls.Load(),
		Unresolved:         st.Unresolved.Load(),
		Retries:            st.Retries.Load(),
		BreakerTrips:       st.BreakerTrips.Load(),
	}
	if secs := wall.Seconds(); secs > 0 {
		snap.ContractsPerSec = float64(snap.Contracts) / secs
	}
	if lookups := snap.CacheHits + snap.Emulations; lookups > 0 {
		snap.CacheHitRate = float64(snap.CacheHits) / float64(lookups)
	}
	for _, s := range e.stages {
		snap.Stages = append(snap.Stages, StageSnapshot{
			Name:      s.name,
			Workers:   s.workers,
			Processed: s.processed.Load(),
			BusyMS:    float64(s.busy.Load()) / 1e6,
		})
	}
	return snap
}
