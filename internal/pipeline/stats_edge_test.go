package pipeline_test

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/pipeline"
)

// TestSnapshotZeroItems runs a full multi-stage pipeline over an empty
// stream: every derived snapshot field must come out zero and finite —
// in particular the cache hit rate, whose denominator (hits + emulations)
// is zero on a run that never probed anything.
func TestSnapshotZeroItems(t *testing.T) {
	e := pipeline.New()
	stA := e.NewStage("a", 3)
	stB := e.NewStage("b", 2)
	aCh := make(chan item, 4)
	bCh := make(chan item, 4)
	var st pipeline.Stats

	e.Go(func() { close(aCh) })
	pipeline.Run(e, stA, aCh, func(it item) { bCh <- it }, func() { close(bCh) })
	pipeline.Run(e, stB, bCh, func(item) {}, nil)
	e.Wait()

	snap := e.Snapshot(&st)
	if snap.Contracts != 0 {
		t.Errorf("contracts = %d, want 0", snap.Contracts)
	}
	for name, v := range map[string]float64{
		"cache_hit_rate":    snap.CacheHitRate,
		"contracts_per_sec": snap.ContractsPerSec,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v on a zero-item run, want finite", name, v)
		}
		if v != 0 {
			t.Errorf("%s = %v on a zero-item run, want 0", name, v)
		}
	}
	if len(snap.Stages) != 2 {
		t.Fatalf("snapshot has %d stages, want 2", len(snap.Stages))
	}
	for _, s := range snap.Stages {
		if s.Processed != 0 {
			t.Errorf("stage %s processed %d on an empty stream", s.Name, s.Processed)
		}
	}
}

// TestSingleWorkerSerial pins the single-worker contract: with a pool of
// one, the stage function never runs concurrently with itself and items
// are handled in exact channel order.
func TestSingleWorkerSerial(t *testing.T) {
	const n = 200
	e := pipeline.New()
	s := e.NewStage("solo", 1)
	in := make(chan item) // unbuffered: order is the send order

	var inFlight atomic.Int32
	var order []int
	e.Go(func() {
		for i := 0; i < n; i++ {
			in <- item{idx: i}
		}
		close(in)
	})
	pipeline.Run(e, s, in, func(it item) {
		if inFlight.Add(1) != 1 {
			t.Errorf("single-worker stage ran concurrently at item %d", it.idx)
		}
		order = append(order, it.idx) // safe: only one worker touches it
		inFlight.Add(-1)
	}, nil)
	e.Wait()

	if len(order) != n {
		t.Fatalf("processed %d items, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("single worker reordered the stream: position %d holds item %d", i, got)
		}
	}
	if s.Processed() != n {
		t.Errorf("instrumentation counted %d, want %d", s.Processed(), n)
	}
}

// TestCancellationMidStream aborts the feeder partway through and checks
// the pipeline drains cleanly: Wait returns, every item that entered the
// stream is accounted for exactly once downstream, and the snapshot's
// counters agree with the truncated feed.
func TestCancellationMidStream(t *testing.T) {
	const total, cancelAt = 500, 123
	e := pipeline.New()
	stWork := e.NewStage("work", 4)
	stSink := e.NewStage("sink", 2)
	in := make(chan item, 8)
	out := make(chan item, 8)
	stop := make(chan struct{})
	var st pipeline.Stats

	fed := 0
	e.Go(func() {
		defer close(in)
		for i := 0; i < total; i++ {
			select {
			case <-stop:
				return
			case in <- item{idx: i}:
				fed++
				st.Scanned.Add(1)
			}
		}
	})
	var sunk atomic.Int64
	pipeline.Run(e, stWork, in, func(it item) {
		if it.idx == cancelAt {
			close(stop)
		}
		out <- it
	}, func() { close(out) })
	pipeline.Run(e, stSink, out, func(item) { sunk.Add(1) }, nil)
	e.Wait()

	if fed >= total {
		t.Fatalf("feeder ran to completion; cancellation never took effect")
	}
	if fed <= cancelAt {
		t.Fatalf("feeder stopped at %d items, before the cancel trigger at %d", fed, cancelAt)
	}
	if got := sunk.Load(); got != int64(fed) {
		t.Fatalf("sink saw %d items for %d fed: pipeline lost or duplicated work on cancel", got, fed)
	}
	snap := e.Snapshot(&st)
	if snap.Contracts != int64(fed) {
		t.Errorf("snapshot contracts = %d, want the %d actually fed", snap.Contracts, fed)
	}
	if snap.Stages[0].Processed != int64(fed) || snap.Stages[1].Processed != int64(fed) {
		t.Errorf("stage counts %d/%d, want %d/%d",
			snap.Stages[0].Processed, snap.Stages[1].Processed, fed, fed)
	}
}

// TestSnapshotCountersExport pins the deterministic-export hook: Counters must
// carry every run-wide counter plus a stage_<name>_processed entry per
// stage, and must exclude every wall-clock-derived field — the map is what
// the benchmark gate compares byte-for-byte across runs, so nothing
// scheduling-dependent may leak into it.
func TestSnapshotCountersExport(t *testing.T) {
	const n = 40
	e := pipeline.New()
	stA := e.NewStage("alpha", 2)
	stB := e.NewStage("beta", 3)
	aCh := make(chan item, 4)
	bCh := make(chan item, 4)
	var st pipeline.Stats

	e.Go(func() {
		for i := 0; i < n; i++ {
			st.Scanned.Add(1)
			aCh <- item{idx: i}
		}
		close(aCh)
	})
	pipeline.Run(e, stA, aCh, func(it item) {
		st.Emulations.Add(1)
		bCh <- it
	}, func() { close(bCh) })
	pipeline.Run(e, stB, bCh, func(item) { st.ProxiesDetected.Add(1) }, nil)
	e.Wait()

	got := e.Snapshot(&st).Counters()
	want := map[string]int64{
		"contracts":             n,
		"no_code":               0,
		"filter_rejected":       0,
		"emulations":            n,
		"cache_hits":            0,
		"structural_hits":       0,
		"static_summaries":      0,
		"structural_rejects":    0,
		"emulation_aborts":      0,
		"proxies_detected":      n,
		"pairs_analyzed":        0,
		"histories_recovered":   0,
		"get_storage_at_calls":  0,
		"unresolved":            0,
		"read_retries":          0,
		"breaker_trips":         0,
		"stage_alpha_processed": n,
		"stage_beta_processed":  n,
	}
	if len(got) != len(want) {
		t.Errorf("Counters exported %d keys, want %d: %v", len(got), len(want), got)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("Counters[%q] = %d, want %d", k, got[k], w)
		}
	}
	for _, banned := range []string{"wall_ms", "contracts_per_sec", "cache_hit_rate"} {
		if _, ok := got[banned]; ok {
			t.Errorf("Counters leaked wall-clock-derived key %q", banned)
		}
	}
}

// TestWallFreezesAfterWait: Wall is live while running and frozen once
// Wait returns, so a snapshot taken later reports the run, not the gap.
func TestWallFreezesAfterWait(t *testing.T) {
	e := pipeline.New()
	in := make(chan item)
	e.Go(func() { close(in) })
	pipeline.Run(e, e.NewStage("noop", 1), in, func(item) {}, nil)
	e.Wait()
	a := e.Wall()
	b := e.Wall()
	if a != b {
		t.Fatalf("Wall moved after Wait: %v then %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("frozen wall = %v, want > 0", a)
	}
}
