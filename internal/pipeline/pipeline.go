// Package pipeline is a small staged-concurrency engine: an ordered stream
// of work items flows through a chain of named stages, each backed by its
// own worker pool, connected by bounded channels with no barrier between
// stages — an item finished by stage N enters stage N+1 while later items
// are still in stage N. Every stage carries atomic instrumentation
// (items processed, busy time) so a run can report where the wall-clock
// went.
//
// The engine is deliberately domain-free: it knows nothing about contracts
// or proxies. The proxion package wires its analysis stages (disassembly
// filter → emulation probe → classification → logic history → pair
// collision analysis) onto it.
package pipeline

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one named step of a pipeline with its own worker pool and
// instrumentation counters. Create stages through Engine.NewStage so they
// appear in the engine's snapshot.
type Stage struct {
	name    string
	workers int

	processed Counter
	busy      Counter // nanoseconds spent inside the stage function
}

// Name returns the stage's display name.
func (s *Stage) Name() string { return s.name }

// Workers returns the stage's worker-pool size.
func (s *Stage) Workers() int { return s.workers }

// Processed returns the number of items the stage has completed.
func (s *Stage) Processed() int64 { return s.processed.Load() }

// Engine coordinates the goroutines of one pipeline run: the feeder, every
// stage's workers, and the per-stage closers that propagate end-of-stream
// downstream. Wait blocks until the whole pipeline has drained.
type Engine struct {
	wg     sync.WaitGroup
	stages []*Stage
	start  time.Time
	// wall is the frozen run duration in nanoseconds (0 while running).
	// Wait writes it and concurrent observers (live progress reporting,
	// soak samplers) read it through Wall, so it must be atomic.
	wall atomic.Int64
}

// New creates an empty engine and starts its wall clock.
func New() *Engine {
	return &Engine{start: time.Now()}
}

// NewStage registers a named stage with the given worker-pool size.
// Workers below 1 are clamped to 1.
func (e *Engine) NewStage(name string, workers int) *Stage {
	if workers < 1 {
		workers = 1
	}
	s := &Stage{name: name, workers: workers}
	e.stages = append(e.stages, s)
	return s
}

// Go runs f on a goroutine tracked by Wait. Use it for feeders and any
// auxiliary plumbing that must finish before the run is considered done.
func (e *Engine) Go(f func()) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		f()
	}()
}

// Wait blocks until every stage and feeder has finished, then freezes the
// engine's wall clock.
func (e *Engine) Wait() {
	e.wg.Wait()
	e.wall.Store(int64(time.Since(e.start)))
}

// Wall returns the run's duration: live while running, frozen after Wait.
// Safe to call from any goroutine while the pipeline runs.
func (e *Engine) Wall() time.Duration {
	if w := e.wall.Load(); w > 0 {
		return time.Duration(w)
	}
	return time.Since(e.start)
}

// Run launches the stage's worker pool over the in channel. Each worker
// repeatedly pulls an item and applies fn; fn performs the stage's own
// sends to downstream channels. When every worker has drained (in was
// closed and emptied), onDone fires exactly once — that is where the stage
// closes the downstream channels it feeds. A nil onDone is allowed for
// terminal stages.
func Run[I any](e *Engine, s *Stage, in <-chan I, fn func(I), onDone func()) {
	var stageWG sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		stageWG.Add(1)
		e.wg.Add(1)
		go func() {
			defer stageWG.Done()
			defer e.wg.Done()
			for item := range in {
				t0 := time.Now()
				fn(item)
				s.busy.Add(int64(time.Since(t0)))
				s.processed.Add(1)
			}
		}()
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		stageWG.Wait()
		if onDone != nil {
			onDone()
		}
	}()
}
