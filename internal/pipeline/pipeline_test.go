package pipeline_test

import (
	"sync"
	"testing"

	"repro/internal/pipeline"
)

type item struct {
	idx int
	val int
}

// TestThreeStageOrderedResults pushes an ordered stream through three
// concurrent stages and checks that indexed collection restores input
// order regardless of completion order.
func TestThreeStageOrderedResults(t *testing.T) {
	const n = 500
	e := pipeline.New()
	stDouble := e.NewStage("double", 4)
	stAddOne := e.NewStage("add-one", 3)
	stSink := e.NewStage("sink", 2)

	doubleCh := make(chan item, 8)
	addCh := make(chan item, 8)
	sinkCh := make(chan item, 8)
	out := make([]int, n)

	e.Go(func() {
		for i := 0; i < n; i++ {
			doubleCh <- item{idx: i, val: i}
		}
		close(doubleCh)
	})
	pipeline.Run(e, stDouble, doubleCh, func(it item) {
		it.val *= 2
		addCh <- it
	}, func() { close(addCh) })
	pipeline.Run(e, stAddOne, addCh, func(it item) {
		it.val++
		sinkCh <- it
	}, func() { close(sinkCh) })
	pipeline.Run(e, stSink, sinkCh, func(it item) {
		out[it.idx] = it.val
	}, nil)
	e.Wait()

	for i := 0; i < n; i++ {
		if out[i] != 2*i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], 2*i+1)
		}
	}
	for _, s := range []*pipeline.Stage{stDouble, stAddOne, stSink} {
		if s.Processed() != n {
			t.Errorf("stage %s processed %d, want %d", s.Name(), s.Processed(), n)
		}
	}
}

// TestFilteringStageDropsItems verifies that a stage may emit fewer items
// than it receives and downstream closure still propagates.
func TestFilteringStageDropsItems(t *testing.T) {
	const n = 100
	e := pipeline.New()
	stFilter := e.NewStage("filter", 2)
	stSink := e.NewStage("sink", 2)

	in := make(chan item, 4)
	kept := make(chan item, 4)
	var mu sync.Mutex
	var got []int

	e.Go(func() {
		for i := 0; i < n; i++ {
			in <- item{idx: i, val: i}
		}
		close(in)
	})
	pipeline.Run(e, stFilter, in, func(it item) {
		if it.val%2 == 0 {
			kept <- it
		}
	}, func() { close(kept) })
	pipeline.Run(e, stSink, kept, func(it item) {
		mu.Lock()
		got = append(got, it.val)
		mu.Unlock()
	}, nil)
	e.Wait()

	if len(got) != n/2 {
		t.Fatalf("sink received %d items, want %d", len(got), n/2)
	}
	if stSink.Processed() != int64(n/2) {
		t.Errorf("sink processed %d, want %d", stSink.Processed(), n/2)
	}
}

// TestSnapshotCounters checks the derived snapshot fields.
func TestSnapshotCounters(t *testing.T) {
	e := pipeline.New()
	s := e.NewStage("work", 2)
	in := make(chan item)
	var st pipeline.Stats

	e.Go(func() {
		for i := 0; i < 10; i++ {
			st.Scanned.Add(1)
			in <- item{idx: i}
		}
		close(in)
	})
	pipeline.Run(e, s, in, func(it item) {
		if it.idx%2 == 0 {
			st.CacheHits.Add(1)
		} else {
			st.Emulations.Add(1)
		}
	}, nil)
	e.Wait()

	snap := e.Snapshot(&st)
	if snap.Contracts != 10 {
		t.Errorf("contracts = %d, want 10", snap.Contracts)
	}
	if snap.CacheHits != 5 || snap.Emulations != 5 {
		t.Errorf("hits/emulations = %d/%d, want 5/5", snap.CacheHits, snap.Emulations)
	}
	if snap.CacheHitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", snap.CacheHitRate)
	}
	if snap.ContractsPerSec <= 0 {
		t.Errorf("contracts/s = %v, want > 0", snap.ContractsPerSec)
	}
	if len(snap.Stages) != 1 || snap.Stages[0].Processed != 10 {
		t.Errorf("stage snapshot = %+v", snap.Stages)
	}
	if snap.Stages[0].Workers != 2 || snap.Stages[0].Name != "work" {
		t.Errorf("stage meta = %+v", snap.Stages[0])
	}
}

// TestZeroWorkersClamped ensures a degenerate pool size still runs.
func TestZeroWorkersClamped(t *testing.T) {
	e := pipeline.New()
	s := e.NewStage("solo", 0)
	if s.Workers() != 1 {
		t.Fatalf("workers = %d, want clamped to 1", s.Workers())
	}
	in := make(chan item, 1)
	in <- item{val: 7}
	close(in)
	done := 0
	pipeline.Run(e, s, in, func(item) { done++ }, nil)
	e.Wait()
	if done != 1 {
		t.Fatalf("processed %d, want 1", done)
	}
}
