package pipeline

import (
	"sync"
	"testing"
	"time"
)

// TestWallConcurrentWithWait drives a pipeline to completion while other
// goroutines poll Wall() the whole time — the live-progress-reporting
// shape. Run under -race this fails if Wait's freeze of the wall clock
// races the readers.
func TestWallConcurrentWithWait(t *testing.T) {
	e := New()
	st := e.NewStage("work", 4)
	in := make(chan int, 16)
	e.Go(func() {
		for i := 0; i < 200; i++ {
			in <- i
		}
		close(in)
	})
	Run(e, st, in, func(int) { time.Sleep(50 * time.Microsecond) }, nil)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last time.Duration
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := e.Wall()
				if w < last {
					// The live clock is monotone and the frozen value can
					// only be >= any live reading taken before Wait.
					t.Errorf("Wall went backwards: %v after %v", w, last)
					return
				}
				last = w
			}
		}()
	}

	e.Wait()
	frozen := e.Wall()
	close(stop)
	readers.Wait()

	if frozen <= 0 {
		t.Fatalf("frozen wall = %v, want > 0", frozen)
	}
	time.Sleep(2 * time.Millisecond)
	if again := e.Wall(); again != frozen {
		t.Fatalf("wall not frozen after Wait: %v then %v", frozen, again)
	}
}
