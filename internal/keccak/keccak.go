// Package keccak implements the Keccak-256 hash as used by Ethereum: the
// original Keccak submission with 0x01 domain padding, not the NIST-final
// SHA3-256 (0x06 padding). Function selectors, event topics, EIP-1967/1822
// storage slots, and CREATE2 addresses all use this variant.
package keccak

import (
	"encoding/binary"
	"math/bits"
)

// rate is the sponge rate in bytes for a 256-bit capacity (1600-512)/8.
const rate = 136

var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotationOffsets[y][x] per the Keccak rho step.
var rotationOffsets = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// keccakF1600 applies the 24-round Keccak-f[1600] permutation in place.
// State indexing: a[x][y] lane at column x, row y.
func keccakF1600(a *[5][5]uint64) {
	var c, d [5]uint64
	var b [5][5]uint64
	for round := 0; round < 24; round++ {
		// Theta.
		for x := 0; x < 5; x++ {
			c[x] = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x][y] ^= d[x]
			}
		}
		// Rho and Pi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y][(2*x+3*y)%5] = bits.RotateLeft64(a[x][y], int(rotationOffsets[x][y]))
			}
		}
		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x][y] = b[x][y] ^ (^b[(x+1)%5][y] & b[(x+2)%5][y])
			}
		}
		// Iota.
		a[0][0] ^= roundConstants[round]
	}
}

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data []byte) [32]byte {
	var state [5][5]uint64

	absorb := func(block []byte) {
		for i := 0; i < rate/8; i++ {
			lane := binary.LittleEndian.Uint64(block[i*8:])
			state[i%5][i/5] ^= lane
		}
		keccakF1600(&state)
	}

	// Absorb all full blocks.
	for len(data) >= rate {
		absorb(data[:rate])
		data = data[rate:]
	}

	// Final block with Keccak (pre-NIST) multi-rate padding 0x01 ... 0x80.
	var block [rate]byte
	copy(block[:], data)
	block[len(data)] = 0x01
	block[rate-1] |= 0x80
	absorb(block[:])

	// Squeeze 32 bytes (fits within one rate block).
	var out [32]byte
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], state[i%5][i/5])
	}
	return out
}

// Selector returns the first four bytes of the Keccak-256 hash of the given
// function prototype string, i.e. the Ethereum function selector.
func Selector(prototype string) [4]byte {
	h := Sum256([]byte(prototype))
	return [4]byte{h[0], h[1], h[2], h[3]}
}
