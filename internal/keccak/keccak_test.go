package keccak

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
)

func hexDigest(t *testing.T, data []byte) string {
	t.Helper()
	sum := Sum256(data)
	return hex.EncodeToString(sum[:])
}

func TestKnownVectors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
		{"abc", "abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
		{
			"eip1967 preimage",
			"eip1967.proxy.implementation",
			// keccak("eip1967.proxy.implementation"); the EIP-1967 slot is
			// this value minus one.
			"360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbd",
		},
		{
			"eip1822 proxiable",
			"PROXIABLE",
			"c5f16f0fcc639fa48a6947836d9850f504798523bf8c9a3a87d5876cf622bcf7",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := hexDigest(t, []byte(c.in)); got != c.want {
				t.Errorf("Keccak256(%q) = %s, want %s", c.in, got, c.want)
			}
		})
	}
}

func TestSelectors(t *testing.T) {
	cases := []struct {
		proto string
		want  string
	}{
		// ERC-20 canonical selectors.
		{"transfer(address,uint256)", "a9059cbb"},
		{"balanceOf(address)", "70a08231"},
		{"approve(address,uint256)", "095ea7b3"},
		// The paper's running example (Section 2.1): the selector of
		// free_ether_withdrawal() is 0xdf4a3106.
		{"free_ether_withdrawal()", "df4a3106"},
	}
	for _, c := range cases {
		sel := Selector(c.proto)
		if got := hex.EncodeToString(sel[:]); got != c.want {
			t.Errorf("Selector(%q) = %s, want %s", c.proto, got, c.want)
		}
	}
}

func TestMultiBlockInputs(t *testing.T) {
	// Exercise block boundaries around the 136-byte rate.
	for _, n := range []int{rate - 1, rate, rate + 1, 2 * rate, 3*rate + 7} {
		in := bytes.Repeat([]byte{0xa5}, n)
		sum1 := Sum256(in)
		sum2 := Sum256(in)
		if sum1 != sum2 {
			t.Fatalf("non-deterministic digest at length %d", n)
		}
		if sum1 == [32]byte{} {
			t.Fatalf("zero digest at length %d", n)
		}
	}
	// A long vector cross-checked against an independent Keccak-256
	// implementation (exercises the full-block absorb path).
	long := strings.Repeat("0123456789", 20) // 200 bytes, > 1 block
	want := "bebf7feb66ec4249f26ba898cab15d2eaf14ba4623b962a61eec09afde36ed67"
	if got := hexDigest(t, []byte(long)); got != want {
		t.Errorf("long vector = %s, want %s", got, want)
	}
}

func TestDistinctInputsDistinctDigests(t *testing.T) {
	seen := make(map[[32]byte]string)
	for _, s := range []string{"", "a", "b", "ab", "ba", "proxy", "logic"} {
		d := Sum256([]byte(s))
		if prev, ok := seen[d]; ok {
			t.Fatalf("collision between %q and %q", prev, s)
		}
		seen[d] = s
	}
}

func BenchmarkSum256Short(b *testing.B) {
	data := []byte("transfer(address,uint256)")
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func BenchmarkSum256Block(b *testing.B) {
	data := bytes.Repeat([]byte{0x5a}, 1024)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
