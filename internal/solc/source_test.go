package solc_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/etypes"
	"repro/internal/solc"
	"repro/internal/u256"
)

func TestSourceTextRendersDeclarations(t *testing.T) {
	c := &solc.Contract{
		Name: "Proxy",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress},
			{Name: "logic", Type: solc.TypeAddress},
		},
		Funcs: []solc.Func{
			{
				ABI: abi.Function{Name: "upgradeTo", Params: []string{"address"}},
				Body: []solc.Stmt{
					solc.RequireCallerIs{Var: "owner"},
					solc.AssignArg{Var: "logic", Arg: 0},
				},
			},
		},
		Fallback: solc.Fallback{
			Kind: solc.FallbackDelegateStorage,
			Slot: etypes.HashFromWord(u256.One()),
		},
	}
	src := c.SourceText()
	for _, want := range []string{
		"contract Proxy {",
		"address private owner;",
		"address private logic;",
		"function upgradeTo(address arg0) external {",
		"require(msg.sender == owner);",
		"logic = arg0;",
		"fallback(bytes calldata input) external {",
		"delegatecall(input); // forward",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
}

func TestSourceTextCoversEveryStatement(t *testing.T) {
	c := &solc.Contract{
		Name: "Everything",
		Vars: []solc.Var{{Name: "x", Type: solc.TypeUint256}},
		Funcs: []solc.Func{{
			ABI: abi.Function{Name: "all"},
			Body: []solc.Stmt{
				solc.ReturnConst{Value: u256.One()},
				solc.ReturnStorageVar{Var: "x"},
				solc.ReturnCaller{},
				solc.AssignConst{Var: "x", Value: u256.One()},
				solc.AssignCaller{Var: "x"},
				solc.AssignArg{Var: "x", Arg: 0},
				solc.RequireVarZero{Var: "x"},
				solc.RequireVarNonZero{Var: "x"},
				solc.RequireCallerIs{Var: "x"},
				solc.RequireInitializable{Initialized: "a", Initializing: "b"},
				solc.AssignCallerToSlot{Slot: etypes.Hash{}, Size: 20},
				solc.ReturnSlotField{Slot: etypes.Hash{}, Size: 20},
				solc.SendToCaller{Amount: u256.FromUint64(10)},
				solc.DelegateCallSig{Proto: "f()"},
				solc.Stop{},
				solc.Revert{},
			},
		}},
	}
	src := c.SourceText()
	if strings.Contains(src, "%!") || strings.Contains(src, "/* solc.") {
		t.Errorf("unrendered statement in:\n%s", src)
	}
	for _, want := range []string{"require(b || !a);", "payable(msg.sender).transfer", "revert();"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSourceTextFallbackKinds(t *testing.T) {
	kinds := []struct {
		fb   solc.Fallback
		want string
	}{
		{solc.Fallback{Kind: solc.FallbackStop}, "// accept"},
		{solc.Fallback{Kind: solc.FallbackDelegateHardcoded}, "forward to fixed logic"},
		{solc.Fallback{Kind: solc.FallbackDelegateDiamond}, "EIP-2535"},
		{solc.Fallback{Kind: solc.FallbackLibraryCall, Proto: "sqrt(uint256)"}, "library call"},
	}
	for _, k := range kinds {
		c := &solc.Contract{Name: "X", Fallback: k.fb}
		if !strings.Contains(c.SourceText(), k.want) {
			t.Errorf("fallback kind %d: missing %q in\n%s", k.fb.Kind, k.want, c.SourceText())
		}
	}
	// Default (revert) fallback renders no fallback block.
	c := &solc.Contract{Name: "X"}
	if strings.Contains(c.SourceText(), "fallback") {
		t.Error("revert fallback should render nothing")
	}
}
