package solc

import (
	"fmt"
	"strings"
)

// SourceText renders the contract as pseudo-Solidity. This is what the
// simulated Etherscan serves as "verified source": not compilable by the
// real solc, but carrying exactly the information source-level analyses
// consume — declaration order and types of storage variables, function
// signatures, and the fallback's behaviour.
func (c *Contract) SourceText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "contract %s {\n", c.Name)
	for _, v := range c.Vars {
		fmt.Fprintf(&b, "    %s private %s;\n", v.Type, v.Name)
	}
	if len(c.Vars) > 0 && (len(c.Funcs) > 0 || c.Fallback.Kind != FallbackRevert) {
		b.WriteString("\n")
	}
	for _, f := range c.Funcs {
		fmt.Fprintf(&b, "    function %s external {\n", signatureWithParams(f))
		for _, s := range f.Body {
			fmt.Fprintf(&b, "        %s\n", stmtText(s))
		}
		b.WriteString("    }\n")
	}
	if fb := fallbackText(c.Fallback); fb != "" {
		fmt.Fprintf(&b, "    fallback(bytes calldata input) external {\n        %s\n    }\n", fb)
	}
	b.WriteString("}\n")
	return b.String()
}

func signatureWithParams(f Func) string {
	if len(f.ABI.Params) == 0 {
		return f.ABI.Name + "()"
	}
	parts := make([]string, len(f.ABI.Params))
	for i, p := range f.ABI.Params {
		parts[i] = fmt.Sprintf("%s arg%d", p, i)
	}
	return f.ABI.Name + "(" + strings.Join(parts, ", ") + ")"
}

func stmtText(s Stmt) string {
	switch st := s.(type) {
	case ReturnConst:
		return fmt.Sprintf("return %s;", st.Value)
	case ReturnStorageVar:
		return fmt.Sprintf("return %s;", st.Var)
	case ReturnCaller:
		return "return msg.sender;"
	case AssignConst:
		return fmt.Sprintf("%s = %s;", st.Var, st.Value)
	case AssignCaller:
		return fmt.Sprintf("%s = msg.sender;", st.Var)
	case AssignArg:
		return fmt.Sprintf("%s = arg%d;", st.Var, st.Arg)
	case RequireVarZero:
		return fmt.Sprintf("require(%s == 0);", st.Var)
	case RequireVarNonZero:
		return fmt.Sprintf("require(%s != 0);", st.Var)
	case RequireCallerIs:
		return fmt.Sprintf("require(msg.sender == %s);", st.Var)
	case RequireInitializable:
		return fmt.Sprintf("require(%s || !%s);", st.Initializing, st.Initialized)
	case AssignCallerToSlot:
		return fmt.Sprintf("owner = msg.sender; // inherited layout: slot %s, bytes [%d,%d)",
			st.Slot, st.Offset, st.Offset+st.Size)
	case ReturnSlotField:
		return fmt.Sprintf("return owner; // inherited layout: slot %s, bytes [%d,%d)",
			st.Slot, st.Offset, st.Offset+st.Size)
	case SendToCaller:
		return fmt.Sprintf("payable(msg.sender).transfer(%s);", st.Amount)
	case DelegateCallSig:
		return fmt.Sprintf("%s.delegatecall(abi.encodeWithSignature(%q, ...));", st.Target, st.Proto)
	case InlineAsm:
		return "assembly { /* inline */ }"
	case Stop:
		return "return;"
	case Revert:
		return "revert();"
	default:
		return fmt.Sprintf("/* %T */", s)
	}
}

func fallbackText(fb Fallback) string {
	switch fb.Kind {
	case FallbackRevert:
		return ""
	case FallbackStop:
		return "// accept"
	case FallbackDelegateStorage:
		return fmt.Sprintf("sload(%s).delegatecall(input); // forward", fb.Slot)
	case FallbackDelegateHardcoded:
		return fmt.Sprintf("%s.delegatecall(input); // forward to fixed logic", fb.Target)
	case FallbackDelegateDiamond:
		return fmt.Sprintf("facets[msg.sig].delegatecall(input); // EIP-2535, table at %s", fb.Slot)
	case FallbackLibraryCall:
		return fmt.Sprintf("%s.delegatecall(abi.encodeWithSignature(%q)); // library call", fb.Target, fb.Proto)
	default:
		return ""
	}
}
