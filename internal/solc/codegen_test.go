package solc_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/solc"
	"repro/internal/u256"
)

func TestCompileUndefinedVariableFails(t *testing.T) {
	c := &solc.Contract{
		Name: "Bad",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "f"},
			Body: []solc.Stmt{solc.ReturnStorageVar{Var: "ghost"}},
		}},
	}
	if _, err := solc.Compile(c); err == nil {
		t.Error("undefined variable must fail compilation")
	}
}

func TestSlotOfResolvesAndErrs(t *testing.T) {
	c := &solc.Contract{
		Name: "L",
		Vars: []solc.Var{
			{Name: "a", Type: solc.TypeUint128},
			{Name: "b", Type: solc.TypeUint128},
			{Name: "c", Type: solc.TypeBool},
		},
	}
	sv, err := c.SlotOf("b")
	if err != nil {
		t.Fatal(err)
	}
	if sv.Slot != 0 || sv.Offset != 16 {
		t.Errorf("b at slot %d offset %d", sv.Slot, sv.Offset)
	}
	if _, err := c.SlotOf("nope"); err == nil {
		t.Error("unknown var should error")
	}
}

func TestRequireVarNonZeroGuard(t *testing.T) {
	c := &solc.Contract{
		Name: "Gate",
		Vars: []solc.Var{{Name: "open", Type: solc.TypeBool}},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "enter"},
				Body: []solc.Stmt{
					solc.RequireVarNonZero{Var: "open"},
					solc.ReturnConst{Value: u256.One()},
				}},
			{ABI: abi.Function{Name: "unlock"},
				Body: []solc.Stmt{solc.AssignConst{Var: "open", Value: u256.One()}}},
		},
	}
	ch := chain.New()
	addr := etypes.MustAddress("0x0000000000000000000000000000000000007001")
	ch.InstallContract(addr, solc.MustCompile(c))
	caller := etypes.MustAddress("0x0000000000000000000000000000000000007002")

	enter := abi.EncodeCall(c.Funcs[0].ABI.Selector())
	if rc := ch.Execute(caller, addr, enter, 0, u256.Zero()); rc.Status {
		t.Error("gate should be closed initially")
	}
	unlock := abi.EncodeCall(c.Funcs[1].ABI.Selector())
	if rc := ch.Execute(caller, addr, unlock, 0, u256.Zero()); !rc.Status {
		t.Fatalf("unlock failed: %v", rc.Err)
	}
	if rc := ch.Execute(caller, addr, enter, 0, u256.Zero()); !rc.Status {
		t.Errorf("gate should open after unlock: %v", rc.Err)
	}
}

func TestShortCalldataRoutesToFallback(t *testing.T) {
	c := &solc.Contract{
		Name: "Short",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "f"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}},
		}},
		Fallback: solc.Fallback{Kind: solc.FallbackStop},
	}
	ch := chain.New()
	addr := etypes.MustAddress("0x0000000000000000000000000000000000007003")
	ch.InstallContract(addr, solc.MustCompile(c))
	caller := etypes.MustAddress("0x0000000000000000000000000000000000007004")

	// 3 bytes: below the selector width, must take the fallback (STOP).
	rc := ch.Execute(caller, addr, []byte{1, 2, 3}, 0, u256.Zero())
	if !rc.Status || len(rc.Output) != 0 {
		t.Errorf("short calldata: status=%v out=%x", rc.Status, rc.Output)
	}
	// Empty call data likewise.
	rc = ch.Execute(caller, addr, nil, 0, u256.Zero())
	if !rc.Status {
		t.Errorf("empty calldata: %v", rc.Err)
	}
}

func TestDelegateCallSigConstructsCalldata(t *testing.T) {
	// The library receives selector+args built in memory, NOT the caller's
	// call data.
	libAddr := etypes.MustAddress("0x0000000000000000000000000000000000007005")
	lib := &solc.Contract{
		Name: "Lib",
		Vars: []solc.Var{{Name: "seen", Type: solc.TypeUint256}},
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "register", Params: []string{"uint256"}},
			Body: []solc.Stmt{solc.AssignArg{Var: "seen", Arg: 0}},
		}},
	}
	caller := &solc.Contract{
		Name: "Caller",
		Vars: []solc.Var{{Name: "seen", Type: solc.TypeUint256}},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "go"},
				Body: []solc.Stmt{
					solc.DelegateCallSig{
						Target: libAddr,
						Proto:  "register(uint256)",
						Args:   []u256.Int{u256.FromUint64(0x77)},
					},
					solc.ReturnStorageVar{Var: "seen"},
				}},
		},
	}
	ch := chain.New()
	ch.InstallContract(libAddr, solc.MustCompile(lib))
	addr := etypes.MustAddress("0x0000000000000000000000000000000000007006")
	ch.InstallContract(addr, solc.MustCompile(caller))
	sender := etypes.MustAddress("0x0000000000000000000000000000000000007007")

	rc := ch.Execute(sender, addr, abi.EncodeCall(caller.Funcs[0].ABI.Selector()), 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("go(): %v", rc.Err)
	}
	// register(0x77) ran in the CALLER's storage context via delegatecall.
	if got := u256.FromBytes(rc.Output); got.Uint64() != 0x77 {
		t.Errorf("seen = %s, want 0x77", got)
	}
}

func TestCompileInitDeterministic(t *testing.T) {
	runtime := []byte{byte(evm.STOP)}
	storage := map[etypes.Hash]etypes.Hash{
		etypes.HashFromWord(u256.FromUint64(3)): etypes.HashFromWord(u256.FromUint64(30)),
		etypes.HashFromWord(u256.FromUint64(1)): etypes.HashFromWord(u256.FromUint64(10)),
		etypes.HashFromWord(u256.FromUint64(2)): etypes.HashFromWord(u256.FromUint64(20)),
	}
	a := solc.CompileInit(runtime, storage)
	b := solc.CompileInit(runtime, storage)
	if string(a) != string(b) {
		t.Error("init code not deterministic across map iteration orders")
	}
}

func TestEveryFallbackKindCompilesAndClassifies(t *testing.T) {
	target := etypes.MustAddress("0x0000000000000000000000000000000000007008")
	kinds := []solc.Fallback{
		{Kind: solc.FallbackRevert},
		{Kind: solc.FallbackStop},
		{Kind: solc.FallbackDelegateStorage, Slot: etypes.HashFromWord(u256.One())},
		{Kind: solc.FallbackDelegateHardcoded, Target: target},
		{Kind: solc.FallbackDelegateDiamond, Slot: etypes.HashFromWord(u256.FromUint64(9))},
		{Kind: solc.FallbackLibraryCall, Target: target, Proto: "f()"},
	}
	for i, fb := range kinds {
		c := &solc.Contract{Name: "FB", Fallback: fb}
		code, err := solc.Compile(c)
		if err != nil {
			t.Fatalf("kind %d: %v", i, err)
		}
		hasDC := disasm.ContainsOp(code, evm.DELEGATECALL)
		wantDC := fb.Kind != solc.FallbackRevert && fb.Kind != solc.FallbackStop
		if hasDC != wantDC {
			t.Errorf("kind %d: delegatecall presence = %v, want %v", i, hasDC, wantDC)
		}
	}
}
