package solc

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/keccak"
	"repro/internal/u256"
)

// compiler holds per-compilation state.
type compiler struct {
	contract *Contract
	prog     *asm.Program
	layout   map[string]SlotVar
	labelSeq int
}

// Compile translates a contract into EVM runtime bytecode.
func Compile(c *Contract) ([]byte, error) {
	cc := &compiler{
		contract: c,
		prog:     &asm.Program{},
		layout:   make(map[string]SlotVar),
	}
	for _, sv := range c.Layout() {
		cc.layout[sv.Var.Name] = sv
	}
	if err := cc.emitRuntime(); err != nil {
		return nil, err
	}
	code, err := cc.prog.Assemble()
	if err != nil {
		return nil, fmt.Errorf("solc: assembling %s: %w", c.Name, err)
	}
	return code, nil
}

// MustCompile is Compile that panics on error, for fixtures built from
// trusted constants.
func MustCompile(c *Contract) []byte {
	code, err := Compile(c)
	if err != nil {
		panic(err)
	}
	return code
}

// CompileInit wraps runtime bytecode in standard deployment init code,
// optionally preceded by constructor storage writes.
func CompileInit(runtime []byte, storageInit map[etypes.Hash]etypes.Hash) []byte {
	var p asm.Program
	// Deterministic iteration for reproducible init code: emit writes in
	// slot order.
	for _, kv := range sortedStorage(storageInit) {
		p.Push(kv.val.Word()).Push(kv.key.Word()).Op(evm.SSTORE)
	}
	p.PushUint(uint64(len(runtime))).PushLabel("runtime").PushUint(0).Op(evm.CODECOPY).
		PushUint(uint64(len(runtime))).PushUint(0).Op(evm.RETURN).
		DataLabel("runtime").Raw(runtime)
	return p.MustAssemble()
}

type storageKV struct{ key, val etypes.Hash }

func sortedStorage(m map[etypes.Hash]etypes.Hash) []storageKV {
	out := make([]storageKV, 0, len(m))
	for k, v := range m {
		out = append(out, storageKV{k, v})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessHash(out[j].key, out[j-1].key); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func lessHash(a, b etypes.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// fresh returns a unique label.
func (cc *compiler) fresh(prefix string) string {
	cc.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, cc.labelSeq)
}

// emitRuntime generates the whole runtime: prelude, selector dispatcher,
// fallback, and function bodies.
func (cc *compiler) emitRuntime() error {
	p := cc.prog
	c := cc.contract

	// Solidity's free-memory-pointer prelude, for bytecode realism.
	p.PushUint(0x80).PushUint(0x40).Op(evm.MSTORE)

	// Decoy PUSH4 constants: pushed and dropped, never compared.
	for _, d := range c.DecoyPush4 {
		p.PushBytes(d[:]).Op(evm.POP)
	}

	if len(c.Funcs) > 0 {
		// if calldatasize < 4, go to fallback.
		p.PushUint(4).Op(evm.CALLDATASIZE).Op(evm.LT).JumpI("fallback")
		// selector = calldata[0] >> 224
		p.PushUint(0).Op(evm.CALLDATALOAD).PushUint(0xe0).Op(evm.SHR)
		for i, f := range c.Funcs {
			sel := f.ABI.Selector()
			p.Op(evm.DUP1).PushBytes(sel[:]).Op(evm.EQ).
				JumpI(fmt.Sprintf("fn_%d", i))
		}
		// No selector matched: fall through into the fallback.
	}

	p.Label("fallback")
	if err := cc.emitFallback(); err != nil {
		return err
	}

	for i, f := range c.Funcs {
		p.Label(fmt.Sprintf("fn_%d", i))
		if len(c.Funcs) > 0 {
			p.Op(evm.POP) // drop the DUP1'd selector
		}
		if err := cc.emitBody(f.Body); err != nil {
			return fmt.Errorf("solc: %s.%s: %w", c.Name, f.ABI.Name, err)
		}
		p.Op(evm.STOP) // default terminator if the body falls through
	}
	return nil
}

// emitBody generates statements in order.
func (cc *compiler) emitBody(body []Stmt) error {
	for _, s := range body {
		if err := cc.emitStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (cc *compiler) emitStmt(s Stmt) error {
	p := cc.prog
	switch st := s.(type) {
	case ReturnConst:
		p.Push(st.Value)
		cc.emitReturnTop()
	case ReturnStorageVar:
		if err := cc.emitReadVar(st.Var); err != nil {
			return err
		}
		cc.emitReturnTop()
	case ReturnCaller:
		p.Op(evm.CALLER)
		cc.emitReturnTop()
	case AssignConst:
		p.Push(st.Value)
		return cc.emitWriteVar(st.Var)
	case AssignCaller:
		p.Op(evm.CALLER)
		return cc.emitWriteVar(st.Var)
	case AssignArg:
		p.PushUint(uint64(4 + 32*st.Arg)).Op(evm.CALLDATALOAD)
		return cc.emitWriteVar(st.Var)
	case RequireVarZero:
		if err := cc.emitReadVar(st.Var); err != nil {
			return err
		}
		ok := cc.fresh("req_ok")
		p.Op(evm.ISZERO).JumpI(ok)
		p.PushUint(0).PushUint(0).Op(evm.REVERT)
		p.Label(ok)
	case RequireVarNonZero:
		if err := cc.emitReadVar(st.Var); err != nil {
			return err
		}
		ok := cc.fresh("req_ok")
		p.JumpI(ok)
		p.PushUint(0).PushUint(0).Op(evm.REVERT)
		p.Label(ok)
	case RequireCallerIs:
		if err := cc.emitReadVar(st.Var); err != nil {
			return err
		}
		ok := cc.fresh("auth_ok")
		p.Op(evm.CALLER).Op(evm.EQ).JumpI(ok)
		p.PushUint(0).PushUint(0).Op(evm.REVERT)
		p.Label(ok)
	case RequireInitializable:
		ok := cc.fresh("init_ok")
		if err := cc.emitReadVar(st.Initializing); err != nil {
			return err
		}
		p.JumpI(ok) // initializing != 0 -> ok
		if err := cc.emitReadVar(st.Initialized); err != nil {
			return err
		}
		p.Op(evm.ISZERO).JumpI(ok) // !initialized -> ok
		p.PushUint(0).PushUint(0).Op(evm.REVERT)
		p.Label(ok)
	case AssignCallerToSlot:
		p.Op(evm.CALLER)
		cc.emitWriteLoc(st.Slot.Word(), st.Offset, st.Size)
	case ReturnSlotField:
		cc.emitReadLoc(st.Slot.Word(), st.Offset, st.Size)
		cc.emitReturnTop()
	case SendToCaller:
		p.PushUint(0).PushUint(0). // ret region
						PushUint(0).PushUint(0). // args region
						Push(st.Amount).         // value
						Op(evm.CALLER).          // to
						Op(evm.GAS).
						Op(evm.CALL).Op(evm.POP)
	case DelegateCallSig:
		cc.emitConstructedDelegateCall(st.Target, st.Proto, st.Args)
	case InlineAsm:
		st.Emit(p, cc.fresh)
	case Stop:
		p.Op(evm.STOP)
	case Revert:
		p.PushUint(0).PushUint(0).Op(evm.REVERT)
	default:
		return fmt.Errorf("unsupported statement %T", s)
	}
	return nil
}

// emitReturnTop stores the top-of-stack word at memory 0 and returns it.
func (cc *compiler) emitReturnTop() {
	cc.prog.PushUint(0).Op(evm.MSTORE).
		PushUint(32).PushUint(0).Op(evm.RETURN)
}

// emitReadVar loads a storage variable onto the stack, applying the
// shift-and-mask sequence Solidity emits for packed variables.
func (cc *compiler) emitReadVar(name string) error {
	sv, ok := cc.layout[name]
	if !ok {
		return fmt.Errorf("undefined variable %q", name)
	}
	cc.emitReadLoc(u256.FromUint64(sv.Slot), sv.Offset, sv.Size)
	return nil
}

// emitReadLoc loads the field at (slot, offset, size) onto the stack.
func (cc *compiler) emitReadLoc(slot u256.Int, offset, size int) {
	p := cc.prog
	p.Push(slot).Op(evm.SLOAD)
	if offset > 0 {
		p.PushUint(uint64(offset * 8)).Op(evm.SHR)
	}
	if size < 32 {
		p.Push(maskFor(size)).Op(evm.AND)
	}
}

// emitWriteVar stores the top-of-stack value into a storage variable,
// using read-modify-write for packed variables.
func (cc *compiler) emitWriteVar(name string) error {
	sv, ok := cc.layout[name]
	if !ok {
		return fmt.Errorf("undefined variable %q", name)
	}
	cc.emitWriteLoc(u256.FromUint64(sv.Slot), sv.Offset, sv.Size)
	return nil
}

// emitWriteLoc stores the top-of-stack value into (slot, offset, size),
// using read-modify-write when the field does not fill the slot.
func (cc *compiler) emitWriteLoc(slot u256.Int, offset, size int) {
	p := cc.prog
	if offset == 0 && size == 32 {
		p.Push(slot).Op(evm.SSTORE)
		return
	}
	mask := maskFor(size)
	clear := mask.Shl(uint(offset * 8)).Not()
	// stack: value
	p.Push(slot).Op(evm.SLOAD). // value, old
					Push(clear).Op(evm.AND). // value, cleared
					Op(evm.SWAP1).           // cleared, value
					Push(mask).Op(evm.AND)   // cleared, value&mask
	if offset > 0 {
		p.PushUint(uint64(offset * 8)).Op(evm.SHL)
	}
	p.Op(evm.OR).Push(slot).Op(evm.SSTORE)
}

// maskFor returns the low-bits mask for a packed width.
func maskFor(size int) u256.Int {
	return u256.One().Shl(uint(size * 8)).Sub(u256.One())
}

// emitConstructedDelegateCall builds call data for proto(args...) in memory
// and delegatecalls target with it. The call data is constructed, not
// forwarded — the library idiom.
func (cc *compiler) emitConstructedDelegateCall(target etypes.Address, proto string, args []u256.Int) {
	p := cc.prog
	sel := keccak.Selector(proto)
	// mem[0..31] = selector left-aligned.
	selWord := u256.FromBytes(sel[:]).Shl(224)
	p.Push(selWord).PushUint(0).Op(evm.MSTORE)
	for i, a := range args {
		p.Push(a).PushUint(uint64(4 + 32*i)).Op(evm.MSTORE)
	}
	size := uint64(4 + 32*len(args))
	p.PushUint(0).PushUint(0). // ret region
					PushUint(size).PushUint(0). // args region
					PushBytes(target[:]).
					Op(evm.GAS).
					Op(evm.DELEGATECALL).Op(evm.POP)
}

// emitForwardDelegateCall emits the canonical proxy fallback: copy the
// entire incoming call data to memory, delegatecall the target, and bubble
// the result up verbatim. pushTarget must leave the callee address on the
// stack top.
func (cc *compiler) emitForwardDelegateCall(pushTarget func()) {
	p := cc.prog
	ok := cc.fresh("dc_ok")
	p.Op(evm.CALLDATASIZE).PushUint(0).PushUint(0).Op(evm.CALLDATACOPY)
	p.PushUint(0).PushUint(0). // ret region (copied via returndata below)
					Op(evm.CALLDATASIZE).PushUint(0) // args: mem[0..cds)
	pushTarget()
	p.Op(evm.GAS).Op(evm.DELEGATECALL)
	p.Op(evm.RETURNDATASIZE).PushUint(0).PushUint(0).Op(evm.RETURNDATACOPY)
	p.JumpI(ok)
	p.Op(evm.RETURNDATASIZE).PushUint(0).Op(evm.REVERT)
	p.Label(ok)
	p.Op(evm.RETURNDATASIZE).PushUint(0).Op(evm.RETURN)
}

// emitFallback generates the fallback body for the contract's kind.
func (cc *compiler) emitFallback() error {
	p := cc.prog
	fb := cc.contract.Fallback
	switch fb.Kind {
	case FallbackRevert:
		p.PushUint(0).PushUint(0).Op(evm.REVERT)
	case FallbackStop:
		p.Op(evm.STOP)
	case FallbackDelegateStorage:
		cc.emitForwardDelegateCall(func() {
			// Solidity casts the slot value to address: mask to 160 bits.
			p.Push(fb.Slot.Word()).Op(evm.SLOAD).
				Push(maskFor(20)).Op(evm.AND)
		})
	case FallbackDelegateHardcoded:
		cc.emitForwardDelegateCall(func() {
			p.PushBytes(fb.Target[:])
		})
	case FallbackDelegateDiamond:
		cc.emitDiamondFallback(fb.Slot)
	case FallbackDelegateBeacon:
		cc.emitBeaconFallback(fb.Slot)
	case FallbackLibraryCall:
		cc.emitConstructedDelegateCall(fb.Target, fb.Proto, nil)
		p.Op(evm.STOP)
	default:
		return fmt.Errorf("unknown fallback kind %d", fb.Kind)
	}
	return nil
}

// emitBeaconFallback implements the EIP-1967 beacon shape: the proxy's own
// storage holds only the beacon address; the logic address is fetched with
// a STATICCALL to beacon.implementation() on every call and then
// delegatecalled. Upgrades rewrite the beacon's storage — the proxy's
// storage never changes, which is why a follower watching only the proxy's
// slots would miss beacon upgrades entirely.
func (cc *compiler) emitBeaconFallback(beaconSlot etypes.Hash) {
	p := cc.prog
	ok := cc.fresh("beacon_ok")
	// beacon = address(sload(beaconSlot))
	p.Push(beaconSlot.Word()).Op(evm.SLOAD).
		Push(maskFor(20)).Op(evm.AND)
	// mem[0..31] = implementation() selector, left-aligned.
	sel := keccak.Selector("implementation()")
	selWord := u256.FromBytes(sel[:]).Shl(224)
	p.Push(selWord).PushUint(0).Op(evm.MSTORE)
	// staticcall(gas, beacon, 0, 4, 0, 32)
	p.PushUint(32).PushUint(0). // ret region: mem[0..32)
					PushUint(4).PushUint(0) // args region: mem[0..4)
	p.Op(evm.DUP1 + 4) // DUP5: beacon sits below retLen/retOff/argsLen/argsOff
	p.Op(evm.GAS).Op(evm.STATICCALL)
	p.JumpI(ok)
	p.PushUint(0).PushUint(0).Op(evm.REVERT)
	p.Label(ok)
	p.Op(evm.POP) // drop the beacon address
	// impl = address(mload(0)); forward the call data to it.
	p.PushUint(0).Op(evm.MLOAD).Push(maskFor(20)).Op(evm.AND)
	cc.emitForwardDelegateCall(func() {
		p.Op(evm.DUP1 + 4) // DUP5: impl sits below retLen/retOff/argsLen/argsOff
	})
}

// emitDiamondFallback implements the EIP-2535 shape: facet =
// sload(keccak(selector, baseSlot)); unregistered selectors revert before
// any DELEGATECALL executes, which is why emulation with random call data
// cannot observe forwarding (the paper's acknowledged diamond limitation).
func (cc *compiler) emitDiamondFallback(baseSlot etypes.Hash) {
	p := cc.prog
	miss := cc.fresh("facet_miss")
	found := cc.fresh("facet_found")
	// selector
	p.PushUint(0).Op(evm.CALLDATALOAD).PushUint(0xe0).Op(evm.SHR)
	// mem[0..31] = selector, mem[32..63] = base slot; facetSlot = keccak(mem[0:64])
	p.PushUint(0).Op(evm.MSTORE)
	p.Push(baseSlot.Word()).PushUint(32).Op(evm.MSTORE)
	p.PushUint(64).PushUint(0).Op(evm.KECCAK256)
	p.Op(evm.SLOAD) // facet address
	p.Op(evm.DUP1).Op(evm.ISZERO).JumpI(miss)
	p.Jump(found)
	p.Label(miss)
	p.PushUint(0).PushUint(0).Op(evm.REVERT)
	p.Label(found)
	// Facet is on the stack; forward the call data to it.
	cc.emitForwardDelegateCall(func() {
		p.Op(evm.DUP1 + 4) // DUP5: facet sits below retLen/retOff/argsLen/argsOff
	})
}
