package solc_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/solc"
	"repro/internal/u256"
)

var (
	owner    = etypes.MustAddress("0x0000000000000000000000000000000000000e0e")
	attacker = etypes.MustAddress("0x0000000000000000000000000000000000000bad")
	victim   = etypes.MustAddress("0x00000000000000000000000000000000000f00d1")
)

func deploy(t *testing.T, c *chain.Chain, addr string, contract *solc.Contract) etypes.Address {
	t.Helper()
	a := etypes.MustAddress(addr)
	code, err := solc.Compile(contract)
	if err != nil {
		t.Fatalf("compile %s: %v", contract.Name, err)
	}
	c.InstallContract(a, code)
	return a
}

func TestLayoutPacking(t *testing.T) {
	vars := []solc.Var{
		{Name: "a", Type: solc.TypeBool},    // slot 0 offset 0
		{Name: "b", Type: solc.TypeBool},    // slot 0 offset 1
		{Name: "c", Type: solc.TypeAddress}, // slot 0 offset 2 (fits: 2+20 <= 32)
		{Name: "d", Type: solc.TypeUint256}, // slot 1 (full)
		{Name: "e", Type: solc.TypeUint128}, // slot 2 offset 0
		{Name: "f", Type: solc.TypeUint128}, // slot 2 offset 16
		{Name: "g", Type: solc.TypeUint8},   // slot 3 (slot 2 exactly full)
		{Name: "h", Type: solc.TypeMapping}, // slot 4 (mappings own a slot)
	}
	want := []struct {
		slot   uint64
		offset int
	}{
		{0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}, {2, 16}, {3, 0}, {4, 0},
	}
	layout := solc.Layout(vars)
	for i, w := range want {
		if layout[i].Slot != w.slot || layout[i].Offset != w.offset {
			t.Errorf("%s: got slot %d offset %d, want slot %d offset %d",
				vars[i].Name, layout[i].Slot, layout[i].Offset, w.slot, w.offset)
		}
	}
}

func TestGetterSetterRoundTrip(t *testing.T) {
	contract := &solc.Contract{
		Name: "Store",
		Vars: []solc.Var{
			{Name: "flag", Type: solc.TypeBool},
			{Name: "who", Type: solc.TypeAddress},
			{Name: "count", Type: solc.TypeUint256},
		},
		Funcs: []solc.Func{
			{
				ABI:  abi.Function{Name: "setCount", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "count", Arg: 0}},
			},
			{
				ABI:  abi.Function{Name: "count"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "count"}},
			},
			{
				ABI:  abi.Function{Name: "setWho"},
				Body: []solc.Stmt{solc.AssignCaller{Var: "who"}},
			},
			{
				ABI:  abi.Function{Name: "who"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "who"}},
			},
			{
				ABI:  abi.Function{Name: "enable"},
				Body: []solc.Stmt{solc.AssignConst{Var: "flag", Value: u256.One()}},
			},
			{
				ABI:  abi.Function{Name: "flag"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "flag"}},
			},
		},
	}
	c := chain.New()
	addr := deploy(t, c, "0x0000000000000000000000000000000000005001", contract)

	set := contract.Funcs[0].ABI.Selector()
	get := contract.Funcs[1].ABI.Selector()
	if rc := c.Execute(owner, addr, abi.EncodeCall(set, u256.FromUint64(789)), 0, u256.Zero()); !rc.Status {
		t.Fatalf("setCount: %v", rc.Err)
	}
	rc := c.Execute(owner, addr, abi.EncodeCall(get), 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("count(): %v", rc.Err)
	}
	if got := u256.FromBytes(rc.Output); got.Uint64() != 789 {
		t.Errorf("count = %s, want 789", got)
	}

	// Packed vars: setWho must not clobber flag and vice versa.
	enable := contract.Funcs[4].ABI.Selector()
	setWho := contract.Funcs[2].ABI.Selector()
	getWho := contract.Funcs[3].ABI.Selector()
	getFlag := contract.Funcs[5].ABI.Selector()
	if rc := c.Execute(owner, addr, abi.EncodeCall(enable), 0, u256.Zero()); !rc.Status {
		t.Fatalf("enable: %v", rc.Err)
	}
	if rc := c.Execute(owner, addr, abi.EncodeCall(setWho), 0, u256.Zero()); !rc.Status {
		t.Fatalf("setWho: %v", rc.Err)
	}
	rc = c.Execute(owner, addr, abi.EncodeCall(getWho), 0, u256.Zero())
	if got := etypes.AddressFromWord(u256.FromBytes(rc.Output)); got != owner {
		t.Errorf("who = %s, want %s", got, owner)
	}
	rc = c.Execute(owner, addr, abi.EncodeCall(getFlag), 0, u256.Zero())
	if got := u256.FromBytes(rc.Output); got.Uint64() != 1 {
		t.Errorf("flag clobbered by packed neighbour write: %s", got)
	}
}

func TestFallbackRevertOnUnknownSelector(t *testing.T) {
	contract := &solc.Contract{
		Name: "Strict",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "ping"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}},
		}},
	}
	c := chain.New()
	addr := deploy(t, c, "0x0000000000000000000000000000000000005002", contract)
	rc := c.Execute(owner, addr, []byte{0xde, 0xad, 0xbe, 0xef}, 0, u256.Zero())
	if rc.Status {
		t.Error("unknown selector should revert with FallbackRevert")
	}
	sel := contract.Funcs[0].ABI.Selector()
	rc = c.Execute(owner, addr, abi.EncodeCall(sel), 0, u256.Zero())
	if !rc.Status || u256.FromBytes(rc.Output).Uint64() != 1 {
		t.Errorf("ping failed: %v output %x", rc.Err, rc.Output)
	}
}

func TestProxyForwardsToStorageImplementation(t *testing.T) {
	// Logic: value() returns storage var "value" (slot 1 in proxy layout).
	logic := &solc.Contract{
		Name: "LogicV1",
		Vars: []solc.Var{
			{Name: "ignored", Type: solc.TypeAddress}, // mirrors proxy slot 0
			{Name: "value", Type: solc.TypeUint256},   // slot 1
		},
		Funcs: []solc.Func{
			{
				ABI:  abi.Function{Name: "value"},
				Body: []solc.Stmt{solc.ReturnStorageVar{Var: "value"}},
			},
			{
				ABI:  abi.Function{Name: "setValue", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "value", Arg: 0}},
			},
		},
	}
	implSlot := etypes.Hash{} // implementation address in slot 0
	proxy := &solc.Contract{
		Name:     "Proxy",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}

	c := chain.New()
	logicAddr := deploy(t, c, "0x0000000000000000000000000000000000005004", logic)
	proxyAddr := deploy(t, c, "0x0000000000000000000000000000000000005003", proxy)
	c.SetStorageDirect(proxyAddr, implSlot, etypes.HashFromWord(logicAddr.Word()))

	setSel := logic.Funcs[1].ABI.Selector()
	getSel := logic.Funcs[0].ABI.Selector()
	if rc := c.Execute(owner, proxyAddr, abi.EncodeCall(setSel, u256.FromUint64(4242)), 0, u256.Zero()); !rc.Status {
		t.Fatalf("proxied setValue: %v", rc.Err)
	}
	rc := c.Execute(owner, proxyAddr, abi.EncodeCall(getSel), 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("proxied value(): %v", rc.Err)
	}
	if got := u256.FromBytes(rc.Output); got.Uint64() != 4242 {
		t.Errorf("proxied value = %s, want 4242", got)
	}
	// The write landed in the proxy's storage, not the logic's.
	slot1 := etypes.HashFromWord(u256.One())
	if got := c.GetState(proxyAddr, slot1).Word(); got.Uint64() != 4242 {
		t.Errorf("proxy slot1 = %s, want 4242", got)
	}
	if got := c.GetState(logicAddr, slot1); got != (etypes.Hash{}) {
		t.Errorf("logic storage polluted: %s", got)
	}
	// Revert bubbling: unknown selector forwards to logic whose dispatcher
	// reverts, and the proxy must bubble that revert.
	rc = c.Execute(owner, proxyAddr, []byte{1, 2, 3, 4}, 0, u256.Zero())
	if rc.Status {
		t.Error("proxy should bubble logic's revert")
	}
}

func TestFunctionCollisionShadowsLogic(t *testing.T) {
	// The paper's Listing 1 structure: a proxy function whose selector
	// equals a logic function's selector shadows it — callers reach the
	// proxy body, never the logic.
	shared := abi.Function{Name: "claim"}
	logic := &solc.Contract{
		Name: "Lure",
		Funcs: []solc.Func{{
			ABI:  shared,
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(10)}},
		}},
	}
	proxy := &solc.Contract{
		Name: "Trap",
		Vars: []solc.Var{{Name: "impl", Type: solc.TypeAddress}},
		Funcs: []solc.Func{{
			ABI:  shared, // same selector: collision
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(666)}},
		}},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage},
	}
	c := chain.New()
	logicAddr := deploy(t, c, "0x0000000000000000000000000000000000005006", logic)
	proxyAddr := deploy(t, c, "0x0000000000000000000000000000000000005005", proxy)
	c.SetStorageDirect(proxyAddr, etypes.Hash{}, etypes.HashFromWord(logicAddr.Word()))

	rc := c.Execute(victim, proxyAddr, abi.EncodeCall(shared.Selector()), 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("claim: %v", rc.Err)
	}
	if got := u256.FromBytes(rc.Output); got.Uint64() != 666 {
		t.Errorf("collided call returned %s; proxy function must shadow logic", got)
	}
}

func TestAudiusStorageCollisionReplay(t *testing.T) {
	// Listing 2: proxy stores owner (address) at slot 0; logic packs
	// initialized+initializing bools at slot 0. initialize() can be called
	// repeatedly because writing owner corrupts the guard bits.
	// The logic declares the guard bools at slot 0; `owner` comes from a
	// different contract in its inheritance chain whose layout also starts
	// at slot 0 — so assigning it writes the address over the guard bytes.
	ownerLoc := struct {
		slot   etypes.Hash
		offset int
		size   int
	}{etypes.Hash{}, 0, 20}
	logic := &solc.Contract{
		Name: "AudiusLogic",
		Vars: []solc.Var{
			{Name: "initialized", Type: solc.TypeBool},
			{Name: "initializing", Type: solc.TypeBool},
		},
		Funcs: []solc.Func{
			{
				ABI: abi.Function{Name: "initialize"},
				Body: []solc.Stmt{
					solc.RequireInitializable{Initialized: "initialized", Initializing: "initializing"},
					solc.AssignConst{Var: "initialized", Value: u256.One()},
					solc.AssignConst{Var: "initializing", Value: u256.Zero()},
					solc.AssignCallerToSlot{Slot: ownerLoc.slot, Offset: ownerLoc.offset, Size: ownerLoc.size},
				},
			},
			{
				ABI:  abi.Function{Name: "owner"},
				Body: []solc.Stmt{solc.ReturnSlotField{Slot: ownerLoc.slot, Offset: ownerLoc.offset, Size: ownerLoc.size}},
			},
		},
	}
	proxy := &solc.Contract{
		Name: "AudiusProxy",
		Vars: []solc.Var{
			{Name: "owner", Type: solc.TypeAddress}, // slot 0: collides
			{Name: "logic", Type: solc.TypeAddress}, // slot 1
		},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: etypes.HashFromWord(u256.One())},
	}
	c := chain.New()
	logicAddr := deploy(t, c, "0x0000000000000000000000000000000000005008", logic)
	proxyAddr := deploy(t, c, "0x0000000000000000000000000000000000005007", proxy)
	c.SetStorageDirect(proxyAddr, etypes.HashFromWord(u256.One()), etypes.HashFromWord(logicAddr.Word()))

	initSel := logic.Funcs[0].ABI.Selector()
	ownerSel := logic.Funcs[1].ABI.Selector()

	// The legitimate owner initializes.
	if rc := c.Execute(owner, proxyAddr, abi.EncodeCall(initSel), 0, u256.Zero()); !rc.Status {
		t.Fatalf("first initialize: %v", rc.Err)
	}
	// The attacker re-initializes — this MUST succeed because of the
	// storage collision (the guard reads bytes of the owner address).
	if rc := c.Execute(attacker, proxyAddr, abi.EncodeCall(initSel), 0, u256.Zero()); !rc.Status {
		t.Fatalf("attacker re-initialize should succeed via collision, got %v", rc.Err)
	}
	rc := c.Execute(victim, proxyAddr, abi.EncodeCall(ownerSel), 0, u256.Zero())
	got := etypes.AddressFromWord(u256.FromBytes(rc.Output))
	if got != attacker {
		t.Errorf("owner after exploit = %s, want attacker %s", got, attacker)
	}
}

func TestLibraryCallIsNotForwarding(t *testing.T) {
	lib := etypes.MustAddress("0x0000000000000000000000000000000000005100")
	contract := &solc.Contract{
		Name: "UsesLib",
		Fallback: solc.Fallback{
			Kind:   solc.FallbackLibraryCall,
			Target: lib,
			Proto:  "sqrt(uint256)",
		},
	}
	code := solc.MustCompile(contract)
	// The library idiom contains DELEGATECALL...
	if !disasm.ContainsOp(code, 0xf4) {
		t.Fatal("library-call contract must contain DELEGATECALL")
	}
	// ...and executing it calls the library with constructed 4-byte data,
	// not the forwarded call data.
	c := chain.New()
	addr := etypes.MustAddress("0x0000000000000000000000000000000000005101")
	c.InstallContract(addr, code)
	c.InstallContract(lib, []byte{0x00}) // STOP
	rc := c.Execute(owner, addr, []byte{9, 9, 9, 9, 9, 9, 9, 9}, 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("library call: %v", rc.Err)
	}
	events := c.DelegateEvents()
	if len(events) != 1 || events[0].Logic != lib {
		t.Fatalf("events = %+v", events)
	}
}

func TestDiamondFallback(t *testing.T) {
	facetAddr := etypes.MustAddress("0x0000000000000000000000000000000000005200")
	facet := &solc.Contract{
		Name: "Facet",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "facetFn"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(77)}},
		}},
	}
	baseSlot := etypes.HashFromWord(u256.FromUint64(0x2535))
	diamond := &solc.Contract{
		Name:     "Diamond",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateDiamond, Slot: baseSlot},
	}
	c := chain.New()
	c.InstallContract(facetAddr, solc.MustCompile(facet))
	dAddr := etypes.MustAddress("0x0000000000000000000000000000000000005201")
	c.InstallContract(dAddr, solc.MustCompile(diamond))

	// Register facetFn's selector in the diamond's facet mapping:
	// slot = keccak(selector_word ++ baseSlot).
	sel := facet.Funcs[0].ABI.Selector()
	selWord := u256.FromBytes(sel[:]).Shl(224).Shr(224) // selector as low 4 bytes
	pre := make([]byte, 64)
	sw := selWord.Bytes32()
	copy(pre[:32], sw[:])
	copy(pre[32:], baseSlot[:])
	facetSlot := etypes.Keccak(pre)
	c.SetStorageDirect(dAddr, facetSlot, etypes.HashFromWord(facetAddr.Word()))

	// Registered selector: forwarded.
	rc := c.Execute(owner, dAddr, abi.EncodeCall(sel), 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("registered facet call: %v", rc.Err)
	}
	if got := u256.FromBytes(rc.Output); got.Uint64() != 77 {
		t.Errorf("facet output = %s, want 77", got)
	}
	// Unregistered selector: reverts before any delegatecall.
	before := len(c.DelegateEvents())
	rc = c.Execute(owner, dAddr, []byte{0xaa, 0xbb, 0xcc, 0xdd}, 0, u256.Zero())
	if rc.Status {
		t.Error("unregistered selector should revert")
	}
	if len(c.DelegateEvents()) != before {
		t.Error("unregistered facet call still emitted a delegatecall")
	}
}

func TestDispatcherSelectorsMatchABI(t *testing.T) {
	contract := &solc.Contract{
		Name: "Multi",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "alpha"}, Body: []solc.Stmt{solc.Stop{}}},
			{ABI: abi.Function{Name: "beta", Params: []string{"uint256"}}, Body: []solc.Stmt{solc.Stop{}}},
			{ABI: abi.Function{Name: "gamma", Params: []string{"address", "uint256"}}, Body: []solc.Stmt{solc.Stop{}}},
		},
		DecoyPush4: [][4]byte{{0x11, 0x22, 0x33, 0x44}, {0xca, 0xfe, 0xba, 0xbe}},
	}
	code := solc.MustCompile(contract)

	got := disasm.DispatcherSelectors(code)
	want := contract.Selectors()
	if len(got) != len(want) {
		t.Fatalf("dispatcher selectors = %d, want %d: %x", len(got), len(want), got)
	}
	wantSet := map[[4]byte]bool{}
	for _, s := range want {
		wantSet[s] = true
	}
	for _, s := range got {
		if !wantSet[s] {
			t.Errorf("unexpected selector %x (decoy leaked into dispatcher set?)", s)
		}
	}
	// The naive any-PUSH4 scan must also pick up the decoys.
	naive := disasm.Push4Candidates(code)
	if len(naive) != len(want)+2 {
		t.Errorf("push4 candidates = %d, want %d", len(naive), len(want)+2)
	}
}

func TestCompileInitDeploysWithConstructorStorage(t *testing.T) {
	contract := &solc.Contract{
		Name: "Ctor",
		Vars: []solc.Var{{Name: "x", Type: solc.TypeUint256}},
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "x"},
			Body: []solc.Stmt{solc.ReturnStorageVar{Var: "x"}},
		}},
	}
	runtime := solc.MustCompile(contract)
	init := solc.CompileInit(runtime, map[etypes.Hash]etypes.Hash{
		{}: etypes.HashFromWord(u256.FromUint64(31337)),
	})
	c := chain.New()
	rc := c.Deploy(owner, init, 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("deploy: %v", rc.Err)
	}
	if string(c.Code(rc.ContractAddress)) != string(runtime) {
		t.Error("runtime mismatch after init-code deployment")
	}
	sel := contract.Funcs[0].ABI.Selector()
	out := c.Execute(owner, rc.ContractAddress, abi.EncodeCall(sel), 0, u256.Zero())
	if got := u256.FromBytes(out.Output); got.Uint64() != 31337 {
		t.Errorf("constructor-initialized x = %s, want 31337", got)
	}
}

func TestMinimalProxyRoundTrip(t *testing.T) {
	logicAddr := etypes.MustAddress("0x0000000000000000000000000000000000005300")
	code := disasm.MinimalProxyRuntime(logicAddr)
	if got, ok := disasm.MinimalProxyTarget(code); !ok || got != logicAddr {
		t.Fatalf("minimal proxy target = %s ok=%v", got, ok)
	}
	// Executing the EIP-1167 runtime must actually forward.
	logic := &solc.Contract{
		Name: "CloneLogic",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "magic"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.FromUint64(0x1167)}},
		}},
	}
	c := chain.New()
	c.InstallContract(logicAddr, solc.MustCompile(logic))
	cloneAddr := etypes.MustAddress("0x0000000000000000000000000000000000005301")
	c.InstallContract(cloneAddr, code)
	sel := logic.Funcs[0].ABI.Selector()
	rc := c.Execute(owner, cloneAddr, abi.EncodeCall(sel), 0, u256.Zero())
	if !rc.Status {
		t.Fatalf("minimal proxy call: %v", rc.Err)
	}
	if got := u256.FromBytes(rc.Output); got.Uint64() != 0x1167 {
		t.Errorf("minimal proxy output = %s", got)
	}
}
