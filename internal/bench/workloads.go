package bench

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"repro/internal/asm"
	"repro/internal/chain"
	"repro/internal/dataset"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/faultchain"
	"repro/internal/gen"
	"repro/internal/keccak"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/static"
	"repro/internal/u256"
)

// Profile selects the suite's scale/sample trade-off.
type Profile string

const (
	// Quick is the PR-gate profile: small corpora, few samples, finishes in
	// well under a minute on a laptop or CI runner.
	Quick Profile = "quick"
	// Full is the nightly profile: the bench_test.go-scale corpora with
	// enough samples for stable percentiles.
	Full Profile = "full"
)

// CalibrationName is the pure-CPU reference workload every run includes;
// the comparator divides all other timings by its median to cancel
// machine-speed differences between baseline and gate machines.
const CalibrationName = "calibration/keccak256"

// Instance is one set-up workload, ready to measure.
type Instance struct {
	// Op runs the workload once. Every call must redo the full measured
	// work (e.g. a fresh detector per call, so no verdict cache survives
	// between ops).
	Op func()
	// Counters reports the deterministic outputs of the most recent Op
	// call: equal (seed, scale) must yield equal maps on any machine and
	// any scheduling. Nil when the workload has no counters.
	Counters func() map[string]int64
}

// Workload is one named, seeded, fixed-scale measurement.
type Workload struct {
	Name string
	// Desc is a one-line description for -list output and reports.
	Desc string
	// Scale is the workload's input-size knob (contracts, loop iterations).
	Scale int
	// Batch is how many ops each timing sample aggregates; >1 smooths
	// microsecond-scale workloads.
	Batch int
	// Setup builds the instance: generates corpora, compiles bytecode,
	// allocates state. Setup time is never measured.
	Setup func(seed int64, scale int) Instance
}

// Suite returns the workload catalogue for a profile. Workload names are
// stable across profiles (only scales differ) so quick runs gate against a
// quick baseline and full runs against a full one.
func Suite(p Profile) []Workload {
	type dims struct{ pipeline, corpus, evmLoop int }
	d := dims{pipeline: 1200, corpus: 48, evmLoop: 8_000}
	if p == Full {
		d = dims{pipeline: 4000, corpus: 96, evmLoop: 50_000}
	}
	return []Workload{
		{
			Name:  CalibrationName,
			Desc:  "pure-CPU reference: Keccak-256 over a fixed 4 KiB buffer",
			Scale: 4096,
			Batch: 256,
			Setup: setupCalibration,
		},
		{
			Name:  "detector/check-mixed",
			Desc:  "single-contract detection (Section 4) over the labeled mixed proxy corpus",
			Scale: d.corpus,
			Batch: 1,
			Setup: setupDetectorCheck,
		},
		{
			Name:  "pipeline/stream-1w",
			Desc:  "end-to-end streaming pipeline, every stage at 1 worker",
			Scale: d.pipeline,
			Batch: 1,
			Setup: setupPipeline(workerPlan{filter: 1, probe: 1, classify: 1, pair: 1}),
		},
		{
			Name:  "pipeline/stream-2w",
			Desc:  "end-to-end streaming pipeline, every stage at 2 workers",
			Scale: d.pipeline,
			Batch: 1,
			Setup: setupPipeline(workerPlan{filter: 2, probe: 2, classify: 2, pair: 2}),
		},
		{
			Name:  "pipeline/stream-maxw",
			Desc:  "end-to-end streaming pipeline at the production GOMAXPROCS-derived pools",
			Scale: d.pipeline,
			Batch: 1,
			Setup: setupPipeline(workerPlan{}),
		},
		{
			Name:  "pipeline/stream-maxw-nocache",
			Desc:  "same pipeline with the bytecode-dedup verdict cache disabled (ablation)",
			Scale: d.pipeline,
			Batch: 1,
			Setup: setupPipeline(workerPlan{disableDedup: true}),
		},
		{
			Name:  "pipeline/stream-resilient",
			Desc:  "stream-maxw with every node read through the fault-free resilient client (overhead check)",
			Scale: d.pipeline,
			Batch: 1,
			Setup: setupPipeline(workerPlan{resilient: true}),
		},
		{
			Name:  "static/summary",
			Desc:  "emulation-free static summary (CFG, selectors, slots, delegate provenance) over the labeled corpus",
			Scale: d.corpus,
			Batch: 1,
			Setup: setupStaticSummary,
		},
		{
			Name:  "pipeline/stream-nearclone",
			Desc:  "streaming pipeline over a clone-heavy landscape (EIP-1167 stamps + slot twins): structural-promotion uplift",
			Scale: d.pipeline,
			Batch: 1,
			Setup: setupNearClonePipeline,
		},
		{
			Name:  "collision/storage-slicing",
			Desc:  "storage-access extraction + collision slicing (Section 5) over every generated pair",
			Scale: d.corpus,
			Batch: 1,
			Setup: setupStorageSlicing,
		},
		{
			Name:  "evm/interp-loop",
			Desc:  "raw EVM interpretation of an arithmetic/MSTORE loop (ops/sec floor)",
			Scale: d.evmLoop,
			Batch: 4,
			Setup: setupEVMLoop(evm.InterpFast),
		},
		{
			Name:  "evm/interp-reference",
			Desc:  "the same loop under the retained reference interpreter (fast-path ablation)",
			Scale: d.evmLoop,
			Batch: 4,
			Setup: setupEVMLoop(evm.InterpReference),
		},
		{
			Name:  "evm/interp-fused",
			Desc:  "selector-dispatcher chain exercising the fused superinstructions (dispatch, dup-branch)",
			Scale: d.evmLoop / 4,
			Batch: 4,
			Setup: setupEVMFused,
		},
	}
}

// FindWorkload returns the named workload from a profile's suite.
func FindWorkload(p Profile, name string) (Workload, bool) {
	for _, w := range Suite(p) {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// setupCalibration hashes a seed-filled fixed-size buffer. No corpus, no
// allocation in the op: the timing is (nearly) pure CPU, which is what the
// comparator's machine-speed normalization needs.
func setupCalibration(seed int64, scale int) Instance {
	buf := make([]byte, scale)
	for i := range buf {
		buf[i] = byte(int64(i) * (seed + 1))
	}
	var sink byte
	return Instance{
		Op: func() {
			sum := keccak.Sum256(buf)
			sink ^= sum[0]
		},
		Counters: func() map[string]int64 {
			return map[string]int64{"bytes_hashed": int64(len(buf))}
		},
	}
}

// setupDetectorCheck runs Detector.Check over every contract of a gen
// corpus — the paper's per-contract detection latency (Section 6.1), on a
// mix of every proxy shape plus the adversarial negatives. A fresh
// detector per op keeps each call on the cold, full-emulation path.
func setupDetectorCheck(seed int64, scale int) Instance {
	c := gen.Generate(gen.Config{Seed: seed, Contracts: scale})
	var last map[string]int64
	return Instance{
		Op: func() {
			det := proxion.NewDetector(c.Chain)
			var proxies, checked int64
			for _, l := range c.Labels {
				if det.Check(l.Address).IsProxy {
					proxies++
				}
				checked++
			}
			last = map[string]int64{
				"contracts_checked": checked,
				"proxies_detected":  proxies,
			}
		},
		Counters: func() map[string]int64 { return last },
	}
}

// workerPlan pins the streaming engine's stage pools for one workload.
type workerPlan struct {
	filter, probe, classify, pair int
	disableDedup                  bool
	// resilient routes every node read through the faultchain client (no
	// fault injector), measuring the resilience layer's fault-free overhead
	// against the stream-maxw workload.
	resilient bool
}

// setupPipeline runs the whole-landscape streaming analysis
// (AnalyzeAllWithOptions) over a dataset landscape — the clone-heavy
// population whose duplicate skew the dedup cache feeds on. Counters come
// from the pipeline's deterministic snapshot export.
func setupPipeline(plan workerPlan) func(seed int64, scale int) Instance {
	return func(seed int64, scale int) Instance {
		pop := dataset.Generate(dataset.Config{Seed: seed, Contracts: scale})
		opts := proxion.AnalyzeOptions{
			FilterWorkers:   plan.filter,
			ProbeWorkers:    plan.probe,
			ClassifyWorkers: plan.classify,
			PairWorkers:     plan.pair,
			DisableDedup:    plan.disableDedup,
		}
		var reader chain.Reader = pop.Chain
		if plan.resilient {
			client, _ := faultchain.NewResilientReader(pop.Chain, nil, faultchain.Options{})
			reader = client
		}
		var last map[string]int64
		return Instance{
			Op: func() {
				det := proxion.NewDetector(reader)
				res := det.AnalyzeAllWithOptions(pop.Registry, opts)
				last = res.Stats.Counters()
			},
			Counters: func() map[string]int64 { return last },
		}
	}
}

// setupStaticSummary runs the static analyzer over every contract of a
// gen corpus — the per-contract cost of the emulation-free fast path
// (CFG + bounded abstract-stack dataflow), isolated from detection.
func setupStaticSummary(seed int64, scale int) Instance {
	c := gen.Generate(gen.Config{Seed: seed, Contracts: scale})
	var last map[string]int64
	return Instance{
		Op: func() {
			var delegates, selectors, slotReads int64
			for _, l := range c.Labels {
				sum := static.Analyze(l.Code)
				delegates += int64(len(sum.Delegates))
				selectors += int64(len(sum.Selectors))
				slotReads += int64(len(sum.SlotReads))
			}
			last = map[string]int64{
				"contracts_summarized": int64(len(c.Labels)),
				"delegate_sites":       delegates,
				"selectors_recovered":  selectors,
				"const_slot_reads":     slotReads,
			}
		},
		Counters: func() map[string]int64 { return last },
	}
}

// NearCloneMix is the composition of the stream-nearclone landscape for
// a given scale, mirroring the mainnet skew the paper reports (~89% of
// proxies are EIP-1167 stamps): 60% minimal-proxy stamps of distinct
// logic addresses, 25% compiler twins differing only in their 32-byte
// implementation-slot constant, 15% byte-identical duplicates of the
// first stamp. Exported so the uplift test derives its expected counter
// values from the same arithmetic the workload uses.
func NearCloneMix(scale int) (stamps, twins, dupes int) {
	stamps = scale * 60 / 100
	twins = scale * 25 / 100
	dupes = scale - stamps - twins
	return stamps, twins, dupes
}

// nearCloneAddr derives a deterministic address for one landscape slot.
func nearCloneAddr(tag byte, i int) etypes.Address {
	var a etypes.Address
	a[0], a[1] = 0xbc, tag
	binary.BigEndian.PutUint32(a[15:19], uint32(i))
	return a
}

// setupNearClonePipeline streams a landscape dominated by near-clones —
// distinct bytecodes the exact-hash verdict cache can never coalesce —
// through the full pipeline. The structural second-level cache key
// should collapse each clone family to one emulation; the workload's
// counters (structural_hits, emulations, cache_hits) make the uplift a
// gated, machine-independent quantity rather than a timing artifact.
func setupNearClonePipeline(seed int64, scale int) Instance {
	stamps, twins, dupes := NearCloneMix(scale)
	st := chain.New()
	st.AdvanceTo(1)
	for i := 0; i < stamps; i++ {
		st.InstallContract(nearCloneAddr(0x01, i),
			disasm.MinimalProxyRuntime(nearCloneAddr(0xee, i)))
	}
	for i := 0; i < twins; i++ {
		addr := nearCloneAddr(0x02, i)
		slot := etypes.Keccak(addr[:])
		st.InstallContract(addr, solc.MustCompile(&solc.Contract{
			Name:     fmt.Sprintf("Twin%d", i),
			Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot},
		}))
		logic := nearCloneAddr(0xdd, i)
		st.SetStorageDirect(addr, slot, etypes.HashFromWord(logic.Word()))
	}
	// Byte-identical duplicates of the first stamp: the exact-hash tier's
	// share of the landscape.
	for i := 0; i < dupes; i++ {
		st.InstallContract(nearCloneAddr(0x03, i),
			disasm.MinimalProxyRuntime(nearCloneAddr(0xee, 0)))
	}
	var last map[string]int64
	return Instance{
		Op: func() {
			det := proxion.NewDetector(st)
			res := det.AnalyzeAllWithOptions(nil, proxion.AnalyzeOptions{})
			last = res.Stats.Counters()
		},
		Counters: func() map[string]int64 { return last },
	}
}

// setupStorageSlicing extracts storage accesses and slices collisions for
// every proxy/logic pair of a gen corpus — the Section 5 analysis isolated
// from detection.
func setupStorageSlicing(seed int64, scale int) Instance {
	c := gen.Generate(gen.Config{Seed: seed, Contracts: scale})
	type pair struct{ proxy, logic []byte }
	var pairs []pair
	for _, l := range c.Labels {
		if !l.IsProxy || l.Logic.IsZero() {
			continue
		}
		logic, ok := c.ByAddr[l.Logic]
		if !ok || len(logic.Code) == 0 {
			continue
		}
		pairs = append(pairs, pair{proxy: l.Code, logic: logic.Code})
	}
	var last map[string]int64
	return Instance{
		Op: func() {
			var collisions int64
			for _, p := range pairs {
				pAcc := proxion.ExtractStorageAccesses(p.proxy)
				lAcc := proxion.ExtractStorageAccesses(p.logic)
				collisions += int64(len(proxion.StorageCollisions(pAcc, lAcc)))
			}
			last = map[string]int64{
				"pairs_sliced":       int64(len(pairs)),
				"storage_collisions": collisions,
			}
		},
		Counters: func() map[string]int64 { return last },
	}
}

// setupEVMLoop interprets a tight countdown loop (10 opcodes per
// iteration: arithmetic, MSTORE, conditional jump) — a floor on raw
// interpreter speed that isolates the EVM from detection logic. The step
// count is derived from the loop structure, so it is deterministic by
// construction; a tracer is deliberately not installed, keeping the timing
// free of per-step callback overhead. The interpreter mode is a parameter:
// interp-loop measures the pre-decoded fast path, interp-reference the
// retained byte-at-a-time loop, and their ratio is the fast path's uplift
// as a gated quantity.
func setupEVMLoop(mode evm.InterpMode) func(seed int64, scale int) Instance {
	return func(seed int64, scale int) Instance {
		p := &asm.Program{}
		p.PushUint(uint64(scale)) //                 [n]
		p.Label("loop")           // JUMPDEST        [n]
		p.Op(evm.DUP1)            //                 [n, n]
		p.PushUint(0)             //                 [n, n, 0]
		p.Op(evm.MSTORE)          // mem[0] = n      [n]
		p.PushUint(1)             //                 [n, 1]
		p.Op(evm.SWAP1)           //                 [1, n]
		p.Op(evm.SUB)             //                 [n-1]
		p.Op(evm.DUP1)            //                 [n-1, n-1]
		p.JumpI("loop")           // PUSH2+JUMPI     [n-1]
		p.Op(evm.STOP)
		code := p.MustAssemble()

		// 1 PUSH prologue, then per iteration: JUMPDEST, DUP1, PUSH1, MSTORE,
		// PUSH1, SWAP1, SUB, DUP1, PUSH2, JUMPI; the last iteration falls
		// through to STOP.
		steps := int64(1 + 10*scale + 1)
		return evmCallInstance(mode, code, nil, steps, map[string]int64{
			"evm_steps":       steps,
			"loop_iterations": int64(scale),
		})
	}
}

// setupEVMFused interprets a dispatcher-shaped loop: each iteration walks a
// chain of 16 Solidity-style selector comparisons (DUP1; PUSH4 sel; EQ;
// PUSH2 dest; JUMPI — the fast path fuses the latter four into one
// kindDispatch superinstruction) that all miss, then branches back through
// a fused DUP1; PUSH2; JUMPI. This is the superinstruction-dense profile
// real proxy fallbacks present to the detector's probes.
func setupEVMFused(seed int64, scale int) Instance {
	const arms = 16
	p := &asm.Program{}
	p.PushUint(uint64(scale))   //                  [n]
	p.Label("loop")             // JUMPDEST         [n]
	p.PushUint(0xdeadbeef)      //                  [n, sel]
	for i := 0; i < arms; i++ { //                  (all compares miss)
		p.Op(evm.DUP1)
		p.PushBytes([]byte{0xaa, 0xbb, 0xcc, byte(i)}) // PUSH4
		p.Op(evm.EQ)
		p.JumpI("dead")
	}
	p.Op(evm.POP)   //                               [n]
	p.PushUint(1)   //                               [n, 1]
	p.Op(evm.SWAP1) //                               [1, n]
	p.Op(evm.SUB)   //                               [n-1]
	p.Op(evm.DUP1)  //                               [n-1, n-1]
	p.JumpI("loop") // fused DUP1+PUSH2+JUMPI        [n-1]
	p.Op(evm.STOP)
	p.Label("dead")
	p.Op(evm.INVALID)
	code := p.MustAssemble()

	// 1 prologue push, then per iteration: JUMPDEST, PUSH4 const, 5 source
	// instructions per arm, POP, PUSH1, SWAP1, SUB, DUP1, PUSH2, JUMPI; the
	// last iteration falls through to STOP.
	steps := int64(1 + (2+5*arms+7)*scale + 1)
	return evmCallInstance(evm.InterpFast, code, nil, steps, map[string]int64{
		"evm_steps":       steps,
		"dispatch_arms":   arms,
		"loop_iterations": int64(scale),
	})
}

// evmCallInstance builds the shared Instance shape of the raw-interpreter
// workloads: one Call per op against a fixed contract, counters reporting
// the structurally-derived step count (or -1 if the run errored, so a
// broken loop surfaces as counter drift instead of a fast timing).
func evmCallInstance(mode evm.InterpMode, code, input []byte, steps int64, counters map[string]int64) Instance {
	st := chain.New()
	st.AdvanceTo(1)
	var addr etypes.Address
	addr[19] = 0xeb
	st.InstallContract(addr, code)
	var caller etypes.Address
	caller[19] = 0xca

	var lastErr error
	return Instance{
		Op: func() {
			e := evm.New(st, evm.Config{
				Block:     evm.DefaultBlockContext(),
				Tx:        evm.TxContext{Origin: caller},
				Lenient:   true,
				StepLimit: uint64(steps) + 16,
				Interp:    mode,
			})
			res := e.Call(caller, addr, input, 1<<30, u256.Zero())
			lastErr = res.Err
		},
		Counters: func() map[string]int64 {
			if lastErr != nil {
				// Surface a broken loop as an impossible counter value
				// rather than silently benchmarking an early abort.
				return map[string]int64{"evm_steps": -1}
			}
			return counters
		},
	}
}

// HostInfo captures the measuring environment.
func HostInfo() Host {
	return Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// ValidProfile normalizes a profile string.
func ValidProfile(s string) (Profile, error) {
	switch Profile(s) {
	case Quick:
		return Quick, nil
	case Full:
		return Full, nil
	}
	return "", fmt.Errorf("bench: unknown profile %q (want %q or %q)", s, Quick, Full)
}
