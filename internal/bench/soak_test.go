package bench

import (
	"os"
	"strconv"
	"testing"
)

// TestSoakSmoke runs a small soak end to end: the full streaming path with
// retirement on, checking the measurement plumbing (latency histogram,
// heap sampler, counters) rather than performance.
func TestSoakSmoke(t *testing.T) {
	res, err := RunSoak(SoakOptions{
		Contracts:     2000,
		Seed:          1,
		Window:        256,
		CacheCapacity: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != SoakName || res.Scale != 2000 {
		t.Fatalf("result identity: %+v", res)
	}
	// The generator adds support contracts (shared logics, libraries) on
	// top of the configured population.
	if got := res.Counters["contracts"]; got < 2000 {
		t.Fatalf("contracts counter = %d, want >= 2000", got)
	}
	if res.Counters["proxies_detected"] == 0 {
		t.Fatal("soak detected no proxies")
	}
	if res.Counters["proxies_summarized"] != res.Counters["proxies_detected"] {
		t.Fatalf("summary saw %d proxies, snapshot %d",
			res.Counters["proxies_summarized"], res.Counters["proxies_detected"])
	}
	if res.Counters["retired"] == 0 {
		t.Fatal("retirement never ran")
	}
	if res.ItemP99NsPerOp <= 0 || res.ItemP50NsPerOp <= 0 {
		t.Fatalf("latency percentiles missing: p50=%v p99=%v", res.ItemP50NsPerOp, res.ItemP99NsPerOp)
	}
	if res.ItemP99NsPerOp < res.ItemP50NsPerOp {
		t.Fatalf("p99 %v < p50 %v", res.ItemP99NsPerOp, res.ItemP50NsPerOp)
	}
	if res.PeakHeapBytes <= 0 {
		t.Fatal("heap sampler recorded nothing")
	}
	if res.WallNs <= 0 {
		t.Fatal("wall time missing")
	}
}

// TestSoakCountersDeterministic: the statically derived counters RunSoak
// reports — label count, bytecode filter verdicts — must agree exactly
// across runs of the same (seed, scale) with different windows and cache
// bounds. Emulation-derived counters (proxies detected, pairs analyzed)
// are excluded: the generator applies upgrades concurrently with
// analysis, so a borderline proxy can be probed before or after its
// implementation slot changes depending on window timing (the live-stream
// caveat in DESIGN.md); "retired" is a function of the retirement window,
// which the two runs deliberately differ on.
func TestSoakCountersDeterministic(t *testing.T) {
	a, err := RunSoak(SoakOptions{Contracts: 1200, Seed: 7, Window: 128, CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(SoakOptions{Contracts: 1200, Seed: 7, Window: 512})
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]map[string]int64{"A": a.Counters, "B": b.Counters} {
		if c["retired"] == 0 {
			t.Fatalf("run %s: retirement never ran", name)
		}
		if c["proxies_detected"] == 0 || c["pairs_analyzed"] == 0 {
			t.Fatalf("run %s: analysis found nothing: %v", name, c)
		}
		if c["proxies_summarized"] != c["proxies_detected"] {
			t.Fatalf("run %s: summary saw %d proxies, engine detected %d",
				name, c["proxies_summarized"], c["proxies_detected"])
		}
	}
	for _, key := range []string{"contracts", "no_code", "filter_rejected"} {
		if a.Counters[key] != b.Counters[key] {
			t.Fatalf("counter %q is scheduling-dependent: %d vs %d\nrun A: %v\nrun B: %v",
				key, a.Counters[key], b.Counters[key], a.Counters, b.Counters)
		}
	}
}

// TestSoakRejectsUnsafeRetireWindow: a retirement lag shorter than the
// analysis window could drop contracts mid-analysis and must be refused.
func TestSoakRejectsUnsafeRetireWindow(t *testing.T) {
	_, err := RunSoak(SoakOptions{Contracts: 100, Window: 1024, RetireWindow: 64})
	if err == nil {
		t.Fatal("soak accepted retire window < engine window")
	}
}

// TestSoakFullScale is the nightly million-contract soak, gated behind
// SOAK_CONTRACTS so the normal suite stays fast. It asserts the tentpole
// claim: live memory is a function of the window sizes, not the corpus —
// a 1M-contract run at the default windows measures ~0.6 GiB peak heap
// (with forced-GC live heap an order of magnitude below that; the gap is
// GC pacing over a high allocation rate, not retention). The ceiling
// (default 2 GiB, override via SOAK_MAX_HEAP_MB) leaves headroom for GC
// scheduling variance while still failing on any return to
// corpus-proportional retention.
//
//	SOAK_CONTRACTS=1000000 go test ./internal/bench/ -run TestSoakFullScale -v -timeout 2h
func TestSoakFullScale(t *testing.T) {
	scale := os.Getenv("SOAK_CONTRACTS")
	if scale == "" {
		t.Skip("set SOAK_CONTRACTS (e.g. 1000000) to run the full-scale soak")
	}
	n, err := strconv.Atoi(scale)
	if err != nil || n <= 0 {
		t.Fatalf("bad SOAK_CONTRACTS %q", scale)
	}
	maxHeap := int64(2048)
	if s := os.Getenv("SOAK_MAX_HEAP_MB"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			maxHeap = v
		}
	}

	res, err := RunSoak(SoakOptions{
		Contracts:     n,
		Seed:          1,
		CacheCapacity: 1 << 16,
		Progress:      os.Stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak %d contracts: wall %.1fs, %.0f contracts/s, item p50 %.2fms p99 %.2fms, peak heap %s, peak RSS %s, retired %d",
		n, float64(res.WallNs)/1e9, res.OpsPerSec,
		res.ItemP50NsPerOp/1e6, res.ItemP99NsPerOp/1e6,
		fmtBytes(res.PeakHeapBytes), fmtBytes(res.PeakRSSBytes), res.Counters["retired"])

	if got := res.PeakHeapBytes; got > maxHeap<<20 {
		t.Fatalf("peak heap %s exceeds the %d MiB soak ceiling — streaming memory is no longer bounded",
			fmtBytes(got), maxHeap)
	}
	if res.Counters["contracts"] < int64(n) {
		t.Fatalf("analyzed %d contracts, want >= %d", res.Counters["contracts"], n)
	}
	if res.Counters["retired"] == 0 {
		t.Fatal("full-scale soak never retired a contract")
	}
}
