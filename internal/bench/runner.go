package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Options configures one suite run.
type Options struct {
	// Profile selects scales and sampling depth; default Quick.
	Profile Profile
	// Seed drives every workload's corpus generation; the deterministic
	// counters in the resulting report are a pure function of (code, seed,
	// profile scales).
	Seed int64
	// Samples overrides the profile's per-workload sample count (0 keeps
	// the default: 5 quick, 15 full).
	Samples int
	// Warmup overrides the profile's warmup batches (0 keeps the default:
	// 1 quick, 2 full).
	Warmup int
	// Progress, when non-nil, receives one line per workload as it
	// completes — the CLI points it at stderr.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Profile == "" {
		o.Profile = Quick
	}
	if o.Samples == 0 {
		if o.Profile == Full {
			o.Samples = 15
		} else {
			o.Samples = 5
		}
	}
	if o.Warmup == 0 {
		if o.Profile == Full {
			o.Warmup = 2
		} else {
			o.Warmup = 1
		}
	}
	return o
}

// Run executes the profile's full workload suite and assembles the report.
// CreatedAt is left empty; the caller stamps it (the runner itself touches
// the clock only to measure durations, keeping reports reproducible).
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	return RunSuite(Suite(opts.Profile), opts)
}

// RunSuite measures an explicit workload list under the given options.
func RunSuite(ws []Workload, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Profile:       string(opts.Profile),
		Seed:          opts.Seed,
		Host:          HostInfo(),
	}
	for _, w := range ws {
		res, err := measure(w, opts)
		if err != nil {
			return nil, err
		}
		rep.Workloads = append(rep.Workloads, res)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "  %-32s median %12s  p95 %12s  (%d samples x %d ops)\n",
				w.Name, fmtNs(res.MedianNsPerOp), fmtNs(res.P95NsPerOp), res.Samples, res.Batch)
		}
	}
	return rep, nil
}

// measure runs one workload: setup (untimed), warmup batches, then
// Samples timed batches with allocation accounting.
func measure(w Workload, opts Options) (WorkloadResult, error) {
	if w.Batch < 1 {
		w.Batch = 1
	}
	inst := w.Setup(opts.Seed, w.Scale)
	if inst.Op == nil {
		return WorkloadResult{}, fmt.Errorf("bench: workload %s produced no op", w.Name)
	}

	for i := 0; i < opts.Warmup*w.Batch; i++ {
		inst.Op()
	}

	samples := make([]float64, opts.Samples)
	var mallocs, bytes uint64
	var m0, m1 runtime.MemStats
	for s := range samples {
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < w.Batch; i++ {
			inst.Op()
		}
		d := time.Since(t0)
		runtime.ReadMemStats(&m1)
		samples[s] = float64(d.Nanoseconds()) / float64(w.Batch)
		mallocs += m1.Mallocs - m0.Mallocs
		bytes += m1.TotalAlloc - m0.TotalAlloc
	}
	sort.Float64s(samples)

	ops := float64(opts.Samples * w.Batch)
	res := WorkloadResult{
		Name:          w.Name,
		Scale:         w.Scale,
		Batch:         w.Batch,
		Samples:       opts.Samples,
		MedianNsPerOp: percentile(samples, 0.50),
		P95NsPerOp:    percentile(samples, 0.95),
		MinNsPerOp:    samples[0],
		AllocsPerOp:   float64(mallocs) / ops,
		BytesPerOp:    float64(bytes) / ops,
	}
	if res.MedianNsPerOp > 0 {
		res.OpsPerSec = 1e9 / res.MedianNsPerOp
	}
	if inst.Counters != nil {
		res.Counters = inst.Counters()
	}
	return res, nil
}

// percentile reads a quantile from an ascending sample slice using the
// nearest-rank method (the conventional choice for small benchmark sample
// counts: no interpolation, every reported value was actually observed).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// MergeBest folds repeated runs of the same suite into one report, keeping
// for every workload the run with the lowest median (the standard
// noise-reduction move: interference only ever makes code look slower) and
// the minimum min across all repeats. Counters must agree across repeats —
// they are deterministic — and a disagreement is returned as an error
// rather than papered over.
func MergeBest(runs ...*Report) (*Report, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bench: MergeBest of zero runs")
	}
	base := *runs[0]
	base.Workloads = append([]WorkloadResult(nil), runs[0].Workloads...)
	for _, r := range runs[1:] {
		if r.Profile != base.Profile || r.Seed != base.Seed {
			return nil, fmt.Errorf("bench: MergeBest across different suites (%s/seed %d vs %s/seed %d)",
				base.Profile, base.Seed, r.Profile, r.Seed)
		}
		for _, wr := range r.Workloads {
			cur := findResult(base.Workloads, wr.Name)
			if cur == nil {
				base.Workloads = append(base.Workloads, wr)
				continue
			}
			if diffs := diffCounters(cur.Counters, wr.Counters); len(diffs) > 0 {
				return nil, fmt.Errorf("bench: workload %s counters changed between repeats (%s): nondeterminism bug",
					wr.Name, diffs[0])
			}
			if wr.MinNsPerOp < cur.MinNsPerOp {
				cur.MinNsPerOp = wr.MinNsPerOp
			}
			if wr.MedianNsPerOp < cur.MedianNsPerOp {
				min := cur.MinNsPerOp
				*cur = wr
				cur.MinNsPerOp = min
			}
		}
	}
	return &base, nil
}

func findResult(ws []WorkloadResult, name string) *WorkloadResult {
	for i := range ws {
		if ws[i].Name == name {
			return &ws[i]
		}
	}
	return nil
}

// fmtNs renders nanoseconds human-readably.
func fmtNs(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
