package bench

import (
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestSuiteShape: both profiles expose the same stable workload names
// (quick baselines must gate quick runs), calibration is present, and
// names are unique.
func TestSuiteShape(t *testing.T) {
	quick, full := Suite(Quick), Suite(Full)
	if len(quick) != len(full) {
		t.Fatalf("quick has %d workloads, full %d", len(quick), len(full))
	}
	seen := make(map[string]bool)
	for i, w := range quick {
		if w.Name != full[i].Name {
			t.Errorf("workload %d name differs across profiles: %q vs %q", i, w.Name, full[i].Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if w.Setup == nil || w.Scale <= 0 || w.Batch <= 0 {
			t.Errorf("workload %q underspecified: %+v", w.Name, w)
		}
	}
	if !seen[CalibrationName] {
		t.Fatalf("suite lacks the calibration workload %q", CalibrationName)
	}
}

// TestRunnerSampling pins the measurement contract on a synthetic
// workload: ops executed = (warmup + samples) x batch, and the summary
// fields are populated and ordered (min <= median <= p95).
func TestRunnerSampling(t *testing.T) {
	var ops int
	w := Workload{
		Name:  "synthetic/count",
		Scale: 7,
		Batch: 3,
		Setup: func(seed int64, scale int) Instance {
			return Instance{
				Op: func() { ops++; time.Sleep(10 * time.Microsecond) },
				Counters: func() map[string]int64 {
					return map[string]int64{"ops_seen": int64(ops)}
				},
			}
		},
	}
	rep, err := RunSuite([]Workload{w}, Options{Profile: Quick, Samples: 4, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wantOps := (2 + 4) * 3; ops != wantOps {
		t.Errorf("op ran %d times, want %d (2 warmup + 4 sample batches of 3)", ops, wantOps)
	}
	res := rep.Workload("synthetic/count")
	if res == nil {
		t.Fatal("result missing")
	}
	if res.Samples != 4 || res.Batch != 3 || res.Scale != 7 {
		t.Errorf("result meta = %+v", res)
	}
	if !(res.MinNsPerOp > 0 && res.MinNsPerOp <= res.MedianNsPerOp && res.MedianNsPerOp <= res.P95NsPerOp) {
		t.Errorf("sample summary out of order: min %v median %v p95 %v",
			res.MinNsPerOp, res.MedianNsPerOp, res.P95NsPerOp)
	}
	if res.OpsPerSec <= 0 {
		t.Errorf("ops/sec = %v", res.OpsPerSec)
	}
	if res.Counters["ops_seen"] == 0 {
		t.Errorf("counters not captured: %v", res.Counters)
	}
	if rep.SchemaVersion != SchemaVersion || rep.Profile != string(Quick) || rep.Host.GoVersion == "" {
		t.Errorf("report header incomplete: %+v", rep)
	}
	if rep.CreatedAt != "" {
		t.Errorf("runner stamped CreatedAt (%q); that is the CLI's job", rep.CreatedAt)
	}
}

// testScale shrinks a workload's input for test runtime; the determinism
// property under test is scale-independent.
func testScale(name string, scale int) int {
	switch {
	case strings.HasPrefix(name, "pipeline/"):
		return 150
	case strings.HasPrefix(name, "detector/"), strings.HasPrefix(name, "collision/"):
		return 12
	case strings.HasPrefix(name, "evm/"):
		return 500
	}
	return scale
}

// TestWorkloadCounterDeterminism is the acceptance property behind the
// whole subsystem: for every catalogue workload, two completely
// independent setups with the same seed must report identical
// deterministic counters — on a concurrent pipeline, under any
// scheduling. A failure here means BENCH_*.json counter trajectories
// would be noise.
func TestWorkloadCounterDeterminism(t *testing.T) {
	for _, w := range Suite(Quick) {
		w := w
		t.Run(strings.ReplaceAll(w.Name, "/", "_"), func(t *testing.T) {
			scale := testScale(w.Name, w.Scale)
			runOnce := func() map[string]int64 {
				inst := w.Setup(7, scale)
				inst.Op()
				if inst.Counters == nil {
					return nil
				}
				return inst.Counters()
			}
			a, b := runOnce(), runOnce()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("counters differ across identical runs:\n  first:  %v\n  second: %v", a, b)
			}
			if len(a) == 0 {
				t.Errorf("workload reports no deterministic counters")
			}
		})
	}
}

// TestPipelineWorkloadsAgreeAcrossWorkerCounts: the 1-worker, 2-worker and
// GOMAXPROCS pipeline variants analyze the same corpus, so every
// deterministic counter must agree across them — worker count may only
// change timings. (The no-cache ablation legitimately differs: its
// emulation/cache split is the ablation.)
func TestPipelineWorkloadsAgreeAcrossWorkerCounts(t *testing.T) {
	counters := func(name string) map[string]int64 {
		w, ok := FindWorkload(Quick, name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		inst := w.Setup(3, 150)
		inst.Op()
		return inst.Counters()
	}
	oneW := counters("pipeline/stream-1w")
	twoW := counters("pipeline/stream-2w")
	maxW := counters("pipeline/stream-maxw")
	if !reflect.DeepEqual(oneW, twoW) || !reflect.DeepEqual(oneW, maxW) {
		t.Errorf("worker count changed deterministic counters:\n  1w: %v\n  2w: %v\n  maxw: %v",
			oneW, twoW, maxW)
	}
	if oneW["cache_hits"] == 0 {
		t.Errorf("cached pipeline saw no cache hits on the clone-heavy landscape: %v", oneW)
	}

	noCache := counters("pipeline/stream-maxw-nocache")
	if noCache["cache_hits"] != 0 {
		t.Errorf("no-cache ablation recorded cache hits: %v", noCache)
	}
	if noCache["emulations"] <= oneW["emulations"] {
		t.Errorf("ablation did not pay extra emulations: nocache %d vs cached %d",
			noCache["emulations"], oneW["emulations"])
	}
}

// TestEVMLoopStepAccounting pins the interp workload's derived step count
// against the loop structure and checks the emulation actually completes
// (the error sentinel is -1).
func TestEVMLoopStepAccounting(t *testing.T) {
	w, ok := FindWorkload(Quick, "evm/interp-loop")
	if !ok {
		t.Fatal("evm/interp-loop missing")
	}
	inst := w.Setup(1, 100)
	inst.Op()
	c := inst.Counters()
	if c["evm_steps"] == -1 {
		t.Fatal("EVM loop aborted with an error")
	}
	if want := int64(1 + 10*100 + 1); c["evm_steps"] != want {
		t.Errorf("evm_steps = %d, want %d", c["evm_steps"], want)
	}
	if c["loop_iterations"] != 100 {
		t.Errorf("loop_iterations = %d, want 100", c["loop_iterations"])
	}
}

// TestReportRoundTrip: WriteFile/LoadReport preserve the report, and
// Filename renders the canonical timestamped name.
func TestReportRoundTrip(t *testing.T) {
	rep, err := RunSuite([]Workload{Suite(Quick)[0]}, Options{Samples: 2, Warmup: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep.CreatedAt = "2026-08-06T00:00:00Z"
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip changed the report:\n  out: %+v\n  in:  %+v", rep, back)
	}

	name := Filename(time.Date(2026, 8, 6, 12, 34, 56, 0, time.UTC))
	if name != "BENCH_20260806T123456Z.json" {
		t.Errorf("Filename = %q", name)
	}
	if ok, _ := regexp.MatchString(`^BENCH_\d{8}T\d{6}Z\.json$`, name); !ok {
		t.Errorf("Filename %q does not match the BENCH_<timestamp>.json convention", name)
	}
}
