package bench

import "testing"

// TestNearCloneWorkloadUplift pins the structural-promotion uplift as a
// deterministic counter property of the stream-nearclone workload, not a
// timing: the landscape's bytecodes are almost all distinct, so the
// exact-hash tier alone could never hit more often than the duplicate
// share — yet with the structural second-level key each clone family
// costs exactly one emulation.
func TestNearCloneWorkloadUplift(t *testing.T) {
	w, ok := FindWorkload(Quick, "pipeline/stream-nearclone")
	if !ok {
		t.Fatal("pipeline/stream-nearclone missing from the quick suite")
	}
	const scale = 200
	stamps, twins, dupes := NearCloneMix(scale)
	inst := w.Setup(1, scale)
	inst.Op()
	got := inst.Counters()

	// One emulation per clone family (stamps, twins); every other distinct
	// bytecode is served by a validated structural promotion; the
	// byte-identical duplicates stay on the exact-hash tier.
	want := map[string]int64{
		"contracts":          int64(scale),
		"emulations":         2,
		"structural_hits":    int64(stamps + twins - 2),
		"cache_hits":         int64(stamps + twins - 2 + dupes),
		"static_summaries":   int64(stamps + twins),
		"structural_rejects": 0,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("counter %s = %d, want %d", k, got[k], v)
		}
	}
	// The headline uplift: the hit count must exceed the exact-hash
	// ceiling (the duplicate share) — only structural promotion gets past
	// it on a distinct-bytecode landscape.
	if got["cache_hits"] <= int64(dupes) {
		t.Errorf("cache_hits = %d does not beat the exact-hash ceiling %d",
			got["cache_hits"], dupes)
	}
}
