package bench

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// report builds a two-workload report (calibration + one gated workload)
// with the given medians, the shape most compare tests need.
func report(calNs, workNs float64) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Profile:       string(Quick),
		Seed:          1,
		Workloads: []WorkloadResult{
			{Name: CalibrationName, Scale: 4096, MedianNsPerOp: calNs, MinNsPerOp: calNs * 0.95, Samples: 5},
			{Name: "pipeline/stream-maxw", Scale: 1200, MedianNsPerOp: workNs, MinNsPerOp: workNs * 0.95, Samples: 5,
				Counters: map[string]int64{"emulations": 100, "cache_hits": 900}},
		},
	}
}

// TestCompareThresholdMath pins the basic gate arithmetic on an
// equal-speed machine (identical calibration): below threshold passes, a
// 2x slowdown fails, and the failure names the workload.
func TestCompareThresholdMath(t *testing.T) {
	base := report(1000, 1_000_000)

	for _, tc := range []struct {
		name   string
		curNs  float64
		wantOK bool
	}{
		{"identical", 1_000_000, true},
		{"within threshold (+25%)", 1_250_000, true},
		{"just over threshold (+35%)", 1_350_000, false},
		{"synthetic 2x slowdown", 2_000_000, false},
		{"faster", 500_000, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cur := report(1000, tc.curNs)
			cmp, err := Compare(base, cur, CompareOptions{Threshold: 0.30})
			if err != nil {
				t.Fatal(err)
			}
			if cmp.OK() != tc.wantOK {
				t.Fatalf("OK() = %v, want %v; failures: %v", cmp.OK(), tc.wantOK, cmp.Failures())
			}
			if !tc.wantOK && !strings.Contains(strings.Join(cmp.Failures(), "\n"), "pipeline/stream-maxw") {
				t.Errorf("failure does not name the regressed workload: %v", cmp.Failures())
			}
		})
	}
}

// TestCompareCalibrationNormalization: a uniformly slower machine (every
// timing including calibration 3x) is NOT a regression — the whole point
// of the calibration workload — while a genuine 2x regression still fails
// even when measured on a 2x *faster* machine (raw timings equal).
func TestCompareCalibrationNormalization(t *testing.T) {
	base := report(1000, 1_000_000)

	slowMachine := report(3000, 3_000_000)
	cmp, err := Compare(base, slowMachine, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Fatalf("uniformly slow machine flagged as regression: %v", cmp.Failures())
	}
	if cmp.CalibrationScale <= 0 {
		t.Fatalf("calibration scale not computed")
	}

	// Machine is 2x faster (calibration 500 vs 1000) but the workload took
	// the same wall time — i.e. the code got 2x slower in machine-relative
	// terms.
	fastButRegressed := report(500, 1_000_000)
	cmp, err = Compare(base, fastButRegressed, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() {
		t.Fatalf("2x machine-relative regression hidden by a fast machine")
	}
}

// TestCompareNoiseTolerance: a median spike whose minimum stayed at
// baseline speed is scheduler noise, not a regression — the min
// cross-check must hold the gate. A real regression moves both.
func TestCompareNoiseTolerance(t *testing.T) {
	base := report(1000, 1_000_000)

	noisy := report(1000, 2_000_000)
	// The fastest sample still ran at baseline speed: classic interference.
	noisy.Workloads[1].MinNsPerOp = 1_000_000
	cmp, err := Compare(base, noisy, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Fatalf("noise spike (fast min, slow median) failed the gate: %v", cmp.Failures())
	}

	sustained := report(1000, 2_000_000) // min tracks median via report()
	cmp, err = Compare(base, sustained, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() {
		t.Fatalf("sustained 2x slowdown passed the gate")
	}
}

// TestCompareNoiseFloor: workloads with sub-floor baseline medians are
// reported but never gated, regardless of ratio.
func TestCompareNoiseFloor(t *testing.T) {
	base := report(1000, 1_000_000)
	base.Workloads[1].MedianNsPerOp = 5_000 // 5µs, below the 20µs default floor
	cur := report(1000, 1_000_000)
	cur.Workloads[1].MedianNsPerOp = 50_000 // 10x "regression"
	cur.Workloads[1].MinNsPerOp = 48_000

	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Fatalf("sub-noise-floor workload was gated: %v", cmp.Failures())
	}
	for _, d := range cmp.Deltas {
		if d.Name == "pipeline/stream-maxw" && d.Gated {
			t.Errorf("workload below the noise floor marked as gated")
		}
	}
}

// TestCompareMissingBaseline: nil baseline and a missing file both surface
// ErrMissingBaseline-shaped errors the CLI can branch on.
func TestCompareMissingBaseline(t *testing.T) {
	if _, err := Compare(nil, report(1000, 1000), CompareOptions{}); !errors.Is(err, ErrMissingBaseline) {
		t.Fatalf("nil baseline: err = %v, want ErrMissingBaseline", err)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatalf("loading a nonexistent baseline succeeded")
	}
}

// TestCompareSchemaMismatch: differing schema versions refuse to compare.
func TestCompareSchemaMismatch(t *testing.T) {
	base := report(1000, 1_000_000)
	base.SchemaVersion = SchemaVersion + 1
	_, err := Compare(base, report(1000, 1_000_000), CompareOptions{})
	if !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("err = %v, want ErrSchemaMismatch", err)
	}
}

// TestCompareProfileMismatch: a quick run cannot gate against a full
// baseline — scales differ, so ratios would be meaningless.
func TestCompareProfileMismatch(t *testing.T) {
	base := report(1000, 1_000_000)
	cur := report(1000, 1_000_000)
	cur.Profile = string(Full)
	if _, err := Compare(base, cur, CompareOptions{}); err == nil {
		t.Fatalf("profile mismatch compared without error")
	}
}

// TestCompareMissingWorkload: a workload dropped from the current run is a
// gate failure (deleting a slow workload must not green the gate), while a
// brand-new workload is informational.
func TestCompareMissingWorkload(t *testing.T) {
	base := report(1000, 1_000_000)
	cur := report(1000, 1_000_000)
	cur.Workloads = cur.Workloads[:1] // drop the pipeline workload
	cur.Workloads = append(cur.Workloads, WorkloadResult{Name: "evm/new-thing", MedianNsPerOp: 10})

	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() {
		t.Fatalf("dropped workload passed the gate")
	}
	if len(cmp.MissingWorkloads) != 1 || cmp.MissingWorkloads[0] != "pipeline/stream-maxw" {
		t.Errorf("MissingWorkloads = %v", cmp.MissingWorkloads)
	}
	if len(cmp.NewWorkloads) != 1 || cmp.NewWorkloads[0] != "evm/new-thing" {
		t.Errorf("NewWorkloads = %v", cmp.NewWorkloads)
	}
}

// TestCompareCounterDrift: with equal seeds, counter changes are reported
// always and fail the gate only under StrictCounters; with differing
// seeds, counters are not compared at all.
func TestCompareCounterDrift(t *testing.T) {
	base := report(1000, 1_000_000)
	cur := report(1000, 1_000_000)
	cur.Workloads[1].Counters = map[string]int64{"emulations": 500, "cache_hits": 500}

	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Fatalf("counter drift failed the default gate: %v", cmp.Failures())
	}
	var drift []string
	for _, d := range cmp.Deltas {
		drift = append(drift, d.CounterDrift...)
	}
	if len(drift) != 2 {
		t.Fatalf("drift = %v, want cache_hits and emulations entries", drift)
	}
	if !strings.Contains(strings.Join(drift, " "), "cache_hits: 900 -> 500") {
		t.Errorf("drift lines lack values: %v", drift)
	}

	cmp, err = Compare(base, cur, CompareOptions{StrictCounters: true})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() {
		t.Fatalf("StrictCounters did not fail on drift")
	}

	cur.Seed = 99
	cmp, err = Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.SeedsDiffer {
		t.Errorf("SeedsDiffer not flagged")
	}
	for _, d := range cmp.Deltas {
		if len(d.CounterDrift) > 0 {
			t.Errorf("counters compared across different seeds: %v", d.CounterDrift)
		}
	}
}

// TestDiffCounters covers the one-sided cases directly.
func TestDiffCounters(t *testing.T) {
	got := diffCounters(
		map[string]int64{"a": 1, "b": 2, "gone": 3},
		map[string]int64{"a": 1, "b": 5, "new": 7},
	)
	want := []string{"b: 2 -> 5", "gone: 3 -> (absent)", "new: (absent) -> 7"}
	if len(got) != len(want) {
		t.Fatalf("diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diff[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestMergeBest: best median wins per workload, global min is kept, and
// counter disagreement between repeats (nondeterminism) errors out.
func TestMergeBest(t *testing.T) {
	a := report(1000, 1_000_000)
	b := report(1100, 900_000)
	b.Workloads[1].MinNsPerOp = 700_000

	merged, err := MergeBest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wr := merged.Workload("pipeline/stream-maxw")
	if wr.MedianNsPerOp != 900_000 {
		t.Errorf("merged median = %v, want best of repeats 900000", wr.MedianNsPerOp)
	}
	if wr.MinNsPerOp != 700_000 {
		t.Errorf("merged min = %v, want global min 700000", wr.MinNsPerOp)
	}

	c := report(1000, 800_000)
	c.Workloads[1].Counters["emulations"] = 101 // deterministic counter changed between repeats
	if _, err := MergeBest(a, c); err == nil {
		t.Fatalf("MergeBest swallowed counter nondeterminism between repeats")
	}
}

// TestCompareRender smoke-checks the human-readable output.
func TestCompareRender(t *testing.T) {
	cmp, err := Compare(report(1000, 1_000_000), report(1000, 2_500_000), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := cmp.Render()
	for _, want := range []string{"pipeline/stream-maxw", "REGRESSED", "calibration"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() lacks %q:\n%s", want, out)
		}
	}
}

// allocReport builds a calibration + one-workload report with the given
// allocs/op (timings held constant so only the alloc gate is in play).
func allocReport(allocs float64) *Report {
	r := report(1000, 1_000_000)
	r.Workloads[1].AllocsPerOp = allocs
	return r
}

// TestCompareAllocGate pins the allocation gate: growth past the threshold
// fails, growth under it passes, and baselines below the floor are exempt
// no matter how large the relative growth is (the near-zero-alloc fast
// interpreter path must not fail on +5 incidental allocations).
func TestCompareAllocGate(t *testing.T) {
	for _, tc := range []struct {
		name      string
		base, cur float64
		wantOK    bool
		wantGated bool
	}{
		{"identical", 10_000, 10_000, true, true},
		{"within threshold (+40%)", 10_000, 14_000, true, true},
		{"over threshold (+60%)", 10_000, 16_000, false, true},
		{"order-of-magnitude growth", 10_000, 100_000, false, true},
		{"improvement", 10_000, 500, true, true},
		{"below floor: huge relative growth exempt", 8, 80, true, false},
		{"at floor boundary", 256, 8_000, false, true},
		{"zero baseline", 0, 50, true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cmp, err := Compare(allocReport(tc.base), allocReport(tc.cur), CompareOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if cmp.OK() != tc.wantOK {
				t.Fatalf("OK() = %v, want %v; failures: %v", cmp.OK(), tc.wantOK, cmp.Failures())
			}
			d := cmp.Deltas[1]
			if d.AllocGated != tc.wantGated {
				t.Errorf("AllocGated = %v, want %v", d.AllocGated, tc.wantGated)
			}
			if !tc.wantOK {
				msg := strings.Join(cmp.Failures(), "\n")
				if !strings.Contains(msg, "alloc-regressed") {
					t.Errorf("failure does not mention allocs: %v", msg)
				}
			}
		})
	}
}

// TestCompareAllocGateOptions pins the knobs: a custom threshold moves the
// cut-off, a negative threshold disables the gate entirely, and timing
// calibration never rescales allocation counts.
func TestCompareAllocGateOptions(t *testing.T) {
	base, doubled := allocReport(10_000), allocReport(20_000)

	cmp, err := Compare(base, doubled, CompareOptions{AllocThreshold: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Fatalf("2x allocs failed a 2.5x threshold: %v", cmp.Failures())
	}

	cmp, err = Compare(base, doubled, CompareOptions{AllocThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() || cmp.Deltas[1].AllocGated {
		t.Fatalf("negative AllocThreshold did not disable the gate: %v", cmp.Failures())
	}

	// A 3x-slower machine (calibration scales timings) must not excuse a
	// genuine 2x alloc growth: allocs are machine-independent.
	slower := allocReport(20_000)
	slower.Workloads[0].MedianNsPerOp = 3000
	slower.Workloads[1].MedianNsPerOp = 3_000_000
	slower.Workloads[1].MinNsPerOp = 2_850_000
	cmp, err = Compare(base, slower, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() {
		t.Fatalf("calibration normalization rescaled the alloc gate")
	}
	if got := cmp.Deltas[1].AllocRatio; got != 2.0 {
		t.Fatalf("AllocRatio = %v, want exactly 2.0 (unnormalized)", got)
	}
}
