package bench

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Comparison errors a caller can branch on.
var (
	// ErrMissingBaseline means there is nothing to gate against; CI treats
	// it as a hard failure (otherwise deleting the baseline would silence
	// the gate), while a first-time local run refreshes the baseline.
	ErrMissingBaseline = errors.New("bench: missing baseline report")
	// ErrSchemaMismatch means baseline and current were produced by
	// different report layouts; re-measure the baseline instead of
	// guessing at field semantics.
	ErrSchemaMismatch = errors.New("bench: schema version mismatch")
)

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Threshold is the allowed relative median slowdown after calibration
	// normalization: 0.30 fails a workload whose normalized median grew
	// more than 30%. Default 0.30.
	Threshold float64
	// NoiseFloorNs exempts workloads whose baseline median is below this
	// many nanoseconds — micro-workloads whose medians jitter by integer
	// factors under CI load. They are still reported, never gated.
	// Default 20µs.
	NoiseFloorNs float64
	// StrictCounters promotes deterministic-counter drift from a warning
	// to a gate failure. Off by default: a PR that intentionally changes
	// analyzer behavior refreshes the baseline, and the drift warning
	// tells the reviewer to check that it was intentional.
	StrictCounters bool
	// AllocThreshold is the allowed relative growth in allocations per op:
	// 0.50 fails a workload whose allocs/op grew more than 50% over the
	// baseline. Allocation counts are a property of the code path, not the
	// machine, so no calibration normalization applies and the threshold
	// can be tighter in spirit than the timing one — an alloc regression
	// is almost always a real code change, not scheduler noise.
	// Default 0.50. Negative disables the alloc gate.
	AllocThreshold float64
	// AllocFloor exempts workloads whose baseline allocs/op is below this
	// count: near-zero-alloc workloads (the fast interpreter path) would
	// otherwise fail on a handful of incidental allocations whose relative
	// growth is huge but absolute cost is noise. Such workloads are still
	// reported, never alloc-gated. Default 256.
	AllocFloor float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.30
	}
	if o.NoiseFloorNs == 0 {
		o.NoiseFloorNs = 20_000
	}
	if o.AllocThreshold == 0 {
		o.AllocThreshold = 0.50
	}
	if o.AllocFloor == 0 {
		o.AllocFloor = 256
	}
	return o
}

// WorkloadDelta is the per-workload comparison verdict.
type WorkloadDelta struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	// Ratio is current/baseline median after calibration normalization
	// (raw when either run lacks the calibration workload).
	Ratio float64
	// MinRatio is the normalized current *minimum* over the baseline
	// median — the noise cross-check: a genuine regression slows every
	// sample down, a noise spike only inflates the median.
	MinRatio float64
	// Normalized says machine-speed normalization was applied.
	Normalized bool
	// Gated says the workload participated in the pass/fail decision
	// (false below the noise floor and for the calibration workload).
	Gated bool
	// Regressed is the gate verdict for this workload.
	Regressed bool
	// CounterDrift lists deterministic counters whose values changed.
	CounterDrift []string

	// BaselineAllocs/CurrentAllocs are raw allocs/op; AllocRatio their
	// quotient (unnormalized — allocation counts do not depend on machine
	// speed). AllocGated and AllocRegressed mirror Gated/Regressed for the
	// allocation gate.
	BaselineAllocs float64
	CurrentAllocs  float64
	AllocRatio     float64
	AllocGated     bool
	AllocRegressed bool
}

// Comparison is the full diff of a current run against a baseline.
type Comparison struct {
	Threshold float64
	// CalibrationScale is baseline-calibration-median / current-calibration-
	// median: >1 means the current machine is faster. 0 when unavailable.
	CalibrationScale float64
	Deltas           []WorkloadDelta
	// MissingWorkloads are in the baseline but absent from the current run.
	MissingWorkloads []string
	// NewWorkloads are in the current run but absent from the baseline.
	NewWorkloads []string
	// SeedsDiffer disables counter comparison (different corpora).
	SeedsDiffer bool
	failures    []string
}

// OK reports whether the gate passes.
func (c *Comparison) OK() bool { return len(c.failures) == 0 }

// Failures lists why the gate failed, one line each.
func (c *Comparison) Failures() []string { return c.failures }

// Compare diffs current against baseline with noise-aware thresholds.
//
// A workload regresses only when BOTH its normalized median and its
// normalized minimum exceed the baseline median by the threshold (the min
// gets half slack): medians catch sustained slowdowns, and requiring the
// minimum to move too rejects one-off scheduler noise, so the gate "fails
// only on >X% median regression across M repeats" as long as at least one
// repeat got a clean machine slice.
func Compare(baseline, current *Report, opts CompareOptions) (*Comparison, error) {
	opts = opts.withDefaults()
	if baseline == nil {
		return nil, ErrMissingBaseline
	}
	if current == nil {
		return nil, fmt.Errorf("bench: no current report to compare")
	}
	if baseline.SchemaVersion != current.SchemaVersion {
		return nil, fmt.Errorf("%w: baseline v%d vs current v%d",
			ErrSchemaMismatch, baseline.SchemaVersion, current.SchemaVersion)
	}
	if baseline.Profile != current.Profile {
		return nil, fmt.Errorf("bench: profile mismatch: baseline %q vs current %q (regenerate the baseline with the same profile)",
			baseline.Profile, current.Profile)
	}

	cmp := &Comparison{Threshold: opts.Threshold, SeedsDiffer: baseline.Seed != current.Seed}

	// Machine-speed normalization from the shared pure-CPU workload.
	baseCal, curCal := baseline.Workload(CalibrationName), current.Workload(CalibrationName)
	if baseCal != nil && curCal != nil && baseCal.MedianNsPerOp > 0 && curCal.MedianNsPerOp > 0 {
		cmp.CalibrationScale = baseCal.MedianNsPerOp / curCal.MedianNsPerOp
	}

	seen := make(map[string]bool)
	for _, base := range baseline.Workloads {
		seen[base.Name] = true
		cur := current.Workload(base.Name)
		if cur == nil {
			cmp.MissingWorkloads = append(cmp.MissingWorkloads, base.Name)
			cmp.failures = append(cmp.failures,
				fmt.Sprintf("workload %s present in baseline but not measured by the current run", base.Name))
			continue
		}
		d := WorkloadDelta{
			Name:       base.Name,
			BaselineNs: base.MedianNsPerOp,
			CurrentNs:  cur.MedianNsPerOp,
		}
		curMedian, curMin := cur.MedianNsPerOp, cur.MinNsPerOp
		if cmp.CalibrationScale > 0 {
			// Scale current timings onto the baseline machine's clock.
			curMedian *= cmp.CalibrationScale
			curMin *= cmp.CalibrationScale
			d.Normalized = true
		}
		if base.MedianNsPerOp > 0 {
			d.Ratio = curMedian / base.MedianNsPerOp
			d.MinRatio = curMin / base.MedianNsPerOp
		}

		d.Gated = base.Name != CalibrationName && base.MedianNsPerOp >= opts.NoiseFloorNs
		if d.Gated && d.Ratio > 1+opts.Threshold && d.MinRatio > 1+opts.Threshold/2 {
			d.Regressed = true
			cmp.failures = append(cmp.failures, fmt.Sprintf(
				"workload %s regressed: normalized median %.2fx baseline (threshold %.2fx), min %.2fx",
				base.Name, d.Ratio, 1+opts.Threshold, d.MinRatio))
		}

		d.BaselineAllocs, d.CurrentAllocs = base.AllocsPerOp, cur.AllocsPerOp
		if base.AllocsPerOp > 0 {
			d.AllocRatio = cur.AllocsPerOp / base.AllocsPerOp
		}
		d.AllocGated = opts.AllocThreshold >= 0 && base.Name != CalibrationName &&
			base.AllocsPerOp >= opts.AllocFloor
		if d.AllocGated && d.AllocRatio > 1+opts.AllocThreshold {
			d.AllocRegressed = true
			cmp.failures = append(cmp.failures, fmt.Sprintf(
				"workload %s alloc-regressed: %.0f allocs/op vs baseline %.0f (%.2fx, threshold %.2fx)",
				base.Name, cur.AllocsPerOp, base.AllocsPerOp, d.AllocRatio, 1+opts.AllocThreshold))
		}

		if !cmp.SeedsDiffer && base.Scale == cur.Scale {
			d.CounterDrift = diffCounters(base.Counters, cur.Counters)
			if len(d.CounterDrift) > 0 && opts.StrictCounters {
				cmp.failures = append(cmp.failures, fmt.Sprintf(
					"workload %s deterministic counters drifted: %s",
					base.Name, strings.Join(d.CounterDrift, "; ")))
			}
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for _, cur := range current.Workloads {
		if !seen[cur.Name] {
			cmp.NewWorkloads = append(cmp.NewWorkloads, cur.Name)
		}
	}
	return cmp, nil
}

// diffCounters lists keys whose values differ between two deterministic
// counter maps, in sorted order. Keys present on only one side count as
// drift (a counter disappearing is as suspicious as one changing).
func diffCounters(base, cur map[string]int64) []string {
	if base == nil && cur == nil {
		return nil
	}
	keys := make(map[string]bool, len(base)+len(cur))
	for k := range base {
		keys[k] = true
	}
	for k := range cur {
		keys[k] = true
	}
	var out []string
	for k := range keys {
		bv, bok := base[k]
		cv, cok := cur[k]
		switch {
		case !bok:
			out = append(out, fmt.Sprintf("%s: (absent) -> %d", k, cv))
		case !cok:
			out = append(out, fmt.Sprintf("%s: %d -> (absent)", k, bv))
		case bv != cv:
			out = append(out, fmt.Sprintf("%s: %d -> %d", k, bv, cv))
		}
	}
	sort.Strings(out)
	return out
}

// Render formats the comparison as an aligned text report for terminals
// and CI logs.
func (c *Comparison) Render() string {
	var b strings.Builder
	if c.CalibrationScale > 0 {
		fmt.Fprintf(&b, "calibration: current machine is %.2fx baseline speed (timings normalized)\n",
			c.CalibrationScale)
	} else {
		b.WriteString("calibration: unavailable — comparing raw timings\n")
	}
	fmt.Fprintf(&b, "%-34s %14s %14s %8s %16s  %s\n",
		"workload", "baseline", "current", "ratio", "allocs/op", "verdict")
	for _, d := range c.Deltas {
		verdict := "ok"
		switch {
		case d.Regressed && d.AllocRegressed:
			verdict = "REGRESSED (time+allocs)"
		case d.Regressed:
			verdict = "REGRESSED"
		case d.AllocRegressed:
			verdict = "ALLOC-REGRESSED"
		case !d.Gated && !d.AllocGated:
			verdict = "info-only"
		}
		if len(d.CounterDrift) > 0 {
			verdict += " (counter drift)"
		}
		allocs := fmt.Sprintf("%.0f -> %.0f", d.BaselineAllocs, d.CurrentAllocs)
		fmt.Fprintf(&b, "%-34s %14s %14s %7.2fx %16s  %s\n",
			d.Name, fmtNs(d.BaselineNs), fmtNs(d.CurrentNs), d.Ratio, allocs, verdict)
		for _, drift := range d.CounterDrift {
			fmt.Fprintf(&b, "    counter %s\n", drift)
		}
	}
	for _, name := range c.NewWorkloads {
		fmt.Fprintf(&b, "%-34s (new workload, no baseline)\n", name)
	}
	if c.SeedsDiffer {
		b.WriteString("note: seeds differ; deterministic counters not compared\n")
	}
	for _, f := range c.failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	return b.String()
}
