package bench

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

// SoakName is the workload name RunSoak reports under.
const SoakName = "soak/stream-landscape"

// SoakOptions configures one streaming soak run: the generator streams a
// landscape of Contracts contracts into the analysis engine while retiring
// consumed contracts behind the analysis window, so the whole run — source,
// chain, engine, aggregation — holds a working set that is a function of
// the window sizes, never of Contracts.
type SoakOptions struct {
	// Contracts is the corpus size. Default 1_000_000.
	Contracts int
	// Seed drives generation; the deterministic counters in the result are
	// a pure function of (code, Seed, Contracts).
	Seed int64
	// Window is the engine's in-flight window (AnalyzeOptions.Window);
	// 0 keeps the engine default.
	Window int
	// CacheCapacity bounds the verdict cache (AnalyzeOptions.CacheCapacity);
	// 0 keeps the cache unbounded.
	CacheCapacity int
	// RetireWindow is the generator's retirement lag in labels. It must be
	// at least the engine window or retirement could drop a contract that
	// is still being analyzed; 0 derives 2× the engine window.
	RetireWindow int
	// Progress, when non-nil, receives a line every ProgressEvery contracts.
	Progress      io.Writer
	ProgressEvery int
}

// RunSoak executes one bounded-memory streaming landscape analysis and
// returns its measurement. Unlike the suite workloads — repeated short
// batches — a soak is a single long run instrumented in flight: a
// log-bucketed histogram of per-contract latency (source hand-off to
// ordered sink emission) and a background sampler tracking peak heap
// occupancy, with the kernel's process high-water mark (VmHWM) read at the
// end. The returned Counters carry only the scheduling-independent subset
// of the pipeline snapshot, so two soaks of the same (seed, scale) agree
// on them exactly even though cache hits and upgrade-relative timings vary
// with thread interleaving.
func RunSoak(opts SoakOptions) (WorkloadResult, error) {
	if opts.Contracts <= 0 {
		opts.Contracts = 1_000_000
	}
	engineWindow := opts.Window
	if engineWindow <= 0 {
		engineWindow = 4096
	}
	retire := opts.RetireWindow
	if retire <= 0 {
		retire = 2 * engineWindow
	}
	if retire < engineWindow {
		return WorkloadResult{}, fmt.Errorf("bench: soak retire window %d < engine window %d would retire in-flight contracts", retire, engineWindow)
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = 100_000
	}

	s := dataset.GenerateStream(dataset.StreamConfig{
		Config: dataset.Config{Seed: opts.Seed, Contracts: opts.Contracts},
		Window: retire,
		Retire: true,
	})
	defer s.Close()
	det := proxion.NewDetector(s.Chain)
	sb := proxion.NewSummaryBuilder()

	heap := newHeapSampler(50 * time.Millisecond)
	defer heap.stop()

	var (
		mu        sync.Mutex
		started   = make(map[int]int64) // item index -> feed time (ns); bounded by the in-flight window
		hist      latHist
		completed int
		fed       int
	)
	src := proxion.SourceFunc(func() (etypes.Address, bool) {
		l, ok := <-s.C
		if !ok {
			return etypes.Address{}, false
		}
		mu.Lock()
		started[fed] = time.Now().UnixNano()
		fed++
		mu.Unlock()
		return l.Address, true
	})
	sink := proxion.SinkFunc(func(it proxion.Item) {
		now := time.Now().UnixNano()
		mu.Lock()
		if t0, ok := started[it.Index]; ok {
			hist.record(now - t0)
			delete(started, it.Index)
		}
		completed++
		n := completed
		mu.Unlock()
		sb.Emit(it)
		s.Advance(n)
		if opts.Progress != nil && n%every == 0 {
			fmt.Fprintf(opts.Progress, "  soak: %d/%d contracts, peak heap %s\n",
				n, opts.Contracts, fmtBytes(heap.peak()))
		}
	})

	t0 := time.Now()
	snap := det.AnalyzeStream(src, s.Registry, sink, proxion.AnalyzeOptions{
		Window:        engineWindow,
		CacheCapacity: opts.CacheCapacity,
	})
	wall := time.Since(t0)
	heap.stop()

	// The generator labels support contracts (shared logics, libraries) on
	// top of the configured population, so the analyzed count is compared
	// against what the source actually handed over, not opts.Contracts.
	mu.Lock()
	totalFed := fed
	mu.Unlock()
	if snap.Contracts != int64(totalFed) {
		return WorkloadResult{}, fmt.Errorf("bench: soak analyzed %d contracts, source fed %d", snap.Contracts, totalFed)
	}

	all := snap.Counters()
	counters := map[string]int64{
		"contracts":        all["contracts"],
		"no_code":          all["no_code"],
		"filter_rejected":  all["filter_rejected"],
		"proxies_detected": all["proxies_detected"],
		"pairs_analyzed":   all["pairs_analyzed"],
		"retired":          int64(s.Retired()),
	}
	sum := sb.Summary(nil)
	counters["proxies_summarized"] = int64(sum.Proxies)

	perOp := float64(wall.Nanoseconds()) / float64(totalFed)
	res := WorkloadResult{
		Name:           SoakName,
		Scale:          opts.Contracts,
		Batch:          1,
		Samples:        1,
		MedianNsPerOp:  perOp,
		P95NsPerOp:     perOp,
		MinNsPerOp:     perOp,
		OpsPerSec:      1e9 / perOp,
		Counters:       counters,
		WallNs:         wall.Nanoseconds(),
		ItemP50NsPerOp: hist.percentile(0.50),
		ItemP99NsPerOp: hist.percentile(0.99),
		PeakHeapBytes:  heap.peak(),
		PeakRSSBytes:   readPeakRSS(),
	}
	return res, nil
}

// latHist is a log2-bucketed latency histogram: bucket i holds samples
// whose nanosecond value has bit length i. Fixed size, lock-free to read
// after the run; the recorder is called under the soak's mutex.
type latHist struct {
	buckets [64]int64
	total   int64
}

func (h *latHist) record(ns int64) {
	if ns < 1 {
		ns = 1
	}
	h.buckets[bits.Len64(uint64(ns))-1]++
	h.total++
}

// percentile returns the geometric midpoint of the bucket holding the
// q-quantile sample — within ~±25% of the true value, which is the
// resolution trade the fixed 64-counter footprint buys.
func (h *latHist) percentile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			lo := math.Exp2(float64(i)) // smallest value with this bit length
			return lo * math.Sqrt2      // geometric midpoint of [2^i, 2^(i+1))
		}
	}
	return 0
}

// heapSampler polls runtime.MemStats.HeapInuse on a ticker and keeps the
// maximum. ReadMemStats is a brief stop-the-world, so the interval stays
// coarse; the final stop() takes one last sample so short runs are never
// reported as zero.
type heapSampler struct {
	max  atomic.Int64
	done chan struct{}
	once sync.Once
}

func newHeapSampler(interval time.Duration) *heapSampler {
	h := &heapSampler{done: make(chan struct{})}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				h.sample()
			case <-h.done:
				return
			}
		}
	}()
	return h
}

func (h *heapSampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	for {
		cur := h.max.Load()
		if int64(m.HeapInuse) <= cur || h.max.CompareAndSwap(cur, int64(m.HeapInuse)) {
			return
		}
	}
}

func (h *heapSampler) stop() {
	h.once.Do(func() {
		close(h.done)
		h.sample()
	})
}

func (h *heapSampler) peak() int64 { return h.max.Load() }

// readPeakRSS returns the process's resident-set high-water mark from
// /proc/self/status (VmHWM), or 0 where /proc is unavailable (non-Linux).
// Note it is process-lifetime, not per-run: anything the process did
// before the soak is included.
func readPeakRSS() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// fmtBytes renders a byte count for progress lines.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
