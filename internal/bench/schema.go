// Package bench is the deterministic performance-tracking subsystem: a
// fixed catalogue of seeded workloads over the repository's own generators
// (detector throughput on a mixed proxy corpus, the streaming pipeline at
// several worker counts, the cache-on/cache-off ablation, storage-collision
// slicing, raw EVM interpretation), a runner that measures each with warmup
// and repeated samples, a versioned JSON report schema, and a noise-aware
// comparator that gates regressions against a checked-in baseline.
//
// The design splits every measurement into two halves with different
// contracts:
//
//   - Timings (median/p95/min ns per op, allocations) are hardware- and
//     load-dependent. They are compared with generous relative thresholds
//     after normalizing by a pure-CPU calibration workload included in every
//     run, which cancels most machine-speed differences between the machine
//     that produced the baseline and the machine running the gate.
//   - Counters (contracts scanned, emulations, cache hits, pairs analyzed,
//     collisions found, EVM steps) are *deterministic*: for a fixed seed and
//     scale two runs must produce identical values, on any machine. Counter
//     drift against the baseline therefore means the analyzed behavior
//     changed — e.g. a PR silently lost dedup-cache hits — and is reported
//     even when the timings still pass.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// SchemaVersion identifies the report layout. Compare refuses to diff
// reports with mismatched versions; bump it on any incompatible change to
// Report or WorkloadResult.
const SchemaVersion = 1

// Report is one full suite run, the unit written to BENCH_*.json files and
// compared against bench/baseline.json.
type Report struct {
	SchemaVersion int `json:"schema_version"`

	// Profile is the suite profile that produced the run ("quick"/"full").
	Profile string `json:"profile"`
	// Seed drove every workload's corpus generation.
	Seed int64 `json:"seed"`

	// CreatedAt is stamped by the CLI at write time (RFC 3339, UTC). The
	// runner itself never reads the clock for anything but durations, so
	// reports stay reproducible modulo this one field.
	CreatedAt string `json:"created_at,omitempty"`

	// Host describes the measuring machine, for humans reading trajectories.
	Host Host `json:"host"`

	Workloads []WorkloadResult `json:"workloads"`
}

// Host records the environment a report was measured on.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// WorkloadResult is the measurement of one workload within a run.
type WorkloadResult struct {
	Name  string `json:"name"`
	Scale int    `json:"scale"`
	// Batch is how many ops each timing sample aggregated.
	Batch int `json:"batch"`
	// Samples is the number of timing samples taken after warmup.
	Samples int `json:"samples"`

	// MedianNsPerOp/P95NsPerOp/MinNsPerOp summarize the per-op nanosecond
	// samples. The comparator keys off the median (with the min as a noise
	// cross-check); p95 is recorded for trajectory plots.
	MedianNsPerOp float64 `json:"median_ns_per_op"`
	P95NsPerOp    float64 `json:"p95_ns_per_op"`
	MinNsPerOp    float64 `json:"min_ns_per_op"`

	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`

	// Counters are the workload's deterministic outputs: identical for equal
	// (seed, scale) on every machine. See the package comment.
	Counters map[string]int64 `json:"counters,omitempty"`

	// The fields below are soak-only (RunSoak): a single long streaming run
	// measured for per-item latency and peak memory rather than repeated
	// timing samples. They are additive and omitempty, so suite reports are
	// byte-identical to schema version 1 reports from before soak existed.

	// WallNs is the soak run's total wall time.
	WallNs int64 `json:"wall_ns,omitempty"`
	// ItemP50NsPerOp / ItemP99NsPerOp are per-contract end-to-end latency
	// percentiles (source hand-off to sink emission), read from a
	// log-bucketed histogram — resolution is ~±25% of the value, which is
	// plenty for regression trajectories.
	ItemP50NsPerOp float64 `json:"item_p50_ns_per_op,omitempty"`
	ItemP99NsPerOp float64 `json:"item_p99_ns_per_op,omitempty"`
	// PeakHeapBytes is the maximum runtime.MemStats.HeapInuse observed by
	// the soak's sampler; PeakRSSBytes is the kernel's VmHWM for the whole
	// process (0 where /proc is unavailable).
	PeakHeapBytes int64 `json:"peak_heap_bytes,omitempty"`
	PeakRSSBytes  int64 `json:"peak_rss_bytes,omitempty"`
}

// Workload returns the named result, or nil.
func (r *Report) Workload(name string) *WorkloadResult {
	for i := range r.Workloads {
		if r.Workloads[i].Name == name {
			return &r.Workloads[i]
		}
	}
	return nil
}

// Filename renders the canonical BENCH_<timestamp>.json name for a run.
func Filename(t time.Time) string {
	return "BENCH_" + t.UTC().Format("20060102T150405Z") + ".json"
}

// WriteFile writes the report as indented JSON with a trailing newline.
func (r *Report) WriteFile(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode report: %w", err)
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// LoadReport reads and validates a report file. A file whose schema version
// differs from SchemaVersion still loads (Compare produces the dedicated
// mismatch error), but a file with no version at all is rejected as not a
// benchmark report.
func LoadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.SchemaVersion == 0 {
		return nil, fmt.Errorf("bench: %s is not a benchmark report (no schema_version)", path)
	}
	return &r, nil
}
