package proxion

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/solc"
	"repro/internal/u256"
)

func hashOfByte(b byte) etypes.Hash {
	var h etypes.Hash
	h[31] = b
	return h
}

// TestVerdictCacheEvictionOrder pins the LRU policy at the cache level:
// with capacity 2, touching A before inserting C must evict B, not A.
func TestVerdictCacheEvictionOrder(t *testing.T) {
	c := newVerdictCache()
	c.setCapacity(2)

	hA, hB, hC := hashOfByte(1), hashOfByte(2), hashOfByte(3)
	c.entry(hA)
	c.entry(hB)
	c.entry(hA) // refresh A: B is now least recently used
	c.entry(hC) // over capacity: evict B

	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	c.mu.Lock()
	_, hasA := c.m[hA]
	_, hasB := c.m[hB]
	_, hasC := c.m[hC]
	c.mu.Unlock()
	if !hasA || hasB || !hasC {
		t.Fatalf("after insert A,B, touch A, insert C: hasA=%v hasB=%v hasC=%v, want true,false,true", hasA, hasB, hasC)
	}
	if got := c.evictionCount(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

// TestVerdictCacheShrinkOnSetCapacity checks that lowering the capacity of
// a populated cache evicts immediately, oldest first, and that capacity 0
// returns the cache to unbounded mode.
func TestVerdictCacheShrinkOnSetCapacity(t *testing.T) {
	c := newVerdictCache()
	for i := byte(1); i <= 5; i++ {
		c.entry(hashOfByte(i))
	}
	c.setCapacity(2)
	if c.len() != 2 {
		t.Fatalf("after shrink to 2: len = %d", c.len())
	}
	c.mu.Lock()
	_, has4 := c.m[hashOfByte(4)]
	_, has5 := c.m[hashOfByte(5)]
	c.mu.Unlock()
	if !has4 || !has5 {
		t.Fatal("shrink evicted the most recent entries instead of the oldest")
	}
	if got := c.evictionCount(); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}

	c.setCapacity(0)
	for i := byte(6); i <= 20; i++ {
		c.entry(hashOfByte(i))
	}
	if c.len() != 17 {
		t.Fatalf("unbounded mode evicted: len = %d, want 17", c.len())
	}
}

// TestVerdictCacheInvalidate covers the staleness remedy: after invalidate,
// the old record (including a poisoned one, whose recording run panicked
// and consumed its sync.Once) is gone and the next entry() starts fresh.
func TestVerdictCacheInvalidate(t *testing.T) {
	c := newVerdictCache()
	h := hashOfByte(9)

	e := c.entry(h)
	func() {
		defer func() { _ = recover() }()
		e.once.Do(func() { panic("recording run died mid-probe") })
	}()
	if e.byFP != nil {
		t.Fatal("test setup: entry should be poisoned (byFP nil, once consumed)")
	}

	c.invalidate(h)
	if c.len() != 0 {
		t.Fatalf("after invalidate: len = %d, want 0", c.len())
	}
	e2 := c.entry(h)
	if e2 == e {
		t.Fatal("entry after invalidate is the poisoned record, not a fresh one")
	}
	ran := false
	e2.once.Do(func() { ran = true })
	if !ran {
		t.Fatal("fresh entry's once was already consumed")
	}

	// Invalidating an absent hash is a no-op.
	c.invalidate(hashOfByte(200))
}

func boundedTestLogic() *solc.Contract {
	return &solc.Contract{
		Name: "Logic",
		Vars: []solc.Var{
			{Name: "reserved", Type: solc.TypeAddress},
			{Name: "value", Type: solc.TypeUint256},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "value"}, Body: []solc.Stmt{solc.ReturnStorageVar{Var: "value"}}},
		},
	}
}

// TestBoundedCacheHitAccounting interleaves two duplicate bytecode
// families (A B A B) through a single-worker pipeline, so probe order is
// the contract order and the accounting is exact. Capacity 1 thrashes:
// every probe is a miss and an eviction chain; capacity 2 holds both
// families and serves the re-encounters from cache. Both must produce the
// identical analysis.
func TestBoundedCacheHitAccounting(t *testing.T) {
	build := func() *chain.Chain {
		c := chain.New()
		logic := etypes.MustAddress("0x0000000000000000000000000000000000000900")
		c.InstallContract(logic, solc.MustCompile(boundedTestLogic()))
		for i := 0; i < 4; i++ {
			// Even addresses get family A (slot 3), odd family B (slot 4) —
			// sorted contract order interleaves the two bytecodes.
			slot := uint64(3 + i%2)
			code := solc.MustCompile(&solc.Contract{
				Name:     "P",
				Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: etypes.HashFromWord(u256.FromUint64(slot))},
			})
			p := etypes.MustAddress(fmt.Sprintf("0x00000000000000000000000000000000000010%02x", i))
			c.InstallContract(p, code)
			c.SetStorageDirect(p, etypes.HashFromWord(u256.FromUint64(slot)), etypes.HashFromWord(logic.Word()))
		}
		return c
	}
	serial := AnalyzeOptions{FilterWorkers: 1, ProbeWorkers: 1, ClassifyWorkers: 1, PairWorkers: 1}

	thrashOpts := serial
	thrashOpts.CacheCapacity = 1
	dThrash := NewDetector(build())
	thrash := dThrash.AnalyzeAllWithOptions(nil, thrashOpts)

	roomyOpts := serial
	roomyOpts.CacheCapacity = 2
	dRoomy := NewDetector(build())
	roomy := dRoomy.AnalyzeAllWithOptions(nil, roomyOpts)

	// Probe order is A B A B. Capacity 1: every arrival misses and evicts
	// the other family — 4 emulations, 0 hits, 3 evictions. Capacity 2:
	// 2 emulations, 2 hits, 0 evictions. Hits+emulations must account for
	// every probed contract in both modes.
	if thrash.Stats.Emulations != 4 || thrash.Stats.CacheHits != 0 {
		t.Errorf("capacity 1: emulations=%d hits=%d, want 4/0", thrash.Stats.Emulations, thrash.Stats.CacheHits)
	}
	if got := dThrash.CacheEvictions(); got != 3 {
		t.Errorf("capacity 1: evictions=%d, want 3", got)
	}
	if roomy.Stats.Emulations != 2 || roomy.Stats.CacheHits != 2 {
		t.Errorf("capacity 2: emulations=%d hits=%d, want 2/2", roomy.Stats.Emulations, roomy.Stats.CacheHits)
	}
	if got := dRoomy.CacheEvictions(); got != 0 {
		t.Errorf("capacity 2: evictions=%d, want 0", got)
	}

	thrash.Stats, roomy.Stats = nil, nil
	if !reflect.DeepEqual(thrash, roomy) {
		t.Fatal("eviction changed analysis output: thrashing and roomy runs differ")
	}
}

// TestBoundedCacheNoStaleVerdictAfterInvalidate drives the detector path:
// a verdict is recorded for a bytecode, the recording address's guard
// state is then changed out from under the cache, and InvalidateVerdict
// must force the next duplicate to re-emulate rather than transfer the
// stale record. (The guard-fingerprint mechanism already isolates *keyed*
// state; invalidation is the remedy when the recorded baseline itself is
// no longer trustworthy.)
func TestBoundedCacheNoStaleVerdictAfterInvalidate(t *testing.T) {
	c := chain.New()
	slot := etypes.HashFromWord(u256.FromUint64(3))
	code := solc.MustCompile(&solc.Contract{
		Name:     "P",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: slot},
	})
	logic := etypes.MustAddress("0x0000000000000000000000000000000000000900")
	c.InstallContract(logic, solc.MustCompile(boundedTestLogic()))
	p1 := etypes.MustAddress("0x0000000000000000000000000000000000001001")
	p2 := etypes.MustAddress("0x0000000000000000000000000000000000001002")
	for _, p := range []etypes.Address{p1, p2} {
		c.InstallContract(p, code)
		c.SetStorageDirect(p, slot, etypes.HashFromWord(logic.Word()))
	}

	d := NewDetector(c)
	if _, tr := d.checkDeduped(p1, code); tr.source != sourceEmulated {
		t.Fatal("first probe cannot be a cache hit")
	}
	if _, tr := d.checkDeduped(p2, code); tr.source != sourceExactHit {
		t.Fatal("duplicate with identical guard state should hit")
	}

	// Invalidation drops the exact-hash verdict. The structural family
	// survives (its registration depends only on the code shape, which
	// invalidation does not dispute) and re-anchors the re-probe from p2's
	// own storage — fresh state, so nothing stale is served; what must not
	// happen is a hit on the dropped exact entry.
	d.InvalidateVerdict(c.CodeHash(p1))
	rep, tr := d.checkDeduped(p2, code)
	if tr.source == sourceExactHit {
		t.Fatal("verdict served from the exact cache after invalidation")
	}
	if !rep.IsProxy || rep.Logic != logic {
		t.Fatalf("re-recorded verdict wrong: proxy=%v logic=%s", rep.IsProxy, rep.Logic)
	}
	// And the re-recorded verdict serves duplicates again.
	if _, tr := d.checkDeduped(p1, code); tr.source != sourceExactHit {
		t.Fatal("cache did not repopulate after invalidation")
	}
}
