package proxion

import (
	"repro/internal/chain"
	"repro/internal/etypes"
)

// StandardEIP2535 marks diamonds detected by the history-assisted extension.
// The base pipeline cannot see them (Section 8.1): a diamond forwards only
// selectors registered in its facet mapping, so random probe data reverts
// before any DELEGATECALL executes.
const StandardEIP2535 Standard = 100

// CheckWithHistory implements the paper's proposed future work (Section
// 8.2): when the standard random-probe emulation does not observe
// forwarding but the bytecode contains DELEGATECALL, retry the emulation
// with call data built from the function selectors observed in the
// contract's past transactions — for a diamond, any registered facet
// selector opens the forwarding path.
//
// The extension strictly widens coverage: contracts the base pipeline
// already classifies are returned unchanged.
func (d *Detector) CheckWithHistory(addr etypes.Address) Report {
	rep := d.Check(addr)
	if rep.IsProxy || !rep.HasDelegateCall {
		return rep
	}
	var sels [][4]byte
	if re := chain.CaptureReadError(func() { sels = d.chain.TxSelectors(addr) }); re != nil {
		return unresolvedReport(addr, re)
	}
	for _, sel := range sels {
		probe := historyProbe(addr, sel)
		r := d.CheckWithCallData(addr, probe)
		if !r.IsProxy {
			continue
		}
		// Selector-dependent forwarding is the diamond behaviour: the base
		// probe failed, a registered selector succeeded.
		r.Standard = StandardEIP2535
		return r
	}
	return rep
}

// historyProbe builds probe call data carrying a known selector plus the
// recognizable payload used to confirm byte-for-byte forwarding.
func historyProbe(addr etypes.Address, sel [4]byte) []byte {
	base := CraftCallData(addr, nil)
	copy(base[:4], sel[:])
	return base
}
