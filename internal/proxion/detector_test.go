package proxion_test

import (
	"errors"
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

var (
	logicAt = etypes.MustAddress("0x0000000000000000000000000000000000009001")
	proxyAt = etypes.MustAddress("0x0000000000000000000000000000000000009002")
	userA   = etypes.MustAddress("0x000000000000000000000000000000000000a001")
)

// simpleLogic returns a logic contract with a value getter/setter at slot 1.
func simpleLogic() *solc.Contract {
	return &solc.Contract{
		Name: "Logic",
		Vars: []solc.Var{
			{Name: "reserved", Type: solc.TypeAddress},
			{Name: "value", Type: solc.TypeUint256},
		},
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "value"}, Body: []solc.Stmt{solc.ReturnStorageVar{Var: "value"}}},
			{ABI: abi.Function{Name: "setValue", Params: []string{"uint256"}},
				Body: []solc.Stmt{solc.AssignArg{Var: "value", Arg: 0}}},
		},
	}
}

// newChainWithPair deploys a storage-slot proxy (impl at implSlot) plus a
// logic contract and wires them up.
func newChainWithPair(t *testing.T, implSlot etypes.Hash) *chain.Chain {
	t.Helper()
	c := chain.New()
	c.InstallContract(logicAt, solc.MustCompile(simpleLogic()))
	proxy := &solc.Contract{
		Name:     "Proxy",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	c.InstallContract(proxyAt, solc.MustCompile(proxy))
	c.SetStorageDirect(proxyAt, implSlot, etypes.HashFromWord(logicAt.Word()))
	return c
}

func TestDetectStorageProxy(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(7))
	c := newChainWithPair(t, implSlot)
	d := proxion.NewDetector(c)

	rep := d.Check(proxyAt)
	if !rep.IsProxy {
		t.Fatalf("storage proxy not detected: %+v", rep)
	}
	if rep.Logic != logicAt {
		t.Errorf("logic = %s, want %s", rep.Logic, logicAt)
	}
	if rep.Target != proxion.TargetStorage {
		t.Errorf("target = %s, want storage", rep.Target)
	}
	if rep.ImplSlot != implSlot {
		t.Errorf("impl slot = %s, want %s", rep.ImplSlot, implSlot)
	}
	if rep.Standard != proxion.StandardOther {
		t.Errorf("standard = %s, want Others", rep.Standard)
	}
	// The logic contract itself is not a proxy.
	if lr := d.Check(logicAt); lr.IsProxy {
		t.Error("logic contract misdetected as proxy")
	}
}

func TestDetectEIP1967AndEIP1822(t *testing.T) {
	cases := []struct {
		name string
		slot etypes.Hash
		want proxion.Standard
	}{
		{"eip1967", proxion.SlotEIP1967, proxion.StandardEIP1967},
		{"eip1822", proxion.SlotEIP1822, proxion.StandardEIP1822},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newChainWithPair(t, tc.slot)
			rep := proxion.NewDetector(c).Check(proxyAt)
			if !rep.IsProxy || rep.Standard != tc.want {
				t.Errorf("report = %+v, want standard %s", rep, tc.want)
			}
		})
	}
}

func TestDetectMinimalProxy(t *testing.T) {
	c := chain.New()
	c.InstallContract(logicAt, solc.MustCompile(simpleLogic()))
	c.InstallContract(proxyAt, disasm.MinimalProxyRuntime(logicAt))

	rep := proxion.NewDetector(c).Check(proxyAt)
	if !rep.IsProxy {
		t.Fatalf("minimal proxy not detected: %+v", rep)
	}
	if rep.Standard != proxion.StandardEIP1167 {
		t.Errorf("standard = %s, want EIP-1167", rep.Standard)
	}
	if rep.Target != proxion.TargetHardcoded {
		t.Errorf("target = %s, want hardcoded", rep.Target)
	}
	if rep.Logic != logicAt {
		t.Errorf("logic = %s", rep.Logic)
	}
}

func TestNonDelegatingContractRejectedByDisasm(t *testing.T) {
	c := chain.New()
	plain := &solc.Contract{
		Name: "Plain",
		Funcs: []solc.Func{{
			ABI:  abi.Function{Name: "ping"},
			Body: []solc.Stmt{solc.ReturnConst{Value: u256.One()}},
		}},
	}
	c.InstallContract(proxyAt, solc.MustCompile(plain))
	rep := proxion.NewDetector(c).Check(proxyAt)
	if rep.IsProxy {
		t.Error("plain contract detected as proxy")
	}
	if rep.HasDelegateCall {
		t.Error("step-1 filter should reject before emulation")
	}
}

func TestLibraryCallExcluded(t *testing.T) {
	// Contains DELEGATECALL but constructs its own call data: the library
	// idiom the paper explicitly excludes (Section 2.2).
	lib := etypes.MustAddress("0x0000000000000000000000000000000000009100")
	c := chain.New()
	c.InstallContract(lib, []byte{0x00})
	contract := &solc.Contract{
		Name:     "UsesLib",
		Fallback: solc.Fallback{Kind: solc.FallbackLibraryCall, Target: lib, Proto: "sqrt(uint256)"},
	}
	c.InstallContract(proxyAt, solc.MustCompile(contract))

	rep := proxion.NewDetector(c).Check(proxyAt)
	if !rep.HasDelegateCall {
		t.Fatal("library contract should pass the opcode filter")
	}
	if rep.IsProxy {
		t.Error("library-call contract misclassified as proxy (call data was not forwarded)")
	}
}

func TestDiamondMissedAsDocumented(t *testing.T) {
	// EIP-2535 diamonds revert for unregistered selectors before any
	// delegatecall; random probe data cannot reach a facet (Section 8.1).
	c := chain.New()
	diamond := &solc.Contract{
		Name:     "Diamond",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateDiamond, Slot: etypes.HashFromWord(u256.FromUint64(0x2535))},
	}
	c.InstallContract(proxyAt, solc.MustCompile(diamond))
	rep := proxion.NewDetector(c).Check(proxyAt)
	if rep.IsProxy {
		t.Error("diamond detected — the paper documents this as a known miss; dataset labels depend on it")
	}
	if !rep.HasDelegateCall {
		t.Error("diamond should pass the opcode filter")
	}
}

func TestEmulationErrorReported(t *testing.T) {
	// Bytecode with a DELEGATECALL but an immediate stack underflow.
	c := chain.New()
	c.InstallContract(proxyAt, []byte{byte(evm.ADD), byte(evm.DELEGATECALL)})
	rep := proxion.NewDetector(c).Check(proxyAt)
	if rep.IsProxy {
		t.Error("broken bytecode detected as proxy")
	}
	if !errors.Is(rep.EmulationErr, evm.ErrStackUnderflow) {
		t.Errorf("emulation err = %v, want stack underflow", rep.EmulationErr)
	}
}

func TestCraftCallDataAvoidsAllPush4(t *testing.T) {
	contract := &solc.Contract{
		Name: "Many",
		Funcs: []solc.Func{
			{ABI: abi.Function{Name: "a"}, Body: []solc.Stmt{solc.Stop{}}},
			{ABI: abi.Function{Name: "b"}, Body: []solc.Stmt{solc.Stop{}}},
		},
		DecoyPush4: [][4]byte{{1, 2, 3, 4}},
	}
	code := solc.MustCompile(contract)
	data := proxion.CraftCallData(proxyAt, code)
	if len(data) < 4 {
		t.Fatal("call data too short")
	}
	var sel [4]byte
	copy(sel[:], data)
	for _, avoid := range disasm.Push4Candidates(code) {
		if sel == avoid {
			t.Fatalf("crafted selector %x collides with PUSH4 candidate", sel)
		}
	}
	// Deterministic for the same inputs.
	if string(data) != string(proxion.CraftCallData(proxyAt, code)) {
		t.Error("crafted call data not deterministic")
	}
}

func TestCheckDoesNotMutateChain(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(7))
	c := newChainWithPair(t, implSlot)
	before := c.CurrentBlock()
	d := proxion.NewDetector(c)
	d.Check(proxyAt)
	if c.CurrentBlock() != before {
		t.Error("detection advanced the chain")
	}
	if got := c.TxCount(proxyAt); got != 0 {
		t.Errorf("detection recorded %d transactions", got)
	}
}

func TestLogicHistoryBinarySearch(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(1))
	c := chain.New()
	proxy := &solc.Contract{
		Name:     "Upgradeable",
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	c.InstallContract(proxyAt, solc.MustCompile(proxy))

	// Three logic versions installed at spread-out heights.
	logics := []etypes.Address{
		etypes.MustAddress("0x0000000000000000000000000000000000009201"),
		etypes.MustAddress("0x0000000000000000000000000000000000009202"),
		etypes.MustAddress("0x0000000000000000000000000000000000009203"),
	}
	heights := []uint64{100, 5_000, 90_000}
	for i, l := range logics {
		c.AdvanceTo(heights[i])
		c.SetStorageDirect(proxyAt, implSlot, etypes.HashFromWord(l.Word()))
	}
	c.AdvanceTo(150_000)

	d := proxion.NewDetector(c)
	c.ResetAPICalls()
	got := d.LogicHistory(proxyAt, implSlot)
	calls := c.APICalls()

	if len(got) != 3 {
		t.Fatalf("history = %d logics, want 3: %v", len(got), got)
	}
	want := map[etypes.Address]bool{logics[0]: true, logics[1]: true, logics[2]: true}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected logic %s", a)
		}
	}
	// The whole point of Algorithm 1: API calls must be logarithmic-ish,
	// orders of magnitude below the 150k-block naive scan (the paper
	// reports ~26 calls per proxy on 15M blocks).
	if calls > 300 {
		t.Errorf("binary search used %d getStorageAt calls; too many", calls)
	}
	if calls == 0 {
		t.Error("no API calls counted")
	}

	// Naive scan agrees on the result set.
	c.ResetAPICalls()
	naive := d.NaiveLogicHistory(proxyAt, implSlot)
	naiveCalls := c.APICalls()
	if len(naive) != 3 {
		t.Fatalf("naive history = %v", naive)
	}
	if naiveCalls <= calls*10 {
		t.Errorf("naive (%d calls) should dwarf binary search (%d)", naiveCalls, calls)
	}

	if got := d.UpgradeCount(proxyAt, implSlot); got != 2 {
		t.Errorf("upgrade count = %d, want 2", got)
	}
}

func TestLogicHistorySingleVersion(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(1))
	c := newChainWithPair(t, implSlot)
	c.AdvanceTo(10_000)
	d := proxion.NewDetector(c)
	got := d.LogicHistory(proxyAt, implSlot)
	if len(got) != 1 || got[0] != logicAt {
		t.Errorf("history = %v, want [%s]", got, logicAt)
	}
	if d.UpgradeCount(proxyAt, implSlot) != 0 {
		t.Error("single logic means zero upgrades")
	}
}

func TestReportReasons(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(7))
	c := newChainWithPair(t, implSlot)
	d := proxion.NewDetector(c)

	if rep := d.Check(proxyAt); rep.Reason == "" || rep.Reason[:8] != "fallback" {
		t.Errorf("proxy reason = %q", rep.Reason)
	}
	if rep := d.Check(logicAt); rep.Reason == "" {
		t.Errorf("non-proxy reason empty")
	}
	nobody := etypes.MustAddress("0x00000000000000000000000000000000000ddddd")
	if rep := d.Check(nobody); rep.Reason != "no code at address" {
		t.Errorf("empty account reason = %q", rep.Reason)
	}
	// Broken bytecode carries the emulation error in its reason.
	broken := etypes.MustAddress("0x00000000000000000000000000000000000ddd01")
	c.InstallContract(broken, []byte{byte(evm.ADD), byte(evm.DELEGATECALL)})
	rep := d.Check(broken)
	if rep.EmulationErr == nil || rep.Reason == "" {
		t.Errorf("broken reason = %q err = %v", rep.Reason, rep.EmulationErr)
	}
}
