package proxion

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/etypes"
)

// This file is the persistence surface of the bytecode-dedup verdict
// cache: the exported, serializable view of one cache entry and the
// Detector hooks that export and import entries without callers reaching
// into unexported state. A long-running service snapshots entries through
// ExportVerdict as analyses complete, appends them to a disk store, and
// re-seeds a fresh detector with ImportVerdicts on restart — so verdicts
// survive process death and a warm process answers duplicate-bytecode
// queries without a single re-emulation.

// CachedVerdict is one memoized emulation outcome of a bytecode, exported:
// the verdict recorded under one guard-slot fingerprint.
type CachedVerdict struct {
	// Fingerprint is the guard-slot fingerprint the verdict was recorded
	// under (see guardFingerprint).
	Fingerprint etypes.Hash
	// Forwarded says the fallback forwarded the probe via DELEGATECALL.
	Forwarded bool
	// Target/ImplSlot/Logic locate the delegate (meaningful when Forwarded).
	Target   TargetSource
	ImplSlot etypes.Hash
	Logic    etypes.Address
	// EmulationErr is the terminal EVM error text ("" when none). Errors
	// round-trip as text: a rehydrated verdict reproduces the same Error()
	// string, which is all downstream reporting observes.
	EmulationErr string
	// Reason is the human-readable verdict justification.
	Reason string
}

// CacheEntry is the exported, serializable state of one distinct runtime
// bytecode in the verdict cache.
type CacheEntry struct {
	// CodeHash keys the entry: Keccak-256 of the runtime bytecode.
	CodeHash etypes.Hash
	// FirstAddr is the address the recording run probed.
	FirstAddr etypes.Address
	// GuardSlots are the storage slots the fallback read before forwarding,
	// in first-read order. Order is significant — the fingerprint hashes
	// slots in this order — and is preserved exactly by serialization.
	GuardSlots []etypes.Hash
	// Verdicts holds the per-fingerprint outcomes.
	Verdicts []CachedVerdict
}

// cacheEntryVersion tags the binary encoding; bump on layout change.
const cacheEntryVersion = 1

// maxCacheEntrySlices bounds slice lengths accepted by UnmarshalBinary,
// rejecting garbage lengths before allocation.
const maxCacheEntrySlices = 1 << 20

// persistedError rehydrates an emulation error from its stored text. The
// analysis layers only ever observe Error(), so a round-tripped verdict is
// indistinguishable from the original in every report.
type persistedError string

func (e persistedError) Error() string { return string(e) }

// MarshalBinary encodes the entry byte-stably: verdicts are sorted by
// fingerprint, guard slots keep their semantic order, and all integers are
// fixed-width big-endian — so two entries with equal contents marshal to
// identical bytes regardless of map iteration or recording order.
func (e CacheEntry) MarshalBinary() ([]byte, error) {
	if len(e.GuardSlots) > maxCacheEntrySlices || len(e.Verdicts) > maxCacheEntrySlices {
		return nil, fmt.Errorf("proxion: cache entry too large to encode")
	}
	vs := make([]CachedVerdict, len(e.Verdicts))
	copy(vs, e.Verdicts)
	sort.Slice(vs, func(i, j int) bool {
		return bytes.Compare(vs[i].Fingerprint[:], vs[j].Fingerprint[:]) < 0
	})

	var b bytes.Buffer
	b.WriteByte(cacheEntryVersion)
	b.Write(e.CodeHash[:])
	b.Write(e.FirstAddr[:])
	writeU32 := func(n int) {
		var u [4]byte
		binary.BigEndian.PutUint32(u[:], uint32(n))
		b.Write(u[:])
	}
	writeStr := func(s string) {
		writeU32(len(s))
		b.WriteString(s)
	}
	writeU32(len(e.GuardSlots))
	for _, s := range e.GuardSlots {
		b.Write(s[:])
	}
	writeU32(len(vs))
	for _, v := range vs {
		b.Write(v.Fingerprint[:])
		if v.Forwarded {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		b.WriteByte(byte(v.Target))
		b.Write(v.ImplSlot[:])
		b.Write(v.Logic[:])
		writeStr(v.EmulationErr)
		writeStr(v.Reason)
	}
	return b.Bytes(), nil
}

// UnmarshalBinary decodes an entry encoded by MarshalBinary, validating
// the version tag and every length before use.
func (e *CacheEntry) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	readByte := func() (byte, error) { return r.ReadByte() }

	v, err := readByte()
	if err != nil {
		return fmt.Errorf("proxion: cache entry truncated")
	}
	if v != cacheEntryVersion {
		return fmt.Errorf("proxion: cache entry version %d, want %d", v, cacheEntryVersion)
	}
	need := func(p []byte) error {
		n, err := r.Read(p)
		if err != nil || n != len(p) {
			return fmt.Errorf("proxion: cache entry truncated")
		}
		return nil
	}
	readU32 := func() (int, error) {
		var u [4]byte
		if err := need(u[:]); err != nil {
			return 0, err
		}
		n := int(binary.BigEndian.Uint32(u[:]))
		if n < 0 || n > maxCacheEntrySlices {
			return 0, fmt.Errorf("proxion: cache entry length %d out of range", n)
		}
		return n, nil
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > r.Len() {
			return "", fmt.Errorf("proxion: cache entry truncated")
		}
		p := make([]byte, n)
		if n > 0 {
			if err := need(p); err != nil {
				return "", err
			}
		}
		return string(p), nil
	}

	var out CacheEntry
	if err := need(out.CodeHash[:]); err != nil {
		return err
	}
	if err := need(out.FirstAddr[:]); err != nil {
		return err
	}
	nSlots, err := readU32()
	if err != nil {
		return err
	}
	for i := 0; i < nSlots; i++ {
		var s etypes.Hash
		if err := need(s[:]); err != nil {
			return err
		}
		out.GuardSlots = append(out.GuardSlots, s)
	}
	nVerd, err := readU32()
	if err != nil {
		return err
	}
	for i := 0; i < nVerd; i++ {
		var cv CachedVerdict
		if err := need(cv.Fingerprint[:]); err != nil {
			return err
		}
		fwd, err := readByte()
		if err != nil {
			return fmt.Errorf("proxion: cache entry truncated")
		}
		cv.Forwarded = fwd == 1
		tgt, err := readByte()
		if err != nil {
			return fmt.Errorf("proxion: cache entry truncated")
		}
		cv.Target = TargetSource(tgt)
		if err := need(cv.ImplSlot[:]); err != nil {
			return err
		}
		if err := need(cv.Logic[:]); err != nil {
			return err
		}
		if cv.EmulationErr, err = readStr(); err != nil {
			return err
		}
		if cv.Reason, err = readStr(); err != nil {
			return err
		}
		out.Verdicts = append(out.Verdicts, cv)
	}
	if r.Len() != 0 {
		return fmt.Errorf("proxion: %d trailing bytes after cache entry", r.Len())
	}
	*e = out
	return nil
}

// ExportVerdict snapshots the cache entry for one runtime bytecode hash.
// It returns ok=false when the hash is unknown, still recording, or
// poisoned (a recording run that died in a read failure — such entries
// transfer no verdicts and are not worth persisting). Call only after the
// analysis that touched the bytecode has delivered its result (a sink
// observing the finished item satisfies this); the call synchronizes with
// the recording goroutine through the entry's once.
func (d *Detector) ExportVerdict(codeHash etypes.Hash) (CacheEntry, bool) {
	d.verdicts.mu.Lock()
	e, ok := d.verdicts.m[codeHash]
	d.verdicts.mu.Unlock()
	if !ok {
		return CacheEntry{}, false
	}
	return exportEntry(codeHash, e)
}

// ExportVerdicts snapshots every exportable cache entry, sorted by code
// hash for deterministic output. Intended for quiescent detectors (after a
// run has drained); see ExportVerdict for the synchronization contract.
func (d *Detector) ExportVerdicts() []CacheEntry {
	d.verdicts.mu.Lock()
	hashes := make([]etypes.Hash, 0, len(d.verdicts.m))
	for h := range d.verdicts.m {
		hashes = append(hashes, h)
	}
	d.verdicts.mu.Unlock()
	sort.Slice(hashes, func(i, j int) bool {
		return bytes.Compare(hashes[i][:], hashes[j][:]) < 0
	})
	var out []CacheEntry
	for _, h := range hashes {
		if e, ok := d.ExportVerdict(h); ok {
			out = append(out, e)
		}
	}
	return out
}

// exportEntry renders one recorded codeVerdict as its exported form.
func exportEntry(codeHash etypes.Hash, e *codeVerdict) (CacheEntry, bool) {
	// Synchronize with the recording run. If the entry was created but
	// never recorded, this consumes the once and the entry reads as
	// poisoned — harmless at the quiescent points this API is for.
	e.once.Do(func() {})
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.byFP == nil {
		return CacheEntry{}, false
	}
	out := CacheEntry{
		CodeHash:   codeHash,
		FirstAddr:  e.firstAddr,
		GuardSlots: append([]etypes.Hash(nil), e.guardSlots...),
	}
	for fp, v := range e.byFP {
		cv := CachedVerdict{
			Fingerprint: fp,
			Forwarded:   v.forwarded,
			Target:      v.target,
			ImplSlot:    v.implSlot,
			Logic:       v.logic,
			Reason:      v.reason,
		}
		if v.emulationErr != nil {
			cv.EmulationErr = v.emulationErr.Error()
		}
		out.Verdicts = append(out.Verdicts, cv)
	}
	sort.Slice(out.Verdicts, func(i, j int) bool {
		return bytes.Compare(out.Verdicts[i].Fingerprint[:], out.Verdicts[j].Fingerprint[:]) < 0
	})
	return out, true
}

// ImportVerdicts pre-seeds the verdict cache with previously exported
// entries, returning how many were installed. An entry whose code hash is
// already cached is skipped — live state wins over persisted state — so
// importing is safe at any point, though it is normally done once, before
// the first analysis. Imported entries participate in the LRU exactly like
// recorded ones.
func (d *Detector) ImportVerdicts(entries []CacheEntry) int {
	installed := 0
	for _, ent := range entries {
		cv := &codeVerdict{
			firstAddr:  ent.FirstAddr,
			guardSlots: append([]etypes.Hash(nil), ent.GuardSlots...),
			byFP:       make(map[etypes.Hash]*probeVerdict, len(ent.Verdicts)),
		}
		for _, v := range ent.Verdicts {
			pv := &probeVerdict{
				forwarded: v.Forwarded,
				target:    v.Target,
				implSlot:  v.ImplSlot,
				logic:     v.Logic,
				reason:    v.Reason,
			}
			if v.EmulationErr != "" {
				pv.emulationErr = persistedError(v.EmulationErr)
			}
			cv.byFP[v.Fingerprint] = pv
		}
		// Mark the entry recorded: lookups must go straight to byFP.
		cv.once.Do(func() {})
		if d.verdicts.install(ent.CodeHash, cv) {
			installed++
		}
	}
	return installed
}
