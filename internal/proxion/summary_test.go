package proxion_test

import (
	"encoding/json"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etypes"
	"repro/internal/proxion"
)

func TestSummarizeAggregates(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 21, Contracts: 700})
	det := proxion.NewDetector(pop.Chain)
	res := det.AnalyzeAll(pop.Registry)
	s := proxion.Summarize(res)

	if s.Contracts != len(res.Reports) {
		t.Errorf("contracts = %d, want %d", s.Contracts, len(res.Reports))
	}
	if s.Proxies != len(res.Proxies()) {
		t.Errorf("proxies = %d, want %d", s.Proxies, len(res.Proxies()))
	}
	var stdTotal int
	for _, n := range s.Standards {
		stdTotal += n
	}
	if stdTotal != s.Proxies {
		t.Errorf("standards sum %d != proxies %d", stdTotal, s.Proxies)
	}
	if s.TargetStorage+s.TargetHardcoded != s.Proxies {
		t.Errorf("target split %d+%d != proxies %d", s.TargetStorage, s.TargetHardcoded, s.Proxies)
	}
	if share := s.ProxyShare(); share <= 0.3 || share >= 0.8 {
		t.Errorf("proxy share = %.2f, expected near the paper's 0.54", share)
	}

	out, err := s.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back proxion.Summary
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Proxies != s.Proxies || back.VerifiedExploits != s.VerifiedExploits {
		t.Errorf("JSON round trip mismatch: %+v vs %+v", back, s)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := proxion.Summarize(&proxion.Result{})
	if s.ProxyShare() != 0 {
		t.Error("empty result proxy share should be 0")
	}
	if _, err := s.MarshalIndentJSON(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeSinceIncremental(t *testing.T) {
	pop := dataset.Generate(dataset.Config{Seed: 33, Contracts: 600})
	det := proxion.NewDetector(pop.Chain)
	full := det.AnalyzeAll(pop.Registry)

	// Mid-chain cut: the incremental run must cover exactly the contracts
	// deployed after the cut.
	cut := pop.Chain.CurrentBlock() / 2
	inc := det.AnalyzeSince(cut, pop.Registry)
	if len(inc.Reports) == 0 || len(inc.Reports) >= len(full.Reports) {
		t.Fatalf("incremental reports = %d of %d", len(inc.Reports), len(full.Reports))
	}
	for _, rep := range inc.Reports {
		if pop.Chain.CreatedAt(rep.Address) <= cut {
			t.Errorf("%s deployed at %d, before cut %d", rep.Address, pop.Chain.CreatedAt(rep.Address), cut)
		}
	}
	// Verdicts agree with the full run.
	fullBy := make(map[etypes.Address]bool)
	for _, rep := range full.Reports {
		fullBy[rep.Address] = rep.IsProxy
	}
	for _, rep := range inc.Reports {
		if fullBy[rep.Address] != rep.IsProxy {
			t.Errorf("%s: incremental %v != full %v", rep.Address, rep.IsProxy, fullBy[rep.Address])
		}
	}
}
