package proxion

import (
	"container/list"
	"sync"

	"repro/internal/etypes"
)

// The landscape's extreme bytecode duplication (98.7% of contracts are
// byte-identical copies, Figure 5) means almost every emulation probe
// re-derives a verdict the detector has already computed for the same
// code. The verdict cache memoizes the *emulation verdict* per unique
// runtime bytecode — is the fallback a forwarding fallback, and where does
// it find its delegate target — and re-anchors it per address:
//
//   - Hard-coded targets (EIP-1167 clones) are embedded in the bytecode, so
//     identical code implies an identical logic address and the cached
//     address is reused directly.
//   - Storage targets are re-read from the duplicate's own implementation
//     slot, so byte-identical upgradeable proxies pointing at different
//     logic contracts still resolve their own logic.
//
// A verdict transfers to another address only when that address's values
// for every *other* storage slot the fallback read before forwarding (the
// "guard slots": pause flags, initializer bits, owner checks) match the
// values the verdict was recorded under — duplicates in a different guard
// state are re-emulated and cached under their own fingerprint.
// The cache runs in one of two modes. Unbounded (capacity 0, the default)
// remembers every distinct bytecode for the whole run — right for batch
// scans, where uniques number in the thousands. Bounded (capacity > 0)
// keeps at most capacity entries, evicting the least recently used; a
// streaming landscape run uses it so the cache's footprint, like every
// other layer, is a configured constant rather than a function of corpus
// size. Eviction trades determinism for the bound: a re-encountered
// evicted bytecode is re-emulated (a miss the unbounded cache would have
// served), so hit counts under eviction depend on scheduling.
type verdictCache struct {
	mu       sync.Mutex
	m        map[etypes.Hash]*codeVerdict
	capacity int
	// order tracks recency front-to-back (front = most recent); each
	// element's Value is the etypes.Hash key. elems indexes into it.
	order     *list.List
	elems     map[etypes.Hash]*list.Element
	evictions int64
}

func newVerdictCache() *verdictCache {
	return &verdictCache{
		m:     make(map[etypes.Hash]*codeVerdict),
		order: list.New(),
		elems: make(map[etypes.Hash]*list.Element),
	}
}

// setCapacity switches the cache between unbounded (n <= 0) and bounded
// modes, evicting immediately if the cache already exceeds the new bound.
func (c *verdictCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.capacity = n
	c.evictLocked()
}

// entry returns the (possibly fresh) record for one bytecode hash,
// marking it most recently used.
func (c *verdictCache) entry(codeHash etypes.Hash) *codeVerdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[codeHash]
	if !ok {
		e = &codeVerdict{}
		c.m[codeHash] = e
		c.elems[codeHash] = c.order.PushFront(codeHash)
		c.evictLocked()
	} else {
		c.order.MoveToFront(c.elems[codeHash])
	}
	return e
}

// install inserts a fully-formed record for one bytecode hash — the
// import path for persisted entries. An existing record wins: live state
// is never clobbered by a (possibly stale) persisted one. Returns whether
// the record was installed.
func (c *verdictCache) install(codeHash etypes.Hash, e *codeVerdict) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[codeHash]; exists {
		return false
	}
	c.m[codeHash] = e
	c.elems[codeHash] = c.order.PushFront(codeHash)
	c.evictLocked()
	// Eviction may have dropped the just-installed entry itself when the
	// cache is bounded below the import size; report installed only if it
	// survived.
	_, ok := c.m[codeHash]
	return ok
}

// invalidate drops the record for one bytecode hash, if present. The next
// duplicate of that code re-emulates and records fresh — the remedy for a
// verdict known to be stale (e.g. after out-of-band storage surgery on
// the recording address) or poisoned.
func (c *verdictCache) invalidate(codeHash etypes.Hash) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[codeHash]; ok {
		c.order.Remove(el)
		delete(c.elems, codeHash)
	}
	_, ok := c.m[codeHash]
	delete(c.m, codeHash)
	return ok
}

// evictLocked drops least-recently-used entries until the cache fits its
// capacity. Callers hold c.mu. A goroutine mid-recording on an evicted
// entry still holds its *codeVerdict and finishes harmlessly into the
// orphan; the next duplicate simply re-emulates under a fresh entry.
func (c *verdictCache) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for len(c.m) > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		key := back.Value.(etypes.Hash)
		c.order.Remove(back)
		delete(c.elems, key)
		delete(c.m, key)
		c.evictions++
	}
}

// len returns the number of cached bytecodes.
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// evictionCount returns the total evictions so far.
func (c *verdictCache) evictionCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// CacheEvictions returns how many verdict-cache entries a bounded run has
// evicted so far. Always zero in unbounded mode. Deliberately surfaced
// outside the pipeline counter set: eviction totals depend on worker
// scheduling, and the deterministic counters are compared byte-for-byte
// by the bench regression gate.
func (d *Detector) CacheEvictions() int64 { return d.verdicts.evictionCount() }

// InvalidateVerdict drops the cached verdict for one runtime bytecode
// hash, reporting whether an entry existed; subsequent duplicates
// re-emulate fresh.
func (d *Detector) InvalidateVerdict(codeHash etypes.Hash) bool {
	return d.verdicts.invalidate(codeHash)
}

// InvalidateStructural drops the structural near-clone family for one
// static fingerprint, reporting whether a family existed. The next code
// hash carrying the fingerprint becomes a fresh leader, so re-registration
// reads live chain state. Used by the follower after an upgrade event:
// promotion re-reads the candidate's own storage, but the family's
// registered target shape was proven against pre-upgrade state.
func (d *Detector) InvalidateStructural(fp etypes.Hash) bool {
	return d.structural.invalidate(fp)
}

// codeVerdict is the memoized detection state of one distinct runtime
// bytecode. The first emulation (under once) records which guard slots the
// fallback reads; afterwards verdicts are stored and looked up by the
// fingerprint of those slots' per-address values.
type codeVerdict struct {
	once sync.Once
	// firstAddr is the address the recording run probed; used to refuse
	// transferring a hard-coded verdict whose target is the contract
	// itself (an address-dependent delegate the cache cannot re-anchor).
	firstAddr  etypes.Address
	guardSlots []etypes.Hash

	mu   sync.Mutex
	byFP map[etypes.Hash]*probeVerdict
}

// probeVerdict is one cached emulation outcome.
type probeVerdict struct {
	forwarded bool
	// target/implSlot/logic describe where the fallback finds its delegate;
	// logic is the recording run's observed target, authoritative only for
	// hard-coded proxies.
	target   TargetSource
	implSlot etypes.Hash
	logic    etypes.Address
	// emulationErr/reason reproduce the negative outcomes; both are
	// address-independent by construction.
	emulationErr error
	reason       string
}

// checkDeduped runs the detection step for a contract that already passed
// the disassembly filter, serving the verdict from the two-level dedup
// cache when possible: level one is the exact bytecode hash, level two the
// structural fingerprint (see structural.go). It returns the report
// (without Standard, which the classification stage adds) and the trace
// saying how the verdict was obtained.
func (d *Detector) checkDeduped(addr etypes.Address, code []byte) (Report, probeTrace) {
	entry := d.verdicts.entry(d.chain.CodeHash(addr))

	var recorded Report
	var recordedTrace probeTrace
	fresh := false
	entry.once.Do(func() {
		fresh = true
		recorded, recordedTrace = d.recordFirst(entry, addr, code)
	})
	if fresh {
		return recorded, recordedTrace
	}

	// A recording run that panicked with a read failure consumes the Once
	// but leaves the entry empty. Its guard slots are unknown, so verdicts
	// for this bytecode can never transfer safely: probe every duplicate
	// fresh and cache nothing.
	entry.mu.Lock()
	poisoned := entry.byFP == nil
	entry.mu.Unlock()
	if poisoned {
		return d.emulateProbe(addr, code, CraftCallData(addr, code)).rep, probeTrace{}
	}

	fp := d.guardFingerprint(addr, entry.guardSlots)
	entry.mu.Lock()
	v, ok := entry.byFP[fp]
	entry.mu.Unlock()
	if ok && d.transferable(v, addr, entry.firstAddr) {
		return d.anchorVerdict(addr, v), probeTrace{source: sourceExactHit}
	}

	out := d.emulateProbe(addr, code, CraftCallData(addr, code))
	if !ok {
		nv := verdictOf(out.rep)
		entry.mu.Lock()
		if _, raced := entry.byFP[fp]; !raced {
			entry.byFP[fp] = nv
		}
		entry.mu.Unlock()
	}
	return out.rep, probeTrace{}
}

// verdictOf compresses a probe report into its cacheable core.
func verdictOf(rep Report) *probeVerdict {
	return &probeVerdict{
		forwarded:    rep.IsProxy,
		target:       rep.Target,
		implSlot:     rep.ImplSlot,
		logic:        rep.Logic,
		emulationErr: rep.EmulationErr,
		reason:       rep.Reason,
	}
}

// transferable rejects the shapes the cache cannot re-anchor exactly: a
// hard-coded delegate equal to the recording address itself (which would
// be a different address for every duplicate), and a storage target whose
// slot value carries nonzero upper bytes at this address — the uncached
// path would classify a packed slot as hard-coded, so such duplicates are
// re-emulated instead of transferred.
func (d *Detector) transferable(v *probeVerdict, addr, firstAddr etypes.Address) bool {
	if !v.forwarded {
		return true
	}
	if v.target == TargetHardcoded && v.logic == firstAddr && addr != firstAddr {
		return false
	}
	if v.target == TargetStorage {
		slotVal := d.chain.GetState(addr, v.implSlot)
		for _, b := range slotVal[:12] {
			if b != 0 {
				return false
			}
		}
	}
	return true
}

// anchorVerdict rebuilds a per-address report from a cached verdict,
// re-resolving the logic address from the duplicate's own storage for
// storage-based proxies.
func (d *Detector) anchorVerdict(addr etypes.Address, v *probeVerdict) Report {
	rep := Report{Address: addr, HasDelegateCall: true}
	if !v.forwarded {
		rep.EmulationErr = v.emulationErr
		rep.Reason = v.reason
		return rep
	}
	rep.IsProxy = true
	rep.Target = v.target
	if v.target == TargetStorage {
		rep.ImplSlot = v.implSlot
		slotVal := d.chain.GetState(addr, v.implSlot)
		rep.Logic = etypes.BytesToAddress(slotVal[:])
	} else {
		rep.Logic = v.logic
	}
	rep.Reason = "fallback forwarded the probe call data via DELEGATECALL to " + rep.Logic.Hex()
	return rep
}

// guardFingerprint hashes the address's current values of the given guard
// slots. Two addresses with the same fingerprint present identical storage
// to the fallback's pre-forwarding reads, so a verdict recorded under one
// applies to the other.
func (d *Detector) guardFingerprint(addr etypes.Address, slots []etypes.Hash) etypes.Hash {
	if len(slots) == 0 {
		return etypes.Hash{}
	}
	buf := make([]byte, 0, 64*len(slots))
	for _, s := range slots {
		v := d.chain.GetState(addr, s)
		buf = append(buf, s[:]...)
		buf = append(buf, v[:]...)
	}
	return etypes.Keccak(buf)
}
