package proxion

import (
	"sort"

	"repro/internal/abi"
	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// StorageCollision is a slot whose byte layout the proxy and logic contract
// interpret differently (Section 2.3). Because delegatecalled logic code
// runs against the proxy's storage, overlapping-but-mismatched fields read
// or corrupt each other.
type StorageCollision struct {
	Slot etypes.Hash
	// ProxyOffset/Size and LogicOffset/Size are one overlapping mismatched
	// field pair (the first found; a slot may have several).
	ProxyOffset, ProxySize int
	LogicOffset, LogicSize int
	// GuardInvolved is set when a colliding field feeds a conditional
	// branch (initializer guards, onlyOwner checks).
	GuardInvolved bool
	// Exploitable is CRUSH's static criterion: a guard or ownership read
	// is overlapped, with mismatched boundaries, by a write whose value an
	// attacker influences (msg.sender or call data).
	Exploitable bool
	// Verified is set when the dynamic replay confirmed the exploit
	// (Section 5.2: test transactions fed to the EVM).
	Verified bool
}

// fieldsOverlap reports whether [ao, ao+as) and [bo, bo+bs) intersect.
func fieldsOverlap(ao, as, bo, bs int) bool {
	return ao < bo+bs && bo < ao+as
}

// sameField reports identical interpretation.
func sameField(ao, as, bo, bs int) bool { return ao == bo && as == bs }

// StorageCollisions compares the storage access profiles of a proxy and a
// logic contract and returns one record per colliding slot.
func StorageCollisions(proxyAcc, logicAcc []StorageAccess) []StorageCollision {
	proxyBySlot := groupBySlot(proxyAcc)
	logicBySlot := groupBySlot(logicAcc)

	var out []StorageCollision
	for slot, pAccs := range proxyBySlot {
		lAccs, shared := logicBySlot[slot]
		if !shared {
			continue
		}
		col, found := collideSlot(slot, pAccs, lAccs)
		if found {
			out = append(out, col)
		}
	}
	sortStorageCollisions(out)
	return out
}

// collideSlot looks for mismatched overlapping fields within one slot and
// derives the guard/exploitability flags. A collision exists when the proxy
// and logic interpret overlapping bytes with different boundaries. Because
// both contracts' code executes against the proxy's storage, exploitability
// is judged over the *union* of their accesses: a guard or ownership read
// anywhere in the pair that an attacker-influenced write overlaps with
// mismatched boundaries — the Audius shape, where the logic's own
// inherited-layout owner write tramples its initializer guard bits.
func collideSlot(slot etypes.Hash, pAccs, lAccs []StorageAccess) (StorageCollision, bool) {
	col := StorageCollision{Slot: slot}
	found := false
	for _, p := range pAccs {
		for _, l := range lAccs {
			if !fieldsOverlap(p.Offset, p.Size, l.Offset, l.Size) {
				continue
			}
			if sameField(p.Offset, p.Size, l.Offset, l.Size) {
				continue
			}
			if !found {
				col.ProxyOffset, col.ProxySize = p.Offset, p.Size
				col.LogicOffset, col.LogicSize = l.Offset, l.Size
				found = true
			}
			if p.Guard || l.Guard {
				col.GuardInvolved = true
			}
		}
	}
	if !found {
		return col, false
	}
	combined := make([]StorageAccess, 0, len(pAccs)+len(lAccs))
	combined = append(combined, pAccs...)
	combined = append(combined, lAccs...)
	for _, r := range combined {
		if r.Kind != AccessRead || !(r.Guard || r.CallerCheck) {
			continue
		}
		for _, w := range combined {
			if w.Kind != AccessWrite || !w.Tainted {
				continue
			}
			if fieldsOverlap(r.Offset, r.Size, w.Offset, w.Size) &&
				!sameField(r.Offset, r.Size, w.Offset, w.Size) {
				col.Exploitable = true
			}
		}
	}
	return col, found
}

func groupBySlot(accs []StorageAccess) map[etypes.Hash][]StorageAccess {
	out := make(map[etypes.Hash][]StorageAccess)
	for _, a := range accs {
		out[a.Slot] = append(out[a.Slot], a)
	}
	return out
}

func sortStorageCollisions(cs []StorageCollision) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && lessHash(cs[j].Slot, cs[j-1].Slot); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// sstoreTracer records SSTORE slots executed in the proxy's storage context.
type sstoreTracer struct {
	proxy   etypes.Address
	written map[etypes.Hash]struct{}
}

var _ evm.Tracer = (*sstoreTracer)(nil)

func (t *sstoreTracer) CaptureStep(f *evm.Frame, _ uint64, op evm.Op) {
	if op == evm.SSTORE && f.Address() == t.proxy {
		t.written[etypes.HashFromWord(f.Stack().Peek(0))] = struct{}{}
	}
}

func (t *sstoreTracer) CaptureEnter(evm.CallKind, etypes.Address, etypes.Address, []byte, u256.Int) {
}
func (t *sstoreTracer) CaptureExit([]byte, error) {}

// exploitSenders are the two distinct synthetic attackers used by replay.
var exploitSenders = [2]etypes.Address{
	etypes.MustAddress("0x00000000000000000000000000000000a77ac4e1"),
	etypes.MustAddress("0x00000000000000000000000000000000a77ac4e2"),
}

// VerifyStorageExploit dynamically confirms a statically-exploitable
// collision, mirroring CRUSH's validation step: generate test transactions
// and feed them to the EVM. The replay looks for a guarded state-changing
// function (reachable through the proxy) that succeeds twice from two
// different senders while writing a collided slot — the signature of a
// broken initializer/ownership guard, as in the Audius incident. All
// execution happens on an overlay; the chain is untouched.
func (d *Detector) VerifyStorageExploit(proxy, logic etypes.Address, collisions []StorageCollision) bool {
	collided := make(map[etypes.Hash]struct{})
	exploitable := false
	for _, c := range collisions {
		if c.Exploitable {
			collided[c.Slot] = struct{}{}
			exploitable = true
		}
	}
	if !exploitable {
		return false
	}

	logicCode := d.chain.Code(logic)
	for _, sel := range guardGatedSelectors(logicCode, d.accessCache.get(logicCode), collided) {
		if d.replayDoubleCall(proxy, sel, collided) {
			return true
		}
	}
	return false
}

// guardGatedSelectors returns the logic functions worth replaying: those
// whose body both *reads a collided slot as a guard* and *writes a collided
// slot*. A plain setter (write without guard) or a pure getter cannot
// evidence a broken guard, so replaying them would only produce false
// verifications. Accesses are attributed to functions by PC using the
// dispatcher's jump targets.
func guardGatedSelectors(code []byte, accs []StorageAccess, collided map[etypes.Hash]struct{}) [][4]byte {
	targets := disasm.DispatcherTargets(code)
	if len(targets) == 0 {
		return nil
	}
	// Function bodies are laid out sequentially: each extends from its
	// entry to the next entry (or the end of code).
	type fn struct {
		sel   [4]byte
		start uint64
		end   uint64
	}
	fns := make([]fn, 0, len(targets))
	for sel, start := range targets {
		fns = append(fns, fn{sel: sel, start: start, end: uint64(len(code))})
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].start < fns[j].start })
	for i := 0; i+1 < len(fns); i++ {
		fns[i].end = fns[i+1].start
	}

	var out [][4]byte
	for _, f := range fns {
		hasGuardRead, hasWrite := false, false
		for _, a := range accs {
			if a.PC < f.start || a.PC >= f.end {
				continue
			}
			if _, hit := collided[a.Slot]; !hit {
				continue
			}
			if a.Kind == AccessRead && a.Guard {
				hasGuardRead = true
			}
			if a.Kind == AccessWrite {
				hasWrite = true
			}
		}
		if hasGuardRead && hasWrite {
			out = append(out, f.sel)
		}
	}
	return out
}

// replayDoubleCall executes selector via the proxy from two different
// senders on one overlay and reports whether both succeeded and the first
// wrote a collided slot.
func (d *Detector) replayDoubleCall(proxy etypes.Address, sel [4]byte, collided map[etypes.Hash]struct{}) bool {
	overlay := newOverlay(d.chain)
	input := abi.EncodeCall(sel)

	tracer := &sstoreTracer{proxy: proxy, written: make(map[etypes.Hash]struct{})}
	run := func(sender etypes.Address) bool {
		e := evm.New(overlay, evm.Config{
			Block:     d.emulationContext(),
			Tx:        evm.TxContext{Origin: sender},
			Tracer:    tracer,
			Lenient:   true,
			StepLimit: 1 << 18,
		})
		res := e.Call(sender, proxy, input, d.emulationGas, u256.Zero())
		return res.Err == nil
	}

	if !run(exploitSenders[0]) {
		return false
	}
	wroteCollided := false
	for slot := range tracer.written {
		if _, ok := collided[slot]; ok {
			wroteCollided = true
			break
		}
	}
	if !wroteCollided {
		return false
	}
	// The guard must have been corrupted: the second, different sender can
	// run the same guarded function again.
	return run(exploitSenders[1])
}
