package proxion

import (
	"sync"

	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/pipeline"
)

// AddressSource is the streaming input of an analysis run: the engine's
// feeder pulls one address at a time, so a run can analyze a corpus that
// is generated, paged in, or tailed from a node without ever existing as
// a slice in memory. Next is called from a single feeder goroutine; it
// may block (that is the upstream half of the pipeline's backpressure).
type AddressSource interface {
	// Next returns the next address and true, or ok=false at end of stream.
	Next() (addr etypes.Address, ok bool)
}

// SourceFunc adapts a function to an AddressSource.
type SourceFunc func() (etypes.Address, bool)

// Next implements AddressSource.
func (f SourceFunc) Next() (etypes.Address, bool) { return f() }

// SliceSource streams a materialized address slice — the compatibility
// path that keeps AnalyzeAll/AnalyzeSince working over Chain.Contracts().
func SliceSource(addrs []etypes.Address) AddressSource {
	i := 0
	return SourceFunc(func() (etypes.Address, bool) {
		if i >= len(addrs) {
			return etypes.Address{}, false
		}
		a := addrs[i]
		i++
		return a, true
	})
}

// Item is one contract's finalized analysis: the detection report plus
// the collision/history analyses that hang off it, delivered to a
// ReportSink only when every stage that touches the contract is done.
// Index is the contract's position in the source stream — items arrive
// at the sink strictly in index order.
type Item struct {
	Index   int
	Report  Report
	Pair    *PairAnalysis
	History *HistoricalAnalysis
}

// ReportSink receives finalized items. Emit is called serially, in source
// order, from pipeline worker goroutines — implementations need no
// locking of their own but must not block for long: a slow sink stalls
// the bounded window and, through it, the whole pipeline (that is the
// downstream half of backpressure).
type ReportSink interface {
	Emit(it Item)
}

// SinkFunc adapts a function to a ReportSink.
type SinkFunc func(Item)

// Emit implements ReportSink.
func (f SinkFunc) Emit(it Item) { f(it) }

// CollectSink accumulates every item into a *Result — the compatibility
// sink behind the slice-returning entry points and tests. Its memory is
// O(corpus), which is exactly what streaming callers avoid by bringing
// their own sink.
type CollectSink struct {
	res Result
}

// NewCollectSink returns an empty collector.
func NewCollectSink() *CollectSink { return &CollectSink{} }

// Emit implements ReportSink.
func (c *CollectSink) Emit(it Item) {
	c.res.Reports = append(c.res.Reports, it.Report)
	if it.Pair != nil {
		c.res.Pairs = append(c.res.Pairs, *it.Pair)
	}
	if it.History != nil {
		c.res.Histories = append(c.res.Histories, *it.History)
	}
}

// Result returns the accumulated result. Call after the run has finished.
func (c *CollectSink) Result() *Result { return &c.res }

// streamTracker is the bounded reorder window between the pipeline's
// unordered completions and the sink's ordered emissions. It enforces the
// run's memory bound end to end:
//
//   - the feeder acquires one window slot per fed address (blocking when
//     the window is full — backpressure against the source), and
//   - a slot is released only when its item has been emitted, so
//     in-flight + completed-but-unemitted items never exceed the window.
//
// Peak memory of a streaming run is therefore a function of the window
// size, channel depths and worker counts — never of corpus length.
type streamTracker struct {
	sink ReportSink

	// sem holds one token per window slot.
	sem chan struct{}

	mu       sync.Mutex
	slots    []trackSlot // ring buffer, indexed by item index % len
	base     int         // lowest index not yet emitted
	next     int         // next index to assign (feeder only, under mu)
	emitting bool        // a goroutine is currently draining ready slots

	stats *pipeline.Stats // run counters; Unresolved bumped at emission
}

// trackSlot is one in-flight contract.
type trackSlot struct {
	rep  Report
	pair *PairAnalysis
	hist *HistoricalAnalysis
	// outstanding counts fanned-out sub-analyses (pair, history) still
	// running; the slot is complete when the report landed and this is 0.
	outstanding int
	hasReport   bool
}

func newStreamTracker(window int, sink ReportSink, stats *pipeline.Stats) *streamTracker {
	return &streamTracker{
		sink:  sink,
		sem:   make(chan struct{}, window),
		slots: make([]trackSlot, window),
		stats: stats,
	}
}

// acquire blocks until a window slot is free and returns the item index
// assigned to the next fed address. Feeder-only.
func (t *streamTracker) acquire() int {
	t.sem <- struct{}{}
	t.mu.Lock()
	idx := t.next
	t.next++
	t.mu.Unlock()
	return idx
}

// slot returns the ring slot for idx. Callers hold t.mu.
func (t *streamTracker) slot(idx int) *trackSlot {
	return &t.slots[idx%len(t.slots)]
}

// deliverReport lands the detection report for idx and declares how many
// sub-analyses (pair + history) are still outstanding. It must be called
// BEFORE the fan-out sends so the slot can never look complete early.
func (t *streamTracker) deliverReport(idx int, rep Report, outstanding int) {
	t.mu.Lock()
	s := t.slot(idx)
	s.rep = rep
	s.hasReport = true
	s.outstanding += outstanding
	t.drainLocked()
}

// deliverPair lands one pair analysis (or its terminal read failure).
func (t *streamTracker) deliverPair(idx int, pa *PairAnalysis, re *chain.ReadError) {
	t.mu.Lock()
	s := t.slot(idx)
	if re != nil {
		markUnresolved(&s.rep, re)
	} else {
		s.pair = pa
	}
	s.outstanding--
	t.drainLocked()
}

// deliverHistory lands one history analysis (or its terminal failure).
func (t *streamTracker) deliverHistory(idx int, h *HistoricalAnalysis, re *chain.ReadError) {
	t.mu.Lock()
	s := t.slot(idx)
	if re != nil {
		markUnresolved(&s.rep, re)
	} else {
		s.hist = h
	}
	s.outstanding--
	t.drainLocked()
}

// drainLocked emits every contiguous completed slot starting at base, in
// order, releasing window tokens as it goes. Called with t.mu held;
// releases and reacquires it around sink calls so workers delivering
// other items are not serialized behind the sink. The emitting flag keeps
// emission single-threaded (and therefore ordered) without a dedicated
// emitter goroutine.
func (t *streamTracker) drainLocked() {
	if t.emitting {
		t.mu.Unlock()
		return
	}
	t.emitting = true
	for {
		s := t.slot(t.base)
		if !s.hasReport || s.outstanding != 0 {
			break
		}
		it := Item{Index: t.base, Report: s.rep, Pair: s.pair, History: s.hist}
		*s = trackSlot{} // reset for reuse before the slot index recycles
		t.base++
		t.mu.Unlock()

		if it.Report.Unresolved && t.stats != nil {
			t.stats.Unresolved.Add(1)
		}
		t.sink.Emit(it)
		<-t.sem // release the window slot only after emission

		t.mu.Lock()
	}
	t.emitting = false
	t.mu.Unlock()
}
