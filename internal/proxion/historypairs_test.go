package proxion_test

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/chain"
	"repro/internal/etypes"
	"repro/internal/proxion"
	"repro/internal/solc"
	"repro/internal/u256"
)

// TestAnalyzePairHistoryFindsRetiredCollision: a proxy once pointed at a
// colliding logic (V1) and was upgraded to a clean one (V2). Analyzing only
// the current pair misses the historical exposure; the history analysis
// must surface it.
func TestAnalyzePairHistoryFindsRetiredCollision(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.One())
	c := chain.New()

	shared := abi.Function{Name: "claim"}
	// V1 collides with the proxy's function.
	v1 := &solc.Contract{
		Name:  "V1",
		Funcs: []solc.Func{{ABI: shared, Body: []solc.Stmt{solc.Stop{}}}},
	}
	v1Addr := etypes.MustAddress("0x000000000000000000000000000000000000b101")
	c.InstallContract(v1Addr, solc.MustCompile(v1))

	// V2 renamed the function: clean.
	v2 := &solc.Contract{
		Name:  "V2",
		Funcs: []solc.Func{{ABI: abi.Function{Name: "claimV2"}, Body: []solc.Stmt{solc.Stop{}}}},
	}
	v2Addr := etypes.MustAddress("0x000000000000000000000000000000000000b102")
	c.InstallContract(v2Addr, solc.MustCompile(v2))

	proxy := &solc.Contract{
		Name:     "P",
		Vars:     []solc.Var{{Name: "owner", Type: solc.TypeAddress}},
		Funcs:    []solc.Func{{ABI: shared, Body: []solc.Stmt{solc.Stop{}}}},
		Fallback: solc.Fallback{Kind: solc.FallbackDelegateStorage, Slot: implSlot},
	}
	pAddr := etypes.MustAddress("0x000000000000000000000000000000000000b103")
	c.InstallContract(pAddr, solc.MustCompile(proxy))

	c.AdvanceTo(100)
	c.SetStorageDirect(pAddr, implSlot, etypes.HashFromWord(v1Addr.Word()))
	c.AdvanceTo(50_000)
	c.SetStorageDirect(pAddr, implSlot, etypes.HashFromWord(v2Addr.Word()))
	c.AdvanceTo(80_000)

	d := proxion.NewDetector(c)
	rep := d.Check(pAddr)
	if !rep.IsProxy || rep.Logic != v2Addr {
		t.Fatalf("report = %+v", rep)
	}
	// Current pair is clean.
	if cur := d.AnalyzePair(pAddr, rep.Logic, nil); len(cur.Functions) != 0 {
		t.Fatalf("current pair should be clean: %+v", cur.Functions)
	}
	// History finds the retired V1 collision.
	hist := d.AnalyzePairHistory(rep, nil)
	if len(hist.Pairs) != 2 {
		t.Fatalf("historical pairs = %d, want 2", len(hist.Pairs))
	}
	if !hist.AnyCollision() {
		t.Fatal("historical collision missed")
	}
	var collidedWith etypes.Address
	for _, pa := range hist.Pairs {
		if len(pa.Functions) > 0 {
			collidedWith = pa.Logic
		}
	}
	if collidedWith != v1Addr {
		t.Errorf("collision attributed to %s, want V1 %s", collidedWith, v1Addr)
	}
}

func TestAnalyzePairHistoryMinimalProxy(t *testing.T) {
	implSlot := etypes.HashFromWord(u256.FromUint64(7))
	c := newChainWithPair(t, implSlot)
	d := proxion.NewDetector(c)
	rep := d.Check(proxyAt)
	hist := d.AnalyzePairHistory(rep, nil)
	if len(hist.Pairs) != 1 || hist.Pairs[0].Logic != logicAt {
		t.Errorf("history = %+v", hist.Pairs)
	}
	// Non-proxy reports yield empty histories.
	empty := d.AnalyzePairHistory(proxion.Report{}, nil)
	if len(empty.Pairs) != 0 || empty.AnyCollision() {
		t.Error("non-proxy produced pairs")
	}
}
