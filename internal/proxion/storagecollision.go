package proxion

import (
	"sort"

	"repro/internal/disasm"
	"repro/internal/etypes"
	"repro/internal/evm"
	"repro/internal/u256"
)

// AccessKind distinguishes storage reads from writes.
type AccessKind int

// Access kinds.
const (
	AccessRead AccessKind = iota + 1
	AccessWrite
)

// StorageAccess is one recovered storage field access: which slot, the byte
// range within it, and how the value is used. This is the product of the
// CRUSH-style analysis (Section 5.2): program-slice the instructions
// feeding SLOAD/SSTORE, symbolically evaluate the shift/mask arithmetic to
// learn field offset and width, and tag sensitive uses.
type StorageAccess struct {
	Slot   etypes.Hash
	Offset int // bytes from the least-significant end
	Size   int // bytes
	Kind   AccessKind
	// PC is the code offset of the SLOAD/SSTORE, used to attribute the
	// access to a function body.
	PC uint64
	// Guard marks reads whose value decides a conditional branch — the
	// access-control and initializer-guard slots CRUSH calls sensitive.
	Guard bool
	// CallerCheck marks reads compared against msg.sender (ownership).
	CallerCheck bool
	// Tainted marks writes whose value derives from msg.sender or call
	// data, i.e. attacker-influenceable.
	Tainted bool
}

// field is a byte range in a slot.
type field struct{ offset, size int }

// symbolic value kinds for the lightweight evaluator.
type symKind int

const (
	symUnknown symKind = iota
	symConst
	symCaller
	symCalldata
	symSload        // (possibly shifted/masked) SLOAD result
	symWriteCombine // AND(old, keepMask) — the read-modify-write skeleton
)

// sym is an abstract stack value.
type sym struct {
	kind symKind
	val  u256.Int // for symConst
	// acc points at the StorageAccess a symSload descends from, so later
	// mask/branch/compare instructions can refine or tag it.
	acc *StorageAccess
	// keep is the retained-bits mask for symWriteCombine.
	keep u256.Int
	// shift tracks SHR offset applied to a symSload before masking.
	shift int
	// masked records that a field-extraction AND was applied.
	masked bool
	// taint propagates msg.sender / call-data influence.
	taint bool
}

// ExtractStorageAccesses recovers the storage field accesses of a
// contract's bytecode. It evaluates each basic block symbolically: constant
// slot arithmetic, the SHR/AND field extraction Solidity emits for packed
// reads, the AND/OR read-modify-write skeleton of packed writes, and the
// comparisons/branches that mark guard slots.
func ExtractStorageAccesses(code []byte) []StorageAccess {
	var out []StorageAccess
	for _, block := range disasm.BasicBlocks(code) {
		out = append(out, evalBlock(block)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return lessHash(out[i].Slot, out[j].Slot)
		}
		if out[i].Offset != out[j].Offset {
			return out[i].Offset < out[j].Offset
		}
		return out[i].Kind < out[j].Kind
	})
	return dedupAccesses(out)
}

func lessHash(a, b etypes.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func dedupAccesses(in []StorageAccess) []StorageAccess {
	var out []StorageAccess
	seen := make(map[StorageAccess]struct{})
	for _, a := range in {
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			out = append(out, a)
		}
	}
	return out
}

// evalBlock symbolically executes one basic block with an empty entry stack
// (cross-block stack contents appear as unknowns) and returns the accesses
// it performs.
func evalBlock(block disasm.BasicBlock) []StorageAccess {
	var accesses []*StorageAccess
	var stack []sym

	push := func(s sym) { stack = append(stack, s) }
	pop := func() sym {
		if len(stack) == 0 {
			return sym{kind: symUnknown}
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return s
	}

	for _, ins := range block.Instrs {
		op := ins.Op
		switch {
		case op.IsPush():
			push(sym{kind: symConst, val: u256.FromBytes(ins.Imm)})
			continue
		case op == evm.PUSH0:
			push(sym{kind: symConst})
			continue
		case op.IsDup():
			n := int(op-evm.DUP1) + 1
			if n <= len(stack) {
				push(stack[len(stack)-n])
			} else {
				push(sym{kind: symUnknown})
			}
			continue
		case op.IsSwap():
			n := int(op-evm.SWAP1) + 1
			if n < len(stack) {
				top := len(stack) - 1
				stack[top], stack[top-n] = stack[top-n], stack[top]
			}
			continue
		}

		switch op {
		case evm.CALLER:
			push(sym{kind: symCaller, taint: true})
		case evm.CALLDATALOAD:
			pop()
			push(sym{kind: symCalldata, taint: true})
		case evm.SLOAD:
			key := pop()
			if key.kind == symConst {
				acc := &StorageAccess{
					Slot:   etypes.HashFromWord(key.val),
					Offset: 0,
					Size:   32,
					Kind:   AccessRead,
					PC:     ins.PC,
				}
				accesses = append(accesses, acc)
				push(sym{kind: symSload, acc: acc})
			} else {
				push(sym{kind: symUnknown})
			}
		case evm.SHR:
			shift, x := pop(), pop()
			if x.kind == symSload && shift.kind == symConst && shift.val.IsUint64() {
				x.shift += int(shift.val.Uint64())
				push(x)
			} else {
				push(sym{kind: symUnknown, taint: x.taint})
			}
		case evm.SHL:
			shift, x := pop(), pop()
			_ = shift
			push(sym{kind: symUnknown, taint: x.taint, acc: x.acc})
		case evm.AND:
			a, b := pop(), pop()
			// Normalize: s = the sload/derived side, m = the mask side.
			s, m := a, b
			if s.kind != symSload {
				s, m = b, a
			}
			if s.kind == symSload && m.kind == symConst {
				// Field-extraction masks start at bit 0 (they follow the
				// SHR); a mask whose ones start higher is a read-modify-
				// write keep mask, whose complement is the written field.
				if off, size, ok := lowRunMask(m.val); ok && off == 0 {
					// Field read: refine the recorded access. (If this value
					// is later OR-combined, the OR rule reinterprets it as a
					// read-modify-write keep mask — the two shapes coincide
					// for top-aligned fields.)
					s.acc.Offset = s.shift / 8
					s.acc.Size = size
					push(sym{kind: symSload, acc: s.acc, shift: s.shift, masked: true, taint: s.taint})
				} else if _, _, ok := complementRunMask(m.val); ok {
					// Read-modify-write skeleton: the SLOAD is not a
					// semantic field read; drop it from the access list.
					removeAccess(&accesses, s.acc)
					push(sym{kind: symWriteCombine, keep: m.val, taint: s.taint})
				} else {
					push(sym{kind: symUnknown, taint: s.taint})
				}
			} else {
				push(sym{kind: symUnknown, taint: a.taint || b.taint, acc: firstAcc(a, b)})
			}
		case evm.OR:
			a, b := pop(), pop()
			w := a
			if w.kind != symWriteCombine {
				w = b
			}
			if w.kind == symWriteCombine {
				w.taint = a.taint || b.taint
				push(w)
				continue
			}
			// A masked, unshifted SLOAD being OR-combined is the other face
			// of the read-modify-write skeleton: AND(old, lowMask) kept the
			// low field, and the OR merges in a top-aligned value. The
			// SLOAD was not a semantic read after all.
			rmw := a
			if !(rmw.kind == symSload && rmw.masked && rmw.shift == 0) {
				rmw = b
			}
			if rmw.kind == symSload && rmw.masked && rmw.shift == 0 && rmw.acc != nil && rmw.acc.Offset == 0 {
				keep := u256.One().Shl(uint(rmw.acc.Size * 8)).Sub(u256.One())
				removeAccess(&accesses, rmw.acc)
				push(sym{kind: symWriteCombine, keep: keep, taint: a.taint || b.taint})
				continue
			}
			push(sym{kind: symUnknown, taint: a.taint || b.taint})
		case evm.SSTORE:
			key, val := pop(), pop()
			if key.kind != symConst {
				continue
			}
			acc := StorageAccess{
				Slot:    etypes.HashFromWord(key.val),
				Offset:  0,
				Size:    32,
				Kind:    AccessWrite,
				Tainted: val.taint,
				PC:      ins.PC,
			}
			if val.kind == symWriteCombine {
				if off, size, ok := complementRunMask(val.keep); ok {
					acc.Offset, acc.Size = off, size
				}
			}
			a := acc
			accesses = append(accesses, &a)
		case evm.EQ:
			a, b := pop(), pop()
			// CALLER == <storage read>: ownership check.
			if (a.kind == symCaller && b.acc != nil) || (b.kind == symCaller && a.acc != nil) {
				acc := firstAcc(a, b)
				acc.CallerCheck = true
				acc.Guard = true
				push(sym{kind: symUnknown, acc: acc})
			} else {
				push(sym{kind: symUnknown, acc: firstAcc(a, b), taint: a.taint || b.taint})
			}
		case evm.ISZERO:
			a := pop()
			push(sym{kind: symUnknown, acc: a.acc, taint: a.taint})
		case evm.JUMPI:
			_, cond := pop(), pop()
			if cond.acc != nil {
				cond.acc.Guard = true
			}
		default:
			pops, pushes := stackEffect(op)
			var anyTaint bool
			var acc *StorageAccess
			for i := 0; i < pops; i++ {
				v := pop()
				anyTaint = anyTaint || v.taint
				if acc == nil {
					acc = v.acc
				}
			}
			for i := 0; i < pushes; i++ {
				push(sym{kind: symUnknown, taint: anyTaint, acc: acc})
			}
		}
	}

	out := make([]StorageAccess, 0, len(accesses))
	for _, a := range accesses {
		if a != nil {
			out = append(out, *a)
		}
	}
	return out
}

// firstAcc returns the first non-nil access provenance among values.
func firstAcc(vals ...sym) *StorageAccess {
	for _, v := range vals {
		if v.acc != nil {
			return v.acc
		}
	}
	return nil
}

// removeAccess nils out the slot in the access list pointing at target.
func removeAccess(accesses *[]*StorageAccess, target *StorageAccess) {
	if target == nil {
		return
	}
	for i, a := range *accesses {
		if a == target {
			(*accesses)[i] = nil
			return
		}
	}
}

// lowRunMask reports whether m is a contiguous run of ones starting at some
// byte boundary ≥ 0 with no gaps (e.g. 0xff, 0xffff, (1<<160)-1). Returns
// the run's byte offset and byte length.
func lowRunMask(m u256.Int) (offsetBytes, sizeBytes int, ok bool) {
	if m.IsZero() {
		return 0, 0, false
	}
	// Find lowest set bit.
	lo := 0
	for m.Bit(uint(lo)) == 0 {
		lo++
	}
	hi := m.BitLen() - 1
	// All bits between lo and hi must be set.
	width := hi - lo + 1
	ones := u256.One().Shl(uint(width)).Sub(u256.One()).Shl(uint(lo))
	if !ones.Eq(m) {
		return 0, 0, false
	}
	if lo%8 != 0 || width%8 != 0 {
		return 0, 0, false
	}
	return lo / 8, width / 8, true
}

// complementRunMask reports whether ^m is a contiguous byte-aligned run —
// the shape of a read-modify-write keep mask. Returns the complement run's
// byte offset and length (the field being overwritten).
func complementRunMask(m u256.Int) (offsetBytes, sizeBytes int, ok bool) {
	return lowRunMask(m.Not())
}

// stackEffect mirrors the interpreter's pop/push counts for opcodes the
// symbolic evaluator does not model specially.
func stackEffect(op evm.Op) (pops, pushes int) {
	switch {
	case op.IsLog():
		return int(op-evm.LOG0) + 2, 0
	}
	switch op {
	case evm.STOP, evm.JUMPDEST, evm.INVALID:
		return 0, 0
	case evm.ADD, evm.MUL, evm.SUB, evm.DIV, evm.SDIV, evm.MOD, evm.SMOD,
		evm.SIGNEXTEND, evm.LT, evm.GT, evm.SLT, evm.SGT, evm.EXP,
		evm.BYTE, evm.SAR, evm.KECCAK256, evm.XOR:
		return 2, 1
	case evm.ADDMOD, evm.MULMOD:
		return 3, 1
	case evm.NOT, evm.BALANCE, evm.EXTCODESIZE, evm.EXTCODEHASH,
		evm.BLOCKHASH, evm.MLOAD:
		return 1, 1
	case evm.ADDRESS, evm.ORIGIN, evm.CALLVALUE, evm.CALLDATASIZE,
		evm.CODESIZE, evm.GASPRICE, evm.RETURNDATASIZE, evm.COINBASE,
		evm.TIMESTAMP, evm.NUMBER, evm.DIFFICULTY, evm.GASLIMIT,
		evm.CHAINID, evm.SELFBALANCE, evm.BASEFEE, evm.PC, evm.MSIZE,
		evm.GAS:
		return 0, 1
	case evm.POP, evm.JUMP, evm.SELFDESTRUCT:
		return 1, 0
	case evm.MSTORE, evm.MSTORE8, evm.RETURN, evm.REVERT:
		return 2, 0
	case evm.CALLDATACOPY, evm.CODECOPY, evm.RETURNDATACOPY:
		return 3, 0
	case evm.EXTCODECOPY:
		return 4, 0
	case evm.CREATE:
		return 3, 1
	case evm.CREATE2:
		return 4, 1
	case evm.CALL, evm.CALLCODE:
		return 7, 1
	case evm.DELEGATECALL, evm.STATICCALL:
		return 6, 1
	default:
		return 0, 0
	}
}
